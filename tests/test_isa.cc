/**
 * @file
 * Unit tests for the ISA layer: registers, flags, instruction
 * classification, program flattening, assembler/disassembler round-trip,
 * and value-level semantics.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/generator.hh"
#include "isa/assembler.hh"
#include "isa/disasm.hh"
#include "isa/flags.hh"
#include "isa/inst.hh"
#include "isa/program.hh"
#include "isa/reg.hh"
#include "isa/semantics.hh"

namespace
{

using namespace amulet;
using namespace amulet::isa;

TEST(Reg, NamesRoundTrip)
{
    for (unsigned i = 0; i < kNumRegs; ++i) {
        const Reg r = regFromIndex(i);
        for (unsigned w : {8u, 4u, 2u, 1u}) {
            unsigned parsed_width = 0;
            auto parsed = parseReg(regNameWidth(r, w), &parsed_width);
            ASSERT_TRUE(parsed.has_value())
                << "failed for " << regNameWidth(r, w);
            EXPECT_EQ(*parsed, r);
            EXPECT_EQ(parsed_width, w);
        }
    }
}

TEST(Reg, ParseIsCaseInsensitive)
{
    EXPECT_EQ(parseReg("rax"), Reg::Rax);
    EXPECT_EQ(parseReg("r14"), Reg::R14);
    EXPECT_EQ(parseReg("eAx"), Reg::Rax);
    EXPECT_FALSE(parseReg("rzz").has_value());
}

TEST(Flags, PackUnpackRoundTrip)
{
    for (unsigned b = 0; b < 32; ++b) {
        Flags f = Flags::unpack(static_cast<std::uint8_t>(b));
        EXPECT_EQ(f.pack(), b);
    }
}

TEST(Flags, CondAliases)
{
    EXPECT_EQ(parseCond("Z"), Cond::E);
    EXPECT_EQ(parseCond("A"), Cond::NBE);
    EXPECT_EQ(parseCond("ae"), Cond::NB);
    EXPECT_EQ(parseCond("NLE"), Cond::G);
    EXPECT_FALSE(parseCond("XX").has_value());
}

TEST(Flags, CondEvalSignedComparisons)
{
    Flags f;
    // 3 - 5: sf=1, of=0 -> L true, G false.
    f.sf = true;
    f.of = false;
    EXPECT_TRUE(condEval(Cond::L, f));
    EXPECT_FALSE(condEval(Cond::G, f));
    EXPECT_FALSE(condEval(Cond::GE, f));
    EXPECT_TRUE(condEval(Cond::LE, f));
}

TEST(Inst, ClassificationLoadStoreRmw)
{
    Inst load;
    load.op = Op::Mov;
    load.dstKind = OpndKind::Reg;
    load.dst = Reg::Rax;
    load.srcKind = OpndKind::Mem;
    EXPECT_TRUE(load.isLoad());
    EXPECT_FALSE(load.isStore());
    EXPECT_FALSE(load.isRmw());

    Inst store;
    store.op = Op::Mov;
    store.dstKind = OpndKind::Mem;
    store.srcKind = OpndKind::Reg;
    EXPECT_FALSE(store.isLoad());
    EXPECT_TRUE(store.isStore());
    EXPECT_FALSE(store.isRmw());

    Inst rmw;
    rmw.op = Op::Xor;
    rmw.dstKind = OpndKind::Mem;
    rmw.srcKind = OpndKind::Reg;
    EXPECT_TRUE(rmw.isLoad());
    EXPECT_TRUE(rmw.isStore());
    EXPECT_TRUE(rmw.isRmw());

    Inst lea;
    lea.op = Op::Lea;
    lea.dstKind = OpndKind::Reg;
    lea.srcKind = OpndKind::Mem;
    EXPECT_FALSE(lea.isLoad());
    EXPECT_FALSE(lea.isStore());
}

TEST(Inst, RegsReadWritten)
{
    Inst add; // ADD RAX, RBX
    add.op = Op::Add;
    add.dstKind = OpndKind::Reg;
    add.dst = Reg::Rax;
    add.srcKind = OpndKind::Reg;
    add.src = Reg::Rbx;
    auto reads = add.regsRead();
    EXPECT_NE(std::find(reads.begin(), reads.end(), Reg::Rax), reads.end());
    EXPECT_NE(std::find(reads.begin(), reads.end(), Reg::Rbx), reads.end());
    auto writes = add.regsWritten();
    ASSERT_EQ(writes.size(), 1u);
    EXPECT_EQ(writes[0], Reg::Rax);

    Inst store; // MOV [R14 + RBX], RDI
    store.op = Op::Mov;
    store.dstKind = OpndKind::Mem;
    store.mem.base = Reg::R14;
    store.mem.hasIndex = true;
    store.mem.index = Reg::Rbx;
    store.srcKind = OpndKind::Reg;
    store.src = Reg::Rdi;
    reads = store.regsRead();
    EXPECT_EQ(reads.size(), 3u); // RDI, R14, RBX
    EXPECT_TRUE(store.regsWritten().empty());

    Inst loopne;
    loopne.op = Op::Loopne;
    loopne.target = 1;
    reads = loopne.regsRead();
    ASSERT_EQ(reads.size(), 1u);
    EXPECT_EQ(reads[0], Reg::Rcx);
    writes = loopne.regsWritten();
    ASSERT_EQ(writes.size(), 1u);
    EXPECT_EQ(writes[0], Reg::Rcx);
}

TEST(Program, ValidateRejectsBackwardBranches)
{
    Program p;
    p.blocks.push_back({"a", {}});
    p.blocks.push_back({"b", {}});
    Inst j;
    j.op = Op::Jmp;
    j.target = 0; // backward
    p.blocks[1].body.push_back(j);
    EXPECT_TRUE(p.validate().has_value());

    p.blocks[1].body[0].target = kTargetExit;
    EXPECT_FALSE(p.validate().has_value());
}

TEST(Program, FlattenResolvesTargetsAndAppendsHalt)
{
    Program p;
    p.blocks.push_back({"main", {}});
    p.blocks.push_back({"next", {}});
    Inst j;
    j.op = Op::Jcc;
    j.cond = Cond::NE;
    j.target = 1;
    Inst nop;
    nop.op = Op::Nop;
    p.blocks[0].body = {nop, j};
    p.blocks[1].body = {nop};

    FlatProgram fp(p, 0x400000);
    ASSERT_EQ(fp.numInsts(), 4u); // nop, jcc, nop, halt
    EXPECT_EQ(fp.inst(3).op, Op::Halt);
    EXPECT_EQ(fp.targetIdx(1), 2u);
    EXPECT_EQ(fp.pcOf(0), 0x400000u);
    EXPECT_EQ(fp.pcOf(1), 0x400004u);
    EXPECT_EQ(fp.idxOf(0x400008), 2u);
    EXPECT_FALSE(fp.idxOf(0x400002).has_value()); // unaligned
    EXPECT_FALSE(fp.idxOf(0x3ffffc).has_value()); // out of range
}

TEST(Assembler, PaperListingRoundTrips)
{
    const char *text = R"(
.bb_main.2:
    OR byte ptr [R14 + RDX], AL
    LOOPNE .bb_main.3
    JMP .exit
.bb_main.3:
    AND BL, 34
    AND RAX, 0b111111111111
    CMOVNBE SI, word ptr [R14 + RAX]
    AND RBX, 0b111111111111
    XOR qword ptr [R14 + RBX], RDI
)";
    Program p = assemble(text);
    ASSERT_EQ(p.blocks.size(), 2u);
    EXPECT_EQ(p.blocks[0].body.size(), 3u);
    EXPECT_EQ(p.blocks[1].body.size(), 5u);

    const Inst &rmw = p.blocks[0].body[0];
    EXPECT_EQ(rmw.op, Op::Or);
    EXPECT_TRUE(rmw.isRmw());
    EXPECT_EQ(rmw.width, 1u);
    EXPECT_EQ(rmw.mem.base, Reg::R14);
    EXPECT_TRUE(rmw.mem.hasIndex);
    EXPECT_EQ(rmw.mem.index, Reg::Rdx);
    EXPECT_EQ(rmw.src, Reg::Rax);

    const Inst &mask = p.blocks[1].body[1];
    EXPECT_EQ(mask.op, Op::And);
    EXPECT_EQ(mask.imm, 0xfff);

    const Inst &cmov = p.blocks[1].body[2];
    EXPECT_EQ(cmov.op, Op::Cmov);
    EXPECT_EQ(cmov.cond, Cond::NBE);
    EXPECT_EQ(cmov.width, 2u);
    EXPECT_TRUE(cmov.isLoad());

    // Round-trip: reassembling the disassembly gives the same program.
    Program p2 = assemble(formatProgram(p));
    ASSERT_EQ(p2.blocks.size(), p.blocks.size());
    for (std::size_t b = 0; b < p.blocks.size(); ++b) {
        ASSERT_EQ(p2.blocks[b].body.size(), p.blocks[b].body.size());
        for (std::size_t i = 0; i < p.blocks[b].body.size(); ++i)
            EXPECT_EQ(p2.blocks[b].body[i], p.blocks[b].body[i])
                << "block " << b << " inst " << i;
    }
}

// The corpus stores programs as disassembly and reparses them through
// the assembler on load (src/corpus/serde.cc), so every opcode the
// generator can emit must survive the disasm → asm round trip exactly.
// Two generator configurations: the defaults, and one with the rare
// instruction classes (fences, SETcc, CMOV loads, LOOPNE, unaligned
// offsets) amplified so they are certain to appear within the sample.
TEST(Assembler, GeneratorProgramsRoundTrip)
{
    auto round_trip_many = [](const core::GeneratorConfig &cfg,
                              std::uint64_t seed, int count) {
        amulet::Rng rng(seed);
        for (int i = 0; i < count; ++i) {
            core::ProgramGenerator gen(cfg, rng.split());
            const Program p = gen.generate();
            ASSERT_FALSE(p.validate().has_value());
            const std::string text = formatProgram(p);
            Program q;
            ASSERT_NO_THROW(q = assemble(text)) << text;
            ASSERT_EQ(q.blocks.size(), p.blocks.size()) << text;
            for (std::size_t b = 0; b < p.blocks.size(); ++b) {
                ASSERT_EQ(q.blocks[b].body.size(), p.blocks[b].body.size())
                    << text;
                for (std::size_t k = 0; k < p.blocks[b].body.size(); ++k) {
                    EXPECT_EQ(q.blocks[b].body[k], p.blocks[b].body[k])
                        << "program " << i << " block " << b << " inst "
                        << k << "\n" << text;
                }
            }
        }
    };

    core::GeneratorConfig defaults;
    round_trip_many(defaults, 1234, 50);

    core::GeneratorConfig rare;
    rare.fencePct = 25;
    rare.setccPct = 25;
    rare.cmovLoadPct = 80;
    rare.rmwPct = 50;
    rare.loopnePct = 60;
    rare.unalignedPct = 80;
    round_trip_many(rare, 5678, 50);
}

TEST(Assembler, ErrorsCarryLineNumbers)
{
    EXPECT_THROW(assemble("FROB RAX, RBX"), AsmError);
    EXPECT_THROW(assemble("MOV RAX"), AsmError);
    EXPECT_THROW(assemble("JMP nowhere"), AsmError);
    EXPECT_THROW(assemble("JMP .undefined_label"), AsmError);
    EXPECT_THROW(assemble("MOV [R14], [R14]"), AsmError);
    try {
        assemble("NOP\nBADOP\n");
        FAIL() << "expected AsmError";
    } catch (const AsmError &e) {
        EXPECT_EQ(e.line(), 2u);
    }
}

TEST(Assembler, LockPrefixAndStoreForms)
{
    Program p = assemble("LOCK AND dword ptr [R14 + RCX], EDI\n"
                         "MOV dword ptr [R14 + RAX], EBX\n");
    const Inst &locked = p.blocks[0].body[0];
    EXPECT_TRUE(locked.lockPrefix);
    EXPECT_EQ(locked.width, 4u);
    EXPECT_TRUE(locked.isRmw());
    const Inst &store = p.blocks[0].body[1];
    EXPECT_TRUE(store.isStore());
    EXPECT_FALSE(store.isLoad());
}

TEST(Semantics, WidthMerge)
{
    EXPECT_EQ(mergeWidth(0x1122334455667788, 0xaabbccdd99aabbcc, 8),
              0xaabbccdd99aabbccULL);
    // 32-bit writes zero-extend.
    EXPECT_EQ(mergeWidth(0x1122334455667788, 0xdeadbeef, 4),
              0xdeadbeefULL);
    // 16/8-bit writes merge.
    EXPECT_EQ(mergeWidth(0x1122334455667788, 0xbeef, 2),
              0x112233445566beefULL);
    EXPECT_EQ(mergeWidth(0x1122334455667788, 0xef, 1),
              0x11223344556677efULL);
}

TEST(Semantics, AddSubFlags)
{
    Inst add;
    add.op = Op::Add;
    add.width = 8;
    Flags f;
    auto r = evalOp(add, 5, 7, 0, f);
    EXPECT_EQ(r.value, 12u);
    EXPECT_FALSE(r.flags.zf);
    EXPECT_FALSE(r.flags.cf);

    // Unsigned overflow sets CF.
    r = evalOp(add, ~0ULL, 1, 0, f);
    EXPECT_EQ(r.value, 0u);
    EXPECT_TRUE(r.flags.zf);
    EXPECT_TRUE(r.flags.cf);

    Inst sub;
    sub.op = Op::Sub;
    sub.width = 8;
    r = evalOp(sub, 3, 5, 0, f);
    EXPECT_EQ(r.value, static_cast<std::uint64_t>(-2));
    EXPECT_TRUE(r.flags.cf);
    EXPECT_TRUE(r.flags.sf);

    // Signed overflow: INT64_MIN - 1.
    r = evalOp(sub, 0x8000000000000000ULL, 1, 0, f);
    EXPECT_TRUE(r.flags.of);
}

TEST(Semantics, CmpDoesNotWriteDst)
{
    Inst cmp;
    cmp.op = Op::Cmp;
    cmp.width = 8;
    Flags f;
    auto r = evalOp(cmp, 5, 5, 0, f);
    EXPECT_FALSE(r.writesDst);
    EXPECT_TRUE(r.writesFlags);
    EXPECT_TRUE(r.flags.zf);
}

TEST(Semantics, LogicOpsClearCfOf)
{
    Flags f;
    f.cf = true;
    f.of = true;
    Inst andi;
    andi.op = Op::And;
    andi.width = 8;
    auto r = evalOp(andi, 0xf0, 0x0f, 0, f);
    EXPECT_EQ(r.value, 0u);
    EXPECT_TRUE(r.flags.zf);
    EXPECT_FALSE(r.flags.cf);
    EXPECT_FALSE(r.flags.of);
}

TEST(Semantics, ShiftsAndWidthTruncation)
{
    Flags f;
    Inst shl;
    shl.op = Op::Shl;
    shl.width = 4;
    auto r = evalOp(shl, 0x80000000, 1, 0, f);
    EXPECT_EQ(r.value, 0u); // bit shifted out of 32-bit lane
    EXPECT_TRUE(r.flags.cf);
    EXPECT_TRUE(r.flags.zf);

    Inst sar;
    sar.op = Op::Sar;
    sar.width = 8;
    r = evalOp(sar, static_cast<std::uint64_t>(-8), 1, 0, f);
    EXPECT_EQ(static_cast<std::int64_t>(r.value), -4);
}

TEST(Semantics, ImulOverflowFlag)
{
    Flags f;
    Inst imul;
    imul.op = Op::Imul;
    imul.width = 8;
    auto r = evalOp(imul, 3, 4, 0, f);
    EXPECT_EQ(r.value, 12u);
    EXPECT_FALSE(r.flags.cf);

    r = evalOp(imul, 0x4000000000000000ULL, 4, 0, f);
    EXPECT_TRUE(r.flags.cf);
    EXPECT_TRUE(r.flags.of);
}

TEST(Semantics, CmovSelectsPerCondition)
{
    Flags f;
    f.zf = true;
    Inst cmov;
    cmov.op = Op::Cmov;
    cmov.cond = Cond::E;
    cmov.width = 8;
    auto r = evalOp(cmov, 111, 222, 0, f);
    EXPECT_EQ(r.value, 222u);
    f.zf = false;
    r = evalOp(cmov, 111, 222, 0, f);
    EXPECT_EQ(r.value, 111u);
}

TEST(Semantics, MovzxMovsx)
{
    Flags f;
    Inst movzx;
    movzx.op = Op::Movzx;
    movzx.width = 1;
    auto r = evalOp(movzx, 0xffffffffffffffff, 0x80, 0, f);
    EXPECT_EQ(r.value, 0x80u);

    Inst movsx;
    movsx.op = Op::Movsx;
    movsx.width = 1;
    r = evalOp(movsx, 0, 0x80, 0, f);
    EXPECT_EQ(r.value, 0xffffffffffffff80ULL);
}

TEST(Disasm, FormatsBinaryMasksLikeThePaper)
{
    Inst mask;
    mask.op = Op::And;
    mask.dstKind = OpndKind::Reg;
    mask.dst = Reg::Rbx;
    mask.srcKind = OpndKind::Imm;
    mask.imm = 0xfff;
    mask.width = 8;
    EXPECT_EQ(formatInst(mask), "AND RBX, 0b111111111111");
}

} // namespace

/**
 * @file
 * Tests for the violation minimizer: it must shrink a violating program
 * (dropping irrelevant instructions) while both the contract equivalence
 * of the input pair and the μarch trace difference persist.
 */

#include <gtest/gtest.h>

#include "core/minimizer.hh"
#include "isa/assembler.hh"
#include "isa/disasm.hh"

namespace
{

using namespace amulet;

TEST(Minimizer, ShrinksSpectreV1KeepingTheViolation)
{
    // Spectre-v1 with padding: dead ALU instructions the minimizer should
    // strip, plus timing-relevant slow-chain/trailing work it must keep
    // enough of.
    std::string text = ".bb_main.0:\n";
    text += "    MOV RAX, qword ptr [R14 + 0]\n";
    for (int i = 0; i < 8; ++i)
        text += "    IMUL RAX, RAX\n";
    text += "    XOR R9, R9\n";   // dead
    text += "    ADD R10, 17\n";  // dead
    text += "    SUB R12, R13\n"; // dead
    text += "    TEST RAX, RAX\n";
    text += "    JNE .bb_main.1\n";
    text += "    AND RBX, 0b111110000000\n";
    text += "    MOV RDX, qword ptr [R14 + RBX]\n";
    text += "    JMP .bb_main.1\n";
    text += ".bb_main.1:\n";
    text += "    MOV R11, qword ptr [R14 + 8]\n";
    for (int i = 0; i < 40; ++i)
        text += "    IMUL R11, R11\n";
    const isa::Program prog = isa::assemble(text);

    executor::HarnessConfig cfg;
    cfg.defense.kind = defense::DefenseKind::Baseline;
    cfg.prime = executor::PrimeMode::ConflictFill;
    cfg.bootInsts = 1000;
    executor::SimHarness harness(cfg);
    const isa::FlatProgram fp(prog, cfg.map.codeBase);
    harness.loadProgram(&fp);

    core::ViolationRecord violation;
    violation.inputA.regs.fill(0);
    violation.inputA.sandbox.assign(cfg.map.sandboxSize(), 0);
    violation.inputA.sandbox[0] = 3;
    violation.inputA.sandbox[8] = 7;
    violation.inputB = violation.inputA;
    violation.inputA.regs[isa::regIndex(isa::Reg::Rbx)] = 0x080;
    violation.inputB.regs[isa::regIndex(isa::Reg::Rbx)] = 0x780;
    violation.ctxA = harness.saveContext();
    violation.ctxB = violation.ctxA;

    // Confirm the starting point violates.
    const auto ta = harness.runInput(violation.inputA).trace;
    harness.restoreContext(violation.ctxB);
    const auto tb = harness.runInput(violation.inputB).trace;
    ASSERT_FALSE(ta == tb) << "precondition: the pair must violate";

    contracts::LeakageModel model(contracts::ctSeq());
    const auto ct_a = model.collect(fp, violation.inputA, cfg.map);
    const auto ct_b = model.collect(fp, violation.inputB, cfg.map);
    ASSERT_EQ(contracts::hashCTrace(ct_a), contracts::hashCTrace(ct_b));

    const core::MinimizeResult result = core::minimizeViolation(
        harness, model, cfg.map, prog, violation);

    EXPECT_GT(result.removedInsts, 0u)
        << "the padding instructions must be removable";
    EXPECT_LT(result.program.countInsts(), prog.countInsts());
    EXPECT_GT(result.checks, result.removedInsts);

    // The reduced program still violates under the recorded contexts.
    const isa::FlatProgram reduced(result.program, cfg.map.codeBase);
    EXPECT_EQ(model.collect(reduced, violation.inputA, cfg.map),
              model.collect(reduced, violation.inputB, cfg.map));
    harness.loadProgram(&reduced);
    harness.restoreContext(violation.ctxA);
    const auto ra = harness.runInput(violation.inputA).trace;
    harness.restoreContext(violation.ctxB);
    const auto rb = harness.runInput(violation.inputB).trace;
    EXPECT_FALSE(ra == rb)
        << "reduced program must still violate:\n"
        << isa::formatProgram(result.program);

    // The speculative load (the leak's transmitter) must have survived.
    bool has_spec_load = false;
    for (const auto &bb : result.program.blocks) {
        for (const auto &inst : bb.body) {
            if (inst.isLoad() && inst.mem.hasIndex &&
                inst.mem.index == isa::Reg::Rbx) {
                has_spec_load = true;
            }
        }
    }
    EXPECT_TRUE(has_spec_load);
}

} // namespace

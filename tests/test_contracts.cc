/**
 * @file
 * Tests for the reference emulator (checkpoints/rollback), the leakage
 * model (contract traces, equivalence, read-offset analysis), memory
 * image, RNG determinism, input generation, and the relational analyzer.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "contracts/leakage_model.hh"
#include "core/analyzer.hh"
#include "core/generator.hh"
#include "core/input_gen.hh"
#include "isa/assembler.hh"
#include "mem/memory_image.hh"

namespace
{

using namespace amulet;

mem::AddressMap
testMap(unsigned pages = 1)
{
    mem::AddressMap map;
    map.sandboxPages = pages;
    return map;
}

arch::Input
makeInput(const mem::AddressMap &map, std::uint64_t seed)
{
    core::InputGenConfig cfg;
    cfg.map = map;
    Rng rng(seed);
    core::InputGenerator gen(cfg, rng);
    return gen.generate(0);
}

TEST(Rng, DeterministicAndSplittable)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
    Rng child_a = a.split();
    Rng child_b = b.split();
    EXPECT_EQ(child_a.next(), child_b.next());
    EXPECT_NE(Rng(1).next(), Rng(2).next());
}

TEST(Rng, BoundsRespected)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(rng.nextBelow(17), 17u);
        const auto v = rng.nextRange(5, 9);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 9u);
    }
    std::vector<std::uint32_t> weights = {0, 3, 0, 1};
    for (int i = 0; i < 100; ++i) {
        const auto pick = rng.pickWeighted(weights);
        EXPECT_TRUE(pick == 1 || pick == 3);
    }
}

TEST(MemoryImage, SparseReadsZero)
{
    mem::MemoryImage img;
    EXPECT_EQ(img.read(0xdeadbeef, 8), 0u);
    img.write(0x1000, 4, 0xaabbccdd);
    EXPECT_EQ(img.read(0x1000, 4), 0xaabbccddu);
    EXPECT_EQ(img.read(0x1002, 1), 0xbbu);
    // Cross-page bulk write/read round-trips.
    std::vector<std::uint8_t> data(9000);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 7);
    img.writeBytes(0x1ff0, data.data(), data.size());
    std::vector<std::uint8_t> back(data.size());
    img.readBytes(0x1ff0, back.data(), back.size());
    EXPECT_EQ(back, data);
}

TEST(Emulator, CheckpointRollbackRestoresEverything)
{
    const isa::Program prog = isa::assemble(R"(
        MOV RAX, 5
        AND RBX, 0b111111111111
        MOV qword ptr [R14 + RBX], RAX
        ADD RAX, 1
    )");
    const isa::FlatProgram fp(prog, 0x400000);
    const auto map = testMap();
    arch::ArchState st;
    st.loadInput(makeInput(map, 3), map);
    arch::Emulator emu(fp, std::move(st));

    emu.run(1); // MOV RAX, 5
    const auto regs_before = emu.state().regs;
    const Addr store_addr =
        map.sandboxBase + (emu.state().reg(isa::Reg::Rbx) & 0xfff);
    const auto mem_before = emu.state().mem.read(store_addr & ~7ull, 8);

    emu.pushCheckpoint();
    emu.run(); // rest of the program (store + add)
    EXPECT_TRUE(emu.halted());
    emu.rollbackCheckpoint();
    EXPECT_FALSE(emu.halted());
    EXPECT_EQ(emu.state().regs, regs_before);
    EXPECT_EQ(emu.state().mem.read(store_addr & ~7ull, 8), mem_before);
}

TEST(Emulator, NestedCheckpoints)
{
    const isa::Program prog = isa::assemble(R"(
        MOV qword ptr [R14 + 0], RDI
        MOV qword ptr [R14 + 8], RSI
    )");
    const isa::FlatProgram fp(prog, 0x400000);
    const auto map = testMap();
    arch::Input input = makeInput(map, 4);
    input.regs[isa::regIndex(isa::Reg::Rdi)] = 0x11;
    input.regs[isa::regIndex(isa::Reg::Rsi)] = 0x22;
    arch::ArchState st;
    st.loadInput(input, map);
    arch::Emulator emu(fp, std::move(st));

    emu.pushCheckpoint();
    emu.step(); // store 0x11
    emu.pushCheckpoint();
    emu.step(); // store 0x22
    EXPECT_EQ(emu.state().mem.read(map.sandboxBase + 8, 8), 0x22u);
    emu.rollbackCheckpoint();
    EXPECT_EQ(emu.state().mem.read(map.sandboxBase + 0, 8), 0x11u);
    emu.rollbackCheckpoint();
    EXPECT_NE(emu.state().mem.read(map.sandboxBase + 0, 8), 0x11u);
}

TEST(LeakageModel, DeterministicTraces)
{
    Rng rng(11);
    core::GeneratorConfig gcfg;
    gcfg.map = testMap();
    core::ProgramGenerator gen(gcfg, rng.split());
    const isa::Program prog = gen.generate();
    const isa::FlatProgram fp(prog, gcfg.map.codeBase);
    const arch::Input input = makeInput(gcfg.map, 12);

    for (const auto &spec : contracts::allContracts()) {
        contracts::LeakageModel model(spec);
        const auto t1 = model.collect(fp, input, gcfg.map);
        const auto t2 = model.collect(fp, input, gcfg.map);
        EXPECT_EQ(t1, t2) << spec.name;
        EXPECT_FALSE(t1.empty()) << spec.name;
    }
}

TEST(LeakageModel, CtSeqIgnoresUnreadMemory)
{
    const isa::Program prog = isa::assemble(R"(
        AND RBX, 0b111111111111
        MOV RAX, qword ptr [R14 + RBX]
    )");
    const isa::FlatProgram fp(prog, 0x400000);
    const auto map = testMap();
    arch::Input a = makeInput(map, 5);
    a.regs[isa::regIndex(isa::Reg::Rbx)] = 0x100;
    arch::Input b = a;
    b.sandbox[0x800] ^= 0xff; // never architecturally read

    contracts::LeakageModel ct_seq(contracts::ctSeq());
    EXPECT_EQ(ct_seq.collect(fp, a, map), ct_seq.collect(fp, b, map));

    // But ARCH-SEQ distinguishes inputs whose *read* value differs.
    arch::Input c = a;
    c.sandbox[0x100] ^= 0xff;
    contracts::LeakageModel arch_seq(contracts::archSeq());
    EXPECT_NE(arch_seq.collect(fp, a, map), arch_seq.collect(fp, c, map));
    EXPECT_EQ(ct_seq.collect(fp, a, map), ct_seq.collect(fp, c, map));
}

TEST(LeakageModel, CtCondExploresWrongPath)
{
    // The branch is architecturally taken; the fall-through loads from an
    // address derived from memory. CT-COND must expose the wrong-path
    // load address; CT-SEQ must not.
    const isa::Program prog = isa::assemble(R"(
.bb_main.0:
        CMP RAX, 0
        JNE .bb_main.1
        AND RBX, 0b111111111111
        MOV RDX, qword ptr [R14 + RBX]
        JMP .bb_main.1
.bb_main.1:
        NOP
    )");
    const isa::FlatProgram fp(prog, 0x400000);
    const auto map = testMap();
    arch::Input a = makeInput(map, 6);
    a.regs[isa::regIndex(isa::Reg::Rax)] = 1; // branch taken
    arch::Input b = a;
    b.regs[isa::regIndex(isa::Reg::Rbx)] =
        a.regs[isa::regIndex(isa::Reg::Rbx)] ^ 0x40;

    contracts::LeakageModel ct_seq(contracts::ctSeq());
    contracts::LeakageModel ct_cond(contracts::ctCond());
    EXPECT_EQ(ct_seq.collect(fp, a, map), ct_seq.collect(fp, b, map));
    EXPECT_NE(ct_cond.collect(fp, a, map), ct_cond.collect(fp, b, map));
}

TEST(LeakageModel, ArchReadOffsetsExcludeOverwrittenBytes)
{
    const isa::Program prog = isa::assemble(R"(
        MOV qword ptr [R14 + 64], RDI
        MOV RAX, qword ptr [R14 + 64]
        MOV RBX, qword ptr [R14 + 128]
    )");
    const isa::FlatProgram fp(prog, 0x400000);
    const auto map = testMap();
    const arch::Input input = makeInput(map, 7);
    contracts::LeakageModel model(contracts::ctSeq());
    const auto offsets = model.archReadOffsets(fp, input, map);
    // [64..71] was overwritten before the read: excluded. [128..135]
    // exposes its initial value: included.
    for (std::size_t off : offsets) {
        EXPECT_FALSE(off >= 64 && off < 72) << off;
    }
    EXPECT_NE(std::find(offsets.begin(), offsets.end(), 128u),
              offsets.end());
}

TEST(InputGen, SiblingPreservesContractRelevantBytes)
{
    const auto map = testMap();
    core::InputGenConfig cfg;
    cfg.map = map;
    Rng rng(9);
    core::InputGenerator gen(cfg, rng);
    const arch::Input base = gen.generate(0);
    const std::vector<std::size_t> offsets = {3, 500, 4095};
    const arch::Input sib = gen.sibling(base, offsets, 1);
    EXPECT_EQ(sib.regs, base.regs);
    EXPECT_EQ(sib.flagsByte, base.flagsByte);
    for (std::size_t off : offsets)
        EXPECT_EQ(sib.sandbox[off], base.sandbox[off]);
    EXPECT_NE(sib.sandbox, base.sandbox);
}

TEST(Analyzer, GroupsByExactTraceEquality)
{
    using contracts::CTrace;
    using contracts::Obs;
    CTrace t1 = {{Obs::Kind::Pc, 1}, {Obs::Kind::LoadAddr, 2}};
    CTrace t2 = t1;
    CTrace t3 = {{Obs::Kind::Pc, 1}, {Obs::Kind::LoadAddr, 3}};
    const auto classes = core::groupByCTrace({t1, t3, t2});
    ASSERT_EQ(classes.classes.size(), 2u);
    EXPECT_EQ(classes.effectiveClasses(), 1u);
    EXPECT_EQ(classes.classes[0], (std::vector<std::size_t>{0, 2}));
}

TEST(Analyzer, FindsOneCandidatePerDistinctDeviant)
{
    core::EquivalenceClasses classes;
    classes.classes = {{0, 1, 2, 3}};
    executor::UTrace base, devA, devB;
    base.words = {1};
    devA.words = {2};
    devB.words = {2}; // same deviant trace as devA
    const auto result =
        core::findCandidates(classes, {base, devA, devB, base});
    EXPECT_EQ(result.violatingTestCases, 2u);
    ASSERT_EQ(result.candidates.size(), 1u);
    EXPECT_EQ(result.candidates[0].a, 0u);
    EXPECT_EQ(result.candidates[0].b, 1u);
}

TEST(Generator, ProgramsAreWellFormedAndSandboxed)
{
    Rng rng(21);
    core::GeneratorConfig cfg;
    cfg.map = testMap();
    for (int i = 0; i < 50; ++i) {
        core::ProgramGenerator gen(cfg, rng.split());
        const isa::Program prog = gen.generate();
        EXPECT_FALSE(prog.validate().has_value());
        EXPECT_LE(prog.blocks.size(), cfg.maxBlocks);
        // Every memory access must be base-R14 with a masked index.
        for (const auto &bb : prog.blocks) {
            for (std::size_t k = 0; k < bb.body.size(); ++k) {
                const isa::Inst &inst = bb.body[k];
                if (!inst.isMemAccess())
                    continue;
                EXPECT_EQ(inst.mem.base, isa::kSandboxBaseReg);
                ASSERT_TRUE(inst.mem.hasIndex);
                ASSERT_GT(k, 0u);
                const isa::Inst &mask = bb.body[k - 1];
                EXPECT_EQ(mask.op, isa::Op::And);
                EXPECT_EQ(mask.dst, inst.mem.index);
                EXPECT_EQ(mask.imm,
                          static_cast<std::int64_t>(
                              cfg.map.sandboxMask()));
            }
        }
    }
}

TEST(Generator, DeterministicForEqualSeeds)
{
    core::GeneratorConfig cfg;
    cfg.map = testMap();
    core::ProgramGenerator g1(cfg, Rng(77));
    core::ProgramGenerator g2(cfg, Rng(77));
    const isa::Program p1 = g1.generate();
    const isa::Program p2 = g2.generate();
    ASSERT_EQ(p1.blocks.size(), p2.blocks.size());
    for (std::size_t b = 0; b < p1.blocks.size(); ++b)
        EXPECT_EQ(p1.blocks[b].body, p2.blocks[b].body);
}

} // namespace

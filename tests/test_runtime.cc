/**
 * @file
 * Runtime-subsystem tests: the scheduler's determinism contract (equal
 * results for any jobs value), concurrent ViolationSink merging, the
 * worker pool, and matrix scheduling.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/campaign.hh"
#include "runtime/matrix.hh"
#include "runtime/violation_sink.hh"
#include "runtime/worker_pool.hh"

namespace
{

using namespace amulet;

core::CampaignConfig
smallCampaign(unsigned jobs)
{
    core::CampaignConfig cfg;
    cfg.harness.defense.kind = defense::DefenseKind::Baseline;
    cfg.harness.prime = executor::PrimeMode::ConflictFill;
    cfg.harness.bootInsts = 2000;
    cfg.gen.map = cfg.harness.map;
    cfg.inputs.map = cfg.harness.map;
    cfg.numPrograms = 12;
    cfg.baseInputsPerProgram = 6;
    cfg.siblingsPerBase = 4;
    cfg.seed = 1; // detects spectre-v1 within 12 programs
    cfg.jobs = jobs;
    return cfg;
}

// The determinism contract: a campaign sharded over 4 workers must reach
// exactly the same verdicts as the serial run — confirmed violations,
// per-signature counts, unique-violation count, and the analysis
// counters. Only wall-clock-derived fields may differ.
TEST(RuntimeDeterminism, FourJobsMatchSerial)
{
    core::Campaign serial(smallCampaign(1));
    const auto s1 = serial.run();
    core::Campaign sharded(smallCampaign(4));
    const auto s4 = sharded.run();

    EXPECT_EQ(s1.jobs, 1u);
    EXPECT_EQ(s4.jobs, 4u);
    EXPECT_EQ(s1.confirmedViolations, s4.confirmedViolations);
    EXPECT_EQ(s1.signatureCounts, s4.signatureCounts);
    EXPECT_EQ(s1.uniqueViolations(), s4.uniqueViolations());
    EXPECT_EQ(s1.programs, s4.programs);
    EXPECT_EQ(s1.testCases, s4.testCases);
    EXPECT_EQ(s1.effectiveClasses, s4.effectiveClasses);
    EXPECT_EQ(s1.candidateViolations, s4.candidateViolations);
    EXPECT_EQ(s1.violatingTestCases, s4.violatingTestCases);

    // The campaign should find something, or the comparison is vacuous.
    EXPECT_GT(s1.confirmedViolations, 0u);

    // Records merge in program order with identical content.
    ASSERT_EQ(s1.records.size(), s4.records.size());
    for (std::size_t i = 0; i < s1.records.size(); ++i) {
        EXPECT_EQ(s1.records[i].programIndex, s4.records[i].programIndex);
        EXPECT_EQ(s1.records[i].signature, s4.records[i].signature);
        EXPECT_EQ(s1.records[i].inputA.id, s4.records[i].inputA.id);
        EXPECT_EQ(s1.records[i].inputB.id, s4.records[i].inputB.id);
    }
}

// Two runs at the same parallelism are bit-identical too (no data races
// leaking into results).
TEST(RuntimeDeterminism, RepeatedParallelRunsAgree)
{
    core::Campaign a(smallCampaign(3));
    core::Campaign b(smallCampaign(3));
    const auto sa = a.run();
    const auto sb = b.run();
    EXPECT_EQ(sa.confirmedViolations, sb.confirmedViolations);
    EXPECT_EQ(sa.signatureCounts, sb.signatureCounts);
    EXPECT_EQ(sa.testCases, sb.testCases);
}

TEST(ViolationSink, ConcurrentReportsMergeAndDedup)
{
    constexpr unsigned kPrograms = 64;
    constexpr unsigned kMaxRecords = 10;
    runtime::ViolationSink sink(kPrograms, kMaxRecords);

    // 8 threads report 8 programs each; program p contributes one
    // confirmed violation with one of two signatures and a record.
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < 8; ++t) {
        threads.emplace_back([&sink, t] {
            for (unsigned i = 0; i < 8; ++i) {
                const unsigned p = t * 8 + i;
                runtime::ProgramOutcome out;
                out.ran = true;
                out.testCases = 30;
                out.confirmedViolations = 1;
                out.firstDetectSeconds = 100.0 - p; // min at p=63
                const char *sig =
                    (p % 2 == 0) ? "sig-even" : "sig-odd";
                out.signatureCounts[sig] = 1;
                core::ViolationRecord rec;
                rec.programIndex = p;
                rec.signature = sig;
                out.records.push_back(rec);
                sink.report(p, std::move(out));
            }
        });
    }
    for (auto &t : threads)
        t.join();

    const core::CampaignStats stats = sink.finalize();
    EXPECT_EQ(stats.programs, kPrograms);
    EXPECT_EQ(stats.testCases, 30u * kPrograms);
    EXPECT_EQ(stats.confirmedViolations, kPrograms);
    // Deduplicated into exactly two signature buckets of 32 each.
    ASSERT_EQ(stats.signatureCounts.size(), 2u);
    EXPECT_EQ(stats.signatureCounts.at("sig-even"), 32u);
    EXPECT_EQ(stats.signatureCounts.at("sig-odd"), 32u);
    EXPECT_EQ(stats.uniqueViolations(), 2u);
    // min-merged across threads regardless of completion order.
    EXPECT_DOUBLE_EQ(stats.firstDetectSeconds, 100.0 - 63);
    // Record cap applies in program order: programs 0..9.
    ASSERT_EQ(stats.records.size(), kMaxRecords);
    for (unsigned i = 0; i < kMaxRecords; ++i)
        EXPECT_EQ(stats.records[i].programIndex, i);
}

TEST(ViolationSink, SkippedProgramsAreNotCounted)
{
    runtime::ViolationSink sink(3, 8);
    runtime::ProgramOutcome ran;
    ran.ran = true;
    ran.testCases = 30;
    sink.report(0, std::move(ran));
    runtime::ProgramOutcome skipped; // cycle-cap path: ran stays false
    skipped.skippedProgram = true;
    skipped.testGenSec = 0.5;
    sink.report(1, std::move(skipped));
    // Program 2 never reported (e.g. stop-first cut the campaign short).

    const auto stats = sink.finalize();
    EXPECT_EQ(stats.programs, 1u);
    EXPECT_EQ(stats.testCases, 30u);
    // A cycle-cap abort merges no counters but is counted as a skip —
    // pre-pipeline these programs were counted nowhere.
    EXPECT_EQ(stats.skippedPrograms, 1u);
    // Generation time of skipped programs still shows up in the
    // breakdown; their test cases do not.
    EXPECT_DOUBLE_EQ(stats.times.testGenSec, 0.5);
}

TEST(ViolationSink, FilterCountersMergeAndFullyFilteredProgramsCount)
{
    runtime::ViolationSink sink(2, 8);
    // A fully-filtered program: completed deterministically (ran), all
    // inputs dropped, simulator skipped.
    runtime::ProgramOutcome filtered;
    filtered.ran = true;
    filtered.skippedProgram = true;
    filtered.testCases = 30;
    filtered.filteredTestCases = 30;
    filtered.filterSec = 0.25;
    sink.report(0, std::move(filtered));
    runtime::ProgramOutcome partial;
    partial.ran = true;
    partial.testCases = 30;
    partial.filteredTestCases = 5;
    sink.report(1, std::move(partial));

    const auto stats = sink.finalize();
    EXPECT_EQ(stats.programs, 2u);
    EXPECT_EQ(stats.skippedPrograms, 1u);
    EXPECT_EQ(stats.testCases, 60u);
    EXPECT_EQ(stats.filteredTestCases, 35u);
    EXPECT_EQ(stats.simInputRuns(), 25u);
    EXPECT_DOUBLE_EQ(stats.times.filterSec, 0.25);
}

TEST(WorkerPool, RunsEverySubmittedJob)
{
    runtime::WorkerPool pool(4);
    std::atomic<unsigned> counter{0};
    for (unsigned i = 0; i < 100; ++i)
        pool.submit([&counter] {
            counter.fetch_add(1, std::memory_order_relaxed);
        });
    pool.wait();
    EXPECT_EQ(counter.load(), 100u);

    // The pool stays usable after a drain.
    pool.submit([&counter] { counter.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(counter.load(), 101u);
}

TEST(MatrixRunner, SweepResultsMatchDirectRuns)
{
    auto base = [](defense::DefenseKind kind) {
        core::CampaignConfig cfg = smallCampaign(1);
        cfg.harness.defense.kind = kind;
        cfg.numPrograms = 4;
        return cfg;
    };

    runtime::MatrixRunner matrix(2);
    matrix.addSweep(base, {defense::DefenseKind::Baseline},
                    {contracts::ctSeq()}, {33, 34});
    ASSERT_EQ(matrix.size(), 2u);
    const auto results = matrix.runAll();
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].label, "Baseline/CT-SEQ/seed33");
    EXPECT_EQ(results[1].label, "Baseline/CT-SEQ/seed34");

    for (const auto &result : results) {
        auto cfg = base(defense::DefenseKind::Baseline);
        cfg.seed = result.config.seed;
        const auto direct = core::Campaign(cfg).run();
        EXPECT_EQ(result.stats.confirmedViolations,
                  direct.confirmedViolations);
        EXPECT_EQ(result.stats.signatureCounts, direct.signatureCounts);
        EXPECT_EQ(result.stats.testCases, direct.testCases);
    }
}

} // namespace

/**
 * @file
 * Architectural-equivalence tests: the out-of-order pipeline must commit
 * exactly the architectural state the reference emulator computes, for
 * hand-written programs and for randomized property sweeps (programs x
 * inputs x defenses). This is the foundation of relational testing: both
 * sides agree on architecture, so any μarch trace difference is purely
 * speculative.
 */

#include <gtest/gtest.h>

#include "arch/emulator.hh"
#include "common/rng.hh"
#include "core/generator.hh"
#include "core/input_gen.hh"
#include "defense/factory.hh"
#include "isa/assembler.hh"
#include "isa/disasm.hh"
#include "uarch/pipeline.hh"

namespace
{

using namespace amulet;

mem::AddressMap
testMap(unsigned pages = 1)
{
    mem::AddressMap map;
    map.sandboxPages = pages;
    return map;
}

/** Run a flat program architecturally on the emulator. */
arch::ArchState
emulate(const isa::FlatProgram &fp, const arch::Input &input,
        const mem::AddressMap &map)
{
    arch::ArchState st;
    st.loadInput(input, map);
    arch::Emulator emu(fp, std::move(st));
    emu.run();
    return emu.state();
}

/** Run a flat program on the pipeline with a given defense. */
struct PipeRun
{
    std::array<RegVal, isa::kNumRegs> regs;
    isa::Flags flags;
    uarch::RunResult result;
    std::unique_ptr<mem::MemoryImage> memory;
};

PipeRun
simulate(const isa::FlatProgram &fp, const arch::Input &input,
         const mem::AddressMap &map, const uarch::CoreParams &params,
         const defense::DefenseConfig &dcfg)
{
    PipeRun out;
    out.memory = std::make_unique<mem::MemoryImage>();
    static EventLog log;
    auto defense = defense::makeDefense(dcfg, params);
    uarch::Pipeline pipe(params, *out.memory, log);
    pipe.setDefense(defense.get());
    pipe.setProgram(&fp);

    if (!input.sandbox.empty()) {
        out.memory->writeBytes(map.sandboxBase, input.sandbox.data(),
                               input.sandbox.size());
    }
    std::array<RegVal, isa::kNumRegs> regs = input.regs;
    regs[isa::regIndex(isa::kSandboxBaseReg)] = map.sandboxBase;
    regs[isa::regIndex(isa::Reg::Rsp)] = 0;
    pipe.setArchRegs(regs, isa::Flags::unpack(input.flagsByte));
    out.result = pipe.run();
    out.regs = pipe.archRegs();
    out.flags = pipe.archFlags();
    return out;
}

arch::Input
makeInput(Rng &rng, const mem::AddressMap &map)
{
    core::InputGenConfig icfg;
    icfg.map = map;
    core::InputGenerator gen(icfg, rng.split());
    return gen.generate(0);
}

void
expectArchMatch(const isa::Program &prog, const arch::Input &input,
                const mem::AddressMap &map,
                const defense::DefenseConfig &dcfg,
                const uarch::CoreParams &params)
{
    const isa::FlatProgram fp(prog, map.codeBase);
    const arch::ArchState ref = emulate(fp, input, map);
    const PipeRun got = simulate(fp, input, map, params, dcfg);

    ASSERT_TRUE(got.result.halted)
        << "pipeline hit the cycle cap\n"
        << isa::formatProgram(prog);
    for (unsigned r = 0; r < isa::kNumRegs; ++r) {
        EXPECT_EQ(got.regs[r], ref.regs[r])
            << "register " << isa::regName(isa::regFromIndex(r))
            << " mismatch\n"
            << isa::formatProgram(prog);
    }
    EXPECT_EQ(got.flags, ref.flags) << isa::formatProgram(prog);
    // Compare the sandbox memory contents.
    for (Addr a = map.sandboxBase; a < map.sandboxEnd(); a += 1) {
        const std::uint8_t want = ref.mem.readByte(a);
        const std::uint8_t have = got.memory->readByte(a);
        ASSERT_EQ(have, want)
            << "memory mismatch at 0x" << std::hex << a << "\n"
            << isa::formatProgram(prog);
    }
}

TEST(PipelineArch, StraightLineAlu)
{
    const char *text = R"(
        MOV RAX, 5
        MOV RBX, 7
        ADD RAX, RBX
        IMUL RAX, RBX
        SUB RAX, 4
        XOR RCX, RCX
        SETE CL
    )";
    const isa::Program prog = isa::assemble(text);
    Rng rng(42);
    const auto map = testMap();
    expectArchMatch(prog, makeInput(rng, map), map, {}, {});
}

TEST(PipelineArch, LoadsStoresAndRmw)
{
    const char *text = R"(
        AND RBX, 0b111111111111
        MOV qword ptr [R14 + RBX], RDI
        MOV RAX, qword ptr [R14 + RBX]
        AND RCX, 0b111111111111
        OR byte ptr [R14 + RCX], AL
        AND RDX, 0b111111111111
        CMOVNE SI, word ptr [R14 + RDX]
    )";
    const isa::Program prog = isa::assemble(text);
    Rng rng(43);
    const auto map = testMap();
    for (int i = 0; i < 10; ++i)
        expectArchMatch(prog, makeInput(rng, map), map, {}, {});
}

TEST(PipelineArch, BranchesAndLoopne)
{
    const char *text = R"(
.bb_main.0:
        CMP RAX, 0
        JNE .bb_main.1
        MOV RBX, 111
        JMP .bb_main.1
.bb_main.1:
        MOV RCX, 3
        TEST RDX, RDX
        LOOPNE .bb_main.2
        JMP .exit
.bb_main.2:
        ADD RBX, 1
        JMP .exit
    )";
    const isa::Program prog = isa::assemble(text);
    Rng rng(44);
    const auto map = testMap();
    for (int i = 0; i < 10; ++i)
        expectArchMatch(prog, makeInput(rng, map), map, {}, {});
}

TEST(PipelineArch, StoreToLoadForwardingChain)
{
    // A store whose data arrives late, then a dependent load: exercises
    // forwarding and v4-speculation recovery.
    const char *text = R"(
        AND RBX, 0b111111111111
        IMUL RDI, RDI
        IMUL RDI, RDI
        AND RDI, 0b111111111111
        MOV qword ptr [R14 + RDI], RSI
        MOV RAX, qword ptr [R14 + RBX]
        AND RAX, 0b111111111111
        MOV RDX, qword ptr [R14 + RAX]
    )";
    const isa::Program prog = isa::assemble(text);
    Rng rng(45);
    const auto map = testMap();
    for (int i = 0; i < 20; ++i)
        expectArchMatch(prog, makeInput(rng, map), map, {}, {});
}

/** Property sweep: random programs, random inputs, every defense. */
class ArchEquivalence
    : public ::testing::TestWithParam<std::tuple<defense::DefenseKind,
                                                 unsigned>>
{
};

TEST_P(ArchEquivalence, RandomProgramsMatchEmulator)
{
    const auto [kind, seed] = GetParam();
    const auto map = testMap();
    defense::DefenseConfig dcfg;
    dcfg.kind = kind;
    uarch::CoreParams params;

    Rng rng(1000 + seed);
    core::GeneratorConfig gcfg;
    gcfg.map = map;
    for (int iter = 0; iter < 8; ++iter) {
        core::ProgramGenerator gen(gcfg, rng.split());
        const isa::Program prog = gen.generate();
        ASSERT_FALSE(prog.validate().has_value());
        for (int i = 0; i < 3; ++i) {
            SCOPED_TRACE("defense=" +
                         std::string(defense::defenseKindName(kind)) +
                         " seed=" + std::to_string(seed) +
                         " iter=" + std::to_string(iter));
            expectArchMatch(prog, makeInput(rng, map), map, dcfg, params);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllDefenses, ArchEquivalence,
    ::testing::Combine(
        ::testing::Values(defense::DefenseKind::Baseline,
                          defense::DefenseKind::InvisiSpec,
                          defense::DefenseKind::CleanupSpec,
                          defense::DefenseKind::Stt,
                          defense::DefenseKind::SpecLfb),
        ::testing::Values(1u, 2u, 3u)));

/** Amplified configurations must also stay architecturally correct. */
TEST(PipelineArch, AmplifiedStructuresStillCorrect)
{
    const auto map = testMap();
    uarch::CoreParams params;
    params.l1d.ways = 2;
    params.l1dMshrs = 2;
    defense::DefenseConfig dcfg;
    dcfg.kind = defense::DefenseKind::InvisiSpec;

    Rng rng(77);
    core::GeneratorConfig gcfg;
    gcfg.map = map;
    for (int iter = 0; iter < 6; ++iter) {
        core::ProgramGenerator gen(gcfg, rng.split());
        const isa::Program prog = gen.generate();
        expectArchMatch(prog, makeInput(rng, map), map, dcfg, params);
    }
}

} // namespace

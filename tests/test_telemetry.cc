/**
 * @file
 * Telemetry layer contracts (src/telemetry/README.md):
 *
 *  - the metrics registry's instruments record, merge, and snapshot
 *    deterministically (histogram decimation is RNG-free);
 *  - telemetry is observability only: for every defense, the canonical
 *    corpus export is byte-identical with tracing + heartbeats + the
 *    per-violation uarch trace dir on and off, at jobs 1 and 4, on all
 *    three executor backends;
 *  - the heartbeat stream is well-formed JSONL with monotonic per-shard
 *    progress indices, and the trace file is one valid JSON document
 *    with the Chrome trace-event shape (timestamps ordered per thread
 *    by completion);
 *  - a campaign with uarchTraceDir set writes Konata-parseable pipeline
 *    traces for journaled violations (per-instruction contracts live in
 *    tests/test_uarch_trace.cc);
 *  - EventLog's configurable capacity drops oldest-first and counts
 *    what it dropped.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/event_log.hh"
#include "core/campaign.hh"
#include "corpus/corpus_store.hh"
#include "corpus/serde.hh"
#include "telemetry/metrics.hh"
#include "telemetry/telemetry.hh"
#include "telemetry/trace.hh"

namespace fs = std::filesystem;

namespace
{

using namespace amulet;

// --- registry unit contracts -----------------------------------------

TEST(MetricsRegistry, InstrumentsRecordAndSnapshot)
{
    telemetry::MetricsRegistry reg;
    reg.counter("c").add(3);
    reg.counter("c").add();
    reg.gauge("g").set(2.5);
    reg.timer("t").add(0.5);
    reg.timer("t").add(0.25);
    reg.histogram("h").observe(1.0);
    reg.histogram("h").observe(3.0);

    const telemetry::MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.at("c").value, 4);
    EXPECT_EQ(snap.at("g").value, 2.5);
    EXPECT_EQ(snap.at("t").value, 0.75);
    EXPECT_EQ(snap.at("t").count, 2u);
    EXPECT_EQ(snap.at("h").count, 2u);
    EXPECT_EQ(snap.at("h").sum, 4.0);
    EXPECT_EQ(snap.at("h").min, 1.0);
    EXPECT_EQ(snap.at("h").max, 3.0);
}

TEST(MetricsRegistry, KindAliasingThrows)
{
    telemetry::MetricsRegistry reg;
    reg.counter("x");
    EXPECT_THROW(reg.timer("x"), std::logic_error);
}

TEST(MetricsRegistry, MergeFoldsEveryKind)
{
    telemetry::MetricsRegistry a;
    telemetry::MetricsRegistry b;
    a.counter("c").add(1);
    b.counter("c").add(2);
    b.gauge("g").set(7);
    a.timer("t").add(1.0);
    b.timer("t").add(2.0);
    a.histogram("h").observe(1);
    b.histogram("h").observe(9);
    a.merge(b);

    const auto snap = a.snapshot();
    EXPECT_EQ(snap.at("c").value, 3);
    EXPECT_EQ(snap.at("g").value, 7);   // written in b only
    EXPECT_EQ(snap.at("t").value, 3.0);
    EXPECT_EQ(snap.at("t").count, 2u);
    EXPECT_EQ(snap.at("h").count, 2u);
    EXPECT_EQ(snap.at("h").max, 9.0);
}

TEST(MetricsRegistry, HistogramPercentilesAndDecimation)
{
    telemetry::Histogram h(64); // force thinning
    for (int i = 1; i <= 1000; ++i)
        h.observe(i);
    EXPECT_EQ(h.count(), 1000u);
    EXPECT_EQ(h.min(), 1.0);
    EXPECT_EQ(h.max(), 1000.0);
    EXPECT_LE(h.samples().size(), 64u);
    EXPECT_GT(h.stride(), 1u);
    // Decimation keeps the distribution's shape: the percentile of the
    // uniform ramp stays near its exact value.
    EXPECT_NEAR(h.percentile(0.5), 500.0, 100.0);
    EXPECT_NEAR(h.percentile(0.95), 950.0, 100.0);

    // Same observations => byte-equal retained samples (no RNG).
    telemetry::Histogram h2(64);
    for (int i = 1; i <= 1000; ++i)
        h2.observe(i);
    EXPECT_EQ(h.samples(), h2.samples());
}

TEST(MetricsRegistry, TimedSectionTotalSumsOnlyTimeNamespace)
{
    telemetry::MetricsRegistry reg;
    reg.timer("time.simulate").add(2.0);
    reg.timer("time.testGen").add(1.0);
    reg.timer("stage.execute").add(50.0); // observability, not a section
    reg.counter("time.bogus");            // not a timer
    EXPECT_EQ(telemetry::timedSectionTotalSec(reg.snapshot()), 3.0);
}

// --- event log capacity ----------------------------------------------

TEST(EventLogCapacity, DropsOldestAndCounts)
{
    EventLog log;
    log.setEnabled(true);
    log.setCapacity(16);
    for (unsigned i = 0; i < 100; ++i)
        log.record(i, EventKind::Commit, i);
    EXPECT_LE(log.events().size(), 16u);
    EXPECT_EQ(log.events().size() + log.dropped(), 100u);
    // Oldest-first: the retained window is the tail of the stream.
    EXPECT_EQ(log.events().back().cycle, 99u);
    for (std::size_t i = 1; i < log.events().size(); ++i)
        EXPECT_LT(log.events()[i - 1].cycle, log.events()[i].cycle);

    // Shrinking trims immediately; clear resets the drop count.
    log.setCapacity(4);
    EXPECT_LE(log.events().size(), 4u);
    log.clear();
    EXPECT_EQ(log.dropped(), 0u);
    EXPECT_TRUE(log.events().empty());

    // Capacity 0 (default) stays unbounded.
    EventLog unbounded;
    unbounded.setEnabled(true);
    for (unsigned i = 0; i < 100; ++i)
        unbounded.record(i, EventKind::Commit);
    EXPECT_EQ(unbounded.events().size(), 100u);
    EXPECT_EQ(unbounded.dropped(), 0u);
}

// --- e2e: telemetry is invisible to campaign results ------------------

/** Unique scratch directory, removed on destruction. */
class ScratchDir
{
  public:
    explicit ScratchDir(const std::string &name)
        : path_((fs::temp_directory_path() /
                 ("amulet_telemetry_test_" + name +
                  std::to_string(::getpid())))
                    .string())
    {
        fs::remove_all(path_);
    }

    ~ScratchDir() { fs::remove_all(path_); }

    std::string
    sub(const std::string &name) const
    {
        return (fs::path(path_) / name).string();
    }

  private:
    std::string path_;
};

core::CampaignConfig
campaignConfig(defense::DefenseKind kind, unsigned jobs,
               executor::BackendKind backend)
{
    core::CampaignConfig cfg;
    cfg.harness.defense.kind = kind;
    cfg.harness.prime = (kind == defense::DefenseKind::CleanupSpec ||
                         kind == defense::DefenseKind::SpecLfb)
                            ? executor::PrimeMode::Invalidate
                            : executor::PrimeMode::ConflictFill;
    cfg.harness.bootInsts = 1500;
    if (kind == defense::DefenseKind::Stt) {
        cfg.harness.map.sandboxPages = 128;
        cfg.contract = contracts::archSeq();
    }
    cfg.gen.map = cfg.harness.map;
    cfg.inputs.map = cfg.harness.map;
    cfg.numPrograms = 6;
    cfg.baseInputsPerProgram = 6;
    cfg.siblingsPerBase = 4;
    cfg.seed = 1;
    cfg.jobs = jobs;
    cfg.backend = backend;
    return cfg;
}

std::string
readFileText(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** Every line parses as JSON; per-shard "progress" never decreases and
 *  the final line accounts for every program. */
void
checkHeartbeat(const std::string &path, unsigned expect_programs)
{
    const std::string text = readFileText(path);
    ASSERT_FALSE(text.empty()) << path;
    std::map<std::uint64_t, std::uint64_t> last_progress;
    double last_elapsed = -1;
    std::uint64_t final_done = 0;
    std::istringstream lines(text);
    std::string line;
    unsigned count = 0;
    while (std::getline(lines, line)) {
        ASSERT_FALSE(line.empty());
        const corpus::Json doc = corpus::Json::parse(line);
        ++count;
        const double elapsed = doc.at("elapsedSec").asDouble();
        EXPECT_GE(elapsed, last_elapsed);
        last_elapsed = elapsed;
        final_done = doc.at("programsDone").asU64() +
                     doc.at("resumedPrograms").asU64();
        for (const corpus::Json &sh : doc.at("shards").items()) {
            const std::uint64_t id = sh.at("shard").asU64();
            const std::uint64_t progress = sh.at("progress").asU64();
            auto it = last_progress.find(id);
            if (it != last_progress.end())
                EXPECT_GE(progress, it->second) << "shard " << id;
            last_progress[id] = progress;
        }
    }
    EXPECT_GE(count, 2u); // the immediate line + the final stop() line
    EXPECT_EQ(final_done, expect_programs);
}

/** The trace file is one JSON object of Chrome trace events: metadata
 *  thread names plus complete ("X") spans with ts/dur. */
void
checkTrace(const std::string &path)
{
    const std::string text = readFileText(path);
    ASSERT_FALSE(text.empty()) << path;
    const corpus::Json doc = corpus::Json::parse(text);
    const corpus::Json &events = doc.at("traceEvents");
    bool sawStage = false;
    bool sawThreadName = false;
    // Spans append to each thread's buffer when they *complete*, so the
    // per-thread completion time (ts + dur) never decreases — raw ts
    // alone can (a nested span starts after, and ends before, its
    // parent).
    std::map<std::uint64_t, double> last_end;
    for (const corpus::Json &ev : events.items()) {
        const std::string ph = ev.at("ph").asStr();
        if (ph == "M") {
            sawThreadName |=
                ev.at("name").asStr() == std::string("thread_name");
            continue;
        }
        ASSERT_EQ(ph, "X");
        EXPECT_GE(ev.at("dur").asDouble(), 0.0);
        const std::uint64_t tid = ev.at("tid").asU64();
        const double end =
            ev.at("ts").asDouble() + ev.at("dur").asDouble();
        auto it = last_end.find(tid);
        if (it != last_end.end())
            EXPECT_GE(end, it->second) << "tid " << tid;
        last_end[tid] = end;
        sawStage |= ev.at("name").asStr().rfind("stage.", 0) == 0;
    }
    EXPECT_TRUE(sawThreadName);
    EXPECT_TRUE(sawStage);
}

/** Every .kanata file under @p dir parses as a Kanata 0004 log whose
 *  stage begins/ends balance per instruction lane. */
void
checkKanataDir(const std::string &dir, bool expect_some)
{
    unsigned files = 0;
    if (fs::exists(dir)) {
        for (const auto &entry : fs::directory_iterator(dir)) {
            if (entry.path().extension() != ".kanata")
                continue;
            ++files;
            std::istringstream lines(readFileText(entry.path().string()));
            std::string line;
            ASSERT_TRUE(std::getline(lines, line));
            EXPECT_EQ(line, "Kanata\t0004") << entry.path();
            std::map<std::string, std::string> open; // lane -> stage
            while (std::getline(lines, line)) {
                std::istringstream cells(line);
                std::vector<std::string> f;
                for (std::string cell; std::getline(cells, cell, '\t');)
                    f.push_back(cell);
                if (f.empty())
                    continue;
                if (f[0] == "S") {
                    EXPECT_FALSE(open.count(f.at(1))) << line;
                    open[f.at(1)] = f.at(3);
                } else if (f[0] == "E") {
                    auto it = open.find(f.at(1));
                    ASSERT_NE(it, open.end()) << line;
                    EXPECT_EQ(it->second, f.at(3)) << line;
                    open.erase(it);
                }
            }
            EXPECT_TRUE(open.empty()) << entry.path();
        }
    }
    if (expect_some)
        EXPECT_GT(files, 0u) << dir;
}

void
runEquivalence(defense::DefenseKind kind)
{
    ScratchDir scratch(defense::defenseKindName(kind));
    // Reference: telemetry off, in-process, serial.
    core::CampaignConfig ref_cfg = campaignConfig(
        kind, 1, executor::BackendKind::InProcess);
    ref_cfg.corpusDir = scratch.sub("ref");
    core::Campaign(ref_cfg).run();
    const std::string reference =
        corpus::CorpusStore::exportCanonical(scratch.sub("ref"));

    unsigned n = 0;
    for (unsigned jobs : {1u, 4u}) {
        for (auto backend : executor::allBackendKinds()) {
            SCOPED_TRACE("jobs=" + std::to_string(jobs) + " backend=" +
                         executor::backendKindName(backend));
            const std::string tag = "on" + std::to_string(n++);
            core::CampaignConfig cfg = campaignConfig(kind, jobs, backend);
            cfg.corpusDir = scratch.sub(tag);
            cfg.telemetry.traceOutPath = scratch.sub(tag + ".trace.json");
            cfg.telemetry.heartbeatPath = scratch.sub(tag + ".hb.jsonl");
            cfg.telemetry.heartbeatIntervalSec = 0.05;
            cfg.telemetry.uarchTraceDir = scratch.sub(tag + ".utraces");
            const core::CampaignStats stats = core::Campaign(cfg).run();
            EXPECT_EQ(reference,
                      corpus::CorpusStore::exportCanonical(cfg.corpusDir));
            checkHeartbeat(cfg.telemetry.heartbeatPath, cfg.numPrograms);
            checkTrace(cfg.telemetry.traceOutPath);
            // Per-violation pipeline traces exist whenever violations
            // were journaled, and parse as balanced Kanata logs.
            checkKanataDir(cfg.telemetry.uarchTraceDir,
                           !stats.records.empty());
        }
    }
}

TEST(TelemetryEquivalence, Baseline)
{
    runEquivalence(defense::DefenseKind::Baseline);
}

TEST(TelemetryEquivalence, InvisiSpec)
{
    runEquivalence(defense::DefenseKind::InvisiSpec);
}

TEST(TelemetryEquivalence, CleanupSpec)
{
    runEquivalence(defense::DefenseKind::CleanupSpec);
}

TEST(TelemetryEquivalence, SpecLfb)
{
    runEquivalence(defense::DefenseKind::SpecLfb);
}

TEST(TelemetryEquivalence, Stt)
{
    runEquivalence(defense::DefenseKind::Stt);
}

// --- campaign stats are registry-derived ------------------------------

TEST(TelemetryStats, RegistryFeedsTimeBreakdownAndMetricsJson)
{
    ScratchDir scratch("stats");
    core::CampaignConfig cfg = campaignConfig(
        defense::DefenseKind::Baseline, 2,
        executor::BackendKind::InProcess);
    cfg.corpusDir = scratch.sub("c");
    const core::CampaignStats stats = core::Campaign(cfg).run();

    // The breakdown comes straight out of the merged registry.
    ASSERT_TRUE(stats.metrics.count("time.simulate"));
    EXPECT_EQ(stats.times.simulateSec,
              stats.metrics.at("time.simulate").value);
    EXPECT_EQ(stats.times.testGenSec,
              stats.metrics.at("time.testGen").value);
    EXPECT_GE(stats.times.otherSec, 0.0);
    // Per-input latency histogram: one sample per harness input run —
    // at least every class-batch run, plus validation/classification
    // re-runs.
    ASSERT_TRUE(stats.metrics.count("sim.inputLatencySec"));
    EXPECT_GE(stats.metrics.at("sim.inputLatencySec").count,
              stats.simInputRuns());
    // Campaign tallies mirror the stats counters.
    EXPECT_EQ(stats.metrics.at("campaign.testCases").value,
              stats.testCases);

    // metrics.json persisted next to the journal; stats renders it.
    const std::string text =
        corpus::CorpusStore::readMetricsText(scratch.sub("c"));
    ASSERT_FALSE(text.empty());
    const corpus::Json doc = corpus::Json::parse(text);
    EXPECT_EQ(doc.at("metrics")
                  .at("campaign.programs")
                  .at("value")
                  .asU64(),
              stats.programs);
    EXPECT_EQ(doc.at("metrics").at("sim.inputLatencySec").at("count")
                  .asU64(),
              stats.metrics.at("sim.inputLatencySec").count);
    // Top spans are sorted slowest-first.
    const auto &spans = doc.at("topSpans").items();
    for (std::size_t i = 1; i < spans.size(); ++i) {
        EXPECT_GE(spans[i - 1].at("seconds").asDouble(),
                  spans[i].at("seconds").asDouble());
    }
}

// A resumed campaign's registry folds the checkpointed outcomes'
// campaign-phase seconds back in, so its breakdown (and metrics.json)
// accounts for the whole campaign, not just the second process.
TEST(TelemetryStats, ResumeFoldsRestoredOutcomesIntoRegistry)
{
    ScratchDir scratch("resume");
    core::CampaignConfig cfg = campaignConfig(
        defense::DefenseKind::Baseline, 1,
        executor::BackendKind::InProcess);
    cfg.corpusDir = scratch.sub("c");
    cfg.maxProgramsThisRun = 3;
    core::Campaign(cfg).run();

    core::CampaignConfig resume_cfg = cfg;
    resume_cfg.maxProgramsThisRun = 0;
    resume_cfg.resume = true;
    const core::CampaignStats resumed = core::Campaign(resume_cfg).run();
    EXPECT_EQ(resumed.programs, cfg.numPrograms);
    // time.testGen counts one observation per program — restored and
    // freshly run alike.
    EXPECT_EQ(resumed.metrics.at("time.testGen").count,
              std::uint64_t{cfg.numPrograms});
}

} // namespace

/**
 * @file
 * Per-instruction pipeline tracing contracts
 * (src/telemetry/uarch_trace.hh):
 *
 *  - the tracer observes exactly the test-program runs (boot and
 *    priming are never traced) and records a coherent lifecycle per
 *    instruction (fetch <= issue <= complete, squashes carry a cause
 *    and the triggering branch);
 *  - the exporters are well-formed: Kanata stage begins/ends balance,
 *    O3PipeView lines have the gem5 shape, the Chrome trace is valid
 *    JSON with non-decreasing timestamps per thread;
 *  - all three executor backends produce identical traces for the same
 *    runs — which for the subprocess backend proves the protocol-v3
 *    wire serialization is lossless;
 *  - firstDivergence localizes a Spectre-v1 leak to the transient
 *    transmitter access, and finds nothing on identical runs.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "corpus/serde.hh"
#include "executor/backend.hh"
#include "executor/sim_harness.hh"
#include "isa/assembler.hh"
#include "telemetry/uarch_trace.hh"

namespace
{

using namespace amulet;

executor::HarnessConfig
harnessConfig(defense::DefenseKind kind = defense::DefenseKind::Baseline)
{
    executor::HarnessConfig cfg;
    cfg.defense.kind = kind;
    cfg.bootInsts = 1500;
    return cfg;
}

/** Spectre-v1: slow condition load, architecturally-taken JE predicted
 *  not-taken on first encounter, transient gadget that loads the secret
 *  at [R14+64] and transmits it through a masked load. */
isa::Program
spectreProgram()
{
    // The IMUL chain keeps the window open past the secret load's own
    // miss so the transmitter actually issues before the squash.
    return isa::assemble(R"(
.bb_main.0:
    MOV RAX, qword ptr [R14 + 0]
    IMUL RAX, RAX
    IMUL RAX, RAX
    IMUL RAX, RAX
    IMUL RAX, RAX
    IMUL RAX, RAX
    IMUL RAX, RAX
    IMUL RAX, RAX
    IMUL RAX, RAX
    TEST RAX, RAX
    JE .bb_main.1
    MOV RBX, qword ptr [R14 + 64]
    AND RBX, 0b111110000000
    MOV RCX, qword ptr [R14 + RBX]
    MOV RDX, qword ptr [R14 + 128]
    JMP .bb_main.1
.bb_main.1:
)");
}

/** All-zero sandbox (JE taken) with the one-byte secret at 0x41. */
arch::Input
secretInput(const mem::AddressMap &map, std::uint8_t secret,
            std::uint64_t id = 0)
{
    arch::Input input;
    input.id = id;
    input.regs.fill(0);
    input.sandbox.assign(map.sandboxSize(), 0);
    input.sandbox[0x41] = secret;
    return input;
}

/** Trace @p inputs through one SimHarness, one run per input. */
std::vector<telemetry::UarchRunTrace>
tracedRuns(const executor::HarnessConfig &cfg, const isa::Program &prog,
           const std::vector<arch::Input> &inputs,
           bool restore_between = false)
{
    executor::SimHarness harness(cfg);
    const isa::FlatProgram fp(prog, cfg.map.codeBase);
    harness.loadProgram(&fp);
    telemetry::UarchTracer tracer;
    harness.setUarchTracer(&tracer);
    const executor::UarchContext ctx = harness.saveContext();
    for (const arch::Input &input : inputs) {
        if (restore_between)
            harness.restoreContext(ctx);
        harness.runInput(input);
    }
    harness.setUarchTracer(nullptr);
    return tracer.takeRuns();
}

// --- tracer core ------------------------------------------------------

TEST(UarchTracer, TracesExactlyTheTestRuns)
{
    const auto cfg = harnessConfig();
    const auto runs = tracedRuns(cfg, spectreProgram(),
                                 {secretInput(cfg.map, 1),
                                  secretInput(cfg.map, 7, 1)});
    // Boot + priming run untraced: exactly one trace per runInput.
    ASSERT_EQ(runs.size(), 2u);
    for (const telemetry::UarchRunTrace &run : runs) {
        EXPECT_GT(run.cycles, 0u);
        ASSERT_FALSE(run.insts.empty());
        ASSERT_FALSE(run.disasm.empty());
        // Records sit in fetch order with contiguous sequence numbers.
        for (std::size_t i = 0; i < run.insts.size(); ++i)
            EXPECT_EQ(run.insts[i].seq, run.insts.front().seq + i);
    }
}

TEST(UarchTracer, LifecycleOrderingAndSquashForensics)
{
    const auto cfg = harnessConfig();
    const auto runs =
        tracedRuns(cfg, spectreProgram(), {secretInput(cfg.map, 1)});
    ASSERT_EQ(runs.size(), 1u);
    const telemetry::UarchRunTrace &run = runs[0];

    const telemetry::InstLifecycle *branch = nullptr;
    for (const telemetry::InstLifecycle &inst : run.insts) {
        if (inst.issued)
            EXPECT_GE(inst.issueCycle, inst.fetchCycle);
        if (inst.completed) {
            EXPECT_GE(inst.completeCycle, inst.fetchCycle);
            if (inst.issued)
                EXPECT_GE(inst.completeCycle, inst.issueCycle);
        }
        EXPECT_FALSE(inst.committed && inst.squashed);
        if (inst.committed)
            EXPECT_GE(inst.commitCycle, inst.fetchCycle);
        if (inst.squashed) {
            EXPECT_NE(inst.squashCause, telemetry::SquashCause::None);
            EXPECT_NE(inst.squashTrigger, kNoSeq);
            EXPECT_GE(inst.squashCycle, inst.fetchCycle);
        }
        if (inst.isBranch && inst.mispredicted && !branch)
            branch = &inst;
    }
    // The JE mispredicts (weakly-not-taken PHT vs a taken branch) and
    // its wrong path is squashed with branch-mispredict forensics.
    ASSERT_NE(branch, nullptr);
    unsigned wrong_path = 0;
    for (const telemetry::InstLifecycle &inst : run.insts) {
        if (inst.squashed && inst.squashTrigger == branch->seq) {
            ++wrong_path;
            EXPECT_EQ(inst.squashCause,
                      telemetry::SquashCause::BranchMispredict);
            // Same-cycle fetch is possible: the front end fetches
            // several instructions per cycle.
            EXPECT_GE(inst.fetchCycle, branch->fetchCycle);
        }
    }
    EXPECT_GT(wrong_path, 0u);
}

// --- exporters --------------------------------------------------------

TEST(UarchTraceExport, KanataStagesBalanceAndEveryInstRetires)
{
    const auto cfg = harnessConfig();
    const auto runs =
        tracedRuns(cfg, spectreProgram(), {secretInput(cfg.map, 1)});
    ASSERT_EQ(runs.size(), 1u);
    const std::string text = telemetry::exportKanata(runs[0]);

    std::istringstream lines(text);
    std::string line;
    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_EQ(line, "Kanata\t0004");
    std::set<std::string> declared;           // I-declared lane ids
    std::map<std::string, std::string> open;  // id -> open stage
    std::set<std::string> retired;
    bool saw_start = false;
    while (std::getline(lines, line)) {
        std::vector<std::string> f;
        std::istringstream cells(line);
        for (std::string cell; std::getline(cells, cell, '\t');)
            f.push_back(cell);
        ASSERT_FALSE(f.empty()) << line;
        if (f[0] == "C=") {
            saw_start = true;
        } else if (f[0] == "C") {
            EXPECT_GE(std::stoll(f.at(1)), 0) << line;
        } else if (f[0] == "I") {
            EXPECT_TRUE(declared.insert(f.at(1)).second) << line;
        } else if (f[0] == "S") {
            ASSERT_TRUE(declared.count(f.at(1))) << line;
            // A lane holds at most one open stage at a time.
            EXPECT_FALSE(open.count(f.at(1))) << line;
            open[f.at(1)] = f.at(3);
        } else if (f[0] == "E") {
            auto it = open.find(f.at(1));
            ASSERT_NE(it, open.end()) << line;
            EXPECT_EQ(it->second, f.at(3)) << line;
            open.erase(it);
        } else if (f[0] == "R") {
            EXPECT_FALSE(open.count(f.at(1))) << line;
            EXPECT_TRUE(retired.insert(f.at(1)).second) << line;
        }
    }
    EXPECT_TRUE(saw_start);
    EXPECT_TRUE(open.empty()); // balanced: every S has its E
    EXPECT_EQ(retired.size(), declared.size());
    EXPECT_EQ(declared.size(), runs[0].insts.size());
}

TEST(UarchTraceExport, O3PipeViewHasTheGem5Shape)
{
    const auto cfg = harnessConfig();
    const auto runs =
        tracedRuns(cfg, spectreProgram(), {secretInput(cfg.map, 1)});
    ASSERT_EQ(runs.size(), 1u);
    const std::string text = telemetry::exportO3PipeView(runs[0]);

    std::istringstream lines(text);
    std::string line;
    unsigned fetches = 0, retires = 0;
    std::uint64_t last_fetch_tick = 0;
    while (std::getline(lines, line)) {
        ASSERT_EQ(line.rfind("O3PipeView:", 0), 0u) << line;
        if (line.rfind("O3PipeView:fetch:", 0) == 0) {
            ++fetches;
            const std::uint64_t tick =
                std::stoull(line.substr(std::strlen("O3PipeView:fetch:")));
            EXPECT_EQ(tick % 1000, 0u) << line; // 1000 ticks per cycle
            EXPECT_GE(tick, last_fetch_tick);   // fetch order
            last_fetch_tick = tick;
        } else if (line.rfind("O3PipeView:retire:", 0) == 0) {
            ++retires;
        }
    }
    EXPECT_EQ(fetches, runs[0].insts.size());
    EXPECT_EQ(retires, fetches); // every fetched inst gets a retire line
}

TEST(UarchTraceExport, ChromeTraceIsValidWithMonotonicTsPerTid)
{
    const auto cfg = harnessConfig();
    const auto runs = tracedRuns(cfg, spectreProgram(),
                                 {secretInput(cfg.map, 1),
                                  secretInput(cfg.map, 7, 1)});
    ASSERT_EQ(runs.size(), 2u);
    const std::string text = telemetry::exportUarchChromeTrace(runs);
    const corpus::Json doc = corpus::Json::parse(text);

    std::map<std::uint64_t, double> last_ts;
    unsigned thread_names = 0, spans = 0;
    for (const corpus::Json &ev : doc.at("traceEvents").items()) {
        const std::string ph = ev.at("ph").asStr();
        if (ph == "M") {
            thread_names +=
                ev.at("name").asStr() == std::string("thread_name");
            continue;
        }
        ASSERT_EQ(ph, "X");
        ++spans;
        const std::uint64_t tid = ev.at("tid").asU64();
        const double ts = ev.at("ts").asDouble();
        EXPECT_GE(ev.at("dur").asDouble(), 0.0);
        auto it = last_ts.find(tid);
        if (it != last_ts.end())
            EXPECT_GE(ts, it->second) << "tid " << tid;
        last_ts[tid] = ts;
        EXPECT_FALSE(ev.at("args").at("fate").asStr().empty());
    }
    EXPECT_EQ(thread_names, 2u); // one per traced run
    EXPECT_EQ(spans, runs[0].insts.size() + runs[1].insts.size());
    EXPECT_EQ(last_ts.size(), 2u);
}

// --- backend parity (and protocol-v3 losslessness) --------------------

TEST(UarchTraceBackends, AllThreeBackendsProduceIdenticalTraces)
{
    const auto cfg = harnessConfig(defense::DefenseKind::InvisiSpec);
    const isa::Program prog = spectreProgram();
    const isa::FlatProgram fp(prog, cfg.map.codeBase);
    const arch::Input a = secretInput(cfg.map, 1);
    const arch::Input b = secretInput(cfg.map, 7, 1);

    std::vector<std::vector<telemetry::UarchRunTrace>> per_backend;
    for (executor::BackendKind kind : executor::allBackendKinds()) {
        SCOPED_TRACE(executor::backendKindName(kind));
        auto backend = executor::makeBackend(kind, cfg);
        ASSERT_TRUE(backend->caps().uarchTrace);
        backend->loadProgram(prog, fp);
        backend->setUarchTracing(true);
        backend->runOne(a, nullptr);
        backend->runOne(b, nullptr);
        backend->setUarchTracing(false);
        per_backend.push_back(backend->takeUarchTraces());
        ASSERT_EQ(per_backend.back().size(), 2u);
    }
    // The subprocess backend's traces crossed the JSONL wire; equality
    // with the in-process run proves the v3 serialization is lossless.
    for (std::size_t i = 1; i < per_backend.size(); ++i)
        EXPECT_EQ(per_backend[0], per_backend[i]);
}

// --- divergence localization ------------------------------------------

TEST(UarchDivergence, LocalizesTheTransientTransmitter)
{
    const auto cfg = harnessConfig();
    // Restore the pre-run context between inputs so both runs see the
    // same predictor state — the only difference is the secret byte.
    const auto runs = tracedRuns(cfg, spectreProgram(),
                                 {secretInput(cfg.map, 1),
                                  secretInput(cfg.map, 7, 1)},
                                 /*restore_between=*/true);
    ASSERT_EQ(runs.size(), 2u);
    const telemetry::Divergence div =
        telemetry::firstDivergence(runs[0], runs[1]);
    ASSERT_TRUE(div.found);
    // The earliest difference is the transmitter load's address —
    // reached only transiently, with different secrets.
    EXPECT_NE(div.what.find("memory access"), std::string::npos)
        << div.what;
    EXPECT_NE(div.detailA, div.detailB);
    EXPECT_NE(div.disasm.find("[R14 + RBX]"), std::string::npos)
        << div.disasm;
}

TEST(UarchDivergence, IdenticalRunsHaveNoDivergence)
{
    const auto cfg = harnessConfig();
    const auto runs = tracedRuns(cfg, spectreProgram(),
                                 {secretInput(cfg.map, 1),
                                  secretInput(cfg.map, 1, 1)},
                                 /*restore_between=*/true);
    ASSERT_EQ(runs.size(), 2u);
    // Same secret + same restored context => byte-identical lifecycles.
    EXPECT_EQ(runs[0].insts, runs[1].insts);
    EXPECT_FALSE(telemetry::firstDivergence(runs[0], runs[1]).found);
}

} // namespace

/**
 * @file
 * Fault-injection survivability contract (src/runtime/fault.hh): a
 * seeded chaos plan — worker crashes, dropped/garbled replies, shard
 * deaths, torn journal appends, failed checkpoint writes, poisoned
 * programs — must leave every non-poisoned program's results and
 * canonical export bytes identical to an unfaulted run, quarantine the
 * poisoned ones instead of killing the campaign, and do all of it
 * deterministically (same plan, same faults, any --jobs).
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/campaign.hh"
#include "corpus/corpus_store.hh"
#include "corpus/serde.hh"
#include "runtime/fault.hh"

namespace fs = std::filesystem;

namespace
{

using namespace amulet;
using runtime::fault::FaultPlan;
using runtime::fault::ProgramScope;

/** Unique scratch directory, removed on destruction. */
class ScratchDir
{
  public:
    explicit ScratchDir(const std::string &name)
        : path_((fs::temp_directory_path() /
                 ("amulet_fault_test_" + name + std::to_string(::getpid())))
                    .string())
    {
        fs::remove_all(path_);
    }

    ~ScratchDir() { fs::remove_all(path_); }

    std::string
    sub(const std::string &name) const
    {
        return (fs::path(path_) / name).string();
    }

  private:
    std::string path_;
};

/** The small baseline campaign of tests/test_backend.cc (seed 1 detects
 *  within 8 programs). */
core::CampaignConfig
chaosCampaign(unsigned jobs, executor::BackendKind backend)
{
    core::CampaignConfig cfg;
    cfg.harness.defense.kind = defense::DefenseKind::Baseline;
    cfg.harness.prime = executor::PrimeMode::ConflictFill;
    cfg.harness.bootInsts = 2000;
    cfg.gen.map = cfg.harness.map;
    cfg.inputs.map = cfg.harness.map;
    cfg.numPrograms = 8;
    cfg.baseInputsPerProgram = 6;
    cfg.siblingsPerBase = 4;
    cfg.seed = 1;
    cfg.jobs = jobs;
    cfg.backend = backend;
    return cfg;
}

/** Everything deterministic must match the unfaulted reference. */
void
expectEquivalent(const core::CampaignStats &reference,
                 const core::CampaignStats &other)
{
    EXPECT_EQ(reference.confirmedViolations, other.confirmedViolations);
    EXPECT_EQ(reference.signatureCounts, other.signatureCounts);
    EXPECT_EQ(reference.candidateViolations, other.candidateViolations);
    EXPECT_EQ(reference.violatingTestCases, other.violatingTestCases);
    EXPECT_EQ(reference.validationRuns, other.validationRuns);
    EXPECT_EQ(reference.programs, other.programs);
    EXPECT_EQ(reference.skippedPrograms, other.skippedPrograms);
    EXPECT_EQ(reference.testCases, other.testCases);
    EXPECT_EQ(reference.filteredTestCases, other.filteredTestCases);
    EXPECT_EQ(reference.effectiveClasses, other.effectiveClasses);
    ASSERT_EQ(reference.records.size(), other.records.size());
    for (std::size_t i = 0; i < reference.records.size(); ++i) {
        core::ViolationRecord a = reference.records[i];
        core::ViolationRecord b = other.records[i];
        a.detectSeconds = 0;
        b.detectSeconds = 0;
        EXPECT_EQ(corpus::toJson(a).dump(), corpus::toJson(b).dump())
            << "record " << i;
    }
}

double
metric(const core::CampaignStats &stats, const char *name)
{
    const auto it = stats.metrics.find(name);
    return it == stats.metrics.end() ? 0.0 : it->second.value;
}

/** The clean run's canonical export, restricted to programs outside
 *  @p quarantined — what a chaos run must reproduce byte-for-byte. */
std::string
exportWithout(const std::string &clean_dir,
              const std::set<unsigned> &quarantined)
{
    std::vector<core::ViolationRecord> kept;
    for (core::ViolationRecord &rec :
         corpus::CorpusStore::readJournal(clean_dir)) {
        if (!quarantined.count(rec.programIndex))
            kept.push_back(std::move(rec));
    }
    return corpus::CorpusStore::exportCanonical(clean_dir,
                                                std::move(kept));
}

// === Plan parsing and decision determinism =================================

TEST(FaultPlanSpec, ParsesEverySiteAndDescribesCanonically)
{
    const FaultPlan plan = FaultPlan::parse(
        "seed=42; poison=4:9, wire.crash=25;wire.garble=1000;"
        "wire.drop=0;shard.throw=7;journal.shortwrite=3;"
        "checkpoint.fail=500;journal.once=3");
    EXPECT_EQ(plan.seed(), 42u);
    EXPECT_EQ(plan.rate("wire.crash"), 25u);
    EXPECT_EQ(plan.rate("wire.garble"), 1000u);
    EXPECT_EQ(plan.rate("wire.drop"), 0u);
    EXPECT_EQ(plan.rate("shard.throw"), 7u);
    EXPECT_EQ(plan.rate("journal.shortwrite"), 3u);
    EXPECT_EQ(plan.rate("checkpoint.fail"), 500u);
    EXPECT_TRUE(plan.poisoned(4));
    EXPECT_TRUE(plan.poisoned(9));
    EXPECT_FALSE(plan.poisoned(5));
    // describe() re-parses to an identical plan (canonical round trip).
    const FaultPlan again = FaultPlan::parse(plan.describe());
    EXPECT_EQ(again.describe(), plan.describe());
}

TEST(FaultPlanSpec, RejectsMalformedSpecs)
{
    EXPECT_THROW(FaultPlan::parse("wire.crash"), std::runtime_error);
    EXPECT_THROW(FaultPlan::parse("nonsense=1"), std::runtime_error);
    EXPECT_THROW(FaultPlan::parse("wire.crash=onefifth"),
                 std::runtime_error);
    EXPECT_THROW(FaultPlan::parse("wire.crash=1001"), std::runtime_error);
    EXPECT_THROW(FaultPlan::parse("poison=1:x"), std::runtime_error);
}

TEST(FaultPlanSpec, DecisionsAreDeterministicSeededAndSiteScoped)
{
    const FaultPlan plan =
        FaultPlan::parse("seed=7;wire.crash=500;wire.garble=500");
    unsigned crash_fires = 0;
    bool differs = false;
    for (std::uint64_t key = 0; key < 1000; ++key) {
        const bool crash = plan.fires("wire.crash", key);
        // Same (site, key) → same answer, every time.
        EXPECT_EQ(crash, plan.fires("wire.crash", key));
        crash_fires += crash;
        differs |= (crash != plan.fires("wire.garble", key));
    }
    // A 500-per-mille rate fires about half the keys, and the two sites
    // hash independently.
    EXPECT_GT(crash_fires, 350u);
    EXPECT_LT(crash_fires, 650u);
    EXPECT_TRUE(differs);
    // A different seed is a different schedule.
    const FaultPlan reseeded =
        FaultPlan::parse("seed=8;wire.crash=500;wire.garble=500");
    bool moved = false;
    for (std::uint64_t key = 0; key < 64; ++key)
        moved |= (plan.fires("wire.crash", key) !=
                  reseeded.fires("wire.crash", key));
    EXPECT_TRUE(moved);
}

TEST(FaultPlanSpec, UnscopedOpsAndZeroRatesNeverFire)
{
    const FaultPlan plan = FaultPlan::parse("wire.crash=1000");
    EXPECT_FALSE(plan.fires("wire.crash", ProgramScope::kUnscopedKey));
    EXPECT_FALSE(plan.fires("wire.garble", 1)); // unset site
    // Outside any ProgramScope, op keys are the unscoped sentinel.
    EXPECT_EQ(ProgramScope::nextOpKey(), ProgramScope::kUnscopedKey);
    EXPECT_EQ(ProgramScope::currentProgram(), ProgramScope::kNoProgram);
    {
        ProgramScope scope(3);
        EXPECT_EQ(ProgramScope::currentProgram(), 3u);
        EXPECT_EQ(ProgramScope::nextOpKey(), (std::uint64_t{3} << 20) | 0);
        EXPECT_EQ(ProgramScope::nextOpKey(), (std::uint64_t{3} << 20) | 1);
    }
    EXPECT_EQ(ProgramScope::nextOpKey(), ProgramScope::kUnscopedKey);
}

// === Poison quarantine =====================================================

// A poisoned program fails every wire attempt; the campaign must
// quarantine exactly that program — journaled, counted, skipped on
// resume — while every other program's results and export bytes are
// identical to a clean run.
TEST(FaultCampaign, PoisonedProgramIsQuarantinedNotFatal)
{
    ScratchDir scratch("poison");
    for (unsigned jobs : {1u, 4u}) {
        SCOPED_TRACE("jobs=" + std::to_string(jobs));
        const std::string tag = "j" + std::to_string(jobs);

        core::CampaignConfig clean =
            chaosCampaign(jobs, executor::BackendKind::Subprocess);
        clean.corpusDir = scratch.sub("clean-" + tag);
        const auto ref = core::Campaign(clean).run();
        ASSERT_TRUE(ref.detected());
        EXPECT_EQ(ref.quarantinedPrograms, 0u);

        core::CampaignConfig chaos = clean;
        chaos.corpusDir = scratch.sub("chaos-" + tag);
        chaos.faultPlan = "seed=1;poison=2";
        const auto stats = core::Campaign(chaos).run();

        EXPECT_EQ(stats.quarantinedPrograms, 1u);
        EXPECT_EQ(stats.programs + stats.skippedPrograms +
                      stats.quarantinedPrograms,
                  ref.programs + ref.skippedPrograms);

        const auto quarantined =
            corpus::CorpusStore::readQuarantined(chaos.corpusDir);
        ASSERT_EQ(quarantined.size(), 1u);
        EXPECT_EQ(quarantined[0].programIndex, 2u);
        EXPECT_NE(quarantined[0].reason.find("poison"), std::string::npos);

        // Byte-identical exports for everything that was not poisoned
        // (the fault plan is a runtime knob: both corpora share one
        // fingerprint, so header bytes match too).
        EXPECT_EQ(exportWithout(clean.corpusDir, {2}),
                  corpus::CorpusStore::exportCanonical(chaos.corpusDir));

        // Quarantine exhausted the retry budget, so the restart-storm
        // guard must have slept at least once.
        EXPECT_GT(metric(stats, "backend.restartBackoffSec"), 0.0);
        EXPECT_EQ(metric(stats, "campaign.quarantinedPrograms"), 1.0);

        // Resume with the plan off: the quarantined program must stay
        // quarantined (skipped), not silently re-run.
        core::CampaignConfig resumed = clean;
        resumed.corpusDir = chaos.corpusDir;
        resumed.resume = true;
        const auto after = core::Campaign(resumed).run();
        EXPECT_EQ(after.quarantinedPrograms, 1u);
        EXPECT_EQ(after.resumedPrograms, clean.numPrograms);
        EXPECT_EQ(exportWithout(clean.corpusDir, {2}),
                  corpus::CorpusStore::exportCanonical(chaos.corpusDir));
    }
}

// === Wire chaos (crash / drop / garble) ====================================

// Transient wire faults fire on the first attempt only; recovery
// (kill, respawn, re-establish state, retry) must make them invisible
// in results — same stats, same record bytes — at any jobs value.
TEST(FaultCampaign, TransientWireChaosIsInvisibleInResults)
{
    for (unsigned jobs : {1u, 4u}) {
        SCOPED_TRACE("jobs=" + std::to_string(jobs));
        const auto ref =
            core::Campaign(
                chaosCampaign(jobs, executor::BackendKind::Subprocess))
                .run();
        core::CampaignConfig chaos =
            chaosCampaign(jobs, executor::BackendKind::Subprocess);
        chaos.faultPlan =
            "seed=3;wire.crash=30;wire.garble=30;wire.drop=30";
        const auto stats = core::Campaign(chaos).run();
        expectEquivalent(ref, stats);
        EXPECT_GE(metric(stats, "backend.restarts"), 1.0)
            << "the plan must actually have injected wire faults";
    }
}

// === Shard containment =====================================================

// An injected shard-thread death must not abort the campaign: the dead
// shard's unfinished programs are re-leased (pre-split RNG streams make
// the re-run byte-identical) and a reincarnated claimant drains them —
// even at jobs=1, where the dying shard is the only one.
TEST(FaultCampaign, ShardDeathsAreContainedAndReleased)
{
    for (unsigned jobs : {1u, 4u}) {
        SCOPED_TRACE("jobs=" + std::to_string(jobs));
        const auto ref =
            core::Campaign(
                chaosCampaign(jobs, executor::BackendKind::InProcess))
                .run();
        core::CampaignConfig chaos =
            chaosCampaign(jobs, executor::BackendKind::InProcess);
        chaos.faultPlan = "seed=5;shard.throw=250";
        const auto stats = core::Campaign(chaos).run();
        expectEquivalent(ref, stats);
        EXPECT_EQ(stats.quarantinedPrograms, 0u)
            << "shard.throw keys on (program, attempt): the re-leased "
               "attempt must succeed, not quarantine";
        EXPECT_GE(metric(stats, "sched.shardDeaths"), 1.0)
            << "the plan must actually have killed a shard";
    }
}

// === Torn journal appends and failed checkpoints ===========================

// A torn journal append (injected ENOSPC mid-line) must heal: the store
// truncates back to the valid prefix, the program whose record was torn
// stays unreported, containment re-runs it, and the second append
// lands — final export byte-identical to an unfaulted run.
TEST(FaultCampaign, TornJournalAppendHealsAndExportMatches)
{
    ScratchDir scratch("torn");
    core::CampaignConfig clean =
        chaosCampaign(1, executor::BackendKind::InProcess);
    clean.corpusDir = scratch.sub("clean");
    const auto ref = core::Campaign(clean).run();
    ASSERT_TRUE(ref.detected());

    core::CampaignConfig chaos = clean;
    chaos.corpusDir = scratch.sub("chaos");
    chaos.faultPlan = "seed=1;journal.once=1";
    const auto stats = core::Campaign(chaos).run();
    expectEquivalent(ref, stats);
    EXPECT_GE(metric(stats, "sched.shardDeaths"), 1.0)
        << "the journal fault surfaces as a shard death before "
           "containment re-runs the program";
    EXPECT_EQ(corpus::CorpusStore::exportCanonical(clean.corpusDir),
              corpus::CorpusStore::exportCanonical(chaos.corpusDir));
}

// Checkpoint writes are derived progress-markers behind an atomic
// rename: every one of them failing must cost nothing but a counter —
// the campaign completes, and the journal (the real data) is intact.
TEST(FaultCampaign, CheckpointWriteFailuresAreTolerated)
{
    ScratchDir scratch("ckpt");
    core::CampaignConfig clean =
        chaosCampaign(1, executor::BackendKind::InProcess);
    clean.corpusDir = scratch.sub("clean");
    clean.checkpointEvery = 2;
    const auto ref = core::Campaign(clean).run();

    core::CampaignConfig chaos = clean;
    chaos.corpusDir = scratch.sub("chaos");
    chaos.faultPlan = "seed=1;checkpoint.fail=1000";
    const auto stats = core::Campaign(chaos).run();
    expectEquivalent(ref, stats);
    EXPECT_GE(metric(stats, "corpus.checkpointFailures"), 1.0);
    EXPECT_EQ(corpus::CorpusStore::exportCanonical(clean.corpusDir),
              corpus::CorpusStore::exportCanonical(chaos.corpusDir));
}

// === Combined chaos (the acceptance scenario) ==============================

// Everything at once: a poisoned program, transient wire faults, shard
// deaths, a torn journal append, and failing checkpoints. The campaign
// must complete with exactly the poisoned program quarantined and the
// export for everything else byte-identical to the clean run — at
// jobs=1 and jobs=4.
TEST(FaultCampaign, CombinedChaosCampaignSurvives)
{
    ScratchDir scratch("combined");
    for (unsigned jobs : {1u, 4u}) {
        SCOPED_TRACE("jobs=" + std::to_string(jobs));
        const std::string tag = "j" + std::to_string(jobs);

        core::CampaignConfig clean =
            chaosCampaign(jobs, executor::BackendKind::Subprocess);
        clean.corpusDir = scratch.sub("clean-" + tag);
        clean.checkpointEvery = 2;
        const auto ref = core::Campaign(clean).run();

        core::CampaignConfig chaos = clean;
        chaos.corpusDir = scratch.sub("chaos-" + tag);
        chaos.faultPlan =
            "seed=9;poison=2;wire.crash=25;wire.garble=25;wire.drop=25;"
            "shard.throw=120;journal.once=1;checkpoint.fail=500";
        const auto stats = core::Campaign(chaos).run();

        EXPECT_EQ(stats.quarantinedPrograms, 1u);
        const auto quarantined =
            corpus::CorpusStore::readQuarantined(chaos.corpusDir);
        ASSERT_EQ(quarantined.size(), 1u);
        EXPECT_EQ(quarantined[0].programIndex, 2u);
        EXPECT_EQ(exportWithout(clean.corpusDir, {2}),
                  corpus::CorpusStore::exportCanonical(chaos.corpusDir));
    }
}

// === Quarantine serde and merge ============================================

TEST(CorpusQuarantine, RecordsRoundTripDedupAndMerge)
{
    ScratchDir scratch("serde");
    const core::CampaignConfig cfg =
        chaosCampaign(1, executor::BackendKind::InProcess);
    {
        corpus::CorpusStore store(scratch.sub("a"), cfg);
        EXPECT_TRUE(store.appendQuarantine(5, "poisoned"));
        EXPECT_FALSE(store.appendQuarantine(5, "poisoned again"))
            << "quarantine lines dedup by program";
        EXPECT_TRUE(store.appendQuarantine(3, "other"));
        EXPECT_EQ(store.size(), 0u)
            << "quarantine facts are not violation records";
    }
    const auto entries =
        corpus::CorpusStore::readQuarantined(scratch.sub("a"));
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].programIndex, 3u);
    EXPECT_EQ(entries[0].reason, "other");
    EXPECT_EQ(entries[1].programIndex, 5u);
    EXPECT_EQ(entries[1].reason, "poisoned");
    // Readers of the record journal skip quarantine lines entirely.
    EXPECT_TRUE(corpus::CorpusStore::readJournal(scratch.sub("a")).empty());

    // Quarantine facts travel through merge.
    { corpus::CorpusStore other(scratch.sub("b"), cfg); }
    corpus::CorpusStore::mergeInto(scratch.sub("merged"),
                                   {scratch.sub("a"), scratch.sub("b")});
    EXPECT_EQ(
        corpus::CorpusStore::readQuarantined(scratch.sub("merged")).size(),
        2u);
}

// The quarantined outcome survives the checkpoint serde round trip.
TEST(CorpusQuarantine, OutcomeSerdeRoundTrips)
{
    core::ProgramOutcome out =
        core::ProgramOutcome::makeQuarantined("worker failed 3 attempts");
    EXPECT_FALSE(out.ran);
    EXPECT_TRUE(out.quarantined);
    const core::ProgramOutcome back =
        corpus::outcomeFromJson(corpus::outcomeToJson(out));
    EXPECT_TRUE(back.quarantined);
    EXPECT_EQ(back.quarantineReason, "worker failed 3 attempts");
    EXPECT_FALSE(back.ran);
}

} // namespace

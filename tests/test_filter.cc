/**
 * @file
 * Filter equivalence contract (src/pipeline/FilterStage): for every
 * defense, a campaign with ineffective-test-case filtering on reaches
 * exactly the verdicts of the same campaign with filtering off —
 * confirmed violations, signature counts, and byte-identical record
 * contents — at jobs=1 and jobs=4; filtering only removes simulator
 * runs. And a corpus written with filtering on refuses to resume with
 * it off (the knob is part of the config fingerprint).
 */

#include <gtest/gtest.h>

#include <filesystem>

#include "core/campaign.hh"
#include "corpus/serde.hh"

namespace
{

using namespace amulet;

core::CampaignConfig
campaignConfig(defense::DefenseKind kind, unsigned jobs, bool filter)
{
    core::CampaignConfig cfg;
    cfg.harness.defense.kind = kind;
    cfg.harness.prime = (kind == defense::DefenseKind::CleanupSpec ||
                         kind == defense::DefenseKind::SpecLfb)
                            ? executor::PrimeMode::Invalidate
                            : executor::PrimeMode::ConflictFill;
    cfg.harness.bootInsts = 2000;
    if (kind == defense::DefenseKind::Stt) {
        cfg.harness.map.sandboxPages = 128;
        cfg.contract = contracts::archSeq();
    }
    cfg.gen.map = cfg.harness.map;
    cfg.inputs.map = cfg.harness.map;
    cfg.numPrograms = 12;
    cfg.baseInputsPerProgram = 6;
    cfg.siblingsPerBase = 4;
    cfg.seed = 1;
    cfg.jobs = jobs;
    cfg.filterIneffective = filter;
    return cfg;
}

/** Everything but wall-clock and the filtering counters must match. */
void
expectEquivalent(const core::CampaignStats &on,
                 const core::CampaignStats &off)
{
    EXPECT_EQ(on.confirmedViolations, off.confirmedViolations);
    EXPECT_EQ(on.signatureCounts, off.signatureCounts);
    EXPECT_EQ(on.candidateViolations, off.candidateViolations);
    EXPECT_EQ(on.violatingTestCases, off.violatingTestCases);
    EXPECT_EQ(on.validationRuns, off.validationRuns);
    EXPECT_EQ(on.programs, off.programs);
    EXPECT_EQ(on.testCases, off.testCases);
    EXPECT_EQ(on.effectiveClasses, off.effectiveClasses);
    EXPECT_EQ(off.filteredTestCases, 0u);
    // Per-record contents are byte-identical modulo detectSeconds, the
    // one wall-clock field (compared through the canonical serde dump,
    // the same normalization corpus exports use).
    ASSERT_EQ(on.records.size(), off.records.size());
    for (std::size_t i = 0; i < on.records.size(); ++i) {
        core::ViolationRecord a = on.records[i];
        core::ViolationRecord b = off.records[i];
        a.detectSeconds = 0;
        b.detectSeconds = 0;
        EXPECT_EQ(corpus::toJson(a).dump(), corpus::toJson(b).dump())
            << "record " << i;
    }
}

void
runEquivalence(defense::DefenseKind kind, bool expect_detection,
               const contracts::ContractSpec *contract = nullptr)
{
    for (unsigned jobs : {1u, 4u}) {
        auto cfg_on = campaignConfig(kind, jobs, true);
        auto cfg_off = campaignConfig(kind, jobs, false);
        if (contract) {
            cfg_on.contract = *contract;
            cfg_off.contract = *contract;
        }
        const auto on = core::Campaign(cfg_on).run();
        const auto off = core::Campaign(cfg_off).run();
        SCOPED_TRACE("jobs=" + std::to_string(jobs));
        expectEquivalent(on, off);
        if (expect_detection)
            EXPECT_TRUE(on.detected());
    }
}

TEST(FilterEquivalence, Baseline)
{
    runEquivalence(defense::DefenseKind::Baseline, true);
}

TEST(FilterEquivalence, InvisiSpec)
{
    runEquivalence(defense::DefenseKind::InvisiSpec, false);
}

TEST(FilterEquivalence, CleanupSpec)
{
    runEquivalence(defense::DefenseKind::CleanupSpec, false);
}

TEST(FilterEquivalence, SpecLfb)
{
    runEquivalence(defense::DefenseKind::SpecLfb, false);
}

TEST(FilterEquivalence, Stt)
{
    runEquivalence(defense::DefenseKind::Stt, false);
}

// CT-COND is where filtering actually bites: sibling wrong-path reads
// split classes, so singleton test cases exist and the simulator runs
// strictly decrease — while every verdict stays identical.
TEST(FilterEquivalence, CtCondFiltersNonVacuously)
{
    for (unsigned jobs : {1u, 4u}) {
        auto cfg_on = campaignConfig(defense::DefenseKind::Baseline,
                                     jobs, true);
        auto cfg_off = campaignConfig(defense::DefenseKind::Baseline,
                                      jobs, false);
        cfg_on.contract = contracts::ctCond();
        cfg_off.contract = contracts::ctCond();
        cfg_on.numPrograms = cfg_off.numPrograms = 15;
        const auto on = core::Campaign(cfg_on).run();
        const auto off = core::Campaign(cfg_off).run();
        SCOPED_TRACE("jobs=" + std::to_string(jobs));
        expectEquivalent(on, off);
        EXPECT_GT(on.filteredTestCases, 0u);
        EXPECT_LT(on.simInputRuns() + on.validationRuns,
                  off.simInputRuns() + off.validationRuns);
    }
}

TEST(FilterCorpus, CorpusWrittenWithFilteringOnRefusesToResumeOff)
{
    const std::string dir =
        (std::filesystem::temp_directory_path() /
         "amulet_filter_fingerprint_test")
            .string();
    std::filesystem::remove_all(dir);

    auto cfg = campaignConfig(defense::DefenseKind::Baseline, 1, true);
    cfg.numPrograms = 4;
    cfg.corpusDir = dir;
    core::Campaign(cfg).run();

    auto off = cfg;
    off.filterIneffective = false;
    off.resume = true;
    EXPECT_THROW(core::Campaign(off).run(), corpus::CorpusError);

    // Same knob, same fingerprint: the legitimate resume still works.
    auto again = cfg;
    again.resume = true;
    EXPECT_NO_THROW(core::Campaign(again).run());
    std::filesystem::remove_all(dir);
}

} // namespace

/**
 * @file
 * Cycle-skip equivalence contract (src/uarch/README.md): fast-forwarding
 * the simulator over quiescent cycles — cycles in which no pipeline,
 * memory-system, or defense state can change before the next scheduled
 * event — must not move a single byte of campaign output. For every
 * defense, the canonical corpus export (header included: the knob is
 * excluded from the config fingerprint) is byte-identical with skipping
 * on (default) and off, at jobs 1 and 4, on all three executor
 * backends. The event-horizon sources (Defense::nextEventCycle,
 * MemSystem::nextEventCycle) are unit-tested directly.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <string>

#include "core/campaign.hh"
#include "corpus/corpus_store.hh"
#include "defense/factory.hh"
#include "executor/sim_harness.hh"
#include "isa/assembler.hh"
#include "uarch/mem_system.hh"

namespace fs = std::filesystem;

namespace
{

using namespace amulet;

/** Unique scratch directory, removed on destruction. */
class ScratchDir
{
  public:
    explicit ScratchDir(const std::string &name)
        : path_((fs::temp_directory_path() /
                 ("amulet_cycle_skip_test_" + name +
                  std::to_string(::getpid())))
                    .string())
    {
        fs::remove_all(path_);
    }

    ~ScratchDir() { fs::remove_all(path_); }

    std::string
    sub(const std::string &name) const
    {
        return (fs::path(path_) / name).string();
    }

  private:
    std::string path_;
};

core::CampaignConfig
campaignConfig(defense::DefenseKind kind, bool cycle_skip, unsigned jobs,
               executor::BackendKind backend)
{
    core::CampaignConfig cfg;
    cfg.harness.defense.kind = kind;
    cfg.harness.prime = (kind == defense::DefenseKind::CleanupSpec ||
                         kind == defense::DefenseKind::SpecLfb)
                            ? executor::PrimeMode::Invalidate
                            : executor::PrimeMode::ConflictFill;
    cfg.harness.bootInsts = 1500;
    cfg.harness.cycleSkip = cycle_skip;
    if (kind == defense::DefenseKind::Stt) {
        cfg.harness.map.sandboxPages = 128;
        cfg.contract = contracts::archSeq();
    }
    cfg.gen.map = cfg.harness.map;
    cfg.inputs.map = cfg.harness.map;
    cfg.numPrograms = 6;
    cfg.baseInputsPerProgram = 6;
    cfg.siblingsPerBase = 4;
    cfg.seed = 1;
    cfg.jobs = jobs;
    cfg.backend = backend;
    return cfg;
}

/** Run one campaign into a corpus dir and return its canonical export. */
std::string
runAndExport(const ScratchDir &scratch, const std::string &tag,
             const core::CampaignConfig &base)
{
    core::CampaignConfig cfg = base;
    cfg.corpusDir = scratch.sub(tag);
    core::Campaign(cfg).run();
    return corpus::CorpusStore::exportCanonical(cfg.corpusDir);
}

void
runEquivalence(defense::DefenseKind kind, bool expect_detection)
{
    ScratchDir scratch(defense::defenseKindName(kind));
    // Reference: cycle skipping ON (the default), in-process, serial.
    const auto ref_cfg = campaignConfig(kind, true, 1,
                                        executor::BackendKind::InProcess);
    const auto ref_stats = [&] {
        core::CampaignConfig cfg = ref_cfg;
        cfg.corpusDir = scratch.sub("ref");
        return core::Campaign(cfg).run();
    }();
    if (expect_detection)
        EXPECT_TRUE(ref_stats.detected());
    const std::string reference =
        corpus::CorpusStore::exportCanonical(scratch.sub("ref"));

    // Skipping must be invisible on every (jobs, backend) pair: the
    // knob is runtime-only, exactly like jobs and backend themselves.
    unsigned n = 0;
    for (unsigned jobs : {1u, 4u}) {
        for (auto backend : executor::allBackendKinds()) {
            SCOPED_TRACE("jobs=" + std::to_string(jobs) + " backend=" +
                         executor::backendKindName(backend));
            const std::string off = runAndExport(
                scratch, "off" + std::to_string(n++),
                campaignConfig(kind, false, jobs, backend));
            EXPECT_EQ(reference, off);
        }
    }
}

TEST(CycleSkipEquivalence, Baseline)
{
    runEquivalence(defense::DefenseKind::Baseline, true);
}

TEST(CycleSkipEquivalence, InvisiSpec)
{
    runEquivalence(defense::DefenseKind::InvisiSpec, false);
}

TEST(CycleSkipEquivalence, CleanupSpec)
{
    runEquivalence(defense::DefenseKind::CleanupSpec, false);
}

TEST(CycleSkipEquivalence, SpecLfb)
{
    runEquivalence(defense::DefenseKind::SpecLfb, false);
}

TEST(CycleSkipEquivalence, Stt)
{
    runEquivalence(defense::DefenseKind::Stt, false);
}

// Every shipped defense has been audited for the event-horizon contract
// and declares itself fully event-driven (kNoEventCycle); the base
// class's conservative now+1 — which disables skipping outright — is
// reserved for unaudited out-of-tree defenses.
TEST(CycleSkipHorizon, DefenseContracts)
{
    const uarch::CoreParams params;
    {
        defense::Defense unaudited;
        EXPECT_EQ(unaudited.nextEventCycle(41), Cycle{42});
        unaudited.tickMany(1000); // contractual no-op
    }
    for (defense::DefenseKind kind : defense::allDefenseKinds()) {
        SCOPED_TRACE(defense::defenseKindName(kind));
        defense::DefenseConfig cfg;
        cfg.kind = kind;
        const auto defense = defense::makeDefense(cfg, params);
        EXPECT_EQ(defense->nextEventCycle(41), kNoEventCycle);
    }
}

// MemSystem horizon: idle -> no event; queued work pins now+1 (the
// in-order controller may stall-and-log its head every cycle); once the
// queues drain, the horizon is the exact scheduled fill time.
TEST(CycleSkipHorizon, MemSystem)
{
    const uarch::CoreParams params;
    EventLog log;
    uarch::MemSystem mem(params, log);
    EXPECT_EQ(mem.nextEventCycle(7), kNoEventCycle);

    uarch::MemReq req;
    req.kind = uarch::ReqKind::Load;
    req.lineAddr = 0x1000;
    mem.enqueueL1D(req);
    EXPECT_EQ(mem.nextEventCycle(7), Cycle{8});

    // One tick accepts the miss into an MSHR; the queue is empty and
    // the horizon becomes the scheduled fill cycle — strictly in the
    // future, and stable until the fill lands.
    mem.tick(8);
    ASSERT_FALSE(mem.idle());
    const Cycle fill = mem.nextEventCycle(8);
    ASSERT_NE(fill, kNoEventCycle);
    EXPECT_GT(fill, Cycle{9});
    for (Cycle c = 9; c < fill; ++c) {
        mem.tick(c);
        EXPECT_EQ(mem.nextEventCycle(c), fill);
    }
    mem.tick(fill);
    EXPECT_TRUE(mem.idle());
    EXPECT_EQ(mem.nextEventCycle(fill), kNoEventCycle);
}

// Direct harness-level check on a miss-heavy program: skipping elides a
// significant share of cycles yet reproduces the run result and trace
// bit-for-bit, and the per-run statistics are exposed.
TEST(CycleSkipHorizon, SkipsAndReproduces)
{
    const isa::Program prog = isa::assemble(R"(
        MOV RAX, qword ptr [R14 + 0]
        MOV RBX, qword ptr [R14 + 4096]
        ADD RAX, RBX
    )");

    auto run_once = [&prog](bool skip) {
        executor::HarnessConfig cfg;
        cfg.map.sandboxPages = 2;
        cfg.bootInsts = 1500;
        cfg.cycleSkip = skip;
        executor::SimHarness harness(cfg);
        const isa::FlatProgram fp(prog, cfg.map.codeBase);
        harness.loadProgram(&fp);
        arch::Input input;
        input.id = 0;
        input.regs.fill(0);
        input.sandbox.assign(cfg.map.sandboxSize(), 0);
        auto out = harness.runInput(input);
        return std::make_tuple(out.run, out.trace,
                               harness.pipeline().skippedCycles(),
                               harness.pipeline().skipWindows());
    };

    const auto [run_on, trace_on, skipped_on, windows_on] = run_once(true);
    const auto [run_off, trace_off, skipped_off, windows_off] =
        run_once(false);
    EXPECT_TRUE(run_on == run_off);
    EXPECT_EQ(trace_on, trace_off);
    EXPECT_GT(skipped_on, 0u);
    EXPECT_GT(windows_on, 0u);
    EXPECT_EQ(skipped_off, 0u);
    EXPECT_EQ(windows_off, 0u);
    // The two cache misses dominate this run: skipping should recover
    // a large fraction of the simulated cycles.
    EXPECT_GT(skipped_on, run_on.cycles / 4);
}

// A corpus journaled without skipping resumes under it (and the other
// way around): the knob must not participate in the config
// fingerprint, or kill/resume workflows would wedge on a runtime
// setting.
TEST(CycleSkipEquivalence, FingerprintIgnoresTheKnob)
{
    ScratchDir scratch("resume");
    core::CampaignConfig cfg = campaignConfig(
        defense::DefenseKind::Baseline, false, 1,
        executor::BackendKind::InProcess);
    cfg.corpusDir = scratch.sub("c");
    cfg.maxProgramsThisRun = 3;
    core::Campaign(cfg).run();

    core::CampaignConfig resume_cfg = cfg;
    resume_cfg.harness.cycleSkip = true; // flipped across the resume
    resume_cfg.maxProgramsThisRun = 0;
    resume_cfg.resume = true;
    const auto resumed = core::Campaign(resume_cfg).run();
    EXPECT_EQ(resumed.programs, cfg.numPrograms);

    // And the full campaign must match an uninterrupted all-on run.
    const std::string uninterrupted = runAndExport(
        scratch, "full",
        campaignConfig(defense::DefenseKind::Baseline, true, 1,
                       executor::BackendKind::InProcess));
    EXPECT_EQ(uninterrupted,
              corpus::CorpusStore::exportCanonical(scratch.sub("c")));
}

} // namespace

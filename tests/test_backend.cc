/**
 * @file
 * Executor backend equivalence contract (src/executor/backend.hh): for
 * every defense, a campaign reaches exactly the same verdicts —
 * confirmed violations, signature counts, counters, and byte-identical
 * record contents — on the in-process, async, and subprocess backends,
 * at jobs=1 and jobs=4. And the subprocess backend survives killed
 * workers: crash injection (AMULET_SIM_WORKER_CRASH_AFTER) and a direct
 * SIGKILL mid-program both end in results identical to an uninterrupted
 * run.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <signal.h>

#include "core/campaign.hh"
#include "core/generator.hh"
#include "core/input_gen.hh"
#include "corpus/serde.hh"
#include "executor/backend_subprocess.hh"

namespace
{

using namespace amulet;

core::CampaignConfig
campaignConfig(defense::DefenseKind kind, unsigned jobs,
               executor::BackendKind backend)
{
    core::CampaignConfig cfg;
    cfg.harness.defense.kind = kind;
    cfg.harness.prime = (kind == defense::DefenseKind::CleanupSpec ||
                         kind == defense::DefenseKind::SpecLfb)
                            ? executor::PrimeMode::Invalidate
                            : executor::PrimeMode::ConflictFill;
    cfg.harness.bootInsts = 2000;
    if (kind == defense::DefenseKind::Stt) {
        cfg.harness.map.sandboxPages = 128;
        cfg.contract = contracts::archSeq();
    }
    cfg.gen.map = cfg.harness.map;
    cfg.inputs.map = cfg.harness.map;
    cfg.numPrograms = 8;
    cfg.baseInputsPerProgram = 6;
    cfg.siblingsPerBase = 4;
    cfg.seed = 1;
    cfg.jobs = jobs;
    cfg.backend = backend;
    return cfg;
}

/** Everything but wall-clock must match the in-process reference. */
void
expectEquivalent(const core::CampaignStats &reference,
                 const core::CampaignStats &other)
{
    EXPECT_EQ(reference.confirmedViolations, other.confirmedViolations);
    EXPECT_EQ(reference.signatureCounts, other.signatureCounts);
    EXPECT_EQ(reference.candidateViolations, other.candidateViolations);
    EXPECT_EQ(reference.violatingTestCases, other.violatingTestCases);
    EXPECT_EQ(reference.validationRuns, other.validationRuns);
    EXPECT_EQ(reference.programs, other.programs);
    EXPECT_EQ(reference.skippedPrograms, other.skippedPrograms);
    EXPECT_EQ(reference.testCases, other.testCases);
    EXPECT_EQ(reference.filteredTestCases, other.filteredTestCases);
    EXPECT_EQ(reference.effectiveClasses, other.effectiveClasses);
    // Per-record contents are byte-identical modulo detectSeconds, the
    // one wall-clock field (compared through the canonical serde dump,
    // the same normalization corpus exports use).
    ASSERT_EQ(reference.records.size(), other.records.size());
    for (std::size_t i = 0; i < reference.records.size(); ++i) {
        core::ViolationRecord a = reference.records[i];
        core::ViolationRecord b = other.records[i];
        a.detectSeconds = 0;
        b.detectSeconds = 0;
        EXPECT_EQ(corpus::toJson(a).dump(), corpus::toJson(b).dump())
            << "record " << i;
    }
}

void
runEquivalence(defense::DefenseKind kind, bool expect_detection)
{
    for (unsigned jobs : {1u, 4u}) {
        SCOPED_TRACE("jobs=" + std::to_string(jobs));
        const auto reference =
            core::Campaign(campaignConfig(
                               kind, jobs, executor::BackendKind::InProcess))
                .run();
        if (expect_detection)
            EXPECT_TRUE(reference.detected());
        for (auto backend : {executor::BackendKind::Async,
                             executor::BackendKind::Subprocess}) {
            SCOPED_TRACE(executor::backendKindName(backend));
            const auto other =
                core::Campaign(campaignConfig(kind, jobs, backend)).run();
            expectEquivalent(reference, other);
        }
    }
}

TEST(BackendEquivalence, Baseline)
{
    runEquivalence(defense::DefenseKind::Baseline, true);
}

TEST(BackendEquivalence, InvisiSpec)
{
    runEquivalence(defense::DefenseKind::InvisiSpec, false);
}

TEST(BackendEquivalence, CleanupSpec)
{
    runEquivalence(defense::DefenseKind::CleanupSpec, false);
}

TEST(BackendEquivalence, SpecLfb)
{
    runEquivalence(defense::DefenseKind::SpecLfb, false);
}

TEST(BackendEquivalence, Stt)
{
    runEquivalence(defense::DefenseKind::Stt, false);
}

// CT-COND exercises the paths the backends treat most differently —
// filtered programs never reach the simulator, so a pipelined shard
// reports them out of band — and is the campaign the bench's backend
// ablation row runs.
TEST(BackendEquivalence, CtCond)
{
    for (unsigned jobs : {1u, 4u}) {
        SCOPED_TRACE("jobs=" + std::to_string(jobs));
        auto make = [&](executor::BackendKind backend) {
            auto cfg = campaignConfig(defense::DefenseKind::Baseline,
                                      jobs, backend);
            cfg.contract = contracts::ctCond();
            cfg.numPrograms = 12;
            return cfg;
        };
        const auto reference =
            core::Campaign(make(executor::BackendKind::InProcess)).run();
        for (auto backend : {executor::BackendKind::Async,
                             executor::BackendKind::Subprocess}) {
            SCOPED_TRACE(executor::backendKindName(backend));
            const auto other = core::Campaign(make(backend)).run();
            expectEquivalent(reference, other);
        }
    }
}

// The async shard driver picks one or two simulator lanes from the core
// count; both schedules must produce identical campaigns. This host may
// resolve either way, so force each path explicitly.
TEST(BackendEquivalence, AsyncLaneCountIsOutcomeInvariant)
{
    const auto reference =
        core::Campaign(campaignConfig(defense::DefenseKind::Baseline, 1,
                                      executor::BackendKind::InProcess))
            .run();
    for (const char *lanes : {"1", "2"}) {
        SCOPED_TRACE(std::string("lanes=") + lanes);
        setenv("AMULET_ASYNC_LANES", lanes, 1);
        const auto async_stats =
            core::Campaign(campaignConfig(defense::DefenseKind::Baseline,
                                          1, executor::BackendKind::Async))
                .run();
        unsetenv("AMULET_ASYNC_LANES");
        expectEquivalent(reference, async_stats);
    }
}

// === Subprocess crash recovery =============================================

/** Scoped env var (the crash-injection hook reads the environment). */
struct ScopedEnv
{
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        setenv(name, value, 1);
    }
    ~ScopedEnv() { unsetenv(name_); }
    const char *name_;
};

// Every subprocess worker dies after three simulator operations; the
// backend must restart it, restore its exact pre-operation state, and
// finish the campaign with results identical to an undisturbed run.
TEST(SubprocessRecovery, CrashInjectedWorkersReproduceTheCampaign)
{
    const auto reference =
        core::Campaign(campaignConfig(defense::DefenseKind::Baseline, 1,
                                      executor::BackendKind::InProcess))
            .run();
    ScopedEnv crash("AMULET_SIM_WORKER_CRASH_AFTER", "3");
    const auto crashed =
        core::Campaign(campaignConfig(defense::DefenseKind::Baseline, 1,
                                      executor::BackendKind::Subprocess))
            .run();
    EXPECT_TRUE(reference.detected());
    expectEquivalent(reference, crashed);
}

// Kill the worker process outright between dispatches; the next
// dispatch must restart it and produce the exact traces an untouched
// backend produces — including the predictor state carried across the
// kill (the batch after the kill starts from the pre-kill context).
TEST(SubprocessRecovery, SigkilledWorkerRestartsWithIdenticalResults)
{
    executor::HarnessConfig hcfg;
    hcfg.bootInsts = 1000;
    core::GeneratorConfig gcfg;
    gcfg.map = hcfg.map;
    core::ProgramGenerator gen(gcfg, Rng(5));
    const isa::Program prog = gen.generate();
    const isa::FlatProgram flat(prog, gcfg.map.codeBase);
    core::InputGenConfig icfg;
    icfg.map = gcfg.map;
    core::InputGenerator igen(icfg, Rng(6));
    const arch::Input in0 = igen.generate(0);
    const arch::Input in1 = igen.generate(1);

    std::vector<std::pair<executor::UTrace, executor::UTrace>> traces;
    auto run_pair = [&](bool kill_between) {
        executor::SubprocessBackend backend(hcfg, {});
        backend.saveContext();
        backend.loadProgram(prog, flat);
        auto first = backend.dispatchBatch({&in0}, nullptr);
        if (kill_between) {
            ASSERT_NE(backend.workerPid(), -1);
            kill(backend.workerPid(), SIGKILL);
        }
        auto second = backend.dispatchBatch({&in1}, nullptr);
        ASSERT_EQ(first.runs.size(), 1u);
        ASSERT_EQ(second.runs.size(), 1u);
        if (kill_between)
            EXPECT_GE(backend.restarts(), 1u);
        traces.push_back({first.runs[0].trace, second.runs[0].trace});
    };
    run_pair(false);
    run_pair(true);
    ASSERT_EQ(traces.size(), 2u);
    EXPECT_EQ(traces[0].first, traces[1].first);
    EXPECT_EQ(traces[0].second, traces[1].second)
        << "post-kill batch must start from the pre-kill predictor "
           "context";
}

} // namespace

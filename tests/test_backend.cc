/**
 * @file
 * Executor backend equivalence contract (src/executor/backend.hh): for
 * every defense, a campaign reaches exactly the same verdicts —
 * confirmed violations, signature counts, counters, and byte-identical
 * record contents — on the in-process, async, and subprocess backends,
 * at jobs=1 and jobs=4. And the subprocess backend survives killed
 * workers: crash injection (AMULET_SIM_WORKER_CRASH_AFTER) and a direct
 * SIGKILL mid-program both end in results identical to an uninterrupted
 * run.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <optional>

#include "core/campaign.hh"
#include "core/generator.hh"
#include "core/input_gen.hh"
#include "corpus/serde.hh"
#include "executor/backend_subprocess.hh"
#include "runtime/fault.hh"

namespace
{

using namespace amulet;

core::CampaignConfig
campaignConfig(defense::DefenseKind kind, unsigned jobs,
               executor::BackendKind backend)
{
    core::CampaignConfig cfg;
    cfg.harness.defense.kind = kind;
    cfg.harness.prime = (kind == defense::DefenseKind::CleanupSpec ||
                         kind == defense::DefenseKind::SpecLfb)
                            ? executor::PrimeMode::Invalidate
                            : executor::PrimeMode::ConflictFill;
    cfg.harness.bootInsts = 2000;
    if (kind == defense::DefenseKind::Stt) {
        cfg.harness.map.sandboxPages = 128;
        cfg.contract = contracts::archSeq();
    }
    cfg.gen.map = cfg.harness.map;
    cfg.inputs.map = cfg.harness.map;
    cfg.numPrograms = 8;
    cfg.baseInputsPerProgram = 6;
    cfg.siblingsPerBase = 4;
    cfg.seed = 1;
    cfg.jobs = jobs;
    cfg.backend = backend;
    return cfg;
}

/** Everything but wall-clock must match the in-process reference. */
void
expectEquivalent(const core::CampaignStats &reference,
                 const core::CampaignStats &other)
{
    EXPECT_EQ(reference.confirmedViolations, other.confirmedViolations);
    EXPECT_EQ(reference.signatureCounts, other.signatureCounts);
    EXPECT_EQ(reference.candidateViolations, other.candidateViolations);
    EXPECT_EQ(reference.violatingTestCases, other.violatingTestCases);
    EXPECT_EQ(reference.validationRuns, other.validationRuns);
    EXPECT_EQ(reference.programs, other.programs);
    EXPECT_EQ(reference.skippedPrograms, other.skippedPrograms);
    EXPECT_EQ(reference.testCases, other.testCases);
    EXPECT_EQ(reference.filteredTestCases, other.filteredTestCases);
    EXPECT_EQ(reference.effectiveClasses, other.effectiveClasses);
    // Per-record contents are byte-identical modulo detectSeconds, the
    // one wall-clock field (compared through the canonical serde dump,
    // the same normalization corpus exports use).
    ASSERT_EQ(reference.records.size(), other.records.size());
    for (std::size_t i = 0; i < reference.records.size(); ++i) {
        core::ViolationRecord a = reference.records[i];
        core::ViolationRecord b = other.records[i];
        a.detectSeconds = 0;
        b.detectSeconds = 0;
        EXPECT_EQ(corpus::toJson(a).dump(), corpus::toJson(b).dump())
            << "record " << i;
    }
}

void
runEquivalence(defense::DefenseKind kind, bool expect_detection)
{
    for (unsigned jobs : {1u, 4u}) {
        SCOPED_TRACE("jobs=" + std::to_string(jobs));
        const auto reference =
            core::Campaign(campaignConfig(
                               kind, jobs, executor::BackendKind::InProcess))
                .run();
        if (expect_detection)
            EXPECT_TRUE(reference.detected());
        for (auto backend : {executor::BackendKind::Async,
                             executor::BackendKind::Subprocess}) {
            SCOPED_TRACE(executor::backendKindName(backend));
            const auto other =
                core::Campaign(campaignConfig(kind, jobs, backend)).run();
            expectEquivalent(reference, other);
        }
    }
}

TEST(BackendEquivalence, Baseline)
{
    runEquivalence(defense::DefenseKind::Baseline, true);
}

TEST(BackendEquivalence, InvisiSpec)
{
    runEquivalence(defense::DefenseKind::InvisiSpec, false);
}

TEST(BackendEquivalence, CleanupSpec)
{
    runEquivalence(defense::DefenseKind::CleanupSpec, false);
}

TEST(BackendEquivalence, SpecLfb)
{
    runEquivalence(defense::DefenseKind::SpecLfb, false);
}

TEST(BackendEquivalence, Stt)
{
    runEquivalence(defense::DefenseKind::Stt, false);
}

// CT-COND exercises the paths the backends treat most differently —
// filtered programs never reach the simulator, so a pipelined shard
// reports them out of band — and is the campaign the bench's backend
// ablation row runs.
TEST(BackendEquivalence, CtCond)
{
    for (unsigned jobs : {1u, 4u}) {
        SCOPED_TRACE("jobs=" + std::to_string(jobs));
        auto make = [&](executor::BackendKind backend) {
            auto cfg = campaignConfig(defense::DefenseKind::Baseline,
                                      jobs, backend);
            cfg.contract = contracts::ctCond();
            cfg.numPrograms = 12;
            return cfg;
        };
        const auto reference =
            core::Campaign(make(executor::BackendKind::InProcess)).run();
        for (auto backend : {executor::BackendKind::Async,
                             executor::BackendKind::Subprocess}) {
            SCOPED_TRACE(executor::backendKindName(backend));
            const auto other = core::Campaign(make(backend)).run();
            expectEquivalent(reference, other);
        }
    }
}

// The async shard driver picks one or two simulator lanes from the core
// count; both schedules must produce identical campaigns. This host may
// resolve either way, so force each path explicitly.
TEST(BackendEquivalence, AsyncLaneCountIsOutcomeInvariant)
{
    const auto reference =
        core::Campaign(campaignConfig(defense::DefenseKind::Baseline, 1,
                                      executor::BackendKind::InProcess))
            .run();
    for (const char *lanes : {"1", "2"}) {
        SCOPED_TRACE(std::string("lanes=") + lanes);
        setenv("AMULET_ASYNC_LANES", lanes, 1);
        const auto async_stats =
            core::Campaign(campaignConfig(defense::DefenseKind::Baseline,
                                          1, executor::BackendKind::Async))
                .run();
        unsetenv("AMULET_ASYNC_LANES");
        expectEquivalent(reference, async_stats);
    }
}

// === Subprocess crash recovery =============================================

/** Scoped env var (the crash-injection hook reads the environment). */
struct ScopedEnv
{
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        setenv(name, value, 1);
    }
    ~ScopedEnv() { unsetenv(name_); }
    const char *name_;
};

// Every subprocess worker dies after three simulator operations; the
// backend must restart it, restore its exact pre-operation state, and
// finish the campaign with results identical to an undisturbed run.
TEST(SubprocessRecovery, CrashInjectedWorkersReproduceTheCampaign)
{
    const auto reference =
        core::Campaign(campaignConfig(defense::DefenseKind::Baseline, 1,
                                      executor::BackendKind::InProcess))
            .run();
    ScopedEnv crash("AMULET_SIM_WORKER_CRASH_AFTER", "3");
    const auto crashed =
        core::Campaign(campaignConfig(defense::DefenseKind::Baseline, 1,
                                      executor::BackendKind::Subprocess))
            .run();
    EXPECT_TRUE(reference.detected());
    expectEquivalent(reference, crashed);
}

// Kill the worker process outright between dispatches; the next
// dispatch must restart it and produce the exact traces an untouched
// backend produces — including the predictor state carried across the
// kill (the batch after the kill starts from the pre-kill context).
TEST(SubprocessRecovery, SigkilledWorkerRestartsWithIdenticalResults)
{
    executor::HarnessConfig hcfg;
    hcfg.bootInsts = 1000;
    core::GeneratorConfig gcfg;
    gcfg.map = hcfg.map;
    core::ProgramGenerator gen(gcfg, Rng(5));
    const isa::Program prog = gen.generate();
    const isa::FlatProgram flat(prog, gcfg.map.codeBase);
    core::InputGenConfig icfg;
    icfg.map = gcfg.map;
    core::InputGenerator igen(icfg, Rng(6));
    const arch::Input in0 = igen.generate(0);
    const arch::Input in1 = igen.generate(1);

    std::vector<std::pair<executor::UTrace, executor::UTrace>> traces;
    auto run_pair = [&](bool kill_between) {
        executor::SubprocessBackend backend(hcfg, {});
        backend.saveContext();
        backend.loadProgram(prog, flat);
        auto first = backend.dispatchBatch({&in0}, nullptr);
        if (kill_between) {
            ASSERT_NE(backend.workerPid(), -1);
            kill(backend.workerPid(), SIGKILL);
        }
        auto second = backend.dispatchBatch({&in1}, nullptr);
        ASSERT_EQ(first.runs.size(), 1u);
        ASSERT_EQ(second.runs.size(), 1u);
        if (kill_between)
            EXPECT_GE(backend.restarts(), 1u);
        traces.push_back({first.runs[0].trace, second.runs[0].trace});
    };
    run_pair(false);
    run_pair(true);
    ASSERT_EQ(traces.size(), 2u);
    EXPECT_EQ(traces[0].first, traces[1].first);
    EXPECT_EQ(traces[0].second, traces[1].second)
        << "post-kill batch must start from the pre-kill predictor "
           "context";
}

// === Hung workers ==========================================================

// A worker that wedges (stops answering without dying) must be caught
// by the per-operation watchdog, killed, and restarted with identical
// results — the hang-detection sibling of the crash tests above. The
// direct dispatch pair keeps the timing tight and deterministic.
TEST(SubprocessRecovery, HungWorkerIsTimedOutKilledAndRestarted)
{
    executor::HarnessConfig hcfg;
    hcfg.bootInsts = 1000;
    core::GeneratorConfig gcfg;
    gcfg.map = hcfg.map;
    core::ProgramGenerator gen(gcfg, Rng(5));
    const isa::Program prog = gen.generate();
    const isa::FlatProgram flat(prog, gcfg.map.codeBase);
    core::InputGenConfig icfg;
    icfg.map = gcfg.map;
    core::InputGenerator igen(icfg, Rng(6));
    const arch::Input in0 = igen.generate(0);
    const arch::Input in1 = igen.generate(1);

    std::vector<std::pair<executor::UTrace, executor::UTrace>> traces;
    auto run_pair = [&](bool hang) {
        executor::BackendOptions opts;
        opts.opTimeoutSec = 2.0;
        std::optional<ScopedEnv> env;
        if (hang) {
            // The worker freezes before its 2nd mutating op; the
            // watchdog must fire instead of waiting forever.
            env.emplace("AMULET_SIM_WORKER_HANG_AFTER", "1");
        }
        executor::SubprocessBackend backend(hcfg, opts);
        backend.saveContext();
        backend.loadProgram(prog, flat);
        auto first = backend.dispatchBatch({&in0}, nullptr);
        auto second = backend.dispatchBatch({&in1}, nullptr);
        ASSERT_EQ(first.runs.size(), 1u);
        ASSERT_EQ(second.runs.size(), 1u);
        if (hang)
            EXPECT_GE(backend.restarts(), 1u);
        traces.push_back({first.runs[0].trace, second.runs[0].trace});
    };
    run_pair(false);
    run_pair(true);
    ASSERT_EQ(traces.size(), 2u);
    EXPECT_EQ(traces[0].first, traces[1].first);
    EXPECT_EQ(traces[0].second, traces[1].second)
        << "post-hang batch must start from the pre-hang predictor "
           "context";
}

// Campaign-level hang recovery: workers that periodically wedge must
// still produce a campaign equivalent to an undisturbed in-process run.
// The generous timeout keeps legitimate (sanitizer-slowed) ops under
// the watchdog; only real hangs trip it.
TEST(SubprocessRecovery, HangInjectedWorkersReproduceTheCampaign)
{
    auto config = [](executor::BackendKind backend) {
        auto cfg = campaignConfig(defense::DefenseKind::Baseline, 1,
                                  backend);
        cfg.numPrograms = 4;
        return cfg;
    };
    const auto reference =
        core::Campaign(config(executor::BackendKind::InProcess)).run();
    ScopedEnv hang("AMULET_SIM_WORKER_HANG_AFTER", "40");
    ScopedEnv timeout("AMULET_SIM_OP_TIMEOUT_SEC", "4");
    const auto hung =
        core::Campaign(config(executor::BackendKind::Subprocess)).run();
    expectEquivalent(reference, hung);
    const auto it = hung.metrics.find("backend.restarts");
    ASSERT_NE(it, hung.metrics.end())
        << "the hang hook must actually have wedged a worker";
    EXPECT_GE(it->second.value, 1.0);
}

// Watchdog regression: the receive deadline is per *operation*, not per
// poll. A worker trickling bytes forever — each arriving well inside
// the poll window, the full line never — must still be timed out; with
// a per-poll budget every byte would reset the clock and the campaign
// would hang for good.
TEST(SubprocessRecovery, TricklingWorkerCannotEvadeTheWatchdog)
{
    namespace fs = std::filesystem;
    const std::string script =
        (fs::temp_directory_path() /
         ("amulet_trickle_worker_" + std::to_string(::getpid()) + ".sh"))
            .string();
    {
        std::ofstream out(script);
        // Answers the hello handshake properly, then dribbles one byte
        // every 100 ms without ever terminating the reply line.
        out << "#!/bin/sh\n"
               "read line\n"
               "printf '{\"ok\":true}\\n'\n"
               "read line\n"
               "while :; do printf 'x'; sleep 0.1; done\n";
    }
    chmod(script.c_str(), 0755);

    executor::BackendOptions opts;
    opts.workerPath = script;
    opts.opTimeoutSec = 0.6;
    const auto t0 = std::chrono::steady_clock::now();
    {
        executor::SubprocessBackend backend(executor::HarnessConfig{},
                                            opts);
        EXPECT_THROW(backend.saveContext(),
                     executor::WorkerQuarantineError)
            << "a never-completing reply must exhaust the retry budget";
    }
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    // 3 attempts x 0.6 s plus backoff and process churn; anything close
    // to a minute means the deadline reset per poll.
    EXPECT_LT(elapsed, 30.0);
    fs::remove(script);
}

// === Per-program quarantine at the backend boundary ========================

// When every recovery attempt at one operation fails, roundTrip must
// escalate to WorkerQuarantineError — the per-program verdict the shard
// executor converts into a quarantined outcome — and a fresh program on
// the same backend must still work (the poison is per-program).
TEST(SubprocessRecovery, ExhaustedRetriesEscalateToQuarantine)
{
    struct PlanGuard
    {
        PlanGuard() { runtime::fault::FaultPlan::install("poison=7"); }
        ~PlanGuard() { runtime::fault::FaultPlan::uninstall(); }
    } guard;

    executor::HarnessConfig hcfg;
    hcfg.bootInsts = 1000;
    executor::SubprocessBackend backend(hcfg, {});
    backend.saveContext(); // boot op: unscoped, never faulted
    {
        runtime::fault::ProgramScope scope(7);
        EXPECT_THROW(backend.saveContext(),
                     executor::WorkerQuarantineError);
    }
    {
        // A non-poisoned program right after: the backend must recover.
        runtime::fault::ProgramScope scope(8);
        EXPECT_NO_THROW(backend.saveContext());
    }
}

} // namespace

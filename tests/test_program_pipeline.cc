/**
 * @file
 * Staged per-program pipeline tests (src/pipeline/): stage order and
 * composition, observer instrumentation, per-stage behaviour in
 * isolation (TestGen determinism, CTrace consistency including the
 * reused mutation-confirmation trace, Filter semantics), and the
 * SimHarness batch API the ExecuteStage is built on.
 */

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "isa/disasm.hh"
#include "pipeline/pipeline.hh"
#include "pipeline/stages.hh"

namespace
{

using namespace amulet;

core::CampaignConfig
smallConfig()
{
    core::CampaignConfig cfg;
    cfg.harness.bootInsts = 500;
    cfg.gen.map = cfg.harness.map;
    cfg.inputs.map = cfg.harness.map;
    cfg.baseInputsPerProgram = 2;
    cfg.siblingsPerBase = 2;
    cfg.seed = 7;
    return cfg;
}

/** One backend + model + canonical context, as a shard would own. */
struct Fixture
{
    core::CampaignConfig cfg = smallConfig();
    executor::InProcessBackend backend{cfg.harness};
    executor::SimHarness &harness = backend.harness();
    contracts::LeakageModel model{cfg.contract};
    executor::UarchContext canonicalCtx = backend.saveContext();
    pipeline::StageContext ctx{cfg, backend, model, canonicalCtx,
                               pipeline::Clock::now()};
};

/** Minimal injectable stage for composition/instrumentation tests. */
class HookStage : public pipeline::Stage
{
  public:
    HookStage(const char *name,
              std::function<void(pipeline::ProgramPlan &)> fn)
        : name_(name), fn_(std::move(fn))
    {
    }
    const char *name() const override { return name_; }
    void run(pipeline::StageContext &,
             pipeline::ProgramPlan &plan) override
    {
        fn_(plan);
    }

  private:
    const char *name_;
    std::function<void(pipeline::ProgramPlan &)> fn_;
};

TEST(ProgramPipeline, StandardStageOrderMatchesThePaperLoop)
{
    const auto p = pipeline::ProgramPipeline::standard();
    const char *expected[] = {"testgen", "ctrace",   "filter", "execute",
                              "analyze", "validate", "record"};
    ASSERT_EQ(p.size(), 7u);
    for (std::size_t i = 0; i < p.size(); ++i)
        EXPECT_STREQ(p.stage(i).name(), expected[i]);
}

TEST(ProgramPipeline, ObserverSeesEveryStageAndHaltStopsThePipeline)
{
    Fixture f;
    pipeline::ProgramPipeline p;
    p.append(std::make_unique<HookStage>("one", [](auto &) {}));
    p.append(std::make_unique<HookStage>("two",
                                         [](auto &plan) { plan.halt = true; }));
    p.append(std::make_unique<HookStage>("never", [](auto &) {
        FAIL() << "stage after halt must not run";
    }));

    std::vector<std::string> seen;
    p.setObserver([&](const pipeline::Stage &stage,
                      const pipeline::ProgramPlan &, double seconds) {
        EXPECT_GE(seconds, 0.0);
        seen.push_back(stage.name());
    });
    pipeline::ProgramPlan plan =
        pipeline::ProgramPlan::forProgram(0, Rng(1));
    p.run(f.ctx, plan);
    EXPECT_EQ(seen, (std::vector<std::string>{"one", "two"}));
}

TEST(TestGenStage, DeterministicForEqualStreams)
{
    Fixture f;
    pipeline::TestGenStage stage;
    auto plan_a = pipeline::ProgramPlan::forProgram(3, Rng(42));
    auto plan_b = pipeline::ProgramPlan::forProgram(3, Rng(42));
    stage.run(f.ctx, plan_a);
    stage.run(f.ctx, plan_b);
    EXPECT_EQ(isa::formatProgram(plan_a.program),
              isa::formatProgram(plan_b.program));
    EXPECT_GT(plan_a.outcome.testGenSec, 0.0);
}

// Every stored contract trace — including the reused trace that
// confirmed a register mutation — must equal a fresh collect for its
// input, or downstream equivalence classes would be built on lies.
TEST(CTraceStage, StoredTracesMatchFreshCollects)
{
    Fixture f;
    f.cfg.regMutationPct = 100; // force the mutation path
    pipeline::TestGenStage gen;
    pipeline::CTraceStage ctrace;
    auto plan = pipeline::ProgramPlan::forProgram(0, Rng(f.cfg.seed));
    gen.run(f.ctx, plan);
    ctrace.run(f.ctx, plan);

    const std::size_t expected = f.cfg.baseInputsPerProgram *
                                 (1 + f.cfg.siblingsPerBase);
    ASSERT_EQ(plan.inputs.size(), expected);
    ASSERT_EQ(plan.ctraces.size(), expected);
    for (std::size_t i = 0; i < plan.inputs.size(); ++i) {
        EXPECT_EQ(plan.ctraces[i],
                  f.model.collect(*plan.flat, plan.inputs[i],
                                  f.cfg.harness.map))
            << "input " << i;
    }
}

/** Plan with synthetic ctraces: values spell the class layout. */
pipeline::ProgramPlan
planWithCTraces(const std::vector<std::uint64_t> &values)
{
    pipeline::ProgramPlan plan;
    for (std::uint64_t v : values) {
        plan.inputs.emplace_back();
        plan.ctraces.push_back(
            {{contracts::Obs::Kind::LoadAddr, v}});
    }
    return plan;
}

TEST(FilterStage, DropsSingletonClassesWhenOn)
{
    Fixture f;
    pipeline::FilterStage stage;
    // Classes: {0,1,3} (A), {2} (B), {4} (C) — one effective, two
    // singletons.
    auto plan = planWithCTraces({7, 7, 8, 7, 9});
    stage.run(f.ctx, plan);
    EXPECT_EQ(plan.outcome.effectiveClasses, 1u);
    EXPECT_EQ(plan.executeClasses, (std::vector<std::size_t>{0}));
    EXPECT_EQ(plan.outcome.filteredTestCases, 2u);
    EXPECT_FALSE(plan.halt);
}

TEST(FilterStage, OffKeepsSingletonsAfterEveryEffectiveClass)
{
    Fixture f;
    f.cfg.filterIneffective = false;
    pipeline::FilterStage stage;
    // Classes in first-occurrence order: {0} (A), {1,3} (B), {2} (C).
    auto plan = planWithCTraces({7, 8, 9, 8});
    stage.run(f.ctx, plan);
    EXPECT_EQ(plan.outcome.filteredTestCases, 0u);
    // Effective class first, then the singletons in class order: the
    // executed prefix is what filtering on would run.
    EXPECT_EQ(plan.executeClasses, (std::vector<std::size_t>{1, 0, 2}));
    EXPECT_FALSE(plan.halt);
}

TEST(FilterStage, ZeroEffectiveClassesSkipsTheSimulatorEntirely)
{
    Fixture f;
    pipeline::FilterStage stage;
    auto plan = planWithCTraces({1, 2, 3});
    stage.run(f.ctx, plan);
    EXPECT_TRUE(plan.halt);
    EXPECT_TRUE(plan.outcome.skippedProgram);
    EXPECT_TRUE(plan.outcome.ran);
    EXPECT_EQ(plan.outcome.testCases, 3u);
    EXPECT_EQ(plan.outcome.filteredTestCases, 3u);
    EXPECT_TRUE(plan.executeClasses.empty());

    // Filtering off must still execute those singletons.
    Fixture off;
    off.cfg.filterIneffective = false;
    auto plan_off = planWithCTraces({1, 2, 3});
    stage.run(off.ctx, plan_off);
    EXPECT_FALSE(plan_off.halt);
    EXPECT_EQ(plan_off.executeClasses.size(), 3u);
}

// The batch API must be observationally identical to the per-input
// loop it replaces: same traces, same pre-run contexts.
TEST(SimHarnessBatch, MatchesPerInputRuns)
{
    Fixture f;
    pipeline::TestGenStage gen;
    pipeline::CTraceStage ctrace;
    auto plan = pipeline::ProgramPlan::forProgram(0, Rng(f.cfg.seed));
    gen.run(f.ctx, plan);
    ctrace.run(f.ctx, plan);
    ASSERT_GE(plan.inputs.size(), 3u);
    std::vector<const arch::Input *> batch;
    for (std::size_t i = 0; i < 3; ++i)
        batch.push_back(&plan.inputs[i]);

    f.harness.loadProgram(&*plan.flat);
    f.harness.restoreContext(f.canonicalCtx);
    const auto res = f.harness.runBatch(batch);
    ASSERT_FALSE(res.hitCycleCap);
    ASSERT_EQ(res.runs.size(), batch.size());
    ASSERT_EQ(res.startContexts.size(), batch.size());

    f.harness.restoreContext(f.canonicalCtx);
    for (std::size_t i = 0; i < batch.size(); ++i) {
        const auto manual = f.harness.runInput(*batch[i]);
        EXPECT_TRUE(manual.trace == res.runs[i].trace) << "input " << i;
    }
}

// ExecuteStage must stay usable in a pipeline composed without a
// FilterStage: it plans every class itself instead of silently
// executing nothing.
TEST(ExecuteStage, RunsAllClassesWhenFilterStageWasSkipped)
{
    Fixture f;
    pipeline::ProgramPipeline p;
    p.append(std::make_unique<pipeline::TestGenStage>());
    p.append(std::make_unique<pipeline::CTraceStage>());
    p.append(std::make_unique<pipeline::ExecuteStage>()); // no Filter
    auto plan = pipeline::ProgramPlan::forProgram(0, Rng(f.cfg.seed));
    p.run(f.ctx, plan);
    ASSERT_TRUE(plan.outcome.ran);
    EXPECT_EQ(plan.outcome.testCases, plan.inputs.size());
    EXPECT_FALSE(plan.classes.classes.empty());
    // Every input executed: every context slot was filled.
    std::size_t executed = 0;
    for (std::size_t c : plan.executeClasses)
        executed += plan.classes.classes[c].size();
    EXPECT_EQ(executed, plan.inputs.size());
}

// A pipeline prefix composes without ever touching the simulator: the
// contract-side stages are dispatchable on harness-free workers.
TEST(ProgramPipeline, ContractSideStagesComposeWithoutExecution)
{
    Fixture f;
    pipeline::ProgramPipeline p;
    p.append(std::make_unique<pipeline::TestGenStage>());
    p.append(std::make_unique<pipeline::CTraceStage>());
    p.append(std::make_unique<pipeline::FilterStage>());
    auto plan = pipeline::ProgramPlan::forProgram(1, Rng(9));
    p.run(f.ctx, plan);
    EXPECT_FALSE(plan.inputs.empty());
    EXPECT_EQ(plan.ctraces.size(), plan.inputs.size());
    EXPECT_FALSE(plan.classes.classes.empty());
    EXPECT_TRUE(plan.traces.empty()); // ExecuteStage never ran
}

} // namespace

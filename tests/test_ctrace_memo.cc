/**
 * @file
 * Contract-trace memoization equivalence contract
 * (src/contracts/README.md): serving probes/siblings from a snapshot of
 * the base input's instrumented emulator pass — forking at the first
 * read of a divergent initial location and replaying only the suffix —
 * must not move a single byte of campaign output. Covers the
 * arch::Emulator snapshot/fork primitives, LeakageModel::collectBatch
 * vs cold collect() on random programs per contract, per-defense
 * campaign export equivalence at jobs {1,4} on all three executor
 * backends, and the fingerprint exclusion of the knob.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "contracts/leakage_model.hh"
#include "core/campaign.hh"
#include "core/generator.hh"
#include "core/input_gen.hh"
#include "corpus/corpus_store.hh"
#include "isa/assembler.hh"

namespace fs = std::filesystem;

namespace
{

using namespace amulet;

mem::AddressMap
testMap(unsigned pages = 1)
{
    mem::AddressMap map;
    map.sandboxPages = pages;
    return map;
}

arch::Input
makeInput(const mem::AddressMap &map, std::uint64_t seed)
{
    core::InputGenConfig cfg;
    cfg.map = map;
    Rng rng(seed);
    core::InputGenerator gen(cfg, rng);
    return gen.generate(0);
}

// === arch::Emulator snapshot/fork primitives ==============================

TEST(EmulatorSnapshot, RestoreRoundTrip)
{
    const isa::Program prog = isa::assemble(R"(
        MOV RAX, 5
        MOV qword ptr [R14 + 0], RAX
        ADD RAX, 7
        MOV qword ptr [R14 + 8], RAX
    )");
    const isa::FlatProgram fp(prog, 0x400000);
    const auto map = testMap();
    arch::ArchState st;
    st.loadInput(makeInput(map, 3), map);
    arch::Emulator emu(fp, std::move(st));
    emu.enableJournal();

    const auto init8 = emu.state().mem.read(map.sandboxBase + 8, 8);
    emu.run(2); // RAX = 5, stored to [R14+0]
    const arch::ArchSnapshot snap = emu.snapshot();
    const auto regs_mid = emu.state().regs;

    emu.run();
    EXPECT_TRUE(emu.halted());
    EXPECT_EQ(emu.state().mem.read(map.sandboxBase + 8, 8), 12u);

    emu.restore(snap);
    EXPECT_FALSE(emu.halted());
    EXPECT_EQ(emu.state().regs, regs_mid);
    EXPECT_EQ(emu.state().nextIdx, snap.nextIdx);
    // The second store is undone; the first survives (it predates the
    // snapshot).
    EXPECT_EQ(emu.state().mem.read(map.sandboxBase + 8, 8), init8);
    EXPECT_EQ(emu.state().mem.read(map.sandboxBase + 0, 8), 5u);
    EXPECT_EQ(emu.journalSize(), snap.journalMark);

    // Replay from the snapshot reproduces the run exactly.
    emu.run();
    EXPECT_TRUE(emu.halted());
    EXPECT_EQ(emu.state().mem.read(map.sandboxBase + 8, 8), 12u);
}

TEST(EmulatorSnapshot, SurvivesCheckpointRollback)
{
    const isa::Program prog = isa::assemble(R"(
        MOV qword ptr [R14 + 0], RDI
        MOV qword ptr [R14 + 8], RSI
        MOV qword ptr [R14 + 16], RDX
    )");
    const isa::FlatProgram fp(prog, 0x400000);
    const auto map = testMap();
    arch::Input input = makeInput(map, 4);
    input.regs[isa::regIndex(isa::Reg::Rdi)] = 0x11;
    input.regs[isa::regIndex(isa::Reg::Rsi)] = 0x22;
    input.regs[isa::regIndex(isa::Reg::Rdx)] = 0x33;
    arch::ArchState st;
    st.loadInput(input, map);
    arch::Emulator emu(fp, std::move(st));
    emu.enableJournal();

    const auto init8 = emu.state().mem.read(map.sandboxBase + 8, 8);
    const auto init16 = emu.state().mem.read(map.sandboxBase + 16, 8);

    emu.step(); // committed: store 0x11
    const arch::ArchSnapshot snap = emu.snapshot();

    // A speculative excursion between snapshot and restore: its
    // journal entries are rolled back, so the snapshot's watermark
    // stays valid.
    emu.pushCheckpoint();
    emu.step(); // speculative: store 0x22
    EXPECT_EQ(emu.state().mem.read(map.sandboxBase + 8, 8), 0x22u);
    emu.rollbackCheckpoint();
    EXPECT_EQ(emu.state().mem.read(map.sandboxBase + 8, 8), init8);

    emu.run(); // committed: stores 0x22, 0x33
    EXPECT_EQ(emu.state().mem.read(map.sandboxBase + 16, 8), 0x33u);

    emu.restore(snap);
    EXPECT_EQ(emu.state().mem.read(map.sandboxBase + 0, 8), 0x11u);
    EXPECT_EQ(emu.state().mem.read(map.sandboxBase + 8, 8), init8);
    EXPECT_EQ(emu.state().mem.read(map.sandboxBase + 16, 8), init16);
}

TEST(EmulatorSnapshot, PokeByteAndRewindAllWrites)
{
    const isa::Program prog = isa::assemble(R"(
        MOV qword ptr [R14 + 32], RDI
    )");
    const isa::FlatProgram fp(prog, 0x400000);
    const auto map = testMap();
    const arch::Input input = makeInput(map, 5);
    arch::ArchState st;
    st.loadInput(input, map);
    arch::Emulator emu(fp, std::move(st));
    emu.enableJournal();

    const auto init5 = emu.state().mem.readByte(map.sandboxBase + 5);
    emu.pokeByte(map.sandboxBase + 5, 0xab);
    EXPECT_EQ(emu.state().mem.readByte(map.sandboxBase + 5), 0xab);
    emu.pokeByte(map.sandboxBase + 5, 0xcd);
    emu.run();
    EXPECT_TRUE(emu.halted());

    emu.rewindAllWrites();
    EXPECT_EQ(emu.state().mem.readByte(map.sandboxBase + 5), init5);
    EXPECT_EQ(emu.state().mem.read(map.sandboxBase + 32, 8),
              [&] {
                  std::uint64_t v = 0;
                  for (unsigned i = 0; i < 8; ++i)
                      v |= std::uint64_t{input.sandbox[32 + i]} << (8 * i);
                  return v;
              }());
    EXPECT_EQ(emu.journalSize(), 0u);
}

// === LeakageModel batch memoization vs cold collect =======================

/** Batch inputs a CTraceStage session would see: the base, value-
 *  preserving siblings, single-register probes, plus adversarial cases
 *  (flags flip → cold fallback, arbitrary register mutations). */
std::vector<arch::Input>
sessionInputs(contracts::LeakageModel &model, const isa::FlatProgram &fp,
              const mem::AddressMap &map, std::uint64_t seed)
{
    core::InputGenConfig icfg;
    icfg.map = map;
    Rng rng(seed);
    core::InputGenerator gen(icfg, rng);
    const arch::Input base = gen.generate(1);
    const auto offsets = model.archReadOffsets(fp, base, map);

    std::vector<arch::Input> inputs{base};
    for (unsigned k = 0; k < 3; ++k)
        inputs.push_back(gen.sibling(base, offsets, 100 + k));
    for (unsigned r = 0; r < isa::kNumRegs; ++r) {
        arch::Input probe = base;
        probe.regs[r] ^= 0x5a5a5a5a5a5aULL;
        inputs.push_back(probe);
    }
    arch::Input flags = base;
    flags.flagsByte ^= 0x01;
    inputs.push_back(flags);
    arch::Input scrambled = gen.generate(2);
    scrambled.flagsByte = base.flagsByte;
    inputs.push_back(scrambled);
    return inputs;
}

TEST(CTraceMemo, MatchesColdCollectOnRandomPrograms)
{
    const contracts::ContractSpec specs[] = {
        contracts::ctSeq(), contracts::ctCond(), contracts::archSeq()};
    for (const auto &spec : specs) {
        for (std::uint64_t seed = 1; seed <= 6; ++seed) {
            SCOPED_TRACE(spec.name + " seed=" + std::to_string(seed));
            core::GeneratorConfig gcfg;
            gcfg.map = testMap();
            Rng rng(seed);
            const isa::Program prog =
                core::ProgramGenerator(gcfg, rng).generate();
            const isa::FlatProgram fp(prog, gcfg.map.codeBase);
            contracts::LeakageModel model(spec);

            const auto inputs = sessionInputs(model, fp, gcfg.map, seed);
            const auto memo =
                model.collectBatch(fp, inputs, gcfg.map, true);
            ASSERT_EQ(memo.size(), inputs.size());
            for (std::size_t i = 0; i < inputs.size(); ++i) {
                SCOPED_TRACE("input " + std::to_string(i));
                EXPECT_EQ(memo[i],
                          model.collect(fp, inputs[i], gcfg.map));
            }
            // The base pass derives the same offsets the standalone
            // pass computes.
            EXPECT_EQ(model.batchReadOffsets(),
                      model.archReadOffsets(fp, inputs[0], gcfg.map));

            // Memo off is the cold path — and identical.
            EXPECT_EQ(memo,
                      model.collectBatch(fp, inputs, gcfg.map, false));

            // The equality-only fast path agrees with trace equality.
            model.batchBegin(fp, inputs[0], gcfg.map, true);
            for (std::size_t i = 0; i < inputs.size(); ++i) {
                SCOPED_TRACE("match input " + std::to_string(i));
                EXPECT_EQ(model.batchMatchesBase(inputs[i]),
                          memo[i] == memo[0]);
            }
        }
    }
}

// Under non-exploring contracts the tracked initial reads are exactly
// the architectural read offsets, and sibling() preserves those bytes:
// every sibling must be a full prefix hit — one emulator pass serves
// the whole batch. This is the mechanism behind the STT ctraceSec
// collapse (BENCH_7.json).
TEST(CTraceMemo, SiblingsAreFullHitsUnderCtSeq)
{
    core::GeneratorConfig gcfg;
    gcfg.map = testMap();
    Rng rng(11);
    const isa::Program prog = core::ProgramGenerator(gcfg, rng).generate();
    const isa::FlatProgram fp(prog, gcfg.map.codeBase);
    contracts::LeakageModel model(contracts::ctSeq());

    core::InputGenConfig icfg;
    icfg.map = gcfg.map;
    Rng irng(12);
    core::InputGenerator gen(icfg, irng);
    const arch::Input base = gen.generate(1);
    const auto offsets = model.archReadOffsets(fp, base, gcfg.map);
    std::vector<arch::Input> inputs{base};
    for (unsigned k = 0; k < 4; ++k)
        inputs.push_back(gen.sibling(base, offsets, 100 + k));

    model.takeBatchStats();
    const auto traces = model.collectBatch(fp, inputs, gcfg.map, true);
    const auto stats = model.takeBatchStats();
    EXPECT_EQ(stats.fullRuns, 1u);
    EXPECT_EQ(stats.memoHits, 4u);
    EXPECT_EQ(stats.memoReplaySteps, 0u);
    for (const auto &t : traces)
        EXPECT_EQ(t, traces[0]);
}

// === Campaign-level equivalence ===========================================

/** Unique scratch directory, removed on destruction. */
class ScratchDir
{
  public:
    explicit ScratchDir(const std::string &name)
        : path_((fs::temp_directory_path() /
                 ("amulet_ctrace_memo_test_" + name +
                  std::to_string(::getpid())))
                    .string())
    {
        fs::remove_all(path_);
    }

    ~ScratchDir() { fs::remove_all(path_); }

    std::string
    sub(const std::string &name) const
    {
        return (fs::path(path_) / name).string();
    }

  private:
    std::string path_;
};

core::CampaignConfig
campaignConfig(defense::DefenseKind kind, bool memo, unsigned jobs,
               executor::BackendKind backend)
{
    core::CampaignConfig cfg;
    cfg.harness.defense.kind = kind;
    cfg.harness.prime = (kind == defense::DefenseKind::CleanupSpec ||
                         kind == defense::DefenseKind::SpecLfb)
                            ? executor::PrimeMode::Invalidate
                            : executor::PrimeMode::ConflictFill;
    cfg.harness.bootInsts = 1500;
    cfg.ctraceMemo = memo;
    if (kind == defense::DefenseKind::Stt) {
        cfg.harness.map.sandboxPages = 128;
        cfg.contract = contracts::archSeq();
    }
    cfg.gen.map = cfg.harness.map;
    cfg.inputs.map = cfg.harness.map;
    cfg.numPrograms = 6;
    cfg.baseInputsPerProgram = 6;
    cfg.siblingsPerBase = 4;
    cfg.seed = 1;
    cfg.jobs = jobs;
    cfg.backend = backend;
    return cfg;
}

/** Run one campaign into a corpus dir and return its canonical export. */
std::string
runAndExport(const ScratchDir &scratch, const std::string &tag,
             const core::CampaignConfig &base)
{
    core::CampaignConfig cfg = base;
    cfg.corpusDir = scratch.sub(tag);
    core::Campaign(cfg).run();
    return corpus::CorpusStore::exportCanonical(cfg.corpusDir);
}

void
runEquivalence(defense::DefenseKind kind, bool expect_detection)
{
    ScratchDir scratch(defense::defenseKindName(kind));
    // Reference: memo ON (the default), in-process, serial.
    const auto ref_cfg = campaignConfig(kind, true, 1,
                                        executor::BackendKind::InProcess);
    const auto ref_stats = [&] {
        core::CampaignConfig cfg = ref_cfg;
        cfg.corpusDir = scratch.sub("ref");
        return core::Campaign(cfg).run();
    }();
    if (expect_detection)
        EXPECT_TRUE(ref_stats.detected());
    const std::string reference =
        corpus::CorpusStore::exportCanonical(scratch.sub("ref"));

    // The memo must be invisible on every (jobs, backend) pair: the
    // knob is runtime-only, exactly like jobs and backend themselves.
    unsigned n = 0;
    for (unsigned jobs : {1u, 4u}) {
        for (auto backend : executor::allBackendKinds()) {
            SCOPED_TRACE("jobs=" + std::to_string(jobs) + " backend=" +
                         executor::backendKindName(backend));
            const std::string off = runAndExport(
                scratch, "off" + std::to_string(n++),
                campaignConfig(kind, false, jobs, backend));
            EXPECT_EQ(reference, off);
        }
    }
}

TEST(CTraceMemoEquivalence, Baseline)
{
    runEquivalence(defense::DefenseKind::Baseline, true);
}

TEST(CTraceMemoEquivalence, InvisiSpec)
{
    runEquivalence(defense::DefenseKind::InvisiSpec, false);
}

TEST(CTraceMemoEquivalence, CleanupSpec)
{
    runEquivalence(defense::DefenseKind::CleanupSpec, false);
}

TEST(CTraceMemoEquivalence, SpecLfb)
{
    runEquivalence(defense::DefenseKind::SpecLfb, false);
}

TEST(CTraceMemoEquivalence, Stt)
{
    runEquivalence(defense::DefenseKind::Stt, false);
}

// CT-COND with register mutation enabled is the densest client of the
// batch API (16 dead-register probes + mutation confirmations per base
// input, all under speculative exploration). Check export equivalence
// and that the memo actually removes emulator work rather than moving
// it around.
TEST(CTraceMemoEquivalence, CtCondAblationCampaign)
{
    ScratchDir scratch("ctcond");
    auto make = [&](bool memo) {
        auto cfg = campaignConfig(defense::DefenseKind::Baseline, memo, 1,
                                  executor::BackendKind::InProcess);
        cfg.contract = contracts::ctCond();
        cfg.numPrograms = 10;
        return cfg;
    };
    core::CampaignConfig on_cfg = make(true);
    on_cfg.corpusDir = scratch.sub("on");
    const auto on = core::Campaign(on_cfg).run();
    core::CampaignConfig off_cfg = make(false);
    off_cfg.corpusDir = scratch.sub("off");
    const auto off = core::Campaign(off_cfg).run();

    EXPECT_EQ(corpus::CorpusStore::exportCanonical(scratch.sub("on")),
              corpus::CorpusStore::exportCanonical(scratch.sub("off")));
    EXPECT_EQ(on.confirmedViolations, off.confirmedViolations);
    EXPECT_EQ(on.violatingTestCases, off.violatingTestCases);
    EXPECT_EQ(on.candidateViolations, off.candidateViolations);
    EXPECT_EQ(on.signatureCounts, off.signatureCounts);
    // The off run re-executes the whole program per probe/sibling; the
    // memoized run serves them from the batch session. The memo
    // counters are the deterministic witness (a wall-clock comparison
    // here would flap under load: this cell's sandbox is small, so the
    // absolute margin is tiny).
    const auto counter = [](const core::CampaignStats &s,
                            const char *name) {
        const auto it = s.metrics.find(name);
        return it == s.metrics.end() ? 0.0 : it->second.value;
    };
    EXPECT_GT(counter(on, "ctrace.memoHits"), 0.0);
    EXPECT_EQ(counter(off, "ctrace.memoHits"), 0.0);
    EXPECT_LT(counter(on, "ctrace.fullRuns"),
              counter(off, "ctrace.fullRuns"));
}

// A corpus journaled without the memo resumes under it (and the other
// way around): the knob must not participate in the config
// fingerprint, or kill/resume workflows would wedge on a runtime
// setting.
TEST(CTraceMemoEquivalence, FingerprintIgnoresTheKnob)
{
    ScratchDir scratch("resume");
    core::CampaignConfig cfg = campaignConfig(
        defense::DefenseKind::Baseline, false, 1,
        executor::BackendKind::InProcess);
    cfg.corpusDir = scratch.sub("c");
    cfg.maxProgramsThisRun = 3;
    core::Campaign(cfg).run();

    core::CampaignConfig resume_cfg = cfg;
    resume_cfg.ctraceMemo = true; // flipped across the resume
    resume_cfg.maxProgramsThisRun = 0;
    resume_cfg.resume = true;
    const auto resumed = core::Campaign(resume_cfg).run();
    EXPECT_EQ(resumed.programs, cfg.numPrograms);

    // And the full campaign must match an uninterrupted all-on run.
    const std::string uninterrupted = runAndExport(
        scratch, "full",
        campaignConfig(defense::DefenseKind::Baseline, true, 1,
                       executor::BackendKind::InProcess));
    EXPECT_EQ(uninterrupted,
              corpus::CorpusStore::exportCanonical(scratch.sub("c")));
}

} // namespace

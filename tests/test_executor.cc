/**
 * @file
 * Executor/harness tests: run determinism, context snapshot/replay,
 * Naive-vs-Opt restart behaviour, priming modes, trace-format extraction,
 * and the generated-program disassembly round-trip.
 */

#include <gtest/gtest.h>

#include <optional>

#include "core/generator.hh"
#include "core/input_gen.hh"
#include "executor/sim_harness.hh"
#include "isa/assembler.hh"
#include "isa/disasm.hh"

namespace
{

using namespace amulet;
using executor::HarnessConfig;
using executor::PrimeMode;
using executor::SimHarness;
using executor::TraceFormat;

HarnessConfig
fastConfig()
{
    HarnessConfig cfg;
    cfg.bootInsts = 1000;
    return cfg;
}

struct Fixture
{
    Fixture()
        : rng(5),
          gcfg([] {
              core::GeneratorConfig g;
              g.map = mem::AddressMap{};
              return g;
          }()),
          gen(gcfg, Rng(5))
    {
        prog = gen.generate();
        fp = std::make_unique<isa::FlatProgram>(prog, gcfg.map.codeBase);
        core::InputGenConfig icfg;
        icfg.map = gcfg.map;
        core::InputGenerator igen(icfg, Rng(6));
        input = igen.generate(0);
    }

    Rng rng;
    core::GeneratorConfig gcfg;
    core::ProgramGenerator gen;
    isa::Program prog;
    std::unique_ptr<isa::FlatProgram> fp;
    arch::Input input;
};

TEST(Harness, RunIsDeterministicUnderSavedContext)
{
    Fixture f;
    SimHarness harness(fastConfig());
    harness.loadProgram(f.fp.get());
    const auto ctx = harness.saveContext();
    const auto t1 = harness.runInput(f.input).trace;
    harness.restoreContext(ctx);
    const auto t2 = harness.runInput(f.input).trace;
    EXPECT_EQ(t1, t2);
}

TEST(Harness, NaiveRestartsPerInputOptDoesNot)
{
    Fixture f;
    auto cfg = fastConfig();
    cfg.naiveMode = true;
    SimHarness naive(cfg);
    naive.loadProgram(f.fp.get());
    naive.runInput(f.input);
    naive.runInput(f.input);
    naive.runInput(f.input);
    EXPECT_EQ(naive.startCount(), 3u);

    SimHarness opt(fastConfig());
    opt.loadProgram(f.fp.get());
    opt.runInput(f.input);
    opt.runInput(f.input);
    opt.runInput(f.input);
    EXPECT_EQ(opt.startCount(), 1u);
}

TEST(Harness, NaiveRunsAreIdenticalAcrossRestarts)
{
    Fixture f;
    auto cfg = fastConfig();
    cfg.naiveMode = true;
    SimHarness harness(cfg);
    harness.loadProgram(f.fp.get());
    const auto t1 = harness.runInput(f.input).trace;
    const auto t2 = harness.runInput(f.input).trace;
    EXPECT_EQ(t1, t2) << "cold restarts must be reproducible";
}

TEST(Harness, ConflictFillPrimesEverySet)
{
    Fixture f;
    auto cfg = fastConfig();
    cfg.prime = PrimeMode::ConflictFill;
    SimHarness harness(cfg);
    harness.loadProgram(f.fp.get());
    harness.runInput(f.input);
    // After a run, lines outside the sandbox (prime region) dominate the
    // L1D; every set was filled before the test touched anything.
    const auto &l1d = harness.pipeline().memSys().l1d();
    std::size_t prime_lines = 0;
    for (Addr line : l1d.snapshot()) {
        if (line >= cfg.map.primeBase)
            ++prime_lines;
    }
    EXPECT_GT(prime_lines,
              static_cast<std::size_t>(l1d.numSets() * l1d.numWays() /
                                       2));
}

TEST(Harness, InvalidatePrimeStartsClean)
{
    Fixture f;
    auto cfg = fastConfig();
    cfg.prime = PrimeMode::Invalidate;
    SimHarness harness(cfg);
    harness.loadProgram(f.fp.get());
    harness.runInput(f.input);
    const auto &l1d = harness.pipeline().memSys().l1d();
    for (Addr line : l1d.snapshot())
        EXPECT_LT(line, cfg.map.primeBase) << "no prime lines expected";
}

TEST(Harness, AllTraceFormatsExtractAndAreStable)
{
    Fixture f;
    SimHarness harness(fastConfig());
    harness.loadProgram(f.fp.get());
    const auto ctx = harness.saveContext();
    harness.runInput(f.input);
    std::vector<executor::UTrace> first;
    for (auto fmt : executor::allTraceFormats())
        first.push_back(harness.extractExtra(fmt));
    harness.restoreContext(ctx);
    harness.runInput(f.input);
    std::size_t i = 0;
    for (auto fmt : executor::allTraceFormats()) {
        const auto again = harness.extractExtra(fmt);
        EXPECT_EQ(again, first[i++]) << executor::traceFormatName(fmt);
        EXPECT_FALSE(again.words.empty())
            << executor::traceFormatName(fmt);
    }
}

TEST(Harness, TimeBreakdownAccumulates)
{
    Fixture f;
    SimHarness harness(fastConfig());
    harness.loadProgram(f.fp.get());
    harness.runInput(f.input);
    const auto &t = harness.times();
    EXPECT_GT(t.startupSec, 0.0);
    EXPECT_GT(t.primeSec, 0.0); // input-switch cost, split from simulate
    EXPECT_GT(t.simulateSec, 0.0);
    EXPECT_GE(t.traceExtractSec, 0.0);
    EXPECT_GE(t.totalSec(),
              t.startupSec + t.primeSec + t.simulateSec);
}

// The memo must survive the harness's own context save/restore cycle
// and stay byte-stable across many inputs: with the cache on, repeated
// runs of one input produce the trace the uncached harness produces.
TEST(Harness, PrimeCacheMatchesRealPriming)
{
    Fixture f;
    auto cached_cfg = fastConfig();
    auto uncached_cfg = fastConfig();
    uncached_cfg.primeCache = false;
    SimHarness cached(cached_cfg);
    SimHarness uncached(uncached_cfg);
    cached.loadProgram(f.fp.get());
    uncached.loadProgram(f.fp.get());
    for (int i = 0; i < 3; ++i) {
        const auto a = cached.runInput(f.input);
        const auto b = uncached.runInput(f.input);
        EXPECT_EQ(a.trace, b.trace) << "run " << i;
        EXPECT_EQ(a.run.cycles, b.run.cycles) << "run " << i;
    }
}

TEST(HarnessBatch, EmptyBatchRunsNothing)
{
    Fixture f;
    SimHarness harness(fastConfig());
    harness.loadProgram(f.fp.get());
    const auto out = harness.runBatch({});
    EXPECT_TRUE(out.runs.empty());
    EXPECT_TRUE(out.startContexts.empty());
    EXPECT_TRUE(out.extras.empty());
    EXPECT_FALSE(out.hitCycleCap);
}

// A batch that hits the cycle cap mid-way must return the completed
// prefix: runs.size() < batch size, one saved start context per
// *completed* run (the capped run's context is popped), and the flag
// set.
TEST(HarnessBatch, CycleCapMidBatchReturnsCompletedPrefix)
{
    Fixture f;

    // Find a batch [a, b] where b (running after a, under a's trained
    // predictor state) needs at least two more cycles than a: a cap
    // between the two completes a and cuts b. Inputs differ in sandbox
    // contents, so cycle counts vary; search a few candidates.
    core::InputGenConfig icfg;
    icfg.map = f.gcfg.map;
    core::InputGenerator igen(icfg, Rng(9));
    const arch::Input a = igen.generate(100);
    std::optional<arch::Input> b;
    Cycle cap = 0;
    for (unsigned i = 0; i < 12 && !b; ++i) {
        SimHarness probe(fastConfig());
        probe.loadProgram(f.fp.get());
        const arch::Input candidate = igen.generate(101 + i);
        const auto out = probe.runBatch({&a, &candidate});
        ASSERT_EQ(out.runs.size(), 2u);
        const Cycle ca = out.runs[0].run.cycles;
        const Cycle cb = out.runs[1].run.cycles;
        if (cb >= ca + 2) {
            b = candidate;
            cap = (ca + cb) / 2;
        }
    }
    ASSERT_TRUE(b) << "no input pair with distinct cycle counts found";

    auto cfg = fastConfig();
    cfg.core.maxCyclesPerRun = cap;
    SimHarness harness(cfg);
    harness.loadProgram(f.fp.get());
    const auto out = harness.runBatch({&a, &*b});
    EXPECT_TRUE(out.hitCycleCap);
    ASSERT_EQ(out.runs.size(), 1u);
    EXPECT_EQ(out.startContexts.size(), 1u);
    EXPECT_TRUE(out.runs[0].run.halted);
}

// Extra trace formats come back one list per run, in request order —
// including when the request is a permuted subset — and each equals a
// per-input extraction replayed from the same starting context.
TEST(HarnessBatch, ExtrasFollowRequestOrder)
{
    Fixture f;
    const std::vector<TraceFormat> formats = {
        TraceFormat::BpState, TraceFormat::MemAccessOrder,
        TraceFormat::L1dTlb};

    core::InputGenConfig icfg;
    icfg.map = f.gcfg.map;
    core::InputGenerator igen(icfg, Rng(9));
    const arch::Input i0 = igen.generate(0);
    const arch::Input i1 = igen.generate(1);

    SimHarness harness(fastConfig());
    harness.loadProgram(f.fp.get());
    const auto start = harness.saveContext();
    const auto batched = harness.runBatch({&i0, &i1}, &formats);
    ASSERT_EQ(batched.runs.size(), 2u);
    ASSERT_EQ(batched.extras.size(), 2u);

    // Replay per input from the same start context.
    harness.restoreContext(start);
    for (std::size_t i = 0; i < 2; ++i) {
        harness.runInput(i == 0 ? i0 : i1);
        ASSERT_EQ(batched.extras[i].size(), formats.size());
        for (std::size_t fmt = 0; fmt < formats.size(); ++fmt) {
            EXPECT_EQ(batched.extras[i][fmt].format, formats[fmt])
                << "extras must follow the request order";
            EXPECT_EQ(batched.extras[i][fmt],
                      harness.extractExtra(formats[fmt]))
                << "run " << i << " format " << fmt;
        }
    }
}

TEST(GeneratedPrograms, DisassemblyRoundTripsThroughAssembler)
{
    Rng rng(31);
    core::GeneratorConfig gcfg;
    gcfg.map = mem::AddressMap{};
    for (int i = 0; i < 25; ++i) {
        core::ProgramGenerator gen(gcfg, rng.split());
        const isa::Program prog = gen.generate();
        const std::string text = isa::formatProgram(prog);
        const isa::Program back = isa::assemble(text);
        ASSERT_EQ(back.blocks.size(), prog.blocks.size()) << text;
        for (std::size_t b = 0; b < prog.blocks.size(); ++b)
            EXPECT_EQ(back.blocks[b].body, prog.blocks[b].body)
                << "block " << b << " of\n" << text;
    }
}

TEST(GeneratedPrograms, SimulateDeterministicallyAcrossHarnesses)
{
    Fixture f;
    SimHarness h1(fastConfig());
    SimHarness h2(fastConfig());
    h1.loadProgram(f.fp.get());
    h2.loadProgram(f.fp.get());
    const auto t1 = h1.runInput(f.input).trace;
    const auto t2 = h2.runInput(f.input).trace;
    EXPECT_EQ(t1, t2);
}

} // namespace

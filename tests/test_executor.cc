/**
 * @file
 * Executor/harness tests: run determinism, context snapshot/replay,
 * Naive-vs-Opt restart behaviour, priming modes, trace-format extraction,
 * and the generated-program disassembly round-trip.
 */

#include <gtest/gtest.h>

#include "core/generator.hh"
#include "core/input_gen.hh"
#include "executor/sim_harness.hh"
#include "isa/assembler.hh"
#include "isa/disasm.hh"

namespace
{

using namespace amulet;
using executor::HarnessConfig;
using executor::PrimeMode;
using executor::SimHarness;
using executor::TraceFormat;

HarnessConfig
fastConfig()
{
    HarnessConfig cfg;
    cfg.bootInsts = 1000;
    return cfg;
}

struct Fixture
{
    Fixture()
        : rng(5),
          gcfg([] {
              core::GeneratorConfig g;
              g.map = mem::AddressMap{};
              return g;
          }()),
          gen(gcfg, Rng(5))
    {
        prog = gen.generate();
        fp = std::make_unique<isa::FlatProgram>(prog, gcfg.map.codeBase);
        core::InputGenConfig icfg;
        icfg.map = gcfg.map;
        core::InputGenerator igen(icfg, Rng(6));
        input = igen.generate(0);
    }

    Rng rng;
    core::GeneratorConfig gcfg;
    core::ProgramGenerator gen;
    isa::Program prog;
    std::unique_ptr<isa::FlatProgram> fp;
    arch::Input input;
};

TEST(Harness, RunIsDeterministicUnderSavedContext)
{
    Fixture f;
    SimHarness harness(fastConfig());
    harness.loadProgram(f.fp.get());
    const auto ctx = harness.saveContext();
    const auto t1 = harness.runInput(f.input).trace;
    harness.restoreContext(ctx);
    const auto t2 = harness.runInput(f.input).trace;
    EXPECT_EQ(t1, t2);
}

TEST(Harness, NaiveRestartsPerInputOptDoesNot)
{
    Fixture f;
    auto cfg = fastConfig();
    cfg.naiveMode = true;
    SimHarness naive(cfg);
    naive.loadProgram(f.fp.get());
    naive.runInput(f.input);
    naive.runInput(f.input);
    naive.runInput(f.input);
    EXPECT_EQ(naive.startCount(), 3u);

    SimHarness opt(fastConfig());
    opt.loadProgram(f.fp.get());
    opt.runInput(f.input);
    opt.runInput(f.input);
    opt.runInput(f.input);
    EXPECT_EQ(opt.startCount(), 1u);
}

TEST(Harness, NaiveRunsAreIdenticalAcrossRestarts)
{
    Fixture f;
    auto cfg = fastConfig();
    cfg.naiveMode = true;
    SimHarness harness(cfg);
    harness.loadProgram(f.fp.get());
    const auto t1 = harness.runInput(f.input).trace;
    const auto t2 = harness.runInput(f.input).trace;
    EXPECT_EQ(t1, t2) << "cold restarts must be reproducible";
}

TEST(Harness, ConflictFillPrimesEverySet)
{
    Fixture f;
    auto cfg = fastConfig();
    cfg.prime = PrimeMode::ConflictFill;
    SimHarness harness(cfg);
    harness.loadProgram(f.fp.get());
    harness.runInput(f.input);
    // After a run, lines outside the sandbox (prime region) dominate the
    // L1D; every set was filled before the test touched anything.
    const auto &l1d = harness.pipeline().memSys().l1d();
    std::size_t prime_lines = 0;
    for (Addr line : l1d.snapshot()) {
        if (line >= cfg.map.primeBase)
            ++prime_lines;
    }
    EXPECT_GT(prime_lines,
              static_cast<std::size_t>(l1d.numSets() * l1d.numWays() /
                                       2));
}

TEST(Harness, InvalidatePrimeStartsClean)
{
    Fixture f;
    auto cfg = fastConfig();
    cfg.prime = PrimeMode::Invalidate;
    SimHarness harness(cfg);
    harness.loadProgram(f.fp.get());
    harness.runInput(f.input);
    const auto &l1d = harness.pipeline().memSys().l1d();
    for (Addr line : l1d.snapshot())
        EXPECT_LT(line, cfg.map.primeBase) << "no prime lines expected";
}

TEST(Harness, AllTraceFormatsExtractAndAreStable)
{
    Fixture f;
    SimHarness harness(fastConfig());
    harness.loadProgram(f.fp.get());
    const auto ctx = harness.saveContext();
    harness.runInput(f.input);
    std::vector<executor::UTrace> first;
    for (auto fmt : executor::allTraceFormats())
        first.push_back(harness.extractExtra(fmt));
    harness.restoreContext(ctx);
    harness.runInput(f.input);
    std::size_t i = 0;
    for (auto fmt : executor::allTraceFormats()) {
        const auto again = harness.extractExtra(fmt);
        EXPECT_EQ(again, first[i++]) << executor::traceFormatName(fmt);
        EXPECT_FALSE(again.words.empty())
            << executor::traceFormatName(fmt);
    }
}

TEST(Harness, TimeBreakdownAccumulates)
{
    Fixture f;
    SimHarness harness(fastConfig());
    harness.loadProgram(f.fp.get());
    harness.runInput(f.input);
    const auto &t = harness.times();
    EXPECT_GT(t.startupSec, 0.0);
    EXPECT_GT(t.simulateSec, 0.0);
    EXPECT_GE(t.traceExtractSec, 0.0);
}

TEST(GeneratedPrograms, DisassemblyRoundTripsThroughAssembler)
{
    Rng rng(31);
    core::GeneratorConfig gcfg;
    gcfg.map = mem::AddressMap{};
    for (int i = 0; i < 25; ++i) {
        core::ProgramGenerator gen(gcfg, rng.split());
        const isa::Program prog = gen.generate();
        const std::string text = isa::formatProgram(prog);
        const isa::Program back = isa::assemble(text);
        ASSERT_EQ(back.blocks.size(), prog.blocks.size()) << text;
        for (std::size_t b = 0; b < prog.blocks.size(); ++b)
            EXPECT_EQ(back.blocks[b].body, prog.blocks[b].body)
                << "block " << b << " of\n" << text;
    }
}

TEST(GeneratedPrograms, SimulateDeterministicallyAcrossHarnesses)
{
    Fixture f;
    SimHarness h1(fastConfig());
    SimHarness h2(fastConfig());
    h1.loadProgram(f.fp.get());
    h2.loadProgram(f.fp.get());
    const auto t1 = h1.runInput(f.input).trace;
    const auto t2 = h2.runInput(f.input).trace;
    EXPECT_EQ(t1, t2);
}

} // namespace

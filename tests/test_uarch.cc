/**
 * @file
 * Unit tests for the μarch building blocks: caches (LRU, eviction,
 * noClean metadata), TLB, branch/memory-dependence predictors (including
 * context snapshot round-trips), side buffers, the memory system's
 * MSHR/queue behaviour, and the MemSnapshot warm-state save/restore the
 * prime cache rests on.
 */

#include <gtest/gtest.h>

#include "common/event_log.hh"
#include "core/generator.hh"
#include "core/input_gen.hh"
#include "executor/sim_harness.hh"
#include "uarch/cache.hh"
#include "uarch/mem_system.hh"
#include "uarch/predictors.hh"
#include "uarch/tlb.hh"

namespace
{

using namespace amulet;
using namespace amulet::uarch;

TEST(Cache, InstallHitAndLru)
{
    CacheParams p{1024, 2, 64}; // 8 sets, 2 ways
    Cache cache(p);
    EXPECT_EQ(cache.numSets(), 8u);

    EXPECT_EQ(cache.install(0x0000), kNoAddr);
    EXPECT_EQ(cache.install(0x2000), kNoAddr); // same set, way 2
    EXPECT_TRUE(cache.setFull(0x0000));
    EXPECT_EQ(cache.victimOf(0x0000), 0x0000u); // LRU = first installed

    cache.touch(0x0000); // refresh; victim becomes 0x2000
    EXPECT_EQ(cache.victimOf(0x0000), 0x2000u);
    EXPECT_EQ(cache.install(0x4000), 0x2000u); // evicts LRU
    EXPECT_TRUE(cache.present(0x0000));
    EXPECT_FALSE(cache.present(0x2000));
}

TEST(Cache, ReinstallRefreshesWithoutEviction)
{
    CacheParams p{1024, 2, 64};
    Cache cache(p);
    cache.install(0x0000);
    cache.install(0x2000);
    EXPECT_EQ(cache.install(0x0000), kNoAddr); // already present
    EXPECT_EQ(cache.victimOf(0x0000), 0x2000u);
}

TEST(Cache, NonSpecMetadata)
{
    CacheParams p{1024, 2, 64};
    Cache cache(p);
    cache.install(0x0000, false);
    EXPECT_FALSE(cache.nonSpecTouched(0x0000));
    cache.markNonSpecTouched(0x0000);
    EXPECT_TRUE(cache.nonSpecTouched(0x0000));
    // Reinstall with mark keeps it; eviction clears it.
    bool victim_non_spec = false;
    cache.install(0x2000, false);
    cache.touch(0x2000);
    cache.touch(0x2000);
    cache.install(0x0000); // refresh
    cache.install(0x4000, false, &victim_non_spec); // evicts 0x2000
    EXPECT_FALSE(victim_non_spec);
}

TEST(Cache, EvictedNonSpecReported)
{
    CacheParams p{128, 1, 64}; // direct-mapped, 2 sets
    Cache cache(p);
    cache.install(0x0000, true);
    bool victim_non_spec = false;
    const Addr evicted = cache.install(0x0080, false, &victim_non_spec);
    EXPECT_EQ(evicted, 0x0000u);
    EXPECT_TRUE(victim_non_spec);
}

TEST(Cache, SnapshotSortedAndComplete)
{
    CacheParams p{1024, 2, 64};
    Cache cache(p);
    cache.install(0x1000);
    cache.install(0x0040);
    cache.install(0x3fc0);
    const auto snap = cache.snapshot();
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_TRUE(std::is_sorted(snap.begin(), snap.end()));
    cache.invalidateAll();
    EXPECT_TRUE(cache.snapshot().empty());
}

TEST(Cache, SaveRestoreRoundTripKeepsLruOrder)
{
    CacheParams p{1024, 2, 64}; // 8 sets, 2 ways
    Cache cache(p);
    cache.install(0x0000, true);
    cache.install(0x2000);
    cache.touch(0x0000); // victim is now 0x2000
    const Cache::State state = cache.save();

    cache.invalidateAll();
    cache.install(0x4000);
    EXPECT_FALSE(cache.save() == state);

    cache.restore(state);
    EXPECT_EQ(cache.save(), state);
    EXPECT_TRUE(cache.nonSpecTouched(0x0000));
    EXPECT_EQ(cache.victimOf(0x0000), 0x2000u)
        << "LRU order must survive the round trip";
    EXPECT_EQ(cache.install(0x4000), 0x2000u);
}

TEST(Tlb, FillEvictLru)
{
    Tlb tlb(2);
    EXPECT_EQ(tlb.fill(1), kNoAddr);
    EXPECT_EQ(tlb.fill(2), kNoAddr);
    tlb.touch(1);
    EXPECT_EQ(tlb.fill(3), 2u); // LRU victim is VPN 2
    EXPECT_TRUE(tlb.present(1));
    EXPECT_FALSE(tlb.present(2));
    const auto snap = tlb.snapshot();
    EXPECT_EQ(snap, (std::vector<Addr>{1, 3}));
}

TEST(BranchPredictor, ColdPredictsFallThrough)
{
    CoreParams params;
    BranchPredictor bp(params);
    const auto pred = bp.predict(0x400000, true);
    EXPECT_FALSE(pred.taken); // cold BTB: not actionable
    EXPECT_FALSE(pred.btbHit);
}

TEST(BranchPredictor, TrainsTowardsTaken)
{
    CoreParams params;
    BranchPredictor bp(params);
    for (int i = 0; i < 4; ++i)
        bp.train(0x400000, true, 42, bp.ghr());
    const auto pred = bp.predict(0x400000, true);
    EXPECT_TRUE(pred.taken);
    EXPECT_TRUE(pred.btbHit);
    EXPECT_EQ(pred.targetIdx, 42u);
}

TEST(BranchPredictor, SnapshotRoundTrip)
{
    CoreParams params;
    BranchPredictor bp(params);
    for (int i = 0; i < 10; ++i) {
        bp.train(0x400000 + 4 * i, i % 2 == 0, i, bp.ghr());
        bp.updateGhrSpeculative(i % 3 == 0);
    }
    const auto state = bp.save();
    const auto words = bp.traceWords();
    bp.reset();
    EXPECT_NE(bp.traceWords(), words);
    bp.restore(state);
    EXPECT_EQ(bp.traceWords(), words);
    EXPECT_EQ(bp.save(), state);
}

TEST(BranchPredictor, GhrRestoreAfterSquash)
{
    CoreParams params;
    BranchPredictor bp(params);
    const std::uint32_t before = bp.ghr();
    bp.updateGhrSpeculative(true);
    bp.updateGhrSpeculative(false);
    EXPECT_NE(bp.ghr(), before);
    bp.restoreGhr(before);
    EXPECT_EQ(bp.ghr(), before);
}

TEST(MemDepPredictor, ColdPredictsNoDependence)
{
    CoreParams params;
    MemDepPredictor mdp(params);
    EXPECT_FALSE(mdp.predictDependence(0x400010));
    mdp.trainViolation(0x400010);
    EXPECT_TRUE(mdp.predictDependence(0x400010));
    const auto state = mdp.save();
    mdp.reset();
    EXPECT_FALSE(mdp.predictDependence(0x400010));
    mdp.restore(state);
    EXPECT_TRUE(mdp.predictDependence(0x400010));
}

TEST(SideBuffer, FifoCapacity)
{
    SideBuffer buf(2);
    EXPECT_EQ(buf.insert(0x100), kNoAddr);
    EXPECT_EQ(buf.insert(0x200), kNoAddr);
    EXPECT_EQ(buf.insert(0x300), 0x100u); // FIFO eviction
    EXPECT_FALSE(buf.contains(0x100));
    EXPECT_TRUE(buf.contains(0x200));
    buf.erase(0x200);
    EXPECT_FALSE(buf.contains(0x200));
    EXPECT_EQ(buf.insert(0x300), kNoAddr); // duplicate: no-op
}

class MemSystemTest : public ::testing::Test
{
  protected:
    MemSystemTest() : mem_(params_, log_)
    {
        mem_.setCompletionHandler(
            [this](const MemReq &req) { completed_.push_back(req); });
    }

    void
    tickUntil(Cycle cycles)
    {
        for (Cycle c = now_ + 1; c <= now_ + cycles; ++c)
            mem_.tick(c);
        now_ += cycles;
    }

    CoreParams params_;
    EventLog log_;
    MemSystem mem_;
    std::vector<MemReq> completed_;
    Cycle now_ = 0;
};

TEST_F(MemSystemTest, HitCompletesAtHitLatency)
{
    mem_.l1d().install(0x1000);
    MemReq req;
    req.lineAddr = 0x1000;
    mem_.enqueueL1D(req);
    tickUntil(1 + params_.l1HitLatency);
    ASSERT_EQ(completed_.size(), 1u);
    EXPECT_TRUE(completed_[0].wasHit);
}

TEST_F(MemSystemTest, MissFillsThroughMemoryAndInstalls)
{
    MemReq req;
    req.lineAddr = 0x1000;
    mem_.enqueueL1D(req);
    tickUntil(2);
    EXPECT_TRUE(completed_.empty());
    EXPECT_EQ(mem_.l1dMshrsInUse(), 1u);
    tickUntil(params_.memLatency + params_.l2ServiceInterval + 2);
    ASSERT_EQ(completed_.size(), 1u);
    EXPECT_FALSE(completed_[0].wasHit);
    EXPECT_TRUE(mem_.l1d().present(0x1000));
    EXPECT_TRUE(mem_.l2().present(0x1000));
    EXPECT_EQ(mem_.l1dMshrsInUse(), 0u);
}

TEST_F(MemSystemTest, CoalescingSharesOneMshr)
{
    MemReq a, b;
    a.lineAddr = b.lineAddr = 0x1000;
    a.seq = 1;
    b.seq = 2;
    mem_.enqueueL1D(a);
    mem_.enqueueL1D(b);
    tickUntil(3);
    EXPECT_EQ(mem_.l1dMshrsInUse(), 1u);
    tickUntil(params_.memLatency + 4);
    EXPECT_EQ(completed_.size(), 2u);
}

TEST_F(MemSystemTest, MshrExhaustionBlocksQueueHead)
{
    CoreParams small = params_;
    small.l1dMshrs = 1;
    EventLog log;
    MemSystem mem(small, log);
    std::vector<MemReq> done;
    mem.setCompletionHandler(
        [&done](const MemReq &req) { done.push_back(req); });

    MemReq a, b, hit;
    a.lineAddr = 0x1000;
    b.lineAddr = 0x2000;
    hit.lineAddr = 0x3000;
    mem.l1d().install(0x3000); // would hit instantly...
    mem.enqueueL1D(a);
    mem.enqueueL1D(b);
    mem.enqueueL1D(hit); // ...but is stuck behind b (head-of-line)
    for (Cycle c = 1; c <= 10; ++c)
        mem.tick(c);
    EXPECT_TRUE(done.empty());
    EXPECT_EQ(mem.l1dMshrsInUse(), 1u); // b is stalled at the head
    for (Cycle c = 11; c <= 2 * small.memLatency + 20; ++c)
        mem.tick(c);
    EXPECT_EQ(done.size(), 3u);
}

TEST_F(MemSystemTest, SideBufferHitServedWhenFlagged)
{
    SideBuffer buf(4);
    buf.insert(0x1000);
    mem_.setSideBuffer(&buf);
    MemReq req;
    req.lineAddr = 0x1000;
    req.probeSideBuffer = true;
    mem_.enqueueL1D(req);
    tickUntil(1 + params_.l1HitLatency);
    ASSERT_EQ(completed_.size(), 1u);
    EXPECT_TRUE(completed_[0].wasHit);
    EXPECT_TRUE(completed_[0].sideBufferHit);
    EXPECT_FALSE(mem_.l1d().present(0x1000)); // not installed
}

TEST_F(MemSystemTest, InvisibleHitDoesNotRefreshLru)
{
    CacheParams p{128, 2, 64}; // 1 set, 2 ways
    CoreParams small = params_;
    small.l1d = p;
    EventLog log;
    MemSystem mem(small, log);
    mem.l1d().install(0x000);
    mem.l1d().install(0x040);
    // Invisible hit on the LRU line must not promote it.
    MemReq req;
    req.lineAddr = 0x000;
    req.invisibleHit = true;
    mem.enqueueL1D(req);
    for (Cycle c = 1; c <= 5; ++c)
        mem.tick(c);
    EXPECT_EQ(mem.l1d().victimOf(0x080), 0x000u);
}

TEST_F(MemSystemTest, BugSpecEvictEvictsOnFullSet)
{
    CacheParams p{128, 1, 64}; // direct mapped, 2 sets
    CoreParams small = params_;
    small.l1d = p;
    EventLog log;
    log.setEnabled(true);
    MemSystem mem(small, log);
    mem.l1d().install(0x000);
    MemReq req;
    req.lineAddr = 0x080; // same set, different tag
    req.bugSpecEvict = true;
    req.dest = FillDest::SideBuffer;
    mem.enqueueL1D(req);
    for (Cycle c = 1; c <= 3; ++c)
        mem.tick(c);
    EXPECT_FALSE(mem.l1d().present(0x000)) << "UV1 replacement";
    EXPECT_TRUE(log.has(EventKind::SpecEviction));
}

TEST_F(MemSystemTest, DtlbAccessFillsAndReportsWalk)
{
    const unsigned lat1 = mem_.dtlbAccess(0x800123, 8, 1, 0x400000);
    EXPECT_EQ(lat1, params_.tlbWalkLatency);
    const unsigned lat2 = mem_.dtlbAccess(0x800456, 4, 2, 0x400004);
    EXPECT_EQ(lat2, 1u); // same page now cached
    // Page-crossing access fills both pages.
    const unsigned lat3 = mem_.dtlbAccess(0x801ffc, 8, 3, 0x400008);
    EXPECT_EQ(lat3, params_.tlbWalkLatency);
    EXPECT_TRUE(mem_.dtlb().present(0x802));
}

// === MemSnapshot: warm-state save/restore ==================================

// The snapshot must reproduce *everything* the caches retain between
// runs: tag presence, the exact LRU replacement order, CleanupSpec's
// noClean marks, the D-TLB, and the defense side buffer's FIFO order.
TEST_F(MemSystemTest, SnapshotRoundTripRestoresTagsLruNoCleanSideBuffer)
{
    SideBuffer buf(4);
    mem_.setSideBuffer(&buf);

    mem_.l1d().install(0x0000, true); // noClean-marked
    mem_.l1d().install(0x2000);
    mem_.l1d().touch(0x0000); // LRU order: 0x2000 is now the victim
    mem_.l1i().install(0x4000);
    mem_.l2().install(0x8000);
    mem_.dtlb().fill(0x12);
    mem_.dtlb().fill(0x34);
    mem_.dtlb().touch(0x12);
    buf.insert(0x100);
    buf.insert(0x200);

    const MemSnapshot snap = mem_.save();
    ASSERT_TRUE(snap.hasSideBuffer);

    // Clobber everything, then restore.
    mem_.invalidateAll();
    buf.clear();
    mem_.l1d().install(0x6000, true);
    buf.insert(0x999);
    EXPECT_FALSE(mem_.save() == snap);

    mem_.restore(snap);
    EXPECT_EQ(mem_.save(), snap);
    EXPECT_TRUE(mem_.l1d().present(0x0000));
    EXPECT_TRUE(mem_.l1d().nonSpecTouched(0x0000));
    EXPECT_FALSE(mem_.l1d().nonSpecTouched(0x2000));
    EXPECT_FALSE(mem_.l1d().present(0x6000));
    EXPECT_TRUE(mem_.l1i().present(0x4000));
    EXPECT_TRUE(mem_.l2().present(0x8000));
    EXPECT_TRUE(mem_.dtlb().present(0x12));
    EXPECT_TRUE(buf.contains(0x100));
    EXPECT_FALSE(buf.contains(0x999));
    // FIFO replacement order restored: the next two inserts must evict
    // 0x100 then 0x200.
    buf.insert(0x300);
    buf.insert(0x400);
    EXPECT_EQ(buf.insert(0x500), 0x100u);
    EXPECT_EQ(buf.insert(0x600), 0x200u);
}

// Per defense: after a real input run through the full harness, the
// memory system's warm state must survive a save -> clobber -> restore
// round trip exactly, side buffer included. This is the state-level
// guarantee the prime-cache memoization relies on.
TEST(MemSnapshot, RoundTripPerDefense)
{
    namespace def = amulet::defense;
    core::GeneratorConfig gcfg;
    gcfg.map = mem::AddressMap{};
    core::ProgramGenerator gen(gcfg, Rng(5));
    const isa::Program prog = gen.generate();
    const isa::FlatProgram fp(prog, gcfg.map.codeBase);
    core::InputGenConfig icfg;
    icfg.map = gcfg.map;
    core::InputGenerator igen(icfg, Rng(6));
    const arch::Input input = igen.generate(0);

    for (def::DefenseKind kind : def::allDefenseKinds()) {
        SCOPED_TRACE(def::defenseKindName(kind));
        executor::HarnessConfig cfg;
        cfg.bootInsts = 500;
        cfg.defense.kind = kind;
        cfg.prime = (kind == def::DefenseKind::CleanupSpec ||
                     kind == def::DefenseKind::SpecLfb)
                        ? executor::PrimeMode::Invalidate
                        : executor::PrimeMode::ConflictFill;
        executor::SimHarness harness(cfg);
        harness.loadProgram(&fp);
        harness.runInput(input);

        MemSystem &mem = harness.pipeline().memSys();
        const MemSnapshot snap = mem.save();
        const bool has_side_buffer =
            kind == def::DefenseKind::InvisiSpec ||
            kind == def::DefenseKind::SpecLfb;
        EXPECT_EQ(snap.hasSideBuffer, has_side_buffer);

        mem.invalidateAll();
        mem.l1d().install(0xdead000, true);
        EXPECT_FALSE(mem.save() == snap);
        mem.restore(snap);
        EXPECT_EQ(mem.save(), snap);
    }
}

TEST_F(MemSystemTest, FlushCleanupsAppliesQueuedRollbacks)
{
    MemReq cleanup;
    cleanup.kind = ReqKind::Cleanup;
    cleanup.cleanupInvalidate = 0x1000;
    mem_.enqueueL1D(cleanup);
    MemReq load;
    load.lineAddr = 0x2000;
    mem_.enqueueL1D(load);
    mem_.flushCleanups();
    ASSERT_EQ(completed_.size(), 1u);
    EXPECT_EQ(completed_[0].kind, ReqKind::Cleanup);
}

} // namespace

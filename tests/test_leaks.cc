/**
 * @file
 * End-to-end leak tests: the ground-truth matrix of DESIGN.md §6.
 *
 * Each test hand-crafts the paper's attack pattern, runs two
 * contract-equivalent inputs through the executor, and checks that the
 * μarch traces differ (leak) or match (defense holds), for the buggy and
 * patched variant of each countermeasure.
 */

#include <gtest/gtest.h>

#include "executor/sim_harness.hh"
#include "isa/assembler.hh"

namespace
{

using namespace amulet;
using executor::HarnessConfig;
using executor::PrimeMode;
using executor::SimHarness;
using executor::TraceFormat;

/** Slow chain: delays the flags used by the next branch. */
std::string
slowChain(const char *reg, int imuls)
{
    std::string s = "    MOV " + std::string(reg) +
                    ", qword ptr [R14 + 0]\n";
    for (int i = 0; i < imuls; ++i)
        s += "    IMUL " + std::string(reg) + ", " + std::string(reg) +
             "\n";
    return s;
}

/** Trailing architectural work so the test outlives in-flight fills. */
std::string
trailingWork(int imuls = 40)
{
    std::string s = "    MOV R11, qword ptr [R14 + 8]\n";
    for (int i = 0; i < imuls; ++i)
        s += "    IMUL R11, R11\n";
    return s;
}

/**
 * Spectre-v1 with a memory secret: the branch condition depends on a slow
 * load; the mispredicted fall-through loads the secret and encodes it in
 * a second load's address.
 */
isa::Program
spectreV1MemSecret()
{
    std::string text;
    text += ".bb_main.0:\n";
    text += slowChain("RAX", 8);
    text += "    TEST RAX, RAX\n";
    text += "    JNE .bb_main.1\n"; // arch: taken; predicted fall-through
    // Speculative-only path:
    text += "    AND RCX, 0b111111111111\n";
    text += "    MOV RBX, qword ptr [R14 + RCX]\n"; // secret load
    text += "    AND RBX, 0b111110000000\n";
    text += "    MOV RDX, qword ptr [R14 + RBX]\n"; // transmitter
    text += "    JMP .bb_main.1\n";
    text += ".bb_main.1:\n";
    text += trailingWork();
    return isa::assemble(text);
}

/**
 * Spectre-v1 with a register secret and a single speculative load
 * (the SpecLFB UV6 pattern, Figure 8).
 */
isa::Program
spectreV1RegSecret()
{
    std::string text;
    text += ".bb_main.0:\n";
    text += slowChain("RAX", 8);
    text += "    TEST RAX, RAX\n";
    text += "    JNE .bb_main.1\n";
    text += "    AND RBX, 0b111110000000\n";
    text += "    MOV RDX, qword ptr [R14 + RBX]\n"; // single spec load
    text += "    JMP .bb_main.1\n";
    text += ".bb_main.1:\n";
    text += trailingWork();
    return isa::assemble(text);
}

HarnessConfig
makeConfig(defense::DefenseKind kind, PrimeMode prime,
           TraceFormat format = TraceFormat::L1dTlb, bool patched = false,
           unsigned sandbox_pages = 1)
{
    HarnessConfig cfg;
    cfg.defense =
        patched ? defense::DefenseConfig::patched(kind)
                : defense::DefenseConfig{};
    cfg.defense.kind = kind;
    cfg.map.sandboxPages = sandbox_pages;
    cfg.prime = prime;
    cfg.traceFormat = format;
    cfg.bootInsts = 2000; // keep unit tests fast
    return cfg;
}

arch::Input
baseInput(const mem::AddressMap &map)
{
    arch::Input input;
    input.id = 0;
    input.regs.fill(0);
    input.regs[isa::regIndex(isa::Reg::Rcx)] = 0x200; // secret offset
    input.sandbox.assign(map.sandboxSize(), 0);
    // Non-zero word at [0] drives the slow chain and the branch.
    input.sandbox[0] = 3;
    input.sandbox[8] = 7;
    return input;
}

struct LeakOutcome
{
    bool differs;
    executor::UTrace traceA;
    executor::UTrace traceB;
    uarch::RunResult runA;
    uarch::RunResult runB;
};

LeakOutcome
runPair(const HarnessConfig &cfg, const isa::Program &prog,
        const arch::Input &a, const arch::Input &b)
{
    SimHarness harness(cfg);
    const isa::FlatProgram fp(prog, cfg.map.codeBase);
    harness.loadProgram(&fp);
    LeakOutcome out;
    out.runA = harness.runInput(a).run;
    out.traceA = executor::extractTrace(harness.pipeline(),
                                        cfg.traceFormat);
    out.runB = harness.runInput(b).run;
    out.traceB = executor::extractTrace(harness.pipeline(),
                                        cfg.traceFormat);
    out.differs = !(out.traceA == out.traceB);
    return out;
}

/** Inputs differing only in the speculatively-loaded memory secret. */
std::pair<arch::Input, arch::Input>
memSecretInputs(const mem::AddressMap &map)
{
    arch::Input a = baseInput(map);
    arch::Input b = a;
    // The transmitter masks the secret with 0b111110000000, so the secret
    // must differ in byte 1 to reach different cache lines.
    a.sandbox[0x201] = 0x01; // secret 0x100 -> spec line offset 0x100
    b.sandbox[0x201] = 0x07; // secret 0x700 -> spec line offset 0x700
    b.id = 1;
    return {a, b};
}

/** Inputs differing only in a dead register (the secret). */
std::pair<arch::Input, arch::Input>
regSecretInputs(const mem::AddressMap &map)
{
    arch::Input a = baseInput(map);
    arch::Input b = a;
    a.regs[isa::regIndex(isa::Reg::Rbx)] = 0x080;
    b.regs[isa::regIndex(isa::Reg::Rbx)] = 0x780;
    b.id = 1;
    return {a, b};
}

TEST(LeakDeterminism, SameInputSameTrace)
{
    const auto cfg = makeConfig(defense::DefenseKind::Baseline,
                                PrimeMode::ConflictFill);
    const isa::Program prog = spectreV1MemSecret();
    const auto [a, b] = memSecretInputs(cfg.map);
    const LeakOutcome o1 = runPair(cfg, prog, a, a);
    EXPECT_FALSE(o1.differs) << "identical inputs must give equal traces";
    EXPECT_TRUE(o1.runA.halted);
    EXPECT_TRUE(o1.runB.halted);
}

TEST(LeakBaseline, SpectreV1MemorySecretLeaks)
{
    const auto cfg = makeConfig(defense::DefenseKind::Baseline,
                                PrimeMode::ConflictFill);
    const isa::Program prog = spectreV1MemSecret();
    const auto [a, b] = memSecretInputs(cfg.map);
    const LeakOutcome o = runPair(cfg, prog, a, b);
    EXPECT_TRUE(o.runA.squashes > 0) << "expected a misprediction";
    EXPECT_TRUE(o.differs) << "baseline must leak Spectre-v1";
}

TEST(LeakBaseline, SpectreV1RegisterSecretLeaks)
{
    const auto cfg = makeConfig(defense::DefenseKind::Baseline,
                                PrimeMode::ConflictFill);
    const isa::Program prog = spectreV1RegSecret();
    const auto [a, b] = regSecretInputs(cfg.map);
    const LeakOutcome o = runPair(cfg, prog, a, b);
    EXPECT_TRUE(o.differs) << "baseline must leak a register secret";
}

TEST(LeakInvisiSpec, BuggyLeaksViaSpecEvictionPatchedDoesNot)
{
    const isa::Program prog = spectreV1MemSecret();

    // Buggy (as published): the speculative miss evicts a victim from the
    // conflict-filled set (UV1).
    auto buggy = makeConfig(defense::DefenseKind::InvisiSpec,
                            PrimeMode::ConflictFill);
    const auto [a, b] = memSecretInputs(buggy.map);
    const LeakOutcome ob = runPair(buggy, prog, a, b);
    EXPECT_TRUE(ob.differs) << "InvisiSpec UV1 must leak via evictions";

    // Patched (Listing 2): no replacement for speculative loads.
    auto patched = makeConfig(defense::DefenseKind::InvisiSpec,
                              PrimeMode::ConflictFill,
                              TraceFormat::L1dTlb, true);
    const LeakOutcome op = runPair(patched, prog, a, b);
    EXPECT_FALSE(op.differs) << "patched InvisiSpec must not leak v1";
}

TEST(LeakSpecLfb, FirstLoadBypassLeaksPatchedDoesNot)
{
    const isa::Program prog = spectreV1RegSecret();

    auto buggy = makeConfig(defense::DefenseKind::SpecLfb,
                            PrimeMode::Invalidate);
    const auto [a, b] = regSecretInputs(buggy.map);
    const LeakOutcome ob = runPair(buggy, prog, a, b);
    EXPECT_TRUE(ob.differs)
        << "SpecLFB UV6: first spec load must install and leak";

    auto patched = makeConfig(defense::DefenseKind::SpecLfb,
                              PrimeMode::Invalidate, TraceFormat::L1dTlb,
                              true);
    const LeakOutcome op = runPair(patched, prog, a, b);
    EXPECT_FALSE(op.differs) << "patched SpecLFB must hold";
}

TEST(LeakSpecLfb, ClassicTwoLoadSpectreIsBlockedEvenWhenBuggy)
{
    // With the memory-secret pattern the *transmitter* is the second
    // speculative load; UV6 only unprotects the first.
    const isa::Program prog = spectreV1MemSecret();
    auto buggy = makeConfig(defense::DefenseKind::SpecLfb,
                            PrimeMode::Invalidate);
    const auto [a, b] = memSecretInputs(buggy.map);
    const LeakOutcome o = runPair(buggy, prog, a, b);
    EXPECT_FALSE(o.differs)
        << "second speculative load must still be LFB-gated";
}

TEST(LeakStt, TransmitterLoadBlocked)
{
    // STT taints the speculatively loaded secret; the dependent
    // transmitter load must be delayed, so no leak in either variant.
    const isa::Program prog = spectreV1MemSecret();
    const auto cfg = makeConfig(defense::DefenseKind::Stt,
                                PrimeMode::ConflictFill);
    const auto [a, b] = memSecretInputs(cfg.map);
    const LeakOutcome o = runPair(cfg, prog, a, b);
    EXPECT_FALSE(o.differs) << "STT must block the tainted transmitter";
}

TEST(LeakCleanupSpec, SpectreV1IsCleanedUp)
{
    // CleanupSpec undoes the transient installs, so the plain v1 pattern
    // must not leak through the D-cache.
    const isa::Program prog = spectreV1MemSecret();
    const auto cfg = makeConfig(defense::DefenseKind::CleanupSpec,
                                PrimeMode::Invalidate);
    const auto [a, b] = memSecretInputs(cfg.map);
    const LeakOutcome o = runPair(cfg, prog, a, b);
    EXPECT_FALSE(o.differs) << "CleanupSpec must roll back spec loads";
}

} // namespace

/**
 * @file
 * End-to-end tests for the remaining findings of the paper's ground-truth
 * matrix: Spectre-v4, the CleanupSpec bugs (UV3 spec stores, UV4 split
 * requests, UV5 overcleaning, KV2 unXpec timing), STT's tainted-store TLB
 * leak (KV3), and InvisiSpec's L1I (KV1) and MSHR-interference (UV2)
 * channels.
 */

#include <gtest/gtest.h>

#include "executor/sim_harness.hh"
#include "isa/assembler.hh"

namespace
{

using namespace amulet;
using executor::HarnessConfig;
using executor::PrimeMode;
using executor::SimHarness;
using executor::TraceFormat;

std::string
slowChain(const char *reg, int imuls, int offset = 0)
{
    std::string s = "    MOV " + std::string(reg) + ", qword ptr [R14 + " +
                    std::to_string(offset) + "]\n";
    for (int i = 0; i < imuls; ++i)
        s += "    IMUL " + std::string(reg) + ", " + std::string(reg) +
             "\n";
    return s;
}

std::string
trailingWork(int imuls = 40)
{
    std::string s = "    MOV R11, qword ptr [R14 + 8]\n";
    for (int i = 0; i < imuls; ++i)
        s += "    IMUL R11, R11\n";
    return s;
}

struct LeakOutcome
{
    bool differs;
    executor::UTrace traceA;
    executor::UTrace traceB;
    uarch::RunResult runA;
    uarch::RunResult runB;
};

LeakOutcome
runPair(const HarnessConfig &cfg, const isa::Program &prog,
        const arch::Input &a, const arch::Input &b)
{
    SimHarness harness(cfg);
    const isa::FlatProgram fp(prog, cfg.map.codeBase);
    harness.loadProgram(&fp);
    LeakOutcome out;
    out.runA = harness.runInput(a).run;
    out.traceA = executor::extractTrace(harness.pipeline(),
                                        cfg.traceFormat);
    out.runB = harness.runInput(b).run;
    out.traceB = executor::extractTrace(harness.pipeline(),
                                        cfg.traceFormat);
    out.differs = !(out.traceA == out.traceB);
    return out;
}

HarnessConfig
makeConfig(defense::DefenseKind kind, PrimeMode prime,
           TraceFormat format = TraceFormat::L1dTlb,
           unsigned sandbox_pages = 1)
{
    HarnessConfig cfg;
    cfg.defense.kind = kind;
    cfg.map.sandboxPages = sandbox_pages;
    cfg.prime = prime;
    cfg.traceFormat = format;
    cfg.bootInsts = 2000;
    return cfg;
}

arch::Input
zeroInput(const mem::AddressMap &map)
{
    arch::Input input;
    input.regs.fill(0);
    input.sandbox.assign(map.sandboxSize(), 0);
    input.sandbox[0] = 3;
    input.sandbox[8] = 7;
    input.sandbox[16] = 5;
    return input;
}

// ---------------------------------------------------------------------
// Spectre-v4: a younger load speculatively bypasses an older store whose
// address resolves late, reading the stale secret and encoding it.
// ---------------------------------------------------------------------

isa::Program
spectreV4()
{
    std::string text;
    text += ".bb_main.0:\n";
    text += slowChain("RAX", 6);
    text += "    AND RAX, 0\n";
    text += "    OR RAX, 64\n"; // store address 0x40, resolved late
    text += "    MOV qword ptr [R14 + RAX], RDI\n";
    text += "    MOV RBX, qword ptr [R14 + 64]\n"; // bypasses the store
    text += "    AND RBX, 0b111110000000\n";
    text += "    MOV RDX, qword ptr [R14 + RBX]\n"; // transmitter
    text += trailingWork();
    return isa::assemble(text);
}

TEST(LeakBaselineV4, StoreBypassLeaksStaleValue)
{
    const auto cfg = makeConfig(defense::DefenseKind::Baseline,
                                PrimeMode::ConflictFill);
    const isa::Program prog = spectreV4();
    arch::Input a = zeroInput(cfg.map);
    a.regs[isa::regIndex(isa::Reg::Rdi)] = 0; // stored (new) value
    arch::Input b = a;
    a.sandbox[0x41] = 0x01; // stale secret 0x100
    b.sandbox[0x41] = 0x07; // stale secret 0x700
    b.id = 1;
    const LeakOutcome o = runPair(cfg, prog, a, b);
    EXPECT_GT(o.runA.squashes, 0u) << "expected a memory-order squash";
    EXPECT_TRUE(o.differs) << "baseline must leak Spectre-v4";
}

// ---------------------------------------------------------------------
// CleanupSpec UV3: speculative stores are not rolled back.
// ---------------------------------------------------------------------

isa::Program
specStoreLeak()
{
    std::string text;
    text += ".bb_main.0:\n";
    text += slowChain("RAX", 8);
    text += "    TEST RAX, RAX\n";
    text += "    JNE .bb_main.1\n";
    // Speculative path: encode the secret in a *store* address.
    text += "    AND RCX, 0b111111111111\n";
    text += "    MOV RBX, qword ptr [R14 + RCX]\n";
    text += "    AND RBX, 0b111110000000\n";
    text += "    MOV dword ptr [R14 + RBX], EDI\n"; // spec store
    text += "    JMP .bb_main.1\n";
    text += ".bb_main.1:\n";
    text += trailingWork();
    return isa::assemble(text);
}

std::pair<arch::Input, arch::Input>
memSecretInputs(const mem::AddressMap &map)
{
    arch::Input a = zeroInput(map);
    a.regs[isa::regIndex(isa::Reg::Rcx)] = 0x200;
    arch::Input b = a;
    a.sandbox[0x201] = 0x01;
    b.sandbox[0x201] = 0x07;
    b.id = 1;
    return {a, b};
}

TEST(LeakCleanupSpecUv3, SpecStoreNotCleanedLeaks)
{
    const isa::Program prog = specStoreLeak();
    auto cfg = makeConfig(defense::DefenseKind::CleanupSpec,
                          PrimeMode::Invalidate);
    const auto [a, b] = memSecretInputs(cfg.map);
    const LeakOutcome o = runPair(cfg, prog, a, b);
    EXPECT_TRUE(o.differs)
        << "UV3: speculative store lines must survive the squash";

    auto patched = cfg;
    patched.defense.cleanupBugStoreNotCleaned = false;
    const LeakOutcome op = runPair(patched, prog, a, b);
    EXPECT_FALSE(op.differs) << "patched writeCallback must clean stores";
}

// ---------------------------------------------------------------------
// CleanupSpec UV4: split (line-crossing) requests are not rolled back.
// ---------------------------------------------------------------------

isa::Program
splitLoadLeak()
{
    std::string text;
    text += ".bb_main.0:\n";
    text += slowChain("RAX", 8);
    text += "    TEST RAX, RAX\n";
    text += "    JNE .bb_main.1\n";
    text += "    AND RCX, 0b111111111111\n";
    text += "    MOV RBX, qword ptr [R14 + RCX]\n";
    text += "    AND RBX, 0b111110000000\n";
    // Crosses a cache-line boundary: 8 bytes at line offset 60.
    text += "    MOV RDX, qword ptr [R14 + RBX + 60]\n";
    text += "    JMP .bb_main.1\n";
    text += ".bb_main.1:\n";
    text += trailingWork();
    return isa::assemble(text);
}

TEST(LeakCleanupSpecUv4, SplitRequestNotCleanedLeaks)
{
    const isa::Program prog = splitLoadLeak();
    auto cfg = makeConfig(defense::DefenseKind::CleanupSpec,
                          PrimeMode::Invalidate);
    // Isolate UV4: fix the store bug, keep the split bug.
    cfg.defense.cleanupBugStoreNotCleaned = false;
    const auto [a, b] = memSecretInputs(cfg.map);
    const LeakOutcome o = runPair(cfg, prog, a, b);
    EXPECT_TRUE(o.differs) << "UV4: split fills must survive the squash";

    auto patched = cfg;
    patched.defense.cleanupBugSplitNotCleaned = false;
    const LeakOutcome op = runPair(patched, prog, a, b);
    EXPECT_FALSE(op.differs) << "patched split cleanup must roll back";
}

// ---------------------------------------------------------------------
// CleanupSpec UV5: "too much cleaning" — rollback erases a line that a
// non-speculative load also touched.
// ---------------------------------------------------------------------

isa::Program
overcleanProgram()
{
    std::string text;
    text += ".bb_main.0:\n";
    // NSL address chain: resolves to [R14 + 0x140] but late.
    text += slowChain("RAX", 1);
    text += "    AND RAX, 0\n";
    text += "    MOV R10, qword ptr [R14 + RAX + 0x140]\n"; // NSL
    // Branch chain: longer, so the squash comes after the NSL executes.
    text += slowChain("R12", 6, 16);
    text += "    TEST R12, R12\n";
    text += "    JNE .bb_main.1\n";
    // Speculative load to a dead-register address (executes immediately).
    text += "    AND RBX, 0b111111000000\n";
    text += "    MOV RDX, qword ptr [R14 + RBX]\n"; // SL
    text += "    JMP .bb_main.1\n";
    text += ".bb_main.1:\n";
    text += trailingWork();
    return isa::assemble(text);
}

TEST(LeakCleanupSpecUv5, OvercleanErasesNonSpecFootprint)
{
    const isa::Program prog = overcleanProgram();
    auto cfg = makeConfig(defense::DefenseKind::CleanupSpec,
                          PrimeMode::Invalidate);
    arch::Input a = zeroInput(cfg.map);
    arch::Input b = a;
    a.regs[isa::regIndex(isa::Reg::Rbx)] = 0x140; // SL == NSL line
    b.regs[isa::regIndex(isa::Reg::Rbx)] = 0x680; // disjoint
    b.id = 1;
    const LeakOutcome o = runPair(cfg, prog, a, b);
    EXPECT_TRUE(o.differs)
        << "UV5: cleanup must erase the NSL's footprint only when the "
           "transient load aliases it";

    auto patched = cfg;
    patched.defense.cleanupNoCleanPatch = true;
    const LeakOutcome op = runPair(patched, prog, a, b);
    EXPECT_FALSE(op.differs) << "noClean patch must keep the NSL's line";
}

// ---------------------------------------------------------------------
// STT KV3: a tainted speculative store still accesses the D-TLB.
// ---------------------------------------------------------------------

isa::Program
taintedStoreTlbLeak()
{
    std::string text;
    text += ".bb_main.0:\n";
    text += slowChain("RAX", 8);
    text += "    TEST RAX, RAX\n";
    text += "    JNE .bb_main.1\n";
    text += "    AND RCX, 0b111111111111\n";
    text += "    MOV RBX, qword ptr [R14 + RCX]\n"; // access (tainted)
    text += "    AND RBX, 0b1111111000000000000\n"; // page-granular
    text += "    MOV dword ptr [R14 + RBX], EDI\n"; // tainted store
    text += "    JMP .bb_main.1\n";
    text += ".bb_main.1:\n";
    text += trailingWork();
    return isa::assemble(text);
}

TEST(LeakSttKv3, TaintedStoreInstallsTlbEntry)
{
    const isa::Program prog = taintedStoreTlbLeak();
    // STT is tested with a 128-page sandbox so TLB leakage is visible.
    auto cfg = makeConfig(defense::DefenseKind::Stt,
                          PrimeMode::ConflictFill, TraceFormat::L1dTlb,
                          128);
    arch::Input a = zeroInput(cfg.map);
    a.regs[isa::regIndex(isa::Reg::Rcx)] = 0x200;
    arch::Input b = a;
    a.sandbox[0x202] = 0x01; // secret 0x10000 -> VPN +0x10
    b.sandbox[0x202] = 0x07; // secret 0x70000 -> VPN +0x70
    b.id = 1;
    const LeakOutcome o = runPair(cfg, prog, a, b);
    EXPECT_TRUE(o.differs)
        << "KV3: the tainted store's TLB fill must leak the page";

    auto patched = cfg;
    patched.defense.sttBugTaintedStoreTlb = false;
    const LeakOutcome op = runPair(patched, prog, a, b);
    EXPECT_FALSE(op.differs)
        << "blocking tainted stores (DOLMA fix) must stop the leak";
}

// ---------------------------------------------------------------------
// InvisiSpec KV1: the L1I is unprotected — input-dependent speculative
// stalls shift runahead instruction fetch.
// ---------------------------------------------------------------------

isa::Program
ifetchTimingProgram(int spec_loads, int arch_loads = 8, int trailing = 4)
{
    std::string text;
    text += ".bb_main.0:\n";
    // Warm lines architecturally (offsets 0x400..), enough to cover the
    // speculative loads of the "warm" input.
    for (int i = 0; i < spec_loads; ++i) {
        text += "    MOV R9, qword ptr [R14 + " +
                std::to_string(0x400 + 64 * i) + "]\n";
    }
    text += slowChain("RAX", 8);
    text += "    TEST RAX, RAX\n";
    text += "    JNE .bb_main.1\n";
    // Speculative loads: warm (one input) or cold (the other) lines.
    for (int i = 0; i < spec_loads; ++i) {
        text += "    AND RBX, 0b111111111111\n";
        text += "    MOV RDX, qword ptr [R14 + RBX + " +
                std::to_string(64 * i) + "]\n";
    }
    text += "    JMP .bb_main.1\n";
    text += ".bb_main.1:\n";
    // Architectural loads that share memory bandwidth (and, under
    // contention, MSHRs) with the speculative misses. HALT cannot commit
    // before they do, so their delay shifts the end of the test.
    for (int i = 0; i < arch_loads; ++i) {
        text += "    MOV R10, qword ptr [R14 + " +
                std::to_string(0x800 + 64 * i) + "]\n";
    }
    text += trailingWork(trailing);
    return isa::assemble(text);
}

TEST(LeakInvisiSpecKv1, L1iTraceDetectsTimingButDefaultDoesNot)
{
    const isa::Program prog = ifetchTimingProgram(8, 4);
    auto patched_cfg = [](TraceFormat fmt) {
        auto cfg = makeConfig(defense::DefenseKind::InvisiSpec,
                              PrimeMode::ConflictFill, fmt);
        cfg.defense.invisispecBugSpecEviction = false;
        // Moderate amplification: enough MSHR pressure that speculative
        // misses delay the architectural path, and a longer runahead
        // window so the fetch stream is still live when HALT commits.
        cfg.core.l1dMshrs = 8;
        cfg.core.robSize = 256;
        return cfg;
    };
    arch::Input a = zeroInput(mem::AddressMap{});
    arch::Input b = a;
    a.regs[isa::regIndex(isa::Reg::Rbx)] = 0x400; // warm lines
    b.regs[isa::regIndex(isa::Reg::Rbx)] = 0xa00; // cold lines
    b.id = 1;

    // Default trace: patched InvisiSpec hides the D-side.
    const LeakOutcome od =
        runPair(patched_cfg(TraceFormat::L1dTlb), prog, a, b);
    EXPECT_FALSE(od.differs)
        << "patched InvisiSpec must be clean under L1D+TLB";

    // Including the L1I reveals the unprotected fetch channel.
    const LeakOutcome oi =
        runPair(patched_cfg(TraceFormat::L1dTlbL1i), prog, a, b);
    EXPECT_NE(oi.runA.cycles, oi.runB.cycles)
        << "speculative hits/misses must shift execution time";
    EXPECT_TRUE(oi.differs) << "KV1: L1I state must differ";
}

// ---------------------------------------------------------------------
// CleanupSpec KV2 (unXpec): rollback latency is input-dependent and
// shifts runahead instruction fetch.
// ---------------------------------------------------------------------

TEST(LeakCleanupSpecKv2, CleanupLatencyLeaksViaL1i)
{
    const isa::Program prog = ifetchTimingProgram(8, 8, 8);
    auto cfg = makeConfig(defense::DefenseKind::CleanupSpec,
                          PrimeMode::Invalidate, TraceFormat::L1dTlbL1i);
    // Isolate the unXpec timing channel from UV5 (speculative hits on
    // architecturally warmed lines would otherwise overclean).
    cfg.defense.cleanupNoCleanPatch = true;
    arch::Input a = zeroInput(cfg.map);
    arch::Input b = a;
    a.regs[isa::regIndex(isa::Reg::Rbx)] = 0x400; // warm: hits, no undo
    b.regs[isa::regIndex(isa::Reg::Rbx)] = 0xa00; // cold: 8 cleanups
    b.id = 1;
    const LeakOutcome o = runPair(cfg, prog, a, b);
    EXPECT_NE(o.runA.cycles, o.runB.cycles)
        << "cleanup must be on the critical path";
    EXPECT_TRUE(o.differs) << "KV2: L1I state must differ";

    // The default D-side trace stays clean (rollback is correct here).
    auto dcfg = cfg;
    dcfg.traceFormat = TraceFormat::L1dTlb;
    const LeakOutcome od = runPair(dcfg, prog, a, b);
    EXPECT_FALSE(od.differs)
        << "D-side rollback itself is correct for plain loads";
}

// ---------------------------------------------------------------------
// InvisiSpec UV2: same-core MSHR interference delays an Expose past the
// end of the test (requires amplified 2-MSHR configuration).
// ---------------------------------------------------------------------

isa::Program
mshrInterferenceProgram()
{
    std::string text;
    text += ".bb_main.0:\n";
    // Window opener: a slow, correctly-predicted branch. The NSL below is
    // speculative until it resolves, then becomes safe and is Exposed.
    text += "    MOV R13, qword ptr [R14 + 0]\n";
    text += "    IMUL R13, R13\n    IMUL R13, R13\n";
    text += "    TEST R13, R13\n";
    text += "    JE .bb_main.1\n"; // not taken architecturally
    text += "    MOV R10, qword ptr [R14 + 0x200]\n"; // NSL
    for (int i = 0; i < 4; ++i)
        text += "    IMUL R13, R13\n";
    text += "    TEST R13, R13\n";
    text += "    JNE .bb_main.1\n"; // taken architecturally: mispredict
    // Speculative loads competing with the Expose for MSHRs. Input A
    // points them at cold lines (fresh MSHRs); input B at the line the
    // slow load already requested (they coalesce, no MSHR pressure).
    for (int i = 0; i < 2; ++i) {
        text += "    AND RBX, 0b111111111111\n";
        text += "    MOV RDX, qword ptr [R14 + RBX + " +
                std::to_string(64 * i) + "]\n";
    }
    text += "    JMP .bb_main.1\n";
    text += ".bb_main.1:\n";
    for (int i = 0; i < 6; ++i)
        text += "    IMUL R11, R11\n";
    return isa::assemble(text);
}

TEST(LeakInvisiSpecUv2, MshrInterferenceWithAmplification)
{
    const isa::Program prog = mshrInterferenceProgram();
    auto cfg = makeConfig(defense::DefenseKind::InvisiSpec,
                          PrimeMode::ConflictFill);
    cfg.defense.invisispecBugSpecEviction = false; // patched (Table 6)
    arch::Input a = zeroInput(cfg.map);
    arch::Input b = a;
    a.regs[isa::regIndex(isa::Reg::Rbx)] = 0xa00; // cold: MSHR pressure
    b.regs[isa::regIndex(isa::Reg::Rbx)] = 0x000; // coalesces: no pressure
    b.id = 1;

    // Default 256 MSHRs: the Expose always completes before HALT.
    const LeakOutcome od = runPair(cfg, prog, a, b);
    EXPECT_FALSE(od.differs)
        << "UV2 must not be visible without amplification";

    // Amplified: 2 MSHRs (the paper's Table 6 configuration). Input A's
    // speculative misses hold both MSHRs; the NSL's Expose stalls at the
    // in-order queue head and is cut off by the end of the test.
    auto amplified = cfg;
    amplified.core.l1dMshrs = 2;
    const LeakOutcome oa = runPair(amplified, prog, a, b);
    EXPECT_TRUE(oa.differs)
        << "UV2: the expose must be cut off by the end of the test";
}

} // namespace

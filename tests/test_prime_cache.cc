/**
 * @file
 * Prime-cache equivalence contract (src/executor/README.md): memoizing
 * the conflict-fill priming run — restoring the captured post-prime
 * MemSnapshot instead of re-simulating the priming program per input —
 * must not move a single byte of campaign output. For every defense,
 * the canonical corpus export (header included: the knob is excluded
 * from the config fingerprint) is byte-identical with the memo on
 * (default) and off, at jobs 1 and 4, on all three executor backends.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <string>

#include "core/campaign.hh"
#include "corpus/corpus_store.hh"

namespace fs = std::filesystem;

namespace
{

using namespace amulet;

/** Unique scratch directory, removed on destruction. */
class ScratchDir
{
  public:
    explicit ScratchDir(const std::string &name)
        : path_((fs::temp_directory_path() /
                 ("amulet_prime_cache_test_" + name +
                  std::to_string(::getpid())))
                    .string())
    {
        fs::remove_all(path_);
    }

    ~ScratchDir() { fs::remove_all(path_); }

    std::string
    sub(const std::string &name) const
    {
        return (fs::path(path_) / name).string();
    }

  private:
    std::string path_;
};

core::CampaignConfig
campaignConfig(defense::DefenseKind kind, bool prime_cache, unsigned jobs,
               executor::BackendKind backend)
{
    core::CampaignConfig cfg;
    cfg.harness.defense.kind = kind;
    cfg.harness.prime = (kind == defense::DefenseKind::CleanupSpec ||
                         kind == defense::DefenseKind::SpecLfb)
                            ? executor::PrimeMode::Invalidate
                            : executor::PrimeMode::ConflictFill;
    cfg.harness.bootInsts = 1500;
    cfg.harness.primeCache = prime_cache;
    if (kind == defense::DefenseKind::Stt) {
        cfg.harness.map.sandboxPages = 128;
        cfg.contract = contracts::archSeq();
    }
    cfg.gen.map = cfg.harness.map;
    cfg.inputs.map = cfg.harness.map;
    cfg.numPrograms = 6;
    cfg.baseInputsPerProgram = 6;
    cfg.siblingsPerBase = 4;
    cfg.seed = 1;
    cfg.jobs = jobs;
    cfg.backend = backend;
    return cfg;
}

/** Run one campaign into a corpus dir and return its canonical export. */
std::string
runAndExport(const ScratchDir &scratch, const std::string &tag,
             const core::CampaignConfig &base)
{
    core::CampaignConfig cfg = base;
    cfg.corpusDir = scratch.sub(tag);
    core::Campaign(cfg).run();
    return corpus::CorpusStore::exportCanonical(cfg.corpusDir);
}

void
runEquivalence(defense::DefenseKind kind, bool expect_detection)
{
    ScratchDir scratch(defense::defenseKindName(kind));
    // Reference: prime cache ON (the default), in-process, serial.
    const auto ref_cfg = campaignConfig(kind, true, 1,
                                        executor::BackendKind::InProcess);
    const auto ref_stats = [&] {
        core::CampaignConfig cfg = ref_cfg;
        cfg.corpusDir = scratch.sub("ref");
        return core::Campaign(cfg).run();
    }();
    if (expect_detection)
        EXPECT_TRUE(ref_stats.detected());
    const std::string reference =
        corpus::CorpusStore::exportCanonical(scratch.sub("ref"));

    // The memo must be invisible on every (jobs, backend) pair: the
    // knob is runtime-only, exactly like jobs and backend themselves.
    unsigned n = 0;
    for (unsigned jobs : {1u, 4u}) {
        for (auto backend : executor::allBackendKinds()) {
            SCOPED_TRACE("jobs=" + std::to_string(jobs) + " backend=" +
                         executor::backendKindName(backend));
            const std::string off = runAndExport(
                scratch, "off" + std::to_string(n++),
                campaignConfig(kind, false, jobs, backend));
            EXPECT_EQ(reference, off);
        }
    }
}

TEST(PrimeCacheEquivalence, Baseline)
{
    runEquivalence(defense::DefenseKind::Baseline, true);
}

TEST(PrimeCacheEquivalence, InvisiSpec)
{
    runEquivalence(defense::DefenseKind::InvisiSpec, false);
}

TEST(PrimeCacheEquivalence, CleanupSpec)
{
    runEquivalence(defense::DefenseKind::CleanupSpec, false);
}

TEST(PrimeCacheEquivalence, SpecLfb)
{
    runEquivalence(defense::DefenseKind::SpecLfb, false);
}

TEST(PrimeCacheEquivalence, Stt)
{
    runEquivalence(defense::DefenseKind::Stt, false);
}

// CT-COND on the baseline is the ablation campaign the table3 row and
// BENCH_*.json report; it also produces the densest priming traffic
// (conflict fill before every effective input). Check the export
// equivalence and that the memo actually eliminates priming cost
// rather than re-simulating behind the cache's back.
TEST(PrimeCacheEquivalence, CtCondAblationCampaign)
{
    ScratchDir scratch("ctcond");
    auto make = [&](bool prime_cache) {
        auto cfg = campaignConfig(defense::DefenseKind::Baseline,
                                  prime_cache, 1,
                                  executor::BackendKind::InProcess);
        cfg.contract = contracts::ctCond();
        cfg.numPrograms = 10;
        return cfg;
    };
    core::CampaignConfig on_cfg = make(true);
    on_cfg.corpusDir = scratch.sub("on");
    const auto on = core::Campaign(on_cfg).run();
    core::CampaignConfig off_cfg = make(false);
    off_cfg.corpusDir = scratch.sub("off");
    const auto off = core::Campaign(off_cfg).run();

    EXPECT_EQ(corpus::CorpusStore::exportCanonical(scratch.sub("on")),
              corpus::CorpusStore::exportCanonical(scratch.sub("off")));
    EXPECT_EQ(on.confirmedViolations, off.confirmedViolations);
    EXPECT_EQ(on.violatingTestCases, off.violatingTestCases);
    EXPECT_EQ(on.candidateViolations, off.candidateViolations);
    EXPECT_EQ(on.signatureCounts, off.signatureCounts);
    // The off run re-simulates one load per L1D (set, way) per input;
    // the memoized run restores a snapshot. The time split must show
    // it (wall-clock, but the gap is an order of magnitude).
    EXPECT_LT(on.times.primeSec, off.times.primeSec);
}

// A corpus journaled without the memo resumes under it (and the other
// way around): the knob must not participate in the config
// fingerprint, or kill/resume workflows would wedge on a runtime
// setting.
TEST(PrimeCacheEquivalence, FingerprintIgnoresTheKnob)
{
    ScratchDir scratch("resume");
    core::CampaignConfig cfg = campaignConfig(
        defense::DefenseKind::Baseline, false, 1,
        executor::BackendKind::InProcess);
    cfg.corpusDir = scratch.sub("c");
    cfg.maxProgramsThisRun = 3;
    core::Campaign(cfg).run();

    core::CampaignConfig resume_cfg = cfg;
    resume_cfg.harness.primeCache = true; // flipped across the resume
    resume_cfg.maxProgramsThisRun = 0;
    resume_cfg.resume = true;
    const auto resumed = core::Campaign(resume_cfg).run();
    EXPECT_EQ(resumed.programs, cfg.numPrograms);

    // And the full campaign must match an uninterrupted all-on run.
    const std::string uninterrupted = runAndExport(
        scratch, "full",
        campaignConfig(defense::DefenseKind::Baseline, true, 1,
                       executor::BackendKind::InProcess));
    EXPECT_EQ(uninterrupted,
              corpus::CorpusStore::exportCanonical(scratch.sub("c")));
}

} // namespace

/**
 * @file
 * Corpus-subsystem tests: serde round-trips, the kill/resume
 * determinism contract (resumed campaign ≡ uninterrupted campaign,
 * byte-identical canonical exports), journal merge dedup, and
 * replayer-confirms-violation for every defense target.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "core/campaign.hh"
#include "corpus/checkpoint.hh"
#include "corpus/corpus_store.hh"
#include "corpus/replayer.hh"
#include "corpus/serde.hh"
#include "isa/assembler.hh"
#include "runtime/fault.hh"

namespace fs = std::filesystem;

namespace
{

using namespace amulet;

/** Unique scratch directory, removed on destruction. */
class ScratchDir
{
  public:
    explicit ScratchDir(const std::string &name)
        : path_((fs::temp_directory_path() /
                 ("amulet_corpus_test_" + name +
                  std::to_string(::getpid())))
                    .string())
    {
        fs::remove_all(path_);
    }

    ~ScratchDir() { fs::remove_all(path_); }

    std::string
    sub(const std::string &name) const
    {
        return (fs::path(path_) / name).string();
    }

  private:
    std::string path_;
};

core::CampaignConfig
smallCampaign(std::uint64_t seed = 1)
{
    core::CampaignConfig cfg;
    cfg.harness.defense.kind = defense::DefenseKind::Baseline;
    cfg.harness.prime = executor::PrimeMode::ConflictFill;
    cfg.harness.bootInsts = 2000;
    cfg.gen.map = cfg.harness.map;
    cfg.inputs.map = cfg.harness.map;
    cfg.numPrograms = 12;
    cfg.baseInputsPerProgram = 6;
    cfg.siblingsPerBase = 4;
    cfg.seed = seed; // seed 1 detects spectre-v1 within 12 programs
    return cfg;
}

/** The defense-campaign recipe of tests/test_campaign.cc. */
core::CampaignConfig
defenseCampaign(defense::DefenseKind kind)
{
    core::CampaignConfig cfg;
    cfg.harness.defense.kind = kind;
    cfg.harness.prime = (kind == defense::DefenseKind::CleanupSpec ||
                         kind == defense::DefenseKind::SpecLfb)
                            ? executor::PrimeMode::Invalidate
                            : executor::PrimeMode::ConflictFill;
    cfg.harness.bootInsts = 2000;
    cfg.seed = 33;
    if (kind == defense::DefenseKind::Stt) {
        cfg.harness.map.sandboxPages = 128;
        cfg.contract = contracts::archSeq();
        cfg.seed = 8;
    }
    cfg.gen.map = cfg.harness.map;
    cfg.inputs.map = cfg.harness.map;
    cfg.numPrograms = 40;
    cfg.baseInputsPerProgram = 6;
    cfg.siblingsPerBase = 4;
    // Bound the journal: STT inputs carry a 512 KiB sandbox each.
    cfg.maxViolationsRecorded = 4;
    return cfg;
}

/** A synthetic but fully populated record for serde tests. */
core::ViolationRecord
sampleRecord()
{
    core::ViolationRecord rec;
    rec.defenseName = "Baseline";
    rec.contractName = "CT-SEQ";
    rec.programText = ".bb_main.0:\n"
                      "    AND RBX, 0b111111111111\n"
                      "    MOV RAX, qword ptr [R14 + RBX]\n"
                      "    JNE .exit\n";
    rec.programIndex = 7;
    rec.inputA.id = 70001;
    rec.inputA.regs.fill(0x1122334455667788ULL);
    rec.inputA.flagsByte = 0x15;
    rec.inputA.sandbox.assign(4096, 0xab);
    rec.inputA.sandbox[13] = 0x07;
    rec.inputB = rec.inputA;
    rec.inputB.id = 70004;
    rec.inputB.sandbox[512] = 0xcd;
    rec.traceA.format = executor::TraceFormat::L1dTlb;
    rec.traceA.words = {0xd1d1000000000001ULL, 42, 99};
    rec.traceB = rec.traceA;
    rec.traceB.words.push_back(1234567);
    rec.ctxA.bp.ghr = 0xbeef;
    rec.ctxA.bp.pht = {0, 1, 2, 3, 2, 1};
    rec.ctxA.bp.btbTags = {~0ULL, 0x400010};
    rec.ctxA.bp.btbTargets = {5, 9};
    rec.ctxA.mdp = {0, 3, 1};
    rec.ctxB = rec.ctxA;
    rec.ctxB.bp.ghr = 0xf00d;
    rec.ctraceHash = 0xdeadbeefcafef00dULL;
    rec.signature = "spectre-v1-branch";
    rec.detectSeconds = 12.25;
    rec.rngState = {1, 2, 0xffffffffffffffffULL, 4};
    return rec;
}

TEST(CorpusSerde, RecordRoundTripsExactly)
{
    const core::ViolationRecord rec = sampleRecord();
    const std::string dump = corpus::toJson(rec).dump();
    const core::ViolationRecord back =
        corpus::recordFromJson(corpus::Json::parse(dump));

    EXPECT_EQ(back.defenseName, rec.defenseName);
    EXPECT_EQ(back.contractName, rec.contractName);
    EXPECT_EQ(back.programText, rec.programText);
    EXPECT_EQ(back.programIndex, rec.programIndex);
    EXPECT_TRUE(back.inputA == rec.inputA);
    EXPECT_EQ(back.inputA.id, rec.inputA.id);
    EXPECT_TRUE(back.inputB == rec.inputB);
    EXPECT_TRUE(back.traceA == rec.traceA);
    EXPECT_TRUE(back.traceB == rec.traceB);
    EXPECT_EQ(back.ctxA.bp, rec.ctxA.bp);
    EXPECT_EQ(back.ctxA.mdp, rec.ctxA.mdp);
    EXPECT_EQ(back.ctxB.bp, rec.ctxB.bp);
    EXPECT_EQ(back.ctraceHash, rec.ctraceHash);
    EXPECT_EQ(back.signature, rec.signature);
    EXPECT_DOUBLE_EQ(back.detectSeconds, rec.detectSeconds);
    EXPECT_EQ(back.rngState, rec.rngState);

    // Canonical: dumping the reloaded record reproduces the bytes.
    EXPECT_EQ(corpus::toJson(back).dump(), dump);
}

TEST(CorpusSerde, ParserFailsLoudlyOnMalformedInput)
{
    // Corrupt documents must raise CorpusError, never load garbage or
    // crash: truncated numbers, out-of-range doubles, nesting bombs.
    EXPECT_THROW(corpus::Json::parse("{\"x\":-}"), corpus::CorpusError);
    EXPECT_THROW(corpus::Json::parse("{\"x\":1e}"), corpus::CorpusError);
    EXPECT_THROW(corpus::Json::parse("{\"x\":1e999}"),
                 corpus::CorpusError);
    EXPECT_THROW(corpus::Json::parse(std::string(100000, '[')),
                 corpus::CorpusError);
    EXPECT_THROW(corpus::Json::parse("{\"x\":1}garbage"),
                 corpus::CorpusError);
}

TEST(CorpusSerde, RecordWithBadProgramIsRejected)
{
    corpus::Json j = corpus::toJson(sampleRecord());
    j.set("program", corpus::Json::str("FROB RAX, RBX\n"));
    EXPECT_THROW(corpus::recordFromJson(j), corpus::CorpusError);
}

TEST(CorpusSerde, RngStreamStateResumesSequence)
{
    Rng rng(42);
    rng.next();
    const Rng::State state = rng.state();
    const std::string dump = corpus::toJson(state).dump();
    Rng restored = Rng::fromState(
        corpus::rngStateFromJson(corpus::Json::parse(dump)));
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(restored.next(), rng.next());
}

TEST(CorpusSerde, ConfigRoundTripsAndFingerprintIgnoresRuntimeKnobs)
{
    core::CampaignConfig cfg = defenseCampaign(defense::DefenseKind::Stt);
    cfg.harness.core.l1d.ways = 2;
    cfg.harness.core.l1dMshrs = 2;
    cfg.collectAllFormats = true;

    const std::string dump = corpus::configToJson(cfg).dump();
    const core::CampaignConfig back =
        corpus::configFromJson(corpus::Json::parse(dump));
    EXPECT_EQ(corpus::configToJson(back).dump(), dump);
    EXPECT_EQ(back.contract.name, cfg.contract.name);
    EXPECT_EQ(back.harness.map.sandboxPages,
              cfg.harness.map.sandboxPages);
    EXPECT_EQ(back.harness.core.l1d.ways, 2u);
    EXPECT_EQ(back.seed, cfg.seed);

    // Runtime knobs must not affect identity: a resumed run may use a
    // different jobs value or corpus cadence against the same corpus.
    core::CampaignConfig variant = cfg;
    variant.jobs = 16;
    variant.corpusDir = "/elsewhere";
    variant.resume = true;
    variant.checkpointEvery = 1;
    variant.maxProgramsThisRun = 3;
    EXPECT_EQ(corpus::configFingerprint(variant),
              corpus::configFingerprint(cfg));

    // The campaign definition does.
    variant = cfg;
    variant.seed = cfg.seed + 1;
    EXPECT_NE(corpus::configFingerprint(variant),
              corpus::configFingerprint(cfg));
}

TEST(CorpusStore, AppendDedupsAndReloads)
{
    ScratchDir scratch("store");
    const std::string dir = scratch.sub("corpus");
    const core::CampaignConfig cfg = smallCampaign();
    const core::ViolationRecord rec = sampleRecord();

    {
        corpus::CorpusStore store(dir, cfg);
        EXPECT_TRUE(store.append(rec));
        EXPECT_FALSE(store.append(rec)) << "same key must dedup";
        core::ViolationRecord other = rec;
        other.inputB.id = 70009;
        EXPECT_TRUE(store.append(other));
        EXPECT_EQ(store.size(), 2u);
    }

    // Reopening seeds the dedup index from the journal.
    {
        corpus::CorpusStore store(dir, cfg);
        EXPECT_EQ(store.size(), 2u);
        EXPECT_FALSE(store.append(rec));
    }

    const auto records = corpus::CorpusStore::readJournal(dir);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].inputB.id, 70004u);
    EXPECT_EQ(records[1].inputB.id, 70009u);

    // A different campaign config must be refused.
    core::CampaignConfig other_cfg = cfg;
    other_cfg.seed = 999;
    EXPECT_THROW(corpus::CorpusStore(dir, other_cfg),
                 corpus::CorpusError);
}

TEST(CorpusStore, MergeDedupsAcrossShards)
{
    ScratchDir scratch("merge");
    const core::CampaignConfig cfg = smallCampaign();
    const core::ViolationRecord rec = sampleRecord();

    // Two "shards" share one record and each has a private one — the
    // distributed-campaign shape: same config, disjoint program ranges
    // would normally make records disjoint, but merge must also cope
    // with overlap (e.g. re-dispatched ranges).
    {
        corpus::CorpusStore a(scratch.sub("a"), cfg);
        corpus::CorpusStore b(scratch.sub("b"), cfg);
        a.append(rec);
        b.append(rec);
        core::ViolationRecord only_a = rec;
        only_a.programIndex = 1;
        a.append(only_a);
        core::ViolationRecord only_b = rec;
        only_b.programIndex = 2;
        b.append(only_b);
    }

    const std::size_t added = corpus::CorpusStore::mergeInto(
        scratch.sub("merged"), {scratch.sub("a"), scratch.sub("b")});
    EXPECT_EQ(added, 3u);
    EXPECT_EQ(corpus::CorpusStore::readJournal(scratch.sub("merged")).size(),
              3u);

    // Shards from a different campaign are rejected.
    core::CampaignConfig other_cfg = cfg;
    other_cfg.seed = 999;
    { corpus::CorpusStore c(scratch.sub("alien"), other_cfg); }
    EXPECT_THROW(corpus::CorpusStore::mergeInto(
                     scratch.sub("merged2"),
                     {scratch.sub("a"), scratch.sub("alien")}),
                 corpus::CorpusError);
}

// A hard kill can tear the journal's final line mid-flush. Readers must
// keep every complete record reachable, and reopening the store must
// repair the tail so subsequent appends are not poisoned. A bad line
// *before* the end is real corruption and must still fail loudly.
TEST(CorpusStore, ToleratesAndRepairsTornJournalTail)
{
    ScratchDir scratch("torn");
    const std::string dir = scratch.sub("corpus");
    const std::string journal =
        (fs::path(dir) / "journal.jsonl").string();
    const core::CampaignConfig cfg = smallCampaign();
    const core::ViolationRecord rec = sampleRecord();

    {
        corpus::CorpusStore store(dir, cfg);
        store.append(rec);
        core::ViolationRecord second = rec;
        second.programIndex = 1;
        store.append(second);
    }
    {
        // Simulate a kill mid-append: an unterminated partial line.
        std::ofstream out(journal, std::ios::binary | std::ios::app);
        out << "{\"version\":1,\"defense\":\"Bas";
    }

    EXPECT_EQ(corpus::CorpusStore::readJournal(dir).size(), 2u)
        << "complete records must stay reachable past a torn tail";

    {
        corpus::CorpusStore store(dir, cfg);
        EXPECT_EQ(store.size(), 2u);
        core::ViolationRecord third = rec;
        third.programIndex = 2;
        EXPECT_TRUE(store.append(third))
            << "reopening must repair the tail and keep appending";
    }
    EXPECT_EQ(corpus::CorpusStore::readJournal(dir).size(), 3u);

    {
        // A *terminated* bad line is corruption, not a torn write.
        std::ofstream out(journal, std::ios::binary | std::ios::app);
        out << "{\"version\":1,\"defense\":\"Bas\n";
        out << corpus::toJson(rec).dump() << "\n";
    }
    EXPECT_THROW(corpus::CorpusStore::readJournal(dir),
                 corpus::CorpusError);
}

/** Arm a chaos plan (src/runtime/fault.hh) for one test's scope. */
struct ScopedFaultPlan
{
    explicit ScopedFaultPlan(const std::string &spec)
    {
        runtime::fault::FaultPlan::install(spec);
    }
    ~ScopedFaultPlan() { runtime::fault::FaultPlan::uninstall(); }
};

// Crash consistency under an injected short write (ENOSPC mid-line):
// the failed append must throw, heal the journal back to its valid
// prefix *in place* (no reopen needed), and keep every prior record;
// a reopened store must agree byte-for-byte.
TEST(CorpusStore, InjectedShortWriteHealsInPlace)
{
    ScratchDir scratch("enospc");
    const std::string dir = scratch.sub("corpus");
    const core::CampaignConfig cfg = smallCampaign();
    const core::ViolationRecord rec = sampleRecord();

    {
        corpus::CorpusStore store(dir, cfg);
        store.append(rec);

        // The 1st append under the plan tears; the retry lands.
        ScopedFaultPlan plan("journal.once=1");
        core::ViolationRecord second = rec;
        second.programIndex = 1;
        EXPECT_THROW(store.append(second), corpus::CorpusError);
        EXPECT_EQ(store.size(), 1u)
            << "a torn record must not be counted as durable";
        EXPECT_TRUE(store.append(second))
            << "healing must allow the very next append to succeed";
        EXPECT_EQ(store.size(), 2u);
    }
    // The journal on disk is exactly the two good records.
    const auto records = corpus::CorpusStore::readJournal(dir);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].programIndex, rec.programIndex);
    EXPECT_EQ(records[1].programIndex, 1u);
    {
        corpus::CorpusStore store(dir, cfg);
        EXPECT_EQ(store.size(), 2u);
    }
}

// A checkpoint write failing (injected ENOSPC before the atomic
// rename) must leave the previous checkpoint fully intact — the torn
// tmp file is invisible to readers.
TEST(CorpusCheckpoint, InjectedWriteFailureLeavesPreviousIntact)
{
    ScratchDir scratch("ckptfail");
    const std::string dir = scratch.sub("corpus");
    fs::create_directories(dir);
    const core::CampaignConfig cfg = smallCampaign();

    corpus::CompletedOutcomes completed;
    core::ProgramOutcome out;
    out.ran = true;
    out.testCases = 24;
    completed[3] = out;
    corpus::writeCheckpoint(dir, cfg, completed);

    {
        ScopedFaultPlan plan("checkpoint.fail=1000");
        completed[4] = out;
        EXPECT_THROW(corpus::writeCheckpoint(dir, cfg, completed),
                     corpus::CorpusError);
    }
    const auto restored = corpus::loadCheckpoint(dir, cfg);
    ASSERT_EQ(restored.size(), 1u)
        << "the failed write must not have replaced the old checkpoint";
    EXPECT_EQ(restored.count(3), 1u);
    EXPECT_EQ(restored.at(3).testCases, 24u);
}

// The kill/resume contract under chaos: a campaign interrupted by a
// program budget *while* faults tear journal appends and fail
// checkpoint writes, then resumed with the plan off, must still export
// byte-identically to an uninterrupted clean run.
TEST(CorpusResume, ChaosInterruptedThenResumedMatchesClean)
{
    ScratchDir scratch("chaosresume");

    core::CampaignConfig full = smallCampaign();
    full.jobs = 1;
    full.corpusDir = scratch.sub("full");
    const auto ref = core::Campaign(full).run();
    ASSERT_GT(ref.confirmedViolations, 0u);

    core::CampaignConfig part = smallCampaign();
    part.jobs = 2;
    part.corpusDir = scratch.sub("part");
    part.checkpointEvery = 2;
    part.maxProgramsThisRun = 5;
    part.faultPlan = "seed=2;journal.once=1;checkpoint.fail=400;"
                     "shard.throw=120";
    const auto partial = core::Campaign(part).run();
    EXPECT_LT(partial.programs, full.numPrograms);

    core::CampaignConfig resumed = smallCampaign();
    resumed.jobs = 3;
    resumed.corpusDir = scratch.sub("part");
    resumed.resume = true;
    const auto stats = core::Campaign(resumed).run();
    EXPECT_EQ(stats.confirmedViolations, ref.confirmedViolations);
    EXPECT_EQ(stats.signatureCounts, ref.signatureCounts);
    EXPECT_EQ(stats.quarantinedPrograms, 0u);
    EXPECT_EQ(corpus::CorpusStore::exportCanonical(scratch.sub("full")),
              corpus::CorpusStore::exportCanonical(scratch.sub("part")));
}

// The acceptance property: for a fixed (config, seed), a campaign
// checkpointed, killed (program budget), and resumed at a different
// jobs value produces (a) identical deterministic stats and (b) a
// byte-identical canonical export, compared to an uninterrupted run.
TEST(CorpusResume, KilledAndResumedEqualsUninterrupted)
{
    ScratchDir scratch("resume");

    // Uninterrupted reference run.
    core::CampaignConfig full = smallCampaign();
    full.jobs = 1;
    full.corpusDir = scratch.sub("full");
    const auto ref = core::Campaign(full).run();
    ASSERT_GT(ref.confirmedViolations, 0u)
        << "the comparison is vacuous without detections";

    // Killed run: budget of 5 programs, checkpoint every 2, 2 workers.
    core::CampaignConfig part = smallCampaign();
    part.jobs = 2;
    part.corpusDir = scratch.sub("part");
    part.checkpointEvery = 2;
    part.maxProgramsThisRun = 5;
    const auto partial = core::Campaign(part).run();
    EXPECT_LT(partial.programs, full.numPrograms)
        << "the budget must actually interrupt the campaign";

    // Resume at a different parallelism, no budget.
    core::CampaignConfig resumed = smallCampaign();
    resumed.jobs = 3;
    resumed.corpusDir = scratch.sub("part");
    resumed.resume = true;
    const auto stats = core::Campaign(resumed).run();

    EXPECT_GT(stats.resumedPrograms, 0u);
    EXPECT_EQ(stats.programs, ref.programs);
    EXPECT_EQ(stats.testCases, ref.testCases);
    EXPECT_EQ(stats.effectiveClasses, ref.effectiveClasses);
    EXPECT_EQ(stats.candidateViolations, ref.candidateViolations);
    EXPECT_EQ(stats.validationRuns, ref.validationRuns);
    EXPECT_EQ(stats.violatingTestCases, ref.violatingTestCases);
    EXPECT_EQ(stats.confirmedViolations, ref.confirmedViolations);
    EXPECT_EQ(stats.signatureCounts, ref.signatureCounts);
    ASSERT_EQ(stats.records.size(), ref.records.size());
    for (std::size_t i = 0; i < ref.records.size(); ++i) {
        EXPECT_EQ(stats.records[i].programIndex,
                  ref.records[i].programIndex);
        EXPECT_EQ(stats.records[i].inputA.id, ref.records[i].inputA.id);
        EXPECT_EQ(stats.records[i].signature, ref.records[i].signature);
    }

    // Byte-identical canonical exports (wall-clock fields are zeroed
    // by the exporter; nothing else may differ).
    const std::string export_full =
        corpus::CorpusStore::exportCanonical(scratch.sub("full"));
    const std::string export_part =
        corpus::CorpusStore::exportCanonical(scratch.sub("part"));
    EXPECT_EQ(export_full, export_part);

    // Resuming a *finished* campaign runs nothing and loses nothing.
    core::CampaignConfig again = resumed;
    const auto noop = core::Campaign(again).run();
    EXPECT_EQ(noop.resumedPrograms, full.numPrograms);
    EXPECT_EQ(noop.confirmedViolations, ref.confirmedViolations);
    EXPECT_EQ(noop.signatureCounts, ref.signatureCounts);
    EXPECT_EQ(corpus::CorpusStore::exportCanonical(scratch.sub("part")),
              export_full);
}

// Every journaled record must replay exactly: recorded traces
// reproduced bit-for-bit and the divergence still present — for each
// defense target (the per-defense campaign recipes are the ones
// test_campaign.cc proves find violations).
TEST(CorpusReplay, ConfirmsEveryRecordForEachDefense)
{
    ScratchDir scratch("replay");
    for (defense::DefenseKind kind : defense::allDefenseKinds()) {
        const char *name = defense::defenseKindName(kind);
        core::CampaignConfig cfg = defenseCampaign(kind);
        if (kind == defense::DefenseKind::SpecLfb ||
            kind == defense::DefenseKind::InvisiSpec ||
            kind == defense::DefenseKind::Baseline) {
            cfg.numPrograms = 20; // these detect well before 20
        }
        cfg.corpusDir = scratch.sub(name);
        const auto stats = core::Campaign(cfg).run();
        ASSERT_GT(stats.records.size(), 0u)
            << name << ": campaign found nothing to replay";

        const core::CampaignConfig stored =
            corpus::CorpusStore::readConfig(cfg.corpusDir);
        const auto records =
            corpus::CorpusStore::readJournal(cfg.corpusDir);
        ASSERT_GT(records.size(), 0u) << name;
        executor::SimHarness harness(stored.harness);
        for (const auto &rec : records) {
            const auto outcome = corpus::replayViolation(harness, rec);
            EXPECT_TRUE(outcome.confirmed())
                << name << " " << rec.summary() << ": "
                << outcome.detail;
        }
    }
}

// Checkpoints are versioned and fingerprinted: resuming with a
// different campaign definition must fail loudly, not corrupt results.
TEST(CorpusCheckpoint, RefusesForeignCampaigns)
{
    ScratchDir scratch("ckpt");
    const std::string dir = scratch.sub("c");
    core::CampaignConfig cfg = smallCampaign();
    fs::create_directories(dir);

    corpus::CompletedOutcomes completed;
    runtime::ProgramOutcome out;
    out.ran = true;
    out.testCases = 30;
    out.confirmedViolations = 1;
    out.signatureCounts["spectre-v1-branch"] = 1;
    out.records.push_back(sampleRecord());
    completed[3] = out;
    corpus::writeCheckpoint(dir, cfg, completed);

    const auto loaded = corpus::loadCheckpoint(dir, cfg);
    ASSERT_EQ(loaded.size(), 1u);
    const auto &restored = loaded.at(3);
    EXPECT_TRUE(restored.ran);
    EXPECT_EQ(restored.testCases, 30u);
    EXPECT_EQ(restored.confirmedViolations, 1u);
    EXPECT_EQ(restored.signatureCounts.at("spectre-v1-branch"), 1u);
    // Records live in the journal only; the scheduler rehydrates them
    // on resume (exercised by CorpusResume above).
    EXPECT_TRUE(restored.records.empty());

    core::CampaignConfig other = cfg;
    other.seed = 999;
    EXPECT_THROW(corpus::loadCheckpoint(dir, other), corpus::CorpusError);

    // Missing checkpoint: clean empty resume.
    EXPECT_TRUE(corpus::loadCheckpoint(scratch.sub("nope"), cfg).empty());
}

} // namespace

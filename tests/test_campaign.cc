/**
 * @file
 * End-to-end campaign tests: the fuzzer must rediscover each published
 * finding from random programs (with the right signature), produce no
 * confirmed violations on patched defenses at the same scale, and behave
 * deterministically for equal seeds.
 */

#include <gtest/gtest.h>

#include "core/campaign.hh"
#include "core/signature.hh"

namespace
{

using namespace amulet;

core::CampaignConfig
baseConfig(defense::DefenseKind kind, bool patched = false)
{
    core::CampaignConfig cfg;
    cfg.harness.defense = patched ? defense::DefenseConfig::patched(kind)
                                  : defense::DefenseConfig{};
    cfg.harness.defense.kind = kind;
    cfg.harness.prime = (kind == defense::DefenseKind::CleanupSpec ||
                         kind == defense::DefenseKind::SpecLfb)
                            ? executor::PrimeMode::Invalidate
                            : executor::PrimeMode::ConflictFill;
    cfg.harness.bootInsts = 2000;
    if (kind == defense::DefenseKind::Stt) {
        cfg.harness.map.sandboxPages = 128;
        cfg.contract = contracts::archSeq();
    }
    cfg.gen.map = cfg.harness.map;
    cfg.inputs.map = cfg.harness.map;
    cfg.numPrograms = 40;
    cfg.baseInputsPerProgram = 6;
    cfg.siblingsPerBase = 4;
    cfg.seed = 33;
    return cfg;
}

TEST(CampaignE2E, BaselineFindsSpectreV1)
{
    core::Campaign campaign(baseConfig(defense::DefenseKind::Baseline));
    const auto stats = campaign.run();
    EXPECT_TRUE(stats.detected());
    EXPECT_TRUE(stats.signatureCounts.count(core::sig::kSpectreV1));
}

TEST(CampaignE2E, InvisiSpecBuggyFindsUv1PatchedIsClean)
{
    core::Campaign buggy(baseConfig(defense::DefenseKind::InvisiSpec));
    const auto bs = buggy.run();
    EXPECT_TRUE(bs.detected());
    EXPECT_TRUE(bs.signatureCounts.count(core::sig::kUv1SpecEviction));

    core::Campaign patched(
        baseConfig(defense::DefenseKind::InvisiSpec, true));
    const auto ps = patched.run();
    EXPECT_EQ(ps.confirmedViolations, 0u);
}

TEST(CampaignE2E, CleanupSpecBuggyFindsStoreAndOvercleanBugs)
{
    core::Campaign campaign(
        baseConfig(defense::DefenseKind::CleanupSpec));
    const auto stats = campaign.run();
    EXPECT_TRUE(stats.detected());
    EXPECT_TRUE(
        stats.signatureCounts.count(core::sig::kUv3StoreNotCleaned) ||
        stats.signatureCounts.count(core::sig::kUv5Overclean));
}

TEST(CampaignE2E, SpecLfbBuggyFindsUv6PatchedIsClean)
{
    core::Campaign buggy(baseConfig(defense::DefenseKind::SpecLfb));
    const auto bs = buggy.run();
    EXPECT_TRUE(bs.detected());
    EXPECT_TRUE(bs.signatureCounts.count(core::sig::kUv6FirstLoadBypass));

    core::Campaign patched(
        baseConfig(defense::DefenseKind::SpecLfb, true));
    const auto ps = patched.run();
    EXPECT_EQ(ps.confirmedViolations, 0u);
}

TEST(CampaignE2E, SttBuggyFindsKv3PatchedIsClean)
{
    // KV3 reaches confirmation in roughly a third of 40-program
    // campaigns; this seed is one that hits it under the runtime's
    // per-program RNG streams (seed 33 found it under the pre-runtime
    // sequential streams).
    auto buggy_cfg = baseConfig(defense::DefenseKind::Stt);
    buggy_cfg.seed = 8;
    core::Campaign buggy(buggy_cfg);
    const auto bs = buggy.run();
    EXPECT_TRUE(bs.detected());
    EXPECT_TRUE(bs.signatureCounts.count(core::sig::kKv3TaintedStoreTlb));

    auto cfg = baseConfig(defense::DefenseKind::Stt, true);
    cfg.harness.defense.kind = defense::DefenseKind::Stt;
    cfg.seed = 8;
    core::Campaign patched(cfg);
    const auto ps = patched.run();
    EXPECT_EQ(ps.confirmedViolations, 0u);
}

TEST(CampaignE2E, DeterministicForEqualSeeds)
{
    auto cfg = baseConfig(defense::DefenseKind::Baseline);
    cfg.numPrograms = 10;
    core::Campaign c1(cfg), c2(cfg);
    const auto s1 = c1.run();
    const auto s2 = c2.run();
    EXPECT_EQ(s1.testCases, s2.testCases);
    EXPECT_EQ(s1.violatingTestCases, s2.violatingTestCases);
    EXPECT_EQ(s1.confirmedViolations, s2.confirmedViolations);
    EXPECT_EQ(s1.signatureCounts, s2.signatureCounts);
}

TEST(CampaignE2E, ArchSeqClassesKeepRegistersIdentical)
{
    // Under ARCH-SEQ the campaign must not mutate registers: the STT
    // campaign's violations then come from memory-derived secrets only.
    auto cfg = baseConfig(defense::DefenseKind::Stt);
    cfg.numPrograms = 5;
    core::Campaign campaign(cfg);
    const auto stats = campaign.run();
    for (const auto &rec : stats.records)
        EXPECT_EQ(rec.inputA.regs, rec.inputB.regs);
}

TEST(CampaignE2E, NaiveModeFindsViolationsToo)
{
    auto cfg = baseConfig(defense::DefenseKind::Baseline);
    cfg.harness.naiveMode = true;
    cfg.numPrograms = 12;
    cfg.seed = 7;
    core::Campaign campaign(cfg);
    const auto stats = campaign.run();
    EXPECT_GT(stats.testCases, 0u);
    // Naive restarts the simulator for every input.
    EXPECT_GE(stats.times.startupSec, stats.times.simulateSec);
}

} // namespace

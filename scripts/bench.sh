#!/usr/bin/env bash
# Machine-readable perf harness: build the tree, run bench/perf_snapshot,
# and write the campaign-throughput trajectory point (tests/s per defense
# + TimeBreakdown + per-input sim latency percentiles from the telemetry
# registry + the prime-cache, ctrace-memo, and cycle-skip off->on
# ablations) to BENCH_8.json. Also runs bench/window_atlas twice — once
# with event-horizon cycle skipping (the default), once with
# AMULET_NO_CYCLE_SKIP=1 — and writes the speculation-window atlas
# (simulator-deterministic mis-speculation window length per defense x
# trigger) to WINDOW_ATLAS.json next to it; the two runs must be
# byte-identical, since the atlas is derived entirely from state
# skipping preserves.
#
# Wall-clock numbers are hardware-dependent: the JSON is for tracking the
# perf trajectory across commits on comparable hosts, and CI publishes it
# as a non-gating artifact. The host-independent shapes are the ablations'
# speedup fields, which this script sanity-checks: the prime cache on the
# table3 baseline campaign (CT-COND, inproc, jobs=1) must be >= 1.5x, the
# ctrace memo on the STT ARCH-SEQ campaign must strictly cut ctraceSec
# with identical verdicts, and cycle skipping on the InvisiSpec CT-SEQ
# campaign must strictly cut simulateSec with identical verdicts while
# actually engaging (sim.skippedCycles > 0). (The memo gate is
# directional, not a multiple: on that cell the memo removes the whole
# cold collect per sibling, but ~55% of the stage is the PRNG fill of
# each fresh 512KB sibling sandbox, which bounds the stage ratio near
# 1.2x — see src/contracts/README.md.)
set -euo pipefail

cd "$(dirname "$0")/.."

OUT="${1:-BENCH_8.json}"
ATLAS="${2:-$(dirname "${OUT}")/WINDOW_ATLAS.json}"
JOBS="${VERIFY_JOBS:-$(nproc)}"

cmake -B build -S . > /dev/null
cmake --build build -j "${JOBS}" --target perf_snapshot \
    --target window_atlas > /dev/null

AMULET_BENCH_SCALE="${AMULET_BENCH_SCALE:-0.5}" \
    ./build/bench/perf_snapshot > "${OUT}"

echo "wrote ${OUT}:"
# One line per defense plus the ablation, without requiring jq.
if ! python3 - "${OUT}" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    data = json.load(f)
for d in data["defenses"]:
    lat = d.get("simInputLatency", {})
    lat_txt = (f", input p50 {lat['p50Us']:.0f}us p95 {lat['p95Us']:.0f}us"
               if lat else "")
    print(f"  {d['defense']:<12} {d['contract']:<9} "
          f"{d['testsPerSec']:9.1f} tests/s  "
          f"(prime {d['times']['primeSec']:.3f}s, "
          f"simulate {d['times']['simulateSec']:.3f}s{lat_txt})")
# The registry percentiles must be present and ordered for every defense.
for d in data["defenses"]:
    lat = d["simInputLatency"]
    assert lat["count"] > 0 and lat["p50Us"] <= lat["p95Us"] <= lat["p99Us"], d
a = data["primeCacheAblation"]
print(f"  prime-cache ablation ({a['contract']}, {a['backend']}, "
      f"jobs={a['jobs']}): off {a['offTestsPerSec']:.1f} -> "
      f"on {a['onTestsPerSec']:.1f} tests/s ({a['speedup']:.2f}x)")
m = data["ctraceMemoAblation"]
print(f"  ctrace-memo ablation ({m['defense']}, {m['contract']}, "
      f"{m['backend']}, jobs={m['jobs']}, best of "
      f"{m['runsPerMode']}/mode): ctrace {m['offCtraceSec']:.3f}s -> "
      f"{m['onCtraceSec']:.3f}s ({m['ctraceSpeedup']:.2f}x), "
      f"{m['offTestsPerSec']:.1f} -> {m['onTestsPerSec']:.1f} tests/s; "
      f"ctrace share of wall {m['offCtraceShareOfWall']:.0%} -> "
      f"{m['onCtraceShareOfWall']:.0%}")
s = data["cycleSkipAblation"]
print(f"  cycle-skip ablation ({s['defense']}, {s['contract']}, "
      f"{s['backend']}, jobs={s['jobs']}, best of "
      f"{s['runsPerMode']}/mode): simulate {s['offSimulateSec']:.3f}s -> "
      f"{s['onSimulateSec']:.3f}s ({s['simulateSpeedup']:.2f}x), "
      f"{s['offTestsPerSec']:.1f} -> {s['onTestsPerSec']:.1f} tests/s; "
      f"{s['skippedCycles']:.0f} cycles elided over "
      f"{s['skipWindows']:.0f} windows")
ok = (a["speedup"] >= 1.5 and a["verdictsEqual"] and
      m["ctraceSpeedup"] > 1.0 and m["verdictsEqual"] and
      s["simulateSpeedup"] > 1.0 and s["verdictsEqual"] and
      s["skippedCycles"] > 0)
sys.exit(0 if ok else 1)
EOF
then
  echo "FAIL: prime ablation below 1.5x, memo did not cut ctraceSec," \
       "skipping did not cut simulateSec (or never engaged)," \
       "or verdicts diverged" >&2
  exit 1
fi
echo "bench: OK (prime >= 1.5x, memo cuts ctraceSec, skip cuts" \
     "simulateSec, verdicts unchanged)"

./build/bench/window_atlas > "${ATLAS}"
# Cycle-skip equivalence on the atlas itself: the second run disables
# skipping; the emitted JSON (every committed-cycle timestamp and window
# length in it) must not move by a byte.
AMULET_NO_CYCLE_SKIP=1 ./build/bench/window_atlas > "${ATLAS}.noskip"
if ! cmp -s "${ATLAS}" "${ATLAS}.noskip"; then
  echo "FAIL: window atlas differs with cycle skipping disabled" >&2
  exit 1
fi
rm -f "${ATLAS}.noskip"
echo "bench: atlas byte-identical with and without cycle skipping"
echo "wrote ${ATLAS}:"
# Unlike the perf numbers, atlas cycle counts are simulator-deterministic
# (no wall clock involved), so their shape is checkable everywhere: every
# cell mispredicted with an open window, and for each defense the
# tlb-miss window at least as long as the cache-miss one (the page walk
# only ever delays branch resolution).
if ! python3 - "${ATLAS}" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    atlas = json.load(f)
assert atlas["schema"] == "amulet-window-atlas-v1", atlas.get("schema")
cells = atlas["cells"]
assert len(cells) == 10, len(cells)  # 5 defenses x 2 triggers
windows = {}
for c in cells:
    mech = [k for k, v in c["mechanisms"].items() if v]
    print(f"  {c['defense']:<12} {c['trigger']:<10} "
          f"window {c['windowCycles']:>4} cycles  "
          f"wrong-path {c['wrongPathFetched']} fetched / "
          f"{c['wrongPathIssued']} issued / "
          f"{c['wrongPathLoadsIssued']} loads  "
          f"[{','.join(mech) if mech else '-'}]")
    assert c["mispredicted"] and c["windowCycles"] > 0, c
    windows[(c["defense"], c["trigger"])] = c["windowCycles"]
for (defense, trigger), window in windows.items():
    if trigger == "tlb-miss":
        assert window >= windows[(defense, "cache-miss")], defense
EOF
then
  echo "FAIL: window atlas shape check failed" >&2
  exit 1
fi
echo "bench: atlas OK (10 cells, all windows open, tlb >= cache)"

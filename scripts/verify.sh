#!/usr/bin/env bash
# Tier-1 verification entry point: configure, build, run the test suite,
# then smoke-test the corpus kill/resume/replay workflow end to end.
# Builders and CI share this one script; it exits nonzero on any failure.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${VERIFY_JOBS:-$(nproc)}"

cmake -B build -S .
cmake --build build -j "${JOBS}"
ctest --test-dir build --output-on-failure --no-tests=error -j "${JOBS}"

# --- Corpus smoke: run, kill, resume, export, replay ------------------------
# The acceptance property of src/corpus/: a campaign killed by a program
# budget and resumed at a different jobs value exports byte-identical
# records to an uninterrupted run, and every record replays CONFIRMED.
CLI=build/examples/campaign_cli
SMOKE=$(mktemp -d)
trap 'rm -rf "${SMOKE}"' EXIT
CAMPAIGN=(--programs 12 --seed 1 --boot-insts 2000)

echo "--- corpus smoke: friendly CLI errors"
if "${CLI}" --programs banana > /dev/null 2>&1; then
  echo "FAIL: bad numeric argument must exit nonzero" >&2
  exit 1
fi
if "${CLI}" --no-such-flag > /dev/null 2>&1; then
  echo "FAIL: unknown flag must exit nonzero" >&2
  exit 1
fi
if "${CLI}" --backend warp > /dev/null 2>&1; then
  echo "FAIL: unknown backend must exit nonzero" >&2
  exit 1
fi
"${CLI}" --list | grep -q "backends (--backend): inproc async subprocess"

echo "--- corpus smoke: uninterrupted reference run"
"${CLI}" "${CAMPAIGN[@]}" --corpus-dir "${SMOKE}/full" --jobs 2 > /dev/null

echo "--- corpus smoke: budget-killed run + resume at different --jobs"
"${CLI}" "${CAMPAIGN[@]}" --corpus-dir "${SMOKE}/part" \
    --max-programs 5 --checkpoint-every 2 --jobs 1 > /dev/null
"${CLI}" "${CAMPAIGN[@]}" --corpus-dir "${SMOKE}/part" \
    --resume --jobs 3 > /dev/null

echo "--- corpus smoke: exports must be byte-identical"
"${CLI}" export --corpus-dir "${SMOKE}/full" --out "${SMOKE}/full.jsonl" \
    > /dev/null
"${CLI}" export --corpus-dir "${SMOKE}/part" --out "${SMOKE}/part.jsonl" \
    > /dev/null
# Header + at least one record line, or the comparison is vacuous.
test "$(wc -l < "${SMOKE}/full.jsonl")" -gt 1
cmp "${SMOKE}/full.jsonl" "${SMOKE}/part.jsonl"

echo "--- corpus smoke: every exported record must replay CONFIRMED"
"${CLI}" replay --corpus-dir "${SMOKE}/part" > /dev/null

echo "corpus smoke: OK"

# --- Filter smoke: filtering on/off must reach identical verdicts ------------
# The filter equivalence contract (src/pipeline/README.md): for a fixed
# (config, seed), verdicts and exported records are identical with
# ineffective-test-case filtering on (default) and off.

echo "--- filter smoke: on/off record equivalence (CT-SEQ, has records)"
# Export headers carry the config fingerprint, which legitimately differs
# (the knob is part of the campaign definition); strip the header line.
"${CLI}" "${CAMPAIGN[@]}" --corpus-dir "${SMOKE}/fon" --jobs 2 > /dev/null
"${CLI}" "${CAMPAIGN[@]}" --no-filter --corpus-dir "${SMOKE}/foff" \
    --jobs 2 > /dev/null
"${CLI}" export --corpus-dir "${SMOKE}/fon" --out "${SMOKE}/fon.jsonl" \
    > /dev/null
"${CLI}" export --corpus-dir "${SMOKE}/foff" --out "${SMOKE}/foff.jsonl" \
    > /dev/null
test "$(wc -l < "${SMOKE}/fon.jsonl")" -gt 1
cmp <(tail -n +2 "${SMOKE}/fon.jsonl") <(tail -n +2 "${SMOKE}/foff.jsonl")

echo "--- filter smoke: on/off verdict equivalence (CT-COND, filters)"
# CT-COND is where filtering actually prunes simulator runs; the verdict
# counters must not move. Wall-clock and the filtering counters are the
# only legitimate differences, so compare the verdict lines of report().
verdicts() {
  grep -E "test cases:|effective classes:|candidates:|validation runs:|violating|confirmed:|unique" \
    || true
}
FILTER_CAMPAIGN=(--programs 12 --seed 1 --contract CT-COND --boot-insts 2000)
"${CLI}" "${FILTER_CAMPAIGN[@]}" --jobs 2 > "${SMOKE}/ccon.txt"
"${CLI}" "${FILTER_CAMPAIGN[@]}" --no-filter --jobs 2 > "${SMOKE}/ccoff.txt"
diff <(verdicts < "${SMOKE}/ccon.txt") <(verdicts < "${SMOKE}/ccoff.txt")
if ! grep -E "filtered testcases:  [1-9]" "${SMOKE}/ccon.txt" > /dev/null; then
  echo "FAIL: CT-COND smoke filtered nothing (vacuous equivalence)" >&2
  exit 1
fi

echo "--- filter smoke: mixed-knob resume must be refused"
if "${CLI}" "${CAMPAIGN[@]}" --no-filter --corpus-dir "${SMOKE}/fon" \
    --resume > /dev/null 2>&1; then
  echo "FAIL: resume with a different filter knob must exit nonzero" >&2
  exit 1
fi

echo "filter smoke: OK"

# --- Prime-cache smoke: memoized priming must not move a record byte --------
# The prime-cache equivalence contract (src/executor/README.md): restoring
# the post-prime MemSnapshot is state-identical to re-simulating the
# conflict-fill priming program, so corpus exports — headers included,
# the knob is excluded from the config fingerprint — are byte-identical
# with the memo on (default) and off.

echo "--- prime-cache smoke: on/off export equivalence"
"${CLI}" "${CAMPAIGN[@]}" --no-prime-cache --corpus-dir "${SMOKE}/pcoff" \
    --jobs 2 > /dev/null
"${CLI}" export --corpus-dir "${SMOKE}/pcoff" --out "${SMOKE}/pcoff.jsonl" \
    > /dev/null
test "$(wc -l < "${SMOKE}/pcoff.jsonl")" -gt 1
cmp "${SMOKE}/full.jsonl" "${SMOKE}/pcoff.jsonl"
# Runtime knob: a corpus written without the memo resumes and replays
# with it (and vice versa) — same contract as --jobs/--backend.
"${CLI}" replay --corpus-dir "${SMOKE}/pcoff" > /dev/null
"${CLI}" --list | grep -q -- "--no-prime-cache"

echo "prime-cache smoke: OK"

# --- Ctrace-memo smoke: memoized collection must not move a record byte -----
# The ctrace-memo equivalence contract (src/contracts/README.md): forking
# the emulator at the first divergent initial-state read and replaying
# only the suffix reproduces the cold collector's trace exactly, so
# corpus exports — headers included, the knob is excluded from the config
# fingerprint — are byte-identical with the memo on (default) and off.

echo "--- ctrace-memo smoke: on/off export equivalence"
"${CLI}" "${CAMPAIGN[@]}" --no-ctrace-memo --corpus-dir "${SMOKE}/cmoff" \
    --jobs 2 > /dev/null
"${CLI}" export --corpus-dir "${SMOKE}/cmoff" --out "${SMOKE}/cmoff.jsonl" \
    > /dev/null
test "$(wc -l < "${SMOKE}/cmoff.jsonl")" -gt 1
cmp "${SMOKE}/full.jsonl" "${SMOKE}/cmoff.jsonl"
# Runtime knob: a corpus written without the memo resumes and replays
# with it (and vice versa) — same contract as --jobs/--no-prime-cache.
"${CLI}" replay --corpus-dir "${SMOKE}/cmoff" > /dev/null
"${CLI}" --list | grep -q -- "--no-ctrace-memo"

echo "ctrace-memo smoke: OK"

# --- Cycle-skip smoke: fast-forwarding must not move a record byte ----------
# The cycle-skip equivalence contract (src/uarch/README.md): jumping the
# simulator over quiescent cycles — cycles with no pipeline, memory, or
# defense event before the next scheduled one — lands exactly on the
# event cycle, so corpus exports — headers included, the knob is
# excluded from the config fingerprint — are byte-identical with
# skipping on (default) and off.

echo "--- cycle-skip smoke: on/off export equivalence"
"${CLI}" "${CAMPAIGN[@]}" --no-cycle-skip --corpus-dir "${SMOKE}/csoff" \
    --jobs 2 > /dev/null
"${CLI}" export --corpus-dir "${SMOKE}/csoff" --out "${SMOKE}/csoff.jsonl" \
    > /dev/null
test "$(wc -l < "${SMOKE}/csoff.jsonl")" -gt 1
cmp "${SMOKE}/full.jsonl" "${SMOKE}/csoff.jsonl"
# Runtime knob: a corpus written without skipping resumes and replays
# with it (and vice versa) — same contract as --jobs/--no-prime-cache.
"${CLI}" replay --corpus-dir "${SMOKE}/csoff" > /dev/null
"${CLI}" --list | grep -q -- "--no-cycle-skip"
# And the campaign must actually skip: the telemetry registry's cycle
# counters are live in the default (skipping) reference corpus.
"${CLI}" stats --corpus-dir "${SMOKE}/full" | grep -q "cycle skipping"

echo "cycle-skip smoke: OK"

# --- Backend smoke: inproc/async/subprocess must export identically ----------
# The backend equivalence contract (src/executor/backend.hh): for a fixed
# (config, seed), corpus exports are byte-identical across every backend —
# the simulator may run in-thread, behind a simulation thread, or in a
# forked amulet_sim_worker process without moving a single record byte.

echo "--- backend smoke: inproc/async/subprocess export equivalence"
for b in inproc async subprocess; do
  "${CLI}" "${CAMPAIGN[@]}" --backend "$b" --corpus-dir "${SMOKE}/be_$b" \
      --jobs 2 > /dev/null
  "${CLI}" export --corpus-dir "${SMOKE}/be_$b" \
      --out "${SMOKE}/be_$b.jsonl" > /dev/null
done
test "$(wc -l < "${SMOKE}/be_inproc.jsonl")" -gt 1
cmp "${SMOKE}/be_inproc.jsonl" "${SMOKE}/be_async.jsonl"
cmp "${SMOKE}/be_inproc.jsonl" "${SMOKE}/be_subprocess.jsonl"
# The corpus workflows accept either backend transparently: the knob is
# runtime-only (like --jobs), so the reference corpus from the smoke above
# resumes and replays under a different backend.
"${CLI}" replay --corpus-dir "${SMOKE}/be_subprocess" > /dev/null

echo "--- backend smoke: killed workers must not change the campaign"
AMULET_SIM_WORKER_CRASH_AFTER=3 \
    "${CLI}" "${CAMPAIGN[@]}" --backend subprocess \
    --corpus-dir "${SMOKE}/be_crash" --jobs 2 > /dev/null
"${CLI}" export --corpus-dir "${SMOKE}/be_crash" \
    --out "${SMOKE}/be_crash.jsonl" > /dev/null
cmp "${SMOKE}/be_inproc.jsonl" "${SMOKE}/be_crash.jsonl"

echo "backend smoke: OK"

# --- Chaos smoke: fault-injection survivability ------------------------------
# The failure-model contract (src/runtime/README.md, "Failure model"):
# a seeded chaos plan — worker crashes, real hangs, dropped and garbled
# replies, shard deaths, a torn journal append, failing checkpoint
# writes, and one poisoned program — must complete the campaign with
# the poisoned program quarantined (journaled, counted, listed) and the
# export restricted to non-quarantined programs byte-identical to the
# clean run, at jobs=1 and jobs=4. The plan is seeded and site-keyed,
# so both jobs values quarantine the same set and export the same bytes.

echo "--- chaos smoke: seeded fault plan survives and quarantines"
CHAOS_PLAN="seed=9;poison=2;wire.crash=25;wire.garble=25;wire.drop=25"
CHAOS_PLAN="${CHAOS_PLAN};shard.throw=120;journal.once=1;checkpoint.fail=500"
for j in 1 4; do
  AMULET_SIM_WORKER_HANG_AFTER=150 AMULET_SIM_OP_TIMEOUT_SEC=4 \
      "${CLI}" "${CAMPAIGN[@]}" --backend subprocess --checkpoint-every 2 \
      --corpus-dir "${SMOKE}/chaos_j$j" --jobs "$j" \
      --fault-plan "${CHAOS_PLAN}" > "${SMOKE}/chaos_j$j.txt"
  grep -q "quarantined:" "${SMOKE}/chaos_j$j.txt"
  "${CLI}" quarantined --corpus-dir "${SMOKE}/chaos_j$j" \
      > "${SMOKE}/chaos_j$j.quar"
  cut -f1 "${SMOKE}/chaos_j$j.quar" | grep -qx "2" \
      || { echo "FAIL: poisoned program 2 not quarantined" >&2; exit 1; }
  "${CLI}" export --corpus-dir "${SMOKE}/chaos_j$j" \
      --out "${SMOKE}/chaos_j$j.jsonl" > /dev/null
  "${CLI}" stats --corpus-dir "${SMOKE}/chaos_j$j" \
      | grep -q "campaign.quarantinedPrograms"
done
# Deterministic chaos: both jobs values reach the same quarantine set
# and the same export bytes.
diff "${SMOKE}/chaos_j1.quar" "${SMOKE}/chaos_j4.quar"
cmp "${SMOKE}/chaos_j1.jsonl" "${SMOKE}/chaos_j4.jsonl"
# Unaffected programs are untouched: the clean reference export minus
# the quarantined programs' records must equal the chaos export (their
# headers share one fingerprint — the plan is a runtime knob).
python3 - "${SMOKE}/full.jsonl" "${SMOKE}/chaos_j1.jsonl" \
    "${SMOKE}/chaos_j1.quar" "${SMOKE}/chaos_filtered.jsonl" <<'EOF'
import json, sys
drop = {int(l.split("\t")[0]) for l in open(sys.argv[3]) if l.strip()}
assert drop, "vacuous chaos smoke: nothing was quarantined"
clean = open(sys.argv[1], "rb").read().splitlines(keepends=True)
chaos = open(sys.argv[2], "rb").read().splitlines(keepends=True)
assert json.loads(clean[0])["fingerprint"] == \
    json.loads(chaos[0])["fingerprint"], "fault plan moved the fingerprint"
kept = [l for l in clean[1:]
        if json.loads(l)["programIndex"] not in drop]
assert json.loads(chaos[0])["records"] == len(kept), "record count"
open(sys.argv[4], "wb").write(b"".join(kept))
EOF
cmp "${SMOKE}/chaos_filtered.jsonl" <(tail -n +2 "${SMOKE}/chaos_j1.jsonl")
# With the plan off nothing in the chaos machinery runs: the reference
# corpora of every other smoke above already prove the byte-identity.
"${CLI}" --list | grep -q -- "--fault-plan"

echo "chaos smoke: OK"

# --- Telemetry smoke: observability must not move a record byte --------------
# The telemetry contract (src/telemetry/README.md): tracing + heartbeats
# are results-invisible — exports (headers included; the telemetry config
# is excluded from the fingerprint) are byte-identical with them on and
# off — and the side channels themselves are well-formed.

echo "--- telemetry smoke: traced+heartbeat run exports identically"
"${CLI}" "${CAMPAIGN[@]}" --corpus-dir "${SMOKE}/tel" --jobs 2 \
    --trace-out "${SMOKE}/tel.trace.json" \
    --heartbeat "${SMOKE}/tel.hb.jsonl" --heartbeat-interval 0.2 \
    > /dev/null
"${CLI}" export --corpus-dir "${SMOKE}/tel" --out "${SMOKE}/tel.jsonl" \
    > /dev/null
cmp "${SMOKE}/full.jsonl" "${SMOKE}/tel.jsonl"
# The trace is one JSON document of Chrome trace events; the heartbeat
# is JSONL with a final all-programs-done line.
python3 - "${SMOKE}/tel.trace.json" "${SMOKE}/tel.hb.jsonl" <<'EOF'
import json, sys
trace = json.load(open(sys.argv[1]))
assert any(e.get("ph") == "X" and e["name"].startswith("stage.")
           for e in trace["traceEvents"]), "no stage spans in trace"
lines = [json.loads(l) for l in open(sys.argv[2])]
assert lines, "empty heartbeat"
assert lines[-1]["programsDone"] + lines[-1]["resumedPrograms"] == \
    lines[-1]["programsTotal"], "final heartbeat incomplete"
EOF
# The metrics registry persisted next to the journal and renders.
"${CLI}" stats --corpus-dir "${SMOKE}/tel" | grep -q "time breakdown"
"${CLI}" stats --corpus-dir "${SMOKE}/tel" | grep -q "sim input latency"

echo "--- telemetry smoke: stats on a corpus without metrics exits 2"
# A pre-telemetry corpus (journal but no metrics.json) is a corpus
# state, not a usage error: friendly message, exit code 2.
cp -r "${SMOKE}/tel" "${SMOKE}/nometrics"
rm -f "${SMOKE}/nometrics/metrics.json"
set +e
"${CLI}" stats --corpus-dir "${SMOKE}/nometrics" \
    > "${SMOKE}/nometrics.out" 2>&1
rc=$?
set -e
if [ "${rc}" -ne 2 ]; then
  echo "FAIL: stats without metrics.json must exit 2 (got ${rc})" >&2
  exit 1
fi
grep -q "no metrics.json" "${SMOKE}/nometrics.out"

echo "--- telemetry smoke: heartbeat to a pipe streams lines live"
# --heartbeat - writes + flushes whole lines: a pipe reader must see
# the first JSONL line while the campaign is still running (a long one
# here, killed as soon as the line arrives), not at process exit.
python3 - "${CLI}" <<'EOF'
import json, select, subprocess, sys
p = subprocess.Popen(
    [sys.argv[1], "--programs", "500", "--boot-insts", "2000",
     "--heartbeat", "-", "--heartbeat-interval", "0.1"],
    stdout=subprocess.PIPE)
try:
    # Skip the campaign banner; the heartbeat flush pushes it through.
    deadline = 30
    while True:
        ready, _, _ = select.select([p.stdout], [], [], deadline)
        assert ready, "no heartbeat within 30s: stdout not flushed live"
        line = p.stdout.readline()
        assert line, "campaign exited before emitting a heartbeat"
        if line.lstrip().startswith(b"{"):
            break
    doc = json.loads(line)
    assert doc["programsTotal"] == 500, doc
finally:
    p.kill()
    p.wait()
EOF

echo "telemetry smoke: OK"

# --- Uarch-trace smoke: pipeline tracing must not move a record byte ---------
# The introspection contract (src/telemetry/README.md): per-violation
# pipeline tracing re-runs restore saved contexts, so exports — over the
# subprocess wire protocol too — are byte-identical with the knob on and
# off; the traces themselves are Konata-loadable; and `inspect` names
# the first divergent instruction of a journaled violation.

echo "--- uarch-trace smoke: traced run (subprocess) exports identically"
"${CLI}" "${CAMPAIGN[@]}" --corpus-dir "${SMOKE}/ut" --jobs 2 \
    --backend subprocess --uarch-trace-dir "${SMOKE}/ut_traces" > /dev/null
"${CLI}" export --corpus-dir "${SMOKE}/ut" --out "${SMOKE}/ut.jsonl" \
    > /dev/null
cmp "${SMOKE}/full.jsonl" "${SMOKE}/ut.jsonl"
# Konata header on every per-violation trace file.
ls "${SMOKE}/ut_traces/"*.kanata > /dev/null
for f in "${SMOKE}/ut_traces/"*.kanata; do
  head -n 1 "$f" | grep -q "Kanata" || { echo "FAIL: $f" >&2; exit 1; }
done

echo "--- uarch-trace smoke: inspect localizes a journaled violation"
"${CLI}" inspect "${SMOKE}/full" 0 --out "${SMOKE}/inspect0" > /dev/null
grep -q "first divergent instruction" "${SMOKE}/inspect0/report.txt"
test -s "${SMOKE}/inspect0/inputA.kanata"
test -s "${SMOKE}/inspect0/inputB.kanata"
test -s "${SMOKE}/inspect0/pipeline.trace.json"
python3 -c "import json,sys; json.load(open(sys.argv[1]))" \
    "${SMOKE}/inspect0/pipeline.trace.json"
# Bad record index: friendly usage error, exit 2.
set +e
"${CLI}" inspect "${SMOKE}/full" 99999 > /dev/null 2>&1
rc=$?
set -e
if [ "${rc}" -ne 2 ]; then
  echo "FAIL: inspect with an out-of-range index must exit 2" >&2
  exit 1
fi

echo "uarch-trace smoke: OK"

# --- Throughput canary: table3 filter + backend + prime-cache ablations ------
# Scaled-down table3 run printing the before/after tests/s lines, so perf
# regressions in the filter/batching/backend/priming paths are visible in
# CI logs.
echo "--- table3 throughput (filter off -> on, prime-cache off -> on," \
     "inproc -> async)"
AMULET_BENCH_SCALE="${AMULET_BENCH_SCALE:-0.2}" \
    ./build/bench/table3_baseline_campaign > "${SMOKE}/table3.txt"
grep -A 2 "filter ablation" "${SMOKE}/table3.txt"
grep -A 2 "prime-cache ablation" "${SMOKE}/table3.txt"
grep -A 2 "backend ablation" "${SMOKE}/table3.txt"
if grep -q "DIVERGED" "${SMOKE}/table3.txt"; then
  echo "FAIL: an ablation changed campaign verdicts" >&2
  exit 1
fi

#!/usr/bin/env bash
# Tier-1 verification entry point: configure, build, run the test suite.
# Builders and CI share this one script; it exits nonzero on any failure.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${VERIFY_JOBS:-$(nproc)}"

cmake -B build -S .
cmake --build build -j "${JOBS}"
ctest --test-dir build --output-on-failure --no-tests=error -j "${JOBS}"

#!/usr/bin/env bash
# Tier-1 verification entry point: configure, build, run the test suite,
# then smoke-test the corpus kill/resume/replay workflow end to end.
# Builders and CI share this one script; it exits nonzero on any failure.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${VERIFY_JOBS:-$(nproc)}"

cmake -B build -S .
cmake --build build -j "${JOBS}"
ctest --test-dir build --output-on-failure --no-tests=error -j "${JOBS}"

# --- Corpus smoke: run, kill, resume, export, replay ------------------------
# The acceptance property of src/corpus/: a campaign killed by a program
# budget and resumed at a different jobs value exports byte-identical
# records to an uninterrupted run, and every record replays CONFIRMED.
CLI=build/examples/campaign_cli
SMOKE=$(mktemp -d)
trap 'rm -rf "${SMOKE}"' EXIT
CAMPAIGN=(--programs 12 --seed 1 --boot-insts 2000)

echo "--- corpus smoke: friendly CLI errors"
if "${CLI}" --programs banana > /dev/null 2>&1; then
  echo "FAIL: bad numeric argument must exit nonzero" >&2
  exit 1
fi
if "${CLI}" --no-such-flag > /dev/null 2>&1; then
  echo "FAIL: unknown flag must exit nonzero" >&2
  exit 1
fi

echo "--- corpus smoke: uninterrupted reference run"
"${CLI}" "${CAMPAIGN[@]}" --corpus-dir "${SMOKE}/full" --jobs 2 > /dev/null

echo "--- corpus smoke: budget-killed run + resume at different --jobs"
"${CLI}" "${CAMPAIGN[@]}" --corpus-dir "${SMOKE}/part" \
    --max-programs 5 --checkpoint-every 2 --jobs 1 > /dev/null
"${CLI}" "${CAMPAIGN[@]}" --corpus-dir "${SMOKE}/part" \
    --resume --jobs 3 > /dev/null

echo "--- corpus smoke: exports must be byte-identical"
"${CLI}" export --corpus-dir "${SMOKE}/full" --out "${SMOKE}/full.jsonl" \
    > /dev/null
"${CLI}" export --corpus-dir "${SMOKE}/part" --out "${SMOKE}/part.jsonl" \
    > /dev/null
# Header + at least one record line, or the comparison is vacuous.
test "$(wc -l < "${SMOKE}/full.jsonl")" -gt 1
cmp "${SMOKE}/full.jsonl" "${SMOKE}/part.jsonl"

echo "--- corpus smoke: every exported record must replay CONFIRMED"
"${CLI}" replay --corpus-dir "${SMOKE}/part" > /dev/null

echo "corpus smoke: OK"

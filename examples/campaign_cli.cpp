/**
 * @file
 * Campaign CLI: run a configurable AMuLeT testing campaign from the
 * command line — choose the defense, contract, trace format, scale, and
 * amplification, exactly like driving the paper's artifact.
 *
 * Usage examples:
 *   ./build/examples/campaign_cli --defense invisispec --programs 100
 *   ./build/examples/campaign_cli --defense speclfb --patched
 *   ./build/examples/campaign_cli --defense stt --contract ARCH-SEQ \
 *        --pages 128 --programs 100
 *   ./build/examples/campaign_cli --defense invisispec --patched \
 *        --ways 2 --mshrs 2            # Table 6 amplification
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/campaign.hh"

namespace
{

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "  --defense NAME    baseline|invisispec|cleanupspec|stt|speclfb\n"
        "  --contract NAME   CT-SEQ|CT-COND|ARCH-SEQ   (default CT-SEQ)\n"
        "  --trace NAME      l1dtlb|l1dtlbl1i|bpstate|memorder|"
        "branchorder\n"
        "  --programs N      test programs (default 50)\n"
        "  --inputs N        base inputs per program (default 6)\n"
        "  --siblings N      siblings per base input (default 4)\n"
        "  --pages N         sandbox pages (default 1; STT uses 128)\n"
        "  --seed N          RNG seed (default 1)\n"
        "  --jobs N          worker threads (default 1; 0 = all cores)\n"
        "  --ways N          L1D ways (amplification)\n"
        "  --mshrs N         L1D MSHRs (amplification)\n"
        "  --patched         apply all published fixes to the defense\n"
        "  --naive           AMuLeT-Naive (restart per input)\n"
        "  --invalidate      invalidate-hook cache reset (default: "
        "conflict fill)\n"
        "  --stop-first      stop at the first confirmed violation\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace amulet;

    core::CampaignConfig cfg;
    cfg.numPrograms = 50;
    cfg.baseInputsPerProgram = 6;
    cfg.siblingsPerBase = 4;
    bool patched = false;
    defense::DefenseKind kind = defense::DefenseKind::Baseline;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--defense") {
            auto k = defense::parseDefenseKind(next());
            if (!k) {
                std::fprintf(stderr, "unknown defense\n");
                return 2;
            }
            kind = *k;
        } else if (arg == "--contract") {
            auto c = contracts::findContract(next());
            if (!c) {
                std::fprintf(stderr, "unknown contract\n");
                return 2;
            }
            cfg.contract = *c;
        } else if (arg == "--trace") {
            auto f = executor::parseTraceFormat(next());
            if (!f) {
                std::fprintf(stderr, "unknown trace format\n");
                return 2;
            }
            cfg.harness.traceFormat = *f;
        } else if (arg == "--programs") {
            cfg.numPrograms = static_cast<unsigned>(atoi(next()));
        } else if (arg == "--inputs") {
            cfg.baseInputsPerProgram = static_cast<unsigned>(atoi(next()));
        } else if (arg == "--siblings") {
            cfg.siblingsPerBase = static_cast<unsigned>(atoi(next()));
        } else if (arg == "--pages") {
            cfg.harness.map.sandboxPages =
                static_cast<unsigned>(atoi(next()));
        } else if (arg == "--seed") {
            cfg.seed = static_cast<std::uint64_t>(atoll(next()));
        } else if (arg == "--jobs") {
            const int jobs = atoi(next());
            if (jobs < 0) {
                std::fprintf(stderr, "--jobs must be >= 0\n");
                return 2;
            }
            cfg.jobs = static_cast<unsigned>(jobs);
        } else if (arg == "--ways") {
            cfg.harness.core.l1d.ways = static_cast<unsigned>(atoi(next()));
        } else if (arg == "--mshrs") {
            cfg.harness.core.l1dMshrs =
                static_cast<unsigned>(atoi(next()));
        } else if (arg == "--patched") {
            patched = true;
        } else if (arg == "--naive") {
            cfg.harness.naiveMode = true;
        } else if (arg == "--invalidate") {
            cfg.harness.prime = executor::PrimeMode::Invalidate;
        } else if (arg == "--stop-first") {
            cfg.stopAtFirstViolation = true;
        } else {
            usage(argv[0]);
            return arg == "--help" ? 0 : 2;
        }
    }

    cfg.harness.defense =
        patched ? defense::DefenseConfig::patched(kind)
                : defense::DefenseConfig{};
    cfg.harness.defense.kind = kind;
    // Paper defaults: CleanupSpec/SpecLFB reset caches via the hook.
    if ((kind == defense::DefenseKind::CleanupSpec ||
         kind == defense::DefenseKind::SpecLfb)) {
        cfg.harness.prime = executor::PrimeMode::Invalidate;
    }
    cfg.gen.map = cfg.harness.map;
    cfg.inputs.map = cfg.harness.map;

    std::printf("campaign: defense=%s%s contract=%s trace=%s programs=%u "
                "inputs=%u x %u pages=%u seed=%llu jobs=%u%s\n\n",
                defense::defenseKindName(kind), patched ? " (patched)" : "",
                cfg.contract.name.c_str(),
                executor::traceFormatName(cfg.harness.traceFormat),
                cfg.numPrograms, cfg.baseInputsPerProgram,
                1 + cfg.siblingsPerBase, cfg.harness.map.sandboxPages,
                static_cast<unsigned long long>(cfg.seed), cfg.jobs,
                cfg.harness.naiveMode ? " NAIVE" : "");

    core::Campaign campaign(cfg);
    const core::CampaignStats stats = campaign.run();
    std::printf("%s\n", stats.report().c_str());
    for (const auto &rec : stats.records)
        std::printf("  %s\n", rec.summary().c_str());
    return 0;
}

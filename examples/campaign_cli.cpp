/**
 * @file
 * Campaign CLI: run a configurable AMuLeT testing campaign from the
 * command line — choose the defense, contract, trace format, scale, and
 * amplification, exactly like driving the paper's artifact — and work
 * with persisted violation corpora.
 *
 * Usage examples:
 *   ./build/examples/campaign_cli --defense invisispec --programs 100
 *   ./build/examples/campaign_cli --defense speclfb --patched
 *   ./build/examples/campaign_cli --defense stt --contract ARCH-SEQ \
 *        --pages 128 --programs 100
 *   ./build/examples/campaign_cli --defense invisispec --patched \
 *        --ways 2 --mshrs 2            # Table 6 amplification
 *
 * Corpus workflow (src/corpus/):
 *   campaign_cli --corpus-dir corpus/ --programs 200       # journal
 *   campaign_cli --corpus-dir corpus/ --resume --jobs 8    # continue
 *   campaign_cli replay --corpus-dir corpus/               # re-confirm
 *   campaign_cli replay --corpus-dir corpus/ --minimize
 *   campaign_cli export --corpus-dir corpus/ --out corpus.jsonl
 *   campaign_cli merge --corpus-dir merged/ shard0/ shard1/
 *
 * Telemetry (src/telemetry/):
 *   campaign_cli --trace-out trace.json ...     # Perfetto-loadable
 *   campaign_cli --heartbeat - --jobs 8 ...     # live JSONL to stdout
 *   campaign_cli stats --corpus-dir corpus/     # persisted metrics
 *
 * Violation forensics (per-instruction pipeline traces):
 *   campaign_cli --corpus-dir corpus/ --uarch-trace-dir corpus/traces
 *   campaign_cli inspect corpus/ 0 --out report0/   # replay + localize
 */

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/campaign.hh"
#include "core/minimizer.hh"
#include "core/root_cause.hh"
#include "corpus/corpus_store.hh"
#include "corpus/replayer.hh"
#include "corpus/serde.hh"
#include "executor/backend.hh"
#include "isa/disasm.hh"
#include "telemetry/uarch_trace.hh"

namespace
{

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [run] [options]\n"
        "       %s replay --corpus-dir DIR [--minimize] [--root-cause]\n"
        "       %s export --corpus-dir DIR [--out FILE]\n"
        "       %s merge  --corpus-dir DST SRC...\n"
        "       %s stats  --corpus-dir DIR [--top N]\n"
        "       %s quarantined --corpus-dir DIR    list quarantined "
        "programs\n"
        "       %s inspect DIR INDEX [--out DIR]   violation forensics\n"
        "run options:\n"
        "  --defense NAME    baseline|invisispec|cleanupspec|stt|speclfb\n"
        "  --contract NAME   CT-SEQ|CT-COND|ARCH-SEQ   (default CT-SEQ)\n"
        "  --trace NAME      l1dtlb|l1dtlbl1i|bpstate|memorder|"
        "branchorder\n"
        "  --programs N      test programs (default 50)\n"
        "  --inputs N        base inputs per program (default 6)\n"
        "  --siblings N      siblings per base input (default 4)\n"
        "  --pages N         sandbox pages (default 1; STT uses 128)\n"
        "  --seed N          RNG seed (default 1)\n"
        "  --jobs N          worker threads (default 1; 0 = all cores)\n"
        "  --backend NAME    executor backend: inproc|async|subprocess\n"
        "                    (default inproc; results are identical, see "
        "--list)\n"
        "  --ways N          L1D ways (amplification)\n"
        "  --mshrs N         L1D MSHRs (amplification)\n"
        "  --boot-insts N    simulator boot-program length (default "
        "8000)\n"
        "  --patched         apply all published fixes to the defense\n"
        "  --no-filter       disable ineffective-test-case filtering\n"
        "  --no-prime-cache  re-simulate conflict-fill priming per input\n"
        "                    (runtime knob; results are identical, see "
        "--list)\n"
        "  --no-ctrace-memo  re-run the contract-trace emulator cold per\n"
        "                    input (runtime knob; results are identical, "
        "see --list)\n"
        "  --no-cycle-skip   simulate every quiescent cycle instead of\n"
        "                    fast-forwarding to the next event (runtime "
        "knob;\n"
        "                    results are identical, see --list)\n"
        "  --naive           AMuLeT-Naive (restart per input)\n"
        "  --invalidate      invalidate-hook cache reset (default: "
        "conflict fill)\n"
        "  --stop-first      stop at the first confirmed violation\n"
        "  --fault-plan SPEC deterministic chaos layer (testing; see\n"
        "                    src/runtime/fault.hh for the grammar; "
        "runtime\n"
        "                    knob — unaffected programs are identical, "
        "see --list)\n"
        "corpus options (run):\n"
        "  --corpus-dir DIR  journal confirmed violations + checkpoints\n"
        "  --resume          continue from DIR's checkpoint\n"
        "  --checkpoint-every N   programs per checkpoint (default 8)\n"
        "  --max-programs N  stop after N programs this process "
        "(resumable)\n"
        "telemetry options (run; observability only — results and "
        "exports are byte-identical on/off):\n"
        "  --trace-out FILE  write a Chrome/Perfetto trace-event JSON "
        "of every\n"
        "                    pipeline stage, backend op, and wire round "
        "trip\n"
        "  --heartbeat FILE  stream live campaign progress as JSONL "
        "('-' = stdout)\n"
        "  --heartbeat-interval SEC   seconds between heartbeat lines "
        "(default 1)\n"
        "  --uarch-trace-dir DIR      write per-instruction pipeline "
        "traces (Konata\n"
        "                    .kanata + Perfetto .pipetrace.json) for "
        "every journaled\n"
        "                    violation into DIR\n"
        "discovery:\n"
        "  --list            print every defense, contract, trace format "
        "and backend\n",
        argv0, argv0, argv0, argv0, argv0, argv0, argv0);
}

/** Flag-value discovery: every name each selector flag accepts. */
void
listChoices()
{
    std::printf("defenses (--defense):");
    for (amulet::defense::DefenseKind kind :
         amulet::defense::allDefenseKinds())
        std::printf(" %s", amulet::defense::defenseKindName(kind));
    std::printf("\ncontracts (--contract):");
    for (const auto &contract : amulet::contracts::allContracts())
        std::printf(" %s", contract.name.c_str());
    std::printf("\ntrace formats (--trace):");
    for (auto format : amulet::executor::allTraceFormats())
        std::printf(" %s", amulet::corpus::traceFormatToken(format));
    std::printf("\nbackends (--backend):");
    for (auto backend : amulet::executor::allBackendKinds())
        std::printf(" %s", amulet::executor::backendKindName(backend));
    // Runtime knobs never change campaign results (violations,
    // signatures, counters, record bytes) — only how/where the same
    // work runs. They are excluded from the corpus config fingerprint.
    std::printf("\nruntime knobs: --jobs --backend --no-prime-cache "
                "--no-ctrace-memo --no-cycle-skip --fault-plan\n"
                "(prime cache + ctrace memo + cycle skip default: on; "
                "fault plan default: off)\n");
}

/**
 * Parse a non-negative integer argument, or die with a friendly message
 * (exit 2) instead of the uncaught-exception/garbage-value behaviour of
 * the stoi/atoi family.
 */
std::uint64_t
parseNum(const char *flag, const char *text)
{
    errno = 0;
    char *end = nullptr;
    const unsigned long long value = std::strtoull(text, &end, 10);
    if (errno != 0 || end == text || *end != '\0' ||
        std::strchr(text, '-') != nullptr) {
        std::fprintf(stderr,
                     "campaign_cli: invalid value '%s' for %s "
                     "(expected a non-negative integer)\n",
                     text, flag);
        std::exit(2);
    }
    return value;
}

unsigned
parseU32(const char *flag, const char *text)
{
    const std::uint64_t value = parseNum(flag, text);
    if (value > ~0u) {
        std::fprintf(stderr, "campaign_cli: value '%s' for %s is too "
                             "large\n",
                     text, flag);
        std::exit(2);
    }
    return static_cast<unsigned>(value);
}

/** Parse a positive seconds value (fractions allowed). */
double
parseSec(const char *flag, const char *text)
{
    errno = 0;
    char *end = nullptr;
    const double value = std::strtod(text, &end);
    if (errno != 0 || end == text || *end != '\0' || !(value > 0)) {
        std::fprintf(stderr,
                     "campaign_cli: invalid value '%s' for %s "
                     "(expected a positive number of seconds)\n",
                     text, flag);
        std::exit(2);
    }
    return value;
}

[[noreturn]] void
unknownOption(const char *argv0, const std::string &arg)
{
    std::fprintf(stderr, "campaign_cli: unknown option '%s'; valid "
                         "options are:\n",
                 arg.c_str());
    usage(argv0);
    std::exit(2);
}

/** Load a corpus (config + journal) or die with a readable error. */
struct LoadedCorpus
{
    amulet::core::CampaignConfig config;
    std::vector<amulet::core::ViolationRecord> records;
};

LoadedCorpus
loadCorpus(const std::string &dir)
{
    using namespace amulet;
    if (dir.empty()) {
        std::fprintf(stderr, "campaign_cli: --corpus-dir is required for "
                             "this subcommand\n");
        std::exit(2);
    }
    try {
        LoadedCorpus corpus;
        corpus.config = corpus::CorpusStore::readConfig(dir);
        corpus.records = corpus::CorpusStore::readJournal(dir);
        return corpus;
    } catch (const corpus::CorpusError &e) {
        std::fprintf(stderr, "campaign_cli: %s\n", e.what());
        std::exit(1);
    }
}

int
cmdReplay(const std::string &dir, bool minimize, bool root_cause)
{
    using namespace amulet;
    const LoadedCorpus corpus = loadCorpus(dir);
    std::printf("replaying %zu record(s) from %s\n",
                corpus.records.size(), dir.c_str());
    executor::SimHarness harness(corpus.config.harness);
    contracts::LeakageModel model(corpus.config.contract);
    unsigned failures = 0;
    for (std::size_t i = 0; i < corpus.records.size(); ++i) {
        const core::ViolationRecord &rec = corpus.records[i];
        const auto outcome = corpus::replayViolation(harness, rec);
        std::printf("[%zu] %s: %s\n", i, rec.summary().c_str(),
                    outcome.confirmed() ? "CONFIRMED" : "FAILED");
        if (!outcome.confirmed()) {
            ++failures;
            std::printf("     %s\n", outcome.detail.c_str());
            continue;
        }
        if (minimize) {
            const isa::Program prog = corpus::reparseProgram(rec);
            const core::MinimizeResult reduced = core::minimizeViolation(
                harness, model, corpus.config.harness.map, prog, rec);
            std::printf("     minimized: %u insts removed (%u checks); "
                        "reduced listing:\n%s\n",
                        reduced.removedInsts, reduced.checks,
                        isa::formatProgram(reduced.program).c_str());
        }
        if (root_cause) {
            const isa::Program prog = corpus::reparseProgram(rec);
            const isa::FlatProgram fp(prog,
                                      corpus.config.harness.map.codeBase);
            std::printf("%s\n",
                        core::renderSideBySide(harness, fp, rec).c_str());
        }
    }
    std::printf("replay: %zu confirmed, %u failed\n",
                corpus.records.size() - failures, failures);
    return failures == 0 ? 0 : 1;
}

int
cmdExport(const std::string &dir, const std::string &out_file)
{
    using namespace amulet;
    if (dir.empty()) {
        std::fprintf(stderr, "campaign_cli: --corpus-dir is required for "
                             "this subcommand\n");
        return 2;
    }
    try {
        // One journal pass serves both the export text and the listing.
        const auto records = corpus::CorpusStore::readJournal(dir);
        const std::string text =
            corpus::CorpusStore::exportCanonical(dir, records);
        if (out_file.empty()) {
            fputs(text.c_str(), stdout);
            return 0;
        }
        std::FILE *f = std::fopen(out_file.c_str(), "wb");
        if (!f) {
            std::fprintf(stderr, "campaign_cli: cannot write %s\n",
                         out_file.c_str());
            return 1;
        }
        const bool wrote =
            std::fwrite(text.data(), 1, text.size(), f) == text.size();
        if (std::fclose(f) != 0 || !wrote) {
            std::fprintf(stderr, "campaign_cli: short write to %s "
                                 "(disk full?)\n",
                         out_file.c_str());
            return 1;
        }
        // The one-line summaries make the listing self-describing
        // without loading full records.
        std::printf("exported %zu record(s) to %s\n", records.size(),
                    out_file.c_str());
        for (const auto &rec : records)
            std::printf("  %s\n", rec.summary().c_str());
        return 0;
    } catch (const corpus::CorpusError &e) {
        std::fprintf(stderr, "campaign_cli: %s\n", e.what());
        return 1;
    }
}

int
cmdStats(const std::string &dir, unsigned top)
{
    using namespace amulet;
    if (dir.empty()) {
        std::fprintf(stderr, "campaign_cli: --corpus-dir is required for "
                             "this subcommand\n");
        return 2;
    }
    const std::string text = corpus::CorpusStore::readMetricsText(dir);
    if (text.empty()) {
        // Corpora journaled before the telemetry layer existed have no
        // metrics.json; that is a state of the corpus, not a usage
        // error (exit 2 so scripts can tell it from malformed data).
        std::fprintf(stderr,
                     "campaign_cli: %s has no metrics.json — the corpus "
                     "predates campaign telemetry or the campaign ran "
                     "without --corpus-dir persistence.\nRe-run the "
                     "campaign (or `run --resume`) with this version to "
                     "collect metrics.\n",
                     dir.c_str());
        return 2;
    }
    try {
        const corpus::Json doc = corpus::Json::parse(text);
        const corpus::Json &metrics = doc.at("metrics");
        auto timer_sec = [&](const char *name) -> double {
            const corpus::Json *m = metrics.find(name);
            return m ? m->at("totalSec").asDouble() : 0.0;
        };

        // Campaign-phase + harness-section breakdown, in pipeline
        // order (the table-2 shape of stats.report()).
        std::printf("time breakdown (worker-seconds):\n");
        static const struct
        {
            const char *metric;
            const char *label;
        } kSections[] = {
            {"time.testGen", "test generation"},
            {"time.ctrace", "contract traces"},
            {"time.filter", "filtering"},
            {"time.startup", "sim startup"},
            {"time.prime", "cache priming"},
            {"time.simulate", "simulation"},
            {"time.traceExtract", "trace extract"},
        };
        for (const auto &section : kSections)
            std::printf("  %-16s %10.3f\n", section.label,
                        timer_sec(section.metric));

        std::printf("counters:\n");
        for (const auto &[name, value] : metrics.members()) {
            const std::string kind = value.at("kind").asStr();
            if (kind == "counter") {
                std::printf("  %-32s %12llu\n", name.c_str(),
                            static_cast<unsigned long long>(
                                value.at("value").asU64()));
            } else if (kind == "gauge") {
                std::printf("  %-32s %12.3f\n", name.c_str(),
                            value.at("value").asDouble());
            }
        }

        if (const corpus::Json *lat = metrics.find("sim.inputLatencySec")) {
            std::printf("sim input latency: p50=%.1fus p95=%.1fus "
                        "p99=%.1fus mean=%.1fus (n=%llu)\n",
                        lat->at("p50").asDouble() * 1e6,
                        lat->at("p95").asDouble() * 1e6,
                        lat->at("p99").asDouble() * 1e6,
                        lat->at("mean").asDouble() * 1e6,
                        static_cast<unsigned long long>(
                            lat->at("count").asU64()));
        }

        if (const corpus::Json *skip = metrics.find("sim.skipCycles")) {
            auto counter_of = [&metrics](const char *name) {
                const corpus::Json *c = metrics.find(name);
                return c ? c->at("value").asU64() : std::uint64_t{0};
            };
            std::printf("cycle skipping: %llu cycles elided over %llu "
                        "windows; window p50=%.0f p95=%.0f p99=%.0f "
                        "mean=%.1f cycles\n",
                        static_cast<unsigned long long>(
                            counter_of("sim.skippedCycles")),
                        static_cast<unsigned long long>(
                            counter_of("sim.skipWindows")),
                        skip->at("p50").asDouble(),
                        skip->at("p95").asDouble(),
                        skip->at("p99").asDouble(),
                        skip->at("mean").asDouble());
        }

        const corpus::Json &spans = doc.at("topSpans");
        std::printf("slowest spans:\n");
        unsigned shown = 0;
        for (const corpus::Json &span : spans.items()) {
            if (shown++ >= top)
                break;
            const std::int64_t program = static_cast<std::int64_t>(
                span.at("program").asDouble());
            std::printf("  %-20s %10.3fs  %-12s",
                        span.at("name").asStr().c_str(),
                        span.at("seconds").asDouble(),
                        span.at("track").asStr().c_str());
            if (program >= 0)
                std::printf("  program %lld",
                            static_cast<long long>(program));
            std::printf("\n");
        }
        if (shown == 0)
            std::printf("  (none recorded)\n");
        return 0;
    } catch (const corpus::CorpusError &e) {
        std::fprintf(stderr, "campaign_cli: malformed metrics.json in %s: "
                             "%s\n",
                     dir.c_str(), e.what());
        return 1;
    }
}

/**
 * Violation forensics (`inspect DIR INDEX`): replay one journaled
 * violation with the per-instruction pipeline tracer attached and write
 * a report directory:
 *
 *   report.txt           replay verdict + the first divergent
 *                        instruction (Spectector-style localization —
 *                        the earliest microarchitectural difference
 *                        between the leaking input pair)
 *   inputA.kanata        Konata-loadable pipeline trace, input A
 *   inputB.kanata        ... input B
 *   inputA.o3pipe.txt    gem5 O3PipeView text, input A
 *   inputB.o3pipe.txt    ... input B
 *   pipeline.trace.json  both runs as one Chrome/Perfetto trace
 *   sidebyside.txt       attacker-observation diff (root-cause view)
 *
 * Purely read-only with respect to the corpus: the replay builds its
 * own throwaway SimHarness from the journaled config.
 */
int
cmdInspect(const std::string &dir, const std::string &index_text,
           std::string out_dir)
{
    using namespace amulet;
    const LoadedCorpus corpus = loadCorpus(dir);
    const std::uint64_t index = parseNum("record index", index_text.c_str());
    if (index >= corpus.records.size()) {
        std::fprintf(stderr,
                     "campaign_cli: record %llu out of range (%s has "
                     "%zu record(s))\n",
                     static_cast<unsigned long long>(index), dir.c_str(),
                     corpus.records.size());
        return 2;
    }
    const core::ViolationRecord &rec = corpus.records[index];
    if (out_dir.empty())
        out_dir = dir + "/inspect/record" + std::to_string(index);

    executor::SimHarness harness(corpus.config.harness);
    telemetry::UarchTracer tracer;
    harness.setUarchTracer(&tracer);
    // replayViolation runs exactly inputA then inputB (each from its
    // saved context), so the tracer captures exactly two runs.
    const corpus::ReplayOutcome outcome =
        corpus::replayViolation(harness, rec);
    harness.setUarchTracer(nullptr);
    std::vector<telemetry::UarchRunTrace> runs = tracer.takeRuns();
    if (runs.size() != 2) {
        std::fprintf(stderr,
                     "campaign_cli: replay produced %zu traced run(s), "
                     "expected 2\n",
                     runs.size());
        return 1;
    }
    runs[0].label = "inputA";
    runs[1].label = "inputB";
    const telemetry::Divergence div =
        telemetry::firstDivergence(runs[0], runs[1]);

    // The side-by-side view re-runs with event logging; the tracer is
    // already detached, so those runs stay out of the pipeline traces.
    const isa::Program prog = corpus::reparseProgram(rec);
    const isa::FlatProgram fp(prog, corpus.config.harness.map.codeBase);
    const std::string side = core::renderSideBySide(harness, fp, rec);

    std::string report;
    report += "violation forensics: " + dir + " record " +
              std::to_string(index) + "\n";
    report += rec.summary() + "\n\n";
    report += "== replay ==\n";
    report += std::string("inputA reproduced: ") +
              (outcome.reproducedA ? "yes" : "no") + "\n";
    report += std::string("inputB reproduced: ") +
              (outcome.reproducedB ? "yes" : "no") + "\n";
    report += std::string("traces diverge:    ") +
              (outcome.diverges ? "yes" : "no") + "\n";
    report += std::string("verdict: ") +
              (outcome.confirmed() ? "CONFIRMED" : "FAILED") + "\n";
    if (!outcome.detail.empty())
        report += "detail: " + outcome.detail + "\n";
    report += "\n== first divergent instruction ==\n";
    if (div.found) {
        char pc_text[32];
        std::snprintf(pc_text, sizeof pc_text, "0x%08" PRIx64, div.pc);
        report += "inst #" + std::to_string(div.idx) + " @" + pc_text +
                  ": " + div.disasm + "\n";
        report += "difference: " + div.what + "\n";
        report += "  inputA: " + div.detailA + "\n";
        report += "  inputB: " + div.detailB + "\n";
    } else {
        report += "(no microarchitectural divergence found — the runs "
                  "executed identically)\n";
    }
    report += "\n== artifacts ==\n"
              "inputA.kanata / inputB.kanata      Konata pipeline "
              "traces\n"
              "inputA.o3pipe.txt / inputB.o3pipe.txt  gem5 O3PipeView "
              "text\n"
              "pipeline.trace.json                Chrome/Perfetto, both "
              "runs\n"
              "sidebyside.txt                     attacker-observation "
              "diff\n";

    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(out_dir, ec);
    if (ec) {
        std::fprintf(stderr, "campaign_cli: cannot create %s: %s\n",
                     out_dir.c_str(), ec.message().c_str());
        return 1;
    }
    bool wrote = true;
    auto put = [&](const char *name, const std::string &text) {
        std::ofstream f(out_dir + "/" + name, std::ios::binary);
        f << text;
        wrote = wrote && f.good();
    };
    put("report.txt", report);
    put("inputA.kanata", telemetry::exportKanata(runs[0]));
    put("inputB.kanata", telemetry::exportKanata(runs[1]));
    put("inputA.o3pipe.txt", telemetry::exportO3PipeView(runs[0]));
    put("inputB.o3pipe.txt", telemetry::exportO3PipeView(runs[1]));
    put("pipeline.trace.json",
        telemetry::exportUarchChromeTrace(runs));
    put("sidebyside.txt", side);
    if (!wrote) {
        std::fprintf(stderr,
                     "campaign_cli: short write under %s (disk full?)\n",
                     out_dir.c_str());
        return 1;
    }

    std::printf("%s", report.c_str());
    std::printf("\nreport written to %s\n", out_dir.c_str());
    return outcome.confirmed() ? 0 : 1;
}

int
cmdMerge(const std::string &dst, const std::vector<std::string> &srcs)
{
    using namespace amulet;
    if (dst.empty() || srcs.empty()) {
        std::fprintf(stderr, "campaign_cli: merge needs --corpus-dir DST "
                             "and at least one SRC dir\n");
        return 2;
    }
    try {
        const std::size_t added = corpus::CorpusStore::mergeInto(dst, srcs);
        std::printf("merged %zu new record(s) into %s\n", added,
                    dst.c_str());
        return 0;
    } catch (const corpus::CorpusError &e) {
        std::fprintf(stderr, "campaign_cli: %s\n", e.what());
        return 1;
    }
}

/**
 * List quarantined programs (`quarantined --corpus-dir DIR`): one
 * `programIndex<TAB>reason` line per quarantined program, in program
 * order. Exit 0 whether or not any exist — an empty list is a healthy
 * corpus, not an error — so scripts gate on the line count.
 */
int
cmdQuarantined(const std::string &dir)
{
    using namespace amulet;
    if (dir.empty()) {
        std::fprintf(stderr, "campaign_cli: --corpus-dir is required for "
                             "this subcommand\n");
        return 2;
    }
    try {
        for (const auto &entry : corpus::CorpusStore::readQuarantined(dir))
            std::printf("%u\t%s\n", entry.programIndex,
                        entry.reason.c_str());
        return 0;
    } catch (const corpus::CorpusError &e) {
        std::fprintf(stderr, "campaign_cli: %s\n", e.what());
        return 1;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace amulet;

    // Subcommand dispatch: "run" is implicit when the first argument is
    // a flag (backwards compatible with the pre-corpus CLI).
    std::string command = "run";
    int first_arg = 1;
    if (argc > 1 && argv[1][0] != '-') {
        command = argv[1];
        first_arg = 2;
        if (command != "run" && command != "replay" && command != "export"
            && command != "merge" && command != "stats"
            && command != "quarantined" && command != "inspect") {
            std::fprintf(stderr, "campaign_cli: unknown subcommand '%s'\n",
                         command.c_str());
            usage(argv[0]);
            return 2;
        }
    }

    core::CampaignConfig cfg;
    cfg.numPrograms = 50;
    cfg.baseInputsPerProgram = 6;
    cfg.siblingsPerBase = 4;
    bool patched = false;
    defense::DefenseKind kind = defense::DefenseKind::Baseline;
    std::string corpus_dir;
    std::string out_file;
    std::vector<std::string> positional;
    bool minimize = false;
    bool root_cause = false;
    unsigned stats_top = 20;

    std::string current_arg;
    // Silently ignoring a flag the subcommand never reads (e.g.
    // `replay --patched`) would let the user misattribute results to a
    // configuration that was never applied.
    auto only = [&](const char *valid_command) {
        if (command != valid_command) {
            std::fprintf(stderr,
                         "campaign_cli: %s is only valid for the %s "
                         "subcommand\n",
                         current_arg.c_str(), valid_command);
            std::exit(2);
        }
    };

    for (int i = first_arg; i < argc; ++i) {
        const std::string arg = argv[i];
        current_arg = arg;
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "campaign_cli: %s needs an argument\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (arg == "--list") {
            listChoices();
            return 0;
        } else if (arg[0] != '-') {
            positional.push_back(arg);
        } else if (arg == "--defense") {
            only("run");
            auto k = defense::parseDefenseKind(next());
            if (!k) {
                std::fprintf(stderr, "campaign_cli: unknown defense\n");
                return 2;
            }
            kind = *k;
        } else if (arg == "--contract") {
            only("run");
            auto c = contracts::findContract(next());
            if (!c) {
                std::fprintf(stderr, "campaign_cli: unknown contract\n");
                return 2;
            }
            cfg.contract = *c;
        } else if (arg == "--trace") {
            only("run");
            auto f = executor::parseTraceFormat(next());
            if (!f) {
                std::fprintf(stderr,
                             "campaign_cli: unknown trace format\n");
                return 2;
            }
            cfg.harness.traceFormat = *f;
        } else if (arg == "--programs") {
            only("run");
            cfg.numPrograms = parseU32("--programs", next());
        } else if (arg == "--inputs") {
            only("run");
            cfg.baseInputsPerProgram = parseU32("--inputs", next());
        } else if (arg == "--siblings") {
            only("run");
            cfg.siblingsPerBase = parseU32("--siblings", next());
        } else if (arg == "--pages") {
            only("run");
            cfg.harness.map.sandboxPages = parseU32("--pages", next());
        } else if (arg == "--seed") {
            only("run");
            cfg.seed = parseNum("--seed", next());
        } else if (arg == "--jobs") {
            only("run");
            cfg.jobs = parseU32("--jobs", next());
        } else if (arg == "--backend") {
            only("run");
            const char *name = next();
            auto b = executor::parseBackendKind(name);
            if (!b) {
                std::fprintf(stderr,
                             "campaign_cli: unknown backend '%s' "
                             "(valid:",
                             name);
                for (auto kind : executor::allBackendKinds())
                    std::fprintf(stderr, " %s",
                                 executor::backendKindName(kind));
                std::fprintf(stderr, ")\n");
                return 2;
            }
            cfg.backend = *b;
        } else if (arg == "--ways") {
            only("run");
            cfg.harness.core.l1d.ways = parseU32("--ways", next());
        } else if (arg == "--mshrs") {
            only("run");
            cfg.harness.core.l1dMshrs = parseU32("--mshrs", next());
        } else if (arg == "--boot-insts") {
            only("run");
            cfg.harness.bootInsts = parseU32("--boot-insts", next());
        } else if (arg == "--patched") {
            only("run");
            patched = true;
        } else if (arg == "--no-filter") {
            only("run");
            cfg.filterIneffective = false;
        } else if (arg == "--no-prime-cache") {
            only("run");
            cfg.harness.primeCache = false;
        } else if (arg == "--no-ctrace-memo") {
            only("run");
            cfg.ctraceMemo = false;
        } else if (arg == "--no-cycle-skip") {
            only("run");
            cfg.harness.cycleSkip = false;
        } else if (arg == "--naive") {
            only("run");
            cfg.harness.naiveMode = true;
        } else if (arg == "--invalidate") {
            only("run");
            cfg.harness.prime = executor::PrimeMode::Invalidate;
        } else if (arg == "--stop-first") {
            only("run");
            cfg.stopAtFirstViolation = true;
        } else if (arg == "--fault-plan") {
            only("run");
            cfg.faultPlan = next();
        } else if (arg == "--corpus-dir") {
            corpus_dir = next();
        } else if (arg == "--resume") {
            only("run");
            cfg.resume = true;
        } else if (arg == "--checkpoint-every") {
            only("run");
            cfg.checkpointEvery = parseU32("--checkpoint-every", next());
        } else if (arg == "--max-programs") {
            only("run");
            cfg.maxProgramsThisRun = parseU32("--max-programs", next());
        } else if (arg == "--trace-out") {
            only("run");
            cfg.telemetry.traceOutPath = next();
        } else if (arg == "--heartbeat") {
            only("run");
            cfg.telemetry.heartbeatPath = next();
        } else if (arg == "--heartbeat-interval") {
            only("run");
            cfg.telemetry.heartbeatIntervalSec =
                parseSec("--heartbeat-interval", next());
        } else if (arg == "--uarch-trace-dir") {
            only("run");
            cfg.telemetry.uarchTraceDir = next();
        } else if (arg == "--top") {
            only("stats");
            stats_top = parseU32("--top", next());
        } else if (arg == "--out") {
            if (command != "export" && command != "inspect") {
                std::fprintf(stderr,
                             "campaign_cli: --out is only valid for the "
                             "export and inspect subcommands\n");
                return 2;
            }
            out_file = next();
        } else if (arg == "--minimize") {
            only("replay");
            minimize = true;
        } else if (arg == "--root-cause") {
            only("replay");
            root_cause = true;
        } else {
            unknownOption(argv[0], arg);
        }
    }

    // Only merge (SRC corpus dirs) and inspect (DIR INDEX) take
    // positional operands; anywhere else a stray operand is a typo that
    // must not be silently ignored.
    if (command != "merge" && command != "inspect" &&
        !positional.empty()) {
        std::fprintf(stderr, "campaign_cli: unexpected argument '%s'\n",
                     positional.front().c_str());
        usage(argv[0]);
        return 2;
    }

    if (command == "replay")
        return cmdReplay(corpus_dir, minimize, root_cause);
    if (command == "export")
        return cmdExport(corpus_dir, out_file);
    if (command == "merge")
        return cmdMerge(corpus_dir, positional);
    if (command == "stats")
        return cmdStats(corpus_dir, stats_top);
    if (command == "quarantined")
        return cmdQuarantined(corpus_dir);
    if (command == "inspect") {
        std::string index_text;
        if (corpus_dir.empty() && positional.size() == 2) {
            corpus_dir = positional[0];
            index_text = positional[1];
        } else if (!corpus_dir.empty() && positional.size() == 1) {
            index_text = positional[0];
        } else {
            std::fprintf(stderr,
                         "campaign_cli: inspect needs a corpus dir and "
                         "a record index\n");
            usage(argv[0]);
            return 2;
        }
        return cmdInspect(corpus_dir, index_text, out_file);
    }

    if (cfg.resume && corpus_dir.empty()) {
        std::fprintf(stderr, "campaign_cli: --resume requires "
                             "--corpus-dir (nothing to resume from)\n");
        return 2;
    }
    cfg.corpusDir = corpus_dir;
    cfg.harness.defense =
        patched ? defense::DefenseConfig::patched(kind)
                : defense::DefenseConfig{};
    cfg.harness.defense.kind = kind;
    // Paper defaults: CleanupSpec/SpecLFB reset caches via the hook.
    if ((kind == defense::DefenseKind::CleanupSpec ||
         kind == defense::DefenseKind::SpecLfb)) {
        cfg.harness.prime = executor::PrimeMode::Invalidate;
    }
    cfg.gen.map = cfg.harness.map;
    cfg.inputs.map = cfg.harness.map;

    std::printf("campaign: defense=%s%s contract=%s trace=%s programs=%u "
                "inputs=%u x %u pages=%u seed=%llu jobs=%u "
                "backend=%s%s%s%s%s%s%s%s%s\n\n",
                defense::defenseKindName(kind), patched ? " (patched)" : "",
                cfg.contract.name.c_str(),
                executor::traceFormatName(cfg.harness.traceFormat),
                cfg.numPrograms, cfg.baseInputsPerProgram,
                1 + cfg.siblingsPerBase, cfg.harness.map.sandboxPages,
                static_cast<unsigned long long>(cfg.seed), cfg.jobs,
                executor::backendKindName(cfg.backend),
                cfg.filterIneffective ? "" : " NOFILTER",
                cfg.harness.primeCache ? "" : " NOPRIMECACHE",
                cfg.ctraceMemo ? "" : " NOCTRACEMEMO",
                cfg.harness.cycleSkip ? "" : " NOCYCLESKIP",
                cfg.harness.naiveMode ? " NAIVE" : "",
                cfg.corpusDir.empty() ? "" : " corpus=",
                cfg.corpusDir.c_str(), cfg.resume ? " (resume)" : "");

    try {
        core::Campaign campaign(cfg);
        const core::CampaignStats stats = campaign.run();
        std::printf("%s\n", stats.report().c_str());
        for (const auto &rec : stats.records)
            std::printf("  %s\n", rec.summary().c_str());
    } catch (const corpus::CorpusError &e) {
        std::fprintf(stderr, "campaign_cli: %s\n", e.what());
        return 1;
    } catch (const std::exception &e) {
        // Telemetry I/O failures (unwritable --trace-out/--heartbeat
        // paths) surface here.
        std::fprintf(stderr, "campaign_cli: %s\n", e.what());
        return 1;
    }
    return 0;
}

/**
 * @file
 * Quickstart: fuzz the unprotected out-of-order CPU against the CT-SEQ
 * contract until AMuLeT finds a Spectre-class contract violation, then
 * print the violating program, the input pair, and the trace difference.
 *
 * Build & run:   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/campaign.hh"

int
main()
{
    using namespace amulet;

    core::CampaignConfig cfg;
    cfg.harness.defense.kind = defense::DefenseKind::Baseline;
    cfg.harness.prime = executor::PrimeMode::ConflictFill;
    cfg.contract = contracts::ctSeq();
    cfg.gen.map = cfg.harness.map;
    cfg.inputs.map = cfg.harness.map;
    cfg.numPrograms = 200;
    cfg.baseInputsPerProgram = 6;
    cfg.siblingsPerBase = 4;
    cfg.seed = 2025;
    cfg.stopAtFirstViolation = true;

    std::printf("AMuLeT quickstart: fuzzing the baseline O3 CPU against "
                "%s...\n\n",
                cfg.contract.name.c_str());

    core::Campaign campaign(cfg);
    const core::CampaignStats stats = campaign.run();

    std::printf("%s\n", stats.report().c_str());
    if (stats.records.empty()) {
        std::printf("no violation found; try more programs or another "
                    "seed\n");
        return 1;
    }

    const core::ViolationRecord &v = stats.records.front();
    std::printf("First violation: %s\n\nViolating program:\n%s\n",
                v.summary().c_str(), v.programText.c_str());

    std::printf("Input A id=%llu, Input B id=%llu "
                "(same contract trace, hash 0x%llx)\n",
                static_cast<unsigned long long>(v.inputA.id),
                static_cast<unsigned long long>(v.inputB.id),
                static_cast<unsigned long long>(v.ctraceHash));
    std::printf("uarch trace A: %s\n",
                v.traceA.describe(16).c_str());
    std::printf("uarch trace B: %s\n",
                v.traceB.describe(16).c_str());
    std::printf("\ndiffering addresses:");
    for (Addr w : executor::traceDiffAddrs(v.traceA, v.traceB))
        std::printf(" 0x%llx", static_cast<unsigned long long>(w));
    std::printf("\n");
    return 0;
}

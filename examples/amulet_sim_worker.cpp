/**
 * @file
 * Out-of-process simulator worker: the executable half of the
 * SubprocessBackend (src/executor/backend_subprocess.hh).
 *
 * Speaks the JSONL protocol of src/executor/sim_protocol.hh on
 * stdin/stdout: one request line in, one reply line out, until EOF or
 * an "exit" op. The worker owns exactly one SimHarness, configured by
 * the "hello" message; programs arrive as disassembly and are reparsed
 * through the assembler — the same round trip the violation corpus
 * relies on.
 *
 * Test hooks (both count state-mutating operations — batch/run/
 * classify — and fire *before* executing the op, so recovery reruns a
 * complete operation):
 *
 *   AMULET_SIM_WORKER_CRASH_AFTER=N   die (exit 42) on the (N+1)-th
 *                                     mutating op.
 *   AMULET_SIM_WORKER_HANG_AFTER=N    wedge forever (pause loop) on
 *                                     the (N+1)-th mutating op; the
 *                                     parent's per-op deadline
 *                                     (BackendOptions::opTimeoutSec /
 *                                     $AMULET_SIM_OP_TIMEOUT_SEC) must
 *                                     kill and restart it.
 *
 * tests/test_backend.cc uses these to prove that backend crash and
 * hang recovery reproduce an uninterrupted campaign byte for byte.
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>

#include <unistd.h>

#include "core/signature.hh"
#include "corpus/serde.hh"
#include "executor/sim_harness.hh"
#include "executor/sim_protocol.hh"
#include "isa/assembler.hh"
#include "telemetry/uarch_trace.hh"

namespace
{

using namespace amulet;
using corpus::Json;
using executor::protocol::errorReply;
using executor::protocol::okReply;

struct Worker
{
    std::optional<executor::SimHarness> harness;
    std::optional<isa::Program> program; ///< keeps the source alive
    std::optional<isa::FlatProgram> flat;
    unsigned long crashAfter = 0; ///< 0: never (test hook)
    unsigned long hangAfter = 0;  ///< 0: never (test hook)
    unsigned long mutatingOps = 0;

    executor::SimHarness &
    sim()
    {
        if (!harness)
            throw std::runtime_error("no hello received yet");
        return *harness;
    }

    /** Count a state-mutating op; fire the fault-injection hooks. */
    void
    mutatingOp()
    {
        if (crashAfter == 0 && hangAfter == 0)
            return;
        ++mutatingOps;
        if (crashAfter > 0 && mutatingOps > crashAfter)
            std::_Exit(42);
        if (hangAfter > 0 && mutatingOps > hangAfter) {
            // Wedge without dying: the parent sees silence, not EOF,
            // and only its per-operation deadline can save it.
            for (;;)
                pause();
        }
    }

    /** Pipeline tracing for one request (protocol v3 "utrace"). The
     *  RAII shape guarantees the tracer detaches even when the run
     *  throws, so a failed op cannot leave the harness tracing. */
    struct TraceScope
    {
        executor::SimHarness &sim;
        telemetry::UarchTracer tracer;
        bool on;

        TraceScope(executor::SimHarness &h, const Json &req)
            : sim(h), on(false)
        {
            const Json *flag = req.find("utrace");
            on = flag && flag->asBool();
            if (on)
                sim.setUarchTracer(&tracer);
        }

        ~TraceScope()
        {
            if (on)
                sim.setUarchTracer(nullptr);
        }

        /** Attach the traced runs to @p reply as "utraces". */
        void
        attach(Json &reply)
        {
            if (!on)
                return;
            Json traces = Json::array();
            for (const telemetry::UarchRunTrace &run : tracer.takeRuns())
                traces.push(
                    executor::protocol::uarchRunTraceToJson(run));
            reply.set("utraces", std::move(traces));
        }
    };

    Json
    handle(const Json &req)
    {
        const std::string &op = req.at("op").asStr();
        if (op == "hello") {
            const unsigned version = req.at("version").asUnsigned();
            if (version != executor::protocol::kProtocolVersion) {
                return errorReply("protocol version mismatch: got " +
                                  std::to_string(version));
            }
            executor::HarnessConfig cfg =
                corpus::harnessFromJson(req.at("harness"));
            // primeCache/cycleSkip travel outside the harness config:
            // runtime knobs excluded from the corpus fingerprint.
            if (const Json *pc = req.find("primeCache"))
                cfg.primeCache = pc->asBool();
            if (const Json *cs = req.find("cycleSkip"))
                cfg.cycleSkip = cs->asBool();
            harness.emplace(std::move(cfg));
            return okReply();
        }
        if (op == "load") {
            program = isa::assemble(req.at("program").asStr());
            flat.emplace(*program, sim().config().map.codeBase);
            sim().loadProgram(&*flat);
            return okReply();
        }
        if (op == "save") {
            Json reply = okReply();
            reply.set("ctx", corpus::toJson(sim().saveContext()));
            return reply;
        }
        if (op == "restore") {
            sim().restoreContext(corpus::contextFromJson(req.at("ctx")));
            return okReply();
        }
        if (op == "batch") {
            mutatingOp();
            std::vector<arch::Input> inputs;
            for (const Json &i : req.at("inputs").items())
                inputs.push_back(corpus::inputFromJson(i));
            std::vector<const arch::Input *> batch;
            batch.reserve(inputs.size());
            for (const arch::Input &input : inputs)
                batch.push_back(&input);
            std::optional<std::vector<executor::TraceFormat>> extras;
            if (const Json *e = req.find("extras"))
                extras = executor::protocol::traceFormatsFromJson(*e);
            TraceScope trace(sim(), req);
            const auto out =
                sim().runBatch(batch, extras ? &*extras : nullptr);
            const Json body = executor::protocol::batchOutputToJson(out);
            Json reply = okReply();
            for (const auto &[key, value] : body.members())
                reply.set(key, value);
            trace.attach(reply);
            reply.set("endCtx", corpus::toJson(sim().saveContext()));
            // Cumulative breakdown rides along so the parent loses at
            // most one operation's worth of timing when this worker
            // later dies (backend_subprocess times accounting).
            reply.set("times",
                      executor::protocol::timesToJson(sim().times()));
            return reply;
        }
        if (op == "run") {
            mutatingOp();
            const arch::Input input =
                corpus::inputFromJson(req.at("input"));
            TraceScope trace(sim(), req);
            const auto out = sim().runInput(input);
            Json reply = okReply();
            trace.attach(reply);
            reply.set("trace", corpus::toJson(out.trace));
            reply.set("hitCycleCap",
                      Json::boolean(out.run.hitCycleCap));
            Json extra_traces = Json::array();
            if (const Json *e = req.find("extras")) {
                for (executor::TraceFormat fmt :
                     executor::protocol::traceFormatsFromJson(*e)) {
                    extra_traces.push(
                        corpus::toJson(sim().extractExtra(fmt)));
                }
            }
            reply.set("extras", std::move(extra_traces));
            reply.set("endCtx", corpus::toJson(sim().saveContext()));
            // Cumulative breakdown rides along so the parent loses at
            // most one operation's worth of timing when this worker
            // later dies (backend_subprocess times accounting).
            reply.set("times",
                      executor::protocol::timesToJson(sim().times()));
            return reply;
        }
        if (op == "classify") {
            mutatingOp();
            if (!flat)
                return errorReply("classify with no loaded program");
            const std::string signature = core::classifyViolation(
                sim(), *flat, corpus::inputFromJson(req.at("inputA")),
                corpus::inputFromJson(req.at("inputB")),
                corpus::contextFromJson(req.at("ctxA")),
                corpus::contextFromJson(req.at("ctxB")));
            Json reply = okReply();
            reply.set("signature", Json::str(signature));
            reply.set("endCtx", corpus::toJson(sim().saveContext()));
            // Cumulative breakdown rides along so the parent loses at
            // most one operation's worth of timing when this worker
            // later dies (backend_subprocess times accounting).
            reply.set("times",
                      executor::protocol::timesToJson(sim().times()));
            return reply;
        }
        if (op == "times") {
            Json reply = okReply();
            reply.set("times",
                      executor::protocol::timesToJson(sim().times()));
            return reply;
        }
        return errorReply("unknown op: " + op);
    }
};

} // namespace

int
main()
{
    Worker worker;
    if (const char *env = std::getenv("AMULET_SIM_WORKER_CRASH_AFTER"))
        worker.crashAfter = std::strtoul(env, nullptr, 10);
    if (const char *env = std::getenv("AMULET_SIM_WORKER_HANG_AFTER"))
        worker.hangAfter = std::strtoul(env, nullptr, 10);

    std::string line;
    while (std::getline(std::cin, line)) {
        if (line.empty())
            continue;
        Json reply;
        bool exiting = false;
        std::string op = "?";
        try {
            const Json req = Json::parse(line);
            op = req.at("op").asStr();
            if (op == "exit") {
                reply = okReply();
                exiting = true;
            } else {
                reply = worker.handle(req);
            }
        } catch (const std::exception &e) {
            reply = errorReply("op " + op + ": " + e.what());
        }
        const std::string text = reply.dump();
        std::fwrite(text.data(), 1, text.size(), stdout);
        std::fputc('\n', stdout);
        std::fflush(stdout);
        if (exiting)
            return 0;
    }
    return 0;
}

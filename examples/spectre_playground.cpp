/**
 * @file
 * Spectre playground: run hand-written Spectre-v1 (memory- and
 * register-secret) and Spectre-v4 attack programs against every
 * countermeasure, in its as-published (buggy) and patched variant, and
 * print the resulting leak matrix. The programs are written in the same
 * listing syntax as the paper's figures.
 *
 * Build & run:   ./build/examples/spectre_playground
 */

#include <cstdio>
#include <string>

#include "executor/sim_harness.hh"
#include "isa/assembler.hh"

namespace
{

using namespace amulet;

std::string
slowChain(const char *reg, int imuls)
{
    std::string s = "    MOV " + std::string(reg) +
                    ", qword ptr [R14 + 0]\n";
    for (int i = 0; i < imuls; ++i)
        s += "    IMUL " + std::string(reg) + ", " + std::string(reg) +
             "\n";
    return s;
}

std::string
trailing()
{
    std::string s = "    MOV R11, qword ptr [R14 + 8]\n";
    for (int i = 0; i < 40; ++i)
        s += "    IMUL R11, R11\n";
    return s;
}

isa::Program
spectreV1Mem()
{
    std::string t = ".bb_main.0:\n" + slowChain("RAX", 8) +
                    "    TEST RAX, RAX\n"
                    "    JNE .bb_main.1\n"
                    "    AND RCX, 0b111111111111\n"
                    "    MOV RBX, qword ptr [R14 + RCX]\n"
                    "    AND RBX, 0b111110000000\n"
                    "    MOV RDX, qword ptr [R14 + RBX]\n"
                    "    JMP .bb_main.1\n"
                    ".bb_main.1:\n" +
                    trailing();
    return isa::assemble(t);
}

isa::Program
spectreV1Reg()
{
    std::string t = ".bb_main.0:\n" + slowChain("RAX", 8) +
                    "    TEST RAX, RAX\n"
                    "    JNE .bb_main.1\n"
                    "    AND RBX, 0b111110000000\n"
                    "    MOV RDX, qword ptr [R14 + RBX]\n"
                    "    JMP .bb_main.1\n"
                    ".bb_main.1:\n" +
                    trailing();
    return isa::assemble(t);
}

isa::Program
spectreV4()
{
    std::string t = ".bb_main.0:\n" + slowChain("RAX", 6) +
                    "    AND RAX, 0\n"
                    "    OR RAX, 64\n"
                    "    MOV qword ptr [R14 + RAX], RDI\n"
                    "    MOV RBX, qword ptr [R14 + 64]\n"
                    "    AND RBX, 0b111110000000\n"
                    "    MOV RDX, qword ptr [R14 + RBX]\n" +
                    trailing();
    return isa::assemble(t);
}

bool
leaks(defense::DefenseKind kind, bool patched, const isa::Program &prog,
      bool reg_secret, bool v4)
{
    executor::HarnessConfig cfg;
    cfg.defense = patched ? defense::DefenseConfig::patched(kind)
                          : defense::DefenseConfig{};
    cfg.defense.kind = kind;
    cfg.prime = (kind == defense::DefenseKind::CleanupSpec ||
                 kind == defense::DefenseKind::SpecLfb)
                    ? executor::PrimeMode::Invalidate
                    : executor::PrimeMode::ConflictFill;
    cfg.bootInsts = 2000;

    executor::SimHarness harness(cfg);
    const isa::FlatProgram fp(prog, cfg.map.codeBase);
    harness.loadProgram(&fp);

    arch::Input a;
    a.regs.fill(0);
    a.regs[isa::regIndex(isa::Reg::Rcx)] = 0x200;
    a.sandbox.assign(cfg.map.sandboxSize(), 0);
    a.sandbox[0] = 3;
    a.sandbox[8] = 7;
    arch::Input b = a;
    b.id = 1;
    if (reg_secret) {
        a.regs[isa::regIndex(isa::Reg::Rbx)] = 0x080;
        b.regs[isa::regIndex(isa::Reg::Rbx)] = 0x780;
    } else if (v4) {
        a.sandbox[0x41] = 0x01;
        b.sandbox[0x41] = 0x07;
    } else {
        a.sandbox[0x201] = 0x01;
        b.sandbox[0x201] = 0x07;
    }

    const auto ta = harness.runInput(a).trace;
    const auto tb = harness.runInput(b).trace;
    return !(ta == tb);
}

} // namespace

int
main()
{
    using defense::DefenseKind;

    const isa::Program v1_mem = spectreV1Mem();
    const isa::Program v1_reg = spectreV1Reg();
    const isa::Program v4 = spectreV4();

    std::printf("Hand-written Spectre attacks vs. every countermeasure\n");
    std::printf("(LEAK = final L1D+TLB state differs for two "
                "contract-equivalent inputs)\n\n");
    std::printf("%-22s %-14s %-14s %-14s\n", "target",
                "v1 (mem secret)", "v1 (reg secret)", "v4 (store bypass)");

    for (DefenseKind kind : defense::allDefenseKinds()) {
        for (bool patched : {false, true}) {
            if (kind == DefenseKind::Baseline && patched)
                continue;
            std::string name = defense::defenseKindName(kind);
            if (kind != DefenseKind::Baseline)
                name += patched ? " (patched)" : " (as published)";
            std::printf("%-22s %-14s %-14s %-14s\n", name.c_str(),
                        leaks(kind, patched, v1_mem, false, false)
                            ? "LEAK" : "ok",
                        leaks(kind, patched, v1_reg, true, false)
                            ? "LEAK" : "ok",
                        leaks(kind, patched, v4, false, true)
                            ? "LEAK" : "ok");
        }
    }
    std::printf(
        "\nExpected:\n"
        " - the baseline leaks all three patterns;\n"
        " - as-published InvisiSpec leaks via UV1 speculative evictions "
        "(fixed by the patch);\n"
        " - as-published SpecLFB leaks register secrets via UV6 (fixed "
        "by the patch);\n"
        " - CleanupSpec rolls these plain-load patterns back (its bugs "
        "need stores/splits/aliasing);\n"
        " - STT leaks *register* secrets by design in both variants: "
        "pre-existing register state is\n   untainted, which is why the "
        "paper tests STT against ARCH-SEQ (registers exposed in the\n"
        "   contract) rather than CT-SEQ.\n");
    return 0;
}

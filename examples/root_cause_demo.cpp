/**
 * @file
 * Root-cause workflow demo (§3.3): fuzz the as-published CleanupSpec,
 * take the first confirmed violations, and render the paper's side-by-
 * side debug-log comparison (the Table 9-style view) for each unique
 * signature found.
 *
 * Build & run:   ./build/examples/root_cause_demo
 *
 * With a corpus directory argument the demo runs entirely offline: it
 * loads the journaled violations (see src/corpus/) instead of fuzzing,
 * which is how root-causing works from a persisted campaign:
 *
 *   ./build/examples/campaign_cli --defense cleanupspec \
 *        --corpus-dir /tmp/cs-corpus
 *   ./build/examples/root_cause_demo /tmp/cs-corpus
 */

#include <cstdio>
#include <set>

#include "core/campaign.hh"
#include "core/root_cause.hh"
#include "corpus/corpus_store.hh"
#include "corpus/serde.hh"
#include "isa/assembler.hh"

int
main(int argc, char **argv)
{
    using namespace amulet;

    core::CampaignConfig cfg;
    std::vector<core::ViolationRecord> records;

    if (argc > 1) {
        // Offline mode: config + records come from the corpus journal.
        const std::string dir = argv[1];
        try {
            cfg = corpus::CorpusStore::readConfig(dir);
            records = corpus::CorpusStore::readJournal(dir);
        } catch (const corpus::CorpusError &e) {
            std::fprintf(stderr, "root_cause_demo: %s\n", e.what());
            return 1;
        }
        std::printf("Loaded %zu violation(s) from corpus %s\n\n",
                    records.size(), dir.c_str());
    } else {
        cfg.harness.defense.kind = defense::DefenseKind::CleanupSpec;
        cfg.harness.prime = executor::PrimeMode::Invalidate;
        cfg.contract = contracts::ctSeq();
        cfg.gen.map = cfg.harness.map;
        cfg.inputs.map = cfg.harness.map;
        cfg.numPrograms = 120;
        cfg.baseInputsPerProgram = 6;
        cfg.siblingsPerBase = 4;
        cfg.seed = 17;

        std::printf("Fuzzing the as-published CleanupSpec (CT-SEQ)...\n\n");
        core::Campaign campaign(cfg);
        const core::CampaignStats stats = campaign.run();
        std::printf("%s\n", stats.report().c_str());
        records = stats.records;
    }

    executor::SimHarness harness(cfg.harness);
    std::set<std::string> shown;
    for (const auto &rec : records) {
        if (!shown.insert(rec.signature).second)
            continue; // one side-by-side view per unique signature
        std::printf("=============================================\n");
        std::printf("Violating program:\n%s\n", rec.programText.c_str());
        const isa::Program prog = isa::assemble(rec.programText);
        const isa::FlatProgram fp(prog, cfg.harness.map.codeBase);
        std::printf("%s\n",
                    core::renderSideBySide(harness, fp, rec).c_str());
    }
    if (shown.empty())
        std::printf("no violations found at this scale; increase "
                    "--programs or change the seed\n");
    return 0;
}

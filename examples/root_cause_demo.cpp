/**
 * @file
 * Root-cause workflow demo (§3.3): fuzz the as-published CleanupSpec,
 * take the first confirmed violations, and render the paper's side-by-
 * side debug-log comparison (the Table 9-style view) for each unique
 * signature found.
 *
 * Build & run:   ./build/examples/root_cause_demo
 */

#include <cstdio>
#include <set>

#include "core/campaign.hh"
#include "core/root_cause.hh"
#include "isa/assembler.hh"

int
main()
{
    using namespace amulet;

    core::CampaignConfig cfg;
    cfg.harness.defense.kind = defense::DefenseKind::CleanupSpec;
    cfg.harness.prime = executor::PrimeMode::Invalidate;
    cfg.contract = contracts::ctSeq();
    cfg.gen.map = cfg.harness.map;
    cfg.inputs.map = cfg.harness.map;
    cfg.numPrograms = 120;
    cfg.baseInputsPerProgram = 6;
    cfg.siblingsPerBase = 4;
    cfg.seed = 17;

    std::printf("Fuzzing the as-published CleanupSpec (CT-SEQ)...\n\n");
    core::Campaign campaign(cfg);
    const core::CampaignStats stats = campaign.run();
    std::printf("%s\n", stats.report().c_str());

    executor::SimHarness harness(cfg.harness);
    std::set<std::string> shown;
    for (const auto &rec : stats.records) {
        if (!shown.insert(rec.signature).second)
            continue; // one side-by-side view per unique signature
        std::printf("=============================================\n");
        std::printf("Violating program:\n%s\n", rec.programText.c_str());
        const isa::Program prog = isa::assemble(rec.programText);
        const isa::FlatProgram fp(prog, cfg.harness.map.codeBase);
        std::printf("%s\n",
                    core::renderSideBySide(harness, fp, rec).c_str());
    }
    if (shown.empty())
        std::printf("no violations found at this scale; increase "
                    "--programs or change the seed\n");
    return 0;
}

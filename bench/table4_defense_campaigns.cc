/**
 * @file
 * Table 4: testing InvisiSpec, CleanupSpec, STT, SpecLFB, and the baseline
 * with AMuLeT-Opt. Shapes to compare: every as-published target is found
 * in violation; CleanupSpec/SpecLFB campaigns run ~4-5x faster than
 * InvisiSpec (invalidation-hook reset vs conflict-fill priming); STT is
 * by far the slowest and its (KV3) detection takes the longest.
 */

#include <cstdio>

#include "bench_util.hh"

int
main()
{
    using namespace bench_util;
    header("Campaigns against the baseline and all four countermeasures",
           "Table 4");

    std::printf("%-12s %-9s %-9s %-12s %-8s %-12s %-10s\n", "Defense",
                "Contract", "Detected", "Avg detect", "Unique",
                "Throughput", "Time");
    std::printf("%-12s %-9s %-9s %-12s %-8s %-12s %-10s\n", "", "", "",
                "(sec)", "viol.", "(tests/s)", "(sec)");

    // All five defense campaigns form one scheduling matrix; set
    // AMULET_BENCH_JOBS to run them concurrently (identical counts,
    // shorter wall clock).
    runtime::MatrixRunner matrix(matrixJobs());
    for (auto kind : defense::allDefenseKinds()) {
        core::CampaignConfig cfg = campaignFor(kind);
        cfg.numPrograms = scaled(kind == defense::DefenseKind::Stt ? 80
                                                                   : 60);
        matrix.add(defense::defenseKindName(kind), cfg);
    }

    for (const auto &result : matrix.runAll()) {
        const auto &stats = result.stats;

        // Average detection time over confirmed violations.
        double avg_detect = -1;
        if (!stats.records.empty()) {
            double sum = 0;
            for (const auto &r : stats.records)
                sum += r.detectSeconds;
            avg_detect = sum / stats.records.size();
        }

        std::printf("%-12s %-9s %-9s %-12.2f %-8zu %-12.0f %-10.1f\n",
                    result.label.c_str(),
                    result.config.contract.name.c_str(),
                    stats.detected() ? "YES" : "no", avg_detect,
                    stats.uniqueViolations(), stats.throughput(),
                    stats.wallSeconds);
        for (const auto &[sig, count] : stats.signatureCounts) {
            std::printf("             signature %-28s x%llu\n",
                        sig.c_str(),
                        static_cast<unsigned long long>(count));
        }
    }
    std::printf(
        "\nPaper shapes: all five rows detect violations; InvisiSpec's "
        "throughput is lower than\nCleanupSpec/SpecLFB (conflict-fill "
        "priming vs invalidation hook); STT is slowest with the\nlongest "
        "detection time. Expected signatures: baseline spectre-v1, "
        "InvisiSpec UV1,\nCleanupSpec UV3/UV5, SpecLFB UV6, STT KV3.\n");
    return 0;
}

/**
 * @file
 * Table 9: CleanupSpec UV5 "too much cleaning" — a transient load aliases
 * a non-speculative load's line; rollback erases the non-speculative
 * footprint. Prints the operation sequence for the two inputs (the
 * paper's Table 9 view) and shows the noClean mitigation.
 */

#include "bench_util.hh"
#include "demo_util.hh"

int
main()
{
    using namespace demo_util;
    bench_util::header("CleanupSpec UV5: too much cleaning", "Table 9");

    std::string text;
    text += ".bb_main.0:\n";
    text += slowChain("RAX", 1);
    text += "    AND RAX, 0\n";
    text += "    MOV R10, qword ptr [R14 + RAX + 0x140]\n"; // NSL (late)
    text += slowChain("R12", 6, 16);
    text += "    TEST R12, R12\n";
    text += "    JNE .bb_main.1\n"; // mispredicted
    text += "    AND RBX, 0b111111000000\n";
    text += "    MOV RDX, qword ptr [R14 + RBX]\n"; // SL (early, dead reg)
    text += "    JMP .bb_main.1\n";
    text += ".bb_main.1:\n";
    text += trailingWork();
    const isa::Program prog = isa::assemble(text);
    std::printf("%s\n", isa::formatProgram(prog).c_str());

    for (bool no_clean : {false, true}) {
        executor::HarnessConfig cfg;
        cfg.defense.kind = defense::DefenseKind::CleanupSpec;
        cfg.defense.cleanupNoCleanPatch = no_clean;
        cfg.prime = executor::PrimeMode::Invalidate;
        cfg.bootInsts = 2000;
        executor::SimHarness harness(cfg);
        const isa::FlatProgram fp(prog, cfg.map.codeBase);

        arch::Input a = zeroInput(cfg.map);
        arch::Input b = a;
        a.regs[isa::regIndex(isa::Reg::Rbx)] = 0x140; // SL aliases NSL
        b.regs[isa::regIndex(isa::Reg::Rbx)] = 0x680; // disjoint
        b.id = 1;

        std::printf("--- %s ---\n",
                    no_clean ? "with the noClean mitigation"
                             : "as published (unconditional rollback)");
        const PairResult r = runPair(harness, fp, a, b);
        printDiff(r);
        if (!no_clean) {
            std::printf("\nTable 9-style operation sequence (Input A "
                        "aliases; Input B does not):\n");
            printEventTable(harness, fp, a, b);
        }
        std::printf("\n");
    }
    std::printf("Expected: as published, input A's rollback erases the "
                "non-speculative line 0x800140\n(CleanupOverclean) and "
                "the traces differ; the commit-time noClean mitigation "
                "keeps it.\n");
    return 0;
}

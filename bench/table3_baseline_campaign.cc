/**
 * @file
 * Table 3: testing the baseline out-of-order CPU, Naive vs Opt, against
 * CT-SEQ and CT-COND. Shapes to compare: Opt is ~9-12x faster; Opt finds
 * more CT-SEQ violations (conflict-fill priming detects evictions too);
 * CT-COND (Spectre-v4 class) detections are much rarer than CT-SEQ
 * (Spectre-v1) for both.
 */

#include <cstdio>
#include <thread>

#include "bench_util.hh"

int
main()
{
    using namespace bench_util;
    header("Baseline O3 campaign, Naive vs Opt x {CT-SEQ, CT-COND}",
           "Table 3");

    struct Cell
    {
        double minutes;
        std::uint64_t violations;
        double detectSec;
    };
    Cell cells[2][2]; // [contract][mode]
    const char *contracts[2] = {"CT-SEQ", "CT-COND"};

    // The 2x2 matrix runs as one batch of campaigns; per-campaign
    // results are identical at any concurrency.
    runtime::MatrixRunner matrix(matrixJobs());
    for (int c = 0; c < 2; ++c) {
        for (int mode = 0; mode < 2; ++mode) {
            const bool naive = mode == 0;
            core::CampaignConfig cfg = campaignFor(
                defense::DefenseKind::Baseline, false, contracts[c]);
            cfg.harness.naiveMode = naive;
            // Naive is an order of magnitude slower; scale it down so the
            // bench terminates quickly, and report per-test metrics.
            cfg.numPrograms = scaled(naive ? 12 : 60);
            cfg.collectSignatures = false;
            matrix.add(std::string(contracts[c]) +
                           (naive ? "/naive" : "/opt"),
                       cfg);
        }
    }
    const auto results = matrix.runAll();
    for (int c = 0; c < 2; ++c) {
        for (int mode = 0; mode < 2; ++mode) {
            const auto &stats = results[c * 2 + mode].stats;
            // Normalize to seconds per 1000 test cases (the two columns
            // run different program counts).
            cells[c][mode].minutes =
                stats.testCases
                    ? stats.wallSeconds * 1000.0 / stats.testCases
                    : 0.0;
            // Normalize violation counts per 1000 test cases so the
            // Naive/Opt comparison is apples-to-apples.
            cells[c][mode].violations =
                stats.testCases
                    ? stats.violatingTestCases * 1000 / stats.testCases
                    : 0;
            cells[c][mode].detectSec = stats.firstDetectSeconds;
        }
    }

    std::printf("%-28s | %-10s | %10s %10s %8s\n", "Metric", "Contract",
                "Naive", "Opt", "Ratio");
    for (int c = 0; c < 2; ++c) {
        std::printf("%-28s | %-10s | %10.2f %10.2f %7.1fx\n",
                    "Time (s per 1k tests)", contracts[c],
                    cells[c][0].minutes, cells[c][1].minutes,
                    cells[c][1].minutes > 0
                        ? cells[c][0].minutes / cells[c][1].minutes
                        : 0.0);
    }
    for (int c = 0; c < 2; ++c) {
        std::printf("%-28s | %-10s | %10llu %10llu\n",
                    "Violations / 1k tests", contracts[c],
                    static_cast<unsigned long long>(cells[c][0].violations),
                    static_cast<unsigned long long>(
                        cells[c][1].violations));
    }
    for (int c = 0; c < 2; ++c) {
        auto fmt = [](double d) { return d < 0 ? -1.0 : d; };
        std::printf("%-28s | %-10s | %10.1f %10.1f\n",
                    "Detection time (s; -1 none)", contracts[c],
                    fmt(cells[c][0].detectSec), fmt(cells[c][1].detectSec));
    }
    std::printf(
        "\nNote: the Naive column runs fewer programs (it is ~10x slower "
        "per input);\nviolations are reported per 1000 test cases. "
        "CT-COND violations (Spectre-v4\nclass) are rare at this scale "
        "for both modes, matching the paper's 330-minute\nNaive/Opt "
        "detection times for CT-COND vs minutes for CT-SEQ.\n");

    // Ineffective-test-case filtering ablation (§3.2): the CT-COND/Opt
    // cell above ran with filtering on (the default); re-run it with
    // filtering off. CT-COND is where filtering bites — wrong-path
    // reads split sibling classes, producing singleton test cases the
    // filter prunes before the simulator. Verdicts are identical by the
    // filter equivalence contract (tests/test_filter.cc); only
    // simulator runs and wall time change. CI greps this line.
    {
        core::CampaignConfig cfg = campaignFor(
            defense::DefenseKind::Baseline, false, "CT-COND");
        cfg.numPrograms = scaled(60);
        cfg.collectSignatures = false;
        cfg.filterIneffective = false;
        const auto off = core::Campaign(cfg).run();
        const auto &on = results[3].stats; // CT-COND/opt above
        std::printf(
            "\nfilter ablation (CT-COND/Opt): off %.1f tests/s -> on "
            "%.1f tests/s (%.2fx,\nsim input runs %llu -> %llu, "
            "filtered %llu, skipped programs %u)\n",
            off.throughput(), on.throughput(),
            off.throughput() > 0 ? on.throughput() / off.throughput()
                                 : 0.0,
            static_cast<unsigned long long>(off.simInputRuns()),
            static_cast<unsigned long long>(on.simInputRuns()),
            static_cast<unsigned long long>(on.filteredTestCases),
            on.skippedPrograms);
    }

    // Prime-cache ablation (src/executor/sim_harness.hh): the same
    // CT-COND/Opt cell with the memoized conflict-fill priming
    // disabled — every input re-simulates the full one-load-per-
    // (set,way) priming program through the OoO pipeline, which is the
    // per-input tax AMuLeT-Opt's cheap input switch is supposed to
    // avoid. Verdicts are identical by the prime-cache equivalence
    // contract (tests/test_prime_cache.cc); only wall time moves.
    // CI greps this line.
    {
        core::CampaignConfig cfg = campaignFor(
            defense::DefenseKind::Baseline, false, "CT-COND");
        cfg.numPrograms = scaled(60);
        cfg.collectSignatures = false;
        cfg.harness.primeCache = false;
        const auto off = core::Campaign(cfg).run();
        const auto &on = results[3].stats; // CT-COND/opt above
        const bool verdicts_equal =
            off.confirmedViolations == on.confirmedViolations &&
            off.violatingTestCases == on.violatingTestCases &&
            off.candidateViolations == on.candidateViolations;
        std::printf(
            "\nprime-cache ablation (CT-COND/Opt, inproc, jobs=1): off "
            "%.1f tests/s -> on %.1f tests/s (%.2fx,\nverdicts %s, "
            "priming %.2fs -> %.2fs)\n",
            off.throughput(), on.throughput(),
            off.throughput() > 0 ? on.throughput() / off.throughput()
                                 : 0.0,
            verdicts_equal ? "unchanged" : "DIVERGED (BUG)",
            off.times.primeSec, on.times.primeSec);
    }

    // Executor backend ablation (src/executor/): the same CT-COND/Opt
    // campaign on the async backend — a dedicated simulation thread per
    // shard lane, two lanes when cores allow — against the in-process
    // row above. Verdicts are identical by the backend equivalence
    // contract (tests/test_backend.cc); only wall time moves. The
    // speedup is hardware-bound: with spare cores the dual lanes
    // overlap two programs' simulations (up to ~2x); on a fully loaded
    // or single-core host the shard falls back to one lane and the row
    // prints ~1x. CI greps this line.
    {
        core::CampaignConfig cfg = campaignFor(
            defense::DefenseKind::Baseline, false, "CT-COND");
        cfg.numPrograms = scaled(60);
        cfg.collectSignatures = false;
        cfg.backend = executor::BackendKind::Async;
        const auto async_stats = core::Campaign(cfg).run();
        const auto &inproc = results[3].stats; // CT-COND/opt above
        const bool verdicts_equal =
            async_stats.confirmedViolations == inproc.confirmedViolations &&
            async_stats.violatingTestCases == inproc.violatingTestCases &&
            async_stats.candidateViolations == inproc.candidateViolations;
        std::printf(
            "\nbackend ablation (CT-COND/Opt): inproc %.1f tests/s -> "
            "async %.1f tests/s (%.2fx,\nverdicts %s, %u hardware "
            "threads)\n",
            inproc.throughput(), async_stats.throughput(),
            inproc.throughput() > 0
                ? async_stats.throughput() / inproc.throughput()
                : 0.0,
            verdicts_equal ? "unchanged" : "DIVERGED (BUG)",
            std::thread::hardware_concurrency());
    }
    return 0;
}

/**
 * @file
 * Table 1: leakage contracts used in this work — printed from the live
 * contract registry (the executable definitions the campaigns use).
 */

#include <cstdio>

#include "bench_util.hh"
#include "contracts/contract.hh"

int
main()
{
    bench_util::header("Leakage contracts", "Table 1");
    std::printf("%-10s | %-28s | %s\n", "Name", "Leakage clause",
                "Execution clause");
    std::printf("%-10s-+-%-28s-+-%s\n", "----------",
                "----------------------------",
                "--------------------------------");
    for (const auto &c : amulet::contracts::allContracts()) {
        std::printf("%-10s | %-28s | %s\n", c.name.c_str(),
                    c.describeLeakageClause().c_str(),
                    c.describeExecutionClause().c_str());
    }
    std::printf("\nARCH-SEQ additionally treats initial register values as "
                "exposed, so inputs of one\nequivalence class keep "
                "identical registers (how the paper filters register-value "
                "leaks).\n");
    return 0;
}

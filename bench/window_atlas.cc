/**
 * @file
 * Speculation-window atlas: how long does the mis-speculation window
 * stay open per defense, and what does each defense do to the wrong
 * path while it is open?
 *
 * For every defense × trigger the atlas runs one seeded Spectre-v1
 * shape and measures, via the per-instruction pipeline tracer
 * (src/telemetry/uarch_trace.hh), the cycles between the mispredicted
 * branch's fetch and its resolution, plus what the wrong path managed
 * to fetch/issue in that window and which defense mechanisms it
 * tripped (spec buffer, undo log, LFB hold, taint).
 *
 * Triggers:
 *   cache-miss  — the branch condition depends on a load that misses
 *                 L1D (conflict-fill/invalidate priming guarantees the
 *                 miss); the D-TLB is prefilled, so the window is the
 *                 memory latency.
 *   tlb-miss    — the condition load also takes a D-TLB miss (64-page
 *                 sandbox, guard-only prefill, load on page 8), so the
 *                 window additionally pays the page walk.
 *
 * No predictor training runs are needed: the PHT initializes to
 * weakly-not-taken, so an architecturally-taken JE is mispredicted the
 * first time it is seen — every cell measures the same first-encounter
 * window.
 *
 * Emits one JSON object ({"schema":"amulet-window-atlas-v1", ...}) on
 * stdout; scripts/bench.sh writes it to WINDOW_ATLAS.json and
 * sanity-checks the shape. Cycle counts are simulator-deterministic
 * (not host-dependent), so the atlas is stable across machines.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "corpus/serde.hh"
#include "defense/defense.hh"
#include "executor/sim_harness.hh"
#include "isa/assembler.hh"
#include "telemetry/uarch_trace.hh"

namespace
{

using namespace amulet;
using corpus::Json;

struct Trigger
{
    const char *name;
    unsigned sandboxPages;
    executor::TlbPrefill prefill;
    std::int32_t disp; ///< displacement of the condition load
};

constexpr Trigger kTriggers[] = {
    {"cache-miss", 1, executor::TlbPrefill::Auto, 0},
    {"tlb-miss", 64, executor::TlbPrefill::GuardOnly, 8 * 4096},
};

/**
 * The measured shape: a condition load the priming guarantees is slow,
 * an architecturally-taken JE (predicted not-taken on first encounter),
 * and a wrong-path gadget of four loads — secret load, masked
 * transmitter, and two fillers — so every defense has something to act
 * on inside the window.
 */
isa::Program
atlasProgram(std::int32_t trig_disp)
{
    std::string text;
    text += ".bb_main.0:\n";
    text += "    MOV RAX, qword ptr [R14 + " + std::to_string(trig_disp) +
            "]\n";
    text += "    TEST RAX, RAX\n";
    text += "    JE .bb_main.1\n"; // arch: taken; predicted fall-through
    // Wrong path (transient only):
    text += "    MOV RBX, qword ptr [R14 + 64]\n"; // "secret"
    text += "    AND RBX, 0b111110000000\n";
    text += "    MOV RCX, qword ptr [R14 + RBX]\n"; // transmitter
    text += "    MOV RDX, qword ptr [R14 + 128]\n";
    text += "    MOV RSI, qword ptr [R14 + 192]\n";
    text += "    JMP .bb_main.1\n";
    text += ".bb_main.1:\n";
    return isa::assemble(text);
}

/** One defense × trigger measurement. */
Json
measureCell(defense::DefenseKind kind, const Trigger &trigger)
{
    executor::HarnessConfig cfg;
    cfg.defense.kind = kind;
    cfg.map.sandboxPages = trigger.sandboxPages;
    cfg.tlbPrefill = trigger.prefill;
    // Paper setup: CleanupSpec/SpecLFB reset caches via the hook.
    cfg.prime = (kind == defense::DefenseKind::CleanupSpec ||
                 kind == defense::DefenseKind::SpecLfb)
                    ? executor::PrimeMode::Invalidate
                    : executor::PrimeMode::ConflictFill;
    cfg.bootInsts = 1500;
    // AMULET_NO_CYCLE_SKIP=1 disables event-horizon cycle skipping.
    // scripts/bench.sh diffs an atlas produced each way: the two runs
    // must be byte-identical, since the atlas is derived entirely from
    // committed-cycle timestamps that skipping preserves.
    cfg.cycleSkip = std::getenv("AMULET_NO_CYCLE_SKIP") == nullptr;

    const isa::Program prog = atlasProgram(trigger.disp);
    const isa::FlatProgram fp(prog, cfg.map.codeBase);

    executor::SimHarness harness(cfg);
    harness.loadProgram(&fp);

    arch::Input input;
    input.id = 0;
    input.regs.fill(0);
    // All-zero sandbox: the condition load reads 0, TEST sets ZF, and
    // the JE is architecturally taken.
    input.sandbox.assign(cfg.map.sandboxSize(), 0);

    telemetry::UarchTracer tracer;
    harness.setUarchTracer(&tracer);
    harness.runInput(input);
    harness.setUarchTracer(nullptr);
    const std::vector<telemetry::UarchRunTrace> runs = tracer.takeRuns();
    if (runs.size() != 1) {
        std::fprintf(stderr, "window_atlas: expected 1 traced run, got "
                             "%zu\n",
                     runs.size());
        std::exit(1);
    }
    const telemetry::UarchRunTrace &run = runs[0];

    // The first mispredicted branch is the JE; the atlas is meaningless
    // without the mispredict, so a miss here is a hard failure.
    const telemetry::InstLifecycle *branch = nullptr;
    for (const telemetry::InstLifecycle &inst : run.insts) {
        if (inst.isBranch && inst.mispredicted) {
            branch = &inst;
            break;
        }
    }
    if (!branch || !branch->completed) {
        std::fprintf(stderr,
                     "window_atlas: %s/%s: no resolved mispredicted "
                     "branch in trace\n",
                     defense::defenseKindName(kind), trigger.name);
        std::exit(1);
    }

    // Wrong path = everything squashed by this branch's resolution.
    std::uint64_t fetched = 0, issued = 0, loads_issued = 0;
    bool spec_buffer = false, undo_logged = false, lfb_held = false,
         tainted = false;
    for (const telemetry::InstLifecycle &inst : run.insts) {
        if (!inst.squashed || inst.squashTrigger != branch->seq)
            continue;
        ++fetched;
        if (inst.issued) {
            ++issued;
            if (inst.isLoad)
                ++loads_issued;
        }
        spec_buffer = spec_buffer || inst.inSpecBuffer;
        undo_logged = undo_logged || inst.undoLogged;
        lfb_held = lfb_held || inst.lfbHeld;
        tainted = tainted || inst.tainted;
    }

    Json cell = Json::object();
    cell.set("defense",
             Json::str(defense::defenseKindName(kind)));
    cell.set("trigger", Json::str(trigger.name));
    cell.set("mispredicted", Json::boolean(true));
    cell.set("windowCycles",
             Json::number(static_cast<double>(branch->completeCycle -
                                              branch->fetchCycle)));
    cell.set("branchFetchCycle",
             Json::number(static_cast<double>(branch->fetchCycle)));
    cell.set("branchResolveCycle",
             Json::number(static_cast<double>(branch->completeCycle)));
    cell.set("wrongPathFetched",
             Json::number(static_cast<double>(fetched)));
    cell.set("wrongPathIssued",
             Json::number(static_cast<double>(issued)));
    cell.set("wrongPathLoadsIssued",
             Json::number(static_cast<double>(loads_issued)));
    Json mech = Json::object();
    mech.set("specBuffer", Json::boolean(spec_buffer));
    mech.set("undoLogged", Json::boolean(undo_logged));
    mech.set("lfbHeld", Json::boolean(lfb_held));
    mech.set("tainted", Json::boolean(tainted));
    cell.set("mechanisms", std::move(mech));
    return cell;
}

} // namespace

int
main()
{
    Json atlas = Json::object();
    atlas.set("schema", Json::str("amulet-window-atlas-v1"));
    Json cells = Json::array();
    for (defense::DefenseKind kind : defense::allDefenseKinds())
        for (const Trigger &trigger : kTriggers)
            cells.push(measureCell(kind, trigger));
    atlas.set("cells", std::move(cells));
    const std::string text = atlas.dump();
    std::fwrite(text.data(), 1, text.size(), stdout);
    std::fputc('\n', stdout);
    return 0;
}

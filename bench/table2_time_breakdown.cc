/**
 * @file
 * Table 2: breakdown of time per test program, Naive vs Opt μarch trace
 * extraction. The shape to compare: startup dominates Naive (~96%);
 * simulation dominates Opt (~89%); the per-program total drops ~13x.
 */

#include <cstdio>

#include "bench_util.hh"

int
main()
{
    using namespace bench_util;
    header("Breakdown of time per test program (Naive vs Opt)", "Table 2");

    const unsigned programs = scaled(10);
    const unsigned inputs = 20; // inputs per program (base * (1+siblings))

    struct Row
    {
        const char *name;
        double sec[8];
        double total;
    };
    Row rows[2];

    for (int mode = 0; mode < 2; ++mode) {
        const bool naive = mode == 0;
        core::CampaignConfig cfg =
            campaignFor(defense::DefenseKind::Baseline);
        cfg.harness.naiveMode = naive;
        cfg.numPrograms = programs;
        cfg.baseInputsPerProgram = inputs / 4;
        cfg.siblingsPerBase = 3;
        cfg.collectSignatures = false;
        core::Campaign campaign(cfg);
        const auto stats = campaign.run();

        Row &r = rows[naive ? 0 : 1];
        r.name = naive ? "Naive" : "Opt";
        const auto &t = stats.times;
        r.sec[0] = t.startupSec;
        r.sec[1] = t.primeSec;
        r.sec[2] = t.simulateSec;
        r.sec[3] = t.traceExtractSec;
        r.sec[4] = t.testGenSec;
        r.sec[5] = t.ctraceSec;
        r.sec[6] = t.filterSec;
        r.sec[7] = t.otherSec < 0 ? 0 : t.otherSec;
        r.total = stats.wallSeconds;
    }

    const char *components[8] = {"sim startup",   "sim priming",
                                 "sim simulate",
                                 "uTrace extraction", "Test generation",
                                 "CTrace extraction", "Ineffective filter",
                                 "Others"};
    std::printf("(per test program of %u inputs, averaged over %u "
                "programs)\n\n", inputs, programs);
    std::printf("%-20s | %12s %8s | %12s %8s\n", "Component", "Naive",
                "", "Opt", "");
    for (int c = 0; c < 8; ++c) {
        std::printf("%-20s | %9.3f s  %5.1f%% | %9.3f s  %5.1f%%\n",
                    components[c], rows[0].sec[c] / programs,
                    100.0 * rows[0].sec[c] / rows[0].total,
                    rows[1].sec[c] / programs,
                    100.0 * rows[1].sec[c] / rows[1].total);
    }
    std::printf("%-20s | %9.3f s  %5.1f%% | %9.3f s  %5.1f%%\n", "Total",
                rows[0].total / programs, 100.0, rows[1].total / programs,
                100.0);
    std::printf("\nper-program speedup (Naive/Opt): %.1fx   "
                "(paper: ~13x; startup share Naive: paper 96.1%%)\n",
                rows[0].total / rows[1].total);
    return 0;
}

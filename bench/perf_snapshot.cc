/**
 * @file
 * Machine-readable performance snapshot: the data source behind
 * BENCH_*.json (scripts/bench.sh).
 *
 * Emits one JSON object on stdout with tests/second, the full
 * TimeBreakdown, and per-input simulator latency percentiles (from the
 * telemetry registry's sim.inputLatencySec histogram) for a seeded
 * campaign per defense, plus the prime-cache off→on ablation on the
 * table3 baseline campaign (CT-COND, inproc, jobs=1). Wall-clock
 * numbers are hardware-dependent — the JSON is a trajectory point for
 * regression *tracking*, not a gate; the `speedup` field of the
 * ablation is the one shape CI can reason about across hosts.
 *
 * AMULET_BENCH_SCALE scales campaign sizes like every other bench.
 */

#include <cstdio>
#include <thread>

#include "bench_util.hh"
#include "corpus/serde.hh"

namespace
{

using namespace bench_util;
using corpus::Json;

Json
timesJson(const executor::TimeBreakdown &t)
{
    Json j = Json::object();
    j.set("startupSec", Json::number(t.startupSec));
    j.set("primeSec", Json::number(t.primeSec));
    j.set("simulateSec", Json::number(t.simulateSec));
    j.set("traceExtractSec", Json::number(t.traceExtractSec));
    j.set("testGenSec", Json::number(t.testGenSec));
    j.set("ctraceSec", Json::number(t.ctraceSec));
    j.set("filterSec", Json::number(t.filterSec));
    j.set("otherSec", Json::number(t.otherSec));
    return j;
}

core::CampaignStats
run(core::CampaignConfig cfg)
{
    cfg.collectSignatures = false;
    return core::Campaign(cfg).run();
}

/** Per-input sim latency percentiles out of the merged telemetry
 *  registry (microseconds; one histogram sample per harness input
 *  run). */
Json
latencyJson(const core::CampaignStats &stats)
{
    Json j = Json::object();
    const auto it = stats.metrics.find("sim.inputLatencySec");
    if (it == stats.metrics.end())
        return j;
    const telemetry::MetricValue &lat = it->second;
    j.set("count", Json::number(lat.count));
    j.set("meanUs",
          Json::number(lat.count ? lat.sum / lat.count * 1e6 : 0.0));
    j.set("p50Us", Json::number(lat.percentile(0.5) * 1e6));
    j.set("p95Us", Json::number(lat.percentile(0.95) * 1e6));
    j.set("p99Us", Json::number(lat.percentile(0.99) * 1e6));
    return j;
}

} // namespace

int
main()
{
    Json defenses = Json::array();
    for (defense::DefenseKind kind : defense::allDefenseKinds()) {
        core::CampaignConfig cfg = campaignFor(kind);
        cfg.numPrograms = scaled(30);
        const auto stats = run(cfg);
        Json j = Json::object();
        j.set("defense", Json::str(defense::defenseKindName(kind)));
        j.set("contract", Json::str(cfg.contract.name));
        j.set("testCases", Json::number(stats.testCases));
        j.set("wallSeconds", Json::number(stats.wallSeconds));
        j.set("testsPerSec", Json::number(stats.throughput()));
        j.set("confirmedViolations",
              Json::number(stats.confirmedViolations));
        j.set("times", timesJson(stats.times));
        j.set("simInputLatency", latencyJson(stats));
        defenses.push(std::move(j));
    }

    // The acceptance ablation: table3's CT-COND/Opt cell, in-process,
    // jobs=1, prime cache off vs on.
    core::CampaignConfig abl = campaignFor(
        defense::DefenseKind::Baseline, false, "CT-COND");
    abl.numPrograms = scaled(60);
    core::CampaignConfig abl_off = abl;
    abl_off.harness.primeCache = false;
    const auto on = run(abl);
    const auto off = run(abl_off);
    Json ablation = Json::object();
    ablation.set("defense", Json::str("baseline"));
    ablation.set("contract", Json::str("CT-COND"));
    ablation.set("backend", Json::str("inproc"));
    ablation.set("jobs", Json::number(std::uint64_t{1}));
    ablation.set("offTestsPerSec", Json::number(off.throughput()));
    ablation.set("onTestsPerSec", Json::number(on.throughput()));
    ablation.set("speedup",
                 Json::number(off.throughput() > 0
                                  ? on.throughput() / off.throughput()
                                  : 0.0));
    ablation.set("offPrimeSec", Json::number(off.times.primeSec));
    ablation.set("onPrimeSec", Json::number(on.times.primeSec));
    // Same verdict definition as table3's ablation row, so the two
    // acceptance signals cannot disagree on one divergence.
    ablation.set("verdictsEqual",
                 Json::boolean(off.confirmedViolations ==
                                   on.confirmedViolations &&
                               off.violatingTestCases ==
                                   on.violatingTestCases &&
                               off.candidateViolations ==
                                   on.candidateViolations));

    Json out = Json::object();
    out.set("bench", Json::str("perf_snapshot"));
    out.set("scale", Json::number(scale()));
    out.set("hardwareThreads",
            Json::number(std::uint64_t{
                std::thread::hardware_concurrency()}));
    out.set("note", Json::str("wall-clock numbers are hardware-"
                              "dependent; compare shapes and the "
                              "primeCacheAblation speedup, not "
                              "absolute values"));
    out.set("defenses", std::move(defenses));
    out.set("primeCacheAblation", std::move(ablation));

    const std::string text = out.dump();
    std::fwrite(text.data(), 1, text.size(), stdout);
    std::fputc('\n', stdout);
    return 0;
}

/**
 * @file
 * Machine-readable performance snapshot: the data source behind
 * BENCH_*.json (scripts/bench.sh).
 *
 * Emits one JSON object on stdout with tests/second, the full
 * TimeBreakdown, and per-input simulator latency percentiles (from the
 * telemetry registry's sim.inputLatencySec histogram) for a seeded
 * campaign per defense, plus three runtime-knob off→on ablations: the
 * prime cache on the table3 baseline campaign (CT-COND, inproc,
 * jobs=1), the contract-trace memo on the STT campaign (ARCH-SEQ,
 * 128-page sandbox — the cell where cold collection used to eat ~half
 * the wall clock), and event-horizon cycle skipping on the InvisiSpec
 * campaign (CT-SEQ — the miss-heavy cell with the longest quiescent
 * windows). Wall-clock numbers are hardware-dependent — the
 * JSON is a trajectory point for regression *tracking*, not a gate;
 * the `speedup` fields of the ablations are the shapes CI can reason
 * about across hosts.
 *
 * AMULET_BENCH_SCALE scales campaign sizes like every other bench.
 */

#include <cstdio>
#include <thread>

#include "bench_util.hh"
#include "corpus/serde.hh"

namespace
{

using namespace bench_util;
using corpus::Json;

Json
timesJson(const executor::TimeBreakdown &t)
{
    Json j = Json::object();
    j.set("startupSec", Json::number(t.startupSec));
    j.set("primeSec", Json::number(t.primeSec));
    j.set("simulateSec", Json::number(t.simulateSec));
    j.set("traceExtractSec", Json::number(t.traceExtractSec));
    j.set("testGenSec", Json::number(t.testGenSec));
    j.set("ctraceSec", Json::number(t.ctraceSec));
    j.set("filterSec", Json::number(t.filterSec));
    j.set("otherSec", Json::number(t.otherSec));
    return j;
}

core::CampaignStats
run(core::CampaignConfig cfg)
{
    cfg.collectSignatures = false;
    return core::Campaign(cfg).run();
}

/** Per-input sim latency percentiles out of the merged telemetry
 *  registry (microseconds; one histogram sample per harness input
 *  run). */
Json
latencyJson(const core::CampaignStats &stats)
{
    Json j = Json::object();
    const auto it = stats.metrics.find("sim.inputLatencySec");
    if (it == stats.metrics.end())
        return j;
    const telemetry::MetricValue &lat = it->second;
    j.set("count", Json::number(lat.count));
    j.set("meanUs",
          Json::number(lat.count ? lat.sum / lat.count * 1e6 : 0.0));
    j.set("p50Us", Json::number(lat.percentile(0.5) * 1e6));
    j.set("p95Us", Json::number(lat.percentile(0.95) * 1e6));
    j.set("p99Us", Json::number(lat.percentile(0.99) * 1e6));
    return j;
}

} // namespace

int
main()
{
    Json defenses = Json::array();
    for (defense::DefenseKind kind : defense::allDefenseKinds()) {
        core::CampaignConfig cfg = campaignFor(kind);
        cfg.numPrograms = scaled(30);
        const auto stats = run(cfg);
        Json j = Json::object();
        j.set("defense", Json::str(defense::defenseKindName(kind)));
        j.set("contract", Json::str(cfg.contract.name));
        j.set("testCases", Json::number(stats.testCases));
        j.set("wallSeconds", Json::number(stats.wallSeconds));
        j.set("testsPerSec", Json::number(stats.throughput()));
        j.set("confirmedViolations",
              Json::number(stats.confirmedViolations));
        j.set("times", timesJson(stats.times));
        j.set("simInputLatency", latencyJson(stats));
        defenses.push(std::move(j));
    }

    // The acceptance ablation: table3's CT-COND/Opt cell, in-process,
    // jobs=1, prime cache off vs on.
    core::CampaignConfig abl = campaignFor(
        defense::DefenseKind::Baseline, false, "CT-COND");
    abl.numPrograms = scaled(60);
    core::CampaignConfig abl_off = abl;
    abl_off.harness.primeCache = false;
    const auto on = run(abl);
    const auto off = run(abl_off);
    Json ablation = Json::object();
    ablation.set("defense", Json::str("baseline"));
    ablation.set("contract", Json::str("CT-COND"));
    ablation.set("backend", Json::str("inproc"));
    ablation.set("jobs", Json::number(std::uint64_t{1}));
    ablation.set("offTestsPerSec", Json::number(off.throughput()));
    ablation.set("onTestsPerSec", Json::number(on.throughput()));
    ablation.set("speedup",
                 Json::number(off.throughput() > 0
                                  ? on.throughput() / off.throughput()
                                  : 0.0));
    ablation.set("offPrimeSec", Json::number(off.times.primeSec));
    ablation.set("onPrimeSec", Json::number(on.times.primeSec));
    // Same verdict definition as table3's ablation row, so the two
    // acceptance signals cannot disagree on one divergence.
    ablation.set("verdictsEqual",
                 Json::boolean(off.confirmedViolations ==
                                   on.confirmedViolations &&
                               off.violatingTestCases ==
                                   on.violatingTestCases &&
                               off.candidateViolations ==
                                   on.candidateViolations));

    // The PR-8 ablation: STT's ARCH-SEQ campaign (128-page sandbox),
    // in-process, jobs=1, contract-trace memo off vs on. Under a
    // non-exploring contract every sibling/probe is a full memo hit —
    // the memo removes the whole cold collect (512KB sandbox image
    // load + emulation) per sibling. What remains of ctraceSec is
    // sibling *generation* (the PRNG fill of a fresh 512KB sandbox,
    // ~55% of the stage), which no memo can touch, so the honest shape
    // here is a modest-but-strict ctraceSec drop, not a multiple.
    // Each mode runs twice, interleaved, and the best run counts:
    // back-to-back in-process campaigns see allocator/cache warm-up
    // ordering effects larger than the effect under test.
    core::CampaignConfig mem = campaignFor(defense::DefenseKind::Stt);
    mem.numPrograms = scaled(40);
    core::CampaignConfig mem_off = mem;
    mem_off.ctraceMemo = false;
    const auto m_off1 = run(mem_off);
    const auto m_on1 = run(mem);
    const auto m_off2 = run(mem_off);
    const auto m_on2 = run(mem);
    const auto &mem_off_stats =
        m_off1.times.ctraceSec <= m_off2.times.ctraceSec ? m_off1
                                                         : m_off2;
    const auto &mem_on_stats =
        m_on1.times.ctraceSec <= m_on2.times.ctraceSec ? m_on1 : m_on2;
    const auto same_verdict = [](const core::CampaignStats &a,
                                 const core::CampaignStats &b) {
        return a.confirmedViolations == b.confirmedViolations &&
               a.violatingTestCases == b.violatingTestCases &&
               a.candidateViolations == b.candidateViolations;
    };
    Json memo = Json::object();
    memo.set("defense", Json::str("stt"));
    memo.set("contract", Json::str(mem.contract.name));
    memo.set("backend", Json::str("inproc"));
    memo.set("jobs", Json::number(std::uint64_t{1}));
    memo.set("runsPerMode", Json::number(std::uint64_t{2}));
    memo.set("offTestsPerSec", Json::number(mem_off_stats.throughput()));
    memo.set("onTestsPerSec", Json::number(mem_on_stats.throughput()));
    memo.set("speedup",
             Json::number(mem_off_stats.throughput() > 0
                              ? mem_on_stats.throughput() /
                                    mem_off_stats.throughput()
                              : 0.0));
    memo.set("offCtraceSec", Json::number(mem_off_stats.times.ctraceSec));
    memo.set("onCtraceSec", Json::number(mem_on_stats.times.ctraceSec));
    memo.set("ctraceSpeedup",
             Json::number(mem_on_stats.times.ctraceSec > 0
                              ? mem_off_stats.times.ctraceSec /
                                    mem_on_stats.times.ctraceSec
                              : 0.0));
    memo.set("offCtraceShareOfWall",
             Json::number(mem_off_stats.wallSeconds > 0
                              ? mem_off_stats.times.ctraceSec /
                                    mem_off_stats.wallSeconds
                              : 0.0));
    memo.set("onCtraceShareOfWall",
             Json::number(mem_on_stats.wallSeconds > 0
                              ? mem_on_stats.times.ctraceSec /
                                    mem_on_stats.wallSeconds
                              : 0.0));
    // All four runs must agree — the knob (either setting, either
    // repetition) must be invisible to detection results.
    memo.set("verdictsEqual",
             Json::boolean(same_verdict(m_off1, m_on1) &&
                           same_verdict(m_off1, m_off2) &&
                           same_verdict(m_off1, m_on2)));

    // The PR-9 ablation: InvisiSpec's CT-SEQ campaign, in-process,
    // jobs=1, event-horizon cycle skipping off vs on. InvisiSpec is
    // the miss-heavy cell — every speculative load goes invisible and
    // re-exposes at commit, so the simulator spends long stretches
    // waiting on scheduled fills with nothing else in flight; exactly
    // the quiescent windows skipping elides. Judged on simulateSec
    // (the collapsed stage), interleaved best-of-two like the memo
    // ablation above, with the skip counters from the telemetry
    // registry riding along so the gate can insist skipping actually
    // engaged rather than trivially passing on a no-op.
    core::CampaignConfig skp = campaignFor(defense::DefenseKind::InvisiSpec);
    skp.numPrograms = scaled(40);
    core::CampaignConfig skp_off = skp;
    skp_off.harness.cycleSkip = false;
    const auto s_off1 = run(skp_off);
    const auto s_on1 = run(skp);
    const auto s_off2 = run(skp_off);
    const auto s_on2 = run(skp);
    const auto &skp_off_stats =
        s_off1.times.simulateSec <= s_off2.times.simulateSec ? s_off1
                                                             : s_off2;
    const auto &skp_on_stats =
        s_on1.times.simulateSec <= s_on2.times.simulateSec ? s_on1
                                                           : s_on2;
    const auto counter_of = [](const core::CampaignStats &stats,
                               const char *name) {
        const auto it = stats.metrics.find(name);
        return it == stats.metrics.end() ? 0.0 : it->second.value;
    };
    Json skip = Json::object();
    skip.set("defense", Json::str("invisispec"));
    skip.set("contract", Json::str(skp.contract.name));
    skip.set("backend", Json::str("inproc"));
    skip.set("jobs", Json::number(std::uint64_t{1}));
    skip.set("runsPerMode", Json::number(std::uint64_t{2}));
    skip.set("offTestsPerSec", Json::number(skp_off_stats.throughput()));
    skip.set("onTestsPerSec", Json::number(skp_on_stats.throughput()));
    skip.set("speedup",
             Json::number(skp_off_stats.throughput() > 0
                              ? skp_on_stats.throughput() /
                                    skp_off_stats.throughput()
                              : 0.0));
    skip.set("offSimulateSec",
             Json::number(skp_off_stats.times.simulateSec));
    skip.set("onSimulateSec",
             Json::number(skp_on_stats.times.simulateSec));
    skip.set("simulateSpeedup",
             Json::number(skp_on_stats.times.simulateSec > 0
                              ? skp_off_stats.times.simulateSec /
                                    skp_on_stats.times.simulateSec
                              : 0.0));
    skip.set("skippedCycles",
             Json::number(counter_of(skp_on_stats, "sim.skippedCycles")));
    skip.set("skipWindows",
             Json::number(counter_of(skp_on_stats, "sim.skipWindows")));
    // All four runs must agree — the knob (either setting, either
    // repetition) must be invisible to detection results.
    skip.set("verdictsEqual",
             Json::boolean(same_verdict(s_off1, s_on1) &&
                           same_verdict(s_off1, s_off2) &&
                           same_verdict(s_off1, s_on2)));

    Json out = Json::object();
    out.set("bench", Json::str("perf_snapshot"));
    out.set("scale", Json::number(scale()));
    out.set("hardwareThreads",
            Json::number(std::uint64_t{
                std::thread::hardware_concurrency()}));
    out.set("note", Json::str("wall-clock numbers are hardware-"
                              "dependent; compare shapes and the "
                              "primeCacheAblation / ctraceMemoAblation "
                              "/ cycleSkipAblation speedups, not "
                              "absolute values"));
    out.set("defenses", std::move(defenses));
    out.set("primeCacheAblation", std::move(ablation));
    out.set("ctraceMemoAblation", std::move(memo));
    out.set("cycleSkipAblation", std::move(skip));

    const std::string text = out.dump();
    std::fwrite(text.data(), 1, text.size(), stdout);
    std::fputc('\n', stdout);
    return 0;
}

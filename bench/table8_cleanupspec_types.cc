/**
 * @file
 * Table 8: CleanupSpec violation types found by fuzzing, with the
 * unmodified implementation (Original) and after the speculative-store
 * fix (Patched). Shape to compare: Original shows spec-store (UV3),
 * split-request (UV4), and overcleaning (UV5) classes; Patched removes
 * the spec-store class but splits and overcleaning persist.
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/signature.hh"

int
main()
{
    using namespace bench_util;
    header("CleanupSpec violation types, Original vs Patched(UV3 fix)",
           "Table 8");

    std::map<std::string, std::uint64_t> found[2];
    for (int mode = 0; mode < 2; ++mode) {
        core::CampaignConfig cfg =
            campaignFor(defense::DefenseKind::CleanupSpec);
        cfg.harness.defense.cleanupBugStoreNotCleaned = mode == 0;
        // Raise the split-access rate a little so UV4 shows at bench
        // scale (the paper's campaigns are three orders larger).
        cfg.gen.unalignedPct = 30;
        cfg.numPrograms = scaled(150);
        cfg.seed = 91;
        core::Campaign campaign(cfg);
        const auto stats = campaign.run();
        found[mode] = stats.signatureCounts;
    }

    auto cell = [&](int mode, const char *sig) {
        return found[mode].count(sig) ? "YES" : "-";
    };
    std::printf("%-34s %10s %10s\n", "Violation Type", "Original",
                "Patched");
    std::printf("%-34s %10s %10s\n", "Speculative Store Not Cleaned (UV3)",
                cell(0, amulet::core::sig::kUv3StoreNotCleaned),
                cell(1, amulet::core::sig::kUv3StoreNotCleaned));
    std::printf("%-34s %10s %10s\n", "Split Requests Not Cleaned (UV4)",
                cell(0, amulet::core::sig::kUv4SplitNotCleaned),
                cell(1, amulet::core::sig::kUv4SplitNotCleaned));
    std::printf("%-34s %10s %10s\n", "Too Much Cleaning (UV5)",
                cell(0, amulet::core::sig::kUv5Overclean),
                cell(1, amulet::core::sig::kUv5Overclean));

    std::printf("\nAll signatures found:\n");
    for (int mode = 0; mode < 2; ++mode) {
        std::printf("  %s:", mode == 0 ? "Original" : "Patched ");
        for (const auto &[sig, count] : found[mode])
            std::printf(" %s x%llu;", sig.c_str(),
                        static_cast<unsigned long long>(count));
        std::printf("\n");
    }
    std::printf("\nPaper shape: Original {UV3, UV4, UV5}; Patched (store "
                "fix only) keeps {UV4, UV5}.\nUV4 needs a split access on "
                "a mispredicted path with a differing address — rare;\n"
                "increase AMULET_BENCH_SCALE if it does not appear at "
                "this scale.\n");
    return 0;
}

/**
 * @file
 * Figure 4 + Listings 1-2: InvisiSpec UV1 — a speculative load whose set
 * is full triggers an L1 replacement, leaking the victim's address via an
 * eviction. The demo runs the buggy and patched implementation on two
 * contract-equivalent inputs whose speculative load addresses differ.
 */

#include "bench_util.hh"
#include "demo_util.hh"

int
main()
{
    using namespace demo_util;
    bench_util::header(
        "InvisiSpec UV1: speculative L1D-cache evictions",
        "Figure 4, Listings 1-2");

    std::string text = ".bb_main.0:\n" + slowChain("RAX", 8) +
                       "    TEST RAX, RAX\n"
                       "    JNE .bb_main.1\n"
                       "    AND RBX, 0b111110000000\n"
                       "    XOR RDX, RDX\n"
                       "    MOV RDX, qword ptr [R14 + RBX]\n"
                       "    JMP .bb_main.1\n"
                       ".bb_main.1:\n" +
                       trailingWork();
    const isa::Program prog = isa::assemble(text);
    std::printf("Violating test (speculative load address depends on the "
                "dead register RBX):\n%s\n",
                isa::formatProgram(prog).c_str());

    for (bool patched : {false, true}) {
        executor::HarnessConfig cfg;
        cfg.defense.kind = defense::DefenseKind::InvisiSpec;
        cfg.defense.invisispecBugSpecEviction = !patched;
        cfg.prime = executor::PrimeMode::ConflictFill; // full sets
        cfg.bootInsts = 2000;
        executor::SimHarness harness(cfg);
        const isa::FlatProgram fp(prog, cfg.map.codeBase);

        arch::Input a = zeroInput(cfg.map);
        arch::Input b = a;
        a.regs[isa::regIndex(isa::Reg::Rbx)] = 0x100;
        b.regs[isa::regIndex(isa::Reg::Rbx)] = 0x700;
        b.id = 1;

        std::printf("--- %s (Listing %d) ---\n",
                    patched ? "patched: no replacement for spec loads"
                            : "as published: spec load evicts on full set",
                    patched ? 2 : 1);
        const PairResult r = runPair(harness, fp, a, b);
        printDiff(r);
        std::printf("\n");
    }
    std::printf("Expected: the as-published implementation leaks the "
                "evicted conflict-fill victim\n(addresses 0x100001xx vs "
                "0x100007xx differ); the patch (Listing 2) removes the "
                "leak.\n");
    return 0;
}

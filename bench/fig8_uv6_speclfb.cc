/**
 * @file
 * Figure 8: SpecLFB UV6 — the undocumented optimization clears
 * `isReallyUnsafe` for the first speculative load in the LSQ, so a
 * single-load Spectre variant leaks a register secret, while the classic
 * two-load variant is still gated.
 */

#include "bench_util.hh"
#include "demo_util.hh"

int
main()
{
    using namespace demo_util;
    bench_util::header("SpecLFB UV6: first speculative load unprotected",
                       "Figure 8");

    // Figure 8(b): the secret is in a register; one speculative load.
    std::string text = ".bb_main.0:\n" + slowChain("RAX", 8) +
                       "    TEST RAX, RAX\n"
                       "    JNE .bb_main.1\n"
                       "    AND RBX, 0b111110000000\n"
                       "    MOV RDX, qword ptr [R14 + RBX]\n"
                       "    JMP .bb_main.1\n"
                       ".bb_main.1:\n" +
                       trailingWork();
    const isa::Program prog = isa::assemble(text);
    std::printf("Violating test (RBX is the secret):\n%s\n",
                isa::formatProgram(prog).c_str());

    for (bool patched : {false, true}) {
        executor::HarnessConfig cfg;
        cfg.defense.kind = defense::DefenseKind::SpecLfb;
        cfg.defense.speclfbBugFirstLoad = !patched;
        cfg.prime = executor::PrimeMode::Invalidate;
        cfg.bootInsts = 2000;
        executor::SimHarness harness(cfg);
        const isa::FlatProgram fp(prog, cfg.map.codeBase);

        arch::Input a = zeroInput(cfg.map);
        arch::Input b = a;
        a.regs[isa::regIndex(isa::Reg::Rbx)] = 0x080;
        b.regs[isa::regIndex(isa::Reg::Rbx)] = 0x780;
        b.id = 1;

        std::printf("--- %s ---\n",
                    patched ? "patched: every speculative load is gated"
                            : "as published: isReallyUnsafe cleared for "
                              "the first speculative load");
        const PairResult r = runPair(harness, fp, a, b);
        printDiff(r);
        std::printf("\n");
    }
    std::printf("Expected: as published, the single speculative load "
                "installs normally and leaks the\nregister secret "
                "(lines 0x800080 vs 0x800780); the patch holds it in the "
                "LFB until safe.\n");
    return 0;
}

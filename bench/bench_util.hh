/**
 * @file
 * Shared helpers for the table/figure reproduction binaries.
 *
 * The paper's campaigns run 100 parallel instances on a 128-core server
 * for hours; these binaries run seeded, scaled-down campaigns (seconds to
 * a minute on a laptop) and print the same rows. Set AMULET_BENCH_SCALE
 * (default 1) to scale campaign sizes up or down.
 */

#ifndef AMULET_BENCH_BENCH_UTIL_HH
#define AMULET_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/campaign.hh"
#include "runtime/matrix.hh"

namespace bench_util
{

using namespace amulet;

/** Campaign scale multiplier from the environment. */
inline double
scale()
{
    const char *s = std::getenv("AMULET_BENCH_SCALE");
    return s ? std::atof(s) : 1.0;
}

/**
 * Campaigns to run concurrently (AMULET_BENCH_JOBS; 0 = all cores).
 * Campaign *results* are jobs-invariant (see src/runtime/), so the
 * printed counts are identical at any setting; the default stays serial
 * because the tables also report wall-clock columns, which concurrent
 * campaigns sharing cores would distort.
 */
inline unsigned
matrixJobs()
{
    const char *s = std::getenv("AMULET_BENCH_JOBS");
    return s ? static_cast<unsigned>(std::atoi(s)) : 1;
}

inline unsigned
scaled(unsigned n)
{
    const double v = n * scale();
    return v < 1 ? 1 : static_cast<unsigned>(v);
}

/** Standard campaign configuration for one defense target. */
inline core::CampaignConfig
campaignFor(defense::DefenseKind kind, bool patched = false,
            const char *contract = nullptr)
{
    core::CampaignConfig cfg;
    cfg.harness.defense = patched ? defense::DefenseConfig::patched(kind)
                                  : defense::DefenseConfig{};
    cfg.harness.defense.kind = kind;
    // Paper setup (§3.5/§4.4): CleanupSpec and SpecLFB reset caches via
    // the invalidation hook; InvisiSpec/STT/baseline use conflict fill.
    // STT is tested with a 128-page sandbox against ARCH-SEQ.
    if (kind == defense::DefenseKind::CleanupSpec ||
        kind == defense::DefenseKind::SpecLfb) {
        cfg.harness.prime = executor::PrimeMode::Invalidate;
    } else {
        cfg.harness.prime = executor::PrimeMode::ConflictFill;
    }
    if (kind == defense::DefenseKind::Stt) {
        cfg.harness.map.sandboxPages = 128;
        cfg.contract = contracts::archSeq();
    } else {
        cfg.contract = contracts::ctSeq();
    }
    if (contract)
        cfg.contract = *contracts::findContract(contract);
    cfg.gen.map = cfg.harness.map;
    cfg.inputs.map = cfg.harness.map;
    cfg.baseInputsPerProgram = 6;
    cfg.siblingsPerBase = 4;
    cfg.seed = 33;
    return cfg;
}

inline void
header(const char *what, const char *paper_ref)
{
    std::printf("============================================================"
                "====\n");
    std::printf("%s\n(reproduces %s; scaled-down seeded campaign — compare "
                "shapes,\nnot absolute numbers; see EXPERIMENTS.md)\n",
                what, paper_ref);
    std::printf("============================================================"
                "====\n\n");
}

} // namespace bench_util

#endif // AMULET_BENCH_BENCH_UTIL_HH

/**
 * @file
 * Ablations of the design choices DESIGN.md calls out:
 *  (a) cache initialization: clean start vs conflict fill (§3.2 C2 —
 *      conflict fill additionally detects eviction-based leaks);
 *  (b) register mutation of contract-dead registers (off = register-
 *      secret leaks such as SpecLFB UV6 become unreachable);
 *  (c) sibling count per base input (bigger equivalence classes find
 *      more violating test cases per program).
 */

#include <cstdio>

#include "bench_util.hh"

int
main()
{
    using namespace bench_util;
    header("Ablations: priming policy / register mutation / siblings",
           "design-choice ablations (DESIGN.md)");

    // (a) Priming policy on the as-published InvisiSpec: UV1 leaks via
    // *evictions*, which a clean cache cannot show.
    std::printf("(a) cache initialization (InvisiSpec as published, "
                "UV1)\n");
    for (auto prime : {executor::PrimeMode::Invalidate,
                       executor::PrimeMode::ConflictFill}) {
        core::CampaignConfig cfg =
            campaignFor(defense::DefenseKind::InvisiSpec);
        cfg.harness.prime = prime;
        cfg.numPrograms = scaled(40);
        cfg.collectSignatures = true;
        core::Campaign campaign(cfg);
        const auto stats = campaign.run();
        std::printf("    %-14s confirmed violations: %llu\n",
                    prime == executor::PrimeMode::ConflictFill
                        ? "conflict-fill:" : "clean start:",
                    static_cast<unsigned long long>(
                        stats.confirmedViolations));
    }

    // (b) Register mutation on the as-published SpecLFB (UV6 leaks a
    // register secret).
    std::printf("\n(b) contract-dead register mutation (SpecLFB as "
                "published, UV6)\n");
    for (unsigned pct : {0u, 70u}) {
        core::CampaignConfig cfg =
            campaignFor(defense::DefenseKind::SpecLfb);
        cfg.regMutationPct = pct;
        cfg.numPrograms = scaled(40);
        cfg.collectSignatures = true;
        core::Campaign campaign(cfg);
        const auto stats = campaign.run();
        std::printf("    mutation %3u%%: confirmed violations: %llu\n",
                    pct,
                    static_cast<unsigned long long>(
                        stats.confirmedViolations));
    }

    // (c) Sibling count on the baseline.
    std::printf("\n(c) siblings per base input (baseline, CT-SEQ; equal "
                "total test budget)\n");
    for (unsigned siblings : {1u, 3u, 7u}) {
        core::CampaignConfig cfg =
            campaignFor(defense::DefenseKind::Baseline);
        cfg.siblingsPerBase = siblings;
        cfg.baseInputsPerProgram = 24 / (1 + siblings);
        cfg.numPrograms = scaled(40);
        cfg.collectSignatures = true;
        core::Campaign campaign(cfg);
        const auto stats = campaign.run();
        std::printf("    %u siblings: confirmed violations: %llu "
                    "(classes: %llu)\n",
                    siblings,
                    static_cast<unsigned long long>(
                        stats.confirmedViolations),
                    static_cast<unsigned long long>(
                        stats.effectiveClasses));
    }
    std::printf("\nExpected: conflict-fill >> clean start on UV1 "
                "(eviction leaks need full sets);\nmutation on >> off "
                "for UV6 (register secrets unreachable otherwise); more\n"
                "siblings -> larger classes -> more confirmed violations "
                "per budget.\n");
    return 0;
}

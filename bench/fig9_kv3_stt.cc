/**
 * @file
 * Figure 9: STT KV3 — a tainted speculative store still performs its
 * address translation, installing a D-TLB entry that leaks the
 * speculatively loaded secret (previously found by DOLMA). Tested with a
 * 128-page sandbox so TLB leakage is visible.
 */

#include "bench_util.hh"
#include "demo_util.hh"

int
main()
{
    using namespace demo_util;
    bench_util::header("STT KV3: tainted speculative store accesses the "
                       "TLB", "Figure 9");

    std::string text = ".bb_main.0:\n" + slowChain("RAX", 8) +
                       "    TEST RAX, RAX\n"
                       "    JNE .bb_main.1\n"
                       "    AND RCX, 0b111111111111\n"
                       "    MOV RBX, qword ptr [R14 + RCX]\n"
                       "    AND RBX, 0b1111111000000000000\n"
                       "    MOV dword ptr [R14 + RBX], EDI\n"
                       "    JMP .bb_main.1\n"
                       ".bb_main.1:\n" +
                       trailingWork();
    const isa::Program prog = isa::assemble(text);
    std::printf("Violating test (CMOV-style access load feeds a tainted "
                "store address):\n%s\n",
                isa::formatProgram(prog).c_str());

    for (bool patched : {false, true}) {
        executor::HarnessConfig cfg;
        cfg.defense.kind = defense::DefenseKind::Stt;
        cfg.defense.sttBugTaintedStoreTlb = !patched;
        cfg.prime = executor::PrimeMode::ConflictFill;
        cfg.map.sandboxPages = 128;
        cfg.bootInsts = 2000;
        executor::SimHarness harness(cfg);
        const isa::FlatProgram fp(prog, cfg.map.codeBase);

        arch::Input a = zeroInput(cfg.map);
        a.regs[isa::regIndex(isa::Reg::Rcx)] = 0x200;
        arch::Input b = a;
        a.sandbox[0x202] = 0x01; // secret page +0x10
        b.sandbox[0x202] = 0x07; // secret page +0x70
        b.id = 1;

        std::printf("--- %s ---\n",
                    patched ? "patched (DOLMA): tainted stores blocked"
                            : "as published: tainted stores execute and "
                              "access the TLB");
        const PairResult r = runPair(harness, fp, a, b);
        printDiff(r);
        if (!patched && r.differs) {
            std::printf("\nTLB entries (VPNs) present in only one trace "
                        "encode the speculative secret,\nexactly as in "
                        "Figure 9(b).\n");
        }
        std::printf("\n");
    }
    return 0;
}

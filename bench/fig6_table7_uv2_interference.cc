/**
 * @file
 * Figure 6 + Table 7: InvisiSpec UV2 — same-core speculative interference.
 * With 2 MSHRs, input A's speculative misses occupy both MSHRs, stalling
 * the Expose of a non-speculative load at the head of the in-order cache-
 * controller queue until the test ends; input B's speculative loads
 * coalesce and the Expose completes. The exposed line's presence in the
 * final L1D differs — observable by a single-threaded attacker.
 */

#include "bench_util.hh"
#include "demo_util.hh"

int
main()
{
    using namespace demo_util;
    bench_util::header(
        "InvisiSpec UV2: same-core MSHR interference (patched UV1)",
        "Figure 6 and Table 7");

    std::string text;
    text += ".bb_main.0:\n";
    text += "    MOV R13, qword ptr [R14 + 0]\n";
    text += "    IMUL R13, R13\n    IMUL R13, R13\n";
    text += "    TEST R13, R13\n";
    text += "    JE .bb_main.1\n";                    // slow, not taken
    text += "    MOV R10, qword ptr [R14 + 0x200]\n"; // NSL -> Expose
    for (int i = 0; i < 4; ++i)
        text += "    IMUL R13, R13\n";
    text += "    TEST R13, R13\n";
    text += "    JNE .bb_main.1\n"; // mispredicted
    for (int i = 0; i < 2; ++i) {
        text += "    AND RBX, 0b111111111111\n";
        text += "    MOV RDX, qword ptr [R14 + RBX + " +
                std::to_string(64 * i) + "]\n"; // SL: MSHR pressure
    }
    text += "    JMP .bb_main.1\n";
    text += ".bb_main.1:\n";
    for (int i = 0; i < 6; ++i)
        text += "    IMUL R11, R11\n";
    const isa::Program prog = isa::assemble(text);
    std::printf("%s\n", isa::formatProgram(prog).c_str());

    for (unsigned mshrs : {256u, 2u}) {
        executor::HarnessConfig cfg;
        cfg.defense.kind = defense::DefenseKind::InvisiSpec;
        cfg.defense.invisispecBugSpecEviction = false; // patched
        cfg.prime = executor::PrimeMode::ConflictFill;
        cfg.core.l1dMshrs = mshrs;
        cfg.bootInsts = 2000;
        executor::SimHarness harness(cfg);
        const isa::FlatProgram fp(prog, cfg.map.codeBase);

        arch::Input a = zeroInput(cfg.map);
        arch::Input b = a;
        a.regs[isa::regIndex(isa::Reg::Rbx)] = 0xa00; // cold: interference
        b.regs[isa::regIndex(isa::Reg::Rbx)] = 0x000; // coalesce: none
        b.id = 1;

        std::printf("--- %u MSHRs ---\n", mshrs);
        const PairResult r = runPair(harness, fp, a, b);
        printDiff(r);
        if (mshrs == 2) {
            std::printf("\nTable 7-style operation sequence (note the "
                        "Expose/ExposeStall rows):\n");
            printEventTable(harness, fp, a, b);
        }
        std::printf("\n");
    }
    std::printf("Expected: with 256 MSHRs the Expose always completes "
                "(no difference). With 2 MSHRs,\ninput A's speculative "
                "misses hold the MSHRs, the NSL's Expose stalls at the "
                "queue head\nand is cut off by the end of the test — its "
                "line (0x800200) is missing from A's trace.\n");
    return 0;
}

/**
 * @file
 * Table 5: testing the baseline O3 with different μarch trace formats.
 * Shapes to compare: the default L1D+TLB snapshot catches most violating
 * test cases at the highest throughput; memory-access order catches the
 * most but runs much slower (extra validations); BP-state and branch-
 * prediction order catch few, and most of what they catch the baseline
 * format also catches.
 */

#include <cstdio>

#include "bench_util.hh"

int
main()
{
    using namespace bench_util;
    header("μarch trace formats: throughput / coverage / overlap",
           "Table 5");

    // Pass 1: one campaign collecting every format per run (coverage and
    // overlap on identical test cases).
    core::CampaignConfig cfg = campaignFor(defense::DefenseKind::Baseline);
    cfg.numPrograms = scaled(50);
    cfg.collectAllFormats = true;
    cfg.collectSignatures = false;
    core::Campaign campaign(cfg);
    const auto stats = campaign.run();

    std::uint64_t total_flagged = 0;
    for (auto fmt : executor::allTraceFormats()) {
        auto it = stats.formatTallies.find(fmt);
        if (it != stats.formatTallies.end())
            total_flagged = std::max(total_flagged,
                                     it->second.violatingTestCases);
    }
    // "Fraction of total" uses the union across formats; approximate the
    // union by the max (formats overlap heavily), then refine: use sum of
    // baseline + unmatched. Keep the paper's definition: per-format count
    // divided by the count any format detected. Compute the union:
    std::uint64_t union_count = 0;
    for (auto fmt : executor::allTraceFormats()) {
        auto it = stats.formatTallies.find(fmt);
        if (it != stats.formatTallies.end())
            union_count = std::max(union_count,
                                   it->second.violatingTestCases);
    }
    if (union_count == 0)
        union_count = 1;

    // Pass 2: per-format campaigns for throughput (validation overheads
    // differ per format).
    std::printf("%-24s %12s %14s %14s\n", "Trace format",
                "Throughput", "Fraction of", "Covered by");
    std::printf("%-24s %12s %14s %14s\n", "", "(tests/s)",
                "violations", "L1D+TLB");
    for (auto fmt : executor::allTraceFormats()) {
        core::CampaignConfig pcfg =
            campaignFor(defense::DefenseKind::Baseline);
        pcfg.numPrograms = scaled(25);
        pcfg.harness.traceFormat = fmt;
        pcfg.collectSignatures = false;
        core::Campaign pcamp(pcfg);
        const auto pstats = pcamp.run();

        const auto it = stats.formatTallies.find(fmt);
        const std::uint64_t flagged =
            it != stats.formatTallies.end()
                ? it->second.violatingTestCases
                : 0;
        const std::uint64_t covered =
            it != stats.formatTallies.end()
                ? it->second.coveredByBaseline
                : 0;
        std::printf("%-24s %12.0f %13.1f%% %13.1f%%\n",
                    executor::traceFormatName(fmt), pstats.throughput(),
                    100.0 * static_cast<double>(flagged) /
                        static_cast<double>(union_count),
                    flagged ? 100.0 * static_cast<double>(covered) /
                                  static_cast<double>(flagged)
                            : 0.0);
    }
    std::printf(
        "\nPaper shapes: L1D+TLB ~80%% of violations at best throughput; "
        "memory-access order\ncatches the most (~92%%) at an order of "
        "magnitude lower throughput; BP-state and\nbranch-prediction "
        "order catch little that the default format misses (>70%% "
        "overlap).\n");
    return 0;
}

/**
 * @file
 * Table 10: CleanupSpec KV2 (unXpec) — cleanup latency is on the critical
 * path; inputs whose speculative loads hit (no rollback) finish earlier
 * than inputs whose loads miss (rollback), and the extra time lets
 * runahead instruction fetch install additional L1I lines. Detected when
 * the μarch trace includes the L1I.
 */

#include "bench_util.hh"
#include "demo_util.hh"

int
main()
{
    using namespace demo_util;
    bench_util::header("CleanupSpec KV2 (unXpec): cleanup timing via L1I",
                       "Table 10");

    std::string text;
    text += ".bb_main.0:\n";
    for (int i = 0; i < 8; ++i)
        text += "    MOV R9, qword ptr [R14 + " +
                std::to_string(0x400 + 64 * i) + "]\n"; // warm lines
    text += slowChain("RAX", 8);
    text += "    TEST RAX, RAX\n";
    text += "    JNE .bb_main.1\n";
    for (int i = 0; i < 8; ++i) {
        text += "    AND RBX, 0b111111111111\n";
        text += "    MOV RDX, qword ptr [R14 + RBX + " +
                std::to_string(64 * i) + "]\n"; // spec loads
    }
    text += "    JMP .bb_main.1\n";
    text += ".bb_main.1:\n";
    for (int i = 0; i < 8; ++i)
        text += "    MOV R10, qword ptr [R14 + " +
                std::to_string(0x800 + 64 * i) + "]\n";
    text += trailingWork(8);
    const isa::Program prog = isa::assemble(text);

    for (auto fmt : {executor::TraceFormat::L1dTlb,
                     executor::TraceFormat::L1dTlbL1i}) {
        executor::HarnessConfig cfg;
        cfg.defense.kind = defense::DefenseKind::CleanupSpec;
        cfg.defense.cleanupNoCleanPatch = true; // isolate the timing leak
        cfg.prime = executor::PrimeMode::Invalidate;
        cfg.traceFormat = fmt;
        cfg.bootInsts = 2000;
        executor::SimHarness harness(cfg);
        const isa::FlatProgram fp(prog, cfg.map.codeBase);

        arch::Input a = zeroInput(cfg.map);
        arch::Input b = a;
        a.regs[isa::regIndex(isa::Reg::Rbx)] = 0x400; // hits: no cleanup
        b.regs[isa::regIndex(isa::Reg::Rbx)] = 0xa00; // misses: 8 cleanups
        b.id = 1;

        std::printf("--- trace format: %s ---\n",
                    executor::traceFormatName(fmt));
        const PairResult r = runPair(harness, fp, a, b);
        std::printf("execution time: A=%llu cycles (spec hits), B=%llu "
                    "cycles (spec misses + rollback)\n",
                    static_cast<unsigned long long>(r.runA.cycles),
                    static_cast<unsigned long long>(r.runB.cycles));
        printDiff(r);
        std::printf("\n");
    }
    std::printf("Expected: the default D-side trace is clean (rollback is "
                "state-correct here), but the\nexecution times differ and "
                "the L1I-extended trace shows different runahead fetch "
                "depth —\nthe unXpec timing channel.\n");
    return 0;
}

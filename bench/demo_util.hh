/**
 * @file
 * Crafted attack programs and pair-running helpers for the deterministic
 * figure/table demos (Fig. 4/6/8/9, Tables 7/9/10). These mirror the
 * paper's violating test cases in its own listing syntax.
 */

#ifndef AMULET_BENCH_DEMO_UTIL_HH
#define AMULET_BENCH_DEMO_UTIL_HH

#include <cstdio>
#include <string>

#include "executor/sim_harness.hh"
#include "isa/assembler.hh"
#include "isa/disasm.hh"

namespace demo_util
{

using namespace amulet;

inline std::string
slowChain(const char *reg, int imuls, int offset = 0)
{
    std::string s = "    MOV " + std::string(reg) +
                    ", qword ptr [R14 + " + std::to_string(offset) + "]\n";
    for (int i = 0; i < imuls; ++i)
        s += "    IMUL " + std::string(reg) + ", " + std::string(reg) +
             "\n";
    return s;
}

inline std::string
trailingWork(int imuls = 40)
{
    std::string s = "    MOV R11, qword ptr [R14 + 8]\n";
    for (int i = 0; i < imuls; ++i)
        s += "    IMUL R11, R11\n";
    return s;
}

inline arch::Input
zeroInput(const mem::AddressMap &map)
{
    arch::Input input;
    input.regs.fill(0);
    input.sandbox.assign(map.sandboxSize(), 0);
    input.sandbox[0] = 3;
    input.sandbox[8] = 7;
    input.sandbox[16] = 5;
    return input;
}

struct PairResult
{
    executor::UTrace traceA;
    executor::UTrace traceB;
    uarch::RunResult runA;
    uarch::RunResult runB;
    bool differs = false;
};

inline PairResult
runPair(executor::SimHarness &harness, const isa::FlatProgram &fp,
        const arch::Input &a, const arch::Input &b)
{
    harness.loadProgram(&fp);
    PairResult out;
    auto ra = harness.runInput(a);
    out.runA = ra.run;
    out.traceA = ra.trace;
    auto rb = harness.runInput(b);
    out.runB = rb.run;
    out.traceB = rb.trace;
    out.differs = !(out.traceA == out.traceB);
    return out;
}

inline void
printDiff(const PairResult &r)
{
    std::printf("uarch traces %s\n", r.differs ? "DIFFER (violation)"
                                               : "match (no leak)");
    if (r.differs) {
        std::printf("  differing addresses:");
        for (Addr w : executor::traceDiffAddrs(r.traceA, r.traceB))
            std::printf(" 0x%llx", static_cast<unsigned long long>(w));
        std::printf("\n");
    }
}

/** Print the root-cause events of both runs side by side, Table 7/9/10
 *  style. */
inline void
printEventTable(executor::SimHarness &harness, const isa::FlatProgram &fp,
                const arch::Input &a, const arch::Input &b)
{
    auto collect = [&](const arch::Input &in) {
        harness.loadProgram(&fp);
        harness.eventLog().clear();
        harness.setEventLogging(true);
        harness.runInput(in);
        harness.setEventLogging(false);
        std::vector<Event> out;
        for (const Event &e : harness.eventLog().events()) {
            switch (e.kind) {
              case EventKind::LoadExec:
              case EventKind::StoreExec:
              case EventKind::SquashBranch:
              case EventKind::SquashMemOrder:
              case EventKind::SpecEviction:
              case EventKind::Expose:
              case EventKind::ExposeStall:
              case EventKind::CleanupUndo:
              case EventKind::CleanupSkipped:
              case EventKind::CleanupOverclean:
              case EventKind::TaintedStoreTlb:
              case EventKind::LfbHold:
              case EventKind::LfbUnsafeBypass:
              case EventKind::SpecBufferFill:
                out.push_back(e);
                break;
              default:
                break;
            }
        }
        return out;
    };
    const auto ev_a = collect(a);
    const auto ev_b = collect(b);
    const std::size_t rows = std::max(ev_a.size(), ev_b.size());
    std::printf("%-46s | %s\n", "Input A", "Input B");
    std::printf("%s\n", std::string(96, '-').c_str());
    for (std::size_t i = 0; i < rows; ++i) {
        std::string left = i < ev_a.size() ? ev_a[i].format() : "";
        std::string right = i < ev_b.size() ? ev_b[i].format() : "";
        if (left.size() > 46)
            left.resize(46);
        std::printf("%-46s | %s\n", left.c_str(), right.c_str());
    }
}

} // namespace demo_util

#endif // AMULET_BENCH_DEMO_UTIL_HH

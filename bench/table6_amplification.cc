/**
 * @file
 * Table 6: testing InvisiSpec (patched) with smaller μarch structures.
 * Shapes to compare: the default 8-way/256-MSHR configuration finds no
 * violations; shrinking the L1D to 2 ways speeds the campaign (smaller
 * conflict-fill priming) but still finds nothing; shrinking MSHRs to 2
 * reveals the same-core MSHR-interference violations (UV2).
 */

#include <cstdio>

#include "bench_util.hh"

int
main()
{
    using namespace bench_util;
    header("Leakage amplification on InvisiSpec (patched)", "Table 6");

    struct Config
    {
        const char *name;
        unsigned ways;
        unsigned mshrs;
    };
    const Config configs[] = {
        {"Patched, 8-way L1D, 256 MSHRs", 8, 256},
        {"Patched, 2-way L1D, 256 MSHRs", 2, 256},
        {"Patched, 2-way L1D,   2 MSHRs", 2, 2},
    };

    std::printf("%-34s %10s %10s %10s\n", "InvisiSpec configuration",
                "Time (s)", "Tests/s", "Violation");
    for (const Config &c : configs) {
        core::CampaignConfig cfg =
            campaignFor(defense::DefenseKind::InvisiSpec, true);
        cfg.harness.core.l1d.ways = c.ways;
        cfg.harness.core.l1dMshrs = c.mshrs;
        cfg.numPrograms = scaled(60);
        cfg.seed = 101;
        core::Campaign campaign(cfg);
        const auto stats = campaign.run();
        std::printf("%-34s %10.1f %10.0f %10s\n", c.name,
                    stats.wallSeconds, stats.throughput(),
                    stats.detected() ? "YES" : "no");
        for (const auto &[sig, count] : stats.signatureCounts)
            std::printf("    signature %-28s x%llu\n", sig.c_str(),
                        static_cast<unsigned long long>(count));
    }
    std::printf(
        "\nPaper shapes: no violations at 8-way/256; 2-way runs ~2.6x "
        "faster (fewer priming\ninstructions) and still finds nothing; "
        "2 MSHRs expose the UV2 interference class.\nNote: UV2 needs a "
        "precise MSHR/expose race; at laptop campaign scales it may take "
        "many\nprograms — the deterministic fig6 bench demonstrates the "
        "mechanism directly.\n");
    return 0;
}

/**
 * @file
 * Table 11: lines of code per defense integration. The paper reports the
 * LoC added to each defense's gem5 tree for the test harness, socket
 * communication, and trace extraction; here the analogous split is the
 * per-defense module (defense-specific logic) versus the shared executor/
 * trace machinery every target reuses — the same portability argument
 * (§5.1). Counts are computed from the source tree at run time.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hh"

namespace fs = std::filesystem;

namespace
{

std::size_t
countLoc(const fs::path &path)
{
    std::ifstream in(path);
    std::size_t lines = 0;
    std::string line;
    while (std::getline(in, line)) {
        // Count non-blank, non-pure-comment lines.
        const auto pos = line.find_first_not_of(" \t");
        if (pos == std::string::npos)
            continue;
        if (line.compare(pos, 2, "//") == 0 ||
            line.compare(pos, 2, "/*") == 0 || line[pos] == '*') {
            continue;
        }
        ++lines;
    }
    return lines;
}

fs::path
findSourceRoot()
{
    for (fs::path p : {fs::path("src"), fs::path("../src"),
                       fs::path("../../src")}) {
        if (fs::exists(p / "defense"))
            return p;
    }
    return {};
}

} // namespace

int
main()
{
    bench_util::header("Lines of code per defense integration", "Table 11");

    const fs::path root = findSourceRoot();
    if (root.empty()) {
        std::printf("source tree not found (run from the repository "
                    "root)\n");
        return 1;
    }

    struct Target
    {
        const char *name;
        std::vector<const char *> files;
    };
    const Target targets[] = {
        {"InvisiSpec", {"defense/invisispec.hh", "defense/invisispec.cc"}},
        {"CleanupSpec",
         {"defense/cleanupspec.hh", "defense/cleanupspec.cc"}},
        {"STT", {"defense/stt.hh", "defense/stt.cc"}},
        {"SpecLFB", {"defense/speclfb.hh", "defense/speclfb.cc"}},
    };

    std::size_t shared = 0;
    for (const char *f :
         {"defense/defense.hh", "defense/factory.hh", "defense/factory.cc",
          "executor/sim_harness.hh", "executor/sim_harness.cc",
          "executor/uarch_trace.hh", "executor/uarch_trace.cc"}) {
        shared += countLoc(root / f);
    }

    std::printf("%-14s %20s %22s\n", "Defense", "Defense-specific LoC",
                "Shared harness+trace LoC");
    for (const Target &t : targets) {
        std::size_t loc = 0;
        for (const char *f : t.files)
            loc += countLoc(root / f);
        std::printf("%-14s %20zu %22zu\n", t.name, loc, shared);
    }
    std::printf(
        "\nPaper shape (Table 11): per-defense integration is small "
        "(~1k LoC in gem5, most of it\nreusable harness/IPC/trace code); "
        "here each countermeasure is a few hundred lines against\na fixed "
        "hook interface while the harness and trace machinery are fully "
        "shared.\n");
    return 0;
}

/**
 * @file
 * Google-benchmark microbenchmarks for the simulator's components:
 * cache/TLB operations, the reference emulator, contract-trace collection,
 * program generation, and end-to-end simulated test cases. These quantify
 * the cost model behind Tables 2-4.
 */

#include <benchmark/benchmark.h>

#include "arch/emulator.hh"
#include "contracts/leakage_model.hh"
#include "core/generator.hh"
#include "core/input_gen.hh"
#include "executor/sim_harness.hh"
#include "uarch/cache.hh"

namespace
{

using namespace amulet;

void
BM_CacheInstallEvict(benchmark::State &state)
{
    uarch::CacheParams params{32 * 1024, 8, 64};
    uarch::Cache cache(params);
    Addr addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.install(addr));
        addr += 64;
    }
}
BENCHMARK(BM_CacheInstallEvict);

void
BM_CacheSnapshot(benchmark::State &state)
{
    uarch::CacheParams params{32 * 1024, 8, 64};
    uarch::Cache cache(params);
    for (Addr a = 0; a < 32 * 1024; a += 64)
        cache.install(a);
    for (auto _ : state)
        benchmark::DoNotOptimize(cache.snapshot());
}
BENCHMARK(BM_CacheSnapshot);

core::GeneratorConfig
genConfig()
{
    core::GeneratorConfig cfg;
    cfg.map = mem::AddressMap{};
    return cfg;
}

void
BM_ProgramGeneration(benchmark::State &state)
{
    Rng rng(7);
    for (auto _ : state) {
        core::ProgramGenerator gen(genConfig(), rng.split());
        benchmark::DoNotOptimize(gen.generate());
    }
}
BENCHMARK(BM_ProgramGeneration);

void
BM_EmulatorRun(benchmark::State &state)
{
    Rng rng(7);
    core::ProgramGenerator gen(genConfig(), rng.split());
    const isa::Program prog = gen.generate();
    const isa::FlatProgram fp(prog, 0x400000);
    core::InputGenConfig icfg;
    icfg.map = mem::AddressMap{};
    core::InputGenerator igen(icfg, rng.split());
    const arch::Input input = igen.generate(0);
    for (auto _ : state) {
        arch::ArchState st;
        st.loadInput(input, icfg.map);
        arch::Emulator emu(fp, std::move(st));
        benchmark::DoNotOptimize(emu.run());
    }
}
BENCHMARK(BM_EmulatorRun);

void
BM_ContractTraceCtSeq(benchmark::State &state)
{
    Rng rng(9);
    core::ProgramGenerator gen(genConfig(), rng.split());
    const isa::Program prog = gen.generate();
    const isa::FlatProgram fp(prog, 0x400000);
    core::InputGenConfig icfg;
    icfg.map = mem::AddressMap{};
    core::InputGenerator igen(icfg, rng.split());
    const arch::Input input = igen.generate(0);
    contracts::LeakageModel model(contracts::ctSeq());
    for (auto _ : state)
        benchmark::DoNotOptimize(model.collect(fp, input, icfg.map));
}
BENCHMARK(BM_ContractTraceCtSeq);

void
BM_ContractTraceCtCond(benchmark::State &state)
{
    Rng rng(9);
    core::ProgramGenerator gen(genConfig(), rng.split());
    const isa::Program prog = gen.generate();
    const isa::FlatProgram fp(prog, 0x400000);
    core::InputGenConfig icfg;
    icfg.map = mem::AddressMap{};
    core::InputGenerator igen(icfg, rng.split());
    const arch::Input input = igen.generate(0);
    contracts::LeakageModel model(contracts::ctCond());
    for (auto _ : state)
        benchmark::DoNotOptimize(model.collect(fp, input, icfg.map));
}
BENCHMARK(BM_ContractTraceCtCond);

void
BM_SimulatedTestCase(benchmark::State &state)
{
    executor::HarnessConfig cfg;
    cfg.defense.kind = static_cast<defense::DefenseKind>(state.range(0));
    cfg.prime = executor::PrimeMode::ConflictFill;
    cfg.bootInsts = 2000;
    executor::SimHarness harness(cfg);

    Rng rng(11);
    core::ProgramGenerator gen(genConfig(), rng.split());
    const isa::Program prog = gen.generate();
    const isa::FlatProgram fp(prog, cfg.map.codeBase);
    harness.loadProgram(&fp);
    core::InputGenConfig icfg;
    icfg.map = cfg.map;
    core::InputGenerator igen(icfg, rng.split());
    const arch::Input input = igen.generate(0);

    for (auto _ : state)
        benchmark::DoNotOptimize(harness.runInput(input));
}
BENCHMARK(BM_SimulatedTestCase)
    ->Arg(static_cast<int>(defense::DefenseKind::Baseline))
    ->Arg(static_cast<int>(defense::DefenseKind::InvisiSpec))
    ->Arg(static_cast<int>(defense::DefenseKind::CleanupSpec))
    ->Arg(static_cast<int>(defense::DefenseKind::Stt))
    ->Arg(static_cast<int>(defense::DefenseKind::SpecLfb));

void
BM_SimulatorStartup(benchmark::State &state)
{
    executor::HarnessConfig cfg;
    cfg.bootInsts = 8000;
    for (auto _ : state) {
        executor::SimHarness harness(cfg);
        harness.start();
        benchmark::DoNotOptimize(harness.startCount());
    }
}
BENCHMARK(BM_SimulatorStartup);

} // namespace

BENCHMARK_MAIN();

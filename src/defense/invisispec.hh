/**
 * @file
 * InvisiSpec (Yan et al., MICRO 2018), Futuristic mode.
 *
 * Speculative loads fetch data into a speculative buffer that is invisible
 * to the cache hierarchy; once a load becomes safe, an Expose request
 * makes the line architecturally visible (installing it into the L1D and
 * performing any replacement).
 *
 * The as-published gem5 implementation carries the bug AMuLeT found
 * (UV1, Listing 1): on a speculative miss whose set is full, the L1
 * controller triggers a replacement *before* the spec-buffer fill, leaking
 * the victim's address through an eviction. `bugSpecEviction=false`
 * applies the paper's patch (Listing 2). The same-core MSHR interference
 * vulnerability (UV2) is not a flag: it emerges from Expose requests
 * competing for finite MSHRs in the in-order controller queue.
 */

#ifndef AMULET_DEFENSE_INVISISPEC_HH
#define AMULET_DEFENSE_INVISISPEC_HH

#include <map>
#include <vector>

#include "defense/defense.hh"

namespace amulet::defense
{

/** InvisiSpec countermeasure. */
class InvisiSpec final : public Defense
{
  public:
    /**
     * @param params            core configuration (spec-buffer size)
     * @param bug_spec_eviction keep the UV1 replacement bug (default: the
     *                          behaviour of the public artifact)
     */
    explicit InvisiSpec(const uarch::CoreParams &params,
                        bool bug_spec_eviction = true);

    std::string name() const override { return "InvisiSpec"; }
    void attach(Pipeline *pipeline, MemSystem *mem, EventLog *log) override;
    void reset() override;
    SpecMode specMode() const override { return SpecMode::Futuristic; }

    LoadPlan planLoad(DynInst &inst) override;
    void onBecameSafe(DynInst &inst) override;
    void onSquash(DynInst &inst) override;
    void onReqComplete(const MemReq &req) override;

    /** Event-horizon audit: fully event-driven. The spec buffer and
     *  ownership map change only in onBecameSafe/onSquash/onReqComplete;
     *  planLoad never blocks; Exposes ride the L1D controller queue,
     *  whose occupancy MemSystem::nextEventCycle already pins. */
    Cycle nextEventCycle(Cycle) const override { return kNoEventCycle; }

    const uarch::SideBuffer &specBuffer() const { return buffer_; }

  private:
    void issueExpose(Addr line_addr, SeqNum seq, Addr pc);

    bool bugSpecEviction_;
    uarch::SideBuffer buffer_;
    /** Spec-buffer lines owned by each in-flight speculative load. */
    std::map<SeqNum, std::vector<Addr>> ownedLines_;
};

} // namespace amulet::defense

#endif // AMULET_DEFENSE_INVISISPEC_HH

#include "defense/cleanupspec.hh"

#include "uarch/pipeline.hh"

namespace amulet::defense
{

void
CleanupSpec::reset()
{
    undoLog_.clear();
}

LoadPlan
CleanupSpec::planLoad(DynInst &inst)
{
    LoadPlan plan;
    // Loads always install normally; what distinguishes CleanupSpec is the
    // rollback metadata. Non-speculative touches set the noClean marker.
    plan.markNonSpec = inst.safe;
    return plan;
}

void
CleanupSpec::onStoreAddrReady(DynInst &inst)
{
    if (inst.isLoad)
        return; // RMW: the load side's install covers the line

    // CleanupSpec lets stores modify the cache at execute (write-allocate)
    // and undoes the change on a squash.
    const Addr line_a = mem_->l1d().lineAddrOf(inst.memAddr);
    const Addr line_b =
        mem_->l1d().lineAddrOf(inst.memAddr + inst.memSize - 1);
    inst.split = line_a != line_b;
    if (inst.split)
        log_->record(pipe_->now(), EventKind::SplitRequest, inst.seq,
                     inst.pc, inst.memAddr);
    for (Addr line : {line_a, line_b}) {
        MemReq req;
        req.kind = ReqKind::SpecStoreInstall;
        req.lineAddr = line;
        req.seq = inst.seq;
        req.pc = inst.pc;
        req.dest = FillDest::L1D;
        req.markNonSpec = inst.safe;
        req.splitPiece = inst.split;
        mem_->enqueueL1D(req);
        if (line_a == line_b)
            break;
    }
}

void
CleanupSpec::recordUndo(SeqNum seq, const MemReq &req)
{
    if (req.splitPiece && opt_.bugSplitNotCleaned) {
        // UV4: "// TODO: Cleanup for SplitReq" — never rolled back.
        log_->record(pipe_->now(), EventKind::CleanupSkipped, seq, req.pc,
                     req.lineAddr, "split request (UV4)");
        return;
    }
    undoLog_[seq].push_back(
        {req.lineAddr, req.evictedLine, req.evictedWasNonSpec, req.pc});
    if (DynInst *e = pipe_->entry(seq))
        e->undoLogged = true;
}

void
CleanupSpec::enqueueCleanup(Addr line, Addr victim, bool victim_non_spec,
                            SeqNum seq, Addr pc)
{
    MemReq req;
    req.kind = ReqKind::Cleanup;
    req.lineAddr = line;
    req.seq = seq;
    req.pc = pc;
    req.cleanupInvalidate = line;
    // Restoring a victim that was itself speculative would resurrect
    // state another rollback intends to erase; only architectural
    // (non-speculative) victims are restored from the L2 copy.
    req.cleanupRestore = victim_non_spec ? victim : kNoAddr;
    mem_->enqueueL1D(req);
}

void
CleanupSpec::applyCleanup(const MemReq &req)
{
    uarch::Cache &l1d = mem_->l1d();
    const Addr line = req.cleanupInvalidate;
    if (line != kNoAddr && l1d.present(line)) {
        if (l1d.nonSpecTouched(line)) {
            if (opt_.noCleanPatch) {
                // Patched: the line was also touched non-speculatively;
                // cleaning it would erase an architectural footprint.
                log_->record(pipe_->now(), EventKind::CleanupUndo, req.seq,
                             req.pc, line, "noClean: skip (patched)");
            } else {
                // UV5: too much cleaning — a non-speculative access to the
                // same line is erased along with the speculative install.
                log_->record(pipe_->now(), EventKind::CleanupOverclean,
                             req.seq, req.pc, line, "UV5");
                l1d.invalidate(line);
            }
        } else {
            log_->record(pipe_->now(), EventKind::CleanupUndo, req.seq,
                         req.pc, line, "invalidate (spec-only line)");
            l1d.invalidate(line);
        }
    }
    if (req.cleanupRestore != kNoAddr)
        l1d.install(req.cleanupRestore, true);
    log_->record(pipe_->now(), EventKind::CleanupUndo, req.seq, req.pc,
                 line);
}

void
CleanupSpec::onSquash(DynInst &inst)
{
    if (!inst.isLoad && !inst.isStore)
        return;
    auto it = undoLog_.find(inst.seq);
    if (it == undoLog_.end())
        return;
    for (const UndoEntry &u : it->second)
        enqueueCleanup(u.line, u.victim, u.victimNonSpec, inst.seq, u.pc);
    undoLog_.erase(it);
}

void
CleanupSpec::onReqComplete(const MemReq &req)
{
    switch (req.kind) {
      case ReqKind::Load: {
        if (req.wasHit)
            return; // hits change no cache state; nothing to undo
        DynInst *e = pipe_->entry(req.seq);
        if (!e || e->squashed) {
            // Fill arrived after the speculative load was squashed: the
            // line was just installed and must be cleaned immediately.
            if (req.splitPiece && opt_.bugSplitNotCleaned) {
                log_->record(pipe_->now(), EventKind::CleanupSkipped,
                             req.seq, req.pc, req.lineAddr,
                             "split request (UV4)");
                return;
            }
            enqueueCleanup(req.lineAddr, req.evictedLine,
                           req.evictedWasNonSpec, req.seq, req.pc);
            return;
        }
        if (!e->wasUnsafeAtIssue)
            return; // non-speculative miss: no rollback metadata needed
        recordUndo(req.seq, req);
        return;
      }
      case ReqKind::SpecStoreInstall: {
        if (req.wasHit)
            return;
        if (opt_.bugStoreNotCleaned) {
            // UV3: writeCallback() lacks the hit/miss cleanup metadata,
            // so speculative stores are never rolled back.
            log_->record(pipe_->now(), EventKind::CleanupSkipped, req.seq,
                         req.pc, req.lineAddr, "spec store (UV3)");
            return;
        }
        DynInst *e = pipe_->entry(req.seq);
        if (!e || e->squashed) {
            if (!(req.splitPiece && opt_.bugSplitNotCleaned))
                enqueueCleanup(req.lineAddr, req.evictedLine,
                               req.evictedWasNonSpec, req.seq, req.pc);
            return;
        }
        if (!e->wasUnsafeAtIssue)
            return; // non-speculative store: no rollback needed
        recordUndo(req.seq, req);
        return;
      }
      case ReqKind::Cleanup:
        applyCleanup(req);
        return;
      default:
        return;
    }
}

} // namespace amulet::defense

#include "defense/speclfb.hh"

#include "uarch/pipeline.hh"

namespace amulet::defense
{

SpecLfb::SpecLfb(const uarch::CoreParams &params,
                 bool bug_first_load_unprotected)
    : bugFirstLoadUnprotected_(bug_first_load_unprotected),
      lfb_(params.lfbEntries)
{
}

void
SpecLfb::attach(Pipeline *pipeline, MemSystem *mem, EventLog *log)
{
    Defense::attach(pipeline, mem, log);
    mem_->setSideBuffer(&lfb_);
}

void
SpecLfb::reset()
{
    lfb_.clear();
    heldLines_.clear();
}

LoadPlan
SpecLfb::planLoad(DynInst &inst)
{
    LoadPlan plan;
    if (inst.safe)
        return plan; // non-speculative: ordinary access

    // UV6: `isReallyUnsafe` is cleared when no prior unsafe load exists in
    // the LSQ, so the first speculative load is treated as safe and
    // installs into the cache normally.
    if (bugFirstLoadUnprotected_ &&
        !pipe_->olderUnsafeLoadExists(inst.seq)) {
        log_->record(pipe_->now(), EventKind::LfbUnsafeBypass, inst.seq,
                     inst.pc, inst.memAddr, "UV6 first spec load");
        return plan;
    }

    plan.dest = FillDest::SideBuffer;
    plan.invisibleHit = true;
    plan.probeSideBuffer = true;
    return plan;
}

void
SpecLfb::onBecameSafe(DynInst &inst)
{
    if (!inst.isLoad)
        return;
    auto it = heldLines_.find(inst.seq);
    if (it == heldLines_.end())
        return;
    // Safe: the held fill moves from the LFB into the L1D.
    for (Addr line : it->second) {
        lfb_.erase(line);
        const Addr evicted = mem_->l1d().install(line);
        log_->record(pipe_->now(), EventKind::CacheFill, inst.seq, inst.pc,
                     line, "LFB install");
        if (evicted != kNoAddr)
            log_->record(pipe_->now(), EventKind::CacheEvict, inst.seq,
                         inst.pc, evicted, "L1D");
    }
    heldLines_.erase(it);
    inst.lfbHeld = false;
}

void
SpecLfb::onSquash(DynInst &inst)
{
    if (!inst.isLoad)
        return;
    auto it = heldLines_.find(inst.seq);
    if (it == heldLines_.end())
        return;
    for (Addr line : it->second)
        lfb_.erase(line);
    heldLines_.erase(it);
}

void
SpecLfb::onReqComplete(const MemReq &req)
{
    if (req.kind != ReqKind::Load || req.dest != FillDest::SideBuffer ||
        req.wasHit) {
        return;
    }
    DynInst *e = pipe_->entry(req.seq);
    if (!e || e->squashed)
        return; // dropped: squashed before the fill arrived
    if (e->safe) {
        // Became safe while the miss was in flight: install directly.
        const Addr evicted = mem_->l1d().install(req.lineAddr);
        log_->record(pipe_->now(), EventKind::CacheFill, req.seq, req.pc,
                     req.lineAddr, "LFB install");
        if (evicted != kNoAddr)
            log_->record(pipe_->now(), EventKind::CacheEvict, req.seq,
                         req.pc, evicted, "L1D");
        return;
    }
    lfb_.insert(req.lineAddr);
    e->lfbHeld = true;
    heldLines_[req.seq].push_back(req.lineAddr);
    log_->record(pipe_->now(), EventKind::LfbHold, req.seq, req.pc,
                 req.lineAddr);
}

} // namespace amulet::defense

/**
 * @file
 * STT — Speculative Taint Tracking (Yu et al., MICRO 2019), Futuristic.
 *
 * Data returned by speculative "access" loads is tainted; taint propagates
 * through the dataflow graph; "transmit" instructions (loads/stores whose
 * *address* depends on tainted data) are blocked from executing until the
 * taint is lifted, which happens when the access load reaches the
 * visibility point (becomes safe under the Futuristic model).
 *
 * The as-published gem5 implementation carries the bug AMuLeT confirmed
 * (KV3, previously found by DOLMA): tainted speculative *stores* still
 * execute their address translation, installing a D-TLB entry that leaks
 * the tainted address. `bugTaintedStoreTlb=false` blocks tainted stores
 * entirely (the DOLMA-style fix).
 */

#ifndef AMULET_DEFENSE_STT_HH
#define AMULET_DEFENSE_STT_HH

#include "defense/defense.hh"

namespace amulet::defense
{

/** Speculative Taint Tracking countermeasure. */
class Stt final : public Defense
{
  public:
    explicit Stt(bool bug_tainted_store_tlb = true)
        : bugTaintedStoreTlb_(bug_tainted_store_tlb)
    {
    }

    std::string name() const override { return "STT"; }
    SpecMode specMode() const override { return SpecMode::Futuristic; }

    void tick() override;
    bool blockLoadIssue(DynInst &inst) override;
    bool blockStoreExec(DynInst &inst) override;
    void onStoreAddrReady(DynInst &inst) override;

    /** Event-horizon audit: STT holds no countdowns. tick() recomputes
     *  the taint fixpoint from the ROB's current issued/safe/squashed
     *  bits — over unchanged pipeline state it reproduces the same
     *  taints and logs nothing (TaintSet/TaintLift fire on transitions
     *  only) — and the blocking hooks are pure queries of that fixpoint
     *  (TransmitBlocked is first-attempt-latched via blockLogged). */
    Cycle nextEventCycle(Cycle) const override { return kNoEventCycle; }

  private:
    bool addrTainted(const DynInst &inst) const;

    bool bugTaintedStoreTlb_;
};

} // namespace amulet::defense

#endif // AMULET_DEFENSE_STT_HH

#include "defense/stt.hh"

#include "uarch/pipeline.hh"

namespace amulet::defense
{

void
Stt::tick()
{
    // Recompute taint over the ROB in program order each cycle. A load is
    // a taint root while it executed speculatively and is not yet safe;
    // once the SpecTracker marks it safe the recomputation untaints it and
    // (transitively) its dependents — the untaint broadcast.
    for (DynInst &e : pipe_->rob()) {
        const bool root = e.isLoad && e.issued && e.wasUnsafeAtIssue &&
                          !e.safe && !e.squashed;
        bool tainted = root;
        if (!tainted) {
            for (const auto &src : e.srcs) {
                const DynInst *p = pipe_->entry(src.producer);
                if (p && p->tainted) {
                    tainted = true;
                    break;
                }
            }
            if (!tainted && e.needsFlags) {
                const DynInst *p = pipe_->entry(e.flagsProducer);
                if (p && p->tainted)
                    tainted = true;
            }
        }
        if (tainted != e.tainted) {
            log_->record(pipe_->now(),
                         tainted ? EventKind::TaintSet
                                 : EventKind::TaintLift,
                         e.seq, e.pc);
            e.tainted = tainted;
        }
    }
}

bool
Stt::addrTainted(const DynInst &inst) const
{
    for (const auto &src : inst.srcs) {
        if (!src.forAddress)
            continue;
        const DynInst *p = pipe_->entry(src.producer);
        if (p && p->tainted)
            return true;
    }
    return false;
}

bool
Stt::blockLoadIssue(DynInst &inst)
{
    if (!addrTainted(inst))
        return false;
    if (!inst.blockLogged) {
        log_->record(pipe_->now(), EventKind::TransmitBlocked, inst.seq,
                     inst.pc, 0, "tainted load address");
        inst.blockLogged = true;
    }
    return true;
}

bool
Stt::blockStoreExec(DynInst &inst)
{
    if (bugTaintedStoreTlb_)
        return false; // KV3: tainted stores are (incorrectly) executed
    if (!addrTainted(inst))
        return false;
    if (!inst.blockLogged) {
        log_->record(pipe_->now(), EventKind::TransmitBlocked, inst.seq,
                     inst.pc, 0, "tainted store address");
        inst.blockLogged = true;
    }
    return true;
}

void
Stt::onStoreAddrReady(DynInst &inst)
{
    // The pipeline already performed the store's address translation
    // (D-TLB access + fill). With the bug enabled that access happened
    // even though the address was tainted — the KV3 leak.
    if (bugTaintedStoreTlb_ && addrTainted(inst)) {
        log_->record(pipe_->now(), EventKind::TaintedStoreTlb, inst.seq,
                     inst.pc, inst.memAddr, "KV3");
    }
}

} // namespace amulet::defense

/**
 * @file
 * SpecLFB (Cheng et al., USENIX Security 2024).
 *
 * Adds a security check to the line-fill buffer: speculative loads that
 * miss the L1D are held in the LFB and not installed into the cache until
 * they become safe (Delay-on-Miss style); squashed loads are dropped from
 * the LFB without any cache side effect.
 *
 * The open-source gem5 implementation carries the undocumented
 * optimization AMuLeT found (UV6, Figure 8): a speculative load with no
 * prior unsafe load in the load-store queue has its `isReallyUnsafe` flag
 * cleared and is treated as safe — so the *first* speculative load
 * installs into the cache normally and single-load Spectre variants leak.
 * `bugFirstLoadUnprotected=false` applies the fix (every speculative load
 * is gated).
 */

#ifndef AMULET_DEFENSE_SPECLFB_HH
#define AMULET_DEFENSE_SPECLFB_HH

#include <map>
#include <vector>

#include "defense/defense.hh"

namespace amulet::defense
{

/** SpecLFB countermeasure. */
class SpecLfb final : public Defense
{
  public:
    explicit SpecLfb(const uarch::CoreParams &params,
                     bool bug_first_load_unprotected = true);

    std::string name() const override { return "SpecLFB"; }
    void attach(Pipeline *pipeline, MemSystem *mem, EventLog *log) override;
    void reset() override;
    SpecMode specMode() const override { return SpecMode::Futuristic; }

    LoadPlan planLoad(DynInst &inst) override;
    void onBecameSafe(DynInst &inst) override;
    void onSquash(DynInst &inst) override;
    void onReqComplete(const MemReq &req) override;

    /** Event-horizon audit: fully event-driven. The LFB and held-line
     *  map change only in onBecameSafe/onSquash/onReqComplete; planLoad
     *  never blocks (it routes fills, including the UV6 bypass, whose
     *  log fires on the single access attempt). */
    Cycle nextEventCycle(Cycle) const override { return kNoEventCycle; }

    const uarch::SideBuffer &lfb() const { return lfb_; }

  private:
    bool bugFirstLoadUnprotected_;
    uarch::SideBuffer lfb_;
    /** LFB lines owned by each held load. */
    std::map<SeqNum, std::vector<Addr>> heldLines_;
};

} // namespace amulet::defense

#endif // AMULET_DEFENSE_SPECLFB_HH

/**
 * @file
 * CleanupSpec (Saileshwar & Qureshi, MICRO 2019).
 *
 * Speculative loads and stores modify the cache immediately; on a squash,
 * an undo log rolls the state back (invalidate the installed line, restore
 * the evicted victim). Rollback occupies the L1 controller for a fixed
 * latency, putting cleanup on the critical path (the unXpec / KV2 timing
 * channel).
 *
 * The as-published implementation carries the bugs and the vulnerability
 * AMuLeT found:
 *  - UV3 `bugStoreNotCleaned`: writeCallback() misses the cleanup
 *    metadata, so speculative-store installs are never rolled back.
 *  - UV4 `bugSplitNotCleaned`: line-crossing (split) requests carry a
 *    `TODO` in the cleanup path and are never rolled back.
 *  - UV5 `noCleanPatch` (off by default): rollback unconditionally
 *    invalidates the line even when a non-speculative access also touched
 *    it ("too much cleaning"); the patch skips cleaning such lines.
 */

#ifndef AMULET_DEFENSE_CLEANUPSPEC_HH
#define AMULET_DEFENSE_CLEANUPSPEC_HH

#include <map>
#include <vector>

#include "defense/defense.hh"

namespace amulet::defense
{

/** CleanupSpec countermeasure. */
class CleanupSpec final : public Defense
{
  public:
    struct Options
    {
        bool bugStoreNotCleaned = true; ///< UV3
        bool bugSplitNotCleaned = true; ///< UV4
        bool noCleanPatch = false;      ///< UV5 mitigation
    };

    CleanupSpec() = default;
    explicit CleanupSpec(Options options) : opt_(options) {}

    std::string name() const override { return "CleanupSpec"; }
    void reset() override;
    SpecMode specMode() const override { return SpecMode::Futuristic; }

    LoadPlan planLoad(DynInst &inst) override;
    void onStoreAddrReady(DynInst &inst) override;
    bool installStoreAtCommit(const DynInst &) override { return false; }
    void onSquash(DynInst &inst) override;
    void onReqComplete(const MemReq &req) override;

    /** Event-horizon audit: fully event-driven. The undo log changes
     *  only in onStoreAddrReady/onSquash/onReqComplete; the timed part
     *  of rollback (cleanupLatency) lives in the MemSystem's L1D
     *  controller, whose queue occupancy pins the horizon. */
    Cycle nextEventCycle(Cycle) const override { return kNoEventCycle; }

    const Options &options() const { return opt_; }

  private:
    struct UndoEntry
    {
        Addr line;
        Addr victim;
        bool victimNonSpec;
        Addr pc;
    };

    void recordUndo(SeqNum seq, const MemReq &req);
    void enqueueCleanup(Addr line, Addr victim, bool victim_non_spec,
                        SeqNum seq, Addr pc);
    void applyCleanup(const MemReq &req);

    Options opt_;
    std::map<SeqNum, std::vector<UndoEntry>> undoLog_;
};

} // namespace amulet::defense

#endif // AMULET_DEFENSE_CLEANUPSPEC_HH

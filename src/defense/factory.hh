/**
 * @file
 * Defense configuration and factory.
 *
 * A DefenseConfig names a countermeasure and its bug/patch switches; bugs
 * default to *on*, matching the public artifacts the paper tested. This is
 * the single entry point campaigns, examples, and benches use to select a
 * target.
 */

#ifndef AMULET_DEFENSE_FACTORY_HH
#define AMULET_DEFENSE_FACTORY_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "defense/defense.hh"

namespace amulet::defense
{

/** Countermeasures available as executor targets. */
enum class DefenseKind
{
    Baseline,
    InvisiSpec,
    CleanupSpec,
    Stt,
    SpecLfb,
};

/** Display name ("InvisiSpec"). */
const char *defenseKindName(DefenseKind kind);

/** Parse a defense name (case-insensitive). */
std::optional<DefenseKind> parseDefenseKind(const std::string &name);

/** All testable targets, baseline first (Table 4's row order). */
std::vector<DefenseKind> allDefenseKinds();

/** Defense selection plus bug/patch switches. */
struct DefenseConfig
{
    DefenseKind kind = DefenseKind::Baseline;

    /** @name Published-artifact bugs (default: present) */
    /// @{
    bool invisispecBugSpecEviction = true;   ///< UV1
    bool cleanupBugStoreNotCleaned = true;   ///< UV3
    bool cleanupBugSplitNotCleaned = true;   ///< UV4
    bool cleanupNoCleanPatch = false;        ///< UV5 mitigation
    bool sttBugTaintedStoreTlb = true;       ///< KV3
    bool speclfbBugFirstLoad = true;         ///< UV6
    /// @}

    /** Convenience: all bugs fixed / patches applied. */
    static DefenseConfig
    patched(DefenseKind kind)
    {
        DefenseConfig c;
        c.kind = kind;
        c.invisispecBugSpecEviction = false;
        c.cleanupBugStoreNotCleaned = false;
        c.cleanupBugSplitNotCleaned = false;
        c.cleanupNoCleanPatch = true;
        c.sttBugTaintedStoreTlb = false;
        c.speclfbBugFirstLoad = false;
        return c;
    }
};

/** Instantiate a defense for a core configuration. */
std::unique_ptr<Defense> makeDefense(const DefenseConfig &config,
                                     const uarch::CoreParams &params);

} // namespace amulet::defense

#endif // AMULET_DEFENSE_FACTORY_HH

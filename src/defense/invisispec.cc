#include "defense/invisispec.hh"

#include "uarch/pipeline.hh"

namespace amulet::defense
{

InvisiSpec::InvisiSpec(const uarch::CoreParams &params,
                       bool bug_spec_eviction)
    : bugSpecEviction_(bug_spec_eviction),
      buffer_(params.specBufferEntries)
{
}

void
InvisiSpec::attach(Pipeline *pipeline, MemSystem *mem, EventLog *log)
{
    Defense::attach(pipeline, mem, log);
    mem_->setSideBuffer(&buffer_);
}

void
InvisiSpec::reset()
{
    buffer_.clear();
    ownedLines_.clear();
}

LoadPlan
InvisiSpec::planLoad(DynInst &inst)
{
    LoadPlan plan;
    if (inst.safe)
        return plan; // non-speculative: ordinary visible access

    // Unsafe speculative load: invisible to the caches. Data is fetched
    // into the speculative buffer; an L1 hit must not refresh LRU state.
    plan.dest = FillDest::SideBuffer;
    plan.invisibleHit = true;
    plan.probeSideBuffer = true;
    plan.bugSpecEvict = bugSpecEviction_;
    inst.inSpecBuffer = true; // the fill will target the spec buffer
    return plan;
}

void
InvisiSpec::issueExpose(Addr line_addr, SeqNum seq, Addr pc)
{
    MemReq req;
    req.kind = ReqKind::Expose;
    req.lineAddr = line_addr;
    req.seq = seq;
    req.pc = pc;
    req.dest = FillDest::L1D;
    mem_->enqueueL1D(req);
    log_->record(pipe_->now(), EventKind::Expose, seq, pc, line_addr);
}

void
InvisiSpec::onBecameSafe(DynInst &inst)
{
    if (!inst.isLoad)
        return;
    auto it = ownedLines_.find(inst.seq);
    if (it == ownedLines_.end())
        return;
    for (Addr line : it->second)
        issueExpose(line, inst.seq, inst.pc);
    ownedLines_.erase(it);
    inst.exposePending = true;
}

void
InvisiSpec::onSquash(DynInst &inst)
{
    if (!inst.isLoad)
        return;
    auto it = ownedLines_.find(inst.seq);
    if (it == ownedLines_.end())
        return;
    for (Addr line : it->second)
        buffer_.erase(line);
    ownedLines_.erase(it);
}

void
InvisiSpec::onReqComplete(const MemReq &req)
{
    switch (req.kind) {
      case ReqKind::Load: {
        if (req.dest != FillDest::SideBuffer || req.wasHit)
            return;
        // A speculative miss filled from L2/memory.
        DynInst *e = pipe_->entry(req.seq);
        if (!e || e->squashed)
            return; // owner squashed mid-flight: never becomes visible
        buffer_.insert(req.lineAddr);
        log_->record(pipe_->now(), EventKind::SpecBufferFill, req.seq,
                     req.pc, req.lineAddr);
        if (e->safe) {
            // Already safe when the fill arrived: expose immediately.
            issueExpose(req.lineAddr, req.seq, req.pc);
        } else {
            ownedLines_[req.seq].push_back(req.lineAddr);
        }
        return;
      }
      case ReqKind::Expose:
        // The MemSystem installed the line into the L1D (or it was
        // already present); drop the now-visible line from the buffer.
        buffer_.erase(req.lineAddr);
        return;
      default:
        return;
    }
}

} // namespace amulet::defense

#include "defense/factory.hh"

#include <algorithm>
#include <cctype>

#include "defense/cleanupspec.hh"
#include "defense/invisispec.hh"
#include "defense/speclfb.hh"
#include "defense/stt.hh"

namespace amulet::defense
{

const char *
defenseKindName(DefenseKind kind)
{
    switch (kind) {
      case DefenseKind::Baseline:    return "Baseline";
      case DefenseKind::InvisiSpec:  return "InvisiSpec";
      case DefenseKind::CleanupSpec: return "CleanupSpec";
      case DefenseKind::Stt:         return "STT";
      case DefenseKind::SpecLfb:     return "SpecLFB";
    }
    return "?";
}

std::optional<DefenseKind>
parseDefenseKind(const std::string &name)
{
    std::string n = name;
    std::transform(n.begin(), n.end(), n.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (n == "baseline" || n == "o3" || n == "none")
        return DefenseKind::Baseline;
    if (n == "invisispec")
        return DefenseKind::InvisiSpec;
    if (n == "cleanupspec")
        return DefenseKind::CleanupSpec;
    if (n == "stt")
        return DefenseKind::Stt;
    if (n == "speclfb")
        return DefenseKind::SpecLfb;
    return std::nullopt;
}

std::vector<DefenseKind>
allDefenseKinds()
{
    return {DefenseKind::Baseline, DefenseKind::InvisiSpec,
            DefenseKind::CleanupSpec, DefenseKind::SpecLfb,
            DefenseKind::Stt};
}

std::unique_ptr<Defense>
makeDefense(const DefenseConfig &config, const uarch::CoreParams &params)
{
    switch (config.kind) {
      case DefenseKind::Baseline:
        return std::make_unique<Baseline>();
      case DefenseKind::InvisiSpec:
        return std::make_unique<InvisiSpec>(
            params, config.invisispecBugSpecEviction);
      case DefenseKind::CleanupSpec: {
        CleanupSpec::Options opt;
        opt.bugStoreNotCleaned = config.cleanupBugStoreNotCleaned;
        opt.bugSplitNotCleaned = config.cleanupBugSplitNotCleaned;
        opt.noCleanPatch = config.cleanupNoCleanPatch;
        return std::make_unique<CleanupSpec>(opt);
      }
      case DefenseKind::Stt:
        return std::make_unique<Stt>(config.sttBugTaintedStoreTlb);
      case DefenseKind::SpecLfb:
        return std::make_unique<SpecLfb>(params,
                                         config.speclfbBugFirstLoad);
    }
    return std::make_unique<Defense>();
}

} // namespace amulet::defense

/**
 * @file
 * Defense hook interface.
 *
 * Secure-speculation countermeasures are implemented against a fixed set
 * of hook points the pipeline consults at well-defined moments, mirroring
 * the paper's claim that AMuLeT integrations require no intrusive changes
 * to the simulator: each defense is an isolated module implementing this
 * interface (plus its own private structures such as the InvisiSpec
 * speculative buffer or the CleanupSpec undo log).
 */

#ifndef AMULET_DEFENSE_DEFENSE_HH
#define AMULET_DEFENSE_DEFENSE_HH

#include <string>

#include "common/event_log.hh"
#include "uarch/dyn_inst.hh"
#include "uarch/mem_system.hh"
#include "uarch/params.hh"

namespace amulet::uarch
{
class Pipeline;
} // namespace amulet::uarch

namespace amulet::defense
{

using uarch::DynInst;
using uarch::FillDest;
using uarch::MemReq;
using uarch::MemSystem;
using uarch::Pipeline;
using uarch::ReqKind;
using uarch::SpecMode;

/** How the L1D should treat one demand load. */
struct LoadPlan
{
    bool block = false;         ///< do not issue this cycle (retry later)
    FillDest dest = FillDest::L1D;
    bool invisibleHit = false;  ///< hits must not refresh LRU
    bool probeSideBuffer = false;
    bool bugSpecEvict = false;  ///< InvisiSpec UV1 replacement bug
    bool markNonSpec = false;   ///< CleanupSpec noClean metadata
};

/**
 * Base class: the baseline (unprotected) out-of-order CPU. Every virtual
 * has the insecure default, so `Defense` itself is the paper's "Baseline".
 */
class Defense
{
  public:
    virtual ~Defense() = default;

    virtual std::string name() const { return "Baseline"; }

    /** Wire up the simulator (called once before first use). */
    virtual void
    attach(Pipeline *pipeline, MemSystem *mem, EventLog *log)
    {
        pipe_ = pipeline;
        mem_ = mem;
        log_ = log;
    }

    /** Per-test-run reset of defense-private state. */
    virtual void reset() {}

    /** Safety model used by the speculation tracker. */
    virtual SpecMode specMode() const { return SpecMode::Futuristic; }

    /** @name Load hooks */
    /// @{
    /** Veto load issue this cycle (STT: tainted-address transmitter). */
    virtual bool blockLoadIssue(DynInst &) { return false; }
    /** Decide the cache behaviour of a load's L1D access. */
    virtual LoadPlan planLoad(DynInst &) { return {}; }
    /// @}

    /** @name Store hooks */
    /// @{
    /** Veto store address generation this cycle. */
    virtual bool blockStoreExec(DynInst &) { return false; }
    /** Called when a store's address (and translation) resolved. */
    virtual void onStoreAddrReady(DynInst &) {}
    /** Install the store's line at commit? (CleanupSpec installs at
     *  execute instead.) */
    virtual bool installStoreAtCommit(const DynInst &) { return true; }
    /// @}

    /** @name Lifecycle hooks */
    /// @{
    /** Instruction crossed the speculation-safety point this cycle. */
    virtual void onBecameSafe(DynInst &) {}
    /** Instruction was squashed (called per instruction, youngest
     *  first). */
    virtual void onSquash(DynInst &) {}
    /** A defense-routed memory request completed (Expose, Cleanup,
     *  SpecStoreInstall, or a load whose fill destination is the side
     *  buffer). */
    virtual void onReqComplete(const MemReq &) {}
    /** Per-cycle defense work (taint propagation, expose issue, ...). */
    virtual void tick() {}
    /// @}

    /** @name Event horizon (cycle skipping)
     *  The pipeline may fast-forward over cycles in which no pipeline or
     *  memory-system state can change, but only as far as the defense
     *  allows. A defense that is purely event-driven — its state changes
     *  only inside the hooks above, its tick() is idempotent over
     *  unchanged pipeline state, and its blocking hooks
     *  (blockLoadIssue/blockStoreExec/planLoad) are pure queries of that
     *  state — returns kNoEventCycle ("no self-scheduled work; skip as
     *  far as you like"). A defense with per-cycle countdowns returns
     *  the cycle its next countdown expires and implements tickMany() to
     *  batch-advance them. The base-class default returns `now + 1`,
     *  which disables skipping entirely: a defense that has not audited
     *  itself against this contract is conservative by construction. */
    /// @{
    /** Earliest future cycle at which this defense can change state on
     *  its own (kNoEventCycle: never — fully event-driven). */
    virtual Cycle nextEventCycle(Cycle now) const { return now + 1; }
    /** Advance per-cycle countdowns by @p cycles elided ticks. Only
     *  called when the elided window ends strictly before
     *  nextEventCycle(); defaults to a no-op for event-driven
     *  defenses. */
    virtual void tickMany(Cycle cycles) { (void)cycles; }
    /// @}

  protected:
    Pipeline *pipe_ = nullptr;
    MemSystem *mem_ = nullptr;
    EventLog *log_ = nullptr;
};

/**
 * The unprotected baseline as a *campaign* defense. Behaviourally the
 * base class (every hook keeps its insecure default), but audited for
 * the event-horizon contract: it holds no state at all, so it never
 * self-schedules work and never limits cycle skipping. The base class
 * keeps the conservative `now + 1` default for unaudited subclasses.
 */
class Baseline final : public Defense
{
  public:
    Cycle nextEventCycle(Cycle) const override { return kNoEventCycle; }
};

} // namespace amulet::defense

#endif // AMULET_DEFENSE_DEFENSE_HH

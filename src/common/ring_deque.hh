/**
 * @file
 * Fixed-slot circular deque for the simulator's hot queues.
 *
 * std::deque releases its block map on clear(), so queues cleared
 * between test inputs (the ROB, the L1D controller queue) pay an
 * allocation storm on every input. RingDeque keeps its slot array
 * alive across clear(): after the first input has sized the queue,
 * steady-state push/pop performs no allocation at all. Elements are
 * *assigned into* retained slots rather than constructed/destroyed, so
 * T must be default-constructible and copy/move-assignable — which the
 * simulator's queue payloads (DynInst, MemReq, Addr) all are.
 *
 * The interface is the std::deque subset the pipeline and memory
 * system use: front/back access, push_back, pop_front/pop_back,
 * indexing, mid-queue erase, and random-access iterators (binary
 * search over the ROB, reverse store-queue scans).
 */

#ifndef AMULET_COMMON_RING_DEQUE_HH
#define AMULET_COMMON_RING_DEQUE_HH

#include <cassert>
#include <cstddef>
#include <iterator>
#include <utility>
#include <vector>

namespace amulet
{

template <typename T>
class RingDeque
{
  public:
    RingDeque() = default;
    explicit RingDeque(std::size_t capacity) { reserve(capacity); }

    /** Grow the slot array to hold at least @p capacity elements. */
    void
    reserve(std::size_t capacity)
    {
        if (capacity <= slots_.size())
            return;
        std::size_t cap = 8;
        while (cap < capacity)
            cap *= 2;
        regrow(cap);
    }

    /** Forget the contents; the slot array is retained. */
    void clear() { head_ = 0; size_ = 0; }

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

    T &operator[](std::size_t i) { return slots_[slot(i)]; }
    const T &operator[](std::size_t i) const { return slots_[slot(i)]; }

    T &front() { return (*this)[0]; }
    const T &front() const { return (*this)[0]; }
    T &back() { return (*this)[size_ - 1]; }
    const T &back() const { return (*this)[size_ - 1]; }

    /** @name Stable physical-slot addressing
     *  A physical slot index survives pop_front (the head only advances)
     *  — which makes it a stable handle to a live element as long as no
     *  regrow happens. Callers that cache slot indices (the pipeline's
     *  rename-time producer links) must reserve() their worst case up
     *  front; regrow() linearizes and would invalidate every handle. */
    /// @{
    /** Physical slot of the element at logical index @p i. */
    std::size_t slotIndex(std::size_t i) const
    {
        assert(i < size_);
        return slot(i);
    }

    /** Logical index of physical slot @p phys (must be live). */
    std::size_t
    logicalOf(std::size_t phys) const
    {
        const std::size_t logical = (phys - head_) & mask_;
        assert(logical < size_);
        return logical;
    }

    /** Element in physical slot @p phys, or nullptr if the slot holds
     *  no live element (popped, or never filled). */
    T *
    atSlot(std::size_t phys)
    {
        if (slots_.empty() || ((phys - head_) & mask_) >= size_)
            return nullptr;
        return &slots_[phys & mask_];
    }

    const T *
    atSlot(std::size_t phys) const
    {
        if (slots_.empty() || ((phys - head_) & mask_) >= size_)
            return nullptr;
        return &slots_[phys & mask_];
    }
    /// @}

    void
    push_back(const T &value)
    {
        if (size_ == slots_.size())
            regrow(slots_.empty() ? 8 : slots_.size() * 2);
        slots_[slot(size_)] = value;
        ++size_;
    }

    void
    push_back(T &&value)
    {
        if (size_ == slots_.size())
            regrow(slots_.empty() ? 8 : slots_.size() * 2);
        slots_[slot(size_)] = std::move(value);
        ++size_;
    }

    void
    pop_front()
    {
        assert(size_ > 0);
        head_ = (head_ + 1) & mask_;
        --size_;
    }

    void
    pop_back()
    {
        assert(size_ > 0);
        --size_;
    }

    /** Erase the element at @p index, shifting the tail left. */
    void
    erase(std::size_t index)
    {
        assert(index < size_);
        for (std::size_t i = index + 1; i < size_; ++i)
            slots_[slot(i - 1)] = std::move(slots_[slot(i)]);
        --size_;
    }

    /** @name Random-access iterators */
    /// @{
    template <bool Const>
    class Iter
    {
        using Container =
            std::conditional_t<Const, const RingDeque, RingDeque>;

      public:
        using iterator_category = std::random_access_iterator_tag;
        using value_type = T;
        using difference_type = std::ptrdiff_t;
        using pointer = std::conditional_t<Const, const T *, T *>;
        using reference = std::conditional_t<Const, const T &, T &>;

        Iter() = default;
        Iter(Container *c, std::size_t i) : c_(c), i_(i) {}
        /** Mutable -> const conversion. */
        template <bool C = Const, typename = std::enable_if_t<C>>
        Iter(const Iter<false> &o) : c_(o.c_), i_(o.i_)
        {
        }

        reference operator*() const { return (*c_)[i_]; }
        pointer operator->() const { return &(*c_)[i_]; }
        reference operator[](difference_type n) const
        {
            return (*c_)[i_ + static_cast<std::size_t>(n)];
        }

        Iter &operator++() { ++i_; return *this; }
        Iter operator++(int) { Iter t = *this; ++i_; return t; }
        Iter &operator--() { --i_; return *this; }
        Iter operator--(int) { Iter t = *this; --i_; return t; }
        Iter &operator+=(difference_type n)
        {
            i_ = static_cast<std::size_t>(
                static_cast<difference_type>(i_) + n);
            return *this;
        }
        Iter &operator-=(difference_type n) { return *this += -n; }
        friend Iter operator+(Iter it, difference_type n)
        {
            return it += n;
        }
        friend Iter operator+(difference_type n, Iter it)
        {
            return it += n;
        }
        friend Iter operator-(Iter it, difference_type n)
        {
            return it -= n;
        }
        friend difference_type operator-(const Iter &a, const Iter &b)
        {
            return static_cast<difference_type>(a.i_) -
                   static_cast<difference_type>(b.i_);
        }
        friend bool operator==(const Iter &a, const Iter &b)
        {
            return a.i_ == b.i_;
        }
        friend bool operator!=(const Iter &a, const Iter &b)
        {
            return a.i_ != b.i_;
        }
        friend bool operator<(const Iter &a, const Iter &b)
        {
            return a.i_ < b.i_;
        }
        friend bool operator>(const Iter &a, const Iter &b)
        {
            return a.i_ > b.i_;
        }
        friend bool operator<=(const Iter &a, const Iter &b)
        {
            return a.i_ <= b.i_;
        }
        friend bool operator>=(const Iter &a, const Iter &b)
        {
            return a.i_ >= b.i_;
        }

      private:
        friend class Iter<true>;
        Container *c_ = nullptr;
        std::size_t i_ = 0;
    };

    using iterator = Iter<false>;
    using const_iterator = Iter<true>;
    using reverse_iterator = std::reverse_iterator<iterator>;
    using const_reverse_iterator = std::reverse_iterator<const_iterator>;

    iterator begin() { return {this, 0}; }
    iterator end() { return {this, size_}; }
    const_iterator begin() const { return {this, 0}; }
    const_iterator end() const { return {this, size_}; }
    reverse_iterator rbegin() { return reverse_iterator(end()); }
    reverse_iterator rend() { return reverse_iterator(begin()); }
    const_reverse_iterator rbegin() const
    {
        return const_reverse_iterator(end());
    }
    const_reverse_iterator rend() const
    {
        return const_reverse_iterator(begin());
    }
    /// @}

  private:
    std::size_t slot(std::size_t i) const { return (head_ + i) & mask_; }

    /** Reallocate to power-of-two @p cap, linearizing the contents. */
    void
    regrow(std::size_t cap)
    {
        std::vector<T> next(cap);
        for (std::size_t i = 0; i < size_; ++i)
            next[i] = std::move(slots_[slot(i)]);
        slots_ = std::move(next);
        head_ = 0;
        mask_ = cap - 1;
    }

    std::vector<T> slots_;
    std::size_t mask_ = 0;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

} // namespace amulet

#endif // AMULET_COMMON_RING_DEQUE_HH

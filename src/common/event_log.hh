/**
 * @file
 * Structured debug-event log.
 *
 * Plays the role of gem5's debug trace in the paper: the root-cause analysis
 * workflow (§3.3) parses debug logs for load/store addresses, squashes, and
 * defense-specific events, and violation signatures are regex-like matches
 * over these events. We keep events structured (kind + fields) instead of
 * free text so signature extraction is exact.
 */

#ifndef AMULET_COMMON_EVENT_LOG_HH
#define AMULET_COMMON_EVENT_LOG_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace amulet
{

/** Kinds of debug events emitted by the simulator and defenses. */
enum class EventKind : std::uint8_t
{
    // Generic pipeline events.
    Fetch,
    Commit,
    SquashBranch,       ///< squash due to branch misprediction
    SquashMemOrder,     ///< squash due to memory-order violation
    LoadExec,           ///< load executed (addr known)
    LoadBypassedStore,  ///< load speculatively bypassed an older store
                        ///< with an unresolved address (Spectre-v4 risk)
    StoreExec,          ///< store address resolved
    StoreCommit,        ///< store data written to memory system
    TlbFill,            ///< D-TLB entry installed
    CacheFill,          ///< line installed into a cache
    CacheEvict,         ///< line evicted from a cache
    MshrStall,          ///< request stalled waiting for an MSHR
    QueueStall,         ///< in-order controller queue head-of-line stall
    // Defense events.
    SpecBufferFill,     ///< InvisiSpec: line filled into speculative buffer
    SpecEviction,       ///< InvisiSpec UV1: eviction caused by a spec load
    Expose,             ///< InvisiSpec: expose issued for a safe load
    ExposeStall,        ///< InvisiSpec UV2: expose delayed by MSHR pressure
    CleanupUndo,        ///< CleanupSpec: squashed access rolled back
    CleanupSkipped,     ///< CleanupSpec UV3/UV4: rollback missing (bug)
    CleanupOverclean,   ///< CleanupSpec UV5: non-spec footprint removed
    SplitRequest,       ///< access crossed a cache-line boundary
    TaintSet,           ///< STT: destination register tainted
    TaintLift,          ///< STT: taint lifted (instruction became safe)
    TransmitBlocked,    ///< STT: tainted transmitter delayed
    TaintedStoreTlb,    ///< STT KV3: tainted store accessed the TLB (bug)
    LfbHold,            ///< SpecLFB: unsafe miss held in the LFB
    LfbUnsafeBypass,    ///< SpecLFB UV6: first spec load treated as safe
};

/** Name of an event kind, for reports. */
const char *eventKindName(EventKind kind);

/** One debug event. Fields not applicable to a kind are zero. */
struct Event
{
    Cycle cycle = 0;
    EventKind kind = EventKind::Fetch;
    SeqNum seq = 0;     ///< dynamic instruction, if applicable
    Addr pc = 0;        ///< instruction PC, if applicable
    Addr addr = 0;      ///< memory address, if applicable
    std::string note;   ///< free-form detail

    /** Field-wise equality (the cycle-skip equivalence audits compare
     *  whole event streams). */
    bool operator==(const Event &) const = default;

    std::string format() const;
};

/**
 * Append-only event log. Disabled by default (recording costs time); the
 * analyzer re-runs violating inputs with recording enabled, mirroring the
 * paper's "inspect the gem5 debug logs" step.
 *
 * The retained window is configurable (setCapacity): a capped log keeps
 * the most recent events and drops the oldest, so signature extraction
 * on pathological inputs (long squash storms with logging on) runs in
 * bounded memory. Default is unbounded, matching historical behaviour.
 */
class EventLog
{
  public:
    /** Enable or disable recording; clearing is separate. */
    void setEnabled(bool on) { enabled_ = on; }
    bool enabled() const { return enabled_; }

    /** Drop all recorded events (capacity is kept). */
    void
    clear()
    {
        events_.clear();
        dropped_ = 0;
    }

    /**
     * Cap the number of retained events; 0 (the default) is unbounded.
     * When the log is full, the *oldest* events are dropped — in blocks
     * of an eighth of the capacity, so a saturated log costs O(1)
     * amortized per record rather than an O(n) shift per append.
     * Shrinking the capacity trims immediately.
     */
    void setCapacity(std::size_t capacity);
    std::size_t capacity() const { return capacity_; }

    /** Events dropped to honour the capacity since the last clear(). */
    std::size_t dropped() const { return dropped_; }

    /**
     * Record an event (no-op while disabled). The note rides as a
     * C string so the disabled path — the cycle loop's common case —
     * evaluates no std::string constructor; the string is only
     * materialized once the event is actually stored.
     */
    void
    record(Cycle cycle, EventKind kind, SeqNum seq = 0, Addr pc = 0,
           Addr addr = 0, const char *note = nullptr)
    {
        if (!enabled_)
            return;
        events_.push_back({cycle, kind, seq, pc, addr,
                           note ? std::string(note) : std::string()});
        if (capacity_ != 0 && events_.size() > capacity_)
            enforceCapacity();
    }

    /** Retained events, oldest first. */
    const std::vector<Event> &events() const { return events_; }

    /** Drop events past position @p n (rewind for replay audits: the
     *  caller marks events().size(), replays, and compares/rewinds). */
    void
    truncate(std::size_t n)
    {
        if (n < events_.size())
            events_.resize(n);
    }

    /** Count retained events of one kind. */
    std::size_t countOf(EventKind kind) const;

    /** True if any event of this kind was recorded (and retained). */
    bool has(EventKind kind) const { return countOf(kind) > 0; }

  private:
    void enforceCapacity();

    bool enabled_ = false;
    std::size_t capacity_ = 0; ///< 0: unbounded
    std::size_t dropped_ = 0;
    std::vector<Event> events_;
};

} // namespace amulet

#endif // AMULET_COMMON_EVENT_LOG_HH

#include "common/rng.hh"

#include <cassert>

namespace amulet
{

namespace
{

std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    // Expand the seed with SplitMix64 as recommended by the xoshiro authors;
    // guarantees a non-zero state for any seed.
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitMix64(sm);
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    if (bound == 0)
        return 0;
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (-bound) % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::uint64_t
Rng::nextRange(std::uint64_t lo, std::uint64_t hi)
{
    assert(lo <= hi);
    return lo + nextBelow(hi - lo + 1);
}

bool
Rng::chance(std::uint64_t num, std::uint64_t den)
{
    assert(den > 0);
    return nextBelow(den) < num;
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::size_t
Rng::pickWeighted(const std::vector<std::uint32_t> &weights)
{
    std::uint64_t total = 0;
    for (auto w : weights)
        total += w;
    assert(total > 0 && "pickWeighted requires a non-zero total weight");
    std::uint64_t r = nextBelow(total);
    for (std::size_t i = 0; i < weights.size(); ++i) {
        if (r < weights[i])
            return i;
        r -= weights[i];
    }
    return weights.size() - 1; // unreachable
}

Rng
Rng::split()
{
    return Rng(next() ^ 0x9e3779b97f4a7c15ULL);
}

Rng::State
Rng::state() const
{
    return {s_[0], s_[1], s_[2], s_[3]};
}

Rng
Rng::fromState(const State &state)
{
    Rng rng(0);
    for (std::size_t i = 0; i < state.size(); ++i)
        rng.s_[i] = state[i];
    return rng;
}

} // namespace amulet

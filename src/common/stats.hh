/**
 * @file
 * Tiny descriptive-statistics accumulator for campaign reporting.
 */

#ifndef AMULET_COMMON_STATS_HH
#define AMULET_COMMON_STATS_HH

#include <algorithm>
#include <cstddef>
#include <vector>

namespace amulet
{

/** Accumulates samples and reports count/mean/min/max/percentiles. */
class SampleStats
{
  public:
    void add(double v) { samples_.push_back(v); }

    std::size_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    double
    sum() const
    {
        double s = 0;
        for (double v : samples_)
            s += v;
        return s;
    }

    double mean() const { return empty() ? 0.0 : sum() / count(); }

    double
    min() const
    {
        return empty() ? 0.0
                       : *std::min_element(samples_.begin(), samples_.end());
    }

    double
    max() const
    {
        return empty() ? 0.0
                       : *std::max_element(samples_.begin(), samples_.end());
    }

    /** Nearest-rank percentile; p is clamped into [0,1] (a negative or
     *  >1 p would otherwise index out of bounds). */
    double
    percentile(double p) const
    {
        if (empty())
            return 0.0;
        p = std::clamp(p, 0.0, 1.0);
        std::vector<double> sorted = samples_;
        std::sort(sorted.begin(), sorted.end());
        const auto rank = static_cast<std::size_t>(p * (sorted.size() - 1));
        return sorted[rank];
    }

    const std::vector<double> &samples() const { return samples_; }

  private:
    std::vector<double> samples_;
};

} // namespace amulet

#endif // AMULET_COMMON_STATS_HH

/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every source of randomness in AMuLeT flows from a seeded Rng so that test
 * campaigns, generated programs, and inputs are exactly reproducible. The
 * implementation is SplitMix64-seeded xoshiro256**, which is fast, has a
 * 256-bit state, and passes BigCrush.
 */

#ifndef AMULET_COMMON_RNG_HH
#define AMULET_COMMON_RNG_HH

#include <array>
#include <cstdint>
#include <vector>

namespace amulet
{

/**
 * Seeded deterministic PRNG (xoshiro256**).
 *
 * Satisfies the UniformRandomBitGenerator named requirement, so it can also
 * drive <random> distributions, although AMuLeT uses the convenience helpers
 * below for reproducibility across standard libraries.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x5eed'a11e'7e57'ab1eULL);

    /** UniformRandomBitGenerator interface. */
    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type{0}; }
    result_type operator()() { return next(); }

    /** Next raw 64-bit value. Inline: the sandbox-fill loops of input
     *  generation draw one word per 8 bytes, so a cross-TU call here
     *  is a measurable fraction of large-sandbox (STT) campaigns. */
    std::uint64_t next()
    {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;

        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);

        return result;
    }

    /** Uniform integer in [0, bound) without modulo bias. 0 if bound==0. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t nextRange(std::uint64_t lo, std::uint64_t hi);

    /** Bernoulli draw: true with probability num/den. */
    bool chance(std::uint64_t num, std::uint64_t den);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Pick a uniformly random element index for a container size. */
    std::size_t pickIndex(std::size_t size) { return nextBelow(size); }

    /**
     * Weighted choice: returns an index i with probability
     * weights[i] / sum(weights). Zero-weight entries are never picked.
     */
    std::size_t pickWeighted(const std::vector<std::uint32_t> &weights);

    /** Derive an independent child stream (for parallel components). */
    Rng split();

    /** @name Raw engine state (corpus checkpoint / exact-replay serde)
     *  A stream restored from state() continues the exact output
     *  sequence; that is how per-program streams are shipped to other
     *  processes or replayed from a corpus. */
    /// @{
    using State = std::array<std::uint64_t, 4>;
    State state() const;
    static Rng fromState(const State &state);
    /// @}

  private:
    static std::uint64_t rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s_[4];
};

} // namespace amulet

#endif // AMULET_COMMON_RNG_HH

/**
 * @file
 * Fundamental scalar types shared by every AMuLeT subsystem.
 */

#ifndef AMULET_COMMON_TYPES_HH
#define AMULET_COMMON_TYPES_HH

#include <cstdint>

namespace amulet
{

/** Virtual or physical byte address in the guest. */
using Addr = std::uint64_t;

/** Simulated clock cycle count. */
using Cycle = std::uint64_t;

/** Dynamic-instruction sequence number (program order, 1-based). */
using SeqNum = std::uint64_t;

/** 64-bit register value. */
using RegVal = std::uint64_t;

/** Invalid/absent address sentinel. */
inline constexpr Addr kNoAddr = ~static_cast<Addr>(0);

/** Invalid sequence number sentinel. */
inline constexpr SeqNum kNoSeq = 0;

/** "No scheduled event" sentinel for event-horizon queries (the
 *  farthest representable cycle; min() folds it away). */
inline constexpr Cycle kNoEventCycle = ~static_cast<Cycle>(0);

} // namespace amulet

#endif // AMULET_COMMON_TYPES_HH

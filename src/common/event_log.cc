#include "common/event_log.hh"

#include <sstream>

namespace amulet
{

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::Fetch:            return "Fetch";
      case EventKind::Commit:           return "Commit";
      case EventKind::SquashBranch:     return "SquashBranch";
      case EventKind::SquashMemOrder:   return "SquashMemOrder";
      case EventKind::LoadExec:         return "LoadExec";
      case EventKind::LoadBypassedStore: return "LoadBypassedStore";
      case EventKind::StoreExec:        return "StoreExec";
      case EventKind::StoreCommit:      return "StoreCommit";
      case EventKind::TlbFill:          return "TlbFill";
      case EventKind::CacheFill:        return "CacheFill";
      case EventKind::CacheEvict:       return "CacheEvict";
      case EventKind::MshrStall:        return "MshrStall";
      case EventKind::QueueStall:       return "QueueStall";
      case EventKind::SpecBufferFill:   return "SpecBufferFill";
      case EventKind::SpecEviction:     return "SpecEviction";
      case EventKind::Expose:           return "Expose";
      case EventKind::ExposeStall:      return "ExposeStall";
      case EventKind::CleanupUndo:      return "CleanupUndo";
      case EventKind::CleanupSkipped:   return "CleanupSkipped";
      case EventKind::CleanupOverclean: return "CleanupOverclean";
      case EventKind::SplitRequest:     return "SplitRequest";
      case EventKind::TaintSet:         return "TaintSet";
      case EventKind::TaintLift:        return "TaintLift";
      case EventKind::TransmitBlocked:  return "TransmitBlocked";
      case EventKind::TaintedStoreTlb:  return "TaintedStoreTlb";
      case EventKind::LfbHold:          return "LfbHold";
      case EventKind::LfbUnsafeBypass:  return "LfbUnsafeBypass";
    }
    return "?";
}

std::string
Event::format() const
{
    std::ostringstream os;
    os << cycle << ": " << eventKindName(kind);
    if (seq)
        os << " seq=" << seq;
    if (pc)
        os << " pc=0x" << std::hex << pc << std::dec;
    if (addr)
        os << " addr=0x" << std::hex << addr << std::dec;
    if (!note.empty())
        os << " (" << note << ")";
    return os.str();
}

void
EventLog::setCapacity(std::size_t capacity)
{
    capacity_ = capacity;
    if (capacity_ != 0 && events_.size() > capacity_)
        enforceCapacity();
}

void
EventLog::enforceCapacity()
{
    // Drop the oldest block: the overflow plus an eighth of the
    // capacity of slack, so the next capacity/8 records append without
    // shifting the vector again.
    std::size_t drop = events_.size() - capacity_ + capacity_ / 8;
    if (drop > events_.size())
        drop = events_.size();
    events_.erase(events_.begin(),
                  events_.begin() + static_cast<std::ptrdiff_t>(drop));
    dropped_ += drop;
}

std::size_t
EventLog::countOf(EventKind kind) const
{
    std::size_t n = 0;
    for (const auto &e : events_) {
        if (e.kind == kind)
            ++n;
    }
    return n;
}

} // namespace amulet

/**
 * @file
 * Small bit-manipulation helpers used across the simulator.
 */

#ifndef AMULET_COMMON_BITUTIL_HH
#define AMULET_COMMON_BITUTIL_HH

#include <cassert>
#include <cstdint>

namespace amulet
{

/** True iff @p x is a power of two (and non-zero). */
constexpr bool
isPowerOfTwo(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** floor(log2(x)) for x > 0. */
constexpr unsigned
floorLog2(std::uint64_t x)
{
    assert(x > 0);
    unsigned l = 0;
    while (x >>= 1)
        ++l;
    return l;
}

/** Align @p addr down to a multiple of power-of-two @p align. */
constexpr std::uint64_t
alignDown(std::uint64_t addr, std::uint64_t align)
{
    assert(isPowerOfTwo(align));
    return addr & ~(align - 1);
}

/** Align @p addr up to a multiple of power-of-two @p align. */
constexpr std::uint64_t
alignUp(std::uint64_t addr, std::uint64_t align)
{
    assert(isPowerOfTwo(align));
    return (addr + align - 1) & ~(align - 1);
}

/** Mask with the low @p bits set (bits in [0, 64]). */
constexpr std::uint64_t
lowMask(unsigned bits)
{
    return bits >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << bits) - 1);
}

/** Sign-extend the low @p bits of @p value to 64 bits. */
constexpr std::int64_t
signExtend(std::uint64_t value, unsigned bits)
{
    assert(bits >= 1 && bits <= 64);
    if (bits == 64)
        return static_cast<std::int64_t>(value);
    const std::uint64_t sign = std::uint64_t{1} << (bits - 1);
    value &= lowMask(bits);
    return static_cast<std::int64_t>((value ^ sign) - sign);
}

/** Truncate @p value to @p size bytes (size in {1,2,4,8}). */
constexpr std::uint64_t
truncateToSize(std::uint64_t value, unsigned size)
{
    return size >= 8 ? value : (value & lowMask(size * 8));
}

/** 64-bit mix hash (SplitMix64 finalizer); used for trace hashing. */
constexpr std::uint64_t
mixHash(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

/** Combine a hash accumulator with one value. */
constexpr std::uint64_t
hashCombine(std::uint64_t acc, std::uint64_t value)
{
    return mixHash(acc ^ (value + 0x9e3779b97f4a7c15ULL + (acc << 6) +
                          (acc >> 2)));
}

} // namespace amulet

#endif // AMULET_COMMON_BITUTIL_HH

#include "runtime/worker_pool.hh"

namespace amulet::runtime
{

unsigned
resolveJobs(unsigned requested)
{
    if (requested != 0)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 1;
}

WorkerPool::WorkerPool(unsigned threads)
{
    if (threads == 0)
        threads = 1;
    threads_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
WorkerPool::submit(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        queue_.push_back(std::move(job));
    }
    work_cv_.notify_one();
}

void
WorkerPool::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock,
                  [this] { return queue_.empty() && inFlight_ == 0; });
}

void
WorkerPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mu_);
            work_cv_.wait(lock,
                          [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ set and nothing left to do
            job = std::move(queue_.front());
            queue_.pop_front();
            ++inFlight_;
        }
        job();
        {
            std::lock_guard<std::mutex> lock(mu_);
            --inFlight_;
            if (queue_.empty() && inFlight_ == 0)
                idle_cv_.notify_all();
        }
    }
}

} // namespace amulet::runtime

#include "runtime/shard_executor.hh"

namespace amulet::runtime
{

ShardExecutor::ShardExecutor(const core::CampaignConfig &cfg,
                             Clock::time_point t0)
    : cfg_(cfg), harness_(cfg.harness), model_(cfg.contract),
      canonicalCtx_(harness_.saveContext()), // boots the simulator
      t0_(t0), stages_(pipeline::ProgramPipeline::standard())
{
}

ProgramOutcome
ShardExecutor::runProgram(unsigned p, Rng prog_rng)
{
    pipeline::ProgramPlan plan =
        pipeline::ProgramPlan::forProgram(p, std::move(prog_rng));
    pipeline::StageContext ctx{cfg_, harness_, model_, canonicalCtx_,
                               t0_};
    stages_.run(ctx, plan);
    return std::move(plan.outcome);
}

} // namespace amulet::runtime

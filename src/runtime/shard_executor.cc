#include "runtime/shard_executor.hh"

#include "core/analyzer.hh"
#include "core/generator.hh"
#include "core/input_gen.hh"
#include "core/signature.hh"
#include "isa/disasm.hh"

namespace amulet::runtime
{

ShardExecutor::ShardExecutor(const core::CampaignConfig &cfg,
                             Clock::time_point t0)
    : cfg_(cfg), harness_(cfg.harness), model_(cfg.contract),
      canonicalCtx_(harness_.saveContext()), // boots the simulator
      t0_(t0)
{
}

ProgramOutcome
ShardExecutor::runProgram(unsigned p, Rng prog_rng)
{
    using namespace amulet::core;

    ProgramOutcome out;
    // Pre-split stream state, captured before any draw: with it, a
    // journaled record can re-derive this whole program offline.
    const Rng::State stream_state = prog_rng.state();
    Rng gen_rng = prog_rng.split();
    Rng input_rng = prog_rng.split();
    Rng mutate_rng = prog_rng.split();
    InputGenerator input_gen(cfg_.inputs, input_rng);

    // Canonical start: predictor state does not leak across programs, so
    // the outcome is independent of which worker ran the previous one.
    harness_.restoreContext(canonicalCtx_);

    const auto all_formats = executor::allTraceFormats();

    // --- Test generation -------------------------------------------------
    auto t_gen = Clock::now();
    ProgramGenerator generator(cfg_.gen, gen_rng);
    const isa::Program prog = generator.generate();
    const isa::FlatProgram fp(prog, cfg_.harness.map.codeBase);
    out.testGenSec += secondsSince(t_gen);

    // --- Inputs + contract traces ----------------------------------------
    auto t_ct = Clock::now();
    std::vector<arch::Input> inputs;
    std::vector<contracts::CTrace> ctraces;
    std::uint64_t next_id = std::uint64_t{p} * 10000;
    for (unsigned b = 0; b < cfg_.baseInputsPerProgram; ++b) {
        arch::Input base = input_gen.generate(next_id++);
        const contracts::CTrace base_ct =
            model_.collect(fp, base, cfg_.harness.map);
        const auto read_offsets =
            model_.archReadOffsets(fp, base, cfg_.harness.map);

        // Contract-dead registers: registers whose value does not
        // influence the contract trace. Siblings may mutate them
        // (that is how register-secret leaks such as SpecLFB UV6
        // become reachable) — unless the contract exposes initial
        // register values (ARCH-SEQ), in which case inputs of one
        // class keep identical registers, as in the paper.
        std::vector<unsigned> dead_regs;
        if (!cfg_.contract.exposeInitialRegs && cfg_.regMutationPct > 0) {
            for (unsigned r = 0; r < isa::kNumRegs; ++r) {
                if (r == isa::regIndex(isa::kSandboxBaseReg) ||
                    r == isa::regIndex(isa::Reg::Rsp)) {
                    continue;
                }
                arch::Input probe = base;
                probe.regs[r] ^= 0x5a5a5a5a5a5aULL;
                if (model_.collect(fp, probe, cfg_.harness.map) ==
                    base_ct) {
                    dead_regs.push_back(r);
                }
            }
        }

        inputs.push_back(base);
        ctraces.push_back(base_ct);
        for (unsigned s = 0; s < cfg_.siblingsPerBase; ++s) {
            arch::Input sib =
                input_gen.sibling(base, read_offsets, next_id++);
            if (!dead_regs.empty() &&
                mutate_rng.chance(cfg_.regMutationPct, 100)) {
                arch::Input mutated = sib;
                for (unsigned r : dead_regs) {
                    if (mutate_rng.chance(1, 2))
                        mutated.regs[r] = mutate_rng.next();
                }
                // Joint mutation can still interact (e.g. two dead
                // registers combining into a live value); keep the
                // mutation only if the model confirms equivalence.
                if (model_.collect(fp, mutated, cfg_.harness.map) ==
                    base_ct) {
                    sib = std::move(mutated);
                }
            }
            const contracts::CTrace sib_ct =
                model_.collect(fp, sib, cfg_.harness.map);
            inputs.push_back(std::move(sib));
            ctraces.push_back(sib_ct);
        }
    }
    out.ctraceSec += secondsSince(t_ct);

    // --- Execute on the simulator ----------------------------------------
    harness_.loadProgram(&fp);
    std::vector<executor::UTrace> traces;
    std::vector<executor::UarchContext> contexts;
    std::vector<std::vector<executor::UTrace>> extra_traces;
    for (const arch::Input &input : inputs) {
        contexts.push_back(harness_.saveContext());
        auto run_out = harness_.runInput(input);
        if (run_out.run.hitCycleCap) {
            // Pathological program; skip (counted nowhere).
            return out;
        }
        traces.push_back(std::move(run_out.trace));
        if (cfg_.collectAllFormats) {
            std::vector<executor::UTrace> extras;
            for (auto fmt : all_formats)
                extras.push_back(harness_.extractExtra(fmt));
            extra_traces.push_back(std::move(extras));
        }
    }
    out.ran = true;
    out.testCases = inputs.size();

    // --- Relational analysis ---------------------------------------------
    const EquivalenceClasses classes = groupByCTrace(ctraces);
    out.effectiveClasses = classes.effectiveClasses();
    const AnalysisResult analysis = findCandidates(classes, traces);
    out.violatingTestCases = analysis.violatingTestCases;

    if (cfg_.collectAllFormats) {
        // Per-format tallies are *validated*: a same-class difference
        // only counts if it persists when the pair is re-run under a
        // common μarch context. Without this, context-sensitive
        // formats (BP state above all) flag nearly every input pair,
        // which is exactly the extra-validation cost Table 5 reports.
        const std::size_t baseline_idx = 0; // L1dTlb is first
        for (const auto &cls : classes.classes) {
            if (cls.size() < 2)
                continue;
            const std::size_t rep = cls.front();
            for (std::size_t i = 1; i < cls.size(); ++i) {
                const std::size_t idx = cls[i];
                bool any_diff = false;
                for (std::size_t f = 0; f < all_formats.size(); ++f) {
                    if (!(extra_traces[idx][f] == extra_traces[rep][f])) {
                        any_diff = true;
                        break;
                    }
                }
                if (!any_diff)
                    continue;
                // One validation pair for all formats at once.
                harness_.restoreContext(contexts[idx]);
                harness_.runInput(inputs[rep]);
                std::vector<executor::UTrace> rep_under_idx;
                for (auto fmt : all_formats)
                    rep_under_idx.push_back(harness_.extractExtra(fmt));
                harness_.restoreContext(contexts[rep]);
                harness_.runInput(inputs[idx]);
                std::vector<executor::UTrace> idx_under_rep;
                for (auto fmt : all_formats)
                    idx_under_rep.push_back(harness_.extractExtra(fmt));
                out.validationRuns += 2;

                auto confirmed = [&](std::size_t f) {
                    if (extra_traces[idx][f] == extra_traces[rep][f])
                        return false;
                    return !(rep_under_idx[f] == extra_traces[idx][f]) ||
                           !(idx_under_rep[f] == extra_traces[rep][f]);
                };
                const bool base_confirmed = confirmed(baseline_idx);
                for (std::size_t f = 0; f < all_formats.size(); ++f) {
                    if (!confirmed(f))
                        continue;
                    core::FormatTally &tally =
                        out.formatTallies[all_formats[f]];
                    ++tally.violatingTestCases;
                    if (base_confirmed)
                        ++tally.coveredByBaseline;
                }
            }
        }
    }

    // --- Validation (context swap) + recording ----------------------------
    for (const CandidatePair &cand : analysis.candidates) {
        ++out.candidateViolations;
        // Re-run each input under the other's starting μarch context
        // (§3.2). The violation is confirmed when the inputs remain
        // distinguishable under at least one *common* context: a pure
        // initial-context artifact makes both same-context pairs
        // equal, whereas a genuine leak that depends on predictor
        // state (e.g. Spectre-v4 under a trained memory-dependence
        // predictor) still differs under one of them.
        harness_.restoreContext(contexts[cand.b]);
        const auto a_under_b = harness_.runInput(inputs[cand.a]);
        harness_.restoreContext(contexts[cand.a]);
        const auto b_under_a = harness_.runInput(inputs[cand.b]);
        out.validationRuns += 2;
        const bool persists = !(a_under_b.trace == traces[cand.b]) ||
                              !(b_under_a.trace == traces[cand.a]);
        if (!persists)
            continue;

        ++out.confirmedViolations;
        const double t_detect = secondsSince(t0_);
        if (out.firstDetectSeconds < 0)
            out.firstDetectSeconds = t_detect;

        std::string signature = "unclassified";
        if (cfg_.collectSignatures) {
            signature =
                classifyViolation(harness_, fp, inputs[cand.a],
                                  inputs[cand.b], contexts[cand.a],
                                  contexts[cand.b]);
        }
        ++out.signatureCounts[signature];

        if (out.records.size() < cfg_.maxViolationsRecorded) {
            ViolationRecord rec;
            rec.defenseName =
                defense::defenseKindName(cfg_.harness.defense.kind);
            rec.contractName = cfg_.contract.name;
            rec.programText = isa::formatProgram(prog);
            rec.programIndex = p;
            rec.inputA = inputs[cand.a];
            rec.inputB = inputs[cand.b];
            rec.traceA = traces[cand.a];
            rec.traceB = traces[cand.b];
            rec.ctxA = contexts[cand.a];
            rec.ctxB = contexts[cand.b];
            rec.ctraceHash = contracts::hashCTrace(ctraces[cand.a]);
            rec.signature = signature;
            rec.detectSeconds = t_detect;
            rec.rngState = stream_state;
            out.records.push_back(std::move(rec));
        }
        if (cfg_.stopAtFirstViolation)
            break;
    }
    return out;
}

} // namespace amulet::runtime

#include "runtime/shard_executor.hh"

#include <cstdlib>
#include <thread>

#include "pipeline/stages.hh"
#include "runtime/fault.hh"
#include "runtime/worker_pool.hh"

namespace amulet::runtime
{

ShardExecutor::ShardExecutor(const core::CampaignConfig &cfg,
                             Clock::time_point t0,
                             telemetry::CampaignTelemetry *telemetry,
                             unsigned shardId)
    : cfg_(cfg), tel_(telemetry), shardId_(shardId),
      sink_(telemetry ? &telemetry->shardSink(shardId) : nullptr),
      backend_(makeLane(0)), model_(cfg.contract),
      canonicalCtx_(backend_->saveContext()), // boots the simulator
      t0_(t0), prefix_(pipeline::ProgramPipeline::standardPrefix()),
      suffix_(pipeline::ProgramPipeline::standardSuffix())
{
    if (sink_) {
        // Stage wall times flow into the shard sink: a "stage.<name>"
        // timer + hotspot entry always, plus a per-program trace span
        // when tracing. The span's start is reconstructed from the
        // observer's measured duration.
        auto observer = [this](const pipeline::Stage &stage,
                               const pipeline::ProgramPlan &plan,
                               double seconds) {
            const auto start =
                Clock::now() -
                std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(seconds));
            const std::string name = std::string("stage.") + stage.name();
            sink_->recordTimed(name.c_str(), start, seconds,
                               plan.programIndex);
        };
        prefix_.setObserver(observer);
        suffix_.setObserver(observer);
    }
}

std::unique_ptr<executor::SimBackend>
ShardExecutor::makeLane(unsigned laneIndex)
{
    auto lane = executor::makeBackend(cfg_.backend, cfg_.harness);
    if (tel_) {
        // Each lane records from the thread its ops run on (the worker
        // thread, or the async backend's sim thread), so each gets a
        // private sink — and its own trace track.
        lane->setTelemetry(&tel_->newSink(
            "shard" + std::to_string(shardId_) + "/sim" +
            std::to_string(laneIndex)));
    }
    return lane;
}

pipeline::StageContext
ShardExecutor::stageContext(executor::SimBackend &lane)
{
    return pipeline::StageContext{cfg_,          lane, model_,
                                  canonicalCtx_, t0_,  sink_,
                                  &inputPool_};
}

pipeline::ProgramPlan
ShardExecutor::prepare(unsigned p, Rng prog_rng)
{
    pipeline::ProgramPlan plan =
        pipeline::ProgramPlan::forProgram(p, std::move(prog_rng));
    // The prefix stages never touch the backend; which lane the context
    // names is irrelevant.
    pipeline::StageContext ctx = stageContext(*backend_);
    prefix_.run(ctx, plan);
    return plan;
}

void
ShardExecutor::finish(pipeline::ProgramPlan &plan,
                      executor::SimBackend &lane)
{
    pipeline::StageContext ctx = stageContext(lane);
    suffix_.run(ctx, plan);
}

ProgramOutcome
ShardExecutor::runProgram(unsigned p, Rng prog_rng)
{
    // Ties this program's backend wire ops to the (program, op#) fault
    // key space (src/runtime/fault.hh); a no-op unless a chaos plan is
    // armed. Ops outside the scope (boot, shard-end times) never fault.
    fault::ProgramScope fault_scope(p);
    pipeline::ProgramPlan plan = prepare(p, std::move(prog_rng));
    if (!plan.halt)
        finish(plan, *backend_);
    reclaim(plan);
    return std::move(plan.outcome);
}

const executor::TimeBreakdown &
ShardExecutor::times()
{
    timesCache_ = backend_->times();
    if (backend2_)
        timesCache_.accumulate(backend2_->times());
    return timesCache_;
}

void
ShardExecutor::runClaimed(const ClaimFn &claim,
                          const std::vector<Rng> &streams,
                          const ReportFn &report)
{
    // Under stopAtFirstViolation the claim set must track detections
    // exactly; a lookahead claim would run one program a sequential
    // shard would not have started.
    const bool pipelined =
        backend_->caps().pipelined && !cfg_.stopAtFirstViolation;

    if (!pipelined) {
        while (const std::optional<unsigned> p = claim()) {
            ProgramOutcome out;
            try {
                out = runProgram(*p, streams[*p]);
            } catch (const executor::WorkerQuarantineError &e) {
                // The out-of-process worker failed every allowed
                // recovery attempt on one of this program's ops: the
                // program is poisoned, not the campaign. Report it
                // quarantined and move on — the backend respawns a
                // fresh worker (reload + canonical-context restore) on
                // the next program's first op, so subsequent programs
                // are byte-identical to a clean run.
                out = core::ProgramOutcome::makeQuarantined(e.what());
            }
            report(*p, std::move(out));
        }
        return;
    }

    // Two-lane software pipeline: programs alternate between two
    // independently booted simulator lanes, so two programs' class
    // batches and validation re-runs execute concurrently while this
    // thread prepares a third. Every program still sees exactly the
    // sequential operation sequence on its own lane (load, canonical
    // restore, class batches in order, context-restored re-runs), and
    // programs share no state — the canonical context is restored per
    // program and simulation is reproducible across harness instances —
    // so outcomes are byte-identical to runProgram(); only wall time
    // moves.
    //
    // A second lane only pays off when there are cores for it: with
    // every hardware thread already claimed by a shard's sim thread,
    // dual lanes would time-slice one core. In that case the shard
    // falls back to a single lane and keeps only the cheap overlap —
    // preparing the next program's test cases while the lane executes.
    // AMULET_ASYNC_LANES=1|2 overrides the core heuristic (outcomes are
    // lane-invariant; tests force both paths on any host).
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    bool dual = hw >= 2 * resolveJobs(cfg_.jobs);
    if (const char *env = std::getenv("AMULET_ASYNC_LANES"))
        dual = std::atoi(env) >= 2;
    if (dual && !backend2_)
        backend2_ = makeLane(1);

    struct InFlight
    {
        // Heap-owned: the backend holds pointers into the plan (flat
        // program, batch inputs), so its address must survive the
        // driver's own moves until the plan's work is collected.
        std::unique_ptr<pipeline::ProgramPlan> plan;
        executor::SimBackend *lane = nullptr;
    };
    // Declared outside the try so that on an exception the plans a
    // submitted batch points into are still alive when sync() lets the
    // backends settle (unwinding destroys try-scope locals before the
    // handler runs).
    InFlight cur;
    InFlight ahead;
    try {
        // Claim and prepare until a program actually needs the
        // simulator; filter-resolved programs are complete after the
        // prefix and are reported inline.
        auto next_executable =
            [&]() -> std::unique_ptr<pipeline::ProgramPlan> {
            while (const std::optional<unsigned> p = claim()) {
                auto plan = std::make_unique<pipeline::ProgramPlan>(
                    prepare(*p, streams[*p]));
                if (!plan->halt)
                    return plan;
                reclaim(*plan);
                report(plan->programIndex, std::move(plan->outcome));
            }
            return nullptr;
        };
        auto submit_on = [&](std::unique_ptr<pipeline::ProgramPlan> plan,
                             executor::SimBackend &lane) {
            pipeline::StageContext ctx = stageContext(lane);
            pipeline::ExecuteStage::submit(ctx, *plan);
            return InFlight{std::move(plan), &lane};
        };

        if (auto plan = next_executable())
            cur = submit_on(std::move(plan), *backend_);
        if (dual && cur.plan) {
            if (auto plan = next_executable())
                ahead = submit_on(std::move(plan), *backend2_);
        }
        while (cur.plan) {
            // Single lane: look one program ahead on this thread while
            // the lane executes cur's batches; submit it once the lane
            // frees up.
            std::unique_ptr<pipeline::ProgramPlan> prepared;
            if (!dual)
                prepared = next_executable();
            // Dual lanes: both may be executing; finishing cur only
            // waits on its own lane.
            // The lane has collected every batch that pointed into this
            // plan, so its input buffers can go back to the pool.
            finish(*cur.plan, *cur.lane);
            reclaim(*cur.plan);
            report(cur.plan->programIndex,
                   std::move(cur.plan->outcome));
            executor::SimBackend &freed = *cur.lane;
            cur = std::move(ahead);
            ahead = InFlight{};
            if (!dual) {
                if (prepared)
                    cur = submit_on(std::move(prepared), freed);
                continue;
            }
            // Refill the freed lane while the other one keeps running.
            if (auto plan = next_executable()) {
                if (cur.plan)
                    ahead = submit_on(std::move(plan), freed);
                else
                    cur = submit_on(std::move(plan), freed);
            }
        }
    } catch (...) {
        // Plans with submitted batches must outlive the backends'
        // pending work on them. sync() rethrows the backend's own
        // failure — swallow here so the *other* lane still settles
        // before unwinding destroys the plans; the original exception
        // is what propagates.
        for (executor::SimBackend *lane :
             {backend_.get(), backend2_.get()}) {
            if (!lane)
                continue;
            try {
                lane->sync();
            } catch (...) {
            }
        }
        throw;
    }
}

} // namespace amulet::runtime

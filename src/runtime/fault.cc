#include "runtime/fault.hh"

#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace amulet::runtime::fault
{

namespace
{

// The armed plan. Guarded by installation discipline, not a lock: the
// scheduler installs before shard threads start and uninstalls after
// they join, so reader threads only ever see a stable pointer.
std::unique_ptr<FaultPlan> g_plan;

/// splitmix64 finalizer: full-avalanche 64-bit mix.
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

std::uint64_t
hashSite(std::uint64_t seed, const std::string &site)
{
    std::uint64_t h = seed ^ 0xcbf29ce484222325ULL; // FNV offset basis
    for (const char c : site)
        h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
    return h;
}

const char *const kRateSites[] = {
    "wire.crash",   "wire.garble",        "wire.drop",
    "shard.throw",  "journal.shortwrite", "checkpoint.fail",
};

bool
isRateSite(const std::string &name)
{
    for (const char *site : kRateSites)
        if (name == site)
            return true;
    return false;
}

std::vector<std::string>
splitAny(const std::string &text, const char *seps)
{
    std::vector<std::string> out;
    std::string cur;
    for (const char c : text) {
        bool is_sep = false;
        for (const char *s = seps; *s; ++s)
            is_sep |= (c == *s);
        if (is_sep) {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else if (c != ' ' && c != '\t') {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

std::uint64_t
parseU64(const std::string &text, const std::string &what)
{
    std::size_t used = 0;
    std::uint64_t value = 0;
    try {
        value = std::stoull(text, &used);
    } catch (const std::exception &) {
        used = 0;
    }
    if (used != text.size() || text.empty())
        throw std::runtime_error("fault plan: bad number for " + what +
                                 ": '" + text + "'");
    return value;
}

struct Tls
{
    bool active = false;
    unsigned program = 0;
    std::uint32_t ops = 0;
};

thread_local Tls t_scope;

} // namespace

FaultPlan
FaultPlan::parse(const std::string &spec)
{
    FaultPlan plan;
    for (const std::string &pair : splitAny(spec, ";,")) {
        const std::size_t eq = pair.find('=');
        if (eq == std::string::npos || eq == 0)
            throw std::runtime_error("fault plan: expected key=value, got '" +
                                     pair + "'");
        const std::string key = pair.substr(0, eq);
        const std::string value = pair.substr(eq + 1);
        if (key == "seed") {
            plan.seed_ = parseU64(value, key);
        } else if (key == "poison") {
            for (const std::string &p : splitAny(value, ":"))
                plan.poison_.insert(
                    static_cast<unsigned>(parseU64(p, "poison index")));
        } else if (key == "journal.once") {
            plan.journalOnce_ = parseU64(value, key);
        } else if (isRateSite(key)) {
            const std::uint64_t rate = parseU64(value, key);
            if (rate > 1000)
                throw std::runtime_error("fault plan: rate for " + key +
                                         " must be 0..1000 per mille");
            plan.rates_[key] = static_cast<unsigned>(rate);
        } else {
            throw std::runtime_error("fault plan: unknown site '" + key +
                                     "'");
        }
    }
    return plan;
}

void
FaultPlan::install(const std::string &spec)
{
    g_plan = std::make_unique<FaultPlan>(parse(spec));
}

void
FaultPlan::uninstall()
{
    g_plan.reset();
}

const FaultPlan *
FaultPlan::active()
{
    return g_plan.get();
}

unsigned
FaultPlan::rate(const std::string &site) const
{
    const auto it = rates_.find(site);
    return it == rates_.end() ? 0u : it->second;
}

bool
FaultPlan::fires(const char *site, std::uint64_t key) const
{
    if (key == ProgramScope::kUnscopedKey)
        return false;
    const unsigned r = rate(site);
    if (r == 0)
        return false;
    return mix64(hashSite(seed_, site) ^ key) % 1000 < r;
}

std::uint64_t
FaultPlan::occurrence(const char *site) const
{
    // File-static so FaultPlan stays copyable/movable; contention is
    // nil (occurrence sites are checkpoint writes and journal appends).
    static std::mutex mu;
    std::lock_guard<std::mutex> lock(mu);
    return ++occurrences_[site];
}

bool
FaultPlan::journalAppendFault(std::uint64_t programIndex) const
{
    if (journalOnce_ > 0 && occurrence("journal.append") == journalOnce_)
        return true;
    return fires("journal.shortwrite", programIndex);
}

bool
FaultPlan::poisoned(unsigned program) const
{
    return poison_.count(program) != 0;
}

std::string
FaultPlan::describe() const
{
    std::string out = "seed=" + std::to_string(seed_);
    for (const auto &[site, rate] : rates_)
        out += ";" + site + "=" + std::to_string(rate);
    if (journalOnce_ > 0)
        out += ";journal.once=" + std::to_string(journalOnce_);
    if (!poison_.empty()) {
        out += ";poison=";
        bool first = true;
        for (const unsigned p : poison_) {
            if (!first)
                out += ":";
            out += std::to_string(p);
            first = false;
        }
    }
    return out;
}

ProgramScope::ProgramScope(unsigned program)
    : prevActive_(t_scope.active), prevProgram_(t_scope.program),
      prevOps_(t_scope.ops)
{
    t_scope.active = true;
    t_scope.program = program;
    t_scope.ops = 0;
}

ProgramScope::~ProgramScope()
{
    t_scope.active = prevActive_;
    t_scope.program = prevProgram_;
    t_scope.ops = prevOps_;
}

std::uint64_t
ProgramScope::nextOpKey()
{
    if (!t_scope.active)
        return kUnscopedKey;
    const std::uint64_t key =
        (std::uint64_t(t_scope.program) << 20) | (t_scope.ops & 0xfffffu);
    ++t_scope.ops;
    return key;
}

unsigned
ProgramScope::currentProgram()
{
    return t_scope.active ? t_scope.program : kNoProgram;
}

} // namespace amulet::runtime::fault

/**
 * @file
 * Per-worker campaign pipeline.
 *
 * A ShardExecutor owns one simulator harness plus one leakage model and
 * runs the full generate → contract-trace → execute → analyze → validate
 * pipeline for one test program at a time. Determinism contract: a
 * program's outcome is a pure function of (config, program index,
 * program RNG stream) —
 *
 *  - all randomness comes from the per-program Rng stream handed in by
 *    the scheduler (pre-split from the campaign seed in program order),
 *  - the predictor state (branch + memory-dependence) is restored to the
 *    canonical post-boot context before every program, and the harness
 *    already canonicalizes caches/TLB between inputs,
 *
 * so any worker may run any program and the merged campaign result is
 * independent of the worker count and of scheduling order.
 */

#ifndef AMULET_RUNTIME_SHARD_EXECUTOR_HH
#define AMULET_RUNTIME_SHARD_EXECUTOR_HH

#include <chrono>

#include "common/rng.hh"
#include "contracts/leakage_model.hh"
#include "core/campaign.hh"
#include "executor/sim_harness.hh"
#include "runtime/violation_sink.hh"

namespace amulet::runtime
{

/** Campaign wall clock (detection timestamps, time breakdowns). */
using Clock = std::chrono::steady_clock;

/** Seconds elapsed since @p t0. */
inline double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** One worker's private pipeline state. */
class ShardExecutor
{
  public:

    /**
     * Construct (and boot) the worker's simulator. @p t0 is the campaign
     * start time; detection timestamps are measured against it.
     */
    ShardExecutor(const core::CampaignConfig &cfg, Clock::time_point t0);

    /** Run one program with its dedicated RNG stream. */
    ProgramOutcome runProgram(unsigned programIndex, Rng prog_rng);

    /** Harness time breakdown accumulated so far (startup/sim/extract). */
    const executor::TimeBreakdown &times() const
    {
        return harness_.times();
    }

  private:
    const core::CampaignConfig &cfg_;
    executor::SimHarness harness_;
    contracts::LeakageModel model_;
    executor::UarchContext canonicalCtx_; ///< post-boot predictor state
    Clock::time_point t0_;
};

} // namespace amulet::runtime

#endif // AMULET_RUNTIME_SHARD_EXECUTOR_HH

/**
 * @file
 * Per-worker campaign pipeline driver.
 *
 * A ShardExecutor owns one simulator harness plus one leakage model and
 * drives the staged per-program pipeline (src/pipeline/) for one test
 * program at a time. Determinism contract: a program's outcome is a
 * pure function of (config, program index, program RNG stream) —
 *
 *  - all randomness comes from the per-program Rng stream handed in by
 *    the scheduler (pre-split from the campaign seed in program order),
 *  - the predictor state (branch + memory-dependence) is restored to the
 *    canonical post-boot context before every program's execution, and
 *    the harness already canonicalizes caches/TLB between inputs,
 *
 * so any worker may run any program and the merged campaign result is
 * independent of the worker count and of scheduling order.
 */

#ifndef AMULET_RUNTIME_SHARD_EXECUTOR_HH
#define AMULET_RUNTIME_SHARD_EXECUTOR_HH

#include <chrono>

#include "common/rng.hh"
#include "contracts/leakage_model.hh"
#include "core/campaign.hh"
#include "executor/sim_harness.hh"
#include "pipeline/pipeline.hh"
#include "runtime/violation_sink.hh"

namespace amulet::runtime
{

/** Campaign wall clock (detection timestamps, time breakdowns). */
using Clock = pipeline::Clock;

/** Seconds elapsed since @p t0. */
inline double
secondsSince(Clock::time_point t0)
{
    return pipeline::secondsSince(t0);
}

/** One worker's private pipeline state. */
class ShardExecutor
{
  public:

    /**
     * Construct (and boot) the worker's simulator. @p t0 is the campaign
     * start time; detection timestamps are measured against it.
     */
    ShardExecutor(const core::CampaignConfig &cfg, Clock::time_point t0);

    /** Run one program with its dedicated RNG stream. */
    ProgramOutcome runProgram(unsigned programIndex, Rng prog_rng);

    /** Harness time breakdown accumulated so far (startup/sim/extract). */
    const executor::TimeBreakdown &times() const
    {
        return harness_.times();
    }

  private:
    const core::CampaignConfig &cfg_;
    executor::SimHarness harness_;
    contracts::LeakageModel model_;
    executor::UarchContext canonicalCtx_; ///< post-boot predictor state
    Clock::time_point t0_;
    pipeline::ProgramPipeline stages_;
};

} // namespace amulet::runtime

#endif // AMULET_RUNTIME_SHARD_EXECUTOR_HH

/**
 * @file
 * Per-worker campaign pipeline driver.
 *
 * A ShardExecutor owns one executor backend (src/executor/backend.hh)
 * plus one leakage model and drives the staged per-program pipeline
 * (src/pipeline/). Determinism contract: a program's outcome is a pure
 * function of (config, program index, program RNG stream) —
 *
 *  - all randomness comes from the per-program Rng stream handed in by
 *    the scheduler (pre-split from the campaign seed in program order),
 *  - the predictor state (branch + memory-dependence) is restored to the
 *    canonical post-boot context before every program's execution, and
 *    the harness already canonicalizes caches/TLB between inputs,
 *
 * so any worker may run any program — on any backend — and the merged
 * campaign result is independent of the worker count, of scheduling
 * order, and of where the simulator executes.
 *
 * With a pipelined backend (async), runClaimed() software-pipelines the
 * shard across *two* backend lanes: programs alternate between two
 * independently booted simulators, so while lane 0 executes program k's
 * class batches and validation re-runs, lane 1 executes program k+1's —
 * and the worker thread generates and contract-traces program k+2.
 * Programs are mutually independent by the determinism contract (each
 * starts from the canonical post-boot context on a freshly primed
 * memory system, and simulation is reproducible across harness
 * instances — a seed-tested invariant), so per-program results are
 * byte-identical to the sequential path; only wall time moves
 * (bench/table3 backend ablation).
 */

#ifndef AMULET_RUNTIME_SHARD_EXECUTOR_HH
#define AMULET_RUNTIME_SHARD_EXECUTOR_HH

#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.hh"
#include "contracts/leakage_model.hh"
#include "core/campaign.hh"
#include "core/input_gen.hh"
#include "executor/backend.hh"
#include "pipeline/pipeline.hh"
#include "runtime/violation_sink.hh"
#include "telemetry/telemetry.hh"

namespace amulet::runtime
{

/** Campaign wall clock (detection timestamps, time breakdowns). */
using Clock = pipeline::Clock;

/** Seconds elapsed since @p t0. */
inline double
secondsSince(Clock::time_point t0)
{
    return pipeline::secondsSince(t0);
}

/** One worker's private pipeline state. */
class ShardExecutor
{
  public:

    /**
     * Construct the worker's backend (and boot its simulator). @p t0 is
     * the campaign start time; detection timestamps are measured
     * against it. @p telemetry (optional) attaches this shard to the
     * campaign telemetry: the shard records stage spans into its shard
     * sink, and each backend lane gets a private "shardN/simK" sink
     * (async lanes record from their own sim thread).
     */
    ShardExecutor(const core::CampaignConfig &cfg, Clock::time_point t0,
                  telemetry::CampaignTelemetry *telemetry = nullptr,
                  unsigned shardId = 0);

    /** Run one program with its dedicated RNG stream. */
    ProgramOutcome runProgram(unsigned programIndex, Rng prog_rng);

    /** Claim the next program index to run (nullopt: stop). */
    using ClaimFn = std::function<std::optional<unsigned>()>;
    /** Publish one finished program's outcome. */
    using ReportFn =
        std::function<void(unsigned programIndex, ProgramOutcome outcome)>;

    /**
     * Claim-run-report until the claim source dries up. On a pipelined
     * backend (and outside stopAtFirstViolation, whose claim set must
     * not run ahead of detections) the loop keeps one program in
     * simulator flight while preparing the next on this thread; per-
     * program outcomes are identical either way, only wall time moves.
     * @p streams holds the scheduler's pre-split per-program RNG
     * streams, indexed by program.
     */
    void runClaimed(const ClaimFn &claim, const std::vector<Rng> &streams,
                    const ReportFn &report);

    /** Harness time breakdown accumulated so far (startup/sim/extract),
     *  summed over the shard's backend lanes. Synchronizes with the
     *  backends' pending work. */
    const executor::TimeBreakdown &times();

    /** The shard's primary backend lane (tests, diagnostics). */
    executor::SimBackend &backend() { return *backend_; }

  private:
    pipeline::StageContext stageContext(executor::SimBackend &lane);
    /** Run the pre-simulator stages (TestGen → CTrace → Filter). */
    pipeline::ProgramPlan prepare(unsigned programIndex, Rng prog_rng);
    /** Run the simulator-bound stages (Execute → … → Record) against
     *  the lane the plan's batches were submitted to. */
    void finish(pipeline::ProgramPlan &plan, executor::SimBackend &lane);
    /** Build lane @p laneIndex's backend with its own telemetry sink. */
    std::unique_ptr<executor::SimBackend> makeLane(unsigned laneIndex);
    /** Return a finished plan's sandbox buffers to the pool. Callers
     *  must be past every stage that reads plan.inputs (RecordStage
     *  copies inputs into corpus records, never references them). */
    void reclaim(pipeline::ProgramPlan &plan)
    {
        inputPool_.recycleAll(plan.inputs);
    }

    const core::CampaignConfig &cfg_;
    telemetry::CampaignTelemetry *tel_; ///< null: telemetry off
    unsigned shardId_;
    telemetry::TelemetrySink *sink_ = nullptr; ///< this worker thread's
    std::unique_ptr<executor::SimBackend> backend_;  ///< lane 0
    std::unique_ptr<executor::SimBackend> backend2_; ///< lane 1 (pipelined)
    contracts::LeakageModel model_;
    /** Recycles input sandbox storage across the shard's programs, so
     *  the CTrace stage's hot loop allocates nothing after warm-up. */
    core::InputBufferPool inputPool_;
    executor::UarchContext canonicalCtx_; ///< post-boot predictor state
    Clock::time_point t0_;
    pipeline::ProgramPipeline prefix_;  ///< TestGen → CTrace → Filter
    pipeline::ProgramPipeline suffix_;  ///< Execute → … → Record
    executor::TimeBreakdown timesCache_; ///< storage for times()
};

} // namespace amulet::runtime

#endif // AMULET_RUNTIME_SHARD_EXECUTOR_HH

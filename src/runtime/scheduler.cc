#include "runtime/scheduler.hh"

#include <atomic>
#include <optional>
#include <vector>

#include "common/rng.hh"
#include "runtime/shard_executor.hh"
#include "runtime/violation_sink.hh"
#include "runtime/worker_pool.hh"

namespace amulet::runtime
{

CampaignScheduler::CampaignScheduler(core::CampaignConfig config)
    : cfg_(std::move(config))
{
}

core::CampaignStats
CampaignScheduler::run()
{
    const auto t0 = Clock::now();
    const unsigned num_programs = cfg_.numPrograms;
    unsigned jobs = resolveJobs(cfg_.jobs);
    if (num_programs == 0) {
        // Nothing to shard; report an empty campaign without booting
        // any simulator (also guards absurd jobs requests).
        core::CampaignStats stats;
        stats.jobs = 1;
        return stats;
    }
    if (jobs > num_programs)
        jobs = num_programs;

    // One RNG stream per program, split in program order so that the
    // stream a program sees does not depend on which worker claims it.
    std::vector<Rng> streams;
    streams.reserve(num_programs);
    Rng master(cfg_.seed);
    for (unsigned p = 0; p < num_programs; ++p)
        streams.push_back(master.split());

    ViolationSink sink(num_programs, cfg_.maxViolationsRecorded);
    std::atomic<unsigned> next_program{0};
    std::atomic<bool> stop{false};

    // One shard per worker: claim program indices dynamically for load
    // balance; determinism is per-program, not per-claim-order. The
    // executor (one simulator boot) is only constructed once the worker
    // has actually claimed a program, so workers that arrive after the
    // queue drained — or after a stop-first detection — cost nothing.
    auto shard_task = [&] {
        std::optional<ShardExecutor> exec;
        for (;;) {
            if (stop.load(std::memory_order_relaxed))
                break;
            const unsigned p =
                next_program.fetch_add(1, std::memory_order_relaxed);
            if (p >= num_programs)
                break;
            if (!exec)
                exec.emplace(cfg_, t0);
            ProgramOutcome out = exec->runProgram(p, streams[p]);
            const bool detected = out.confirmedViolations > 0;
            sink.report(p, std::move(out));
            if (detected && cfg_.stopAtFirstViolation)
                stop.store(true, std::memory_order_relaxed);
        }
        if (exec)
            sink.addTimes(exec->times());
    };

    if (jobs <= 1) {
        shard_task();
    } else {
        WorkerPool pool(jobs);
        for (unsigned s = 0; s < jobs; ++s)
            pool.submit(shard_task);
        pool.wait();
    }

    core::CampaignStats stats = sink.finalize();
    stats.jobs = jobs;
    stats.wallSeconds = secondsSince(t0);
    // Across jobs workers, jobs * wallSeconds of worker time was
    // available; whatever the harness and campaign phases did not measure
    // is scheduling overhead and idle tail.
    const double measured =
        stats.times.startupSec + stats.times.simulateSec +
        stats.times.traceExtractSec + stats.times.testGenSec +
        stats.times.ctraceSec;
    stats.times.otherSec = stats.wallSeconds * jobs - measured;
    if (stats.times.otherSec < 0)
        stats.times.otherSec = 0;
    return stats;
}

} // namespace amulet::runtime

#include "runtime/scheduler.hh"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_set>
#include <vector>

#include "common/rng.hh"
#include "corpus/checkpoint.hh"
#include "corpus/corpus_store.hh"
#include "runtime/shard_executor.hh"
#include "runtime/violation_sink.hh"
#include "runtime/worker_pool.hh"
#include "telemetry/telemetry.hh"

namespace amulet::runtime
{

CampaignScheduler::CampaignScheduler(core::CampaignConfig config)
    : cfg_(std::move(config))
{
}

core::CampaignStats
CampaignScheduler::run()
{
    const auto t0 = Clock::now();
    const unsigned num_programs = cfg_.numPrograms;
    unsigned jobs = resolveJobs(cfg_.jobs);
    if (num_programs == 0) {
        // Nothing to shard; report an empty campaign without booting
        // any simulator (also guards absurd jobs requests).
        core::CampaignStats stats;
        stats.jobs = 1;
        stats.backend = executor::backendKindName(cfg_.backend);
        return stats;
    }
    if (jobs > num_programs)
        jobs = num_programs;

    // Campaign telemetry (src/telemetry/): per-shard metric registries
    // and span buffers, live-progress atomics, and the optional
    // heartbeat/trace channels. Observability only — nothing recorded
    // here feeds back into scheduling or results.
    telemetry::CampaignTelemetry telem(cfg_.telemetry, jobs,
                                       num_programs, t0);
    telemetry::CampaignProgress &progress = telem.progress();

    // One RNG stream per program, split in program order so that the
    // stream a program sees does not depend on which worker claims it.
    std::vector<Rng> streams;
    streams.reserve(num_programs);
    Rng master(cfg_.seed);
    for (unsigned p = 0; p < num_programs; ++p)
        streams.push_back(master.split());

    ViolationSink sink(num_programs, cfg_.maxViolationsRecorded);
    std::atomic<unsigned> next_program{0};
    std::atomic<bool> stop{false};

    // --- Corpus persistence (src/corpus/) --------------------------------
    // Preload checkpointed outcomes *before* subscribing the store to the
    // sink: their records are already journaled, and the store's dedup
    // index would drop the duplicates anyway, but not streaming them at
    // all keeps the journal append-only in spirit as well as in bytes.
    std::unique_ptr<corpus::CorpusStore> store;
    std::unordered_set<unsigned> completed;
    bool already_detected = false;
    if (!cfg_.corpusDir.empty()) {
        store = std::make_unique<corpus::CorpusStore>(cfg_.corpusDir, cfg_);
        if (cfg_.resume) {
            auto restored = corpus::loadCheckpoint(cfg_.corpusDir, cfg_);
            if (!restored.empty()) {
                // Checkpoints carry counters only; the records of each
                // completed program rehydrate from the journal, in
                // journal order (= within-program detection order).
                // Journaled records of *unfinished* programs are left
                // alone — their program re-runs and re-derives them.
                for (core::ViolationRecord &rec :
                     corpus::CorpusStore::readJournal(cfg_.corpusDir)) {
                    auto it = restored.find(rec.programIndex);
                    if (it != restored.end())
                        it->second.records.push_back(std::move(rec));
                }
            }
            for (auto &[index, outcome] : restored) {
                already_detected |= outcome.confirmedViolations > 0;
                // A restored outcome's campaign-phase seconds feed the
                // registry exactly like a freshly reported one's, so
                // the final breakdown of a resumed campaign matches an
                // uninterrupted run's accounting.
                auto &sched = telem.schedulerSink().metrics();
                sched.timer("time.testGen").add(outcome.testGenSec);
                sched.timer("time.ctrace").add(outcome.ctraceSec);
                sched.timer("time.filter").add(outcome.filterSec);
                progress.resumedPrograms.fetch_add(
                    1, std::memory_order_relaxed);
                progress.testCases.fetch_add(outcome.testCases,
                                             std::memory_order_relaxed);
                progress.violations.fetch_add(
                    outcome.confirmedViolations,
                    std::memory_order_relaxed);
                sink.report(index, std::move(outcome));
                completed.insert(index);
            }
        }
        sink.setRecordCallback(
            [&store](unsigned, const core::ViolationRecord &rec) {
                store->append(rec);
            });
    }
    // Under stopAtFirstViolation a resumed campaign whose checkpoint
    // already holds a detection is finished; do not run more programs.
    if (cfg_.stopAtFirstViolation && already_detected)
        stop.store(true, std::memory_order_relaxed);

    std::mutex checkpoint_mu;
    auto write_checkpoint = [&] {
        std::lock_guard<std::mutex> lock(checkpoint_mu);
        corpus::writeCheckpoint(cfg_.corpusDir, cfg_,
                                sink.snapshotReported());
    };
    std::atomic<unsigned> claimed_this_run{0};
    std::atomic<unsigned> reported_this_run{0};

    // A corpus I/O failure (journal append, checkpoint write) inside a
    // pool thread must surface as the library's CorpusError, not as
    // std::terminate from an exception escaping a std::thread: capture
    // the first failure, stop the campaign, rethrow on the caller.
    std::exception_ptr failure;
    std::mutex failure_mu;

    // Claim program indices dynamically for load balance; determinism
    // is per-program, not per-claim-order. The per-process budget is
    // enforced at claim time so that a pipelined shard's one-program
    // lookahead cannot overshoot it.
    auto claim = [&]() -> std::optional<unsigned> {
        for (;;) {
            if (stop.load(std::memory_order_relaxed))
                return std::nullopt;
            const unsigned p =
                next_program.fetch_add(1, std::memory_order_relaxed);
            if (p >= num_programs)
                return std::nullopt;
            if (completed.count(p))
                continue; // restored from the checkpoint
            if (cfg_.maxProgramsThisRun > 0) {
                const unsigned claimed = claimed_this_run.fetch_add(
                                             1, std::memory_order_relaxed) +
                                         1;
                if (claimed >= cfg_.maxProgramsThisRun) {
                    // Budget reached: stop claiming. The final
                    // checkpoint makes the partial campaign resumable.
                    stop.store(true, std::memory_order_relaxed);
                }
                if (claimed > cfg_.maxProgramsThisRun)
                    return std::nullopt; // lost the race for the budget
            }
            return p;
        }
    };
    auto report = [&](unsigned p, ProgramOutcome out) {
        const bool detected = out.confirmedViolations > 0;
        sink.report(p, std::move(out));
        if (detected && cfg_.stopAtFirstViolation)
            stop.store(true, std::memory_order_relaxed);
        const unsigned done =
            reported_this_run.fetch_add(1, std::memory_order_relaxed) + 1;
        if (store && cfg_.checkpointEvery > 0 &&
            done % cfg_.checkpointEvery == 0) {
            write_checkpoint();
        }
    };

    // One shard per worker. The executor (one simulator boot) is only
    // constructed once the worker has actually claimed a program, so
    // workers that arrive after the queue drained — or after a
    // stop-first detection — cost nothing. ShardExecutor::runClaimed
    // owns the claim-run-report loop; on a pipelined backend it keeps
    // one program in simulator flight while preparing the next.
    auto shard_task = [&](unsigned s) {
        telemetry::TelemetrySink &tsink = telem.shardSink(s);
        telemetry::ShardLive &live = progress.shard(s);
        // Claim/report run on this worker thread, so their spans land
        // in the shard's own sink. Claim spans make queue contention
        // and stop-flag stalls visible in a trace.
        auto claim_traced = [&]() -> std::optional<unsigned> {
            telemetry::SpanScope span(&tsink, "sched.claim");
            return claim();
        };
        auto report_traced = [&](unsigned p, ProgramOutcome out) {
            // Campaign-phase accounting timers — the same values the
            // sink merges into per-program counters.
            auto &m = tsink.metrics();
            m.timer("time.testGen").add(out.testGenSec);
            m.timer("time.ctrace").add(out.ctraceSec);
            m.timer("time.filter").add(out.filterSec);
            // Live heartbeat counters. progressIndex bumps once per
            // report — the shard's monotonic liveness index.
            const auto relaxed = std::memory_order_relaxed;
            auto toUs = [](double sec) {
                return static_cast<std::uint64_t>(sec * 1e6);
            };
            progress.programsDone.fetch_add(1, relaxed);
            progress.testCases.fetch_add(out.testCases, relaxed);
            progress.violations.fetch_add(out.confirmedViolations,
                                          relaxed);
            progress.testGenUs.fetch_add(toUs(out.testGenSec), relaxed);
            progress.ctraceUs.fetch_add(toUs(out.ctraceSec), relaxed);
            progress.filterUs.fetch_add(toUs(out.filterSec), relaxed);
            live.currentProgram.store(p, relaxed);
            live.programsDone.fetch_add(1, relaxed);
            live.progressIndex.fetch_add(1, relaxed);
            telemetry::SpanScope span(&tsink, "sched.report", p);
            report(p, std::move(out));
        };
        std::optional<ShardExecutor> exec;
        try {
            const std::optional<unsigned> first = claim_traced();
            if (first) {
                exec.emplace(cfg_, t0, &telem, s);
                bool first_pending = true;
                exec->runClaimed(
                    [&]() -> std::optional<unsigned> {
                        if (first_pending) {
                            first_pending = false;
                            return first;
                        }
                        return claim_traced();
                    },
                    streams, report_traced);
            }
        } catch (...) {
            std::lock_guard<std::mutex> lock(failure_mu);
            if (!failure)
                failure = std::current_exception();
            stop.store(true, std::memory_order_relaxed);
        }
        if (exec) {
            // times() synchronizes with the backend and can rethrow a
            // failure the loop above already captured (or, for an
            // out-of-process worker, fail on its own). The breakdown is
            // diagnostics — never let it escape into std::terminate.
            try {
                const executor::TimeBreakdown &tb = exec->times();
                auto &m = tsink.metrics();
                m.timer("time.startup").add(tb.startupSec);
                m.timer("time.prime").add(tb.primeSec);
                m.timer("time.simulate").add(tb.simulateSec);
                m.timer("time.traceExtract").add(tb.traceExtractSec);
            } catch (...) {
                std::lock_guard<std::mutex> lock(failure_mu);
                if (!failure)
                    failure = std::current_exception();
            }
        }
    };

    telem.startHeartbeat();
    if (jobs <= 1) {
        shard_task(0);
    } else {
        WorkerPool pool(jobs);
        for (unsigned s = 0; s < jobs; ++s)
            pool.submit([&shard_task, s] { shard_task(s); });
        pool.wait();
    }
    telem.stopHeartbeat(); // emits the final snapshot line
    if (failure)
        std::rethrow_exception(failure);
    telem.writeTraceFile();

    // Final checkpoint: everything completed (including this run's tail
    // and any preloaded outcomes) is resumable state.
    if (store)
        write_checkpoint();

    core::CampaignStats stats = sink.finalize();
    stats.jobs = jobs;
    stats.backend = executor::backendKindName(cfg_.backend);
    stats.resumedPrograms = static_cast<unsigned>(completed.size());
    stats.wallSeconds = secondsSince(t0);

    // Campaign-level tallies into the scheduler sink, so the merged
    // registry is a self-contained record of the run.
    {
        auto &m = telem.schedulerSink().metrics();
        m.gauge("campaign.jobs").set(jobs);
        m.gauge("campaign.wallSeconds").set(stats.wallSeconds);
        auto count = [&m](const char *name, std::uint64_t v) {
            m.counter(name).add(v);
        };
        count("campaign.programs", stats.programs);
        count("campaign.skippedPrograms", stats.skippedPrograms);
        count("campaign.resumedPrograms", stats.resumedPrograms);
        count("campaign.testCases", stats.testCases);
        count("campaign.filteredTestCases", stats.filteredTestCases);
        count("campaign.simInputRuns", stats.simInputRuns());
        count("campaign.effectiveClasses", stats.effectiveClasses);
        count("campaign.candidateViolations", stats.candidateViolations);
        count("campaign.validationRuns", stats.validationRuns);
        count("campaign.violatingTestCases", stats.violatingTestCases);
        count("campaign.confirmedViolations", stats.confirmedViolations);
    }

    // The merged registry is the single source of truth for the time
    // breakdown: every report() above fed the campaign-phase timers and
    // every shard flushed its harness breakdown into the time.* timers.
    stats.metrics = telem.mergedMetrics();
    auto timed = [&](const char *name) -> double {
        auto it = stats.metrics.find(name);
        return it == stats.metrics.end() ? 0.0 : it->second.value;
    };
    stats.times.startupSec = timed("time.startup");
    stats.times.primeSec = timed("time.prime");
    stats.times.simulateSec = timed("time.simulate");
    stats.times.traceExtractSec = timed("time.traceExtract");
    stats.times.testGenSec = timed("time.testGen");
    stats.times.ctraceSec = timed("time.ctrace");
    stats.times.filterSec = timed("time.filter");
    // Across jobs workers, jobs * wallSeconds of worker time was
    // available; whatever the harness and campaign phases did not measure
    // is scheduling overhead and idle tail.
    const double measured = telemetry::timedSectionTotalSec(stats.metrics);
    stats.times.otherSec =
        std::max(0.0, stats.wallSeconds * jobs - measured);
#ifndef NDEBUG
    // The accounting sections are disjoint slices of worker time only
    // when the harness runs on the worker's own thread (in-process
    // backend); async/subprocess overlap simulation with preparation,
    // so their sections legitimately exceed the worker-time budget.
    // Resumed campaigns replay past runs' seconds against this run's
    // (shorter) wall clock, so exclude them too.
    if (cfg_.backend == executor::BackendKind::InProcess &&
        stats.resumedPrograms == 0) {
        assert(measured <= stats.wallSeconds * jobs * 1.05 + 0.25 &&
               "timed sections exceed available worker time");
    }
#endif
    if (store)
        store->writeMetrics(
            telemetry::metricsJson(stats.metrics, telem.topSpans()));
    return stats;
}

} // namespace amulet::runtime

#include "runtime/scheduler.hh"

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_set>
#include <vector>

#include "common/rng.hh"
#include "corpus/checkpoint.hh"
#include "corpus/corpus_store.hh"
#include "runtime/shard_executor.hh"
#include "runtime/violation_sink.hh"
#include "runtime/worker_pool.hh"

namespace amulet::runtime
{

CampaignScheduler::CampaignScheduler(core::CampaignConfig config)
    : cfg_(std::move(config))
{
}

core::CampaignStats
CampaignScheduler::run()
{
    const auto t0 = Clock::now();
    const unsigned num_programs = cfg_.numPrograms;
    unsigned jobs = resolveJobs(cfg_.jobs);
    if (num_programs == 0) {
        // Nothing to shard; report an empty campaign without booting
        // any simulator (also guards absurd jobs requests).
        core::CampaignStats stats;
        stats.jobs = 1;
        stats.backend = executor::backendKindName(cfg_.backend);
        return stats;
    }
    if (jobs > num_programs)
        jobs = num_programs;

    // One RNG stream per program, split in program order so that the
    // stream a program sees does not depend on which worker claims it.
    std::vector<Rng> streams;
    streams.reserve(num_programs);
    Rng master(cfg_.seed);
    for (unsigned p = 0; p < num_programs; ++p)
        streams.push_back(master.split());

    ViolationSink sink(num_programs, cfg_.maxViolationsRecorded);
    std::atomic<unsigned> next_program{0};
    std::atomic<bool> stop{false};

    // --- Corpus persistence (src/corpus/) --------------------------------
    // Preload checkpointed outcomes *before* subscribing the store to the
    // sink: their records are already journaled, and the store's dedup
    // index would drop the duplicates anyway, but not streaming them at
    // all keeps the journal append-only in spirit as well as in bytes.
    std::unique_ptr<corpus::CorpusStore> store;
    std::unordered_set<unsigned> completed;
    bool already_detected = false;
    if (!cfg_.corpusDir.empty()) {
        store = std::make_unique<corpus::CorpusStore>(cfg_.corpusDir, cfg_);
        if (cfg_.resume) {
            auto restored = corpus::loadCheckpoint(cfg_.corpusDir, cfg_);
            if (!restored.empty()) {
                // Checkpoints carry counters only; the records of each
                // completed program rehydrate from the journal, in
                // journal order (= within-program detection order).
                // Journaled records of *unfinished* programs are left
                // alone — their program re-runs and re-derives them.
                for (core::ViolationRecord &rec :
                     corpus::CorpusStore::readJournal(cfg_.corpusDir)) {
                    auto it = restored.find(rec.programIndex);
                    if (it != restored.end())
                        it->second.records.push_back(std::move(rec));
                }
            }
            for (auto &[index, outcome] : restored) {
                already_detected |= outcome.confirmedViolations > 0;
                sink.report(index, std::move(outcome));
                completed.insert(index);
            }
        }
        sink.setRecordCallback(
            [&store](unsigned, const core::ViolationRecord &rec) {
                store->append(rec);
            });
    }
    // Under stopAtFirstViolation a resumed campaign whose checkpoint
    // already holds a detection is finished; do not run more programs.
    if (cfg_.stopAtFirstViolation && already_detected)
        stop.store(true, std::memory_order_relaxed);

    std::mutex checkpoint_mu;
    auto write_checkpoint = [&] {
        std::lock_guard<std::mutex> lock(checkpoint_mu);
        corpus::writeCheckpoint(cfg_.corpusDir, cfg_,
                                sink.snapshotReported());
    };
    std::atomic<unsigned> claimed_this_run{0};
    std::atomic<unsigned> reported_this_run{0};

    // A corpus I/O failure (journal append, checkpoint write) inside a
    // pool thread must surface as the library's CorpusError, not as
    // std::terminate from an exception escaping a std::thread: capture
    // the first failure, stop the campaign, rethrow on the caller.
    std::exception_ptr failure;
    std::mutex failure_mu;

    // Claim program indices dynamically for load balance; determinism
    // is per-program, not per-claim-order. The per-process budget is
    // enforced at claim time so that a pipelined shard's one-program
    // lookahead cannot overshoot it.
    auto claim = [&]() -> std::optional<unsigned> {
        for (;;) {
            if (stop.load(std::memory_order_relaxed))
                return std::nullopt;
            const unsigned p =
                next_program.fetch_add(1, std::memory_order_relaxed);
            if (p >= num_programs)
                return std::nullopt;
            if (completed.count(p))
                continue; // restored from the checkpoint
            if (cfg_.maxProgramsThisRun > 0) {
                const unsigned claimed = claimed_this_run.fetch_add(
                                             1, std::memory_order_relaxed) +
                                         1;
                if (claimed >= cfg_.maxProgramsThisRun) {
                    // Budget reached: stop claiming. The final
                    // checkpoint makes the partial campaign resumable.
                    stop.store(true, std::memory_order_relaxed);
                }
                if (claimed > cfg_.maxProgramsThisRun)
                    return std::nullopt; // lost the race for the budget
            }
            return p;
        }
    };
    auto report = [&](unsigned p, ProgramOutcome out) {
        const bool detected = out.confirmedViolations > 0;
        sink.report(p, std::move(out));
        if (detected && cfg_.stopAtFirstViolation)
            stop.store(true, std::memory_order_relaxed);
        const unsigned done =
            reported_this_run.fetch_add(1, std::memory_order_relaxed) + 1;
        if (store && cfg_.checkpointEvery > 0 &&
            done % cfg_.checkpointEvery == 0) {
            write_checkpoint();
        }
    };

    // One shard per worker. The executor (one simulator boot) is only
    // constructed once the worker has actually claimed a program, so
    // workers that arrive after the queue drained — or after a
    // stop-first detection — cost nothing. ShardExecutor::runClaimed
    // owns the claim-run-report loop; on a pipelined backend it keeps
    // one program in simulator flight while preparing the next.
    auto shard_task = [&] {
        std::optional<ShardExecutor> exec;
        try {
            const std::optional<unsigned> first = claim();
            if (first) {
                exec.emplace(cfg_, t0);
                bool first_pending = true;
                exec->runClaimed(
                    [&]() -> std::optional<unsigned> {
                        if (first_pending) {
                            first_pending = false;
                            return first;
                        }
                        return claim();
                    },
                    streams, report);
            }
        } catch (...) {
            std::lock_guard<std::mutex> lock(failure_mu);
            if (!failure)
                failure = std::current_exception();
            stop.store(true, std::memory_order_relaxed);
        }
        if (exec) {
            // times() synchronizes with the backend and can rethrow a
            // failure the loop above already captured (or, for an
            // out-of-process worker, fail on its own). The breakdown is
            // diagnostics — never let it escape into std::terminate.
            try {
                sink.addTimes(exec->times());
            } catch (...) {
                std::lock_guard<std::mutex> lock(failure_mu);
                if (!failure)
                    failure = std::current_exception();
            }
        }
    };

    if (jobs <= 1) {
        shard_task();
    } else {
        WorkerPool pool(jobs);
        for (unsigned s = 0; s < jobs; ++s)
            pool.submit(shard_task);
        pool.wait();
    }
    if (failure)
        std::rethrow_exception(failure);

    // Final checkpoint: everything completed (including this run's tail
    // and any preloaded outcomes) is resumable state.
    if (store)
        write_checkpoint();

    core::CampaignStats stats = sink.finalize();
    stats.jobs = jobs;
    stats.backend = executor::backendKindName(cfg_.backend);
    stats.resumedPrograms = static_cast<unsigned>(completed.size());
    stats.wallSeconds = secondsSince(t0);
    // Across jobs workers, jobs * wallSeconds of worker time was
    // available; whatever the harness and campaign phases did not measure
    // is scheduling overhead and idle tail.
    const double measured =
        stats.times.startupSec + stats.times.primeSec +
        stats.times.simulateSec + stats.times.traceExtractSec +
        stats.times.testGenSec + stats.times.ctraceSec +
        stats.times.filterSec;
    stats.times.otherSec = stats.wallSeconds * jobs - measured;
    if (stats.times.otherSec < 0)
        stats.times.otherSec = 0;
    return stats;
}

} // namespace amulet::runtime

#include "runtime/scheduler.hh"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.hh"
#include "corpus/checkpoint.hh"
#include "corpus/corpus_store.hh"
#include "corpus/serde.hh"
#include "runtime/fault.hh"
#include "runtime/shard_executor.hh"
#include "runtime/violation_sink.hh"
#include "runtime/worker_pool.hh"
#include "telemetry/telemetry.hh"

namespace amulet::runtime
{

CampaignScheduler::CampaignScheduler(core::CampaignConfig config)
    : cfg_(std::move(config))
{
}

core::CampaignStats
CampaignScheduler::run()
{
    const auto t0 = Clock::now();
    const unsigned num_programs = cfg_.numPrograms;
    unsigned jobs = resolveJobs(cfg_.jobs);
    if (num_programs == 0) {
        // Nothing to shard; report an empty campaign without booting
        // any simulator (also guards absurd jobs requests).
        core::CampaignStats stats;
        stats.jobs = 1;
        stats.backend = executor::backendKindName(cfg_.backend);
        return stats;
    }
    if (jobs > num_programs)
        jobs = num_programs;

    // Deterministic chaos layer (src/runtime/fault.hh): armed for this
    // campaign from --fault-plan (or $AMULET_FAULT_PLAN when the config
    // is empty), disarmed on every exit path. Runtime-only: the plan is
    // never part of the corpus fingerprint, and a run with no plan
    // takes none of the injected branches.
    struct PlanGuard
    {
        bool armed = false;
        ~PlanGuard()
        {
            if (armed)
                fault::FaultPlan::uninstall();
        }
    } plan_guard;
    {
        std::string spec = cfg_.faultPlan;
        if (spec.empty())
            if (const char *env = std::getenv("AMULET_FAULT_PLAN"))
                spec = env;
        if (!spec.empty()) {
            fault::FaultPlan::install(spec);
            plan_guard.armed = true;
        }
    }

    // Campaign telemetry (src/telemetry/): per-shard metric registries
    // and span buffers, live-progress atomics, and the optional
    // heartbeat/trace channels. Observability only — nothing recorded
    // here feeds back into scheduling or results.
    telemetry::CampaignTelemetry telem(cfg_.telemetry, jobs,
                                       num_programs, t0);
    telemetry::CampaignProgress &progress = telem.progress();

    // One RNG stream per program, split in program order so that the
    // stream a program sees does not depend on which worker claims it.
    std::vector<Rng> streams;
    streams.reserve(num_programs);
    Rng master(cfg_.seed);
    for (unsigned p = 0; p < num_programs; ++p)
        streams.push_back(master.split());

    ViolationSink sink(num_programs, cfg_.maxViolationsRecorded);
    std::atomic<unsigned> next_program{0};
    std::atomic<bool> stop{false};

    // --- Corpus persistence (src/corpus/) --------------------------------
    // Preload checkpointed outcomes *before* subscribing the store to the
    // sink: their records are already journaled, and the store's dedup
    // index would drop the duplicates anyway, but not streaming them at
    // all keeps the journal append-only in spirit as well as in bytes.
    std::unique_ptr<corpus::CorpusStore> store;
    std::unordered_set<unsigned> completed;
    bool already_detected = false;
    if (!cfg_.corpusDir.empty()) {
        store = std::make_unique<corpus::CorpusStore>(cfg_.corpusDir, cfg_);
        if (cfg_.resume) {
            auto restored = corpus::loadCheckpoint(cfg_.corpusDir, cfg_);
            if (!restored.empty()) {
                // Checkpoints carry counters only; the records of each
                // completed program rehydrate from the journal, in
                // journal order (= within-program detection order).
                // Journaled records of *unfinished* programs are left
                // alone — their program re-runs and re-derives them.
                for (core::ViolationRecord &rec :
                     corpus::CorpusStore::readJournal(cfg_.corpusDir)) {
                    auto it = restored.find(rec.programIndex);
                    if (it != restored.end())
                        it->second.records.push_back(std::move(rec));
                }
            }
            for (auto &[index, outcome] : restored) {
                already_detected |= outcome.confirmedViolations > 0;
                // A restored outcome's campaign-phase seconds feed the
                // registry exactly like a freshly reported one's, so
                // the final breakdown of a resumed campaign matches an
                // uninterrupted run's accounting.
                auto &sched = telem.schedulerSink().metrics();
                sched.timer("time.testGen").add(outcome.testGenSec);
                sched.timer("time.ctrace").add(outcome.ctraceSec);
                sched.timer("time.filter").add(outcome.filterSec);
                progress.resumedPrograms.fetch_add(
                    1, std::memory_order_relaxed);
                progress.testCases.fetch_add(outcome.testCases,
                                             std::memory_order_relaxed);
                progress.violations.fetch_add(
                    outcome.confirmedViolations,
                    std::memory_order_relaxed);
                sink.report(index, std::move(outcome));
                completed.insert(index);
            }
        }
        sink.setRecordCallback(
            [&store](unsigned, const core::ViolationRecord &rec) {
                store->append(rec);
            });
    }
    // Under stopAtFirstViolation a resumed campaign whose checkpoint
    // already holds a detection is finished; do not run more programs.
    if (cfg_.stopAtFirstViolation && already_detected)
        stop.store(true, std::memory_order_relaxed);

    std::mutex checkpoint_mu;
    std::atomic<unsigned> checkpoint_failures{0};
    auto write_checkpoint = [&] {
        std::lock_guard<std::mutex> lock(checkpoint_mu);
        try {
            corpus::writeCheckpoint(cfg_.corpusDir, cfg_,
                                    sink.snapshotReported());
        } catch (const corpus::CorpusError &) {
            // A checkpoint is derived progress-markers, not data, and
            // its write is atomic (tmp + rename): a failed write leaves
            // the previous checkpoint intact and consistent. Keep the
            // campaign running — a resume just re-runs a few more
            // programs, whose journal appends dedup — and count the
            // failure for the merged registry.
            checkpoint_failures.fetch_add(1, std::memory_order_relaxed);
        }
    };
    std::atomic<unsigned> claimed_this_run{0};
    std::atomic<unsigned> reported_this_run{0};

    // A failure inside a pool thread must surface as the library's own
    // exception, not as std::terminate from one escaping a std::thread:
    // capture the first failure. Whether it aborts the campaign is
    // decided by the containment verdict after the pool drains — a
    // shard death whose work was re-leased and finished elsewhere is
    // telemetry, not an abort.
    std::exception_ptr failure;
    std::mutex failure_mu;

    // --- Shard containment (re-lease) state ------------------------------
    // When a shard thread dies, the programs it had claimed but not yet
    // reported go back on a release queue that every claimant serves
    // before the fresh-program range. Pre-split per-program RNG streams
    // make the re-run byte-identical to the run the dead shard never
    // finished — the exact re-lease/dedup path the distributed fabric
    // will reuse for node loss. A program whose runs die
    // kMaxProgramAttempts times is quarantined instead of re-leased.
    constexpr unsigned kMaxProgramAttempts = 3;
    // Per-thread reincarnation budget: a shard that keeps dying is
    // systemic breakage (broken worker binary, dead disk), not bad
    // luck; it gives up, and the campaign aborts once every shard has.
    constexpr unsigned kMaxShardDeaths = 8;
    std::mutex lease_mu;
    std::deque<unsigned> release_queue;      // guarded by lease_mu
    std::unordered_map<unsigned, unsigned> release_attempts; // by lease_mu
    unsigned shards_gave_up = 0;             // guarded by lease_mu
    unsigned live_claimants = jobs;          // guarded by lease_mu
    bool work_abandoned = false;             // guarded by lease_mu
    std::atomic<bool> containment_broken{false};

    // Claim program indices dynamically for load balance; determinism
    // is per-program, not per-claim-order. Re-leased programs are
    // served first and bypass the per-process budget (they were already
    // counted at first claim). The budget is enforced at claim time so
    // that a pipelined shard's one-program lookahead cannot overshoot
    // it.
    auto claim = [&]() -> std::optional<unsigned> {
        for (;;) {
            if (stop.load(std::memory_order_relaxed))
                return std::nullopt;
            {
                std::lock_guard<std::mutex> lock(lease_mu);
                if (!release_queue.empty()) {
                    const unsigned p = release_queue.front();
                    release_queue.pop_front();
                    return p;
                }
            }
            const unsigned p =
                next_program.fetch_add(1, std::memory_order_relaxed);
            if (p >= num_programs)
                return std::nullopt;
            if (completed.count(p))
                continue; // restored from the checkpoint
            if (cfg_.maxProgramsThisRun > 0) {
                const unsigned claimed = claimed_this_run.fetch_add(
                                             1, std::memory_order_relaxed) +
                                         1;
                if (claimed >= cfg_.maxProgramsThisRun) {
                    // Budget reached: stop claiming. The final
                    // checkpoint makes the partial campaign resumable.
                    stop.store(true, std::memory_order_relaxed);
                }
                if (claimed > cfg_.maxProgramsThisRun)
                    return std::nullopt; // lost the race for the budget
            }
            return p;
        }
    };
    auto report = [&](unsigned p, ProgramOutcome out) {
        const bool detected = out.confirmedViolations > 0;
        // A quarantine is journaled like the program's records would
        // have been — *before* the sink marks the program reported, so
        // an append failure leaves it unreported (and re-leased) rather
        // than silently dropped.
        if (out.quarantined && store)
            store->appendQuarantine(p, out.quarantineReason);
        sink.report(p, std::move(out));
        if (detected && cfg_.stopAtFirstViolation)
            stop.store(true, std::memory_order_relaxed);
        const unsigned done =
            reported_this_run.fetch_add(1, std::memory_order_relaxed) + 1;
        if (store && cfg_.checkpointEvery > 0 &&
            done % cfg_.checkpointEvery == 0) {
            write_checkpoint();
        }
    };

    // One shard per worker. The executor (one simulator boot) is only
    // constructed once the worker has actually claimed a program, so
    // workers that arrive after the queue drained — or after a
    // stop-first detection — cost nothing. ShardExecutor::runClaimed
    // owns the claim-run-report loop; on a pipelined backend it keeps
    // one program in simulator flight while preparing the next.
    auto shard_task = [&](unsigned s) {
        telemetry::TelemetrySink &tsink = telem.shardSink(s);
        telemetry::ShardLive &live = progress.shard(s);
        // Claim/report run on this worker thread, so their spans land
        // in the shard's own sink. Claim spans make queue contention
        // and stop-flag stalls visible in a trace.
        auto claim_traced = [&]() -> std::optional<unsigned> {
            telemetry::SpanScope span(&tsink, "sched.claim");
            return claim();
        };
        auto report_traced = [&](unsigned p, ProgramOutcome out) {
            // Deterministic chaos site: a shard-thread exception in the
            // report path, keyed by (program, re-lease attempt) so a
            // re-leased run of the same program can succeed. Thrown
            // before the sink sees the outcome — the program stays
            // unreported and containment re-leases it.
            if (const auto *plan = fault::FaultPlan::active()) {
                if (!out.quarantined) {
                    unsigned attempt = 0;
                    {
                        std::lock_guard<std::mutex> lock(lease_mu);
                        const auto it = release_attempts.find(p);
                        if (it != release_attempts.end())
                            attempt = it->second;
                    }
                    if (plan->fires("shard.throw",
                                    (std::uint64_t{p} << 8) | attempt))
                        throw std::runtime_error(
                            "fault plan: injected shard failure at "
                            "program " + std::to_string(p));
                }
            }
            // Campaign-phase accounting timers — the same values the
            // sink merges into per-program counters.
            auto &m = tsink.metrics();
            m.timer("time.testGen").add(out.testGenSec);
            m.timer("time.ctrace").add(out.ctraceSec);
            m.timer("time.filter").add(out.filterSec);
            // Live heartbeat counters. progressIndex bumps once per
            // report — the shard's monotonic liveness index.
            const auto relaxed = std::memory_order_relaxed;
            auto toUs = [](double sec) {
                return static_cast<std::uint64_t>(sec * 1e6);
            };
            progress.programsDone.fetch_add(1, relaxed);
            progress.testCases.fetch_add(out.testCases, relaxed);
            progress.violations.fetch_add(out.confirmedViolations,
                                          relaxed);
            progress.testGenUs.fetch_add(toUs(out.testGenSec), relaxed);
            progress.ctraceUs.fetch_add(toUs(out.ctraceSec), relaxed);
            progress.filterUs.fetch_add(toUs(out.filterSec), relaxed);
            live.currentProgram.store(p, relaxed);
            live.programsDone.fetch_add(1, relaxed);
            live.progressIndex.fetch_add(1, relaxed);
            telemetry::SpanScope span(&tsink, "sched.report", p);
            report(p, std::move(out));
        };
        // Programs this shard has claimed but not yet reported. On a
        // shard death every entry is re-leased (or quarantined after
        // kMaxProgramAttempts deaths). The sink's single-report
        // invariant holds because a program is owned by exactly one
        // incarnation at a time: it leaves `outstanding` only after a
        // successful report or by going back through the lease queue.
        std::vector<unsigned> outstanding;
        auto claim_mine = [&]() -> std::optional<unsigned> {
            const std::optional<unsigned> p = claim_traced();
            if (p)
                outstanding.push_back(*p);
            return p;
        };
        auto report_mine = [&](unsigned p, ProgramOutcome out) {
            report_traced(p, std::move(out));
            outstanding.erase(
                std::remove(outstanding.begin(), outstanding.end(), p),
                outstanding.end());
        };
        unsigned deaths = 0;
        bool gave_up = false;
        for (;;) {
            std::optional<ShardExecutor> exec;
            bool clean = true;
            try {
                const std::optional<unsigned> first = claim_mine();
                if (first) {
                    exec.emplace(cfg_, t0, &telem, s);
                    bool first_pending = true;
                    exec->runClaimed(
                        [&]() -> std::optional<unsigned> {
                            if (first_pending) {
                                first_pending = false;
                                return first;
                            }
                            return claim_mine();
                        },
                        streams, report_mine);
                }
            } catch (...) {
                clean = false;
                ++deaths;
                tsink.metrics().counter("sched.shardDeaths").add();
                std::lock_guard<std::mutex> lock(failure_mu);
                if (!failure)
                    failure = std::current_exception();
            }
            if (exec) {
                // times() synchronizes with the backend and can rethrow
                // a failure the loop above already captured (or, for an
                // out-of-process worker, fail on its own — e.g. the
                // worker died at the shard-end times op). The breakdown
                // is diagnostics; a surviving campaign must not abort
                // over it.
                try {
                    const executor::TimeBreakdown &tb = exec->times();
                    auto &m = tsink.metrics();
                    m.timer("time.startup").add(tb.startupSec);
                    m.timer("time.prime").add(tb.primeSec);
                    m.timer("time.simulate").add(tb.simulateSec);
                    m.timer("time.traceExtract").add(tb.traceExtractSec);
                } catch (...) {
                    tsink.metrics()
                        .counter("sched.timesFlushFailures")
                        .add();
                }
            }
            if (clean)
                break;
            // Death: hand back what this incarnation still owed.
            // Programs that have now died kMaxProgramAttempts times are
            // quarantined right here instead of re-leased — this thread
            // still owns them, so the report cannot race another
            // shard's.
            std::vector<unsigned> to_quarantine;
            {
                std::lock_guard<std::mutex> lock(lease_mu);
                for (const unsigned p : outstanding) {
                    if (++release_attempts[p] >= kMaxProgramAttempts)
                        to_quarantine.push_back(p);
                    else
                        release_queue.push_back(p);
                }
            }
            outstanding.clear();
            for (const unsigned p : to_quarantine) {
                try {
                    report_traced(
                        p, core::ProgramOutcome::makeQuarantined(
                               "shard thread failed repeatedly while "
                               "running this program"));
                } catch (...) {
                    // Containment itself failed (the quarantine record
                    // could not be reported): the program would vanish
                    // silently. That is an abort, not a survivable
                    // fault.
                    containment_broken.store(true,
                                             std::memory_order_relaxed);
                    stop.store(true, std::memory_order_relaxed);
                    std::lock_guard<std::mutex> lock(failure_mu);
                    if (!failure)
                        failure = std::current_exception();
                }
            }
            if (containment_broken.load(std::memory_order_relaxed) ||
                deaths > kMaxShardDeaths) {
                gave_up = true;
                break;
            }
            // Reincarnate: the next iteration builds a fresh executor
            // (fresh simulator boot, fresh worker) and serves the lease
            // queue first — including this shard's own re-leases, so
            // even a lone shard survives its own death.
        }
        {
            std::lock_guard<std::mutex> lock(lease_mu);
            if (gave_up)
                ++shards_gave_up;
            --live_claimants;
            // The last claimant walking away from a non-empty lease
            // queue would strand re-leased programs; flag it for the
            // post-pool verdict (harmless when stop was set on
            // purpose).
            if (live_claimants == 0 && !release_queue.empty())
                work_abandoned = true;
        }
    };

    telem.startHeartbeat();
    if (jobs <= 1) {
        shard_task(0);
    } else {
        WorkerPool pool(jobs);
        for (unsigned s = 0; s < jobs; ++s)
            pool.submit([&shard_task, s] { shard_task(s); });
        pool.wait();
    }
    telem.stopHeartbeat(); // emits the final snapshot line
    // Containment verdict: a captured shard failure aborts the campaign
    // only when containment actually lost work — every shard gave up,
    // the quarantine path itself broke, or the pool drained with
    // re-leased programs nobody served (and no deliberate stop). A
    // death whose programs were re-run elsewhere (or quarantined, and
    // so accounted for) is telemetry, not an abort.
    {
        std::lock_guard<std::mutex> lock(lease_mu);
        const bool campaign_lost =
            containment_broken.load(std::memory_order_relaxed) ||
            shards_gave_up == jobs ||
            (work_abandoned && !stop.load(std::memory_order_relaxed));
        if (failure && campaign_lost)
            std::rethrow_exception(failure);
    }
    telem.writeTraceFile();

    // Final checkpoint: everything completed (including this run's tail
    // and any preloaded outcomes) is resumable state.
    if (store)
        write_checkpoint();

    core::CampaignStats stats = sink.finalize();
    stats.jobs = jobs;
    stats.backend = executor::backendKindName(cfg_.backend);
    stats.resumedPrograms = static_cast<unsigned>(completed.size());
    stats.wallSeconds = secondsSince(t0);

    // Campaign-level tallies into the scheduler sink, so the merged
    // registry is a self-contained record of the run.
    {
        auto &m = telem.schedulerSink().metrics();
        m.gauge("campaign.jobs").set(jobs);
        m.gauge("campaign.wallSeconds").set(stats.wallSeconds);
        auto count = [&m](const char *name, std::uint64_t v) {
            m.counter(name).add(v);
        };
        count("campaign.programs", stats.programs);
        count("campaign.skippedPrograms", stats.skippedPrograms);
        count("campaign.resumedPrograms", stats.resumedPrograms);
        count("campaign.testCases", stats.testCases);
        count("campaign.filteredTestCases", stats.filteredTestCases);
        count("campaign.simInputRuns", stats.simInputRuns());
        count("campaign.effectiveClasses", stats.effectiveClasses);
        count("campaign.candidateViolations", stats.candidateViolations);
        count("campaign.validationRuns", stats.validationRuns);
        count("campaign.violatingTestCases", stats.violatingTestCases);
        count("campaign.confirmedViolations", stats.confirmedViolations);
        count("campaign.quarantinedPrograms", stats.quarantinedPrograms);
        if (const unsigned cf =
                checkpoint_failures.load(std::memory_order_relaxed))
            m.counter("corpus.checkpointFailures").add(cf);
    }

    // The merged registry is the single source of truth for the time
    // breakdown: every report() above fed the campaign-phase timers and
    // every shard flushed its harness breakdown into the time.* timers.
    stats.metrics = telem.mergedMetrics();
    auto timed = [&](const char *name) -> double {
        auto it = stats.metrics.find(name);
        return it == stats.metrics.end() ? 0.0 : it->second.value;
    };
    stats.times.startupSec = timed("time.startup");
    stats.times.primeSec = timed("time.prime");
    stats.times.simulateSec = timed("time.simulate");
    stats.times.traceExtractSec = timed("time.traceExtract");
    stats.times.testGenSec = timed("time.testGen");
    stats.times.ctraceSec = timed("time.ctrace");
    stats.times.filterSec = timed("time.filter");
    // Across jobs workers, jobs * wallSeconds of worker time was
    // available; whatever the harness and campaign phases did not measure
    // is scheduling overhead and idle tail.
    const double measured = telemetry::timedSectionTotalSec(stats.metrics);
    stats.times.otherSec =
        std::max(0.0, stats.wallSeconds * jobs - measured);
#ifndef NDEBUG
    // The accounting sections are disjoint slices of worker time only
    // when the harness runs on the worker's own thread (in-process
    // backend); async/subprocess overlap simulation with preparation,
    // so their sections legitimately exceed the worker-time budget.
    // Resumed campaigns replay past runs' seconds against this run's
    // (shorter) wall clock, so exclude them too.
    // A chaos plan legitimately redoes work (re-leased programs,
    // restarted workers), so the budget check only holds fault-free.
    if (cfg_.backend == executor::BackendKind::InProcess &&
        stats.resumedPrograms == 0 &&
        fault::FaultPlan::active() == nullptr) {
        assert(measured <= stats.wallSeconds * jobs * 1.05 + 0.25 &&
               "timed sections exceed available worker time");
    }
#endif
    if (store)
        store->writeMetrics(
            telemetry::metricsJson(stats.metrics, telem.topSpans()));
    return stats;
}

} // namespace amulet::runtime

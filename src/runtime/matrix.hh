/**
 * @file
 * Matrix runner: schedules whole defense × contract × seed sweeps as a
 * batch of campaigns.
 *
 * Each matrix entry is an independent campaign; the runner executes them
 * across a WorkerPool (scenario-level parallelism) while every campaign
 * keeps its own jobs setting (program-level parallelism). Results come
 * back in entry order and each campaign result obeys the scheduler's
 * determinism contract, so sweep output is reproducible for any
 * concurrency.
 */

#ifndef AMULET_RUNTIME_MATRIX_HH
#define AMULET_RUNTIME_MATRIX_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/campaign.hh"

namespace amulet::runtime
{

/** One cell of a campaign matrix. */
struct MatrixEntry
{
    std::string label;
    core::CampaignConfig config;
};

/** One finished cell. */
struct MatrixResult
{
    std::string label;
    core::CampaignConfig config;
    core::CampaignStats stats;
};

/** Batch scheduler for campaign sweeps. */
class MatrixRunner
{
  public:
    /** @p concurrentCampaigns: campaigns in flight at once (0 = all
     *  hardware threads). */
    explicit MatrixRunner(unsigned concurrentCampaigns = 1);

    /** Append one campaign. */
    void add(std::string label, core::CampaignConfig config);

    /**
     * Append the full defense × contract × seed cross product.
     * @p makeBase builds the per-defense base config (harness defaults,
     * priming mode, sandbox size); contract and seed are then overridden
     * per cell. Labels are "defense/contract/seedN".
     */
    void addSweep(
        const std::function<core::CampaignConfig(defense::DefenseKind)>
            &makeBase,
        const std::vector<defense::DefenseKind> &kinds,
        const std::vector<contracts::ContractSpec> &contracts,
        const std::vector<std::uint64_t> &seeds);

    std::size_t size() const { return entries_.size(); }

    /** Run every entry; results are returned in entry order. */
    std::vector<MatrixResult> runAll();

  private:
    unsigned concurrency_;
    std::vector<MatrixEntry> entries_;
};

} // namespace amulet::runtime

#endif // AMULET_RUNTIME_MATRIX_HH

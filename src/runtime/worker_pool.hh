/**
 * @file
 * Fixed-size worker pool over std::thread.
 *
 * The pool owns N long-lived threads draining a FIFO work queue. It is the
 * execution substrate for the campaign runtime: the scheduler submits one
 * shard task per worker, the matrix runner submits one task per campaign.
 * Nothing in here knows about campaigns — it is a plain job queue.
 */

#ifndef AMULET_RUNTIME_WORKER_POOL_HH
#define AMULET_RUNTIME_WORKER_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace amulet::runtime
{

/** Resolve a jobs request: 0 means "use all hardware threads". */
unsigned resolveJobs(unsigned requested);

/** Fixed-size thread pool with a FIFO queue and a drain barrier. */
class WorkerPool
{
  public:
    /** Spawn @p threads workers (at least 1). */
    explicit WorkerPool(unsigned threads);

    /** Drains the queue, then joins all workers. */
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /** Enqueue a job. Safe from any thread, including workers. */
    void submit(std::function<void()> job);

    /** Block until the queue is empty and no job is in flight. */
    void wait();

    unsigned threadCount() const
    {
        return static_cast<unsigned>(threads_.size());
    }

  private:
    void workerLoop();

    std::vector<std::thread> threads_;
    std::deque<std::function<void()>> queue_;
    std::mutex mu_;
    std::condition_variable work_cv_;  ///< signals workers: work or stop
    std::condition_variable idle_cv_;  ///< signals wait(): pool drained
    std::size_t inFlight_ = 0;
    bool stop_ = false;
};

} // namespace amulet::runtime

#endif // AMULET_RUNTIME_WORKER_POOL_HH

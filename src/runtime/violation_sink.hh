/**
 * @file
 * Thread-safe collection point for parallel campaign results.
 *
 * Workers publish one ProgramOutcome per test program; the sink merges
 * them into a single CampaignStats:
 *
 *  - counters are sum-merged,
 *  - firstDetectSeconds is min-merged,
 *  - violations are deduplicated by signature into signatureCounts,
 *  - records are emitted in *program order* with the global cap applied,
 *    so the merged result is identical for any worker count or
 *    completion order (the runtime's determinism contract).
 */

#ifndef AMULET_RUNTIME_VIOLATION_SINK_HH
#define AMULET_RUNTIME_VIOLATION_SINK_HH

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/campaign.hh"
#include "core/violation.hh"
#include "executor/sim_harness.hh"

namespace amulet::runtime
{

/** The per-program stats unit the sink merges. Defined in core (it is
 *  the product of the src/pipeline/ stages); aliased here because the
 *  runtime and corpus layers historically name it through runtime::. */
using ProgramOutcome = core::ProgramOutcome;

/** Thread-safe, order-insensitive campaign-stats merger. */
class ViolationSink
{
  public:
    ViolationSink(unsigned numPrograms, unsigned maxRecords);

    /** Publish the outcome of program @p programIndex. Thread-safe;
     *  each index must be reported at most once. */
    void report(unsigned programIndex, ProgramOutcome outcome);

    /** Streamed per confirmed record as its outcome is reported. */
    using RecordCallback =
        std::function<void(unsigned programIndex,
                           const core::ViolationRecord &record)>;

    /**
     * Stream every subsequently reported record to @p callback (invoked
     * under the sink lock, in within-program detection order). The
     * corpus store subscribes here; outcomes preloaded from a checkpoint
     * are reported *before* the subscription so their records — already
     * journaled by the killed run — are not streamed twice.
     */
    void setRecordCallback(RecordCallback callback);

    /** Copy of all reported outcomes keyed by program index — the
     *  checkpoint payload, so the records vectors are left out: they
     *  are journaled separately, and deep-copying every record under
     *  the sink lock would stall workers for data the checkpoint
     *  serializer discards anyway. Thread-safe. */
    std::map<unsigned, ProgramOutcome> snapshotReported() const;

    /**
     * Deterministic merge of all reported outcomes, in program order.
     * Call after all workers finished. The scheduler owns wallSeconds /
     * jobs and overwrites the whole TimeBreakdown from the telemetry
     * registry (src/telemetry/), which also tracks the harness sections
     * the outcomes do not carry; the campaign-phase sums computed here
     * keep the class coherent for standalone (test) use.
     */
    core::CampaignStats finalize() const;

  private:
    mutable std::mutex mu_;
    std::vector<ProgramOutcome> outcomes_; ///< indexed by program
    std::vector<bool> reported_;
    unsigned maxRecords_;
    RecordCallback onRecord_;
};

} // namespace amulet::runtime

#endif // AMULET_RUNTIME_VIOLATION_SINK_HH

/**
 * @file
 * Thread-safe collection point for parallel campaign results.
 *
 * Workers publish one ProgramOutcome per test program; the sink merges
 * them into a single CampaignStats:
 *
 *  - counters are sum-merged,
 *  - firstDetectSeconds is min-merged,
 *  - TimeBreakdown is accumulated across workers,
 *  - violations are deduplicated by signature into signatureCounts,
 *  - records are emitted in *program order* with the global cap applied,
 *    so the merged result is identical for any worker count or
 *    completion order (the runtime's determinism contract).
 */

#ifndef AMULET_RUNTIME_VIOLATION_SINK_HH
#define AMULET_RUNTIME_VIOLATION_SINK_HH

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/campaign.hh"
#include "core/violation.hh"
#include "executor/sim_harness.hh"

namespace amulet::runtime
{

/** Everything one program run contributes to campaign stats. */
struct ProgramOutcome
{
    /** False when the program was skipped (pathological / cycle cap). */
    bool ran = false;

    std::uint64_t testCases = 0;
    std::uint64_t effectiveClasses = 0;
    std::uint64_t candidateViolations = 0;
    std::uint64_t validationRuns = 0;
    std::uint64_t violatingTestCases = 0;
    std::uint64_t confirmedViolations = 0;
    double firstDetectSeconds = -1; ///< campaign-relative; <0: none
    double testGenSec = 0;
    double ctraceSec = 0;
    std::vector<core::ViolationRecord> records;
    std::map<std::string, std::uint64_t> signatureCounts;
    std::map<executor::TraceFormat, core::FormatTally> formatTallies;
};

/** Thread-safe, order-insensitive campaign-stats merger. */
class ViolationSink
{
  public:
    ViolationSink(unsigned numPrograms, unsigned maxRecords);

    /** Publish the outcome of program @p programIndex. Thread-safe;
     *  each index must be reported at most once. */
    void report(unsigned programIndex, ProgramOutcome outcome);

    /** Streamed per confirmed record as its outcome is reported. */
    using RecordCallback =
        std::function<void(unsigned programIndex,
                           const core::ViolationRecord &record)>;

    /**
     * Stream every subsequently reported record to @p callback (invoked
     * under the sink lock, in within-program detection order). The
     * corpus store subscribes here; outcomes preloaded from a checkpoint
     * are reported *before* the subscription so their records — already
     * journaled by the killed run — are not streamed twice.
     */
    void setRecordCallback(RecordCallback callback);

    /** Copy of all reported outcomes keyed by program index — the
     *  checkpoint payload, so the records vectors are left out: they
     *  are journaled separately, and deep-copying every record under
     *  the sink lock would stall workers for data the checkpoint
     *  serializer discards anyway. Thread-safe. */
    std::map<unsigned, ProgramOutcome> snapshotReported() const;

    /** Accumulate one worker's harness time breakdown. Thread-safe. */
    void addTimes(const executor::TimeBreakdown &times);

    /**
     * Deterministic merge of all reported outcomes, in program order.
     * Call after all workers finished; fills everything except
     * wallSeconds/jobs/otherSec, which the scheduler owns.
     */
    core::CampaignStats finalize() const;

  private:
    mutable std::mutex mu_;
    std::vector<ProgramOutcome> outcomes_; ///< indexed by program
    std::vector<bool> reported_;
    executor::TimeBreakdown times_;
    unsigned maxRecords_;
    RecordCallback onRecord_;
};

} // namespace amulet::runtime

#endif // AMULET_RUNTIME_VIOLATION_SINK_HH

#include "runtime/matrix.hh"

#include <algorithm>
#include <sstream>

#include "runtime/scheduler.hh"
#include "runtime/worker_pool.hh"

namespace amulet::runtime
{

MatrixRunner::MatrixRunner(unsigned concurrentCampaigns)
    : concurrency_(resolveJobs(concurrentCampaigns))
{
}

void
MatrixRunner::add(std::string label, core::CampaignConfig config)
{
    entries_.push_back({std::move(label), std::move(config)});
}

void
MatrixRunner::addSweep(
    const std::function<core::CampaignConfig(defense::DefenseKind)>
        &makeBase,
    const std::vector<defense::DefenseKind> &kinds,
    const std::vector<contracts::ContractSpec> &contracts,
    const std::vector<std::uint64_t> &seeds)
{
    for (defense::DefenseKind kind : kinds) {
        for (const contracts::ContractSpec &contract : contracts) {
            for (std::uint64_t seed : seeds) {
                core::CampaignConfig cfg = makeBase(kind);
                cfg.contract = contract;
                cfg.seed = seed;
                std::ostringstream label;
                label << defense::defenseKindName(kind) << "/"
                      << contract.name << "/seed" << seed;
                add(label.str(), std::move(cfg));
            }
        }
    }
}

std::vector<MatrixResult>
MatrixRunner::runAll()
{
    std::vector<MatrixResult> results(entries_.size());
    auto run_one = [&](std::size_t i) {
        results[i].label = entries_[i].label;
        results[i].config = entries_[i].config;
        results[i].stats =
            CampaignScheduler(entries_[i].config).run();
    };

    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(concurrency_, entries_.size()));
    if (workers <= 1) {
        for (std::size_t i = 0; i < entries_.size(); ++i)
            run_one(i);
    } else {
        WorkerPool pool(workers);
        for (std::size_t i = 0; i < entries_.size(); ++i)
            pool.submit([&run_one, i] { run_one(i); });
        pool.wait();
    }
    return results;
}

} // namespace amulet::runtime

/**
 * @file
 * Campaign scheduler: shards one campaign's programs across a worker
 * pool.
 *
 * The scheduler pre-splits one RNG stream per test program (in program
 * order, from the campaign seed), then lets each worker claim program
 * indices from a shared counter and run them on its private
 * ShardExecutor. Results flow into a ViolationSink whose merge is
 * order-insensitive, so:
 *
 *   determinism contract — for a fixed (config, seed), confirmed
 *   violations, signature counts, and all analysis counters are
 *   identical for every jobs value (jobs=1 runs the same code path
 *   inline, without spawning threads).
 *
 * Only wall-clock-derived fields (wallSeconds, throughput,
 * firstDetectSeconds and per-record detectSeconds timestamps) vary
 * between runs. One exception: under stopAtFirstViolation with jobs>1,
 * workers stop claiming programs as soon as any detection lands, so
 * *which* programs ran — and therefore the aggregate counters — is
 * timing-dependent; per-program results still obey the contract.
 */

#ifndef AMULET_RUNTIME_SCHEDULER_HH
#define AMULET_RUNTIME_SCHEDULER_HH

#include "core/campaign.hh"

namespace amulet::runtime
{

/** Runs one campaign, possibly across many workers. */
class CampaignScheduler
{
  public:
    explicit CampaignScheduler(core::CampaignConfig config);

    /** Run all programs and merge the results. */
    core::CampaignStats run();

  private:
    core::CampaignConfig cfg_;
};

} // namespace amulet::runtime

#endif // AMULET_RUNTIME_SCHEDULER_HH

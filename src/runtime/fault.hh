/**
 * @file
 * Deterministic fault-injection layer ("chaos plan") for campaign
 * survivability testing.
 *
 * A FaultPlan is a seeded, site-addressed schedule of injected
 * failures: worker crashes, hung workers, garbled wire replies, torn
 * journal appends, failed checkpoint writes, and shard-thread
 * exceptions. Each injection site asks `plan->fires(site, key)` with a
 * *stable* key (program index, per-program operation number, or an
 * occurrence counter), and the answer is a pure function of
 * (seed, site, key) — so a given plan injects the same faults at the
 * same logical points on every run, at every `--jobs` value, which is
 * what makes "chaos run ≡ clean run for all surviving programs" a
 * testable equality rather than a flaky hope.
 *
 * The plan is runtime-only: `CampaignConfig::faultPlan` is never
 * serialized into the corpus fingerprint (corpus/serde.cc), it is off
 * by default, and every injected fault is routed through the same
 * recovery code a real fault would take (retry → backoff → quarantine,
 * re-lease, torn-tail repair). Nothing in this header may alter
 * results for programs the plan does not poison.
 *
 * Spec grammar (';' or ',' separated `key=value` pairs):
 *
 *     seed=42                 hash seed (default 0)
 *     poison=4:9              programs whose wire ops always fail
 *                             (':'-separated indices) → quarantined
 *     wire.crash=25           per-mille rates (0..1000) for the rate
 *     wire.garble=25          sites listed below
 *     wire.drop=25
 *     shard.throw=25
 *     journal.shortwrite=25
 *     checkpoint.fail=500
 *     journal.once=3          fail exactly the 3rd journal append
 *
 * Sites and their keys:
 *
 *   wire.crash        kill the worker before sending an op (simulated
 *                     worker crash); key = (program, op#)
 *   wire.garble       truncate the worker's reply mid-line (parse
 *                     failure path); key = (program, op#)
 *   wire.drop         discard a good reply (simulated hang → the
 *                     timeout/kill/restart path); key = (program, op#)
 *   shard.throw       throw from the scheduler's report path (shard
 *                     death → containment/re-lease); key = (program,
 *                     re-lease attempt)
 *   journal.shortwrite  tear a CorpusStore append (half the line, then
 *                     ENOSPC); key = record program index
 *   journal.once=K    tear exactly the K-th append (1-based occurrence)
 *   checkpoint.fail   fail a checkpoint write before its atomic
 *                     rename; key = occurrence counter
 *
 * Wire faults only fire on a program's *first* attempt at an op, so
 * recovery is always allowed to succeed — except for poisoned
 * programs, which fail every attempt and exercise the quarantine path.
 *
 * The layer lives in src/runtime/ but is include-free (standard
 * library only) so lower layers (corpus, executor) may consult it
 * without an include cycle.
 */

#ifndef AMULET_RUNTIME_FAULT_HH
#define AMULET_RUNTIME_FAULT_HH

#include <cstdint>
#include <map>
#include <set>
#include <string>

namespace amulet::runtime::fault
{

class FaultPlan
{
  public:
    /** Parse @p spec (grammar above). Throws std::runtime_error on an
     *  unknown site, malformed pair, or out-of-range rate. */
    static FaultPlan parse(const std::string &spec);

    /** Arm @p spec process-wide (replacing any armed plan). The
     *  scheduler installs at campaign start and uninstalls at campaign
     *  end; installation mid-campaign is not supported. */
    static void install(const std::string &spec);
    static void uninstall();

    /** The armed plan, or nullptr when chaos is off (the default). */
    static const FaultPlan *active();

    /** Deterministic per-mille decision for a rate site. False for
     *  unknown sites, zero rates, and the unscoped sentinel key. */
    bool fires(const char *site, std::uint64_t key) const;

    /** 1-based occurrence counter for @p site (used to key sites with
     *  no natural stable id, e.g. checkpoint writes). Deterministic
     *  only where the call sequence is (checkpoint cadence is). */
    std::uint64_t occurrence(const char *site) const;

    /** Combined journal-append decision: `journal.shortwrite` rate
     *  keyed by @p programIndex, plus `journal.once=K` firing on the
     *  K-th append. */
    bool journalAppendFault(std::uint64_t programIndex) const;

    /** True when @p program is on the poison list: every wire op for
     *  it fails on every attempt, forcing quarantine. */
    bool poisoned(unsigned program) const;

    std::uint64_t seed() const { return seed_; }
    unsigned rate(const std::string &site) const;

    /** Canonical one-line rendering (for banners/logs). */
    std::string describe() const;

  private:
    std::uint64_t seed_ = 0;
    std::map<std::string, unsigned> rates_; ///< per-mille by site
    std::set<unsigned> poison_;
    std::uint64_t journalOnce_ = 0; ///< 0 = off

    /// Guarded by a file-static mutex in fault.cc (plans must stay
    /// movable; one plan is armed at a time anyway).
    mutable std::map<std::string, std::uint64_t> occurrences_;
};

/**
 * RAII thread-local scope tying backend wire operations to the
 * (program, op#) key space. ShardExecutor::runProgram opens one per
 * program; SubprocessBackend::roundTrip calls nextOpKey() per op. The
 * per-program op sequence is deterministic (results are a pure
 * function of (config, program, stream)), so the keys — and therefore
 * the injected wire faults — are identical across jobs counts and
 * across re-runs of a re-leased program. Ops outside any scope (boot,
 * shard-end times collection) return kUnscopedKey and are never
 * faulted.
 */
class ProgramScope
{
  public:
    static constexpr std::uint64_t kUnscopedKey = ~std::uint64_t(0);
    static constexpr unsigned kNoProgram = ~0u;

    explicit ProgramScope(unsigned program);
    ~ProgramScope();

    ProgramScope(const ProgramScope &) = delete;
    ProgramScope &operator=(const ProgramScope &) = delete;

    /** (program << 20) | op-counter for the enclosing scope, advancing
     *  the counter; kUnscopedKey when no scope is open. */
    static std::uint64_t nextOpKey();

    /** Program of the enclosing scope, or kNoProgram. */
    static unsigned currentProgram();

  private:
    bool prevActive_;
    unsigned prevProgram_;
    std::uint32_t prevOps_;
};

} // namespace amulet::runtime::fault

#endif // AMULET_RUNTIME_FAULT_HH

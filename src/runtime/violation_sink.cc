#include "runtime/violation_sink.hh"

#include <stdexcept>

namespace amulet::runtime
{

ViolationSink::ViolationSink(unsigned numPrograms, unsigned maxRecords)
    : outcomes_(numPrograms), reported_(numPrograms, false),
      maxRecords_(maxRecords)
{
}

void
ViolationSink::report(unsigned programIndex, ProgramOutcome outcome)
{
    std::lock_guard<std::mutex> lock(mu_);
    // A hard error even in release builds: an out-of-range or duplicate
    // report means the scheduler handed out a bad program index, and
    // silently merging it would corrupt campaign results.
    if (programIndex >= outcomes_.size() || reported_[programIndex]) {
        throw std::logic_error(
            "ViolationSink: out-of-range or duplicate program report");
    }
    reported_[programIndex] = true;
    outcomes_[programIndex] = std::move(outcome);
}

void
ViolationSink::addTimes(const executor::TimeBreakdown &times)
{
    std::lock_guard<std::mutex> lock(mu_);
    times_.accumulate(times);
}

core::CampaignStats
ViolationSink::finalize() const
{
    std::lock_guard<std::mutex> lock(mu_);
    core::CampaignStats stats;
    stats.times = times_;
    for (const ProgramOutcome &out : outcomes_) {
        stats.times.testGenSec += out.testGenSec;
        stats.times.ctraceSec += out.ctraceSec;
        if (!out.ran)
            continue;
        ++stats.programs;
        stats.testCases += out.testCases;
        stats.effectiveClasses += out.effectiveClasses;
        stats.candidateViolations += out.candidateViolations;
        stats.validationRuns += out.validationRuns;
        stats.violatingTestCases += out.violatingTestCases;
        stats.confirmedViolations += out.confirmedViolations;
        if (out.firstDetectSeconds >= 0 &&
            (stats.firstDetectSeconds < 0 ||
             out.firstDetectSeconds < stats.firstDetectSeconds)) {
            stats.firstDetectSeconds = out.firstDetectSeconds;
        }
        for (const auto &[sig, count] : out.signatureCounts)
            stats.signatureCounts[sig] += count;
        for (const auto &[fmt, tally] : out.formatTallies) {
            core::FormatTally &merged = stats.formatTallies[fmt];
            merged.violatingTestCases += tally.violatingTestCases;
            merged.coveredByBaseline += tally.coveredByBaseline;
        }
        for (const core::ViolationRecord &rec : out.records) {
            if (stats.records.size() >= maxRecords_)
                break;
            stats.records.push_back(rec);
        }
    }
    return stats;
}

} // namespace amulet::runtime

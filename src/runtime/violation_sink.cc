#include "runtime/violation_sink.hh"

#include <stdexcept>

namespace amulet::runtime
{

ViolationSink::ViolationSink(unsigned numPrograms, unsigned maxRecords)
    : outcomes_(numPrograms), reported_(numPrograms, false),
      maxRecords_(maxRecords)
{
}

void
ViolationSink::report(unsigned programIndex, ProgramOutcome outcome)
{
    std::lock_guard<std::mutex> lock(mu_);
    // A hard error even in release builds: an out-of-range or duplicate
    // report means the scheduler handed out a bad program index, and
    // silently merging it would corrupt campaign results.
    if (programIndex >= outcomes_.size() || reported_[programIndex]) {
        throw std::logic_error(
            "ViolationSink: out-of-range or duplicate program report");
    }
    // Stream records *before* marking the program reported: if the
    // journal append throws (disk full), the program must not look
    // completed — a checkpoint taken concurrently would otherwise claim
    // records the journal never received. A partial append is harmless:
    // the program stays unreported, re-runs on resume, and the store's
    // dedup index drops the re-derived duplicates.
    if (onRecord_) {
        for (const core::ViolationRecord &rec : outcome.records)
            onRecord_(programIndex, rec);
    }
    reported_[programIndex] = true;
    outcomes_[programIndex] = std::move(outcome);
}

void
ViolationSink::setRecordCallback(RecordCallback callback)
{
    std::lock_guard<std::mutex> lock(mu_);
    onRecord_ = std::move(callback);
}

std::map<unsigned, ProgramOutcome>
ViolationSink::snapshotReported() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::map<unsigned, ProgramOutcome> snapshot;
    for (unsigned p = 0; p < outcomes_.size(); ++p) {
        if (!reported_[p])
            continue;
        const ProgramOutcome &out = outcomes_[p];
        ProgramOutcome copy;
        copy.ran = out.ran;
        copy.skippedProgram = out.skippedProgram;
        copy.testCases = out.testCases;
        copy.filteredTestCases = out.filteredTestCases;
        copy.effectiveClasses = out.effectiveClasses;
        copy.candidateViolations = out.candidateViolations;
        copy.validationRuns = out.validationRuns;
        copy.violatingTestCases = out.violatingTestCases;
        copy.confirmedViolations = out.confirmedViolations;
        copy.firstDetectSeconds = out.firstDetectSeconds;
        copy.testGenSec = out.testGenSec;
        copy.ctraceSec = out.ctraceSec;
        copy.filterSec = out.filterSec;
        copy.signatureCounts = out.signatureCounts;
        copy.formatTallies = out.formatTallies;
        copy.quarantined = out.quarantined;
        copy.quarantineReason = out.quarantineReason;
        // records intentionally omitted (see header).
        snapshot[p] = std::move(copy);
    }
    return snapshot;
}

core::CampaignStats
ViolationSink::finalize() const
{
    std::lock_guard<std::mutex> lock(mu_);
    core::CampaignStats stats;
    for (const ProgramOutcome &out : outcomes_) {
        stats.times.testGenSec += out.testGenSec;
        stats.times.ctraceSec += out.ctraceSec;
        stats.times.filterSec += out.filterSec;
        // Skips are counted whether or not the program's counters merge
        // (a cycle-cap abort has ran == false but is still a skip).
        if (out.skippedProgram)
            ++stats.skippedPrograms;
        // Quarantined programs contribute exactly one fact — the
        // quarantine — and no counters (ran stays false).
        if (out.quarantined)
            ++stats.quarantinedPrograms;
        if (!out.ran)
            continue;
        ++stats.programs;
        stats.testCases += out.testCases;
        stats.filteredTestCases += out.filteredTestCases;
        stats.effectiveClasses += out.effectiveClasses;
        stats.candidateViolations += out.candidateViolations;
        stats.validationRuns += out.validationRuns;
        stats.violatingTestCases += out.violatingTestCases;
        stats.confirmedViolations += out.confirmedViolations;
        if (out.firstDetectSeconds >= 0 &&
            (stats.firstDetectSeconds < 0 ||
             out.firstDetectSeconds < stats.firstDetectSeconds)) {
            stats.firstDetectSeconds = out.firstDetectSeconds;
        }
        for (const auto &[sig, count] : out.signatureCounts)
            stats.signatureCounts[sig] += count;
        for (const auto &[fmt, tally] : out.formatTallies) {
            core::FormatTally &merged = stats.formatTallies[fmt];
            merged.violatingTestCases += tally.violatingTestCases;
            merged.coveredByBaseline += tally.coveredByBaseline;
        }
        for (const core::ViolationRecord &rec : out.records) {
            if (stats.records.size() >= maxRecords_)
                break;
            stats.records.push_back(rec);
        }
    }
    return stats;
}

} // namespace amulet::runtime

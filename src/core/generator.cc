#include "core/generator.hh"

#include <array>

namespace amulet::core
{

using isa::Cond;
using isa::Inst;
using isa::Op;
using isa::OpndKind;
using isa::Reg;

namespace
{

/// Registers the generator may use: everything except the sandbox base
/// (R14), the stack pointer, and R15 (reserved for harness programs).
constexpr std::array<Reg, 12> kGprPool = {
    Reg::Rax, Reg::Rbx, Reg::Rcx, Reg::Rdx, Reg::Rsi, Reg::Rdi,
    Reg::R8,  Reg::R9,  Reg::R10, Reg::R11, Reg::R12, Reg::R13,
};

} // namespace

Reg
ProgramGenerator::randomGpr()
{
    return kGprPool[rng_.pickIndex(kGprPool.size())];
}

unsigned
ProgramGenerator::randomWidth()
{
    static constexpr std::array<unsigned, 4> widths = {1, 2, 4, 8};
    return widths[rng_.pickWeighted(cfg_.widthWeights)];
}

Cond
ProgramGenerator::randomCond()
{
    return static_cast<Cond>(rng_.pickIndex(isa::kNumConds));
}

Inst
ProgramGenerator::randomAluInst()
{
    static constexpr std::array<Op, 13> ops = {
        Op::Mov, Op::Add, Op::Sub, Op::And, Op::Or,  Op::Xor, Op::Imul,
        Op::Shl, Op::Shr, Op::Sar, Op::Cmp, Op::Test, Op::Neg,
    };
    Inst inst;
    inst.op = ops[rng_.pickIndex(ops.size())];
    inst.width = static_cast<std::uint8_t>(randomWidth());
    inst.dstKind = OpndKind::Reg;
    inst.dst = randomGpr();
    if (inst.op == Op::Neg) {
        inst.srcKind = OpndKind::None;
        return inst;
    }
    if (inst.op == Op::Shl || inst.op == Op::Shr || inst.op == Op::Sar) {
        // Shift counts are small immediates (avoids zero-count x86
        // flag-preservation subtleties by construction: 1..7).
        inst.srcKind = OpndKind::Imm;
        inst.imm = static_cast<std::int64_t>(rng_.nextRange(1, 7));
        return inst;
    }
    if (rng_.chance(40, 100)) {
        inst.srcKind = OpndKind::Imm;
        inst.imm = static_cast<std::int64_t>(rng_.nextBelow(1 << 12));
    } else {
        inst.srcKind = OpndKind::Reg;
        inst.src = randomGpr();
    }
    return inst;
}

void
ProgramGenerator::emitMaskedMemAccess(std::vector<isa::Inst> &body)
{
    const Reg index = randomGpr();
    const unsigned width = randomWidth();

    // Mask the index register into the sandbox (the paper's idiom). The
    // mask is aligned down so that an in-sandbox displacement can be added
    // without escaping the (guarded) sandbox region.
    Inst mask;
    mask.op = Op::And;
    mask.width = 8;
    mask.dstKind = OpndKind::Reg;
    mask.dst = index;
    mask.srcKind = OpndKind::Imm;
    mask.imm = static_cast<std::int64_t>(cfg_.map.sandboxMask());
    body.push_back(mask);

    isa::MemRef mem;
    mem.base = isa::kSandboxBaseReg;
    mem.hasIndex = true;
    mem.index = index;
    mem.disp = 0;
    if (rng_.chance(cfg_.unalignedPct, 100)) {
        // Unaligned displacement: the access may cross a cache line
        // (split request), which is what CleanupSpec UV4 needs.
        mem.disp = static_cast<std::int32_t>(rng_.nextRange(57, 63));
    }

    const bool is_store = rng_.chance(cfg_.storePct, 100);
    const bool is_rmw = rng_.chance(cfg_.rmwPct, 100);

    Inst access;
    access.width = static_cast<std::uint8_t>(width);
    access.mem = mem;
    if (is_store && is_rmw) {
        static constexpr std::array<Op, 4> rmw_ops = {Op::Add, Op::And,
                                                      Op::Or, Op::Xor};
        access.op = rmw_ops[rng_.pickIndex(rmw_ops.size())];
        access.dstKind = OpndKind::Mem;
        access.srcKind = OpndKind::Reg;
        access.src = randomGpr();
        access.lockPrefix = rng_.chance(1, 8);
    } else if (is_store) {
        access.op = Op::Mov;
        access.dstKind = OpndKind::Mem;
        access.srcKind = OpndKind::Reg;
        access.src = randomGpr();
    } else if (rng_.chance(cfg_.cmovLoadPct, 100)) {
        access.op = Op::Cmov;
        access.cond = randomCond();
        access.dstKind = OpndKind::Reg;
        access.dst = randomGpr();
        access.srcKind = OpndKind::Mem;
    } else {
        access.op = Op::Mov;
        access.dstKind = OpndKind::Reg;
        access.dst = randomGpr();
        access.srcKind = OpndKind::Mem;
    }
    body.push_back(access);
}

Inst
ProgramGenerator::randomBodyInst()
{
    if (rng_.chance(cfg_.setccPct, 100)) {
        Inst set;
        set.op = Op::Set;
        set.cond = randomCond();
        set.width = 1;
        set.dstKind = OpndKind::Reg;
        set.dst = randomGpr();
        return set;
    }
    if (rng_.chance(cfg_.fencePct, 100)) {
        Inst fence;
        fence.op = Op::Fence;
        return fence;
    }
    return randomAluInst();
}

isa::Program
ProgramGenerator::generate()
{
    const unsigned num_blocks = static_cast<unsigned>(
        rng_.nextRange(cfg_.minBlocks, cfg_.maxBlocks));

    isa::Program prog;
    for (unsigned b = 0; b < num_blocks; ++b)
        prog.blocks.push_back({"bb_main." + std::to_string(b), {}});

    for (unsigned b = 0; b < num_blocks; ++b) {
        auto &body = prog.blocks[b].body;
        const unsigned n = static_cast<unsigned>(rng_.nextRange(
            cfg_.minInstsPerBlock, cfg_.maxInstsPerBlock));
        while (body.size() < n) {
            if (rng_.chance(cfg_.memAccessPct, 100))
                emitMaskedMemAccess(body); // emits mask + access
            else
                body.push_back(randomBodyInst());
        }

        // Terminator: optional conditional branch to a random later
        // block, then an explicit jump to the fall-through successor
        // (exactly the shape of the paper's listings).
        const bool has_later = b + 1 < num_blocks;
        if (has_later && rng_.chance(cfg_.condBranchPct, 100)) {
            if (rng_.chance(cfg_.branchOnLoadPct, 100)) {
                // Gate the branch on a loaded value so it resolves late.
                Reg loaded = Reg::Rax;
                bool found = false;
                for (auto it = body.rbegin(); it != body.rend(); ++it) {
                    if (it->isLoad() && it->dstKind == OpndKind::Reg) {
                        loaded = it->dst;
                        found = true;
                        break;
                    }
                }
                if (found) {
                    Inst test;
                    test.op = Op::Test;
                    test.width = 8;
                    test.dstKind = OpndKind::Reg;
                    test.dst = loaded;
                    test.srcKind = OpndKind::Reg;
                    test.src = loaded;
                    body.push_back(test);
                }
            }
            Inst jcc;
            const unsigned target = static_cast<unsigned>(
                rng_.nextRange(b + 1, num_blocks - 1));
            if (rng_.chance(cfg_.loopnePct, 100)) {
                jcc.op = Op::Loopne;
            } else {
                jcc.op = Op::Jcc;
                jcc.cond = randomCond();
            }
            jcc.target = static_cast<int>(target);
            body.push_back(jcc);
        }
        Inst jmp;
        jmp.op = Op::Jmp;
        jmp.target = has_later ? static_cast<int>(b + 1) : isa::kTargetExit;
        body.push_back(jmp);
    }
    return prog;
}

} // namespace amulet::core

#include "core/signature.hh"

#include <algorithm>
#include <unordered_set>

#include "mem/memory_image.hh"

namespace amulet::core
{

namespace
{

using executor::UTrace;

struct RunEvidence
{
    std::vector<Event> events;
    UTrace trace;
    std::uint64_t squashBranch = 0;
    std::uint64_t squashMemOrder = 0;
    std::uint64_t cleanupCount = 0;
};

RunEvidence
runWithEvents(executor::SimHarness &harness, const arch::Input &input,
              const executor::UarchContext &ctx)
{
    harness.restoreContext(ctx);
    harness.eventLog().clear();
    harness.setEventLogging(true);
    auto out = harness.runInput(input);
    harness.setEventLogging(false);

    RunEvidence ev;
    ev.events = harness.eventLog().events();
    ev.trace = out.trace;
    for (const Event &e : ev.events) {
        if (e.kind == EventKind::SquashBranch)
            ++ev.squashBranch;
        if (e.kind == EventKind::SquashMemOrder)
            ++ev.squashMemOrder;
        if (e.kind == EventKind::CleanupUndo)
            ++ev.cleanupCount;
    }
    return ev;
}

} // namespace

std::string
classifyViolation(executor::SimHarness &harness,
                  const isa::FlatProgram &prog,
                  const arch::Input &input_a, const arch::Input &input_b,
                  const executor::UarchContext &ctx_a,
                  const executor::UarchContext &ctx_b)
{
    harness.loadProgram(&prog);
    const RunEvidence a = runWithEvents(harness, input_a, ctx_a);
    const RunEvidence b = runWithEvents(harness, input_b, ctx_b);

    // Addresses (cache lines / VPNs) present in exactly one trace.
    std::unordered_set<std::uint64_t> diff;
    for (Addr w : executor::traceDiffAddrs(a.trace, b.trace))
        diff.insert(w);

    const unsigned line_bytes = 64;
    auto touches_diff = [&](const Event &e) {
        if (diff.empty())
            return true; // non-snapshot formats: match by presence
        const Addr line = e.addr & ~static_cast<Addr>(line_bytes - 1);
        const Addr vpn = e.addr >> mem::kPageShift;
        return diff.count(e.addr) || diff.count(line) || diff.count(vpn);
    };
    auto match = [&](EventKind kind, const char *note_substr = nullptr) {
        for (const RunEvidence *ev : {&a, &b}) {
            for (const Event &e : ev->events) {
                if (e.kind != kind)
                    continue;
                if (note_substr &&
                    e.note.find(note_substr) == std::string::npos) {
                    continue;
                }
                if (touches_diff(e))
                    return true;
            }
        }
        return false;
    };
    auto present = [&](EventKind kind, const char *note_substr = nullptr) {
        for (const RunEvidence *ev : {&a, &b}) {
            for (const Event &e : ev->events) {
                if (e.kind != kind)
                    continue;
                if (note_substr &&
                    e.note.find(note_substr) == std::string::npos) {
                    continue;
                }
                return true;
            }
        }
        return false;
    };

    // Defense-specific patterns first (most specific root cause).
    if (match(EventKind::SpecEviction))
        return sig::kUv1SpecEviction;
    if (match(EventKind::TaintedStoreTlb))
        return sig::kKv3TaintedStoreTlb;
    if (match(EventKind::CleanupOverclean))
        return sig::kUv5Overclean;
    if (match(EventKind::CleanupSkipped, "UV4"))
        return sig::kUv4SplitNotCleaned;
    if (match(EventKind::CleanupSkipped, "UV3"))
        return sig::kUv3StoreNotCleaned;
    if (match(EventKind::LfbUnsafeBypass))
        return sig::kUv6FirstLoadBypass;
    // A rollback that erased a line present in only one trace removed an
    // architectural footprint: overcleaning (fundamental UV5 — persists,
    // reduced but not eliminated, under the noClean mitigation).
    if (!diff.empty() && match(EventKind::CleanupUndo))
        return sig::kUv5Overclean;
    if (present(EventKind::ExposeStall))
        return sig::kUv2MshrInterference;

    // Differences confined to the instruction-cache region indicate the
    // unprotected-L1I class (KV1, and KV2 when cleanup timing differs).
    if (!diff.empty()) {
        const bool all_code = std::all_of(
            diff.begin(), diff.end(), [&prog](std::uint64_t w) {
                return w >= prog.codeBase() - 0x1000 &&
                       w < prog.codeEnd() + 0x100000;
            });
        if (all_code)
            return sig::kKv12InstFetch;
    }

    if (a.squashMemOrder || b.squashMemOrder)
        return sig::kSpectreV4;
    // A load that speculatively bypassed an unresolved-address store and
    // touched a differing line leaked a stale value, even if the branch
    // squash arrived before any memory-order violation could fire.
    if (match(EventKind::LoadBypassedStore))
        return sig::kSpectreV4;
    if (a.squashBranch || b.squashBranch)
        return sig::kSpectreV1;
    if (a.cleanupCount != b.cleanupCount)
        return sig::kTiming;
    return sig::kTiming;
}

} // namespace amulet::core

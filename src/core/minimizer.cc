#include "core/minimizer.hh"

namespace amulet::core
{

namespace
{

/** Does the pair still (a) agree on contract traces and (b) disagree on
 *  μarch traces for this candidate program? */
bool
stillViolates(executor::SimHarness &harness,
              const contracts::LeakageModel &model,
              const mem::AddressMap &map, const isa::Program &candidate,
              const ViolationRecord &violation, unsigned &checks)
{
    ++checks;
    if (candidate.validate())
        return false;
    const isa::FlatProgram fp(candidate, map.codeBase);
    if (!(model.collect(fp, violation.inputA, map) ==
          model.collect(fp, violation.inputB, map))) {
        return false; // no longer contract-equivalent
    }
    harness.loadProgram(&fp);
    harness.restoreContext(violation.ctxA);
    const auto ta = harness.runInput(violation.inputA).trace;
    harness.restoreContext(violation.ctxB);
    const auto tb = harness.runInput(violation.inputB).trace;
    return !(ta == tb);
}

} // namespace

MinimizeResult
minimizeViolation(executor::SimHarness &harness,
                  const contracts::LeakageModel &model,
                  const mem::AddressMap &map, const isa::Program &program,
                  const ViolationRecord &violation)
{
    MinimizeResult result;
    result.program = program;

    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t b = 0; b < result.program.blocks.size(); ++b) {
            // Accepting a candidate replaces result.program, so re-read
            // the block on every iteration (no cached references).
            for (std::size_t i = 0;
                 i < result.program.blocks[b].body.size(); ++i) {
                if (result.program.blocks[b].body[i].isBranch())
                    continue; // keep the control-flow skeleton
                isa::Program candidate = result.program;
                auto &cbody = candidate.blocks[b].body;
                cbody.erase(cbody.begin() + static_cast<long>(i));
                if (stillViolates(harness, model, map, candidate,
                                  violation, result.checks)) {
                    result.program = std::move(candidate);
                    ++result.removedInsts;
                    changed = true;
                    // Re-test the same index (next instruction shifted
                    // into this slot).
                    --i;
                }
            }
        }
    }
    return result;
}

} // namespace amulet::core

#include "core/campaign.hh"

#include <sstream>

#include "runtime/scheduler.hh"

namespace amulet::core
{

std::string
ViolationRecord::summary() const
{
    // Leads with the program index and signature — corpus listings
    // (campaign_cli export) are built from these one-liners, so each must
    // identify its record without loading the full journal entry.
    std::ostringstream os;
    os << "p" << programIndex << " " << signature << ": " << defenseName
       << " vs " << contractName << " (inputs " << inputA.id << "/"
       << inputB.id << ", ctrace 0x" << std::hex << ctraceHash << std::dec
       << ", t=" << detectSeconds << "s)";
    return os.str();
}

std::string
CampaignStats::report() const
{
    std::ostringstream os;
    os << "programs:            " << programs << "\n"
       << "skipped programs:    " << skippedPrograms << "\n"
       << "test cases:          " << testCases << "\n"
       << "filtered testcases:  " << filteredTestCases
       << " (ineffective)\n"
       << "sim input runs:      " << simInputRuns() << "\n"
       << "effective classes:   " << effectiveClasses << "\n"
       << "candidates:          " << candidateViolations << "\n"
       << "validation runs:     " << validationRuns << "\n"
       << "violating testcases: " << violatingTestCases << "\n"
       << "confirmed:           " << confirmedViolations << "\n"
       << "unique violations:   " << uniqueViolations() << "\n"
       << "wall seconds:        " << wallSeconds << "\n"
       << "jobs (shards):       " << jobs << "\n"
       << "backend:             " << backend << "\n"
       << "throughput:          " << throughput() << " tests/s\n"
       << "per-shard rate:      " << perShardThroughput()
       << " tests/s\n";
    if (resumedPrograms > 0)
        os << "resumed (checkpoint):" << " " << resumedPrograms
           << " programs\n";
    if (quarantinedPrograms > 0)
        os << "quarantined:         " << quarantinedPrograms
           << " programs (exhausted recovery; excluded from export)\n";
    if (firstDetectSeconds >= 0)
        os << "first detection:     " << firstDetectSeconds << " s\n";
    for (const auto &[name, count] : signatureCounts)
        os << "  signature " << name << ": " << count << "\n";
    return os.str();
}

Campaign::Campaign(CampaignConfig config) : cfg_(std::move(config)) {}

CampaignStats
Campaign::run()
{
    // The whole fuzzing loop lives in the runtime subsystem: the
    // scheduler shards programs across workers (jobs=1: same pipeline,
    // inline) and merges results deterministically. See src/runtime/.
    return runtime::CampaignScheduler(cfg_).run();
}

} // namespace amulet::core

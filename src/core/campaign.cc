#include "core/campaign.hh"

#include <chrono>
#include <sstream>

#include "contracts/leakage_model.hh"
#include "core/analyzer.hh"
#include "core/signature.hh"
#include "isa/disasm.hh"

namespace amulet::core
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

} // namespace

std::string
ViolationRecord::summary() const
{
    std::ostringstream os;
    os << defenseName << " vs " << contractName << ": " << signature
       << " (program " << programIndex << ", inputs " << inputA.id << "/"
       << inputB.id << ", t=" << detectSeconds << "s)";
    return os.str();
}

std::string
CampaignStats::report() const
{
    std::ostringstream os;
    os << "programs:            " << programs << "\n"
       << "test cases:          " << testCases << "\n"
       << "effective classes:   " << effectiveClasses << "\n"
       << "candidates:          " << candidateViolations << "\n"
       << "validation runs:     " << validationRuns << "\n"
       << "violating testcases: " << violatingTestCases << "\n"
       << "confirmed:           " << confirmedViolations << "\n"
       << "unique violations:   " << uniqueViolations() << "\n"
       << "wall seconds:        " << wallSeconds << "\n"
       << "throughput:          " << throughput() << " tests/s\n";
    if (firstDetectSeconds >= 0)
        os << "first detection:     " << firstDetectSeconds << " s\n";
    for (const auto &[name, count] : signatureCounts)
        os << "  signature " << name << ": " << count << "\n";
    return os.str();
}

Campaign::Campaign(CampaignConfig config) : cfg_(std::move(config)) {}

CampaignStats
Campaign::run()
{
    const auto t0 = Clock::now();
    CampaignStats stats;

    Rng master(cfg_.seed);
    Rng gen_rng = master.split();
    Rng input_rng = master.split();
    Rng mutate_rng = master.split();

    executor::SimHarness harness(cfg_.harness);
    contracts::LeakageModel model(cfg_.contract);
    InputGenerator input_gen(cfg_.inputs, input_rng);

    const auto all_formats = executor::allTraceFormats();

    for (unsigned p = 0; p < cfg_.numPrograms; ++p) {
        // --- Test generation -----------------------------------------
        auto t_gen = Clock::now();
        ProgramGenerator generator(cfg_.gen, gen_rng.split());
        const isa::Program prog = generator.generate();
        const isa::FlatProgram fp(prog, cfg_.harness.map.codeBase);
        stats.times.testGenSec += secondsSince(t_gen);

        // --- Inputs + contract traces --------------------------------
        auto t_ct = Clock::now();
        std::vector<arch::Input> inputs;
        std::vector<contracts::CTrace> ctraces;
        std::uint64_t next_id = p * 10000;
        for (unsigned b = 0; b < cfg_.baseInputsPerProgram; ++b) {
            arch::Input base = input_gen.generate(next_id++);
            const contracts::CTrace base_ct =
                model.collect(fp, base, cfg_.harness.map);
            const auto read_offsets =
                model.archReadOffsets(fp, base, cfg_.harness.map);

            // Contract-dead registers: registers whose value does not
            // influence the contract trace. Siblings may mutate them
            // (that is how register-secret leaks such as SpecLFB UV6
            // become reachable) — unless the contract exposes initial
            // register values (ARCH-SEQ), in which case inputs of one
            // class keep identical registers, as in the paper.
            std::vector<unsigned> dead_regs;
            if (!cfg_.contract.exposeInitialRegs &&
                cfg_.regMutationPct > 0) {
                for (unsigned r = 0; r < isa::kNumRegs; ++r) {
                    if (r == isa::regIndex(isa::kSandboxBaseReg) ||
                        r == isa::regIndex(isa::Reg::Rsp)) {
                        continue;
                    }
                    arch::Input probe = base;
                    probe.regs[r] ^= 0x5a5a5a5a5a5aULL;
                    if (model.collect(fp, probe, cfg_.harness.map) ==
                        base_ct) {
                        dead_regs.push_back(r);
                    }
                }
            }

            inputs.push_back(base);
            ctraces.push_back(base_ct);
            for (unsigned s = 0; s < cfg_.siblingsPerBase; ++s) {
                arch::Input sib =
                    input_gen.sibling(base, read_offsets, next_id++);
                if (!dead_regs.empty() &&
                    mutate_rng.chance(cfg_.regMutationPct, 100)) {
                    arch::Input mutated = sib;
                    for (unsigned r : dead_regs) {
                        if (mutate_rng.chance(1, 2))
                            mutated.regs[r] = mutate_rng.next();
                    }
                    // Joint mutation can still interact (e.g. two dead
                    // registers combining into a live value); keep the
                    // mutation only if the model confirms equivalence.
                    if (model.collect(fp, mutated, cfg_.harness.map) ==
                        base_ct) {
                        sib = std::move(mutated);
                    }
                }
                const contracts::CTrace sib_ct =
                    model.collect(fp, sib, cfg_.harness.map);
                inputs.push_back(std::move(sib));
                ctraces.push_back(sib_ct);
            }
        }
        stats.times.ctraceSec += secondsSince(t_ct);

        // --- Execute on the simulator --------------------------------
        harness.loadProgram(&fp);
        std::vector<executor::UTrace> traces;
        std::vector<executor::UarchContext> contexts;
        std::vector<std::vector<executor::UTrace>> extra_traces;
        bool run_error = false;
        for (const arch::Input &input : inputs) {
            contexts.push_back(harness.saveContext());
            auto out = harness.runInput(input);
            if (out.run.hitCycleCap) {
                run_error = true;
                break;
            }
            traces.push_back(std::move(out.trace));
            if (cfg_.collectAllFormats) {
                std::vector<executor::UTrace> extras;
                for (auto fmt : all_formats)
                    extras.push_back(harness.extractExtra(fmt));
                extra_traces.push_back(std::move(extras));
            }
        }
        if (run_error)
            continue; // pathological program; skip (counted nowhere)
        stats.testCases += inputs.size();
        ++stats.programs;

        // --- Relational analysis -------------------------------------
        const EquivalenceClasses classes = groupByCTrace(ctraces);
        stats.effectiveClasses += classes.effectiveClasses();
        const AnalysisResult analysis = findCandidates(classes, traces);
        stats.violatingTestCases += analysis.violatingTestCases;

        if (cfg_.collectAllFormats) {
            // Per-format tallies are *validated*: a same-class difference
            // only counts if it persists when the pair is re-run under a
            // common μarch context. Without this, context-sensitive
            // formats (BP state above all) flag nearly every input pair,
            // which is exactly the extra-validation cost Table 5 reports.
            const std::size_t baseline_idx = 0; // L1dTlb is first
            for (const auto &cls : classes.classes) {
                if (cls.size() < 2)
                    continue;
                const std::size_t rep = cls.front();
                for (std::size_t i = 1; i < cls.size(); ++i) {
                    const std::size_t idx = cls[i];
                    bool any_diff = false;
                    for (std::size_t f = 0; f < all_formats.size(); ++f) {
                        if (!(extra_traces[idx][f] ==
                              extra_traces[rep][f])) {
                            any_diff = true;
                            break;
                        }
                    }
                    if (!any_diff)
                        continue;
                    // One validation pair for all formats at once.
                    harness.restoreContext(contexts[idx]);
                    harness.runInput(inputs[rep]);
                    std::vector<executor::UTrace> rep_under_idx;
                    for (auto fmt : all_formats)
                        rep_under_idx.push_back(
                            harness.extractExtra(fmt));
                    harness.restoreContext(contexts[rep]);
                    harness.runInput(inputs[idx]);
                    std::vector<executor::UTrace> idx_under_rep;
                    for (auto fmt : all_formats)
                        idx_under_rep.push_back(
                            harness.extractExtra(fmt));
                    stats.validationRuns += 2;

                    auto confirmed = [&](std::size_t f) {
                        if (extra_traces[idx][f] == extra_traces[rep][f])
                            return false;
                        return !(rep_under_idx[f] ==
                                 extra_traces[idx][f]) ||
                               !(idx_under_rep[f] ==
                                 extra_traces[rep][f]);
                    };
                    const bool base_confirmed = confirmed(baseline_idx);
                    for (std::size_t f = 0; f < all_formats.size(); ++f) {
                        if (!confirmed(f))
                            continue;
                        FormatTally &tally =
                            stats.formatTallies[all_formats[f]];
                        ++tally.violatingTestCases;
                        if (base_confirmed)
                            ++tally.coveredByBaseline;
                    }
                }
            }
        }

        // --- Validation (context swap) + recording --------------------
        const executor::UarchContext ctx_end = harness.saveContext();
        bool stop = false;
        for (const CandidatePair &cand : analysis.candidates) {
            ++stats.candidateViolations;
            // Re-run each input under the other's starting μarch context
            // (§3.2). The violation is confirmed when the inputs remain
            // distinguishable under at least one *common* context: a pure
            // initial-context artifact makes both same-context pairs
            // equal, whereas a genuine leak that depends on predictor
            // state (e.g. Spectre-v4 under a trained memory-dependence
            // predictor) still differs under one of them.
            harness.restoreContext(contexts[cand.b]);
            const auto a_under_b = harness.runInput(inputs[cand.a]);
            harness.restoreContext(contexts[cand.a]);
            const auto b_under_a = harness.runInput(inputs[cand.b]);
            stats.validationRuns += 2;
            const bool persists =
                !(a_under_b.trace == traces[cand.b]) ||
                !(b_under_a.trace == traces[cand.a]);
            if (!persists)
                continue;

            ++stats.confirmedViolations;
            const double t_detect = secondsSince(t0);
            if (stats.firstDetectSeconds < 0)
                stats.firstDetectSeconds = t_detect;

            std::string signature = "unclassified";
            if (cfg_.collectSignatures) {
                signature = classifyViolation(
                    harness, fp, inputs[cand.a], inputs[cand.b],
                    contexts[cand.a], contexts[cand.b]);
            }
            ++stats.signatureCounts[signature];

            if (stats.records.size() < cfg_.maxViolationsRecorded) {
                ViolationRecord rec;
                rec.defenseName = defense::defenseKindName(
                    cfg_.harness.defense.kind);
                rec.contractName = cfg_.contract.name;
                rec.programText = isa::formatProgram(prog);
                rec.programIndex = p;
                rec.inputA = inputs[cand.a];
                rec.inputB = inputs[cand.b];
                rec.traceA = traces[cand.a];
                rec.traceB = traces[cand.b];
                rec.ctxA = contexts[cand.a];
                rec.ctxB = contexts[cand.b];
                rec.ctraceHash =
                    contracts::hashCTrace(ctraces[cand.a]);
                rec.signature = signature;
                rec.detectSeconds = t_detect;
                stats.records.push_back(std::move(rec));
            }
            if (cfg_.stopAtFirstViolation) {
                stop = true;
                break;
            }
        }
        harness.restoreContext(ctx_end);
        if (stop)
            break;
    }

    stats.wallSeconds = secondsSince(t0);
    stats.times.startupSec = harness.times().startupSec;
    stats.times.simulateSec = harness.times().simulateSec;
    stats.times.traceExtractSec = harness.times().traceExtractSec;
    stats.times.otherSec =
        stats.wallSeconds -
        (stats.times.startupSec + stats.times.simulateSec +
         stats.times.traceExtractSec + stats.times.testGenSec +
         stats.times.ctraceSec);
    return stats;
}

} // namespace amulet::core

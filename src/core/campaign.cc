#include "core/campaign.hh"

#include <sstream>

#include "runtime/scheduler.hh"

namespace amulet::core
{

std::string
ViolationRecord::summary() const
{
    std::ostringstream os;
    os << defenseName << " vs " << contractName << ": " << signature
       << " (program " << programIndex << ", inputs " << inputA.id << "/"
       << inputB.id << ", t=" << detectSeconds << "s)";
    return os.str();
}

std::string
CampaignStats::report() const
{
    std::ostringstream os;
    os << "programs:            " << programs << "\n"
       << "test cases:          " << testCases << "\n"
       << "effective classes:   " << effectiveClasses << "\n"
       << "candidates:          " << candidateViolations << "\n"
       << "validation runs:     " << validationRuns << "\n"
       << "violating testcases: " << violatingTestCases << "\n"
       << "confirmed:           " << confirmedViolations << "\n"
       << "unique violations:   " << uniqueViolations() << "\n"
       << "wall seconds:        " << wallSeconds << "\n"
       << "jobs (shards):       " << jobs << "\n"
       << "throughput:          " << throughput() << " tests/s\n"
       << "per-shard rate:      " << perShardThroughput()
       << " tests/s\n";
    if (firstDetectSeconds >= 0)
        os << "first detection:     " << firstDetectSeconds << " s\n";
    for (const auto &[name, count] : signatureCounts)
        os << "  signature " << name << ": " << count << "\n";
    return os.str();
}

Campaign::Campaign(CampaignConfig config) : cfg_(std::move(config)) {}

CampaignStats
Campaign::run()
{
    // The whole fuzzing loop lives in the runtime subsystem: the
    // scheduler shards programs across workers (jobs=1: same pipeline,
    // inline) and merges results deterministically. See src/runtime/.
    return runtime::CampaignScheduler(cfg_).run();
}

} // namespace amulet::core

/**
 * @file
 * Violation minimizer: shrink a violating test program while the
 * contract-equivalence of the input pair and the μarch trace difference
 * both persist (Revizor-style test-case postprocessing; the paper's
 * root-cause workflow starts from exactly such reduced listings).
 */

#ifndef AMULET_CORE_MINIMIZER_HH
#define AMULET_CORE_MINIMIZER_HH

#include "contracts/leakage_model.hh"
#include "core/violation.hh"
#include "executor/sim_harness.hh"
#include "isa/program.hh"

namespace amulet::core
{

/** Outcome of a minimization pass. */
struct MinimizeResult
{
    isa::Program program;     ///< reduced program (violation preserved)
    unsigned removedInsts = 0;
    unsigned checks = 0;      ///< candidate reductions evaluated
};

/**
 * Greedily remove instructions from @p program while (a) the two inputs
 * of @p violation still have equal contract traces under @p model and
 * (b) their μarch traces still differ under the violation's recorded
 * μarch contexts. Branch instructions are kept (removing them would
 * change the block graph). Runs to a fixpoint.
 */
MinimizeResult minimizeViolation(executor::SimHarness &harness,
                                 const contracts::LeakageModel &model,
                                 const mem::AddressMap &map,
                                 const isa::Program &program,
                                 const ViolationRecord &violation);

} // namespace amulet::core

#endif // AMULET_CORE_MINIMIZER_HH

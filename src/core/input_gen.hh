/**
 * @file
 * Random input generation and contract-preserving sibling mutation
 * (§2.4 "Input generation").
 *
 * Base inputs initialize registers, flags, and the sandbox from a seeded
 * PRNG. Siblings keep the parts that influence the contract trace —
 * registers, flags, and the architecturally-read sandbox bytes — while
 * randomizing the rest, so that equivalence classes (inputs with equal
 * contract traces but potentially different speculative behaviour) are
 * plentiful.
 */

#ifndef AMULET_CORE_INPUT_GEN_HH
#define AMULET_CORE_INPUT_GEN_HH

#include <vector>

#include "arch/input.hh"
#include "common/rng.hh"
#include "mem/address_map.hh"

namespace amulet::core
{

/** Input-generation knobs. */
struct InputGenConfig
{
    mem::AddressMap map;
    /** Probability (percent) that a register gets a small value, which
     *  makes comparisons/branch conditions vary more. */
    unsigned smallRegPct = 50;
};

/** Deterministic input generator. */
class InputGenerator
{
  public:
    InputGenerator(InputGenConfig config, Rng rng)
        : cfg_(std::move(config)), rng_(rng)
    {
    }

    /** Fresh random base input. */
    arch::Input generate(std::uint64_t id);

    /**
     * Contract-preserving sibling: same registers and flags, same bytes
     * at the architecturally-read offsets, random elsewhere.
     */
    arch::Input sibling(const arch::Input &base,
                        const std::vector<std::size_t> &read_offsets,
                        std::uint64_t id);

  private:
    InputGenConfig cfg_;
    Rng rng_;
};

} // namespace amulet::core

#endif // AMULET_CORE_INPUT_GEN_HH

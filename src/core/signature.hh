/**
 * @file
 * Violation signatures (§3.3 "Identifying Unique Violations").
 *
 * A confirmed violation is re-run with debug-event recording enabled; the
 * two event streams plus the trace difference are matched against known
 * leak patterns (the equivalent of the paper's regex scripts over gem5
 * debug logs). Distinct signatures are the "unique violations" Table 4
 * counts.
 */

#ifndef AMULET_CORE_SIGNATURE_HH
#define AMULET_CORE_SIGNATURE_HH

#include <string>

#include "arch/input.hh"
#include "executor/sim_harness.hh"
#include "isa/program.hh"

namespace amulet::core
{

/** Signature names (stable identifiers used in reports and tests). */
namespace sig
{
inline constexpr const char *kUv1SpecEviction = "UV1-spec-eviction";
inline constexpr const char *kUv2MshrInterference =
    "UV2-mshr-interference";
inline constexpr const char *kUv3StoreNotCleaned = "UV3-store-not-cleaned";
inline constexpr const char *kUv4SplitNotCleaned = "UV4-split-not-cleaned";
inline constexpr const char *kUv5Overclean = "UV5-overclean";
inline constexpr const char *kUv6FirstLoadBypass = "UV6-first-load-bypass";
inline constexpr const char *kKv3TaintedStoreTlb = "KV3-tainted-store-tlb";
inline constexpr const char *kKv12InstFetch = "KV1/KV2-inst-fetch";
inline constexpr const char *kSpectreV1 = "spectre-v1-branch";
inline constexpr const char *kSpectreV4 = "spectre-v4-store-bypass";
inline constexpr const char *kTiming = "timing-channel";
} // namespace sig

/**
 * Classify a violation by re-running both inputs (under their original
 * μarch contexts) with event logging and matching leak patterns against
 * the differing trace entries.
 */
std::string classifyViolation(executor::SimHarness &harness,
                              const isa::FlatProgram &prog,
                              const arch::Input &input_a,
                              const arch::Input &input_b,
                              const executor::UarchContext &ctx_a,
                              const executor::UarchContext &ctx_b);

} // namespace amulet::core

#endif // AMULET_CORE_SIGNATURE_HH

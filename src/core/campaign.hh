/**
 * @file
 * Campaign orchestrator: the AMuLeT fuzzing loop (Figure 1).
 *
 * Per round: generate a random program and a set of inputs (bases plus
 * contract-preserving siblings, including model-verified register
 * mutations), collect contract traces on the leakage model and μarch
 * traces on the executor, group inputs into contract equivalence classes,
 * flag within-class trace differences, validate candidates by re-running
 * with swapped μarch contexts, and bucket confirmed violations by
 * signature.
 */

#ifndef AMULET_CORE_CAMPAIGN_HH
#define AMULET_CORE_CAMPAIGN_HH

#include <map>
#include <string>
#include <vector>

#include "contracts/contract.hh"
#include "core/generator.hh"
#include "core/input_gen.hh"
#include "core/violation.hh"
#include "executor/backend.hh"
#include "executor/sim_harness.hh"
#include "telemetry/telemetry.hh"

namespace amulet::core
{

/** Campaign configuration. */
struct CampaignConfig
{
    executor::HarnessConfig harness;
    contracts::ContractSpec contract = contracts::ctSeq();
    GeneratorConfig gen;
    InputGenConfig inputs;

    unsigned numPrograms = 50;
    unsigned baseInputsPerProgram = 8;
    unsigned siblingsPerBase = 4; ///< inputs/program = bases * (1+siblings)
    /** Percentage of siblings that additionally try a model-verified
     *  register mutation (needed to catch register-secret leaks such as
     *  SpecLFB UV6). */
    unsigned regMutationPct = 70;

    /** Ineffective-test-case filtering (§3.2): drop inputs whose
     *  contract equivalence class is a singleton *before* any simulator
     *  run — they can never form a candidate pair — and skip the
     *  simulator entirely for programs with zero effective classes.
     *  Confirmed violations, signatures, and records are identical with
     *  filtering on or off (see src/pipeline/README.md), but the set of
     *  inputs the simulator executes changes, so this is part of the
     *  campaign definition and of the corpus config fingerprint. */
    bool filterIneffective = true;

    /** Worker threads sharing the campaign's programs (0 = all hardware
     *  threads). Confirmed violations, signatures, and counters are
     *  identical for every jobs value (see src/runtime/) — except under
     *  stopAtFirstViolation with jobs>1, where the set of programs that
     *  run before the stop flag lands is timing-dependent. */
    unsigned jobs = 1;

    /** Executor backend every shard constructs (src/executor/): in the
     *  worker thread (default), behind a dedicated simulation thread
     *  (async), or in a forked amulet_sim_worker process (subprocess).
     *  A runtime knob like jobs — excluded from the corpus config
     *  fingerprint; confirmed violations, signatures, counters, and
     *  records are byte-identical across every (jobs, backend) pair
     *  (tests/test_backend.cc). */
    executor::BackendKind backend = executor::BackendKind::InProcess;

    /** Contract-trace batch memoization (src/contracts/README.md):
     *  CTraceStage runs one instrumented emulator pass per base input
     *  and serves probes/siblings by snapshot-fork instead of cold
     *  re-execution. A runtime knob like backend/primeCache — excluded
     *  from the corpus config fingerprint; traces, verdicts, and
     *  records are byte-identical with it on or off
     *  (tests/test_ctrace_memo.cc), and Debug builds re-collect every
     *  32nd batch cold and assert equality. */
    bool ctraceMemo = true;

    bool stopAtFirstViolation = false;
    bool collectSignatures = true;
    /** Also extract every other trace format per run (Table 5 overlap
     *  analysis). */
    bool collectAllFormats = false;
    unsigned maxViolationsRecorded = 32;
    std::uint64_t seed = 1;

    /** @name Corpus persistence (src/corpus/)
     *  Runtime knobs, like jobs: none of these participate in the
     *  campaign definition, so they are excluded from the corpus config
     *  fingerprint and may differ between the runs of one corpus. */
    /// @{
    /** Campaign directory for the journal/checkpoint; empty: disabled. */
    std::string corpusDir;
    /** Load the checkpoint in corpusDir and continue the campaign from
     *  the programs it has not completed yet. */
    bool resume = false;
    /** Completed programs between checkpoint rewrites. */
    unsigned checkpointEvery = 8;
    /** Stop claiming new programs after this many ran in this process
     *  (0 = unlimited). With a corpus dir the final checkpoint makes the
     *  partial campaign resumable — a clean kill switch for
     *  time-budgeted runs and for kill/resume testing. */
    unsigned maxProgramsThisRun = 0;
    /// @}

    /** Observability knobs (src/telemetry/): span tracing (--trace-out)
     *  and live heartbeats (--heartbeat). Runtime-only like jobs: never
     *  part of the campaign definition or the corpus fingerprint, and
     *  results are byte-identical with every knob on or off
     *  (tests/test_telemetry.cc). */
    telemetry::TelemetryConfig telemetry;

    /** Deterministic fault-injection plan (src/runtime/fault.hh; empty:
     *  chaos off, the default; $AMULET_FAULT_PLAN is the fallback when
     *  empty). Runtime-only and excluded from the corpus fingerprint:
     *  a plan may quarantine programs, but every program it does not
     *  poison produces byte-identical results to a clean run
     *  (tests/test_fault.cc). */
    std::string faultPlan;
};

/** Per-trace-format tallies for the all-formats mode. */
struct FormatTally
{
    std::uint64_t violatingTestCases = 0;
    std::uint64_t coveredByBaseline = 0; ///< also flagged by L1D+TLB
};

/**
 * Everything one program run contributes to campaign stats — the
 * product of running one program through the src/pipeline/ stages, and
 * the unit the runtime's ViolationSink merges and the corpus checkpoint
 * serializes.
 */
struct ProgramOutcome
{
    /** False when the program was aborted (cycle cap): its partial
     *  results must not merge into campaign stats. */
    bool ran = false;
    /** The simulator was skipped or aborted for this program — either
     *  an input hit the cycle cap (ran stays false), or filtering found
     *  zero effective classes (ran is true, all inputs filtered). */
    bool skippedProgram = false;

    std::uint64_t testCases = 0;
    /** Inputs dropped by ineffective-test-case filtering (singleton
     *  equivalence classes); testCases - filteredTestCases inputs
     *  actually ran on the simulator. */
    std::uint64_t filteredTestCases = 0;
    std::uint64_t effectiveClasses = 0;
    std::uint64_t candidateViolations = 0;
    std::uint64_t validationRuns = 0;
    std::uint64_t violatingTestCases = 0;
    std::uint64_t confirmedViolations = 0;
    double firstDetectSeconds = -1; ///< campaign-relative; <0: none
    double testGenSec = 0;
    double ctraceSec = 0;
    double filterSec = 0;
    std::vector<ViolationRecord> records;
    std::map<std::string, std::uint64_t> signatureCounts;
    std::map<executor::TraceFormat, FormatTally> formatTallies;

    /** The program was quarantined: its executor failed every allowed
     *  recovery attempt (poisoned worker) or its shard died repeatedly
     *  while running it. No partial results merge (ran stays false);
     *  the program is journaled as quarantined, counted in
     *  CampaignStats, and skipped on --resume. */
    bool quarantined = false;
    std::string quarantineReason;

    static ProgramOutcome
    makeQuarantined(std::string reason)
    {
        ProgramOutcome out;
        out.quarantined = true;
        out.quarantineReason = std::move(reason);
        return out;
    }
};

/** Campaign outcome. */
struct CampaignStats
{
    unsigned programs = 0;
    /** Programs whose simulator phase was skipped or aborted (cycle
     *  cap, or zero effective classes under filtering). */
    unsigned skippedPrograms = 0;
    std::uint64_t testCases = 0;
    std::uint64_t filteredTestCases = 0; ///< never ran on the simulator
    std::uint64_t effectiveClasses = 0;
    std::uint64_t candidateViolations = 0;
    std::uint64_t validationRuns = 0;
    std::uint64_t violatingTestCases = 0;
    std::uint64_t confirmedViolations = 0;
    std::vector<ViolationRecord> records;
    std::map<std::string, std::uint64_t> signatureCounts;
    double wallSeconds = 0;
    double firstDetectSeconds = -1; ///< <0: nothing detected
    unsigned jobs = 1;              ///< worker shards the campaign ran on
    std::string backend = "inproc"; ///< executor backend the shards used
    /** Programs restored from a corpus checkpoint rather than run. */
    unsigned resumedPrograms = 0;
    /** Programs quarantined after exhausted recovery (poisoned worker
     *  ops or repeated shard deaths); excluded from every other
     *  tally and from the corpus export. */
    unsigned quarantinedPrograms = 0;
    executor::TimeBreakdown times;
    std::map<executor::TraceFormat, FormatTally> formatTallies;
    /** Merged campaign metrics (src/telemetry/): the `time.*` timers
     *  are the source the `times` fields above are derived from; also
     *  carries op/wire timers, the sim.inputLatencySec histogram, and
     *  campaign.* roll-ups. */
    telemetry::MetricsSnapshot metrics;

    bool detected() const { return confirmedViolations > 0; }
    std::size_t uniqueViolations() const { return signatureCounts.size(); }

    /** Inputs that actually ran on the simulator (excludes filtered). */
    std::uint64_t
    simInputRuns() const
    {
        return testCases - filteredTestCases;
    }
    double
    throughput() const
    {
        return wallSeconds > 0 ? static_cast<double>(testCases) /
                                     wallSeconds
                               : 0;
    }

    /** Tests/second contributed by each worker shard on average. */
    double
    perShardThroughput() const
    {
        return jobs > 0 ? throughput() / jobs : throughput();
    }

    /** Multi-line human-readable report. */
    std::string report() const;
};

/** The fuzzing campaign. */
class Campaign
{
  public:
    explicit Campaign(CampaignConfig config);

    /** Run the whole campaign. */
    CampaignStats run();

  private:
    CampaignConfig cfg_;
};

} // namespace amulet::core

#endif // AMULET_CORE_CAMPAIGN_HH

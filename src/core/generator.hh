/**
 * @file
 * Random test-program generator (Revizor-style, §2.4/§3.1).
 *
 * Programs are DAGs of up to a few basic blocks linked by forward jumps.
 * Every memory access is preceded by an AND that masks its index register
 * into the sandbox (the paper's `AND RBX, 0b111111111111` idiom), so all
 * architectural and speculative accesses stay inside the sandbox pages.
 * Instruction mix, widths, and control-flow shape are configurable.
 */

#ifndef AMULET_CORE_GENERATOR_HH
#define AMULET_CORE_GENERATOR_HH

#include <vector>

#include "common/rng.hh"
#include "isa/program.hh"
#include "mem/address_map.hh"

namespace amulet::core
{

/** Knobs for the program generator. */
struct GeneratorConfig
{
    unsigned minBlocks = 2;
    unsigned maxBlocks = 5;       ///< paper: up to 5 basic blocks
    unsigned minInstsPerBlock = 4;
    unsigned maxInstsPerBlock = 12;

    /** @name Instruction-mix percentages */
    /// @{
    unsigned memAccessPct = 40;   ///< memory op fraction of body insts
    unsigned storePct = 30;       ///< stores among memory ops
    unsigned rmwPct = 15;         ///< RMW forms among memory ops
    unsigned cmovLoadPct = 10;    ///< CMOV-from-memory among loads
    unsigned fencePct = 2;        ///< LFENCE fraction of body insts
    unsigned setccPct = 6;        ///< SETcc fraction of body insts
    unsigned condBranchPct = 80;  ///< block terminator has a Jcc
    unsigned loopnePct = 10;      ///< Jcc replaced by LOOPNE
    /** Make the terminator's flags depend on a recently loaded value
     *  (TEST r, r before the Jcc). Memory-dependent branch conditions
     *  resolve late, opening the speculation windows the paper's
     *  violating test cases rely on. */
    unsigned branchOnLoadPct = 60;
    /// @}

    /** Allow unaligned offsets so accesses can cross cache lines
     *  (split requests; reaches CleanupSpec UV4). */
    unsigned unalignedPct = 15;

    /** Access width weights for {1, 2, 4, 8} bytes. */
    std::vector<std::uint32_t> widthWeights = {2, 2, 3, 5};

    mem::AddressMap map;
};

/** Deterministic random program generator. */
class ProgramGenerator
{
  public:
    ProgramGenerator(GeneratorConfig config, Rng rng)
        : cfg_(std::move(config)), rng_(rng)
    {
    }

    /** Generate one program. */
    isa::Program generate();

    const GeneratorConfig &config() const { return cfg_; }

  private:
    isa::Inst randomBodyInst();
    isa::Inst randomAluInst();
    void emitMaskedMemAccess(std::vector<isa::Inst> &body);
    isa::Reg randomGpr();
    unsigned randomWidth();
    isa::Cond randomCond();

    GeneratorConfig cfg_;
    Rng rng_;
};

} // namespace amulet::core

#endif // AMULET_CORE_GENERATOR_HH

#include "core/analyzer.hh"

#include <unordered_map>

namespace amulet::core
{

std::size_t
EquivalenceClasses::effectiveClasses() const
{
    std::size_t n = 0;
    for (const auto &cls : classes) {
        if (cls.size() >= 2)
            ++n;
    }
    return n;
}

EquivalenceClasses
groupByCTrace(const std::vector<contracts::CTrace> &ctraces)
{
    EquivalenceClasses out;
    std::unordered_map<std::uint64_t, std::vector<std::size_t>> buckets;
    std::vector<std::uint64_t> order; // deterministic class order
    for (std::size_t i = 0; i < ctraces.size(); ++i) {
        const std::uint64_t h = contracts::hashCTrace(ctraces[i]);
        auto [it, inserted] = buckets.try_emplace(h);
        if (inserted)
            order.push_back(h);
        it->second.push_back(i);
    }
    for (std::uint64_t h : order) {
        auto &bucket = buckets[h];
        // Hash buckets are verified exactly: split on true inequality to
        // rule out (unlikely) hash collisions.
        while (!bucket.empty()) {
            std::vector<std::size_t> cls;
            std::vector<std::size_t> rest;
            const contracts::CTrace &ref = ctraces[bucket.front()];
            for (std::size_t idx : bucket) {
                if (ctraces[idx] == ref)
                    cls.push_back(idx);
                else
                    rest.push_back(idx);
            }
            out.classes.push_back(std::move(cls));
            bucket = std::move(rest);
        }
    }
    return out;
}

AnalysisResult
findCandidates(const EquivalenceClasses &classes,
               const std::vector<executor::UTrace> &traces)
{
    AnalysisResult result;
    for (const auto &cls : classes.classes) {
        if (cls.size() < 2)
            continue;
        const std::size_t rep = cls.front();
        std::vector<std::size_t> distinct_deviants;
        for (std::size_t i = 1; i < cls.size(); ++i) {
            const std::size_t idx = cls[i];
            // tracesEqual short-circuits on the hashes extraction
            // cached, so the common all-equal/all-different sweeps
            // never walk the word arrays.
            if (executor::tracesEqual(traces[idx], traces[rep]))
                continue;
            ++result.violatingTestCases;
            bool seen = false;
            for (std::size_t d : distinct_deviants) {
                if (executor::tracesEqual(traces[d], traces[idx])) {
                    seen = true;
                    break;
                }
            }
            if (!seen) {
                distinct_deviants.push_back(idx);
                result.candidates.push_back({rep, idx});
            }
        }
    }
    return result;
}

} // namespace amulet::core

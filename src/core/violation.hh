/**
 * @file
 * Contract-violation records (§3.3).
 *
 * On detecting a violation AMuLeT outputs the program and the pair of
 * inputs causing it together with their μarch traces; signature analysis
 * then buckets violations into unique root causes.
 */

#ifndef AMULET_CORE_VIOLATION_HH
#define AMULET_CORE_VIOLATION_HH

#include <cstdint>
#include <string>

#include "arch/input.hh"
#include "common/rng.hh"
#include "executor/sim_harness.hh"
#include "executor/uarch_trace.hh"

namespace amulet::core
{

/** One confirmed contract violation. */
struct ViolationRecord
{
    std::string defenseName;
    std::string contractName;
    std::string programText;     ///< disassembly of the violating program
    unsigned programIndex = 0;   ///< which generated program
    arch::Input inputA;
    arch::Input inputB;
    executor::UTrace traceA;
    executor::UTrace traceB;
    /** Starting μarch contexts of the two runs (replay support). */
    executor::UarchContext ctxA;
    executor::UarchContext ctxB;
    std::uint64_t ctraceHash = 0;
    std::string signature;       ///< root-cause bucket (see signature.hh)
    double detectSeconds = 0;    ///< wall time since campaign start
    /** Pre-split RNG stream of the generating program, captured before
     *  any draw: the whole test-generation pipeline for this program can
     *  be re-derived offline from (config, programIndex, rngState). */
    Rng::State rngState{};

    /** Short one-line summary. */
    std::string summary() const;
};

} // namespace amulet::core

#endif // AMULET_CORE_VIOLATION_HH

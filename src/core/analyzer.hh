/**
 * @file
 * Relational analysis: equivalence classes and candidate violations
 * (Definition 2.1).
 *
 * Inputs with equal contract traces form an equivalence class; within a
 * class, any μarch-trace difference is a candidate violation (validated
 * afterwards by context-swapped re-runs, §3.2).
 */

#ifndef AMULET_CORE_ANALYZER_HH
#define AMULET_CORE_ANALYZER_HH

#include <cstddef>
#include <vector>

#include "contracts/observation.hh"
#include "executor/uarch_trace.hh"

namespace amulet::core
{

/** Groups of input indices with identical contract traces. */
struct EquivalenceClasses
{
    std::vector<std::vector<std::size_t>> classes;

    /** Classes with at least two members (usable for relational tests). */
    std::size_t effectiveClasses() const;
};

/** Group inputs by exact contract-trace equality. */
EquivalenceClasses groupByCTrace(
    const std::vector<contracts::CTrace> &ctraces);

/** A candidate violation: two same-class inputs with differing traces. */
struct CandidatePair
{
    std::size_t a;
    std::size_t b;
};

/** Analysis outcome over one test program. */
struct AnalysisResult
{
    /** One representative pair per distinct deviating trace per class. */
    std::vector<CandidatePair> candidates;
    /** Total inputs whose trace deviates from their class representative
     *  (the paper's "number of violating test cases"). */
    std::size_t violatingTestCases = 0;
};

/** Find candidate violations within the equivalence classes. */
AnalysisResult findCandidates(const EquivalenceClasses &classes,
                              const std::vector<executor::UTrace> &traces);

} // namespace amulet::core

#endif // AMULET_CORE_ANALYZER_HH

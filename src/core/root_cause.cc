#include "core/root_cause.hh"

#include <iomanip>
#include <sstream>
#include <vector>

namespace amulet::core
{

bool
isRootCauseEvent(EventKind kind)
{
    switch (kind) {
      case EventKind::LoadExec:
      case EventKind::LoadBypassedStore:
      case EventKind::StoreExec:
      case EventKind::SquashBranch:
      case EventKind::SquashMemOrder:
      case EventKind::SpecEviction:
      case EventKind::Expose:
      case EventKind::ExposeStall:
      case EventKind::CleanupUndo:
      case EventKind::CleanupSkipped:
      case EventKind::CleanupOverclean:
      case EventKind::TaintedStoreTlb:
      case EventKind::TransmitBlocked:
      case EventKind::LfbHold:
      case EventKind::LfbUnsafeBypass:
        return true;
      default:
        return false;
    }
}

namespace
{

std::vector<Event>
collectEvents(executor::SimHarness &harness, const isa::FlatProgram &prog,
              const arch::Input &input, const executor::UarchContext &ctx)
{
    harness.loadProgram(&prog);
    harness.restoreContext(ctx);
    harness.eventLog().clear();
    harness.setEventLogging(true);
    harness.runInput(input);
    harness.setEventLogging(false);

    std::vector<Event> out;
    for (const Event &e : harness.eventLog().events()) {
        if (isRootCauseEvent(e.kind))
            out.push_back(e);
    }
    return out;
}

std::string
renderEvent(const Event &e)
{
    std::ostringstream os;
    os << std::setw(5) << e.cycle << " " << std::setw(18) << std::left
       << eventKindName(e.kind) << std::right << " 0x" << std::hex
       << e.addr << std::dec;
    if (!e.note.empty())
        os << " (" << e.note << ")";
    return os.str();
}

} // namespace

std::string
renderSideBySide(executor::SimHarness &harness,
                 const isa::FlatProgram &prog,
                 const ViolationRecord &violation)
{
    const auto ev_a =
        collectEvents(harness, prog, violation.inputA, violation.ctxA);
    const auto ev_b =
        collectEvents(harness, prog, violation.inputB, violation.ctxB);

    constexpr std::size_t kCol = 52;
    std::ostringstream os;
    os << violation.summary() << "\n\n";
    os << std::setw(kCol) << std::left
       << ("Input A (id " + std::to_string(violation.inputA.id) + ")")
       << "| Input B (id " << violation.inputB.id << ")\n";
    os << std::string(kCol, '-') << "+" << std::string(kCol, '-') << "\n";

    const std::size_t rows = std::max(ev_a.size(), ev_b.size());
    for (std::size_t i = 0; i < rows; ++i) {
        std::string left = i < ev_a.size() ? renderEvent(ev_a[i]) : "";
        std::string right = i < ev_b.size() ? renderEvent(ev_b[i]) : "";
        const bool differs =
            i >= ev_a.size() || i >= ev_b.size() ||
            ev_a[i].kind != ev_b[i].kind || ev_a[i].addr != ev_b[i].addr;
        if (left.size() < kCol)
            left.resize(kCol, ' ');
        os << left << "| " << right << (differs ? "   <<" : "") << "\n";
    }

    os << "\nTrace diff:";
    for (Addr w : executor::traceDiffAddrs(violation.traceA,
                                           violation.traceB)) {
        os << " 0x" << std::hex << w << std::dec;
    }
    os << "\n";
    return os.str();
}

} // namespace amulet::core

#include "core/input_gen.hh"

#include <algorithm>
#include <cstring>

namespace amulet::core
{

arch::Input
InputGenerator::generate(std::uint64_t id)
{
    arch::Input input;
    input.id = id;
    for (auto &reg : input.regs) {
        reg = rng_.chance(cfg_.smallRegPct, 100) ? (rng_.next() & 0xffff)
                                                 : rng_.next();
    }
    input.flagsByte = static_cast<std::uint8_t>(rng_.next() & 0x1f);
    input.sandbox.resize(cfg_.map.sandboxSize());
    for (std::size_t i = 0; i + 8 <= input.sandbox.size(); i += 8) {
        const std::uint64_t w = rng_.next();
        std::memcpy(&input.sandbox[i], &w, 8);
    }
    return input;
}

arch::Input
InputGenerator::sibling(const arch::Input &base,
                        const std::vector<std::size_t> &read_offsets,
                        std::uint64_t id)
{
    arch::Input input = base;
    input.id = id;
    // Randomize everything, then restore the contract-relevant bytes.
    for (std::size_t i = 0; i + 8 <= input.sandbox.size(); i += 8) {
        const std::uint64_t w = rng_.next();
        std::memcpy(&input.sandbox[i], &w, 8);
    }
    for (std::size_t off : read_offsets) {
        if (off < input.sandbox.size())
            input.sandbox[off] = base.sandbox[off];
    }
    return input;
}

} // namespace amulet::core

#include "core/input_gen.hh"

#include <algorithm>
#include <cstring>

namespace amulet::core
{

std::vector<std::uint8_t>
InputGenerator::takeSandbox(std::size_t n)
{
    std::vector<std::uint8_t> buf = pool_ ? pool_->take()
                                          : std::vector<std::uint8_t>{};
    // A warm buffer's resize is a no-op (same size) or capacity reuse;
    // only a cold pool pays the allocate-and-zero.
    buf.resize(n);
    return buf;
}

arch::Input
InputGenerator::generate(std::uint64_t id)
{
    arch::Input input;
    input.id = id;
    for (auto &reg : input.regs) {
        reg = rng_.chance(cfg_.smallRegPct, 100) ? (rng_.next() & 0xffff)
                                                 : rng_.next();
    }
    input.flagsByte = static_cast<std::uint8_t>(rng_.next() & 0x1f);
    const std::size_t n = cfg_.map.sandboxSize();
    input.sandbox = takeSandbox(n);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const std::uint64_t w = rng_.next();
        std::memcpy(&input.sandbox[i], &w, 8);
    }
    // Tail bytes (sandbox size not a word multiple) are defined to be
    // zero; a recycled buffer may hold stale bytes there.
    for (; i < n; ++i)
        input.sandbox[i] = 0;
    return input;
}

arch::Input
InputGenerator::sibling(const arch::Input &base,
                        const std::vector<std::size_t> &read_offsets,
                        std::uint64_t id)
{
    arch::Input input;
    input.id = id;
    input.regs = base.regs;
    input.flagsByte = base.flagsByte;
    // Randomize everything, then restore the contract-relevant bytes.
    // Filling the buffer (instead of copying the base sandbox and
    // overwriting it) draws the same words, so the result is
    // byte-identical — only the dead 512KB copy per STT sibling goes.
    const std::size_t n = base.sandbox.size();
    input.sandbox = takeSandbox(n);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const std::uint64_t w = rng_.next();
        std::memcpy(&input.sandbox[i], &w, 8);
    }
    for (; i < n; ++i)
        input.sandbox[i] = base.sandbox[i];
    for (std::size_t off : read_offsets) {
        if (off < n)
            input.sandbox[off] = base.sandbox[off];
    }
    return input;
}

} // namespace amulet::core

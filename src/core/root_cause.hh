/**
 * @file
 * Root-cause analysis support (§3.3 (a)).
 *
 * Mirrors the paper's script that parses gem5 debug logs and provides a
 * side-by-side comparison of memory accesses under the two violating
 * inputs, highlighting differences and displaying squashes.
 */

#ifndef AMULET_CORE_ROOT_CAUSE_HH
#define AMULET_CORE_ROOT_CAUSE_HH

#include <string>

#include "core/violation.hh"
#include "executor/sim_harness.hh"
#include "isa/program.hh"

namespace amulet::core
{

/**
 * Re-run both violating inputs under their recorded μarch contexts with
 * event recording and render a side-by-side table of memory operations
 * (cycle, type, address), squashes, and defense events, with differing
 * rows marked — the Table 7/9/10 view of the paper.
 */
std::string renderSideBySide(executor::SimHarness &harness,
                             const isa::FlatProgram &prog,
                             const ViolationRecord &violation);

/** The subset of event kinds shown in side-by-side reports. */
bool isRootCauseEvent(EventKind kind);

} // namespace amulet::core

#endif // AMULET_CORE_ROOT_CAUSE_HH

#include "contracts/contract.hh"

#include <sstream>

namespace amulet::contracts
{

std::string
ContractSpec::describeLeakageClause() const
{
    std::ostringstream os;
    bool first = true;
    auto add = [&](const char *s) {
        if (!first)
            os << ", ";
        os << s;
        first = false;
    };
    if (observePc)
        add("PC");
    if (observeMemAddr)
        add("LD/ST ADDR");
    if (observeLoadValues)
        add("LD values");
    return os.str();
}

std::string
ContractSpec::describeExecutionClause() const
{
    if (!exploreMispredictedBranches)
        return "N/A";
    std::ostringstream os;
    os << "Mispredicted Branches (window=" << speculationWindow
       << ", nesting=" << maxNesting << ")";
    return os.str();
}

ContractSpec
ctSeq()
{
    ContractSpec c;
    c.name = "CT-SEQ";
    return c;
}

ContractSpec
ctCond()
{
    ContractSpec c;
    c.name = "CT-COND";
    c.exploreMispredictedBranches = true;
    return c;
}

ContractSpec
archSeq()
{
    ContractSpec c;
    c.name = "ARCH-SEQ";
    c.observeLoadValues = true;
    c.exposeInitialRegs = true;
    return c;
}

std::optional<ContractSpec>
findContract(const std::string &name)
{
    for (const auto &c : allContracts()) {
        if (c.name == name)
            return c;
    }
    return std::nullopt;
}

std::vector<ContractSpec>
allContracts()
{
    return {ctSeq(), ctCond(), archSeq()};
}

} // namespace amulet::contracts

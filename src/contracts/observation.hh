/**
 * @file
 * Contract-trace observations.
 *
 * A contract trace is the sequence of ISA-level observations a leakage
 * contract allows an attacker to learn (§2.1). Traces compare for exact
 * equality (Definition 2.1) and hash for fast equivalence-class grouping.
 */

#ifndef AMULET_CONTRACTS_OBSERVATION_HH
#define AMULET_CONTRACTS_OBSERVATION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/bitutil.hh"
#include "common/types.hh"

namespace amulet::contracts
{

/** One ISA-level observation. */
struct Obs
{
    enum class Kind : std::uint8_t
    {
        Pc,        ///< program counter of a (contract-)executed instruction
        LoadAddr,  ///< address of a load
        StoreAddr, ///< address of a store
        LoadVal,   ///< value loaded from memory (ARCH-SEQ only)
        SpecStart, ///< begin of an explored mispredicted path (CT-COND)
        SpecEnd,   ///< end of an explored mispredicted path
    };

    Kind kind;
    std::uint64_t value;

    bool operator==(const Obs &) const = default;
};

/** A contract trace: ordered observations. */
using CTrace = std::vector<Obs>;

/** Order-sensitive 64-bit hash of a trace. */
inline std::uint64_t
hashCTrace(const CTrace &trace)
{
    std::uint64_t h = 0x5eed;
    for (const Obs &o : trace) {
        h = hashCombine(h, static_cast<std::uint64_t>(o.kind));
        h = hashCombine(h, o.value);
    }
    return h;
}

/** Human-readable rendering (for reports and tests). */
std::string formatCTrace(const CTrace &trace);

} // namespace amulet::contracts

#endif // AMULET_CONTRACTS_OBSERVATION_HH

/**
 * @file
 * Executable leakage model: collects contract traces by running test cases
 * on the reference emulator (§2.4 "Collecting contract traces").
 *
 * The observation clause is applied at each retired instruction; the
 * execution clause (CT-COND) is realized by forking a checkpointed wrong
 * path at every conditional branch, executing it for a bounded window
 * (with bounded nesting), recording its observations between SpecStart /
 * SpecEnd markers, and rolling back.
 *
 * Batch memoization (README.md in this directory): inputs generated from
 * one base input share their trace prefix up to the first read of an
 * initial-state location (register or sandbox byte) whose value differs
 * from the base. One instrumented pass over the base records, per
 * committed step, an emulator snapshot plus first-read/first-write tables;
 * each further input in the batch is then served either as a full prefix
 * hit (no divergence) or by forking the emulator at its divergence step
 * and replaying only the suffix. Results are byte-identical to cold
 * per-input collect() runs — asserted every N batches in Debug builds.
 */

#ifndef AMULET_CONTRACTS_LEAKAGE_MODEL_HH
#define AMULET_CONTRACTS_LEAKAGE_MODEL_HH

#include <array>
#include <cstdint>
#include <optional>

#include "arch/arch_state.hh"
#include "arch/emulator.hh"
#include "arch/input.hh"
#include "contracts/contract.hh"
#include "contracts/observation.hh"
#include "isa/program.hh"
#include "mem/address_map.hh"

namespace amulet::contracts
{

/** Counters one batch-memoization session accumulates; drained by
 *  CTraceStage into the `ctrace.*` telemetry counter family. */
struct CTraceMemoStats
{
    std::uint64_t fullRuns = 0;        ///< cold whole-program collects
    std::uint64_t memoHits = 0;        ///< inputs served from the memo
    std::uint64_t memoReplaySteps = 0; ///< committed steps re-executed
};

/** Collects contract traces per a ContractSpec. */
class LeakageModel
{
  public:
    explicit LeakageModel(ContractSpec spec) : spec_(std::move(spec)) {}

    const ContractSpec &spec() const { return spec_; }

    /**
     * Contract trace of @p prog on @p input under layout @p map.
     * Deterministic: equal (prog, input) pairs give equal traces.
     */
    CTrace collect(const isa::FlatProgram &prog, const arch::Input &input,
                   const mem::AddressMap &map) const;

    /**
     * The set of sandbox byte offsets read architecturally (used by the
     * input generator to build contract-equivalent siblings for value-
     * observing contracts). Standalone full pass; the hot path gets the
     * same set for free from batchBegin()/batchReadOffsets().
     */
    std::vector<std::size_t> archReadOffsets(const isa::FlatProgram &prog,
                                             const arch::Input &input,
                                             const mem::AddressMap &map)
        const;

    /** @name Batch memoization session
     *  One session per base input. batchBegin() runs the instrumented
     *  base pass (or, with @p memo off, a cold collect plus the
     *  standalone offsets pass) and returns the base trace; the
     *  returned references stay valid until the next batchBegin().
     *  batchCollect()/batchMatchesBase() serve any input — memoized
     *  when it shares a prefix with the base, cold otherwise — with
     *  results byte-identical to collect(). */
    /// @{
    const CTrace &batchBegin(const isa::FlatProgram &prog,
                             const arch::Input &base,
                             const mem::AddressMap &map, bool memo = true);

    /** Architecturally-read sandbox offsets of the current base input
     *  (== archReadOffsets(prog, base, map), derived from the base
     *  pass). */
    const std::vector<std::size_t> &batchReadOffsets() const
    {
        return batch_.readOffsets;
    }

    /** Contract trace of @p input (== collect(prog, input, map)). */
    CTrace batchCollect(const arch::Input &input);

    /** Does @p input's trace equal the base trace? Allocation-free
     *  fast path for dead-register probes and mutation confirmation:
     *  a no-divergence input answers true without running anything. */
    bool batchMatchesBase(const arch::Input &input);

    /** Drain and reset the session counters. */
    CTraceMemoStats takeBatchStats();

    /** Convenience for tests/benches: traces of inputs[0..n) with
     *  inputs[0] as the memo base. */
    std::vector<CTrace> collectBatch(const isa::FlatProgram &prog,
                                     const std::vector<arch::Input> &inputs,
                                     const mem::AddressMap &map,
                                     bool memo = true);
    /// @}

  private:
    struct BatchTracker;

    /** Sentinel step values for first-read/first-write tables and
     *  divergenceStep(). */
    static constexpr std::uint32_t kNever = 0xffffffffu;
    static constexpr std::uint32_t kColdRun = 0xfffffffeu;

    /** Debug builds re-collect every Nth batch cold and assert the
     *  memoized results match (same discipline as the PR 5 prime-cache
     *  audit). */
    static constexpr std::uint64_t kAuditEvery = 32;

    /** Step-index table over sandbox offsets, reset per batch by epoch
     *  stamping so a new batch costs O(1), not O(sandbox). */
    class StepTable
    {
      public:
        void reset(std::size_t size)
        {
            if (entries_.size() < size)
                entries_.resize(size, 0);
            ++epoch_;
        }
        std::uint32_t get(std::size_t i) const
        {
            const std::uint64_t e = entries_[i];
            return (e >> 32) == epoch_
                       ? static_cast<std::uint32_t>(e)
                       : kNever;
        }
        void set(std::size_t i, std::uint32_t step)
        {
            entries_[i] = (std::uint64_t{epoch_} << 32) | step;
        }

      private:
        std::vector<std::uint64_t> entries_;
        std::uint32_t epoch_ = 0;
    };

    struct ByteWrite
    {
        Addr addr;
        std::uint8_t value;
    };

    /** Offset + step of the first initial-value read of a sandbox byte
     *  (compact mirror of the byteFirstRead table for cheap divergence
     *  scans). */
    struct ReadByte
    {
        std::uint32_t off;
        std::uint32_t step;
    };

    struct BatchState
    {
        const isa::FlatProgram *prog = nullptr;
        mem::AddressMap map;
        arch::Input base;
        bool memo = false;
        bool audit = false;
        std::optional<arch::Emulator> emu;
        CTrace baseTrace;
        std::vector<std::size_t> readOffsets;

        /** Per committed step of the base pass (index == step). */
        std::vector<arch::ArchSnapshot> snaps;
        std::vector<std::uint32_t> traceLen;  ///< trace size before step
        std::vector<std::uint32_t> writeMark; ///< #writes before step

        /** Committed byte stores of the base pass, in order, holding the
         *  post-store value (re-applied on fork after a full rewind). */
        std::vector<ByteWrite> writes;

        std::array<std::uint32_t, isa::kNumRegs> regFirstRead{};
        std::array<std::uint32_t, isa::kNumRegs> regFirstWrite{};
        StepTable byteFirstRead;
        StepTable byteFirstWrite;
        std::vector<ReadByte> readBytes;
    };

    void observeStep(const arch::StepEffects &fx, CTrace &trace) const;
    void explore(arch::Emulator &emu, CTrace &trace, unsigned depth,
                 std::size_t wrong_idx, BatchTracker *tr) const;
    void runPath(arch::Emulator &emu, CTrace &trace, unsigned depth,
                 std::size_t budget, BatchTracker *tr) const;

    /** The shared committed-path collect loop. Appends to @p trace and
     *  returns the number of committed steps executed. */
    std::size_t collectLoop(arch::Emulator &emu, CTrace &trace,
                            std::size_t guard, BatchTracker *tr) const;

    /** collect() into a caller-owned (reused) trace buffer. */
    void collectInto(const isa::FlatProgram &prog, const arch::Input &input,
                     const mem::AddressMap &map, CTrace &out) const;

    /** First committed step whose execution can differ from the base
     *  for @p input: kNever (full prefix hit), kColdRun (memoization
     *  inapplicable — flags or sandbox shape differ), or a step index
     *  to fork at. */
    std::uint32_t divergenceStep(const arch::Input &input) const;

    /** Rewind the session emulator to just before committed step
     *  @p step of the base pass and patch in @p input's still-visible
     *  differing initial state. */
    void forkTo(std::uint32_t step, const arch::Input &input);

    /** Memoized trace of @p input into @p out; false if the input needs
     *  a cold run instead. */
    bool memoCollect(const arch::Input &input, CTrace &out);

    ContractSpec spec_;
    BatchState batch_;
    CTraceMemoStats stats_;
    std::uint64_t batchCounter_ = 0;
    CTrace scratch_; ///< reused by equality-only collects
};

} // namespace amulet::contracts

#endif // AMULET_CONTRACTS_LEAKAGE_MODEL_HH

/**
 * @file
 * Executable leakage model: collects contract traces by running test cases
 * on the reference emulator (§2.4 "Collecting contract traces").
 *
 * The observation clause is applied at each retired instruction; the
 * execution clause (CT-COND) is realized by forking a checkpointed wrong
 * path at every conditional branch, executing it for a bounded window
 * (with bounded nesting), recording its observations between SpecStart /
 * SpecEnd markers, and rolling back.
 */

#ifndef AMULET_CONTRACTS_LEAKAGE_MODEL_HH
#define AMULET_CONTRACTS_LEAKAGE_MODEL_HH

#include "arch/arch_state.hh"
#include "arch/emulator.hh"
#include "arch/input.hh"
#include "contracts/contract.hh"
#include "contracts/observation.hh"
#include "isa/program.hh"
#include "mem/address_map.hh"

namespace amulet::contracts
{

/** Collects contract traces per a ContractSpec. */
class LeakageModel
{
  public:
    explicit LeakageModel(ContractSpec spec) : spec_(std::move(spec)) {}

    const ContractSpec &spec() const { return spec_; }

    /**
     * Contract trace of @p prog on @p input under layout @p map.
     * Deterministic: equal (prog, input) pairs give equal traces.
     */
    CTrace collect(const isa::FlatProgram &prog, const arch::Input &input,
                   const mem::AddressMap &map) const;

    /**
     * The set of sandbox byte offsets read architecturally (used by the
     * input generator to build contract-equivalent siblings for value-
     * observing contracts).
     */
    std::vector<std::size_t> archReadOffsets(const isa::FlatProgram &prog,
                                             const arch::Input &input,
                                             const mem::AddressMap &map)
        const;

  private:
    void observeStep(const arch::StepEffects &fx, CTrace &trace) const;
    void explore(arch::Emulator &emu, CTrace &trace, unsigned depth,
                 std::size_t wrong_idx) const;
    void runPath(arch::Emulator &emu, CTrace &trace, unsigned depth,
                 std::size_t budget) const;

    ContractSpec spec_;
};

} // namespace amulet::contracts

#endif // AMULET_CONTRACTS_LEAKAGE_MODEL_HH

/**
 * @file
 * Leakage contracts (Guarnieri et al.) and the contract registry.
 *
 * A contract is described by an observation clause (what each instruction
 * leaks) and an execution clause (which speculative paths are considered
 * architecturally "expected"). Table 1 of the paper defines the three
 * contracts used in its evaluation; all are expressible as ContractSpec
 * configurations of the single executable leakage model.
 */

#ifndef AMULET_CONTRACTS_CONTRACT_HH
#define AMULET_CONTRACTS_CONTRACT_HH

#include <optional>
#include <string>
#include <vector>

#include "contracts/observation.hh"

namespace amulet::contracts
{

/** Declarative description of a leakage contract. */
struct ContractSpec
{
    std::string name;

    /** @name Observation clause */
    /// @{
    bool observePc = true;         ///< expose committed program counters
    bool observeMemAddr = true;    ///< expose load/store addresses
    bool observeLoadValues = false;///< expose loaded values (ARCH-SEQ)
    /** Treat initial register values as exposed: inputs in one
     *  equivalence class must then have identical registers. ARCH-SEQ
     *  sets this, which is how the paper filters register-value leaks
     *  (e.g. SpecLFB UV6) at the contract level. */
    bool exposeInitialRegs = false;
    /// @}

    /** @name Execution clause */
    /// @{
    /** Explore both directions of conditional branches (CT-COND). */
    bool exploreMispredictedBranches = false;
    /** Max instructions executed down one mispredicted path. Must cover
     *  the target's reorder-buffer depth, or leaks on wrong paths deeper
     *  than the window register as (window-mismatch) violations. */
    unsigned speculationWindow = 256;
    /** Max nesting depth of explored mispredictions. */
    unsigned maxNesting = 4;
    /// @}

    /** One-line summary for Table 1 style output. */
    std::string describeLeakageClause() const;
    std::string describeExecutionClause() const;
};

/** The contracts used in the paper's evaluation (Table 1). */
ContractSpec ctSeq();
ContractSpec ctCond();
ContractSpec archSeq();

/** Look up a contract by name ("CT-SEQ", "CT-COND", "ARCH-SEQ"). */
std::optional<ContractSpec> findContract(const std::string &name);

/** All registered contracts. */
std::vector<ContractSpec> allContracts();

} // namespace amulet::contracts

#endif // AMULET_CONTRACTS_CONTRACT_HH

#include "contracts/leakage_model.hh"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdio>
#include <cstring>

#include "isa/reg.hh"

namespace amulet::contracts
{

std::string
formatCTrace(const CTrace &trace)
{
    std::string out;
    out.reserve(trace.size() * 24 + 16);
    unsigned depth = 0;
    char buf[32];
    auto line = [&](const char *tag, std::uint64_t value) {
        out.append(2 * depth, ' ');
        out += tag;
        std::snprintf(buf, sizeof buf, " 0x%llx\n",
                      static_cast<unsigned long long>(value));
        out += buf;
    };
    for (const Obs &o : trace) {
        switch (o.kind) {
          case Obs::Kind::Pc:
            line("pc", o.value);
            break;
          case Obs::Kind::LoadAddr:
            line("load", o.value);
            break;
          case Obs::Kind::StoreAddr:
            line("store", o.value);
            break;
          case Obs::Kind::LoadVal:
            line("val", o.value);
            break;
          case Obs::Kind::SpecStart:
            out.append(2 * depth, ' ');
            out += "spec {\n";
            ++depth;
            break;
          case Obs::Kind::SpecEnd:
            if (depth)
                --depth;
            out.append(2 * depth, ' ');
            out += "}\n";
            break;
        }
    }
    return out;
}

namespace
{

/** Registers whose input value never reaches execution: loadInput pins
 *  the sandbox base register and zeroes RSP, so differing input values
 *  in these slots cannot cause divergence. */
constexpr bool
pinnedReg(unsigned r)
{
    return r == isa::regIndex(isa::kSandboxBaseReg) ||
           r == isa::regIndex(isa::Reg::Rsp);
}

} // namespace

/**
 * Divergence bookkeeping for the instrumented base pass. Records, per
 * committed step: an emulator snapshot (taken before the step), the
 * trace/write-log watermarks, and first-read/first-write step tables
 * for registers and sandbox bytes.
 *
 * Reads are tracked at every speculation depth (a wrong path reads
 * initial state too — over-approximating reads only forks earlier,
 * which is sound). Writes are tracked at depth 0 only: speculative
 * stores are rolled back, so treating a byte as "written" because of
 * one would wrongly suppress a later initial-value read.
 */
struct LeakageModel::BatchTracker
{
    BatchState &st;
    std::uint32_t step = 0;

    void
    beginCommittedStep(const arch::Emulator &emu, const CTrace &trace)
    {
        st.snaps.push_back(emu.snapshot());
        st.traceLen.push_back(static_cast<std::uint32_t>(trace.size()));
        st.writeMark.push_back(static_cast<std::uint32_t>(st.writes.size()));
    }

    void
    note(const arch::StepEffects &fx, const arch::Emulator &emu,
         unsigned depth)
    {
        for (std::uint32_t m = fx.regsRead; m != 0; m &= m - 1) {
            const unsigned r = static_cast<unsigned>(std::countr_zero(m));
            if (st.regFirstWrite[r] == kNever && st.regFirstRead[r] == kNever)
                st.regFirstRead[r] = step;
        }
        if (fx.didLoad) {
            for (unsigned i = 0; i < fx.memSize; ++i) {
                const Addr a = fx.memAddr + i;
                if (!st.map.inSandbox(a))
                    continue;
                const std::size_t off = a - st.map.sandboxBase;
                // A byte committed-written earlier holds a computed
                // value (equal across the batch up to the fork), not
                // initial state: neither a divergence source nor an
                // architecturally-read input offset.
                if (st.byteFirstWrite.get(off) != kNever)
                    continue;
                if (st.byteFirstRead.get(off) == kNever) {
                    st.byteFirstRead.set(off, step);
                    st.readBytes.push_back(
                        {static_cast<std::uint32_t>(off), step});
                }
                if (depth == 0)
                    st.readOffsets.push_back(off);
            }
        }
        if (fx.didStore && depth == 0) {
            for (unsigned i = 0; i < fx.memSize; ++i) {
                const Addr a = fx.memAddr + i;
                st.writes.push_back({a, emu.state().mem.readByte(a)});
                if (st.map.inSandbox(a)) {
                    const std::size_t off = a - st.map.sandboxBase;
                    if (st.byteFirstWrite.get(off) == kNever)
                        st.byteFirstWrite.set(off, step);
                }
            }
        }
        if (depth == 0) {
            for (std::uint32_t m = fx.regsWritten; m != 0; m &= m - 1) {
                const unsigned r = static_cast<unsigned>(std::countr_zero(m));
                if (st.regFirstWrite[r] == kNever)
                    st.regFirstWrite[r] = step;
            }
        }
    }

    void endCommittedStep() { ++step; }
};

void
LeakageModel::observeStep(const arch::StepEffects &fx, CTrace &trace) const
{
    if (spec_.observePc)
        trace.push_back({Obs::Kind::Pc, fx.pc});
    if (fx.didLoad && spec_.observeMemAddr)
        trace.push_back({Obs::Kind::LoadAddr, fx.memAddr});
    if (fx.didLoad && spec_.observeLoadValues)
        trace.push_back({Obs::Kind::LoadVal, fx.loadValue});
    if (fx.didStore && spec_.observeMemAddr)
        trace.push_back({Obs::Kind::StoreAddr, fx.memAddr});
}

void
LeakageModel::explore(arch::Emulator &emu, CTrace &trace, unsigned depth,
                      std::size_t wrong_idx, BatchTracker *tr) const
{
    trace.push_back({Obs::Kind::SpecStart, depth});
    emu.pushCheckpoint();
    emu.redirect(wrong_idx);
    runPath(emu, trace, depth, spec_.speculationWindow, tr);
    emu.rollbackCheckpoint();
    trace.push_back({Obs::Kind::SpecEnd, depth});
}

void
LeakageModel::runPath(arch::Emulator &emu, CTrace &trace, unsigned depth,
                      std::size_t budget, BatchTracker *tr) const
{
    for (std::size_t steps = 0; steps < budget && !emu.halted(); ++steps) {
        const std::size_t idx = emu.state().nextIdx;
        const bool is_cond = emu.program().inst(idx).isCondBranch();
        const bool alive = emu.step();
        if (tr)
            tr->note(emu.lastStep(), emu, depth);
        observeStep(emu.lastStep(), trace);
        if (!alive)
            break;
        if (is_cond && depth < spec_.maxNesting) {
            const auto &fx = emu.lastStep();
            const std::size_t wrong = fx.branchTaken
                                          ? idx + 1
                                          : emu.program().targetIdx(idx);
            explore(emu, trace, depth + 1, wrong, tr);
        }
    }
}

std::size_t
LeakageModel::collectLoop(arch::Emulator &emu, CTrace &trace,
                          std::size_t guard, BatchTracker *tr) const
{
    const isa::FlatProgram &prog = emu.program();
    std::size_t committed = 0;
    while (!emu.halted() && guard-- > 0) {
        const std::size_t idx = emu.state().nextIdx;
        const bool is_cond = prog.inst(idx).isCondBranch();
        if (tr)
            tr->beginCommittedStep(emu, trace);
        const bool alive = emu.step();
        if (tr)
            tr->note(emu.lastStep(), emu, 0);
        observeStep(emu.lastStep(), trace);
        ++committed;
        if (!alive) {
            if (tr)
                tr->endCommittedStep();
            break;
        }
        if (is_cond && spec_.exploreMispredictedBranches &&
            spec_.maxNesting > 0) {
            const auto &fx = emu.lastStep();
            const std::size_t wrong =
                fx.branchTaken ? idx + 1 : prog.targetIdx(idx);
            explore(emu, trace, 1, wrong, tr);
        }
        if (tr)
            tr->endCommittedStep();
    }
    return committed;
}

void
LeakageModel::collectInto(const isa::FlatProgram &prog,
                          const arch::Input &input,
                          const mem::AddressMap &map, CTrace &out) const
{
    arch::ArchState st;
    st.loadInput(input, map);
    arch::Emulator emu(prog, std::move(st));
    out.clear();
    collectLoop(emu, out, arch::Emulator::kDefaultMaxSteps, nullptr);
}

CTrace
LeakageModel::collect(const isa::FlatProgram &prog, const arch::Input &input,
                      const mem::AddressMap &map) const
{
    CTrace trace;
    collectInto(prog, input, map, trace);
    return trace;
}

std::vector<std::size_t>
LeakageModel::archReadOffsets(const isa::FlatProgram &prog,
                              const arch::Input &input,
                              const mem::AddressMap &map) const
{
    arch::ArchState st;
    st.loadInput(input, map);
    arch::Emulator emu(prog, std::move(st));

    std::vector<std::size_t> offsets;
    std::vector<Addr> written;
    std::size_t guard = arch::Emulator::kDefaultMaxSteps;
    while (guard-- > 0) {
        const bool alive = emu.step();
        const auto &fx = emu.lastStep();
        if (fx.didLoad) {
            for (unsigned i = 0; i < fx.memSize; ++i) {
                const Addr a = fx.memAddr + i;
                // A byte overwritten before this read does not expose its
                // *initial* value; siblings may randomize it. (This is
                // what leaves Spectre-v4's stale values mutable.)
                if (map.inSandbox(a) &&
                    std::find(written.begin(), written.end(), a) ==
                        written.end())
                    offsets.push_back(a - map.sandboxBase);
            }
        }
        if (fx.didStore) {
            for (unsigned i = 0; i < fx.memSize; ++i) {
                const Addr a = fx.memAddr + i;
                if (std::find(written.begin(), written.end(), a) ==
                    written.end())
                    written.push_back(a);
            }
        }
        if (!alive)
            break;
    }
    std::sort(offsets.begin(), offsets.end());
    offsets.erase(std::unique(offsets.begin(), offsets.end()),
                  offsets.end());
    return offsets;
}

const CTrace &
LeakageModel::batchBegin(const isa::FlatProgram &prog,
                         const arch::Input &base, const mem::AddressMap &map,
                         bool memo)
{
    BatchState &st = batch_;
    st.prog = &prog;
    st.map = map;
    st.base = base;
    st.memo = memo;
    st.emu.reset();
    st.baseTrace.clear();
    st.readOffsets.clear();
    st.snaps.clear();
    st.traceLen.clear();
    st.writeMark.clear();
    st.writes.clear();
    st.readBytes.clear();

    ++batchCounter_;
#ifndef NDEBUG
    st.audit = memo && batchCounter_ % kAuditEvery == 0;
#else
    st.audit = false;
#endif

    if (!memo) {
        // Cold mode: exactly the pre-memo behavior — one collect pass
        // plus the standalone offsets pass.
        collectInto(prog, base, map, st.baseTrace);
        st.readOffsets = archReadOffsets(prog, base, map);
        stats_.fullRuns += 2;
        return st.baseTrace;
    }

    st.regFirstRead.fill(kNever);
    st.regFirstWrite.fill(kNever);
    st.byteFirstRead.reset(map.sandboxSize());
    st.byteFirstWrite.reset(map.sandboxSize());

    arch::ArchState s;
    s.loadInput(base, map);
    st.emu.emplace(prog, std::move(s));
    st.emu->enableJournal();
    BatchTracker tracker{st};
    collectLoop(*st.emu, st.baseTrace, arch::Emulator::kDefaultMaxSteps,
                &tracker);
    ++stats_.fullRuns;

    std::sort(st.readOffsets.begin(), st.readOffsets.end());
    st.readOffsets.erase(
        std::unique(st.readOffsets.begin(), st.readOffsets.end()),
        st.readOffsets.end());

#ifndef NDEBUG
    if (st.audit) {
        assert(st.baseTrace == collect(prog, base, map));
        assert(st.readOffsets == archReadOffsets(prog, base, map));
    }
#endif
    return st.baseTrace;
}

std::uint32_t
LeakageModel::divergenceStep(const arch::Input &input) const
{
    const BatchState &st = batch_;
    if (input.flagsByte != st.base.flagsByte ||
        input.sandbox.size() != st.base.sandbox.size())
        return kColdRun;
    std::uint32_t div = kNever;
    for (unsigned r = 0; r < isa::kNumRegs; ++r) {
        if (pinnedReg(r))
            continue;
        if (input.regs[r] != st.base.regs[r])
            div = std::min(div, st.regFirstRead[r]);
    }
    // Only bytes the base pass first-read as initial state can diverge;
    // scan the compact read list instead of the whole sandbox. Offsets
    // beyond the initialized sandbox vector read as zero for every
    // input and cannot differ.
    const std::size_t n = input.sandbox.size();
    for (const ReadByte &rb : st.readBytes) {
        if (rb.step < div && rb.off < n &&
            input.sandbox[rb.off] != st.base.sandbox[rb.off])
            div = rb.step;
    }
    return div;
}

void
LeakageModel::forkTo(std::uint32_t step, const arch::Input &input)
{
    BatchState &st = batch_;
    arch::Emulator &emu = *st.emu;

    // Memory: rewind the journal (undoing every store since the last
    // sandbox image load, including non-sandbox ones), bulk-switch the
    // sandbox to @p input's initial image, then re-apply the base
    // pass's committed stores made before the fork step — their values
    // are computed from pre-divergence state, hence shared, and
    // re-applying them after the image switch supersedes the input
    // bytes they overwrote, in order. The bulk write deliberately
    // bypasses the journal: the sandbox image is swapped wholesale on
    // every fork, so only post-image-load stores need undo entries.
    emu.rewindAllWrites();
    if (!input.sandbox.empty()) {
        emu.state().mem.writeBytes(st.map.sandboxBase,
                                   input.sandbox.data(),
                                   input.sandbox.size());
    }
    const std::uint32_t wm = st.writeMark[step];
    for (std::uint32_t i = 0; i < wm; ++i)
        emu.pokeByte(st.writes[i].addr, st.writes[i].value);

    emu.restoreCpu(st.snaps[step]);
    // Registers: the snapshot holds the base pass's values; swap in the
    // input's wherever the base hadn't committed-overwritten them yet.
    auto &regs = emu.state().regs;
    for (unsigned r = 0; r < isa::kNumRegs; ++r) {
        if (pinnedReg(r))
            continue;
        if (input.regs[r] != st.base.regs[r] && st.regFirstWrite[r] >= step)
            regs[r] = input.regs[r];
    }
}

bool
LeakageModel::memoCollect(const arch::Input &input, CTrace &out)
{
    BatchState &st = batch_;
    const std::uint32_t div = divergenceStep(input);
    if (div == kColdRun)
        return false;
    ++stats_.memoHits;
    if (div == kNever) {
        out = st.baseTrace;
        return true;
    }
    out.clear();
    out.reserve(st.baseTrace.size() + 16);
    out.assign(st.baseTrace.begin(), st.baseTrace.begin() + st.traceLen[div]);
    forkTo(div, input);
    // The cold collect's step guard counts committed steps from zero;
    // start the replay with the remaining allowance so even programs
    // that hit the cap produce byte-identical traces.
    stats_.memoReplaySteps +=
        collectLoop(*st.emu, out, arch::Emulator::kDefaultMaxSteps - div,
                    nullptr);
    return true;
}

CTrace
LeakageModel::batchCollect(const arch::Input &input)
{
    BatchState &st = batch_;
    assert(st.prog != nullptr);
    CTrace out;
    if (!st.memo || !memoCollect(input, out)) {
        ++stats_.fullRuns;
        collectInto(*st.prog, input, st.map, out);
    }
#ifndef NDEBUG
    if (st.audit)
        assert(out == collect(*st.prog, input, st.map));
#endif
    return out;
}

bool
LeakageModel::batchMatchesBase(const arch::Input &input)
{
    BatchState &st = batch_;
    assert(st.prog != nullptr);
    bool equal;
    if (st.memo && divergenceStep(input) == kNever) {
        // No divergent location is ever read: the trace is the base
        // trace by construction, no execution needed.
        ++stats_.memoHits;
        equal = true;
    } else if (st.memo && memoCollect(input, scratch_)) {
        equal = scratch_ == st.baseTrace;
    } else {
        ++stats_.fullRuns;
        collectInto(*st.prog, input, st.map, scratch_);
        equal = scratch_ == st.baseTrace;
    }
#ifndef NDEBUG
    if (st.audit)
        assert(equal ==
               (collect(*st.prog, input, st.map) == st.baseTrace));
#endif
    return equal;
}

CTraceMemoStats
LeakageModel::takeBatchStats()
{
    const CTraceMemoStats out = stats_;
    stats_ = {};
    return out;
}

std::vector<CTrace>
LeakageModel::collectBatch(const isa::FlatProgram &prog,
                           const std::vector<arch::Input> &inputs,
                           const mem::AddressMap &map, bool memo)
{
    std::vector<CTrace> out;
    out.reserve(inputs.size());
    if (inputs.empty())
        return out;
    out.push_back(batchBegin(prog, inputs[0], map, memo));
    for (std::size_t i = 1; i < inputs.size(); ++i)
        out.push_back(batchCollect(inputs[i]));
    return out;
}

} // namespace amulet::contracts

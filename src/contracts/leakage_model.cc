#include "contracts/leakage_model.hh"

#include <algorithm>
#include <set>
#include <sstream>

namespace amulet::contracts
{

std::string
formatCTrace(const CTrace &trace)
{
    std::ostringstream os;
    unsigned depth = 0;
    auto indent = [&]() {
        for (unsigned i = 0; i < depth; ++i)
            os << "  ";
    };
    for (const Obs &o : trace) {
        switch (o.kind) {
          case Obs::Kind::Pc:
            indent();
            os << "pc 0x" << std::hex << o.value << std::dec << "\n";
            break;
          case Obs::Kind::LoadAddr:
            indent();
            os << "load 0x" << std::hex << o.value << std::dec << "\n";
            break;
          case Obs::Kind::StoreAddr:
            indent();
            os << "store 0x" << std::hex << o.value << std::dec << "\n";
            break;
          case Obs::Kind::LoadVal:
            indent();
            os << "val 0x" << std::hex << o.value << std::dec << "\n";
            break;
          case Obs::Kind::SpecStart:
            indent();
            os << "spec {\n";
            ++depth;
            break;
          case Obs::Kind::SpecEnd:
            if (depth)
                --depth;
            indent();
            os << "}\n";
            break;
        }
    }
    return os.str();
}

void
LeakageModel::observeStep(const arch::StepEffects &fx, CTrace &trace) const
{
    if (spec_.observePc)
        trace.push_back({Obs::Kind::Pc, fx.pc});
    if (fx.didLoad && spec_.observeMemAddr)
        trace.push_back({Obs::Kind::LoadAddr, fx.memAddr});
    if (fx.didLoad && spec_.observeLoadValues)
        trace.push_back({Obs::Kind::LoadVal, fx.loadValue});
    if (fx.didStore && spec_.observeMemAddr)
        trace.push_back({Obs::Kind::StoreAddr, fx.memAddr});
}

void
LeakageModel::explore(arch::Emulator &emu, CTrace &trace, unsigned depth,
                      std::size_t wrong_idx) const
{
    trace.push_back({Obs::Kind::SpecStart, depth});
    emu.pushCheckpoint();
    emu.redirect(wrong_idx);
    runPath(emu, trace, depth, spec_.speculationWindow);
    emu.rollbackCheckpoint();
    trace.push_back({Obs::Kind::SpecEnd, depth});
}

void
LeakageModel::runPath(arch::Emulator &emu, CTrace &trace, unsigned depth,
                      std::size_t budget) const
{
    for (std::size_t steps = 0; steps < budget && !emu.halted(); ++steps) {
        const std::size_t idx = emu.state().nextIdx;
        const bool is_cond = emu.program().inst(idx).isCondBranch();
        const bool alive = emu.step();
        observeStep(emu.lastStep(), trace);
        if (!alive)
            break;
        if (is_cond && depth < spec_.maxNesting) {
            const auto &fx = emu.lastStep();
            const std::size_t wrong = fx.branchTaken
                                          ? idx + 1
                                          : emu.program().targetIdx(idx);
            explore(emu, trace, depth + 1, wrong);
        }
    }
}

CTrace
LeakageModel::collect(const isa::FlatProgram &prog, const arch::Input &input,
                      const mem::AddressMap &map) const
{
    arch::ArchState st;
    st.loadInput(input, map);
    arch::Emulator emu(prog, std::move(st));

    CTrace trace;
    std::size_t guard = arch::Emulator::kDefaultMaxSteps;
    while (!emu.halted() && guard-- > 0) {
        const std::size_t idx = emu.state().nextIdx;
        const bool is_cond = prog.inst(idx).isCondBranch();
        const bool alive = emu.step();
        observeStep(emu.lastStep(), trace);
        if (!alive)
            break;
        if (is_cond && spec_.exploreMispredictedBranches &&
            spec_.maxNesting > 0) {
            const auto &fx = emu.lastStep();
            const std::size_t wrong =
                fx.branchTaken ? idx + 1 : prog.targetIdx(idx);
            explore(emu, trace, 1, wrong);
        }
    }
    return trace;
}

std::vector<std::size_t>
LeakageModel::archReadOffsets(const isa::FlatProgram &prog,
                              const arch::Input &input,
                              const mem::AddressMap &map) const
{
    arch::ArchState st;
    st.loadInput(input, map);
    arch::Emulator emu(prog, std::move(st));

    std::vector<std::size_t> offsets;
    std::set<Addr> written;
    std::size_t guard = arch::Emulator::kDefaultMaxSteps;
    while (guard-- > 0) {
        const bool alive = emu.step();
        const auto &fx = emu.lastStep();
        if (fx.didLoad) {
            for (unsigned i = 0; i < fx.memSize; ++i) {
                const Addr a = fx.memAddr + i;
                // A byte overwritten before this read does not expose its
                // *initial* value; siblings may randomize it. (This is
                // what leaves Spectre-v4's stale values mutable.)
                if (map.inSandbox(a) && !written.count(a))
                    offsets.push_back(a - map.sandboxBase);
            }
        }
        if (fx.didStore) {
            for (unsigned i = 0; i < fx.memSize; ++i)
                written.insert(fx.memAddr + i);
        }
        if (!alive)
            break;
    }
    std::sort(offsets.begin(), offsets.end());
    offsets.erase(std::unique(offsets.begin(), offsets.end()),
                  offsets.end());
    return offsets;
}

} // namespace amulet::contracts

#include "isa/disasm.hh"

#include <sstream>

namespace amulet::isa
{

namespace
{

const char *
sizeKeyword(unsigned width)
{
    switch (width) {
      case 1: return "byte";
      case 2: return "word";
      case 4: return "dword";
      default: return "qword";
    }
}

std::string
formatImm(std::int64_t imm)
{
    std::ostringstream os;
    if (imm < 0) {
        os << imm;
    } else if (imm >= 256 && ((imm + 1) & imm) == 0) {
        // All-ones masks print in binary, matching the paper's listings.
        os << "0b";
        bool started = false;
        for (int bit = 63; bit >= 0; --bit) {
            const bool set = (imm >> bit) & 1;
            if (set)
                started = true;
            if (started)
                os << (set ? '1' : '0');
        }
    } else if (imm >= 4096) {
        os << "0x" << std::hex << imm;
    } else {
        os << imm;
    }
    return os.str();
}

std::string
targetLabel(int target, const Program *prog)
{
    if (target == kTargetExit)
        return ".exit";
    if (prog && target >= 0 &&
        static_cast<std::size_t>(target) < prog->blocks.size() &&
        !prog->blocks[target].name.empty()) {
        return "." + prog->blocks[target].name;
    }
    return ".bb." + std::to_string(target);
}

} // namespace

std::string
formatMemOperand(const MemRef &mem, unsigned width)
{
    std::ostringstream os;
    os << sizeKeyword(width) << " ptr [" << regName(mem.base);
    if (mem.hasIndex)
        os << " + " << regName(mem.index);
    if (mem.disp > 0)
        os << " + " << formatImm(mem.disp);
    else if (mem.disp < 0)
        os << " - " << formatImm(-static_cast<std::int64_t>(mem.disp));
    os << "]";
    return os.str();
}

std::string
formatInst(const Inst &inst, const Program *prog)
{
    std::ostringstream os;
    os << inst.mnemonic();

    switch (inst.op) {
      case Op::Nop:
      case Op::Halt:
      case Op::Fence:
        return os.str();
      case Op::Jcc:
      case Op::Jmp:
      case Op::Loopne:
        os << " " << targetLabel(inst.target, prog);
        return os.str();
      default:
        break;
    }

    // Destination operand.
    const bool dst_is_mem = inst.dstKind == OpndKind::Mem;
    if (dst_is_mem) {
        os << " " << formatMemOperand(inst.mem, inst.width);
    } else if (inst.dstKind == OpndKind::Reg) {
        // MOVZX/MOVSX and LEA destinations are full-width registers.
        const unsigned dst_width =
            (inst.op == Op::Movzx || inst.op == Op::Movsx ||
             inst.op == Op::Lea)
                ? 8
                : (inst.op == Op::Set ? 1 : inst.width);
        os << " " << regNameWidth(inst.dst, dst_width);
    }

    // Source operand.
    if (inst.op == Op::Lea) {
        os << ", [" << regName(inst.mem.base);
        if (inst.mem.hasIndex)
            os << " + " << regName(inst.mem.index);
        if (inst.mem.disp != 0)
            os << " + " << formatImm(inst.mem.disp);
        os << "]";
        return os.str();
    }
    switch (inst.srcKind) {
      case OpndKind::Reg:
        os << ", " << regNameWidth(inst.src, inst.width);
        break;
      case OpndKind::Imm:
        os << ", " << formatImm(inst.imm);
        break;
      case OpndKind::Mem:
        os << ", " << formatMemOperand(inst.mem, inst.width);
        break;
      case OpndKind::None:
        break;
    }
    return os.str();
}

std::string
formatProgram(const Program &prog)
{
    std::ostringstream os;
    for (std::size_t b = 0; b < prog.blocks.size(); ++b) {
        const auto &bb = prog.blocks[b];
        os << "." << (bb.name.empty() ? "bb." + std::to_string(b) : bb.name)
           << ":\n";
        for (const auto &inst : bb.body)
            os << "    " << formatInst(inst, &prog) << "\n";
    }
    return os.str();
}

} // namespace amulet::isa

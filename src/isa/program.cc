#include "isa/program.hh"

#include <cassert>
#include <sstream>

namespace amulet::isa
{

std::size_t
Program::countInsts() const
{
    std::size_t n = 0;
    for (const auto &bb : blocks)
        n += bb.body.size();
    return n;
}

std::optional<std::string>
Program::validate() const
{
    if (blocks.empty())
        return "program has no blocks";
    for (std::size_t b = 0; b < blocks.size(); ++b) {
        for (std::size_t i = 0; i < blocks[b].body.size(); ++i) {
            const Inst &inst = blocks[b].body[i];
            if (!inst.isBranch())
                continue;
            if (inst.target == kTargetExit)
                continue;
            if (inst.target < 0 ||
                static_cast<std::size_t>(inst.target) >= blocks.size()) {
                std::ostringstream os;
                os << "block " << b << " inst " << i
                   << ": branch target out of range";
                return os.str();
            }
            if (static_cast<std::size_t>(inst.target) <= b) {
                std::ostringstream os;
                os << "block " << b << " inst " << i
                   << ": backward/self branch breaks the DAG shape";
                return os.str();
            }
        }
    }
    return std::nullopt;
}

FlatProgram::FlatProgram(const Program &prog, Addr code_base)
    : codeBase_(code_base)
{
    assert(!prog.validate() && "flattening an ill-formed program");

    // First pass: block start indices.
    std::vector<std::size_t> block_start(prog.blocks.size(), 0);
    std::size_t idx = 0;
    for (std::size_t b = 0; b < prog.blocks.size(); ++b) {
        block_start[b] = idx;
        idx += prog.blocks[b].body.size();
    }
    const std::size_t exit_idx = idx; // HALT position

    // Second pass: emit instructions and resolve targets.
    for (std::size_t b = 0; b < prog.blocks.size(); ++b) {
        const auto &bb = prog.blocks[b];
        for (std::size_t i = 0; i < bb.body.size(); ++i) {
            Inst inst = bb.body[i];
            std::size_t resolved = 0;
            if (inst.isBranch()) {
                resolved = inst.target == kTargetExit
                               ? exit_idx
                               : block_start[inst.target];
            }
            insts_.push_back(inst);
            targets_.push_back(resolved);
            std::ostringstream label;
            label << (bb.name.empty() ? ("bb." + std::to_string(b))
                                      : bb.name)
                  << "+" << i;
            labels_.push_back(label.str());
        }
    }

    Inst halt;
    halt.op = Op::Halt;
    insts_.push_back(halt);
    targets_.push_back(0);
    labels_.push_back("exit+0");
}

std::optional<std::size_t>
FlatProgram::idxOf(Addr pc) const
{
    if (pc < codeBase_ || pc >= codeEnd())
        return std::nullopt;
    const Addr off = pc - codeBase_;
    if (off % kInstBytes != 0)
        return std::nullopt;
    return off / kInstBytes;
}

std::string
FlatProgram::labelOf(std::size_t idx) const
{
    return idx < labels_.size() ? labels_[idx] : "?";
}

} // namespace amulet::isa

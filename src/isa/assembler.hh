/**
 * @file
 * Assembler: parses the listing syntax produced by the disassembler back
 * into a Program. Used by examples and tests (hand-written Spectre PoCs
 * are written as text, exactly like the paper's listings).
 */

#ifndef AMULET_ISA_ASSEMBLER_HH
#define AMULET_ISA_ASSEMBLER_HH

#include <stdexcept>
#include <string>

#include "isa/program.hh"

namespace amulet::isa
{

/** Thrown on malformed assembly input; carries line number + message. */
class AsmError : public std::runtime_error
{
  public:
    AsmError(std::size_t line, const std::string &msg)
        : std::runtime_error("line " + std::to_string(line) + ": " + msg),
          line_(line)
    {}

    std::size_t line() const { return line_; }

  private:
    std::size_t line_;
};

/**
 * Assemble a textual listing into a Program.
 *
 * Syntax (one instruction per line, `#` or `;` comments):
 *     .bb_main.0:
 *         AND RBX, 0b111111111111
 *         CMOVNBE SI, word ptr [R14 + RAX]
 *         JNE .bb_main.1
 *         JMP .exit
 *     .bb_main.1:
 *         ...
 *
 * Block labels begin with '.'; `.exit` is the implicit exit block.
 * Immediates accept decimal, 0x hex, and 0b binary.
 *
 * @throws AsmError on malformed input (including non-DAG control flow).
 */
Program assemble(const std::string &text);

} // namespace amulet::isa

#endif // AMULET_ISA_ASSEMBLER_HH

/**
 * @file
 * Pure value-level instruction semantics.
 *
 * Shared by the architectural emulator (leakage model) and the out-of-order
 * pipeline (executor) so that both agree exactly on results and flags — a
 * prerequisite for relational testing, and checked directly by the
 * emulator-vs-pipeline differential property tests.
 */

#ifndef AMULET_ISA_SEMANTICS_HH
#define AMULET_ISA_SEMANTICS_HH

#include <cstdint>

#include "isa/flags.hh"
#include "isa/inst.hh"

namespace amulet::isa
{

/** Result of evaluating a (non-branch, non-memory-side) operation. */
struct ExecResult
{
    std::uint64_t value = 0;   ///< destination value (already width-merged)
    Flags flags;               ///< resulting flags
    bool writesDst = false;    ///< destination register/memory is written
    bool writesFlags = false;
};

/**
 * Evaluate an instruction's data computation.
 *
 * @param inst     the instruction (ops Mov..Lea; not branches/Nop/Halt)
 * @param dst_old  prior value of the destination (register or memory)
 * @param src      resolved source value (register, immediate, or loaded)
 * @param addr     effective address (for Lea)
 * @param flags_in incoming flags (for Cmov/Set and flag pass-through)
 */
ExecResult evalOp(const Inst &inst, std::uint64_t dst_old, std::uint64_t src,
                  std::uint64_t addr, const Flags &flags_in);

/** Merge @p result into @p old_value per x86 width rules
 *  (8: full, 4: zero-extend, 2/1: insert into low bits). */
std::uint64_t mergeWidth(std::uint64_t old_value, std::uint64_t result,
                         unsigned width);

/** Compute ZF/SF/PF for a result at a width (CF/OF owned by evalOp). */
void setLogicFlags(Flags &flags, std::uint64_t result, unsigned width);

} // namespace amulet::isa

#endif // AMULET_ISA_SEMANTICS_HH

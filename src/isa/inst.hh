/**
 * @file
 * Instruction intermediate representation.
 *
 * AMuLeT test programs are sequences of x86-64-flavoured instructions. The
 * IR is structural (no binary encoding): one Inst per architectural
 * instruction, with an explicit operand shape. Memory-destination ALU
 * instructions (`OR byte ptr [R14+RDX], AL`) are modelled as a single Inst
 * that both loads and stores (read-modify-write), exactly the forms that
 * appear in the paper's violating test cases.
 */

#ifndef AMULET_ISA_INST_HH
#define AMULET_ISA_INST_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/flags.hh"
#include "isa/reg.hh"

namespace amulet::isa
{

/** Operation kinds. */
enum class Op : std::uint8_t
{
    Nop,
    Halt,   ///< end-of-test marker (the paper's `m5 exit`)
    Fence,  ///< LFENCE: blocks speculation past it
    Mov,    ///< dst <- src (any of reg/imm/mem on either side)
    Movzx,  ///< dst(64) <- zero-extended src of `width` bytes
    Movsx,  ///< dst(64) <- sign-extended src of `width` bytes
    Add,
    Sub,
    And,
    Or,
    Xor,
    Imul,
    Shl,
    Shr,
    Sar,
    Neg,    ///< unary; operand in dst
    Not,    ///< unary; operand in dst (flags unaffected)
    Cmp,    ///< flags-only subtract
    Test,   ///< flags-only and
    Cmov,   ///< conditional move; a memory source is always accessed (x86)
    Set,    ///< SETcc: dst low byte <- cond
    Lea,    ///< dst <- effective address of mem operand (no access)
    Jcc,    ///< conditional direct jump to a block
    Jmp,    ///< unconditional direct jump to a block
    Loopne, ///< RCX--; jump if RCX != 0 and !ZF (forward only here)
};

/** Operand kind for src/dst slots. */
enum class OpndKind : std::uint8_t
{
    None,
    Reg,
    Imm,
    Mem,
};

/** Memory operand: [base + index + disp]. */
struct MemRef
{
    Reg base = kSandboxBaseReg;
    bool hasIndex = false;
    Reg index = Reg::Rax;
    std::int32_t disp = 0;

    bool operator==(const MemRef &) const = default;
};

/** Branch-target sentinel: jump to the program's exit (HALT). */
inline constexpr int kTargetExit = -2;

/** One architectural instruction. */
struct Inst
{
    Op op = Op::Nop;
    Cond cond = Cond::E;       ///< for Jcc / Cmov / Set
    std::uint8_t width = 8;    ///< operand width in bytes (1/2/4/8)

    OpndKind dstKind = OpndKind::None;
    Reg dst = Reg::Rax;        ///< valid if dstKind == Reg
    OpndKind srcKind = OpndKind::None;
    Reg src = Reg::Rax;        ///< valid if srcKind == Reg
    std::int64_t imm = 0;      ///< valid if srcKind == Imm

    MemRef mem;                ///< valid if either operand kind is Mem
    int target = -1;           ///< block index for branches (or kTargetExit)
    bool lockPrefix = false;   ///< cosmetic LOCK prefix (paper listings)

    bool operator==(const Inst &) const = default;

    /** @name Classification */
    /// @{
    bool isBranch() const
    {
        return op == Op::Jcc || op == Op::Jmp || op == Op::Loopne;
    }
    bool isCondBranch() const
    {
        return op == Op::Jcc || op == Op::Loopne;
    }
    /** Reads memory (includes RMW and CMOV-from-memory). */
    bool isLoad() const
    {
        if (op == Op::Lea)
            return false;
        return srcKind == OpndKind::Mem ||
               (dstKind == OpndKind::Mem && isRmw());
    }
    /** Writes memory (plain stores and RMW). */
    bool isStore() const
    {
        return op != Op::Lea && dstKind == OpndKind::Mem;
    }
    /** Memory-destination ALU op: load + compute + store. */
    bool isRmw() const
    {
        return dstKind == OpndKind::Mem && op != Op::Mov && op != Op::Lea;
    }
    bool isMemAccess() const { return isLoad() || isStore(); }
    bool isSerializing() const { return op == Op::Fence; }
    /// @}

    /** Does this instruction write the status flags? */
    bool writesFlags() const;

    /** Does this instruction read the status flags? */
    bool readsFlags() const;

    /** Architectural registers read (dedup'd, excludes flags). */
    std::vector<Reg> regsRead() const;

    /** Architectural registers written (dedup'd, excludes flags). */
    std::vector<Reg> regsWritten() const;

    /** Mnemonic including condition suffix, e.g. "CMOVNBE". */
    std::string mnemonic() const;
};

/** Base mnemonic of an op (no condition suffix). */
const char *opName(Op op);

} // namespace amulet::isa

#endif // AMULET_ISA_INST_HH

#include "isa/semantics.hh"

#include <cassert>

#include "common/bitutil.hh"

namespace amulet::isa
{

namespace
{

bool
parityEven(std::uint64_t v)
{
    v &= 0xff;
    v ^= v >> 4;
    v ^= v >> 2;
    v ^= v >> 1;
    return (v & 1) == 0;
}

bool
msb(std::uint64_t v, unsigned width)
{
    return (v >> (width * 8 - 1)) & 1;
}

} // namespace

std::uint64_t
mergeWidth(std::uint64_t old_value, std::uint64_t result, unsigned width)
{
    switch (width) {
      case 8:
        return result;
      case 4:
        return result & 0xffffffffULL; // 32-bit writes zero-extend
      default: {
        const std::uint64_t mask = lowMask(width * 8);
        return (old_value & ~mask) | (result & mask);
      }
    }
}

void
setLogicFlags(Flags &flags, std::uint64_t result, unsigned width)
{
    const std::uint64_t r = truncateToSize(result, width);
    flags.zf = r == 0;
    flags.sf = msb(r, width);
    flags.pf = parityEven(r);
}

ExecResult
evalOp(const Inst &inst, std::uint64_t dst_old, std::uint64_t src,
       std::uint64_t addr, const Flags &flags_in)
{
    ExecResult out;
    out.flags = flags_in;
    const unsigned width = inst.width;
    const std::uint64_t a = truncateToSize(dst_old, width);
    const std::uint64_t b = truncateToSize(src, width);
    const unsigned bits = width * 8;

    auto arith_sub = [&](std::uint64_t x, std::uint64_t y) {
        const std::uint64_t r = truncateToSize(x - y, width);
        out.flags.cf = x < y;
        out.flags.of = msb((x ^ y) & (x ^ r), width);
        setLogicFlags(out.flags, r, width);
        out.writesFlags = true;
        return r;
    };

    switch (inst.op) {
      case Op::Mov:
        out.value = mergeWidth(dst_old, b, width);
        out.writesDst = true;
        break;
      case Op::Movzx:
        out.value = b; // already truncated to source width
        out.writesDst = true;
        break;
      case Op::Movsx:
        out.value = static_cast<std::uint64_t>(signExtend(b, bits));
        out.writesDst = true;
        break;
      case Op::Add: {
        const std::uint64_t r = truncateToSize(a + b, width);
        out.flags.cf = r < a || (width == 8 && a + b < a);
        if (width < 8)
            out.flags.cf = (a + b) >> bits;
        out.flags.of = msb(~(a ^ b) & (a ^ r), width);
        setLogicFlags(out.flags, r, width);
        out.value = mergeWidth(dst_old, r, width);
        out.writesDst = true;
        out.writesFlags = true;
        break;
      }
      case Op::Sub: {
        const std::uint64_t r = arith_sub(a, b);
        out.value = mergeWidth(dst_old, r, width);
        out.writesDst = true;
        break;
      }
      case Op::Cmp:
        arith_sub(a, b);
        break;
      case Op::And:
      case Op::Test: {
        const std::uint64_t r = truncateToSize(a & b, width);
        out.flags.cf = false;
        out.flags.of = false;
        setLogicFlags(out.flags, r, width);
        out.writesFlags = true;
        if (inst.op == Op::And) {
            out.value = mergeWidth(dst_old, r, width);
            out.writesDst = true;
        }
        break;
      }
      case Op::Or:
      case Op::Xor: {
        const std::uint64_t r = truncateToSize(
            inst.op == Op::Or ? (a | b) : (a ^ b), width);
        out.flags.cf = false;
        out.flags.of = false;
        setLogicFlags(out.flags, r, width);
        out.value = mergeWidth(dst_old, r, width);
        out.writesDst = true;
        out.writesFlags = true;
        break;
      }
      case Op::Imul: {
        const auto sa = signExtend(a, bits);
        const auto sb = signExtend(b, bits);
        const __int128 full = static_cast<__int128>(sa) * sb;
        const std::uint64_t r =
            truncateToSize(static_cast<std::uint64_t>(full), width);
        const bool overflow =
            full != static_cast<__int128>(signExtend(r, bits));
        out.flags.cf = overflow;
        out.flags.of = overflow;
        setLogicFlags(out.flags, r, width);
        out.value = mergeWidth(dst_old, r, width);
        out.writesDst = true;
        out.writesFlags = true;
        break;
      }
      case Op::Shl:
      case Op::Shr:
      case Op::Sar: {
        const unsigned count =
            static_cast<unsigned>(src) & (width == 8 ? 63 : 31);
        std::uint64_t r;
        bool cf = out.flags.cf;
        if (count == 0) {
            r = a;
        } else if (count >= bits) {
            cf = inst.op == Op::Sar ? msb(a, width) : false;
            r = inst.op == Op::Sar && msb(a, width) ? lowMask(bits) : 0;
        } else if (inst.op == Op::Shl) {
            cf = (a >> (bits - count)) & 1;
            r = truncateToSize(a << count, width);
        } else if (inst.op == Op::Shr) {
            cf = (a >> (count - 1)) & 1;
            r = a >> count;
        } else { // Sar
            cf = (a >> (count - 1)) & 1;
            r = truncateToSize(
                static_cast<std::uint64_t>(signExtend(a, bits) >>
                                           count),
                width);
        }
        out.flags.cf = cf;
        out.flags.of = false;
        setLogicFlags(out.flags, r, width);
        out.value = mergeWidth(dst_old, r, width);
        out.writesDst = true;
        out.writesFlags = true;
        break;
      }
      case Op::Neg: {
        const std::uint64_t r = truncateToSize(0 - a, width);
        out.flags.cf = a != 0;
        out.flags.of = msb(a & r, width);
        setLogicFlags(out.flags, r, width);
        out.value = mergeWidth(dst_old, r, width);
        out.writesDst = true;
        out.writesFlags = true;
        break;
      }
      case Op::Not:
        out.value = mergeWidth(dst_old, truncateToSize(~a, width), width);
        out.writesDst = true;
        break;
      case Op::Cmov: {
        const std::uint64_t r = condEval(inst.cond, flags_in) ? b : a;
        out.value = mergeWidth(dst_old, r, width);
        out.writesDst = true;
        break;
      }
      case Op::Set:
        out.value = mergeWidth(dst_old,
                               condEval(inst.cond, flags_in) ? 1 : 0, 1);
        out.writesDst = true;
        break;
      case Op::Lea:
        out.value = addr;
        out.writesDst = true;
        break;
      default:
        assert(false && "evalOp called on a non-data instruction");
    }
    return out;
}

} // namespace amulet::isa

#include "isa/flags.hh"

#include <algorithm>
#include <array>
#include <cctype>

namespace amulet::isa
{

namespace
{

constexpr std::array<const char *, kNumConds> kCondNames = {
    "E", "NE", "S", "NS", "O", "NO", "P", "NP",
    "B", "NB", "BE", "NBE", "L", "GE", "LE", "G",
};

} // namespace

const char *
condName(Cond c)
{
    return kCondNames[static_cast<unsigned>(c)];
}

std::optional<Cond>
parseCond(const std::string &name)
{
    std::string n = name;
    std::transform(n.begin(), n.end(), n.begin(),
                   [](unsigned char ch) { return std::toupper(ch); });
    // Common x86 aliases.
    if (n == "Z") n = "E";
    if (n == "NZ") n = "NE";
    if (n == "A") n = "NBE";
    if (n == "AE") n = "NB";
    if (n == "NA") n = "BE";
    if (n == "C") n = "B";
    if (n == "NC") n = "NB";
    if (n == "NL") n = "GE";
    if (n == "NG") n = "LE";
    if (n == "NGE") n = "L";
    if (n == "NLE") n = "G";
    for (unsigned i = 0; i < kNumConds; ++i) {
        if (n == kCondNames[i])
            return static_cast<Cond>(i);
    }
    return std::nullopt;
}

} // namespace amulet::isa

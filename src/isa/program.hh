/**
 * @file
 * Test-program representation: basic blocks and the flattened,
 * PC-addressed form consumed by the emulator and the simulator.
 *
 * Programs follow the paper's shape: up to a handful of basic blocks linked
 * by forward jumps into a DAG (§3.1), so architectural execution always
 * terminates. Flattening lays blocks out consecutively, appends the exit
 * HALT, assigns each instruction a fixed-size 4-byte slot, and resolves
 * block-index branch targets to instruction indices.
 */

#ifndef AMULET_ISA_PROGRAM_HH
#define AMULET_ISA_PROGRAM_HH

#include <optional>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/inst.hh"

namespace amulet::isa
{

/** A named straight-line sequence of instructions. */
struct BasicBlock
{
    std::string name;
    std::vector<Inst> body;
};

/** A test program: entry block first, control flow is a forward DAG. */
struct Program
{
    std::vector<BasicBlock> blocks;

    /** Total instruction count across blocks (excluding the exit HALT). */
    std::size_t countInsts() const;

    /**
     * Validate the DAG shape: every branch targets a strictly later block
     * or the exit. Returns an error message, or nullopt if well-formed.
     */
    std::optional<std::string> validate() const;
};

/**
 * Flattened program with resolved branch targets and assigned PCs.
 *
 * Every instruction occupies kInstBytes; the final instruction is always
 * HALT (the test's `m5 exit`). PCs beyond the program decode as NOPs so
 * that runahead fetch on the predicted path is well-defined.
 */
class FlatProgram
{
  public:
    /** Bytes per instruction slot. */
    static constexpr unsigned kInstBytes = 4;

    /** Flatten @p prog with code placed at @p code_base. */
    FlatProgram(const Program &prog, Addr code_base);

    /** Number of instructions including the final HALT. */
    std::size_t numInsts() const { return insts_.size(); }

    /** Instruction at linear index @p idx. */
    const Inst &inst(std::size_t idx) const { return insts_[idx]; }

    /** Resolved branch-target instruction index for instruction @p idx. */
    std::size_t targetIdx(std::size_t idx) const { return targets_[idx]; }

    /** PC of instruction @p idx. */
    Addr pcOf(std::size_t idx) const { return codeBase_ + idx * kInstBytes; }

    /** Index for a PC inside the program, if any. */
    std::optional<std::size_t> idxOf(Addr pc) const;

    /** PC of the resolved branch target of instruction @p idx. */
    Addr targetPcOf(std::size_t idx) const { return pcOf(targetIdx(idx)); }

    /** First code byte. */
    Addr codeBase() const { return codeBase_; }

    /** One past the last code byte. */
    Addr codeEnd() const { return codeBase_ + numInsts() * kInstBytes; }

    /** Index of the exit HALT (always the last instruction). */
    std::size_t haltIdx() const { return insts_.size() - 1; }

    /** Label for an instruction index ("bb_main.2+3"), for reports. */
    std::string labelOf(std::size_t idx) const;

  private:
    Addr codeBase_;
    std::vector<Inst> insts_;
    std::vector<std::size_t> targets_;       ///< per-inst resolved target
    std::vector<std::string> labels_;        ///< per-inst "block+offset"
};

} // namespace amulet::isa

#endif // AMULET_ISA_PROGRAM_HH

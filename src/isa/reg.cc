#include "isa/reg.hh"

#include <algorithm>
#include <array>
#include <cctype>

namespace amulet::isa
{

namespace
{

/// Names of the low-numbered ("legacy") registers per width.
struct LegacyNames
{
    const char *q; ///< 64-bit
    const char *d; ///< 32-bit
    const char *w; ///< 16-bit
    const char *b; ///< 8-bit (low byte)
};

constexpr std::array<LegacyNames, 8> kLegacy = {{
    {"RAX", "EAX", "AX", "AL"},
    {"RBX", "EBX", "BX", "BL"},
    {"RCX", "ECX", "CX", "CL"},
    {"RDX", "EDX", "DX", "DL"},
    {"RSI", "ESI", "SI", "SIL"},
    {"RDI", "EDI", "DI", "DIL"},
    {"RBP", "EBP", "BP", "BPL"},
    {"RSP", "ESP", "SP", "SPL"},
}};

std::string
upper(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::toupper(c); });
    return s;
}

} // namespace

const char *
regName(Reg r)
{
    const unsigned i = regIndex(r);
    if (i < 8)
        return kLegacy[i].q;
    static constexpr std::array<const char *, 8> high = {
        "R8", "R9", "R10", "R11", "R12", "R13", "R14", "R15"};
    return high[i - 8];
}

std::string
regNameWidth(Reg r, unsigned width)
{
    const unsigned i = regIndex(r);
    if (i < 8) {
        switch (width) {
          case 8: return kLegacy[i].q;
          case 4: return kLegacy[i].d;
          case 2: return kLegacy[i].w;
          default: return kLegacy[i].b;
        }
    }
    std::string base = regName(r);
    switch (width) {
      case 8: return base;
      case 4: return base + "D";
      case 2: return base + "W";
      default: return base + "B";
    }
}

std::optional<Reg>
parseReg(const std::string &name, unsigned *width_out)
{
    const std::string n = upper(name);
    for (unsigned i = 0; i < kNumRegs; ++i) {
        const Reg r = regFromIndex(i);
        for (unsigned width : {8u, 4u, 2u, 1u}) {
            if (regNameWidth(r, width) == n) {
                if (width_out)
                    *width_out = width;
                return r;
            }
        }
    }
    return std::nullopt;
}

} // namespace amulet::isa

#include "isa/inst.hh"

#include <algorithm>

namespace amulet::isa
{

const char *
opName(Op op)
{
    switch (op) {
      case Op::Nop:    return "NOP";
      case Op::Halt:   return "HLT";
      case Op::Fence:  return "LFENCE";
      case Op::Mov:    return "MOV";
      case Op::Movzx:  return "MOVZX";
      case Op::Movsx:  return "MOVSX";
      case Op::Add:    return "ADD";
      case Op::Sub:    return "SUB";
      case Op::And:    return "AND";
      case Op::Or:     return "OR";
      case Op::Xor:    return "XOR";
      case Op::Imul:   return "IMUL";
      case Op::Shl:    return "SHL";
      case Op::Shr:    return "SHR";
      case Op::Sar:    return "SAR";
      case Op::Neg:    return "NEG";
      case Op::Not:    return "NOT";
      case Op::Cmp:    return "CMP";
      case Op::Test:   return "TEST";
      case Op::Cmov:   return "CMOV";
      case Op::Set:    return "SET";
      case Op::Lea:    return "LEA";
      case Op::Jcc:    return "J";
      case Op::Jmp:    return "JMP";
      case Op::Loopne: return "LOOPNE";
    }
    return "?";
}

bool
Inst::writesFlags() const
{
    switch (op) {
      case Op::Add:
      case Op::Sub:
      case Op::And:
      case Op::Or:
      case Op::Xor:
      case Op::Imul:
      case Op::Shl:
      case Op::Shr:
      case Op::Sar:
      case Op::Neg:
      case Op::Cmp:
      case Op::Test:
        return true;
      default:
        return false;
    }
}

bool
Inst::readsFlags() const
{
    switch (op) {
      case Op::Cmov:
      case Op::Set:
      case Op::Jcc:
      case Op::Loopne: // reads ZF
        return true;
      default:
        return false;
    }
}

std::vector<Reg>
Inst::regsRead() const
{
    std::vector<Reg> regs;
    auto push = [&regs](Reg r) {
        if (std::find(regs.begin(), regs.end(), r) == regs.end())
            regs.push_back(r);
    };

    if (srcKind == OpndKind::Reg)
        push(src);
    if (srcKind == OpndKind::Mem || dstKind == OpndKind::Mem) {
        push(mem.base);
        if (mem.hasIndex)
            push(mem.index);
    }

    // Register destinations that read their old value: RMW ALU forms,
    // partial-width writes (merge into low bits), CMOV (may keep old value),
    // SETcc (writes only the low byte), and unary NEG/NOT.
    if (dstKind == OpndKind::Reg) {
        const bool alu_rmw =
            op == Op::Add || op == Op::Sub || op == Op::And || op == Op::Or ||
            op == Op::Xor || op == Op::Imul || op == Op::Shl ||
            op == Op::Shr || op == Op::Sar || op == Op::Neg || op == Op::Not;
        const bool partial =
            (op == Op::Mov || op == Op::Cmov) && width < 4;
        if (alu_rmw || partial || op == Op::Cmov || op == Op::Set)
            push(dst);
    }

    if (op == Op::Loopne)
        push(Reg::Rcx);

    // CMP/TEST read both operands; their "dst" slot is a read-only operand.
    if ((op == Op::Cmp || op == Op::Test) && dstKind == OpndKind::Reg)
        push(dst);

    return regs;
}

std::vector<Reg>
Inst::regsWritten() const
{
    std::vector<Reg> regs;
    if (dstKind == OpndKind::Reg && op != Op::Cmp && op != Op::Test &&
        !isBranch() && op != Op::Nop && op != Op::Halt && op != Op::Fence) {
        regs.push_back(dst);
    }
    if (op == Op::Loopne)
        regs.push_back(Reg::Rcx);
    return regs;
}

std::string
Inst::mnemonic() const
{
    std::string m = opName(op);
    if (op == Op::Jcc || op == Op::Cmov || op == Op::Set)
        m += condName(cond);
    if (lockPrefix)
        m = "LOCK " + m;
    return m;
}

} // namespace amulet::isa

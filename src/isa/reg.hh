/**
 * @file
 * Architectural register file definition.
 *
 * AMuLeT's test programs use an x86-64-flavoured register set. Register
 * R14 is reserved as the memory-sandbox base pointer (as in the paper's
 * listings: accesses have the form `[R14 + reg]`), and RSP is never used
 * by generated code.
 */

#ifndef AMULET_ISA_REG_HH
#define AMULET_ISA_REG_HH

#include <cstdint>
#include <optional>
#include <string>

namespace amulet::isa
{

/** Number of architectural general-purpose registers. */
inline constexpr unsigned kNumRegs = 16;

/** General-purpose registers (x86-64 names). */
enum class Reg : std::uint8_t
{
    Rax = 0,
    Rbx,
    Rcx,
    Rdx,
    Rsi,
    Rdi,
    Rbp,
    Rsp,
    R8,
    R9,
    R10,
    R11,
    R12,
    R13,
    R14, ///< sandbox base pointer by convention
    R15,
};

/** Register reserved as the sandbox base in all generated programs. */
inline constexpr Reg kSandboxBaseReg = Reg::R14;

/** Index of a register (0..15). */
constexpr unsigned
regIndex(Reg r)
{
    return static_cast<unsigned>(r);
}

/** Register from an index (asserted in-range by callers). */
constexpr Reg
regFromIndex(unsigned idx)
{
    return static_cast<Reg>(idx & 0xf);
}

/** Canonical (64-bit) register name, e.g. "RAX". */
const char *regName(Reg r);

/**
 * Name of a register at an access width, following x86 conventions:
 * width 8 -> RAX, 4 -> EAX, 2 -> AX, 1 -> AL (and R8/R8D/R8W/R8B).
 */
std::string regNameWidth(Reg r, unsigned width);

/**
 * Parse a register name at any width. Returns the register and, through
 * @p width_out (if non-null), the operand width implied by the name.
 */
std::optional<Reg> parseReg(const std::string &name,
                            unsigned *width_out = nullptr);

} // namespace amulet::isa

#endif // AMULET_ISA_REG_HH

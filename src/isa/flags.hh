/**
 * @file
 * Status flags and condition codes (x86-64 subset).
 */

#ifndef AMULET_ISA_FLAGS_HH
#define AMULET_ISA_FLAGS_HH

#include <cstdint>
#include <optional>
#include <string>

namespace amulet::isa
{

/** Architectural status flags. */
struct Flags
{
    bool zf = false; ///< zero
    bool sf = false; ///< sign
    bool cf = false; ///< carry
    bool of = false; ///< overflow
    bool pf = false; ///< parity (of low result byte)

    bool operator==(const Flags &) const = default;

    /** Pack into a byte (for inputs / hashing). */
    std::uint8_t
    pack() const
    {
        return static_cast<std::uint8_t>(zf | (sf << 1) | (cf << 2) |
                                         (of << 3) | (pf << 4));
    }

    /** Unpack from a byte. */
    static Flags
    unpack(std::uint8_t b)
    {
        Flags f;
        f.zf = b & 1;
        f.sf = b & 2;
        f.cf = b & 4;
        f.of = b & 8;
        f.pf = b & 16;
        return f;
    }
};

/** Condition codes for Jcc / CMOVcc / SETcc / LOOPcc. */
enum class Cond : std::uint8_t
{
    E,   ///< equal (ZF)
    NE,  ///< not equal (!ZF)
    S,   ///< sign (SF)
    NS,  ///< no sign (!SF)
    O,   ///< overflow (OF)
    NO,  ///< no overflow (!OF)
    P,   ///< parity (PF)
    NP,  ///< no parity (!PF)
    B,   ///< below (CF)            unsigned <
    NB,  ///< not below (!CF)       unsigned >=
    BE,  ///< below/equal (CF|ZF)   unsigned <=
    NBE, ///< above (!CF & !ZF)     unsigned >
    L,   ///< less (SF != OF)       signed <
    GE,  ///< greater/equal         signed >=
    LE,  ///< less/equal            signed <=
    G,   ///< greater               signed >
};

/** Number of condition codes. */
inline constexpr unsigned kNumConds = 16;

/** Evaluate a condition against flags. */
constexpr bool
condEval(Cond c, const Flags &f)
{
    switch (c) {
      case Cond::E:   return f.zf;
      case Cond::NE:  return !f.zf;
      case Cond::S:   return f.sf;
      case Cond::NS:  return !f.sf;
      case Cond::O:   return f.of;
      case Cond::NO:  return !f.of;
      case Cond::P:   return f.pf;
      case Cond::NP:  return !f.pf;
      case Cond::B:   return f.cf;
      case Cond::NB:  return !f.cf;
      case Cond::BE:  return f.cf || f.zf;
      case Cond::NBE: return !f.cf && !f.zf;
      case Cond::L:   return f.sf != f.of;
      case Cond::GE:  return f.sf == f.of;
      case Cond::LE:  return f.zf || (f.sf != f.of);
      case Cond::G:   return !f.zf && (f.sf == f.of);
    }
    return false;
}

/** Condition-code suffix, e.g. "NBE". */
const char *condName(Cond c);

/** Parse a condition-code suffix. */
std::optional<Cond> parseCond(const std::string &name);

} // namespace amulet::isa

#endif // AMULET_ISA_FLAGS_HH

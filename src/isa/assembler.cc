#include "isa/assembler.hh"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>
#include <vector>

#include "isa/disasm.hh"

namespace amulet::isa
{

namespace
{

std::string
upper(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::toupper(c); });
    return s;
}

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

/// Split "DST, SRC" respecting brackets.
std::vector<std::string>
splitOperands(const std::string &s)
{
    std::vector<std::string> out;
    std::string cur;
    int depth = 0;
    for (char c : s) {
        if (c == '[')
            ++depth;
        if (c == ']')
            --depth;
        if (c == ',' && depth == 0) {
            out.push_back(trim(cur));
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!trim(cur).empty())
        out.push_back(trim(cur));
    return out;
}

std::int64_t
parseImm(const std::string &tok, std::size_t line)
{
    std::string t = trim(tok);
    bool neg = false;
    if (!t.empty() && (t[0] == '-' || t[0] == '+')) {
        neg = t[0] == '-';
        t = t.substr(1);
    }
    if (t.empty())
        throw AsmError(line, "empty immediate");
    std::uint64_t v = 0;
    try {
        if (t.size() > 2 && t[0] == '0' && (t[1] == 'x' || t[1] == 'X'))
            v = std::stoull(t.substr(2), nullptr, 16);
        else if (t.size() > 2 && t[0] == '0' && (t[1] == 'b' || t[1] == 'B'))
            v = std::stoull(t.substr(2), nullptr, 2);
        else
            v = std::stoull(t, nullptr, 10);
    } catch (const std::exception &) {
        throw AsmError(line, "bad immediate '" + tok + "'");
    }
    auto sv = static_cast<std::int64_t>(v);
    return neg ? -sv : sv;
}

struct ParsedOperand
{
    OpndKind kind = OpndKind::None;
    Reg reg = Reg::Rax;
    unsigned regWidth = 8;
    std::int64_t imm = 0;
    MemRef mem;
    unsigned memWidth = 8;
    bool isLabel = false;
    std::string label;
};

ParsedOperand
parseOperand(const std::string &tok, std::size_t line)
{
    ParsedOperand p;
    std::string t = trim(tok);
    if (t.empty())
        throw AsmError(line, "empty operand");

    if (t[0] == '.') {
        p.isLabel = true;
        p.label = t.substr(1);
        return p;
    }

    // Memory operand: "[...]" optionally preceded by "<size> ptr".
    std::string u = upper(t);
    unsigned width = 8;
    bool has_size = false;
    for (auto [kw, w] : {std::pair<const char *, unsigned>{"BYTE", 1},
                         {"WORD", 2},
                         {"DWORD", 4},
                         {"QWORD", 8}}) {
        const std::string prefix = std::string(kw) + " PTR";
        if (u.rfind(prefix, 0) == 0) {
            width = w;
            has_size = true;
            t = trim(t.substr(prefix.size()));
            u = upper(t);
            break;
        }
    }
    if (!t.empty() && t[0] == '[') {
        if (t.back() != ']')
            throw AsmError(line, "unterminated memory operand");
        p.kind = OpndKind::Mem;
        p.memWidth = width;
        std::string inner = t.substr(1, t.size() - 2);
        // Split on +/- at top level.
        std::vector<std::pair<char, std::string>> terms;
        char sign = '+';
        std::string cur;
        for (char c : inner) {
            if (c == '+' || c == '-') {
                if (!trim(cur).empty())
                    terms.emplace_back(sign, trim(cur));
                sign = c;
                cur.clear();
            } else {
                cur += c;
            }
        }
        if (!trim(cur).empty())
            terms.emplace_back(sign, trim(cur));
        bool have_base = false;
        for (auto &[sgn, term] : terms) {
            unsigned rw = 8;
            if (auto r = parseReg(term, &rw)) {
                if (sgn == '-')
                    throw AsmError(line, "negative register in address");
                if (!have_base) {
                    p.mem.base = *r;
                    have_base = true;
                } else if (!p.mem.hasIndex) {
                    p.mem.hasIndex = true;
                    p.mem.index = *r;
                } else {
                    throw AsmError(line, "too many address registers");
                }
            } else {
                std::int64_t d = parseImm(term, line);
                p.mem.disp += static_cast<std::int32_t>(sgn == '-' ? -d : d);
            }
        }
        if (!have_base)
            throw AsmError(line, "memory operand needs a base register");
        return p;
    }
    if (has_size)
        throw AsmError(line, "size keyword without memory operand");

    unsigned rw = 8;
    if (auto r = parseReg(t, &rw)) {
        p.kind = OpndKind::Reg;
        p.reg = *r;
        p.regWidth = rw;
        return p;
    }

    p.kind = OpndKind::Imm;
    p.imm = parseImm(t, line);
    return p;
}

/// Mnemonic table for ops without condition suffixes.
const std::map<std::string, Op> &
plainOps()
{
    static const std::map<std::string, Op> table = {
        {"NOP", Op::Nop},     {"HLT", Op::Halt},    {"HALT", Op::Halt},
        {"LFENCE", Op::Fence}, {"MFENCE", Op::Fence},
        {"MOV", Op::Mov},     {"MOVZX", Op::Movzx}, {"MOVSX", Op::Movsx},
        {"ADD", Op::Add},     {"SUB", Op::Sub},     {"AND", Op::And},
        {"OR", Op::Or},       {"XOR", Op::Xor},     {"IMUL", Op::Imul},
        {"SHL", Op::Shl},     {"SHR", Op::Shr},     {"SAR", Op::Sar},
        {"NEG", Op::Neg},     {"NOT", Op::Not},     {"CMP", Op::Cmp},
        {"TEST", Op::Test},   {"LEA", Op::Lea},     {"JMP", Op::Jmp},
        {"LOOPNE", Op::Loopne}, {"LOOPNZ", Op::Loopne},
    };
    return table;
}

} // namespace

Program
assemble(const std::string &text)
{
    Program prog;
    std::map<std::string, int> block_index;      // name -> index
    struct Fixup
    {
        std::size_t block;
        std::size_t inst;
        std::string label;
        std::size_t line;
    };
    std::vector<Fixup> fixups;

    std::istringstream in(text);
    std::string raw;
    std::size_t line_no = 0;

    auto current_block = [&prog]() -> BasicBlock & {
        if (prog.blocks.empty())
            prog.blocks.push_back({"bb_main.0", {}});
        return prog.blocks.back();
    };

    while (std::getline(in, raw)) {
        ++line_no;
        std::string line = raw;
        // Strip comments.
        for (char cc : {'#', ';'}) {
            auto pos = line.find(cc);
            if (pos != std::string::npos)
                line = line.substr(0, pos);
        }
        line = trim(line);
        if (line.empty())
            continue;

        // Label line: ".name:".
        if (line[0] == '.' && line.back() == ':') {
            std::string name = line.substr(1, line.size() - 2);
            if (name == "exit")
                throw AsmError(line_no, ".exit is reserved");
            if (block_index.count(name))
                throw AsmError(line_no, "duplicate label ." + name);
            block_index[name] = static_cast<int>(prog.blocks.size());
            prog.blocks.push_back({name, {}});
            continue;
        }

        // Mnemonic and operand text.
        std::string lock_less = line;
        bool lock = false;
        if (upper(line).rfind("LOCK ", 0) == 0) {
            lock = true;
            lock_less = trim(line.substr(5));
        }
        auto sp = lock_less.find_first_of(" \t");
        std::string mnem = upper(sp == std::string::npos
                                     ? lock_less
                                     : lock_less.substr(0, sp));
        std::string rest =
            sp == std::string::npos ? "" : trim(lock_less.substr(sp));

        Inst inst;
        inst.lockPrefix = lock;

        // Decode the op (with condition suffix for J/CMOV/SET).
        auto plain = plainOps().find(mnem);
        if (plain != plainOps().end()) {
            inst.op = plain->second;
        } else if (mnem.size() > 1 && mnem[0] == 'J') {
            auto cond = parseCond(mnem.substr(1));
            if (!cond)
                throw AsmError(line_no, "unknown mnemonic " + mnem);
            inst.op = Op::Jcc;
            inst.cond = *cond;
        } else if (mnem.rfind("CMOV", 0) == 0) {
            auto cond = parseCond(mnem.substr(4));
            if (!cond)
                throw AsmError(line_no, "unknown mnemonic " + mnem);
            inst.op = Op::Cmov;
            inst.cond = *cond;
        } else if (mnem.rfind("SET", 0) == 0) {
            auto cond = parseCond(mnem.substr(3));
            if (!cond)
                throw AsmError(line_no, "unknown mnemonic " + mnem);
            inst.op = Op::Set;
            inst.cond = *cond;
        } else {
            throw AsmError(line_no, "unknown mnemonic " + mnem);
        }

        auto operands = splitOperands(rest);

        // Branches take a single label operand.
        if (inst.isBranch()) {
            if (operands.size() != 1 || operands[0].empty() ||
                operands[0][0] != '.') {
                throw AsmError(line_no, "branch needs a .label operand");
            }
            std::string label = operands[0].substr(1);
            auto &bb = current_block();
            bb.body.push_back(inst);
            if (label == "exit") {
                bb.body.back().target = kTargetExit;
            } else {
                fixups.push_back({prog.blocks.size() - 1,
                                  bb.body.size() - 1, label, line_no});
            }
            continue;
        }

        std::vector<ParsedOperand> ops;
        for (const auto &o : operands)
            ops.push_back(parseOperand(o, line_no));

        const std::size_t expected =
            (inst.op == Op::Nop || inst.op == Op::Halt ||
             inst.op == Op::Fence)
                ? 0
                : (inst.op == Op::Neg || inst.op == Op::Not ||
                   inst.op == Op::Set)
                      ? 1
                      : 2;
        if (ops.size() != expected) {
            throw AsmError(line_no, "expected " + std::to_string(expected) +
                                        " operand(s) for " + mnem);
        }

        if (expected >= 1) {
            const ParsedOperand &d = ops[0];
            if (d.isLabel)
                throw AsmError(line_no, "unexpected label operand");
            inst.dstKind = d.kind;
            if (d.kind == OpndKind::Reg) {
                inst.dst = d.reg;
                inst.width = static_cast<std::uint8_t>(d.regWidth);
            } else if (d.kind == OpndKind::Mem) {
                inst.mem = d.mem;
                inst.width = static_cast<std::uint8_t>(d.memWidth);
            } else {
                throw AsmError(line_no, "immediate destination");
            }
        }
        if (expected == 2) {
            const ParsedOperand &s = ops[1];
            if (s.isLabel)
                throw AsmError(line_no, "unexpected label operand");
            inst.srcKind = s.kind;
            if (s.kind == OpndKind::Reg) {
                inst.src = s.reg;
                // MOVZX/MOVSX width describes the (register) source.
                if (inst.op == Op::Movzx || inst.op == Op::Movsx)
                    inst.width = static_cast<std::uint8_t>(s.regWidth);
            } else if (s.kind == OpndKind::Imm) {
                inst.imm = s.imm;
            } else {
                if (inst.dstKind == OpndKind::Mem)
                    throw AsmError(line_no, "mem-to-mem not supported");
                inst.mem = s.mem;
                // MOVZX/MOVSX: width describes the (memory) source.
                inst.width = static_cast<std::uint8_t>(s.memWidth);
            }
            if (inst.dstKind == OpndKind::Mem && s.kind == OpndKind::Reg &&
                inst.op != Op::Lea) {
                // Store width comes from the memory operand.
            }
        }
        if (inst.op == Op::Set)
            inst.width = 1;
        if (inst.op == Op::Lea && inst.srcKind != OpndKind::Mem)
            throw AsmError(line_no, "LEA needs a memory source");

        current_block().body.push_back(inst);
    }

    // Resolve label fixups.
    for (const auto &f : fixups) {
        auto it = block_index.find(f.label);
        if (it == block_index.end())
            throw AsmError(f.line, "undefined label ." + f.label);
        prog.blocks[f.block].body[f.inst].target = it->second;
    }

    if (auto err = prog.validate())
        throw AsmError(0, *err);
    return prog;
}

} // namespace amulet::isa

/**
 * @file
 * Disassembler: formats instructions and programs in the paper's listing
 * syntax (`AND RBX, 0b111111111111`, `XOR qword ptr [R14 + RBX], RDI`,
 * `JNO .bb_main.2`). Violation reports and examples use this format.
 */

#ifndef AMULET_ISA_DISASM_HH
#define AMULET_ISA_DISASM_HH

#include <string>

#include "isa/inst.hh"
#include "isa/program.hh"

namespace amulet::isa
{

/**
 * Format one instruction. Branch targets are printed as block labels
 * resolved against @p prog (pass nullptr to print raw target indices).
 */
std::string formatInst(const Inst &inst, const Program *prog = nullptr);

/** Format a whole program as a labelled listing. */
std::string formatProgram(const Program &prog);

/** Format a memory operand, e.g. "qword ptr [R14 + RBX + 0x40]". */
std::string formatMemOperand(const MemRef &mem, unsigned width);

} // namespace amulet::isa

#endif // AMULET_ISA_DISASM_HH

#include "telemetry/metrics.hh"

#include <algorithm>
#include <stdexcept>

namespace amulet::telemetry
{

const char *
metricKindName(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter:   return "counter";
      case MetricKind::Gauge:     return "gauge";
      case MetricKind::Timer:     return "timer";
      case MetricKind::Histogram: return "histogram";
    }
    return "?";
}

// === Histogram =============================================================

void
Histogram::observe(double v)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
    // Deterministic decimation: keep the first observation of every
    // stride_ -long window. The window phase carries across thinnings so
    // the retained set depends only on the observation sequence.
    if (sinceKept_ == 0) {
        samples_.push_back(v);
        if (samples_.size() >= reservoir_)
            thin();
    }
    if (++sinceKept_ >= stride_)
        sinceKept_ = 0;
}

void
Histogram::thin()
{
    // Keep every second retained sample and double the stride for
    // future observations; repeated thinning keeps memory at the bound
    // while the reservoir stays a uniform systematic sample.
    std::size_t w = 0;
    for (std::size_t r = 0; r < samples_.size(); r += 2)
        samples_[w++] = samples_[r];
    samples_.resize(w);
    stride_ *= 2;
}

double
Histogram::percentile(double p) const
{
    if (samples_.empty())
        return 0.0;
    p = std::clamp(p, 0.0, 1.0);
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    const auto rank = static_cast<std::size_t>(p * (sorted.size() - 1));
    return sorted[rank];
}

void
Histogram::merge(const Histogram &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    sum_ += other.sum_;
    // Concatenate reservoirs, then re-thin to the bound. The merged
    // stride is a bookkeeping upper bound only (percentiles read the
    // samples, not the stride).
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    stride_ = std::max(stride_, other.stride_);
    while (samples_.size() >= reservoir_)
        thin();
}

// === MetricValue ===========================================================

double
MetricValue::percentile(double p) const
{
    if (samples.empty())
        return 0.0;
    p = std::clamp(p, 0.0, 1.0);
    std::vector<double> sorted = samples;
    std::sort(sorted.begin(), sorted.end());
    const auto rank = static_cast<std::size_t>(p * (sorted.size() - 1));
    return sorted[rank];
}

// === MetricsRegistry =======================================================

MetricsRegistry::Instrument &
MetricsRegistry::get(const std::string &name, MetricKind kind)
{
    auto [it, inserted] = instruments_.try_emplace(name);
    Instrument &inst = it->second;
    if (inserted) {
        inst.kind = kind;
        if (kind == MetricKind::Histogram)
            inst.histogram = std::make_unique<Histogram>();
    } else if (inst.kind != kind) {
        throw std::logic_error(
            "MetricsRegistry: '" + name + "' registered as " +
            metricKindName(inst.kind) + ", requested as " +
            metricKindName(kind));
    }
    return inst;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    return get(name, MetricKind::Counter).counter;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    return get(name, MetricKind::Gauge).gauge;
}

Timer &
MetricsRegistry::timer(const std::string &name)
{
    return get(name, MetricKind::Timer).timer;
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    return *get(name, MetricKind::Histogram).histogram;
}

void
MetricsRegistry::merge(const MetricsRegistry &other)
{
    for (const auto &[name, inst] : other.instruments_) {
        Instrument &mine = get(name, inst.kind);
        switch (inst.kind) {
          case MetricKind::Counter:
            mine.counter.add(inst.counter.value());
            break;
          case MetricKind::Gauge:
            if (inst.gauge.written())
                mine.gauge.set(inst.gauge.value());
            break;
          case MetricKind::Timer:
            mine.timer.accumulate(inst.timer.totalSec(),
                                  inst.timer.count());
            break;
          case MetricKind::Histogram:
            mine.histogram->merge(*inst.histogram);
            break;
        }
    }
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot snap;
    for (const auto &[name, inst] : instruments_) {
        MetricValue v;
        v.kind = inst.kind;
        switch (inst.kind) {
          case MetricKind::Counter:
            v.value = static_cast<double>(inst.counter.value());
            v.count = inst.counter.value();
            break;
          case MetricKind::Gauge:
            v.value = inst.gauge.value();
            break;
          case MetricKind::Timer:
            v.value = inst.timer.totalSec();
            v.count = inst.timer.count();
            break;
          case MetricKind::Histogram:
            v.count = inst.histogram->count();
            v.sum = inst.histogram->sum();
            v.min = inst.histogram->min();
            v.max = inst.histogram->max();
            v.value = inst.histogram->mean();
            v.samples = inst.histogram->samples();
            break;
        }
        snap.emplace(name, std::move(v));
    }
    return snap;
}

double
timedSectionTotalSec(const MetricsSnapshot &snapshot)
{
    double total = 0;
    for (const auto &[name, value] : snapshot) {
        if (value.kind == MetricKind::Timer &&
            name.rfind("time.", 0) == 0) {
            total += value.value;
        }
    }
    return total;
}

} // namespace amulet::telemetry

#include "telemetry/heartbeat.hh"

#include <chrono>
#include <stdexcept>

namespace amulet::telemetry
{

std::string
heartbeatLine(const CampaignProgress &progress, double elapsedSec)
{
    const auto load = [](const std::atomic<std::uint64_t> &a) {
        return static_cast<double>(a.load(std::memory_order_relaxed));
    };

    std::string out;
    out.reserve(256);
    out += "{\"elapsedSec\":";
    appendJsonNumber(out, elapsedSec);
    out += ",\"programsTotal\":";
    appendJsonNumber(out, static_cast<double>(progress.totalPrograms()));
    out += ",\"programsDone\":";
    appendJsonNumber(out, load(progress.programsDone));
    out += ",\"resumedPrograms\":";
    appendJsonNumber(out, load(progress.resumedPrograms));
    out += ",\"testCases\":";
    appendJsonNumber(out, load(progress.testCases));
    out += ",\"testsPerSec\":";
    appendJsonNumber(out, elapsedSec > 0
                              ? load(progress.testCases) / elapsedSec
                              : 0.0);
    out += ",\"violations\":";
    appendJsonNumber(out, load(progress.violations));
    out += ",\"backendRestarts\":";
    appendJsonNumber(out, load(progress.backendRestarts));
    out += ",\"stage\":{\"testGenSec\":";
    appendJsonNumber(out, load(progress.testGenUs) * 1e-6);
    out += ",\"ctraceSec\":";
    appendJsonNumber(out, load(progress.ctraceUs) * 1e-6);
    out += ",\"filterSec\":";
    appendJsonNumber(out, load(progress.filterUs) * 1e-6);
    out += "},\"shards\":[";
    for (unsigned s = 0; s < progress.shardCount(); ++s) {
        const ShardLive &live = progress.shard(s);
        if (s)
            out += ',';
        out += "{\"shard\":";
        appendJsonNumber(out, static_cast<double>(s));
        out += ",\"progress\":";
        appendJsonNumber(out, load(live.progressIndex));
        out += ",\"currentProgram\":";
        appendJsonNumber(
            out, static_cast<double>(
                     live.currentProgram.load(std::memory_order_relaxed)));
        out += ",\"programsDone\":";
        appendJsonNumber(out, load(live.programsDone));
        out += '}';
    }
    out += "]}";
    return out;
}

HeartbeatEmitter::HeartbeatEmitter(const CampaignProgress &progress,
                                   Clock::time_point epoch)
    : progress_(progress), epoch_(epoch)
{
}

HeartbeatEmitter::~HeartbeatEmitter() { stop(); }

void
HeartbeatEmitter::start(const std::string &path, double intervalSec)
{
    if (running_)
        return;
    if (path == "-") {
        out_ = stdout;
        ownsFile_ = false;
    } else {
        out_ = std::fopen(path.c_str(), "w");
        if (!out_)
            throw std::runtime_error(
                "heartbeat: cannot open '" + path + "'");
        ownsFile_ = true;
    }
    intervalSec_ = intervalSec > 0 ? intervalSec : 1.0;
    stopping_ = false;
    running_ = true;
    emitLine();
    thread_ = std::thread([this] {
        std::unique_lock<std::mutex> lock(mu_);
        const auto interval = std::chrono::duration<double>(intervalSec_);
        while (!cv_.wait_for(lock, interval,
                             [this] { return stopping_; })) {
            lock.unlock();
            emitLine();
            lock.lock();
        }
    });
}

void
HeartbeatEmitter::stop()
{
    if (!running_)
        return;
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable())
        thread_.join();
    emitLine(); // final snapshot — the line readers key "done" off
    if (ownsFile_)
        std::fclose(out_);
    out_ = nullptr;
    running_ = false;
}

void
HeartbeatEmitter::emitLine()
{
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - epoch_).count();
    std::string line = heartbeatLine(progress_, elapsed);
    line.push_back('\n');
    // One write + flush per line: readers following a pipe or
    // `tail -f` ("--heartbeat -") see whole JSONL lines immediately,
    // never a partial line between the payload and its newline.
    std::fwrite(line.data(), 1, line.size(), out_);
    std::fflush(out_);
}

} // namespace amulet::telemetry

#include "telemetry/uarch_trace.hh"

#include <algorithm>
#include <cassert>
#include <cinttypes>
#include <cstdio>

#include "telemetry/trace.hh"

namespace amulet::telemetry
{

namespace
{

void
appendU64(std::string &out, std::uint64_t value)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
    out += buf;
}

void
appendHexAddr(std::string &out, Addr addr)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "0x%08" PRIx64, addr);
    out += buf;
}

std::string
hexAddr(Addr addr)
{
    std::string out;
    appendHexAddr(out, addr);
    return out;
}

const std::string &
disasmOf(const UarchRunTrace &run, std::uint64_t idx)
{
    static const std::string runahead = "(runahead nop)";
    return idx < run.disasm.size() ? run.disasm[idx] : runahead;
}

/** Last lifecycle tick of an instruction (the end of its pipeline
 *  occupancy). Every inst ends either committed or squashed; fall back
 *  to fetch+1 defensively so spans never have zero extent. */
Cycle
endCycleOf(const InstLifecycle &inst)
{
    Cycle end = inst.fetchCycle;
    if (inst.issued)
        end = std::max(end, inst.issueCycle);
    if (inst.completed)
        end = std::max(end, inst.completeCycle);
    if (inst.committed)
        end = std::max(end, inst.commitCycle);
    if (inst.squashed)
        end = std::max(end, inst.squashCycle);
    return std::max(end, inst.fetchCycle + 1);
}

/** One-line annotation summary for labels/report lines. */
std::string
annotations(const InstLifecycle &inst)
{
    std::string out;
    auto add = [&out](const char *tag) {
        if (!out.empty())
            out += ' ';
        out += tag;
    };
    if (inst.mispredicted)
        add("mispredict");
    if (inst.wasUnsafeAtIssue)
        add("unsafe-issue");
    if (inst.tainted)
        add("tainted");
    if (inst.exposePending)
        add("expose-pending");
    if (inst.inSpecBuffer)
        add("spec-buffer");
    if (inst.lfbHeld)
        add("lfb-held");
    if (inst.undoLogged)
        add("undo-logged");
    if (inst.forwardedFromStore)
        add("store-fwd");
    if (inst.bypassedUnknownStore)
        add("bypassed-store");
    return out;
}

} // namespace

const char *
squashCauseName(SquashCause cause)
{
    switch (cause) {
      case SquashCause::None:             return "none";
      case SquashCause::BranchMispredict: return "branch-mispredict";
      case SquashCause::MemOrder:         return "mem-order";
    }
    return "?";
}

// === UarchTracer ===========================================================

void
UarchTracer::beginRun(const std::vector<std::string> &disasm)
{
    current_ = UarchRunTrace{};
    current_.disasm = disasm;
    firstSeq_ = 0;
    inRun_ = true;
}

void
UarchTracer::endRun(Cycle cycles)
{
    if (!inRun_)
        return;
    current_.cycles = cycles;
    runs_.push_back(std::move(current_));
    current_ = UarchRunTrace{};
    inRun_ = false;
}

InstLifecycle *
UarchTracer::recordFor(SeqNum seq)
{
    if (!inRun_ || firstSeq_ == 0 || seq < firstSeq_)
        return nullptr;
    const std::size_t pos = static_cast<std::size_t>(seq - firstSeq_);
    return pos < current_.insts.size() ? &current_.insts[pos] : nullptr;
}

void
UarchTracer::onFetch(const uarch::DynInst &d, Cycle now)
{
    if (!inRun_)
        return;
    if (firstSeq_ == 0)
        firstSeq_ = d.seq;
    // The pipeline fetches in strictly increasing seq order and squashes
    // only remove ROB suffixes (never fetch records), so this append
    // keeps insts[seq - firstSeq_] addressing valid.
    assert(d.seq == firstSeq_ + current_.insts.size() &&
           "fetch seq out of order");
    InstLifecycle rec;
    rec.seq = d.seq;
    rec.idx = d.idx;
    rec.pc = d.pc;
    rec.fetchCycle = now;
    rec.isLoad = d.isLoad;
    rec.isStore = d.isStore;
    rec.isBranch = d.isBranch();
    rec.predTaken = d.predTaken;
    current_.insts.push_back(rec);
}

void
UarchTracer::onIssue(const uarch::DynInst &d, Cycle now)
{
    InstLifecycle *rec = recordFor(d.seq);
    if (!rec)
        return;
    rec->issued = true;
    rec->issueCycle = now;
    rec->wasUnsafeAtIssue = d.wasUnsafeAtIssue;
    if (d.isLoad || d.isStore) {
        rec->memAddrKnown = true;
        rec->memAddr = d.memAddr;
    }
}

void
UarchTracer::onComplete(const uarch::DynInst &d, Cycle now)
{
    InstLifecycle *rec = recordFor(d.seq);
    if (!rec)
        return;
    rec->completed = true;
    rec->completeCycle = now;
    rec->actualTaken = d.actualTaken;
    rec->mispredicted = d.mispredicted;
    rec->tainted = d.tainted;
    rec->exposePending = d.exposePending;
    rec->inSpecBuffer = d.inSpecBuffer;
    rec->lfbHeld = d.lfbHeld;
    rec->undoLogged = d.undoLogged;
    rec->forwardedFromStore = d.forwardedFromStore;
    rec->bypassedUnknownStore = d.bypassedUnknownStore;
}

void
UarchTracer::onSquash(const uarch::DynInst &d, Cycle now,
                      SquashCause cause, SeqNum trigger)
{
    InstLifecycle *rec = recordFor(d.seq);
    if (!rec)
        return;
    rec->squashed = true;
    rec->squashCycle = now;
    rec->squashCause = cause;
    rec->squashTrigger = trigger;
    rec->mispredicted = d.mispredicted;
    // Defense annotations at squash time are the interesting ones: this
    // is the transient state the countermeasure had to clean up (the
    // hook fires after Defense::onSquash, so undo/expose bookkeeping is
    // final).
    rec->tainted = d.tainted;
    rec->exposePending = d.exposePending;
    rec->inSpecBuffer = d.inSpecBuffer;
    rec->lfbHeld = d.lfbHeld;
    rec->undoLogged = d.undoLogged;
    rec->forwardedFromStore = d.forwardedFromStore;
    rec->bypassedUnknownStore = d.bypassedUnknownStore;
}

void
UarchTracer::onCommit(const uarch::DynInst &d, Cycle now)
{
    InstLifecycle *rec = recordFor(d.seq);
    if (!rec)
        return;
    rec->committed = true;
    rec->commitCycle = now;
    rec->actualTaken = d.actualTaken;
    rec->mispredicted = d.mispredicted;
    rec->tainted = d.tainted;
    rec->exposePending = d.exposePending;
    rec->inSpecBuffer = d.inSpecBuffer;
    rec->lfbHeld = d.lfbHeld;
    rec->undoLogged = d.undoLogged;
    rec->forwardedFromStore = d.forwardedFromStore;
    rec->bypassedUnknownStore = d.bypassedUnknownStore;
}

std::vector<UarchRunTrace>
UarchTracer::takeRuns()
{
    std::vector<UarchRunTrace> out = std::move(runs_);
    runs_.clear();
    return out;
}

// === Kanata export =========================================================

namespace
{

/** Event kinds in intra-cycle emit order (fetch < issue < complete <
 *  retire/flush). */
enum class KEv : std::uint8_t
{
    Fetch = 0,
    Issue,
    Complete,
    Commit,
    Squash,
};

struct KanataEvent
{
    Cycle cycle;
    std::size_t inst; ///< index into run.insts (also the Kanata id)
    KEv kind;
};

} // namespace

std::string
exportKanata(const UarchRunTrace &run)
{
    std::vector<KanataEvent> events;
    events.reserve(run.insts.size() * 4);
    for (std::size_t i = 0; i < run.insts.size(); ++i) {
        const InstLifecycle &inst = run.insts[i];
        events.push_back({inst.fetchCycle, i, KEv::Fetch});
        if (inst.issued)
            events.push_back({inst.issueCycle, i, KEv::Issue});
        if (inst.completed)
            events.push_back({inst.completeCycle, i, KEv::Complete});
        if (inst.committed)
            events.push_back({inst.commitCycle, i, KEv::Commit});
        if (inst.squashed)
            events.push_back({inst.squashCycle, i, KEv::Squash});
    }
    std::sort(events.begin(), events.end(),
              [](const KanataEvent &a, const KanataEvent &b) {
                  if (a.cycle != b.cycle)
                      return a.cycle < b.cycle;
                  if (a.inst != b.inst)
                      return a.inst < b.inst;
                  return a.kind < b.kind;
              });

    std::string out;
    out.reserve(events.size() * 32 + 64);
    out += "Kanata\t0004\n";
    const Cycle start = events.empty() ? 0 : events.front().cycle;
    out += "C=\t";
    appendU64(out, start);
    out += '\n';

    // Per-instruction open stage ("F", "X", "CM"; empty = closed).
    std::vector<const char *> openStage(run.insts.size(), nullptr);
    Cycle cur = start;
    std::uint64_t retireId = 0;
    auto advance = [&](Cycle to) {
        if (to > cur) {
            out += "C\t";
            appendU64(out, to - cur);
            out += '\n';
            cur = to;
        }
    };
    auto stage = [&](const char *cmd, std::size_t id, const char *name) {
        out += cmd;
        out += '\t';
        appendU64(out, id);
        out += "\t0\t";
        out += name;
        out += '\n';
    };

    for (const KanataEvent &ev : events) {
        advance(ev.cycle);
        const std::size_t id = ev.inst;
        const InstLifecycle &inst = run.insts[id];
        switch (ev.kind) {
          case KEv::Fetch: {
            out += "I\t";
            appendU64(out, id);
            out += '\t';
            appendU64(out, inst.seq);
            out += "\t0\n";
            // Left label: disasm; hover label: pc + annotations.
            out += "L\t";
            appendU64(out, id);
            out += "\t0\t";
            out += disasmOf(run, inst.idx);
            out += '\n';
            out += "L\t";
            appendU64(out, id);
            out += "\t1\tpc=";
            appendHexAddr(out, inst.pc);
            out += " seq=";
            appendU64(out, inst.seq);
            if (inst.memAddrKnown) {
                out += " addr=";
                appendHexAddr(out, inst.memAddr);
            }
            if (inst.squashed) {
                out += " squash=";
                out += squashCauseName(inst.squashCause);
            }
            const std::string notes = annotations(inst);
            if (!notes.empty()) {
                out += ' ';
                out += notes;
            }
            out += '\n';
            stage("S", id, "F");
            openStage[id] = "F";
            break;
          }
          case KEv::Issue:
            if (openStage[id])
                stage("E", id, openStage[id]);
            stage("S", id, "X");
            openStage[id] = "X";
            break;
          case KEv::Complete:
            if (openStage[id])
                stage("E", id, openStage[id]);
            stage("S", id, "CM");
            openStage[id] = "CM";
            break;
          case KEv::Commit:
          case KEv::Squash:
            if (openStage[id]) {
                stage("E", id, openStage[id]);
                openStage[id] = nullptr;
            }
            out += "R\t";
            appendU64(out, id);
            out += '\t';
            appendU64(out, retireId++);
            out += ev.kind == KEv::Commit ? "\t0\n" : "\t1\n";
            break;
        }
    }

    // Instructions still in flight when the run ended (fetched past the
    // Halt, so neither committed nor squashed) close at the final
    // cycle as flushes — a Kanata log must balance every begun stage.
    advance(run.cycles > cur ? run.cycles : cur);
    for (std::size_t id = 0; id < openStage.size(); ++id) {
        if (!openStage[id])
            continue;
        stage("E", id, openStage[id]);
        openStage[id] = nullptr;
        out += "R\t";
        appendU64(out, id);
        out += '\t';
        appendU64(out, retireId++);
        out += "\t1\n";
    }
    return out;
}

// === O3PipeView export =====================================================

std::string
exportO3PipeView(const UarchRunTrace &run)
{
    // gem5's convention: ticks, with a fixed ticks-per-cycle factor;
    // tick 0 marks a stage the instruction never reached.
    constexpr std::uint64_t kTicksPerCycle = 1000;
    auto tick = [](Cycle c) { return c * kTicksPerCycle; };

    std::string out;
    out.reserve(run.insts.size() * 160);
    for (const InstLifecycle &inst : run.insts) {
        out += "O3PipeView:fetch:";
        appendU64(out, tick(inst.fetchCycle));
        out += ':';
        appendHexAddr(out, inst.pc);
        out += ":0:";
        appendU64(out, inst.seq);
        out += ':';
        out += disasmOf(run, inst.idx);
        out += '\n';
        // This core has no distinct decode/rename/dispatch stages;
        // report them at the fetch tick so viewers get contiguous
        // lanes.
        out += "O3PipeView:decode:";
        appendU64(out, tick(inst.fetchCycle));
        out += "\nO3PipeView:rename:";
        appendU64(out, tick(inst.fetchCycle));
        out += "\nO3PipeView:dispatch:";
        appendU64(out, tick(inst.fetchCycle));
        out += "\nO3PipeView:issue:";
        appendU64(out, inst.issued ? tick(inst.issueCycle) : 0);
        out += "\nO3PipeView:complete:";
        appendU64(out, inst.completed ? tick(inst.completeCycle) : 0);
        out += "\nO3PipeView:retire:";
        appendU64(out, inst.committed ? tick(inst.commitCycle) : 0);
        out += ":store:0\n";
    }
    return out;
}

// === Chrome-trace export ===================================================

std::string
exportUarchChromeTrace(const std::vector<UarchRunTrace> &runs)
{
    std::string out;
    out += "{\"traceEvents\":[";
    bool first = true;
    auto comma = [&] {
        if (!first)
            out += ',';
        first = false;
    };
    for (std::size_t tid = 0; tid < runs.size(); ++tid) {
        const UarchRunTrace &run = runs[tid];
        comma();
        out += "{\"ph\":\"M\",\"pid\":0,\"tid\":";
        appendJsonNumber(out, static_cast<double>(tid));
        out += ",\"name\":\"thread_name\",\"args\":{\"name\":";
        appendJsonString(out, run.label.empty()
                                  ? "run" + std::to_string(tid)
                                  : run.label);
        out += "}}";
        // insts is in fetch order, so ts is monotonic within the track.
        for (const InstLifecycle &inst : run.insts) {
            comma();
            out += "{\"ph\":\"X\",\"pid\":0,\"tid\":";
            appendJsonNumber(out, static_cast<double>(tid));
            out += ",\"name\":";
            appendJsonString(out, disasmOf(run, inst.idx));
            out += ",\"ts\":";
            appendJsonNumber(out,
                             static_cast<double>(inst.fetchCycle));
            out += ",\"dur\":";
            appendJsonNumber(out, static_cast<double>(endCycleOf(inst) -
                                                      inst.fetchCycle));
            out += ",\"args\":{\"seq\":";
            appendJsonNumber(out, static_cast<double>(inst.seq));
            out += ",\"pc\":";
            appendJsonString(out, hexAddr(inst.pc));
            if (inst.memAddrKnown) {
                out += ",\"addr\":";
                appendJsonString(out, hexAddr(inst.memAddr));
            }
            out += ",\"fate\":";
            appendJsonString(out, inst.squashed   ? "squashed"
                                  : inst.committed ? "committed"
                                                   : "in-flight");
            if (inst.squashed) {
                out += ",\"squashCause\":";
                appendJsonString(out,
                                 squashCauseName(inst.squashCause));
            }
            const std::string notes = annotations(inst);
            if (!notes.empty()) {
                out += ",\"notes\":";
                appendJsonString(out, notes);
            }
            out += "}}";
        }
    }
    out += "]}";
    return out;
}

// === Divergence localization ===============================================

namespace
{

/** Issue-ordered load/store observations, squashed accesses included.
 *  Stable sort by issue cycle over fetch order reproduces the
 *  pipeline's accessOrder_ (issueStage walks the ROB in fetch order
 *  within a cycle). */
std::vector<const InstLifecycle *>
memObservations(const UarchRunTrace &run)
{
    std::vector<const InstLifecycle *> obs;
    for (const InstLifecycle &inst : run.insts) {
        if (inst.issued && inst.memAddrKnown &&
            (inst.isLoad || inst.isStore)) {
            obs.push_back(&inst);
        }
    }
    std::stable_sort(obs.begin(), obs.end(),
                     [](const InstLifecycle *a, const InstLifecycle *b) {
                         return a->issueCycle < b->issueCycle;
                     });
    return obs;
}

std::string
memDetail(const InstLifecycle &inst)
{
    std::string out = inst.isStore && !inst.isLoad ? "store " : "load ";
    out += hexAddr(inst.memAddr);
    out += " @cycle ";
    appendU64(out, inst.issueCycle);
    if (inst.squashed) {
        out += " (transient, ";
        out += squashCauseName(inst.squashCause);
        out += ')';
    }
    return out;
}

Divergence
diverge(const UarchRunTrace &run, const InstLifecycle &inst,
        std::string what, std::string detailA, std::string detailB)
{
    Divergence d;
    d.found = true;
    d.idx = inst.idx;
    d.pc = inst.pc;
    d.disasm = disasmOf(run, inst.idx);
    d.what = std::move(what);
    d.detailA = std::move(detailA);
    d.detailB = std::move(detailB);
    return d;
}

} // namespace

Divergence
firstDivergence(const UarchRunTrace &a, const UarchRunTrace &b)
{
    // 1) Memory observations: the attacker-visible channel. First
    //    (pc, addr, kind) mismatch in issue order wins — including
    //    transient accesses, which architectural diffing cannot see.
    const auto memA = memObservations(a);
    const auto memB = memObservations(b);
    const std::size_t nMem = std::min(memA.size(), memB.size());
    for (std::size_t k = 0; k < nMem; ++k) {
        const InstLifecycle &ia = *memA[k];
        const InstLifecycle &ib = *memB[k];
        const bool storeA = ia.isStore && !ia.isLoad;
        const bool storeB = ib.isStore && !ib.isLoad;
        if (ia.pc != ib.pc || ia.memAddr != ib.memAddr ||
            storeA != storeB) {
            return diverge(a, ia,
                           "memory access #" + std::to_string(k) +
                               " differs",
                           memDetail(ia), memDetail(ib));
        }
    }
    if (memA.size() != memB.size()) {
        const bool aLonger = memA.size() > memB.size();
        const InstLifecycle &extra =
            aLonger ? *memA[nMem] : *memB[nMem];
        return diverge(aLonger ? a : b, extra,
                       "memory access count differs (" +
                           std::to_string(memA.size()) + " vs " +
                           std::to_string(memB.size()) + ")",
                       aLonger ? memDetail(extra) : "(absent)",
                       aLonger ? "(absent)" : memDetail(extra));
    }

    // 2) Branch resolution: control-flow divergence without a memory
    //    footprint (covered by contracts, still worth naming).
    const std::size_t nInst = std::min(a.insts.size(), b.insts.size());
    for (std::size_t k = 0; k < nInst; ++k) {
        const InstLifecycle &ia = a.insts[k];
        const InstLifecycle &ib = b.insts[k];
        if (ia.isBranch && ib.isBranch && ia.pc == ib.pc &&
            ia.completed && ib.completed &&
            ia.actualTaken != ib.actualTaken) {
            return diverge(a, ia, "branch direction differs",
                           ia.actualTaken ? "taken" : "not taken",
                           ib.actualTaken ? "taken" : "not taken");
        }
    }

    // 3) Raw lifecycle: timing-only divergence (same accesses, shifted
    //    cycles — e.g. a hit-vs-miss latency channel).
    for (std::size_t k = 0; k < nInst; ++k) {
        const InstLifecycle &ia = a.insts[k];
        const InstLifecycle &ib = b.insts[k];
        if (!(ia == ib)) {
            std::string da = "fetch@" + std::to_string(ia.fetchCycle);
            std::string db = "fetch@" + std::to_string(ib.fetchCycle);
            if (ia.issued) {
                da += " issue@" + std::to_string(ia.issueCycle);
            }
            if (ib.issued) {
                db += " issue@" + std::to_string(ib.issueCycle);
            }
            if (ia.completed)
                da += " done@" + std::to_string(ia.completeCycle);
            if (ib.completed)
                db += " done@" + std::to_string(ib.completeCycle);
            return diverge(a, ia, "instruction lifecycle differs", da,
                           db);
        }
    }
    if (a.insts.size() != b.insts.size()) {
        const bool aLonger = a.insts.size() > b.insts.size();
        const UarchRunTrace &longer = aLonger ? a : b;
        const InstLifecycle &extra = longer.insts[nInst];
        return diverge(longer, extra,
                       "fetched instruction count differs (" +
                           std::to_string(a.insts.size()) + " vs " +
                           std::to_string(b.insts.size()) + ")",
                       aLonger ? "fetched" : "(absent)",
                       aLonger ? "(absent)" : "fetched");
    }

    return Divergence{};
}

} // namespace amulet::telemetry

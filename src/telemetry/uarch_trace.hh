/**
 * @file
 * Microarchitectural introspection: per-instruction pipeline lifecycle
 * tracing.
 *
 * A UarchTracer attaches to uarch::Pipeline (Pipeline::setTracer) and
 * records one InstLifecycle per fetched DynInst — fetch/issue/complete/
 * commit/squash ticks, squash cause and trigger, branch-prediction
 * outcome, the effective memory address, and the defense annotations
 * (taint, undo-log, spec-buffer, LFB) present when the instruction left
 * the ROB. Squashed (transient) instructions are first-class records:
 * they are exactly the mis-speculation window the defenses exist to
 * police, and what Spectector-style leak localization diffs.
 *
 * Three exporters turn a finished run into standard visualizer inputs:
 *  - exportKanata:        Konata's native log (Kanata 0004)
 *  - exportO3PipeView:    gem5's O3PipeView lines (Konata reads these
 *                         too)
 *  - exportUarchChromeTrace: Chrome trace-event JSON (Perfetto), one
 *                         track per run, one complete event per inst
 *
 * Like the rest of src/telemetry/, tracing is observability only: the
 * tracer is attached around exactly the test-program run (never boot or
 * priming), hooks fire after the pipeline's own state updates, and no
 * recorded value feeds back — campaign exports are byte-identical with
 * tracing on or off (tests/test_uarch_trace.cc, verify.sh smoke).
 */

#ifndef AMULET_TELEMETRY_UARCH_TRACE_HH
#define AMULET_TELEMETRY_UARCH_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "uarch/dyn_inst.hh"

namespace amulet::telemetry
{

/** Why an in-flight instruction was squashed. */
enum class SquashCause : std::uint8_t
{
    None = 0,
    BranchMispredict, ///< wrong-path fetch past a mispredicted branch
    MemOrder,         ///< load read memory past an older aliasing store
};

/** Stable token for reports ("none", "branch-mispredict",
 *  "mem-order"). */
const char *squashCauseName(SquashCause cause);

/** Lifecycle of one dynamic instruction, as observed by the tracer. */
struct InstLifecycle
{
    SeqNum seq = 0;
    std::uint64_t idx = 0; ///< static instruction index
    Addr pc = 0;

    /** @name Stage ticks (a tick is only meaningful when the matching
     *  flag below is set) */
    /// @{
    Cycle fetchCycle = 0;
    Cycle issueCycle = 0;
    Cycle completeCycle = 0; ///< execution finished (value/branch final)
    Cycle commitCycle = 0;
    Cycle squashCycle = 0;
    /// @}

    bool issued = false;
    bool completed = false;
    bool committed = false;
    bool squashed = false;
    SquashCause squashCause = SquashCause::None;
    SeqNum squashTrigger = 0; ///< seq of the branch/store that squashed us

    /** @name Kind + branch outcome */
    /// @{
    bool isLoad = false;
    bool isStore = false;
    bool isBranch = false;
    bool predTaken = false;
    bool actualTaken = false;
    bool mispredicted = false;
    /// @}

    /** @name Memory */
    /// @{
    bool memAddrKnown = false; ///< address was generated before removal
    Addr memAddr = 0;
    /// @}

    /** @name Defense / speculation annotations (state at completion,
     *  commit, or squash — whichever came last) */
    /// @{
    bool wasUnsafeAtIssue = false;
    bool tainted = false;       ///< STT
    bool exposePending = false; ///< InvisiSpec
    bool inSpecBuffer = false;  ///< InvisiSpec
    bool lfbHeld = false;       ///< SpecLFB
    bool undoLogged = false;    ///< CleanupSpec
    bool forwardedFromStore = false;
    bool bypassedUnknownStore = false;
    /// @}

    bool operator==(const InstLifecycle &) const = default;
};

/** One traced pipeline run: every fetched instruction in fetch order,
 *  plus a self-contained disassembly table indexed by static idx. */
struct UarchRunTrace
{
    std::string label; ///< consumer-assigned ("inputA", …); not recorded
    Cycle cycles = 0;  ///< run length (RunResult::cycles)
    /** "label: mnemonic …" per static instruction; runahead fetches can
     *  carry idx >= disasm.size() (treated as runahead NOPs). */
    std::vector<std::string> disasm;
    std::vector<InstLifecycle> insts; ///< fetch order, seq ascending

    bool operator==(const UarchRunTrace &) const = default;
};

/**
 * The tracer. Thread-confined like a TelemetrySink: owned by whoever
 * drives the harness, attached to the pipeline only for the runs to
 * observe. Hooks are O(1): per-run seq numbers start at 1 and fetch
 * order is seq order, so the record for seq s lives at insts[s - s0].
 */
class UarchTracer
{
  public:
    /** Begin observing one run. @p disasm is the loaded program's
     *  per-idx disassembly (copied into the finished trace). */
    void beginRun(const std::vector<std::string> &disasm);

    /** Finish the current run and file it (takeRuns returns it). */
    void endRun(Cycle cycles);

    /** A run is being recorded (between beginRun and endRun). */
    bool inRun() const { return inRun_; }

    /** @name Pipeline hooks (called by uarch::Pipeline when attached) */
    /// @{
    void onFetch(const uarch::DynInst &d, Cycle now);
    void onIssue(const uarch::DynInst &d, Cycle now);
    void onComplete(const uarch::DynInst &d, Cycle now);
    void onSquash(const uarch::DynInst &d, Cycle now, SquashCause cause,
                  SeqNum trigger);
    void onCommit(const uarch::DynInst &d, Cycle now);
    /// @}

    /** Finished runs in execution order; clears the store. */
    std::vector<UarchRunTrace> takeRuns();

  private:
    InstLifecycle *recordFor(SeqNum seq);

    UarchRunTrace current_;
    SeqNum firstSeq_ = 0; ///< seq of the run's first fetched inst
    bool inRun_ = false;
    std::vector<UarchRunTrace> runs_;
};

/** @name Exporters */
/// @{
/** Konata's native format: "Kanata\t0004" header, one lane of
 *  F/X/CM stage spans per instruction, R retire/flush terminators.
 *  Every S (stage begin) is balanced by an E (stage end) before the
 *  instruction retires or flushes. */
std::string exportKanata(const UarchRunTrace &run);

/** gem5 O3PipeView lines (Konata's second input format; 1000 ticks per
 *  cycle, tick 0 = stage skipped / squashed-before). */
std::string exportO3PipeView(const UarchRunTrace &run);

/** Chrome trace-event JSON: one track (tid) per run, one complete
 *  ("X") event per instruction spanning fetch → last lifecycle tick.
 *  Events are emitted in fetch order, so ts is monotonic per tid.
 *  Loadable by Perfetto and chrome://tracing. */
std::string
exportUarchChromeTrace(const std::vector<UarchRunTrace> &runs);
/// @}

/** First point where two runs of the same program diverge
 *  (Spectector-style leak localization on μarch observations). */
struct Divergence
{
    bool found = false;
    /** Where the diverging observation happened. */
    std::uint64_t idx = 0; ///< static instruction index
    Addr pc = 0;
    std::string disasm;
    /** What differed ("memory access #k address", "branch direction",
     *  …) plus the per-run values. */
    std::string what;
    std::string detailA;
    std::string detailB;
};

/**
 * Locate the first divergent instruction between two traced runs:
 * compares the issue-ordered load/store observations (squashed
 * transient accesses included — they are the leak), then branch
 * resolution, then raw lifecycles. Not found means the runs are
 * μarch-indistinguishable at this granularity.
 */
Divergence firstDivergence(const UarchRunTrace &a,
                           const UarchRunTrace &b);

} // namespace amulet::telemetry

#endif // AMULET_TELEMETRY_UARCH_TRACE_HH

/**
 * @file
 * Campaign telemetry front door: per-thread TelemetrySink (metrics +
 * spans + live-progress hooks), RAII SpanScope, and the
 * CampaignTelemetry aggregate the scheduler owns.
 *
 * Wiring overview:
 *
 *   scheduler ── owns ──> CampaignTelemetry
 *                          ├─ TelemetrySink per shard worker thread
 *                          ├─ TelemetrySink per backend lane (async
 *                          │   backends record on their sim thread)
 *                          ├─ TelemetrySink for the scheduler itself
 *                          ├─ CampaignProgress (heartbeat atomics)
 *                          └─ HeartbeatEmitter (--heartbeat)
 *
 * Each sink is thread-confined (see metrics.hh); the campaign end
 * merges registries into one MetricsSnapshot and concatenates span
 * buffers into one Chrome trace (--trace-out). Every sink also keeps a
 * small always-on list of its slowest spans so `campaign_cli stats`
 * can show hotspots without a trace file.
 *
 * Telemetry is observability only: no instrument feeds back into
 * scheduling, filtering, or analysis decisions, and TelemetryConfig is
 * excluded from the corpus fingerprint — so exports stay byte-identical
 * with every knob on or off.
 */

#ifndef AMULET_TELEMETRY_TELEMETRY_HH
#define AMULET_TELEMETRY_TELEMETRY_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/heartbeat.hh"
#include "telemetry/metrics.hh"
#include "telemetry/trace.hh"

namespace amulet::telemetry
{

/** Campaign telemetry knobs. Runtime-only: excluded from the corpus
 *  fingerprint (corpus/serde.cc::configToJson never serializes it), so
 *  flipping any knob cannot invalidate a corpus or change results. */
struct TelemetryConfig
{
    /** Chrome trace-event JSON output path (empty: tracing off). */
    std::string traceOutPath;
    /** Heartbeat JSONL path ("-" = stdout; empty: heartbeats off). */
    std::string heartbeatPath;
    double heartbeatIntervalSec = 1.0;
    /** Per-violation pipeline trace directory (empty: off). When set
     *  and the backend has caps().uarchTrace, RecordStage re-runs each
     *  journaled violation's input pair with the per-instruction tracer
     *  on and writes Konata (.kanata) + Chrome (.pipetrace.json) files
     *  here. Traced re-runs restore the pair's saved contexts, so
     *  results stay byte-identical with the knob on or off. */
    std::string uarchTraceDir;
};

/** One span the always-on hotspot tracker retained. */
struct SlowSpan
{
    std::string name;
    double seconds = 0;
    std::int64_t program = -1;
    std::string track; ///< owning sink's label
};

/**
 * Per-thread telemetry endpoint: a metrics registry, an optional span
 * buffer (tracing on), and a bounded slowest-spans list. Create through
 * CampaignTelemetry; record only from the owning thread.
 */
class TelemetrySink
{
  public:
    /** Spans retained per sink for the hotspot list. */
    static constexpr std::size_t kTopSpans = 32;

    TelemetrySink(std::string label, Clock::time_point epoch,
                  bool tracing, CampaignProgress *progress)
        : label_(std::move(label)), epoch_(epoch), tracing_(tracing),
          progress_(progress)
    {
    }

    const std::string &label() const { return label_; }
    MetricsRegistry &metrics() { return metrics_; }
    const MetricsRegistry &metrics() const { return metrics_; }
    bool tracing() const { return tracing_; }
    Clock::time_point epoch() const { return epoch_; }
    const SpanBuffer &spans() const { return spans_; }
    const std::vector<SlowSpan> &topSpans() const { return topSpans_; }

    /**
     * Record one completed timed section: adds @p seconds to the timer
     * named @p name, considers it for the slowest-spans list, and (when
     * tracing) appends a span event starting at @p start.
     */
    void
    recordTimed(const char *name, Clock::time_point start,
                double seconds, std::int64_t program = -1)
    {
        metrics_.timer(name).add(seconds);
        noteSlow(name, seconds, program);
        if (tracing_) {
            spans_.complete(
                name,
                std::chrono::duration<double, std::micro>(start - epoch_)
                    .count(),
                seconds * 1e6, program);
        }
    }

    /** Count a backend worker restart (metrics + live heartbeat). */
    void
    noteBackendRestart()
    {
        metrics_.counter("backend.restarts").add();
        if (progress_)
            progress_->backendRestarts.fetch_add(
                1, std::memory_order_relaxed);
    }

  private:
    void noteSlow(const char *name, double seconds,
                  std::int64_t program);

    std::string label_;
    Clock::time_point epoch_;
    bool tracing_;
    CampaignProgress *progress_;
    MetricsRegistry metrics_;
    SpanBuffer spans_;
    std::vector<SlowSpan> topSpans_; ///< kept sorted, slowest first
};

/**
 * RAII timed section. With a null sink this is a complete no-op (no
 * clock read); otherwise the destructor records one timed section on
 * the sink — timer always, span event only when tracing.
 */
class SpanScope
{
  public:
    SpanScope(TelemetrySink *sink, const char *name,
              std::int64_t program = -1)
        : sink_(sink), name_(name), program_(program)
    {
        if (sink_)
            start_ = Clock::now();
    }

    ~SpanScope()
    {
        if (!sink_)
            return;
        const double seconds =
            std::chrono::duration<double>(Clock::now() - start_)
                .count();
        sink_->recordTimed(name_, start_, seconds, program_);
    }

    SpanScope(const SpanScope &) = delete;
    SpanScope &operator=(const SpanScope &) = delete;

  private:
    TelemetrySink *sink_;
    const char *name_;
    std::int64_t program_;
    Clock::time_point start_;
};

/**
 * Campaign-lifetime telemetry owner. The scheduler creates one per
 * campaign run; shard sinks exist up front, extra sinks (backend lanes)
 * are created on demand (creation is mutex-protected; recording is
 * not — each sink stays thread-confined). Aggregation members
 * (mergedMetrics, topSpans, traceJson) must only run after every
 * recording thread has quiesced.
 */
class CampaignTelemetry
{
  public:
    CampaignTelemetry(TelemetryConfig cfg, unsigned shards,
                      std::uint64_t totalPrograms,
                      Clock::time_point epoch);
    ~CampaignTelemetry();

    CampaignTelemetry(const CampaignTelemetry &) = delete;
    CampaignTelemetry &operator=(const CampaignTelemetry &) = delete;

    const TelemetryConfig &config() const { return cfg_; }
    bool tracingEnabled() const { return !cfg_.traceOutPath.empty(); }
    Clock::time_point epoch() const { return epoch_; }

    CampaignProgress &progress() { return progress_; }
    TelemetrySink &schedulerSink() { return *scheduler_; }
    TelemetrySink &shardSink(unsigned shard)
    {
        return *shards_[shard];
    }

    /** Create a sink with @p label (e.g. "shard0/sim0"). Thread-safe;
     *  the returned sink is for one thread's exclusive use. */
    TelemetrySink &newSink(const std::string &label);

    /** Start/stop the heartbeat channel per config (no-ops when the
     *  path is empty). stop is idempotent and runs at destruction. */
    void startHeartbeat();
    void stopHeartbeat();

    /** Merge every sink's registry (recording threads quiesced). */
    MetricsSnapshot mergedMetrics() const;

    /** Campaign-wide slowest spans, slowest first, at most @p n. */
    std::vector<SlowSpan> topSpans(std::size_t n = 20) const;

    /** Serialize all span buffers as one Chrome trace. */
    std::string traceJson() const;

    /** Write traceJson() to cfg.traceOutPath (no-op when tracing is
     *  off). Throws std::runtime_error when the file cannot be
     *  written. */
    void writeTraceFile() const;

  private:
    TelemetryConfig cfg_;
    Clock::time_point epoch_;
    CampaignProgress progress_;
    mutable std::mutex sinkMu_; ///< guards sink creation only
    std::deque<TelemetrySink> sinks_;
    std::vector<TelemetrySink *> shards_;
    TelemetrySink *scheduler_ = nullptr;
    HeartbeatEmitter heartbeat_;
};

/**
 * Serialize a merged snapshot plus hotspot list as metrics.json
 * (persisted next to the corpus by the scheduler; rendered by
 * `campaign_cli stats`). Histograms store derived percentiles, not raw
 * samples, to keep the artifact small.
 */
std::string metricsJson(const MetricsSnapshot &snapshot,
                        const std::vector<SlowSpan> &topSpans);

} // namespace amulet::telemetry

#endif // AMULET_TELEMETRY_TELEMETRY_HH

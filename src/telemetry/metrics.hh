/**
 * @file
 * Campaign metrics registry: typed counters/gauges/timers/histograms
 * registered by name.
 *
 * The paper's headline artifacts (table2 time breakdowns, table3
 * throughput/yield ablations) are observability data; before this layer
 * every new measurement meant hand-threading another field through
 * CampaignStats and TimeBreakdown. The registry replaces that with one
 * API: a component asks its (thread-confined) registry for an
 * instrument by name and records into it with plain loads/stores — no
 * locks, no atomics on the hot path. The campaign scheduler merges the
 * per-shard registries once, at campaign end, into a single
 * MetricsSnapshot that feeds CampaignStats::times, BENCH_*.json
 * percentiles, metrics.json persistence, and `campaign_cli stats`.
 *
 * Threading model: one MetricsRegistry is owned by exactly one thread
 * (a shard's worker thread, a backend's simulation thread, the
 * scheduler). Cross-thread aggregation happens only through merge(),
 * after the owning thread has quiesced — the same discipline the
 * ViolationSink already imposes on outcomes. Live cross-thread
 * visibility (heartbeats) goes through telemetry::CampaignProgress
 * atomics instead, never through a registry.
 */

#ifndef AMULET_TELEMETRY_METRICS_HH
#define AMULET_TELEMETRY_METRICS_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace amulet::telemetry
{

/** Instrument flavors a registry can hand out. One name maps to one
 *  kind for the lifetime of the registry (re-requesting with another
 *  kind throws — silent aliasing would corrupt merges). */
enum class MetricKind : std::uint8_t
{
    Counter,   ///< monotonic event count
    Gauge,     ///< last-written value
    Timer,     ///< accumulated seconds + observation count
    Histogram, ///< sample distribution (percentiles)
};

const char *metricKindName(MetricKind kind);

/** Monotonic counter. */
class Counter
{
  public:
    void add(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/** Last-written value. */
class Gauge
{
  public:
    void
    set(double v)
    {
        value_ = v;
        written_ = true;
    }

    double value() const { return value_; }
    bool written() const { return written_; }

  private:
    double value_ = 0;
    bool written_ = false;
};

/** Accumulated wall time. */
class Timer
{
  public:
    void
    add(double seconds)
    {
        totalSec_ += seconds;
        ++count_;
    }

    /** Fold a pre-aggregated (total, observations) pair in — merges and
     *  bulk imports (e.g. a worker process's breakdown). */
    void
    accumulate(double totalSec, std::uint64_t count)
    {
        totalSec_ += totalSec;
        count_ += count;
    }

    double totalSec() const { return totalSec_; }
    std::uint64_t count() const { return count_; }

  private:
    double totalSec_ = 0;
    std::uint64_t count_ = 0;
};

/**
 * Sample distribution with a bounded, deterministically decimated
 * reservoir. Sum/count/min/max are exact over every observation; the
 * retained samples (the percentile source) are thinned once the
 * reservoir fills: retention halves (keep every 2nd, then every 4th,
 * ...) so memory stays bounded for million-input campaigns while the
 * thinning pattern is a pure function of the observation sequence —
 * no RNG, so equal runs yield equal snapshots.
 */
class Histogram
{
  public:
    /** Default reservoir bound (samples retained for percentiles). */
    static constexpr std::size_t kDefaultReservoir = 1 << 16;

    explicit Histogram(std::size_t reservoir = kDefaultReservoir)
        : reservoir_(reservoir ? reservoir : 1)
    {
    }

    void observe(double v);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /** Nearest-rank percentile over the retained samples; p clamped
     *  into [0,1]. */
    double percentile(double p) const;

    /** Retained (possibly decimated) samples, in observation order. */
    const std::vector<double> &samples() const { return samples_; }

    /** Current decimation stride (1 = every observation retained). */
    std::uint64_t stride() const { return stride_; }

    /** Fold @p other into this histogram (exact moments; reservoirs
     *  concatenate then re-thin to the bound). */
    void merge(const Histogram &other);

  private:
    void thin();

    std::size_t reservoir_;
    std::uint64_t count_ = 0;
    double sum_ = 0;
    double min_ = 0;
    double max_ = 0;
    std::uint64_t stride_ = 1;   ///< retain every stride-th observation
    std::uint64_t sinceKept_ = 0;
    std::vector<double> samples_;
};

/** One merged instrument in a snapshot. */
struct MetricValue
{
    MetricKind kind = MetricKind::Counter;
    /** Counter value, gauge value, or timer total seconds. */
    double value = 0;
    /** Timer/histogram observation count. */
    std::uint64_t count = 0;
    /** Histogram moments and percentile source. */
    double sum = 0;
    double min = 0;
    double max = 0;
    std::vector<double> samples;

    double percentile(double p) const;
};

/** Merged registry contents, keyed by instrument name. std::map so the
 *  iteration (and any serialization built on it) is canonical. */
using MetricsSnapshot = std::map<std::string, MetricValue>;

/**
 * Instrument registry. Lookup is by name (O(log n), amortized away by
 * holding the returned reference); recording through a held reference
 * is a plain field update.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** @name Instrument lookup (registers on first use).
     *  Throws std::logic_error when @p name is already registered with
     *  a different kind. */
    /// @{
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Timer &timer(const std::string &name);
    Histogram &histogram(const std::string &name);
    /// @}

    bool empty() const { return instruments_.empty(); }

    /** Fold @p other into this registry (campaign-end aggregation; the
     *  other registry's owning thread must have quiesced). Gauges take
     *  the other side's value when it was ever written. */
    void merge(const MetricsRegistry &other);

    /** Immutable merged view for reporting/serialization. */
    MetricsSnapshot snapshot() const;

  private:
    struct Instrument
    {
        MetricKind kind;
        Counter counter;
        Gauge gauge;
        Timer timer;
        std::unique_ptr<Histogram> histogram;
    };

    Instrument &get(const std::string &name, MetricKind kind);

    std::map<std::string, Instrument> instruments_;
};

/** Sum of `time.*` timer totals in @p snapshot — the named sections of
 *  the campaign time breakdown. The scheduler derives otherSec as
 *  (wall x jobs) minus this, and asserts the sections never exceed the
 *  available worker time (within epsilon) on the in-process backend. */
double timedSectionTotalSec(const MetricsSnapshot &snapshot);

} // namespace amulet::telemetry

#endif // AMULET_TELEMETRY_METRICS_HH

#include "telemetry/telemetry.hh"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace amulet::telemetry
{

// === TelemetrySink =========================================================

void
TelemetrySink::noteSlow(const char *name, double seconds,
                        std::int64_t program)
{
    if (topSpans_.size() >= kTopSpans &&
        seconds <= topSpans_.back().seconds)
        return;
    SlowSpan span{name, seconds, program, label_};
    auto pos = std::upper_bound(
        topSpans_.begin(), topSpans_.end(), seconds,
        [](double s, const SlowSpan &e) { return s > e.seconds; });
    topSpans_.insert(pos, std::move(span));
    if (topSpans_.size() > kTopSpans)
        topSpans_.pop_back();
}

// === CampaignTelemetry =====================================================

CampaignTelemetry::CampaignTelemetry(TelemetryConfig cfg,
                                     unsigned shards,
                                     std::uint64_t totalPrograms,
                                     Clock::time_point epoch)
    : cfg_(std::move(cfg)), epoch_(epoch),
      progress_(shards, totalPrograms), heartbeat_(progress_, epoch)
{
    const bool tracing = tracingEnabled();
    scheduler_ =
        &sinks_.emplace_back("sched", epoch_, tracing, &progress_);
    for (unsigned s = 0; s < shards; ++s) {
        shards_.push_back(&sinks_.emplace_back(
            "shard" + std::to_string(s), epoch_, tracing, &progress_));
    }
}

CampaignTelemetry::~CampaignTelemetry() { stopHeartbeat(); }

TelemetrySink &
CampaignTelemetry::newSink(const std::string &label)
{
    std::lock_guard<std::mutex> lock(sinkMu_);
    return sinks_.emplace_back(label, epoch_, tracingEnabled(),
                               &progress_);
}

void
CampaignTelemetry::startHeartbeat()
{
    if (cfg_.heartbeatPath.empty())
        return;
    heartbeat_.start(cfg_.heartbeatPath, cfg_.heartbeatIntervalSec);
}

void
CampaignTelemetry::stopHeartbeat() { heartbeat_.stop(); }

MetricsSnapshot
CampaignTelemetry::mergedMetrics() const
{
    std::lock_guard<std::mutex> lock(sinkMu_);
    MetricsRegistry merged;
    for (const TelemetrySink &sink : sinks_)
        merged.merge(sink.metrics());
    return merged.snapshot();
}

std::vector<SlowSpan>
CampaignTelemetry::topSpans(std::size_t n) const
{
    std::lock_guard<std::mutex> lock(sinkMu_);
    std::vector<SlowSpan> all;
    for (const TelemetrySink &sink : sinks_) {
        all.insert(all.end(), sink.topSpans().begin(),
                   sink.topSpans().end());
    }
    std::stable_sort(all.begin(), all.end(),
                     [](const SlowSpan &a, const SlowSpan &b) {
                         return a.seconds > b.seconds;
                     });
    if (all.size() > n)
        all.resize(n);
    return all;
}

std::string
CampaignTelemetry::traceJson() const
{
    std::lock_guard<std::mutex> lock(sinkMu_);
    std::vector<TraceTrack> tracks;
    tracks.reserve(sinks_.size());
    for (const TelemetrySink &sink : sinks_)
        tracks.push_back({sink.label(), &sink.spans()});
    return exportChromeTrace(tracks);
}

void
CampaignTelemetry::writeTraceFile() const
{
    if (!tracingEnabled())
        return;
    const std::string json = traceJson();
    std::FILE *f = std::fopen(cfg_.traceOutPath.c_str(), "w");
    if (!f)
        throw std::runtime_error("telemetry: cannot write trace to '" +
                                 cfg_.traceOutPath + "'");
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
}

// === metrics.json ==========================================================

std::string
metricsJson(const MetricsSnapshot &snapshot,
            const std::vector<SlowSpan> &topSpans)
{
    std::string out;
    out.reserve(4096);
    out += "{\"version\":1,\"metrics\":{";
    bool first = true;
    for (const auto &[name, v] : snapshot) {
        if (!first)
            out += ',';
        first = false;
        appendJsonString(out, name);
        out += ":{\"kind\":\"";
        out += metricKindName(v.kind);
        out += '"';
        switch (v.kind) {
          case MetricKind::Counter:
          case MetricKind::Gauge:
            out += ",\"value\":";
            appendJsonNumber(out, v.value);
            break;
          case MetricKind::Timer:
            out += ",\"totalSec\":";
            appendJsonNumber(out, v.value);
            out += ",\"count\":";
            appendJsonNumber(out, static_cast<double>(v.count));
            break;
          case MetricKind::Histogram:
            out += ",\"count\":";
            appendJsonNumber(out, static_cast<double>(v.count));
            out += ",\"sum\":";
            appendJsonNumber(out, v.sum);
            out += ",\"mean\":";
            appendJsonNumber(out, v.value);
            out += ",\"min\":";
            appendJsonNumber(out, v.min);
            out += ",\"max\":";
            appendJsonNumber(out, v.max);
            out += ",\"p50\":";
            appendJsonNumber(out, v.percentile(0.50));
            out += ",\"p95\":";
            appendJsonNumber(out, v.percentile(0.95));
            out += ",\"p99\":";
            appendJsonNumber(out, v.percentile(0.99));
            break;
        }
        out += '}';
    }
    out += "},\"topSpans\":[";
    first = true;
    for (const SlowSpan &span : topSpans) {
        if (!first)
            out += ',';
        first = false;
        out += "{\"name\":";
        appendJsonString(out, span.name);
        out += ",\"seconds\":";
        appendJsonNumber(out, span.seconds);
        out += ",\"program\":";
        appendJsonNumber(out, static_cast<double>(span.program));
        out += ",\"track\":";
        appendJsonString(out, span.track);
        out += '}';
    }
    out += "]}";
    return out;
}

} // namespace amulet::telemetry

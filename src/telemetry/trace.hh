/**
 * @file
 * Span tracing: scoped wall-clock spans exported as Chrome trace-event
 * JSON (chrome://tracing, Perfetto).
 *
 * Tracing answers the question the per-stage TimeBreakdown cannot:
 * *where inside a stage* the time goes. Each TelemetrySink (one per
 * shard worker thread, backend lane, or scheduler — see telemetry.hh)
 * owns a private span buffer, so recording is lock-free; the campaign
 * end merges the buffers into one trace file with one track (tid) per
 * sink. A CT-COND campaign traced this way shows the STT ctrace
 * hotspot as a dense band of `stage.ctrace` spans, and the subprocess
 * backend's wire round-trips as `wire.*` spans nested under
 * `op.dispatchBatch`.
 *
 * Overhead contract: tracing is off by default, and a disabled sink's
 * span path is a single branch — no clock read, no allocation. Spans
 * never feed back into campaign results, so exports are byte-identical
 * with tracing on or off (tests/test_telemetry.cc).
 */

#ifndef AMULET_TELEMETRY_TRACE_HH
#define AMULET_TELEMETRY_TRACE_HH

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace amulet::telemetry
{

/** Telemetry wall clock (matches the campaign clock). */
using Clock = std::chrono::steady_clock;

/** One completed span ("X" phase event in the Chrome trace format). */
struct SpanEvent
{
    std::string name;
    double tsUs = 0;  ///< start, microseconds since the campaign epoch
    double durUs = 0;
    /** Program index the span worked on (<0: not program-scoped). */
    std::int64_t program = -1;
};

/** One sink's private, append-only span buffer. */
class SpanBuffer
{
  public:
    void
    complete(std::string name, double ts_us, double dur_us,
             std::int64_t program)
    {
        events_.push_back(
            {std::move(name), ts_us, dur_us, program});
    }

    const std::vector<SpanEvent> &events() const { return events_; }
    std::size_t size() const { return events_.size(); }

  private:
    std::vector<SpanEvent> events_;
};

/** One named track of a finished trace (tid = position in the list). */
struct TraceTrack
{
    std::string label;           ///< "shard0", "shard0/lane1", "sched"
    const SpanBuffer *buffer = nullptr;
};

/**
 * Serialize tracks as Chrome trace-event JSON: thread-name metadata per
 * track plus one complete ("X") event per span, all in pid 0.
 * Loadable by Perfetto and chrome://tracing.
 */
std::string exportChromeTrace(const std::vector<TraceTrack> &tracks);

/** Append one JSON-escaped string literal (with quotes) to @p out. */
void appendJsonString(std::string &out, const std::string &text);

/** Append a JSON number (%.17g — round-trips doubles) to @p out. */
void appendJsonNumber(std::string &out, double value);

} // namespace amulet::telemetry

#endif // AMULET_TELEMETRY_TRACE_HH

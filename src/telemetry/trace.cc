#include "telemetry/trace.hh"

#include <cstdio>

namespace amulet::telemetry
{

void
appendJsonString(std::string &out, const std::string &text)
{
    out += '"';
    for (char c : text) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
appendJsonNumber(std::string &out, double value)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out += buf;
}

std::string
exportChromeTrace(const std::vector<TraceTrack> &tracks)
{
    std::string out;
    out.reserve(4096);
    out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    auto comma = [&] {
        if (!first)
            out += ',';
        first = false;
    };
    // Thread-name metadata first, so Perfetto labels every track even
    // when a track recorded nothing.
    for (std::size_t tid = 0; tid < tracks.size(); ++tid) {
        comma();
        out += "{\"ph\":\"M\",\"pid\":0,\"tid\":";
        appendJsonNumber(out, static_cast<double>(tid));
        out += ",\"name\":\"thread_name\",\"args\":{\"name\":";
        appendJsonString(out, tracks[tid].label);
        out += "}}";
    }
    for (std::size_t tid = 0; tid < tracks.size(); ++tid) {
        if (!tracks[tid].buffer)
            continue;
        for (const SpanEvent &e : tracks[tid].buffer->events()) {
            comma();
            out += "{\"ph\":\"X\",\"pid\":0,\"tid\":";
            appendJsonNumber(out, static_cast<double>(tid));
            out += ",\"name\":";
            appendJsonString(out, e.name);
            out += ",\"ts\":";
            appendJsonNumber(out, e.tsUs);
            out += ",\"dur\":";
            appendJsonNumber(out, e.durUs);
            if (e.program >= 0) {
                out += ",\"args\":{\"program\":";
                appendJsonNumber(out, static_cast<double>(e.program));
                out += "}";
            }
            out += "}";
        }
    }
    out += "]}";
    return out;
}

} // namespace amulet::telemetry

/**
 * @file
 * Live campaign heartbeats: periodic JSONL snapshots of campaign
 * progress, streamed to a file (or stdout) while the campaign runs.
 *
 * The heartbeat doubles as the liveness protocol the distributed
 * campaign fabric (ROADMAP) will reuse: each line carries elapsed time,
 * aggregate throughput, and a per-shard progress index that is strictly
 * monotonic per shard — exactly what a coordinator needs to detect a
 * stalled lease. Until then it is the operator's `tail -f` view of a
 * long campaign.
 *
 * Data model: CampaignProgress is a block of relaxed atomics updated by
 * the scheduler's report path (one bump per finished program — far off
 * the simulator hot loop). The emitter thread samples them; it never
 * touches a MetricsRegistry (those are thread-confined, see
 * metrics.hh). Heartbeats never feed back into campaign results, so
 * exports are byte-identical with the channel on or off.
 */

#ifndef AMULET_TELEMETRY_HEARTBEAT_HH
#define AMULET_TELEMETRY_HEARTBEAT_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/trace.hh" // Clock, JSON append helpers

namespace amulet::telemetry
{

/** One shard's live counters (relaxed atomics; heartbeat-sampled). */
struct ShardLive
{
    /** Strictly increases with every program this shard reports — the
     *  per-shard liveness/lease index. */
    std::atomic<std::uint64_t> progressIndex{0};
    /** Program index the shard reported most recently (-1: none). */
    std::atomic<std::int64_t> currentProgram{-1};
    std::atomic<std::uint64_t> programsDone{0};
};

/** Campaign-wide live counters. */
class CampaignProgress
{
  public:
    CampaignProgress(unsigned shards, std::uint64_t totalPrograms)
        : totalPrograms_(totalPrograms), shards_(shards)
    {
    }

    std::uint64_t totalPrograms() const { return totalPrograms_; }
    unsigned shardCount() const
    {
        return static_cast<unsigned>(shards_.size());
    }
    ShardLive &shard(unsigned i) { return shards_[i]; }
    const ShardLive &shard(unsigned i) const { return shards_[i]; }

    std::atomic<std::uint64_t> programsDone{0};
    std::atomic<std::uint64_t> resumedPrograms{0};
    std::atomic<std::uint64_t> testCases{0};
    std::atomic<std::uint64_t> violations{0};
    std::atomic<std::uint64_t> backendRestarts{0};
    /** Stage-second accumulators (microseconds; doubles can't be
     *  fetch_add'd portably pre-C++20-on-all-targets). */
    std::atomic<std::uint64_t> testGenUs{0};
    std::atomic<std::uint64_t> ctraceUs{0};
    std::atomic<std::uint64_t> filterUs{0};

  private:
    std::uint64_t totalPrograms_;
    std::vector<ShardLive> shards_;
};

/** Serialize one heartbeat snapshot (a single JSONL line, no trailing
 *  newline). @p elapsedSec is time since the campaign epoch. */
std::string heartbeatLine(const CampaignProgress &progress,
                          double elapsedSec);

/**
 * Periodic heartbeat writer. start() opens the sink ("-" = stdout) and
 * emits one line immediately, then one per interval; stop() emits a
 * final line and joins. Lines are flushed per write so `tail -f` and
 * pipe readers see them live.
 */
class HeartbeatEmitter
{
  public:
    HeartbeatEmitter(const CampaignProgress &progress,
                     Clock::time_point epoch);
    ~HeartbeatEmitter();

    HeartbeatEmitter(const HeartbeatEmitter &) = delete;
    HeartbeatEmitter &operator=(const HeartbeatEmitter &) = delete;

    /** Begin emitting. Throws std::runtime_error when @p path cannot be
     *  opened. No-op when already running. */
    void start(const std::string &path, double intervalSec);

    /** Emit the final snapshot and stop the thread. Idempotent. */
    void stop();

  private:
    void emitLine();

    const CampaignProgress &progress_;
    Clock::time_point epoch_;
    std::FILE *out_ = nullptr;
    bool ownsFile_ = false;
    double intervalSec_ = 1.0;
    std::thread thread_;
    std::mutex mu_;
    std::condition_variable cv_;
    bool stopping_ = false;
    bool running_ = false;
};

} // namespace amulet::telemetry

#endif // AMULET_TELEMETRY_HEARTBEAT_HH

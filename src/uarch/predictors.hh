/**
 * @file
 * Branch-direction, branch-target, and memory-dependence predictors.
 *
 * Predictor state persists across test inputs in AMuLeT-Opt (§3.2), is
 * part of the μarch context that violation validation swaps, and the
 * branch-predictor snapshot is one of the alternative μarch trace formats
 * evaluated in Table 5.
 */

#ifndef AMULET_UARCH_PREDICTORS_HH
#define AMULET_UARCH_PREDICTORS_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "uarch/params.hh"

namespace amulet::uarch
{

/** Gshare direction predictor + direct-mapped BTB. */
class BranchPredictor
{
  public:
    explicit BranchPredictor(const CoreParams &params);

    /** Outcome of a fetch-time prediction. */
    struct Prediction
    {
        bool taken = false;     ///< predicted direction
        bool btbHit = false;    ///< target known?
        std::size_t targetIdx = 0; ///< predicted target (valid if btbHit)
        std::uint32_t ghrBefore = 0; ///< GHR checkpoint for recovery
    };

    /**
     * Predict a branch at fetch.
     * Conditional branches consult the PHT; a taken prediction is only
     * actionable with a BTB target. Unconditional branches predict taken
     * with the BTB target (fall-through on a BTB miss, i.e. a guaranteed
     * misprediction on first encounter).
     */
    Prediction predict(Addr pc, bool is_conditional);

    /** Shift a (speculative) outcome into the GHR at fetch. */
    void updateGhrSpeculative(bool taken);

    /** Restore the GHR after a squash. */
    void restoreGhr(std::uint32_t ghr) { ghr_ = ghr & ghrMask_; }

    /** Train PHT/BTB at commit. @p ghr_at_fetch indexes the PHT entry the
     *  prediction actually used. */
    void train(Addr pc, bool taken, std::size_t target_idx,
               std::uint32_t ghr_at_fetch);

    /** Reset to power-on state. */
    void reset();

    /** @name μarch context snapshot (validation + BP-state trace) */
    /// @{
    struct State
    {
        std::uint32_t ghr = 0;
        std::vector<std::uint8_t> pht;
        std::vector<std::uint64_t> btbTags;
        std::vector<std::uint64_t> btbTargets;

        bool operator==(const State &) const = default;
    };
    State save() const;
    void restore(const State &state);
    /** Flattened words for the BP-state μarch trace format. */
    std::vector<std::uint64_t> traceWords() const;
    /// @}

    std::uint32_t ghr() const { return ghr_; }

  private:
    std::size_t phtIndex(Addr pc, std::uint32_t ghr) const;
    std::size_t btbIndex(Addr pc) const;

    std::uint32_t ghrMask_;
    std::uint32_t ghr_ = 0;
    std::vector<std::uint8_t> pht_; ///< 2-bit counters, init weakly-not-taken
    struct BtbEntry
    {
        bool valid = false;
        Addr tag = 0;
        std::size_t targetIdx = 0;
    };
    std::vector<BtbEntry> btb_;
};

/**
 * Memory-dependence predictor (store-set flavoured, collapsed to a
 * per-load-PC saturating counter: predict that the load must wait for
 * older unresolved stores once it has violated memory order before).
 * Untrained loads speculate past unknown-address stores — the behaviour
 * Spectre-v4 exploits.
 */
class MemDepPredictor
{
  public:
    explicit MemDepPredictor(const CoreParams &params);

    /** Should this load wait for older unresolved-address stores? */
    bool predictDependence(Addr load_pc) const;

    /** Train on a memory-order violation by this load. */
    void trainViolation(Addr load_pc);

    void reset();

    /** @name μarch context snapshot */
    /// @{
    using State = std::vector<std::uint8_t>;
    State save() const { return table_; }
    void restore(const State &s) { table_ = s; }
    /// @}

  private:
    std::size_t indexOf(Addr pc) const;
    std::vector<std::uint8_t> table_;
};

} // namespace amulet::uarch

#endif // AMULET_UARCH_PREDICTORS_HH

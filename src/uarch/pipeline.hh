/**
 * @file
 * Out-of-order speculative pipeline (the gem5-O3 substitute).
 *
 * A cycle-stepped core with: fetch along the predicted path (stalling on
 * L1I misses and running ahead past the test's HALT), register renaming,
 * dataflow issue, a load-store queue with store-to-load forwarding and
 * memory-dependence speculation (Spectre-v4), branch-misprediction and
 * memory-order squashes, and in-order commit. The memory side runs through
 * MemSystem's in-order L1D controller queue with finite MSHRs.
 *
 * Execution is execute-at-issue: architectural values are computed from
 * the dataflow graph while the memory system provides timing and the
 * cache/TLB state that μarch traces snapshot. A Defense object is
 * consulted at fixed hook points (see defense/defense.hh).
 */

#ifndef AMULET_UARCH_PIPELINE_HH
#define AMULET_UARCH_PIPELINE_HH

#include <array>
#include <memory>
#include <vector>

#include "common/event_log.hh"
#include "common/ring_deque.hh"
#include "common/types.hh"
#include "isa/program.hh"
#include "mem/memory_image.hh"
#include "uarch/dyn_inst.hh"
#include "uarch/mem_system.hh"
#include "uarch/params.hh"
#include "uarch/predictors.hh"

namespace amulet::defense
{
class Defense;
} // namespace amulet::defense

namespace amulet::telemetry
{
class UarchTracer;
} // namespace amulet::telemetry

namespace amulet::uarch
{

/** Outcome of one test-case run. */
struct RunResult
{
    bool halted = false;        ///< HALT committed
    Cycle cycles = 0;
    std::uint64_t committedInsts = 0;
    std::uint64_t squashes = 0;
    bool hitCycleCap = false;

    bool operator==(const RunResult &) const = default;
};

/** One dynamic memory access, in execution order (μarch trace format 3). */
struct AccessRecord
{
    Addr pc;
    Addr addr;
    bool isStore;
    SeqNum seq;
    Cycle cycle;

    bool
    operator==(const AccessRecord &o) const
    {
        // Trace equality ignores seq/cycle: the observable is the ordered
        // list of (pc, addr, kind) transactions.
        return pc == o.pc && addr == o.addr && isStore == o.isStore;
    }
};

/** One fetch-time branch prediction (μarch trace format 4). */
struct BranchPredRecord
{
    Addr pc;
    Addr predTargetPc;

    bool operator==(const BranchPredRecord &) const = default;
};

/** The out-of-order core. */
class Pipeline
{
  public:
    Pipeline(const CoreParams &params, mem::MemoryImage &memory,
             EventLog &log);
    ~Pipeline();

    /** Attach the countermeasure under test (must outlive the pipeline).
     */
    void setDefense(defense::Defense *defense);

    /** Select the program to run (must outlive the run). */
    void setProgram(const isa::FlatProgram *prog);

    /** Attach a lifecycle tracer (nullptr to detach). Observability
     *  only: hooks fire after the pipeline's own bookkeeping and feed
     *  nothing back, so a run behaves identically traced or not. */
    void setTracer(telemetry::UarchTracer *tracer) { tracer_ = tracer; }

    /** Initialize the committed architectural register/flag state. */
    void setArchRegs(const std::array<RegVal, isa::kNumRegs> &regs,
                     isa::Flags flags);

    /** Run from instruction 0 until HALT commits (or the cycle cap).
     *  @p cycle_cap overrides params().maxCyclesPerRun when nonzero —
     *  the harness uses it to run its fixed, known-terminating
     *  boot/priming programs under a bound proportional to their own
     *  length, so a deliberately tight test-run cap cannot truncate
     *  startup or cache priming. */
    RunResult run(Cycle cycle_cap = 0);

    /** @name State access */
    /// @{
    MemSystem &memSys() { return mem_; }
    const MemSystem &memSys() const { return mem_; }
    BranchPredictor &branchPredictor() { return bp_; }
    MemDepPredictor &memDepPredictor() { return mdp_; }
    const std::array<RegVal, isa::kNumRegs> &archRegs() const
    {
        return committedRegs_;
    }
    isa::Flags archFlags() const { return committedFlags_; }
    const CoreParams &params() const { return params_; }
    Cycle now() const { return now_; }
    EventLog &log() { return log_; }
    /// @}

    /** @name Execution-order logs (alternative μarch trace formats) */
    /// @{
    const std::vector<AccessRecord> &accessOrder() const
    {
        return accessOrder_;
    }
    const std::vector<BranchPredRecord> &branchPredOrder() const
    {
        return branchPredOrder_;
    }
    /// @}

    /** @name Cycle skipping (event-horizon fast-forward)
     *  Results-invariant: with skipping on, quiescent cycles — cycles
     *  in which no pipeline, memory-system, or defense state can change
     *  — are elided by jumping now_ to the next scheduled event, so
     *  committed-instruction cycles, EventLog timestamps, tracer
     *  lifecycles, and traces are byte-identical either way
     *  (tests/test_cycle_skip.cc; src/uarch/README.md has the soundness
     *  argument). */
    /// @{
    void setCycleSkip(bool on) { cycleSkip_ = on; }
    bool cycleSkip() const { return cycleSkip_; }
    /** @name Per-run skip statistics (reset at each run()) */
    /// @{
    std::uint64_t skippedCycles() const { return skippedCycles_; }
    std::uint64_t skipWindows() const { return skipWindows_; }
    const std::vector<Cycle> &skipLengths() const { return skipLengths_; }
    /// @}
    /// @}

    /** @name Defense support */
    /// @{
    /** In-flight instruction by sequence number (nullptr if retired,
     *  squashed, or never existed). */
    DynInst *entry(SeqNum seq);
    const DynInst *entry(SeqNum seq) const;
    /** O(1) producer resolution through the rename-time slot link
     *  (nullptr: producer retired — read committed state). */
    const DynInst *producerOf(const DynInst::SrcReg &src) const
    {
        if (src.producer == kNoSeq)
            return nullptr;
        const DynInst *p = rob_.atSlot(src.producerSlot);
        return p && p->seq == src.producer ? p : nullptr;
    }
    const DynInst *flagsProducerOf(const DynInst &inst) const
    {
        if (inst.flagsProducer == kNoSeq)
            return nullptr;
        const DynInst *p = rob_.atSlot(inst.flagsProducerSlot);
        return p && p->seq == inst.flagsProducer ? p : nullptr;
    }
    /** The reorder buffer, oldest first. */
    RingDeque<DynInst> &rob() { return rob_; }
    /** Is there an older in-flight load than @p seq marked unsafe-held?
     *  (SpecLFB's isPrevNoUnsafe check.) */
    bool olderUnsafeLoadExists(SeqNum seq) const;
    /** Resolve the value of one renamed source (producer must be executed
     *  or retired). */
    std::uint64_t readSrcValue(const DynInst::SrcReg &src) const;
    /// @}

  private:
    /** @name Per-cycle stages */
    /// @{
    void computeSafety();
    void commitStage();
    void executeStage();
    void issueStage();
    void advanceMemOps();
    void fetchStage();
    /// @}

    /** Ready-list handle: (stable ROB slot, seq) pair, validated lazily
     *  — a stale handle (owner committed or squashed, slot possibly
     *  reused) fails the seq check and is dropped on the next walk. */
    struct SlotRef
    {
        std::uint32_t slot;
        SeqNum seq;
    };

    /** @name Helpers */
    /// @{
    void reset();
    DynInst makeDynInst(std::size_t idx);
    isa::Flags readFlagsValue(const DynInst &inst) const;
    bool srcsReady(const DynInst &inst, bool address_only) const;
    bool srcsReadyScan(const DynInst &inst, bool address_only) const;
    void broadcastExecuted(const DynInst &producer);
    bool tryIssue(DynInst &inst);
    void issueStageWithFences();
    DynInst *liveAt(const SlotRef &ref);
    static void insertBySeq(std::vector<SlotRef> &list,
                            std::uint32_t slot, SeqNum seq);
    Cycle nextLocalEventCycle() const;
    void skipToNextEvent(Cycle cap);
    Addr computeEffAddr(const DynInst &inst) const;
    void finalizeData(DynInst &inst);
    void resolveBranch(DynInst &inst);
    void squashAfter(SeqNum keep_up_to, std::size_t new_fetch_idx,
                     std::uint32_t restore_ghr, EventKind reason,
                     SeqNum trigger_seq);
    void rebuildRenameTable();
    void storeResolved(DynInst &store);
    void tryStartLoadAccess(DynInst &inst);
    void onMemReqComplete(const MemReq &req);
    bool
    rangesOverlap(Addr a, unsigned asz, Addr b, unsigned bsz) const
    {
        return a < b + bsz && b < a + asz;
    }
    /// @}

    const CoreParams &params_;
    mem::MemoryImage &memory_;
    EventLog &log_;
    MemSystem mem_;
    BranchPredictor bp_;
    MemDepPredictor mdp_;
    defense::Defense *defense_ = nullptr;
    std::unique_ptr<defense::Defense> defaultDefense_;
    telemetry::UarchTracer *tracer_ = nullptr;

    const isa::FlatProgram *prog_ = nullptr;

    /** @name Run state */
    /// @{
    /** Ring buffer sized to robSize up front: per-input reset keeps the
     *  slots, so steady-state fetch/commit never allocates. */
    RingDeque<DynInst> rob_;
    SeqNum nextSeq_ = 1;
    std::size_t fetchIdx_ = 0;
    bool fetchStalledOnL1i_ = false;
    std::array<SeqNum, isa::kNumRegs> renameReg_{};
    SeqNum renameFlags_ = kNoSeq;
    /** ROB physical slot of each rename-table producer (kNoSlot where
     *  renameReg_/renameFlags_ is kNoSeq); consulted at rename so every
     *  SrcReg carries its producer's slot link. */
    std::array<std::uint32_t, isa::kNumRegs> renameRegSlot_{};
    std::uint32_t renameFlagsSlot_ = DynInst::kNoSlot;

    /** @name Wakeup scoreboard ready lists (seq-sorted, lazily
     *  validated). issueReady_: not-yet-issued entries whose relevant
     *  pending counter is zero (defense-blocked entries stay and are
     *  retried). execList_: issued-not-yet-executed entries. With any
     *  fence in flight issueStage falls back to the full in-order scan
     *  (the fence barrier needs cumulative older-executed state); the
     *  lists stay maintained throughout so the walk resumes complete. */
    /// @{
    std::vector<SlotRef> issueReady_;
    std::vector<SlotRef> execList_;
    unsigned fencesInFlight_ = 0;
    /// @}

    /** @name Cycle skipping */
    /// @{
    bool cycleSkip_ = true;
    /** Any state change this cycle? Cheap filter only: quiescence is
     *  re-derived from state in nextLocalEventCycle(), so a missed
     *  progress site costs skip opportunities, never correctness. */
    bool progress_ = false;
    std::uint64_t skippedCycles_ = 0;
    std::uint64_t skipWindows_ = 0;
    std::vector<Cycle> skipLengths_;
    /// @}
    std::array<RegVal, isa::kNumRegs> committedRegs_{};
    isa::Flags committedFlags_;
    Cycle now_ = 0;
    bool halted_ = false;
    std::uint64_t committedInsts_ = 0;
    std::uint64_t squashes_ = 0;
    unsigned loadsInFlight_ = 0;
    unsigned storesInFlight_ = 0;
    /// @}

    std::vector<AccessRecord> accessOrder_;
    std::vector<BranchPredRecord> branchPredOrder_;
};

} // namespace amulet::uarch

#endif // AMULET_UARCH_PIPELINE_HH

/**
 * @file
 * Memory system: L1I/L1D/L2 caches, D-TLB, finite MSHRs, and in-order
 * cache-controller queues.
 *
 * The L1D controller processes its queue head-of-line: a request that
 * needs an MSHR when none is free stalls every request behind it — the
 * exact mechanism behind the same-core speculative interference finding
 * (UV2, §4.5.1). Defense-specific behaviours are expressed as request
 * flags (fill destination, invisible hits, the UV1 eviction bug) plus an
 * optional defense-owned side buffer (InvisiSpec speculative buffer /
 * SpecLFB line-fill buffer) probed after the L1D.
 */

#ifndef AMULET_UARCH_MEM_SYSTEM_HH
#define AMULET_UARCH_MEM_SYSTEM_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/event_log.hh"
#include "common/ring_deque.hh"
#include "common/types.hh"
#include "uarch/cache.hh"
#include "uarch/params.hh"
#include "uarch/tlb.hh"

namespace amulet::uarch
{

/** Request categories handled by the L1D controller. */
enum class ReqKind : std::uint8_t
{
    Load,            ///< demand load (possibly speculative)
    StoreInstall,    ///< committed store write-allocate
    SpecStoreInstall,///< CleanupSpec: speculative store install at execute
    Expose,          ///< InvisiSpec: make a safe load's line visible
    Cleanup,         ///< CleanupSpec: timed rollback slot (defense applies)
};

/** Where a demand miss's fill goes. */
enum class FillDest : std::uint8_t
{
    L1D,        ///< normal install (evicting if needed)
    SideBuffer, ///< defense buffer (spec buffer / LFB); no L1 install
    None,       ///< data only (no state change)
};

/** One memory-system request. */
struct MemReq
{
    ReqKind kind = ReqKind::Load;
    Addr lineAddr = 0;
    SeqNum seq = kNoSeq;   ///< owning instruction (kNoSeq for none)
    Addr pc = 0;
    FillDest dest = FillDest::L1D;
    bool invisibleHit = false;  ///< don't refresh LRU on an L1 hit
    bool probeSideBuffer = false; ///< side-buffer hits satisfy the request
    bool bugSpecEvict = false;  ///< InvisiSpec UV1: evict on full-set miss
    bool markNonSpec = false;   ///< CleanupSpec noClean metadata on touch
    bool splitPiece = false;    ///< part of a line-crossing access
    /** Cleanup payload (kind == Cleanup). */
    Addr cleanupInvalidate = kNoAddr;
    Addr cleanupRestore = kNoAddr;

    /** @name Filled in at completion */
    /// @{
    bool wasHit = false;        ///< L1 (or side-buffer) hit
    bool sideBufferHit = false;
    Addr evictedLine = kNoAddr; ///< line evicted by this fill/install
    bool evictedWasNonSpec = false; ///< victim carried the noClean mark
    /// @}
};

/** Defense-owned fully-associative line buffer (FIFO replacement). */
class SideBuffer
{
  public:
    explicit SideBuffer(unsigned capacity) : capacity_(capacity) {}

    bool contains(Addr line_addr) const;

    /** Insert a line; evicts the oldest if full.
     *  @return evicted line or kNoAddr. */
    Addr insert(Addr line_addr);

    void erase(Addr line_addr);
    void clear() { lines_.clear(); }
    std::size_t size() const { return lines_.size(); }
    std::vector<Addr> snapshot() const;

    /** FIFO-order contents (snapshot() sorts; replacement order needs
     *  the raw order). */
    std::vector<Addr> save() const;
    void restore(const std::vector<Addr> &lines);

  private:
    unsigned capacity_;
    std::deque<Addr> lines_;
};

/**
 * Full μarch warm-state snapshot of the memory system: every cache
 * tag array (with LRU clocks and CleanupSpec noClean marks), the
 * D-TLB, and the defense side buffer's contents. Captures exactly the
 * state that persists *between* runs — in-flight queues and MSHRs are
 * excluded because save/restore is only meaningful at run boundaries,
 * where resetInFlight() has emptied them.
 *
 * The prime-memoization contract (src/executor/README.md) rests on
 * this being complete: simulation after restore(snapshot) must be
 * cycle-identical to simulation after re-running the accesses that
 * produced the snapshot.
 */
struct MemSnapshot
{
    Cache::State l1d;
    Cache::State l1i;
    Cache::State l2;
    Tlb::State dtlb;
    bool hasSideBuffer = false;
    std::vector<Addr> sideBuffer;

    bool operator==(const MemSnapshot &) const = default;
};

/** The full cache/TLB hierarchy with timing. */
class MemSystem
{
  public:
    using CompletionHandler = std::function<void(const MemReq &)>;

    MemSystem(const CoreParams &params, EventLog &log);

    /** Handler invoked once per completed L1D request. */
    void setCompletionHandler(CompletionHandler handler)
    {
        onComplete_ = std::move(handler);
    }

    /** Defense-owned side buffer probed by flagged requests (or null). */
    void setSideBuffer(SideBuffer *buffer) { sideBuffer_ = buffer; }

    /** Enqueue a request on the (in-order) L1D controller queue. */
    void enqueueL1D(MemReq req);

    /** Request an instruction line (idempotent while outstanding). */
    void requestIfetch(Addr line_addr);

    /** Is the line holding @p pc in the L1I? (refreshes LRU) */
    bool ifetchHit(Addr pc);

    /**
     * Perform a D-TLB access for [addr, addr+size): fills missing pages
     * immediately, returns the access latency (1 on hit, walk latency on
     * any miss). Emits TlbFill events.
     */
    unsigned dtlbAccess(Addr addr, unsigned size, SeqNum seq, Addr pc);

    /** Advance one cycle: deliver fills/completions, process queue heads.
     */
    void tick(Cycle now);

    /**
     * Earliest cycle > @p now at which tick() can change any state or
     * emit any event (kNoEventCycle: fully idle). While either
     * controller queue is non-empty this is pinned to `now + 1` — the
     * head is processed (or logs its MshrStall/ExposeStall) every
     * cycle, so no cycle may be elided. With empty queues the only
     * time-gated work left is MSHR fills and pending hit completions,
     * whose scheduled cycles are exact. This is the memory system's
     * contribution to the pipeline's event-horizon computation; it must
     * stay complete (every time-gated wakeup enumerated) for cycle
     * skipping to be sound.
     */
    Cycle nextEventCycle(Cycle now) const;

    /** Pending work? (for tests/draining) */
    bool idle() const;

    /** Drop all in-flight requests and MSHRs (between runs). */
    void resetInFlight();

    /** Apply all still-queued Cleanup requests immediately (run end).
     *  CleanupSpec guarantees rollback completes; a test ending mid-queue
     *  must not leave speculative state visible. */
    void flushCleanups();

    /** Invalidate L1I + L1D + L2 and flush the TLB. */
    void invalidateAll();

    /** @name Warm-state snapshot (prime memoization)
     *  Only valid at run boundaries: the caller must be quiescent
     *  (idle(), or resetInFlight() about to run) — in-flight requests
     *  are not part of the snapshot. */
    /// @{
    MemSnapshot save() const;
    void restore(const MemSnapshot &snapshot);
    /// @}

    /** @name Direct structure access (defenses, priming, traces) */
    /// @{
    Cache &l1d() { return l1d_; }
    Cache &l1i() { return l1i_; }
    Cache &l2() { return l2_; }
    Tlb &dtlb() { return dtlb_; }
    const Cache &l1d() const { return l1d_; }
    const Cache &l1i() const { return l1i_; }
    const Cache &l2() const { return l2_; }
    const Tlb &dtlb() const { return dtlb_; }
    /// @}

    unsigned l1dMshrsInUse() const
    {
        return static_cast<unsigned>(l1dMshrs_.size());
    }
    bool l1dMshrAvailable() const
    {
        return l1dMshrs_.size() < params_.l1dMshrs;
    }

  private:
    struct Mshr
    {
        Addr lineAddr;
        Cycle fillAt;
        std::vector<MemReq> targets;
    };

    struct PendingCompletion
    {
        Cycle at;
        MemReq req;
    };

    void complete(MemReq req);
    Cycle scheduleFill(Cycle now, Addr line_addr);
    Cycle now_ = 0; ///< last tick time (event timestamps)
    void processL1dHead(Cycle now);
    void processIfetch(Cycle now);
    void installDemandFill(MemReq &req);

    const CoreParams &params_;
    EventLog &log_;
    Cache l1d_;
    Cache l1i_;
    Cache l2_;
    Tlb dtlb_;
    SideBuffer *sideBuffer_ = nullptr;
    CompletionHandler onComplete_;

    /** In-order controller queues. RingDeque so the per-run clear in
     *  resetInFlight() keeps the slot arrays: after the first input no
     *  queue operation allocates (std::deque frees its block map on
     *  clear, costing one allocation churn per input). */
    RingDeque<MemReq> l1dQueue_;
    std::vector<Mshr> l1dMshrs_;
    std::vector<PendingCompletion> hitCompletions_;
    Cycle cleanupBusyUntil_ = 0;
    bool cleanupInProgress_ = false;

    RingDeque<Addr> ifetchQueue_;
    std::vector<Mshr> l1iMshrs_;
    Cycle l2NextFree_ = 0; ///< shared L2/memory service bandwidth
};

} // namespace amulet::uarch

#endif // AMULET_UARCH_MEM_SYSTEM_HH

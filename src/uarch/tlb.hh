/**
 * @file
 * Fully-associative LRU D-TLB over virtual page numbers.
 *
 * Virtual addresses map to physical addresses identically in our SE-style
 * guest, but the TLB still records which pages were translated — the TLB
 * half of the default μarch trace, and the channel exploited by the STT
 * tainted-store finding (KV3).
 */

#ifndef AMULET_UARCH_TLB_HH
#define AMULET_UARCH_TLB_HH

#include <cassert>
#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "mem/memory_image.hh"

namespace amulet::uarch
{

/** Fully-associative translation lookaside buffer. */
class Tlb
{
  public:
    explicit Tlb(unsigned entries) : entries_(entries) {}

    static Addr vpnOf(Addr addr) { return addr >> mem::kPageShift; }

    /** Is a VPN cached? */
    bool present(Addr vpn) const;

    /** Refresh recency (no-op if absent). */
    void touch(Addr vpn);

    /** Install a VPN, evicting LRU if full.
     *  @return evicted VPN or kNoAddr. */
    Addr fill(Addr vpn);

    /** Drop all entries. */
    void flush();

    /** Sorted list of cached VPNs (μarch trace). */
    std::vector<Addr> snapshot() const;

    /** One TLB entry (public so snapshots can hold them). */
    struct Slot
    {
        Addr vpn;
        std::uint64_t lruStamp;

        bool operator==(const Slot &) const = default;
    };

    /** Full warm-state snapshot: entries plus the LRU clock, so a
     *  restore reproduces the exact replacement order. */
    struct State
    {
        std::uint64_t stamp = 0;
        std::vector<Slot> slots;

        bool operator==(const State &) const = default;
    };

    State save() const { return {stamp_, slots_}; }
    void restore(const State &state)
    {
        assert(state.slots.size() <= entries_ &&
               "TLB snapshot geometry mismatch");
        stamp_ = state.stamp;
        slots_ = state.slots;
    }

    unsigned capacity() const { return entries_; }
    std::size_t size() const { return slots_.size(); }

  private:

    unsigned entries_;
    std::uint64_t stamp_ = 0;
    std::vector<Slot> slots_;
};

} // namespace amulet::uarch

#endif // AMULET_UARCH_TLB_HH

#include "uarch/cache.hh"

#include <algorithm>
#include <cassert>

namespace amulet::uarch
{

Cache::Cache(const CacheParams &params)
    : sets_(params.numSets()),
      ways_(params.ways),
      lineBytes_(params.lineBytes),
      lineShift_(floorLog2(params.lineBytes)),
      lineMask_(params.lineBytes - 1),
      lines_(static_cast<std::size_t>(sets_) * ways_)
{
    assert(isPowerOfTwo(sets_) && isPowerOfTwo(lineBytes_));
}

Cache::Line *
Cache::findLine(Addr line_addr)
{
    const unsigned set = setIndexOf(line_addr);
    for (unsigned w = 0; w < ways_; ++w) {
        Line &line = lines_[static_cast<std::size_t>(set) * ways_ + w];
        if (line.valid && line.lineAddr == line_addr)
            return &line;
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(Addr line_addr) const
{
    return const_cast<Cache *>(this)->findLine(line_addr);
}

bool
Cache::present(Addr line_addr) const
{
    return findLine(line_addr) != nullptr;
}

void
Cache::touch(Addr line_addr)
{
    if (Line *line = findLine(line_addr))
        line->lruStamp = ++stamp_;
}

Addr
Cache::install(Addr line_addr, bool mark_non_spec, bool *evicted_non_spec)
{
    assert((line_addr & lineMask_) == 0);
    if (evicted_non_spec)
        *evicted_non_spec = false;
    if (Line *line = findLine(line_addr)) {
        line->lruStamp = ++stamp_;
        if (mark_non_spec)
            line->nonSpec = true;
        return kNoAddr;
    }
    const unsigned set = setIndexOf(line_addr);
    Line *slot = nullptr;
    for (unsigned w = 0; w < ways_; ++w) {
        Line &line = lines_[static_cast<std::size_t>(set) * ways_ + w];
        if (!line.valid) {
            slot = &line;
            break;
        }
        if (!slot || line.lruStamp < slot->lruStamp)
            slot = &line;
    }
    Addr evicted = kNoAddr;
    if (slot->valid) {
        evicted = slot->lineAddr;
        if (evicted_non_spec)
            *evicted_non_spec = slot->nonSpec;
    }
    slot->valid = true;
    slot->lineAddr = line_addr;
    slot->lruStamp = ++stamp_;
    slot->nonSpec = mark_non_spec;
    return evicted;
}

bool
Cache::setFull(Addr line_addr) const
{
    const unsigned set = setIndexOf(line_addr);
    for (unsigned w = 0; w < ways_; ++w) {
        if (!lines_[static_cast<std::size_t>(set) * ways_ + w].valid)
            return false;
    }
    return true;
}

Addr
Cache::victimOf(Addr line_addr) const
{
    const unsigned set = setIndexOf(line_addr);
    const Line *victim = nullptr;
    for (unsigned w = 0; w < ways_; ++w) {
        const Line &line = lines_[static_cast<std::size_t>(set) * ways_ + w];
        if (!line.valid)
            return kNoAddr;
        if (!victim || line.lruStamp < victim->lruStamp)
            victim = &line;
    }
    return victim->lineAddr;
}

Addr
Cache::evictVictim(Addr line_addr)
{
    const Addr victim = victimOf(line_addr);
    if (victim != kNoAddr)
        invalidate(victim);
    return victim;
}

void
Cache::invalidate(Addr line_addr)
{
    if (Line *line = findLine(line_addr))
        *line = Line{};
}

void
Cache::invalidateAll()
{
    std::fill(lines_.begin(), lines_.end(), Line{});
    stamp_ = 0;
}

void
Cache::markNonSpecTouched(Addr line_addr)
{
    if (Line *line = findLine(line_addr))
        line->nonSpec = true;
}

bool
Cache::nonSpecTouched(Addr line_addr) const
{
    const Line *line = findLine(line_addr);
    return line && line->nonSpec;
}

Cache::State
Cache::save() const
{
    return {stamp_, lines_};
}

void
Cache::restore(const State &state)
{
    assert(state.lines.size() == lines_.size() &&
           "cache snapshot geometry mismatch");
    stamp_ = state.stamp;
    // Element-wise copy into the retained array: the vector capacities
    // match, so restoring allocates nothing.
    lines_ = state.lines;
}

std::vector<Addr>
Cache::snapshot() const
{
    std::vector<Addr> out;
    for (const Line &line : lines_) {
        if (line.valid)
            out.push_back(line.lineAddr);
    }
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace amulet::uarch

#include "uarch/pipeline.hh"

#include <algorithm>
#include <cassert>

#include "common/bitutil.hh"
#include "defense/defense.hh"
#include "isa/semantics.hh"
#include "telemetry/uarch_trace.hh"

namespace amulet::uarch
{

using isa::Inst;
using isa::Op;
using isa::OpndKind;

namespace
{

/** Does the destination register's old value feed the computation?
 *  (Mirrors Inst::regsRead; kept in sync by the ISA unit tests.) */
bool
needsDstOldValue(const Inst &si)
{
    if (si.dstKind != OpndKind::Reg)
        return false;
    switch (si.op) {
      case Op::Add:
      case Op::Sub:
      case Op::And:
      case Op::Or:
      case Op::Xor:
      case Op::Imul:
      case Op::Shl:
      case Op::Shr:
      case Op::Sar:
      case Op::Neg:
      case Op::Not:
      case Op::Cmp:
      case Op::Test:
      case Op::Cmov:
      case Op::Set:
        return true;
      case Op::Mov:
        return si.width < 4;
      default:
        return false;
    }
}

} // namespace

Pipeline::Pipeline(const CoreParams &params, mem::MemoryImage &memory,
                   EventLog &log)
    : params_(params),
      memory_(memory),
      log_(log),
      mem_(params, log),
      bp_(params),
      mdp_(params)
{
    defaultDefense_ = std::make_unique<defense::Defense>();
    setDefense(defaultDefense_.get());
    mem_.setCompletionHandler(
        [this](const MemReq &req) { onMemReqComplete(req); });

    // Pre-size the run-state containers once; reset() clears them
    // without releasing storage, so the cycle loop runs allocation-free
    // from the second input on. The ROB reservation is load-bearing for
    // the scoreboard: fetch bounds its size to robSize, so the ring
    // never regrows mid-run and physical slots are stable handles.
    rob_.reserve(params.robSize);
    issueReady_.reserve(params.robSize);
    execList_.reserve(params.robSize);
    skipLengths_.reserve(256);
    accessOrder_.reserve(1024);
    branchPredOrder_.reserve(256);
}

Pipeline::~Pipeline() = default;

void
Pipeline::setDefense(defense::Defense *defense)
{
    defense_ = defense;
    defense_->attach(this, &mem_, &log_);
}

void
Pipeline::setProgram(const isa::FlatProgram *prog)
{
    prog_ = prog;
}

void
Pipeline::setArchRegs(const std::array<RegVal, isa::kNumRegs> &regs,
                      isa::Flags flags)
{
    committedRegs_ = regs;
    committedFlags_ = flags;
}

void
Pipeline::reset()
{
    rob_.clear();
    nextSeq_ = 1;
    fetchIdx_ = 0;
    fetchStalledOnL1i_ = false;
    renameReg_.fill(kNoSeq);
    renameFlags_ = kNoSeq;
    renameRegSlot_.fill(DynInst::kNoSlot);
    renameFlagsSlot_ = DynInst::kNoSlot;
    issueReady_.clear();
    execList_.clear();
    fencesInFlight_ = 0;
    skippedCycles_ = 0;
    skipWindows_ = 0;
    skipLengths_.clear();
    now_ = 0;
    halted_ = false;
    committedInsts_ = 0;
    squashes_ = 0;
    loadsInFlight_ = 0;
    storesInFlight_ = 0;
    accessOrder_.clear();
    branchPredOrder_.clear();
    mem_.resetInFlight();
    defense_->reset();
}

const DynInst *
Pipeline::entry(SeqNum seq) const
{
    if (seq == kNoSeq || rob_.empty())
        return nullptr;
    // Sequence numbers are strictly increasing in the ROB (squashes only
    // remove a suffix), so binary search applies.
    auto it = std::lower_bound(rob_.begin(), rob_.end(), seq,
                               [](const DynInst &e, SeqNum s) {
                                   return e.seq < s;
                               });
    if (it == rob_.end() || it->seq != seq)
        return nullptr;
    return &*it;
}

DynInst *
Pipeline::entry(SeqNum seq)
{
    return const_cast<DynInst *>(
        static_cast<const Pipeline *>(this)->entry(seq));
}

bool
Pipeline::olderUnsafeLoadExists(SeqNum seq) const
{
    for (const DynInst &e : rob_) {
        if (e.seq >= seq)
            break;
        if (e.isLoad && !e.safe && !e.squashed && !e.committed)
            return true;
    }
    return false;
}

std::uint64_t
Pipeline::readSrcValue(const DynInst::SrcReg &src) const
{
    if (const DynInst *producer = producerOf(src)) {
        assert(producer->executed && "reading an unfinished producer");
        // Loopne's register side-effect lives in `result`.
        return producer->result;
    }
    return committedRegs_[isa::regIndex(src.reg)];
}

isa::Flags
Pipeline::readFlagsValue(const DynInst &inst) const
{
    if (const DynInst *p = flagsProducerOf(inst)) {
        assert(p->executed);
        return p->flagsOut;
    }
    return committedFlags_;
}

bool
Pipeline::srcsReadyScan(const DynInst &inst, bool address_only) const
{
    // Reference implementation (the pre-scoreboard per-source walk);
    // kept as the debug cross-check for the pending counters.
    for (const auto &src : inst.srcs) {
        const bool relevant = address_only ? src.forAddress : src.forData;
        if (!relevant)
            continue;
        const DynInst *p = producerOf(src);
        if (p && !p->executed)
            return false;
    }
    if (!address_only && inst.needsFlags) {
        const DynInst *p = flagsProducerOf(inst);
        if (p && !p->executed)
            return false;
    }
    return true;
}

bool
Pipeline::srcsReady(const DynInst &inst, bool address_only) const
{
    const bool ready = address_only ? inst.pendingAddrSrcs == 0
                                    : inst.pendingDataSrcs == 0;
    assert(ready == srcsReadyScan(inst, address_only) &&
           "scoreboard counter out of sync with producer state");
    return ready;
}

DynInst *
Pipeline::liveAt(const SlotRef &ref)
{
    DynInst *e = rob_.atSlot(ref.slot);
    return e && e->seq == ref.seq ? e : nullptr;
}

void
Pipeline::insertBySeq(std::vector<SlotRef> &list, std::uint32_t slot,
                      SeqNum seq)
{
    // Lists must stay seq-sorted so the walks preserve the legacy
    // oldest-first order (same-cycle branch resolution order decides
    // which squash wins). Insertions are near-append (fetch and issue
    // proceed in seq order), so the shift is almost always empty.
    auto it = std::lower_bound(list.begin(), list.end(), seq,
                               [](const SlotRef &r, SeqNum s) {
                                   return r.seq < s;
                               });
    list.insert(it, SlotRef{slot, seq});
}

void
Pipeline::broadcastExecuted(const DynInst &producer)
{
    progress_ = true;
    // Consumers are strictly younger (rename order), so start just past
    // the producer's own slot. Squashes remove consumer and producer
    // suffixes together, so surviving counters are never over-credited.
    for (std::size_t i = rob_.logicalOf(producer.robSlot) + 1;
         i < rob_.size(); ++i) {
        DynInst &c = rob_[i];
        bool addr_zeroed = false;
        bool data_zeroed = false;
        for (const auto &src : c.srcs) {
            if (src.producer != producer.seq)
                continue;
            if (src.forAddress) {
                assert(c.pendingAddrSrcs > 0);
                if (--c.pendingAddrSrcs == 0)
                    addr_zeroed = true;
            }
            if (src.forData) {
                assert(c.pendingDataSrcs > 0);
                if (--c.pendingDataSrcs == 0)
                    data_zeroed = true;
            }
        }
        if (c.needsFlags && c.flagsProducer == producer.seq) {
            assert(c.pendingDataSrcs > 0);
            if (--c.pendingDataSrcs == 0)
                data_zeroed = true;
        }
        if (c.issued)
            continue;
        // At most one wakeup per entry: the counter just hit zero, and
        // fetch only pre-inserts entries born with a zero count.
        const bool wake = (c.isLoad || c.isStore) ? addr_zeroed
                                                  : data_zeroed;
        if (wake && c.si.op != Op::Fence)
            insertBySeq(issueReady_, c.robSlot, c.seq);
    }
}

Addr
Pipeline::computeEffAddr(const DynInst &inst) const
{
    const isa::MemRef &m = inst.si.mem;
    std::uint64_t base = 0;
    std::uint64_t index = 0;
    for (const auto &src : inst.srcs) {
        if (!src.forAddress)
            continue;
        if (src.reg == m.base)
            base = readSrcValue(src);
        if (m.hasIndex && src.reg == m.index)
            index = readSrcValue(src);
    }
    return base + (m.hasIndex ? index : 0) +
           static_cast<std::int64_t>(m.disp);
}

DynInst
Pipeline::makeDynInst(std::size_t idx)
{
    DynInst d;
    d.seq = nextSeq_++;
    d.idx = idx;
    d.pc = prog_->pcOf(idx);
    if (idx < prog_->numInsts()) {
        d.si = prog_->inst(idx);
    } else {
        d.si = Inst{}; // runahead NOP beyond the program
    }
    d.isLoad = d.si.isLoad();
    d.isStore = d.si.isStore();
    d.memSize = d.si.width;
    d.fetchCycle = now_;

    auto add_src = [&d, this](isa::Reg reg, bool for_addr, bool for_data) {
        for (auto &src : d.srcs) {
            if (src.reg == reg) {
                src.forAddress |= for_addr;
                src.forData |= for_data;
                return;
            }
        }
        d.srcs.push_back({reg, renameReg_[isa::regIndex(reg)], for_addr,
                          for_data, renameRegSlot_[isa::regIndex(reg)]});
    };

    const Inst &si = d.si;
    if (si.isMemAccess()) {
        add_src(si.mem.base, true, false);
        if (si.mem.hasIndex)
            add_src(si.mem.index, true, false);
    }
    if (si.op == Op::Lea) {
        add_src(si.mem.base, false, true);
        if (si.mem.hasIndex)
            add_src(si.mem.index, false, true);
    }
    if (si.srcKind == OpndKind::Reg)
        add_src(si.src, false, true);
    if (needsDstOldValue(si))
        add_src(si.dst, false, true);
    if (si.op == Op::Loopne)
        add_src(isa::Reg::Rcx, false, true);

    d.needsFlags = si.readsFlags();
    d.flagsProducer = renameFlags_;
    d.flagsProducerSlot = renameFlagsSlot_;

    // Scoreboard counters: one credit per still-unexecuted in-flight
    // producer; the execute-stage broadcast pays them back. A rename
    // entry != kNoSeq always names a live ROB entry (commit/squash
    // maintain the table), so the slot link resolves exactly.
    for (const auto &src : d.srcs) {
        if (src.producer == kNoSeq)
            continue;
        const DynInst *p = rob_.atSlot(src.producerSlot);
        assert(p && p->seq == src.producer);
        if (!p->executed) {
            if (src.forAddress)
                ++d.pendingAddrSrcs;
            if (src.forData)
                ++d.pendingDataSrcs;
        }
    }
    if (d.needsFlags && d.flagsProducer != kNoSeq) {
        const DynInst *p = rob_.atSlot(d.flagsProducerSlot);
        assert(p && p->seq == d.flagsProducer);
        if (!p->executed)
            ++d.pendingDataSrcs;
    }

    // Rename destinations after capturing sources (the slot half of the
    // table follows in fetchStage once the entry has its ROB slot).
    for (isa::Reg r : si.regsWritten())
        renameReg_[isa::regIndex(r)] = d.seq;
    if (si.writesFlags())
        renameFlags_ = d.seq;

    return d;
}

void
Pipeline::rebuildRenameTable()
{
    renameReg_.fill(kNoSeq);
    renameFlags_ = kNoSeq;
    renameRegSlot_.fill(DynInst::kNoSlot);
    renameFlagsSlot_ = DynInst::kNoSlot;
    for (const DynInst &e : rob_) {
        for (isa::Reg r : e.si.regsWritten()) {
            renameReg_[isa::regIndex(r)] = e.seq;
            renameRegSlot_[isa::regIndex(r)] = e.robSlot;
        }
        if (e.si.writesFlags()) {
            renameFlags_ = e.seq;
            renameFlagsSlot_ = e.robSlot;
        }
    }
}

void
Pipeline::squashAfter(SeqNum keep_up_to, std::size_t new_fetch_idx,
                      std::uint32_t restore_ghr, EventKind reason,
                      SeqNum trigger_seq)
{
    // After Defense::onSquash the victim's annotations (undoLogged,
    // exposePending, ...) are final — exactly what the tracer records.
    const auto cause = reason == EventKind::SquashBranch
                           ? telemetry::SquashCause::BranchMispredict
                           : telemetry::SquashCause::MemOrder;
    while (!rob_.empty() && rob_.back().seq > keep_up_to) {
        DynInst &victim = rob_.back();
        victim.squashed = true;
        if (victim.isLoad)
            --loadsInFlight_;
        if (victim.isStore)
            --storesInFlight_;
        if (victim.si.op == Op::Fence)
            --fencesInFlight_;
        defense_->onSquash(victim);
        if (tracer_)
            tracer_->onSquash(victim, now_, cause, trigger_seq);
        rob_.pop_back();
    }
    log_.record(now_, reason, trigger_seq);
    ++squashes_;
    progress_ = true;
    fetchIdx_ = new_fetch_idx;
    fetchStalledOnL1i_ = false;
    bp_.restoreGhr(restore_ghr);
    rebuildRenameTable();
}

void
Pipeline::computeSafety()
{
    const SpecMode mode = defense_->specMode();
    bool risk = false;
    std::vector<SeqNum> newly_safe;
    for (DynInst &e : rob_) {
        const bool was_safe = e.safe;
        e.safe = !risk;
        if (e.safe && !was_safe)
            newly_safe.push_back(e.seq);
        if (e.isBranch() && !e.executed)
            risk = true;
        if (e.si.op == Op::Fence && !e.executed)
            risk = true;
        if (mode == SpecMode::Futuristic && e.isStore && !e.addrReady)
            risk = true;
    }
    if (!newly_safe.empty())
        progress_ = true;
    for (SeqNum seq : newly_safe) {
        if (DynInst *e = entry(seq))
            defense_->onBecameSafe(*e);
    }
}

void
Pipeline::resolveBranch(DynInst &e)
{
    bool taken = false;
    std::size_t next_idx = e.idx + 1;
    switch (e.si.op) {
      case Op::Jmp:
        taken = true;
        next_idx = prog_->targetIdx(e.idx);
        break;
      case Op::Jcc:
        taken = condEval(e.si.cond, readFlagsValue(e));
        if (taken)
            next_idx = prog_->targetIdx(e.idx);
        break;
      case Op::Loopne: {
        std::uint64_t rcx = 0;
        for (const auto &src : e.srcs) {
            if (src.reg == isa::Reg::Rcx)
                rcx = readSrcValue(src);
        }
        rcx -= 1;
        e.result = rcx;
        e.resultValid = true;
        const isa::Flags f = readFlagsValue(e);
        taken = rcx != 0 && !f.zf;
        if (taken)
            next_idx = prog_->targetIdx(e.idx);
        break;
      }
      default:
        assert(false);
    }
    e.actualTaken = taken;
    e.actualNextIdx = next_idx;
    e.executed = true;
    e.execCycle = now_;
    if (tracer_)
        tracer_->onComplete(e, now_);

    if (next_idx != e.predNextIdx) {
        e.mispredicted = true;
        squashAfter(e.seq, next_idx, e.ghrAtFetch,
                    EventKind::SquashBranch, e.seq);
        if (e.si.isCondBranch())
            bp_.updateGhrSpeculative(taken);
    }
    // After the squash: a mispredict leaves no younger suffix, making
    // the broadcast a cheap no-op walk.
    broadcastExecuted(e);
}

void
Pipeline::finalizeData(DynInst &e)
{
    const Inst &si = e.si;
    std::uint64_t src = 0;
    switch (si.srcKind) {
      case OpndKind::Reg:
        for (const auto &s : e.srcs) {
            if (s.forData && s.reg == si.src) {
                src = truncateToSize(readSrcValue(s), si.width);
                break;
            }
        }
        break;
      case OpndKind::Imm:
        src = static_cast<std::uint64_t>(si.imm);
        break;
      case OpndKind::Mem:
        src = e.loadValue;
        break;
      case OpndKind::None:
        break;
    }

    std::uint64_t dst_old = 0;
    if (si.dstKind == OpndKind::Mem) {
        dst_old = e.loadValue;
    } else if (needsDstOldValue(si)) {
        for (const auto &s : e.srcs) {
            if (s.forData && s.reg == si.dst) {
                dst_old = readSrcValue(s);
                break;
            }
        }
    }

    Addr addr = e.memAddr;
    if (si.op == Op::Lea)
        addr = computeEffAddr(e);

    // Only flag-reading ops (CMOV/SETcc) may touch the producer; for
    // everything else it can still be in flight.
    const isa::Flags flags_in = e.needsFlags ? readFlagsValue(e)
                                             : isa::Flags{};
    const isa::ExecResult res = isa::evalOp(si, dst_old, src, addr,
                                            flags_in);
    e.flagsOut = res.flags;
    e.writesFlagsOut = res.writesFlags;
    if (res.writesDst) {
        if (si.dstKind == OpndKind::Reg) {
            e.result = res.value;
            e.resultValid = true;
        } else if (si.dstKind == OpndKind::Mem) {
            e.storeData = res.value;
            e.storeDataValid = true;
        }
    }
    e.executed = true;
    e.execCycle = now_;
    if (tracer_)
        tracer_->onComplete(e, now_);
    broadcastExecuted(e);
}

void
Pipeline::storeResolved(DynInst &store)
{
    log_.record(now_, EventKind::StoreExec, store.seq, store.pc,
                store.memAddr);
    defense_->onStoreAddrReady(store);

    // Memory-order (Spectre-v4) check: younger loads that already read
    // memory while this store's address was unknown must be squashed.
    for (std::size_t i = 0; i < rob_.size(); ++i) {
        DynInst &e = rob_[i];
        if (e.seq <= store.seq || !e.isLoad)
            continue;
        const bool has_read = e.loadPhase == LoadPhase::WaitCache ||
                              e.loadPhase == LoadPhase::Done;
        if (!has_read)
            continue;
        if (!rangesOverlap(e.memAddr, e.memSize, store.memAddr,
                           store.memSize)) {
            continue;
        }
        if (e.forwardedFromStore && e.forwardingStore >= store.seq)
            continue; // got its data from a younger (more recent) store
        mdp_.trainViolation(e.pc);
        squashAfter(e.seq - 1, e.idx, e.ghrAtFetch,
                    EventKind::SquashMemOrder, store.seq);
        break;
    }
}

void
Pipeline::tryStartLoadAccess(DynInst &e)
{
    // Store-queue scan, youngest older store first.
    bool bypassed_unknown = false;
    const DynInst *forward_from = nullptr;
    for (auto it = rob_.rbegin(); it != rob_.rend(); ++it) {
        const DynInst &st = *it;
        if (st.seq >= e.seq)
            continue;
        if (!st.isStore || st.squashed)
            continue;
        if (!st.addrReady) {
            if (mdp_.predictDependence(e.pc))
                return; // predicted dependence: wait for resolution
            bypassed_unknown = true;
            continue;
        }
        if (!rangesOverlap(e.memAddr, e.memSize, st.memAddr, st.memSize))
            continue;
        const bool contained = e.memAddr >= st.memAddr &&
                               e.memAddr + e.memSize <=
                                   st.memAddr + st.memSize;
        if (contained && st.storeDataValid) {
            forward_from = &st;
            break;
        }
        // Partial overlap or data not ready: wait.
        return;
    }

    if (forward_from) {
        const unsigned shift =
            static_cast<unsigned>(e.memAddr - forward_from->memAddr) * 8;
        e.loadValue = truncateToSize(forward_from->storeData >> shift,
                                     e.memSize);
        e.loadDataValid = true;
        e.forwardedFromStore = true;
        e.forwardingStore = forward_from->seq;
        e.loadPhase = LoadPhase::Done;
        progress_ = true;
        return;
    }

    // Read architectural memory now (stale-read semantics for v4), then
    // model timing through the cache hierarchy.
    e.bypassedUnknownStore = bypassed_unknown;
    e.loadValue = memory_.read(e.memAddr, e.memSize);

    defense::LoadPlan plan = defense_->planLoad(e);
    if (plan.block)
        return; // defense veto at access time; retry next cycle

    const Addr line_a = mem_.l1d().lineAddrOf(e.memAddr);
    const Addr line_b = mem_.l1d().lineAddrOf(e.memAddr + e.memSize - 1);
    e.split = line_a != line_b;
    if (e.split)
        log_.record(now_, EventKind::SplitRequest, e.seq, e.pc, e.memAddr);
    e.pendingFills = e.split ? 2 : 1;
    auto enqueue_line = [&](Addr line) {
        MemReq req;
        req.kind = ReqKind::Load;
        req.lineAddr = line;
        req.seq = e.seq;
        req.pc = e.pc;
        req.dest = plan.dest;
        req.invisibleHit = plan.invisibleHit;
        req.probeSideBuffer = plan.probeSideBuffer;
        req.bugSpecEvict = plan.bugSpecEvict;
        req.markNonSpec = plan.markNonSpec;
        req.splitPiece = e.split;
        mem_.enqueueL1D(req);
    };
    enqueue_line(line_a);
    if (e.split)
        enqueue_line(line_b);
    e.loadPhase = LoadPhase::WaitCache;
    progress_ = true;
    log_.record(now_, EventKind::LoadExec, e.seq, e.pc, e.memAddr);
    if (bypassed_unknown)
        log_.record(now_, EventKind::LoadBypassedStore, e.seq, e.pc,
                    e.memAddr);
}

void
Pipeline::advanceMemOps()
{
    for (std::size_t i = 0; i < rob_.size(); ++i) {
        DynInst &e = rob_[i];
        if (e.squashed)
            continue;

        // Pure-store address resolution after translation completes
        // (the RMW store side resolves through the load path below).
        if (e.isStore && !e.isLoad && e.issued && !e.addrReady &&
            e.tlbPending && now_ >= e.tlbDoneCycle) {
            e.tlbPending = false;
            e.addrReady = true;
            e.storeTlbDone = true;
            progress_ = true;
            storeResolved(e);
        }

        if (!e.isLoad || !e.issued)
            continue;

        if (e.loadPhase == LoadPhase::WaitTlb && now_ >= e.tlbDoneCycle) {
            e.tlbPending = false;
            if (e.isStore && !e.addrReady) { // RMW store side
                e.addrReady = true;
                e.storeTlbDone = true;
                storeResolved(e);
            }
            e.loadPhase = LoadPhase::WaitStore;
            progress_ = true;
        }
        if (e.loadPhase == LoadPhase::WaitStore)
            tryStartLoadAccess(e);
    }
}

bool
Pipeline::tryIssue(DynInst &e)
{
    assert(!e.issued && e.si.op != Op::Fence);
    if (e.isLoad || e.isStore) {
        if (!srcsReady(e, true))
            return false;
        if (e.isLoad && defense_->blockLoadIssue(e))
            return false;
        if (e.isStore && !e.isLoad && defense_->blockStoreExec(e))
            return false;
        e.issued = true;
        e.issueCycle = now_;
        e.wasUnsafeAtIssue = !e.safe;
        e.memAddr = computeEffAddr(e);
        accessOrder_.push_back(
            {e.pc, e.memAddr, e.isStore && !e.isLoad, e.seq, now_});
        if (tracer_)
            tracer_->onIssue(e, now_);
        const unsigned lat =
            mem_.dtlbAccess(e.memAddr, e.memSize, e.seq, e.pc);
        e.tlbPending = true;
        e.tlbDoneCycle = now_ + lat;
        if (e.isLoad)
            e.loadPhase = LoadPhase::WaitTlb;
    } else {
        if (!srcsReady(e, false))
            return false;
        e.issued = true;
        e.issueCycle = now_;
        unsigned lat = params_.aluLatency;
        if (e.si.op == Op::Imul)
            lat = params_.mulLatency;
        if (e.isBranch())
            lat = params_.branchLatency;
        if (e.si.op == Op::Halt || e.si.op == Op::Nop)
            lat = 1;
        e.doneCycle = now_ + lat;
        if (tracer_)
            tracer_->onIssue(e, now_);
    }
    insertBySeq(execList_, e.robSlot, e.seq);
    progress_ = true;
    return true;
}

void
Pipeline::issueStage()
{
    if (fencesInFlight_ > 0) {
        // The fence barrier needs cumulative all-older-executed state:
        // fall back to the legacy in-order scan until it drains.
        issueStageWithFences();
        return;
    }

    unsigned budget = params_.issueWidth;
    std::size_t out = 0;
    std::size_t i = 0;
    for (; i < issueReady_.size(); ++i) {
        if (budget == 0)
            break;
        DynInst *e = liveAt(issueReady_[i]);
        if (!e || e->issued)
            continue; // stale handle (squash/commit) or fence-path issue
        if (tryIssue(*e)) {
            --budget;
            continue;
        }
        // Defense veto (the counters say ready): keep it for retry.
        issueReady_[out++] = issueReady_[i];
    }
    for (; i < issueReady_.size(); ++i)
        issueReady_[out++] = issueReady_[i];
    issueReady_.resize(out);
}

void
Pipeline::issueStageWithFences()
{
    unsigned budget = params_.issueWidth;
    bool all_older_executed = true;
    for (std::size_t i = 0; i < rob_.size() && budget > 0; ++i) {
        DynInst &e = rob_[i];

        if (e.si.op == Op::Fence) {
            if (!e.issued && all_older_executed) {
                e.issued = true;
                e.issueCycle = now_;
                e.doneCycle = now_ + 1;
                --budget;
                if (tracer_)
                    tracer_->onIssue(e, now_);
                insertBySeq(execList_, e.robSlot, e.seq);
                progress_ = true;
            }
            if (!e.executed)
                break; // younger instructions wait for the fence
        }

        if (!e.issued && e.si.op != Op::Fence) {
            if (tryIssue(e))
                --budget;
        }
        all_older_executed = all_older_executed && e.executed;
    }
}

void
Pipeline::executeStage()
{
    // Walk only issued-not-yet-executed entries, oldest first (the list
    // is seq-sorted, preserving the legacy resolution order). Entries
    // stay listed until they execute; stale handles compact away.
    std::size_t out = 0;
    for (std::size_t i = 0; i < execList_.size(); ++i) {
        DynInst *pe = liveAt(execList_[i]);
        if (!pe || pe->squashed || pe->executed)
            continue;
        DynInst &e = *pe;

        if (!e.isLoad && !e.isStore) {
            if (now_ >= e.doneCycle) {
                if (e.isBranch()) {
                    resolveBranch(e);
                } else if (e.si.op == Op::Nop || e.si.op == Op::Halt ||
                           e.si.op == Op::Fence) {
                    e.executed = true;
                    e.execCycle = now_;
                    if (tracer_)
                        tracer_->onComplete(e, now_);
                    broadcastExecuted(e);
                } else {
                    finalizeData(e);
                }
            }
        } else if (e.isLoad) {
            if (e.loadPhase == LoadPhase::Done && srcsReady(e, false))
                finalizeData(e);
        } else {
            // Plain store: needs address and data.
            if (e.addrReady && srcsReady(e, false))
                finalizeData(e);
        }

        if (!e.executed)
            execList_[out++] = execList_[i];
    }
    execList_.resize(out);
}

void
Pipeline::commitStage()
{
    for (unsigned n = 0; n < params_.commitWidth && !rob_.empty(); ++n) {
        DynInst &e = rob_.front();
        if (!e.executed)
            break;

        if (e.isStore) {
            memory_.write(e.memAddr, e.memSize, e.storeData);
            log_.record(now_, EventKind::StoreCommit, e.seq, e.pc,
                        e.memAddr);
            if (defense_->installStoreAtCommit(e)) {
                const Addr line_a = mem_.l1d().lineAddrOf(e.memAddr);
                const Addr line_b =
                    mem_.l1d().lineAddrOf(e.memAddr + e.memSize - 1);
                for (Addr line : {line_a, line_b}) {
                    MemReq req;
                    req.kind = ReqKind::StoreInstall;
                    req.lineAddr = line;
                    req.seq = e.seq;
                    req.pc = e.pc;
                    req.markNonSpec = true;
                    mem_.enqueueL1D(req);
                    if (line_a == line_b)
                        break;
                }
            }
        }
        if (e.isBranch())
            bp_.train(e.pc, e.actualTaken, e.actualNextIdx, e.ghrAtFetch);

        // Commit-time footprint marking: the lines this instruction
        // touched are architectural from here on (CleanupSpec's noClean
        // metadata; the commit-time identification its authors propose
        // for the overcleaning vulnerability). Pure metadata — ignored
        // by defenses that do not consult it.
        if ((e.isLoad || e.isStore) && e.issued && e.memSize > 0) {
            mem_.l1d().markNonSpecTouched(
                mem_.l1d().lineAddrOf(e.memAddr));
            mem_.l1d().markNonSpecTouched(
                mem_.l1d().lineAddrOf(e.memAddr + e.memSize - 1));
        }

        if (e.si.op == Op::Loopne) {
            committedRegs_[isa::regIndex(isa::Reg::Rcx)] = e.result;
        } else if (e.si.dstKind == OpndKind::Reg && e.resultValid) {
            committedRegs_[isa::regIndex(e.si.dst)] = e.result;
        }
        if (e.writesFlagsOut)
            committedFlags_ = e.flagsOut;

        for (isa::Reg r : e.si.regsWritten()) {
            if (renameReg_[isa::regIndex(r)] == e.seq) {
                renameReg_[isa::regIndex(r)] = kNoSeq;
                renameRegSlot_[isa::regIndex(r)] = DynInst::kNoSlot;
            }
        }
        if (renameFlags_ == e.seq) {
            renameFlags_ = kNoSeq;
            renameFlagsSlot_ = DynInst::kNoSlot;
        }
        if (e.si.op == Op::Fence)
            --fencesInFlight_;

        e.committed = true;
        e.commitCycle = now_;
        log_.record(now_, EventKind::Commit, e.seq, e.pc);
        if (tracer_)
            tracer_->onCommit(e, now_);
        ++committedInsts_;
        if (e.isLoad)
            --loadsInFlight_;
        if (e.isStore)
            --storesInFlight_;

        const bool is_halt = e.si.op == Op::Halt;
        rob_.pop_front();
        progress_ = true;
        if (is_halt) {
            halted_ = true;
            break;
        }
    }
}

void
Pipeline::fetchStage()
{
    for (unsigned n = 0; n < params_.fetchWidth; ++n) {
        if (rob_.size() >= params_.robSize)
            return;
        const std::size_t idx = fetchIdx_;
        const Inst si =
            idx < prog_->numInsts() ? prog_->inst(idx) : Inst{};
        if (si.isLoad() && loadsInFlight_ >= params_.lqSize)
            return;
        if (si.isStore() && storesInFlight_ >= params_.sqSize)
            return;

        const Addr pc = prog_->pcOf(idx);
        if (!mem_.ifetchHit(pc)) {
            mem_.requestIfetch(mem_.l1i().lineAddrOf(pc));
            return; // fetch stalls until the line arrives
        }

        DynInst d = makeDynInst(idx);
        d.ghrAtFetch = bp_.ghr();

        bool taken_branch = false;
        if (d.isBranch()) {
            const auto pred = bp_.predict(pc, d.si.isCondBranch());
            d.predTaken = pred.taken;
            d.ghrAtFetch = pred.ghrBefore;
            d.predNextIdx = pred.taken ? pred.targetIdx : idx + 1;
            if (d.si.isCondBranch())
                bp_.updateGhrSpeculative(pred.taken);
            branchPredOrder_.push_back(
                {pc, prog_->pcOf(d.predNextIdx)});
            taken_branch = pred.taken;
        } else {
            d.predNextIdx = idx + 1;
        }

        if (d.isLoad)
            ++loadsInFlight_;
        if (d.isStore)
            ++storesInFlight_;

        log_.record(now_, EventKind::Fetch, d.seq, pc);
        if (tracer_)
            tracer_->onFetch(d, now_);
        fetchIdx_ = d.predNextIdx;
        rob_.push_back(std::move(d));

        // Fix up the slot-addressed structures now that the entry has
        // its physical ROB slot.
        DynInst &f = rob_.back();
        f.robSlot =
            static_cast<std::uint32_t>(rob_.slotIndex(rob_.size() - 1));
        for (isa::Reg r : f.si.regsWritten())
            renameRegSlot_[isa::regIndex(r)] = f.robSlot;
        if (f.si.writesFlags())
            renameFlagsSlot_ = f.robSlot;
        if (f.si.op == Op::Fence)
            ++fencesInFlight_;
        else if ((f.isLoad || f.isStore) ? f.pendingAddrSrcs == 0
                                         : f.pendingDataSrcs == 0)
            insertBySeq(issueReady_, f.robSlot, f.seq);
        progress_ = true;

        if (taken_branch)
            return; // redirect: resume at the target next cycle
    }
}

void
Pipeline::onMemReqComplete(const MemReq &req)
{
    progress_ = true;
    if (req.kind == ReqKind::Load) {
        DynInst *e = entry(req.seq);
        if (e && !e->squashed && e->loadPhase == LoadPhase::WaitCache &&
            e->pendingFills > 0) {
            if (--e->pendingFills == 0) {
                e->loadPhase = LoadPhase::Done;
                e->loadDataValid = true;
            }
        }
    }
    defense_->onReqComplete(req);
}

Cycle
Pipeline::nextLocalEventCycle() const
{
    // Self-sufficient quiescence analysis: re-derive from state alone
    // the earliest cycle at which any stage could act. Anything
    // actionable *next* cycle pins the horizon to now_ + 1; otherwise
    // the only time-gated wakeups are doneCycle / tlbDoneCycle fills.
    // Conservative by construction — returning too-early cycles only
    // shrinks skips; the soundness argument is in src/uarch/README.md.
    const Cycle next_cycle = now_ + 1;
    Cycle next = kNoEventCycle;

    // One-step safety lookahead, fused with the per-entry scan: replay
    // computeSafety's risk walk so a pending safe-transition (which
    // fires defense hooks) pins the horizon. `risk` must be updated
    // *after* checking e (an entry's own risk does not taint itself).
    bool risk = false;
    for (const DynInst &e : rob_) {
        if (!e.safe && !risk)
            return next_cycle; // will become safe next computeSafety
        if (e.isBranch() && !e.executed)
            risk = true;
        if (e.si.op == Op::Fence && !e.executed)
            risk = true;
        if (defense_->specMode() == SpecMode::Futuristic && e.isStore &&
            !e.addrReady) {
            risk = true;
        }

        if (!e.issued) {
            if (e.si.op == Op::Fence)
                return next_cycle; // barrier state can change any cycle
            const bool ready = (e.isLoad || e.isStore)
                                   ? e.pendingAddrSrcs == 0
                                   : e.pendingDataSrcs == 0;
            if (ready)
                return next_cycle; // issueStage retries every cycle
            continue;
        }
        if (e.executed)
            continue;

        if (e.tlbPending) {
            next = std::min(next, std::max(e.tlbDoneCycle, next_cycle));
            continue;
        }
        if (e.isLoad) {
            if (e.loadPhase == LoadPhase::WaitStore)
                return next_cycle; // advanceMemOps retries every cycle
            if (e.loadPhase == LoadPhase::Done && e.pendingDataSrcs == 0)
                return next_cycle; // executeStage can finalize
            continue;              // WaitCache: MemSystem owns the wakeup
        }
        if (e.isStore) {
            if (e.addrReady && e.pendingDataSrcs == 0)
                return next_cycle; // executeStage can finalize
            continue;
        }
        // Fixed-latency ALU op.
        next = std::min(next, std::max(e.doneCycle, next_cycle));
    }

    // Commit: the head being executed means commitStage acts next cycle.
    if (!rob_.empty() && rob_.front().executed)
        return next_cycle;

    // Fetch: can a new instruction enter next cycle? Probe the same
    // gates fetchStage checks, without side effects (Cache::present()
    // leaves LRU alone; ifetchHit would refresh it).
    if (rob_.size() < params_.robSize) {
        const std::size_t idx = fetchIdx_;
        const Inst si = idx < prog_->numInsts() ? prog_->inst(idx)
                                                : Inst{};
        const bool lsq_full =
            (si.isLoad() && loadsInFlight_ >= params_.lqSize) ||
            (si.isStore() && storesInFlight_ >= params_.sqSize);
        if (!lsq_full &&
            mem_.l1i().present(mem_.l1i().lineAddrOf(prog_->pcOf(idx)))) {
            return next_cycle;
        }
    }

    return next;
}

void
Pipeline::skipToNextEvent(Cycle cap)
{
    Cycle horizon = nextLocalEventCycle();
    horizon = std::min(horizon, mem_.nextEventCycle(now_));
    horizon = std::min(horizon, defense_->nextEventCycle(now_));

    // Park one cycle short of the event so the normal loop epilogue's
    // ++now_ lands exactly on it — every stage then observes the event
    // at the same now_ it would have without skipping. No event at all
    // (deadlocked run): park at the cap, reproducing hitCycleCap.
    const Cycle park =
        (horizon == kNoEventCycle || horizon > cap) ? cap : horizon - 1;
    if (park <= now_)
        return;

    const Cycle elided = park - now_;
    defense_->tickMany(elided);
    skippedCycles_ += elided;
    ++skipWindows_;
    skipLengths_.push_back(elided);
    now_ = park;
}

RunResult
Pipeline::run(Cycle cycle_cap)
{
    assert(prog_ && "no program loaded");
    reset();

    const Cycle cap = cycle_cap ? cycle_cap : params_.maxCyclesPerRun;
    RunResult result;
    while (!halted_ && now_ < cap) {
        ++now_;
        progress_ = false;
        mem_.tick(now_);
        computeSafety();
        defense_->tick();
        commitStage();
        if (halted_)
            break;
        executeStage();
        issueStage();
        advanceMemOps();
        fetchStage();
        if (cycleSkip_ && !progress_)
            skipToNextEvent(cap);
    }

    if (halted_) {
        // The countermeasure's rollback is guaranteed to finish even when
        // the test ends mid-queue (its security invariant); apply pending
        // cleanups before any state snapshot.
        mem_.flushCleanups();
    }

    result.halted = halted_;
    result.cycles = now_;
    result.committedInsts = committedInsts_;
    result.squashes = squashes_;
    result.hitCycleCap = !halted_;
    return result;
}

} // namespace amulet::uarch

/**
 * @file
 * Dynamic (in-flight) instruction state.
 *
 * One DynInst per fetched instruction; read-modify-write memory ops carry
 * both a load and a store side. Defense-visible speculation metadata
 * (safety, taint, expose/LFB/undo bookkeeping) lives here so defenses can
 * be implemented without intrusive pipeline changes — the design goal the
 * paper states for AMuLeT integrations.
 */

#ifndef AMULET_UARCH_DYN_INST_HH
#define AMULET_UARCH_DYN_INST_HH

#include <array>
#include <cassert>
#include <cstdint>

#include "common/types.hh"
#include "isa/flags.hh"
#include "isa/inst.hh"

namespace amulet::uarch
{

/** Progress of the memory side of a load. */
enum class LoadPhase : std::uint8_t
{
    None,       ///< not a load, or address not yet generated
    WaitTlb,    ///< TLB walk in progress
    WaitStore,  ///< blocked on an older store (dependence or partial fwd)
    WaitCache,  ///< request issued to the memory system
    Done,       ///< data available
};

/** One in-flight instruction. */
struct DynInst
{
    /** @name Identity */
    /// @{
    SeqNum seq = kNoSeq;
    std::size_t idx = 0;   ///< static instruction index
    Addr pc = 0;
    isa::Inst si;          ///< static instruction (copied; small)
    /// @}

    /** @name Branch prediction */
    /// @{
    bool predTaken = false;
    std::size_t predNextIdx = 0;
    std::uint32_t ghrAtFetch = 0;
    bool mispredicted = false;
    bool actualTaken = false;      ///< resolved direction
    std::size_t actualNextIdx = 0; ///< resolved successor
    /// @}

    /** "Producer not in flight" sentinel for scoreboard slot links. */
    static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};

    /** @name Renamed sources (producer kNoSeq/0 = committed state) */
    /// @{
    struct SrcReg
    {
        isa::Reg reg;
        SeqNum producer;
        bool forAddress; ///< feeds effective-address computation
        bool forData;    ///< feeds the data computation / store value
        /** ROB physical slot of the producer at rename time (kNoSlot:
         *  committed state). Slots are stable handles (the ROB ring is
         *  reserved to robSize, so it never regrows mid-run): resolving
         *  (producerSlot, producer) is an O(1) fetch + seq check instead
         *  of a binary search. */
        std::uint32_t producerSlot = kNoSlot;
    };

    /** Distinct source registers an instruction can name: memory base,
     *  memory index, register source, register destination (RMW-style
     *  old value), and Loopne's implicit RCX — at most four at once
     *  (Loopne has no memory operand); one spare slot for safety. */
    static constexpr std::size_t kMaxSrcRegs = 5;

    /** Inline fixed-capacity source list. The ISA bounds the source
     *  count (kMaxSrcRegs), so heap-backed storage — one allocation
     *  per fetched instruction, the single hottest allocation in the
     *  cycle loop — buys nothing. Keeping the sources inline also
     *  makes DynInst trivially copyable, which is what lets the ROB
     *  ring buffer recycle its slots by plain assignment. */
    struct SrcList
    {
        std::array<SrcReg, kMaxSrcRegs> v;
        std::uint8_t n = 0;

        void
        push_back(const SrcReg &src)
        {
            assert(n < kMaxSrcRegs && "source-register bound exceeded");
            v[n++] = src;
        }

        SrcReg *begin() { return v.data(); }
        SrcReg *end() { return v.data() + n; }
        const SrcReg *begin() const { return v.data(); }
        const SrcReg *end() const { return v.data() + n; }
        std::size_t size() const { return n; }
        bool empty() const { return n == 0; }
    };
    SrcList srcs;
    SeqNum flagsProducer = kNoSeq;
    std::uint32_t flagsProducerSlot = kNoSlot;
    bool needsFlags = false;

    /** @name Wakeup scoreboard (maintained by the pipeline)
     *  Unexecuted in-flight producers still owed, counted at rename and
     *  decremented by the execute-stage broadcast. Flags fold into the
     *  data count (only full readiness consults them), so
     *  srcsReady(address_only) is a single zero test per flavour. */
    /// @{
    std::uint8_t pendingAddrSrcs = 0;
    std::uint8_t pendingDataSrcs = 0;
    /** Own ROB physical slot (set at fetch); the broadcast walks the
     *  ROB suffix younger than the producer starting here. */
    std::uint32_t robSlot = kNoSlot;
    /// @}
    /// @}

    /** @name Execution state */
    /// @{
    bool issued = false;     ///< ALU/AGU started
    bool executed = false;   ///< result (and store address/data) final
    Cycle doneCycle = 0;     ///< for fixed-latency ops, completion time
    bool resultValid = false;
    std::uint64_t result = 0;       ///< destination value (width-merged)
    isa::Flags flagsOut;
    bool writesFlagsOut = false;
    /// @}

    /** @name Memory state */
    /// @{
    bool isLoad = false;
    bool isStore = false;
    Addr memAddr = 0;
    unsigned memSize = 0;
    bool addrReady = false;
    bool split = false;        ///< crosses a cache-line boundary
    LoadPhase loadPhase = LoadPhase::None;
    unsigned pendingFills = 0; ///< outstanding cache responses
    Cycle tlbDoneCycle = 0;
    bool tlbPending = false;
    std::uint64_t loadValue = 0;
    bool loadDataValid = false;
    bool forwardedFromStore = false;
    SeqNum forwardingStore = kNoSeq;
    bool bypassedUnknownStore = false; ///< issued past an older store with
                                       ///< an unresolved address (v4 risk)
    bool storeDataValid = false;
    std::uint64_t storeData = 0;
    bool storeTlbDone = false;         ///< store translation performed
    /// @}

    /** @name Speculation safety and defenses */
    /// @{
    bool safe = false;         ///< per SpecTracker (this cycle)
    bool wasUnsafeAtIssue = false; ///< load issued while speculative
    bool tainted = false;      ///< STT: destination carries tainted data
    bool exposePending = false;///< InvisiSpec: expose not yet issued
    bool inSpecBuffer = false; ///< InvisiSpec: line(s) in spec buffer
    bool lfbHeld = false;      ///< SpecLFB: fill held in LFB
    bool undoLogged = false;   ///< CleanupSpec: rollback metadata captured
    /// @}

    bool squashed = false;
    bool committed = false;
    bool blockLogged = false; ///< defense block event already recorded

    /** @name Timing (for reports) */
    /// @{
    Cycle fetchCycle = 0;
    Cycle issueCycle = 0;
    Cycle execCycle = 0;
    Cycle commitCycle = 0;
    /// @}

    bool isBranch() const { return si.isBranch(); }
};

} // namespace amulet::uarch

#endif // AMULET_UARCH_DYN_INST_HH

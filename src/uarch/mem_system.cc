#include "uarch/mem_system.hh"

#include <algorithm>
#include <cassert>

namespace amulet::uarch
{

bool
SideBuffer::contains(Addr line_addr) const
{
    return std::find(lines_.begin(), lines_.end(), line_addr) !=
           lines_.end();
}

Addr
SideBuffer::insert(Addr line_addr)
{
    if (contains(line_addr))
        return kNoAddr;
    Addr evicted = kNoAddr;
    if (lines_.size() >= capacity_) {
        evicted = lines_.front();
        lines_.pop_front();
    }
    lines_.push_back(line_addr);
    return evicted;
}

void
SideBuffer::erase(Addr line_addr)
{
    auto it = std::find(lines_.begin(), lines_.end(), line_addr);
    if (it != lines_.end())
        lines_.erase(it);
}

std::vector<Addr>
SideBuffer::snapshot() const
{
    std::vector<Addr> out(lines_.begin(), lines_.end());
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<Addr>
SideBuffer::save() const
{
    return {lines_.begin(), lines_.end()};
}

void
SideBuffer::restore(const std::vector<Addr> &lines)
{
    lines_.assign(lines.begin(), lines.end());
}

MemSystem::MemSystem(const CoreParams &params, EventLog &log)
    : params_(params),
      log_(log),
      l1d_(params.l1d),
      l1i_(params.l1i),
      l2_(params.l2),
      dtlb_(params.tlbEntries)
{
    // Pre-size the hot-path containers so steady-state simulation never
    // allocates: the queues keep their slots across resetInFlight().
    l1dQueue_.reserve(64);
    ifetchQueue_.reserve(16);
    l1dMshrs_.reserve(params.l1dMshrs);
    l1iMshrs_.reserve(params.l1iMshrs);
    hitCompletions_.reserve(32);
}

void
MemSystem::enqueueL1D(MemReq req)
{
    l1dQueue_.push_back(std::move(req));
}

void
MemSystem::requestIfetch(Addr line_addr)
{
    if (std::find(ifetchQueue_.begin(), ifetchQueue_.end(), line_addr) !=
        ifetchQueue_.end()) {
        return;
    }
    for (const Mshr &m : l1iMshrs_) {
        if (m.lineAddr == line_addr)
            return;
    }
    ifetchQueue_.push_back(line_addr);
}

bool
MemSystem::ifetchHit(Addr pc)
{
    const Addr line = l1i_.lineAddrOf(pc);
    if (!l1i_.present(line))
        return false;
    l1i_.touch(line);
    return true;
}

unsigned
MemSystem::dtlbAccess(Addr addr, unsigned size, SeqNum seq, Addr pc)
{
    const Addr first_vpn = Tlb::vpnOf(addr);
    const Addr last_vpn = Tlb::vpnOf(addr + (size ? size - 1 : 0));
    bool missed = false;
    for (Addr vpn = first_vpn; vpn <= last_vpn; ++vpn) {
        if (dtlb_.present(vpn)) {
            dtlb_.touch(vpn);
        } else {
            missed = true;
            dtlb_.fill(vpn);
            log_.record(0, EventKind::TlbFill, seq, pc,
                        vpn << mem::kPageShift);
        }
    }
    return missed ? params_.tlbWalkLatency : 1;
}

void
MemSystem::complete(MemReq req)
{
    if (onComplete_)
        onComplete_(req);
}

Cycle
MemSystem::scheduleFill(Cycle now, Addr line_addr)
{
    // The L2/memory side services one fill per l2ServiceInterval cycles;
    // this shared bandwidth is what couples speculative D-misses to
    // instruction-fetch timing.
    const Cycle start = std::max(now, l2NextFree_);
    l2NextFree_ = start + params_.l2ServiceInterval;
    const unsigned latency = l2_.present(line_addr)
                                 ? params_.l2HitLatency
                                 : params_.memLatency;
    return start + latency;
}

void
MemSystem::installDemandFill(MemReq &req)
{
    switch (req.dest) {
      case FillDest::L1D: {
        bool victim_non_spec = false;
        const Addr evicted =
            l1d_.install(req.lineAddr, req.markNonSpec, &victim_non_spec);
        req.evictedLine = evicted;
        req.evictedWasNonSpec = victim_non_spec;
        log_.record(now_, EventKind::CacheFill, req.seq, req.pc,
                    req.lineAddr, "L1D");
        if (evicted != kNoAddr)
            log_.record(now_, EventKind::CacheEvict, req.seq, req.pc,
                        evicted, "L1D");
        break;
      }
      case FillDest::SideBuffer:
        // The defense inserts into its buffer from the completion handler
        // (it must check the owner was not squashed-and-dropped first).
        break;
      case FillDest::None:
        break;
    }
}

void
MemSystem::processL1dHead(Cycle now)
{
    if (l1dQueue_.empty())
        return;
    MemReq &head = l1dQueue_.front();

    // Cleanup requests occupy the controller for a fixed latency; the
    // defense applies the actual state change on completion. This is what
    // puts rollback on the critical path (unXpec / KV2).
    if (head.kind == ReqKind::Cleanup) {
        if (!cleanupInProgress_) {
            cleanupInProgress_ = true;
            cleanupBusyUntil_ = now + params_.cleanupLatency;
            return;
        }
        if (now >= cleanupBusyUntil_) {
            cleanupInProgress_ = false;
            MemReq req = head;
            l1dQueue_.pop_front();
            complete(std::move(req));
        }
        return;
    }

    // Hit in the L1D?
    if (l1d_.present(head.lineAddr)) {
        if (!head.invisibleHit)
            l1d_.touch(head.lineAddr);
        if (head.markNonSpec)
            l1d_.markNonSpecTouched(head.lineAddr);
        MemReq req = head;
        req.wasHit = true;
        l1dQueue_.pop_front();
        hitCompletions_.push_back({now + params_.l1HitLatency,
                                   std::move(req)});
        return;
    }

    // Hit in the defense side buffer (InvisiSpec spec buffer / SpecLFB)?
    if (head.probeSideBuffer && sideBuffer_ &&
        sideBuffer_->contains(head.lineAddr)) {
        MemReq req = head;
        req.wasHit = true;
        req.sideBufferHit = true;
        l1dQueue_.pop_front();
        hitCompletions_.push_back({now + params_.l1HitLatency,
                                   std::move(req)});
        return;
    }

    // Miss path. InvisiSpec UV1: the buggy implementation triggers an L1
    // replacement for speculative loads when the set is full, leaking the
    // victim's address (Listing 1 of the paper).
    if (head.bugSpecEvict && l1d_.setFull(head.lineAddr)) {
        const Addr victim = l1d_.evictVictim(head.lineAddr);
        if (victim != kNoAddr) {
            log_.record(now, EventKind::SpecEviction, head.seq, head.pc,
                        victim, "UV1 spec replacement");
            log_.record(now, EventKind::CacheEvict, head.seq, head.pc,
                        victim, "L1D");
        }
        head.bugSpecEvict = false; // only once per request
    }

    // Coalesce with an outstanding MSHR for the same line.
    for (Mshr &m : l1dMshrs_) {
        if (m.lineAddr == head.lineAddr) {
            m.targets.push_back(head);
            l1dQueue_.pop_front();
            return;
        }
    }

    // Allocate a new MSHR; head-of-line blocks when none is free.
    if (l1dMshrs_.size() >= params_.l1dMshrs) {
        log_.record(now, EventKind::MshrStall, head.seq, head.pc,
                    head.lineAddr);
        if (head.kind == ReqKind::Expose)
            log_.record(now, EventKind::ExposeStall, head.seq, head.pc,
                        head.lineAddr, "UV2 expose blocked by MSHRs");
        return;
    }
    Mshr mshr;
    mshr.lineAddr = head.lineAddr;
    mshr.fillAt = scheduleFill(now, head.lineAddr);
    mshr.targets.push_back(head);
    l1dQueue_.pop_front();
    l1dMshrs_.push_back(std::move(mshr));
}

void
MemSystem::processIfetch(Cycle now)
{
    if (ifetchQueue_.empty())
        return;
    const Addr line = ifetchQueue_.front();
    if (l1i_.present(line)) {
        ifetchQueue_.pop_front();
        return;
    }
    if (l1iMshrs_.size() >= params_.l1iMshrs)
        return;
    Mshr mshr;
    mshr.lineAddr = line;
    mshr.fillAt = scheduleFill(now, line);
    l1iMshrs_.push_back(std::move(mshr));
    ifetchQueue_.pop_front();
}

void
MemSystem::tick(Cycle now)
{
    now_ = now;
    // 1. Demand-fill completions (also frees MSHRs, unblocking the queue).
    for (std::size_t i = 0; i < l1dMshrs_.size();) {
        if (l1dMshrs_[i].fillAt > now) {
            ++i;
            continue;
        }
        Mshr mshr = std::move(l1dMshrs_[i]);
        l1dMshrs_.erase(l1dMshrs_.begin() + static_cast<long>(i));
        l2_.install(mshr.lineAddr);
        for (MemReq &req : mshr.targets) {
            req.wasHit = false;
            installDemandFill(req);
            complete(std::move(req));
        }
    }

    // 2. Instruction fills.
    for (std::size_t i = 0; i < l1iMshrs_.size();) {
        if (l1iMshrs_[i].fillAt > now) {
            ++i;
            continue;
        }
        const Addr line = l1iMshrs_[i].lineAddr;
        l1iMshrs_.erase(l1iMshrs_.begin() + static_cast<long>(i));
        l2_.install(line);
        l1i_.install(line);
        log_.record(now, EventKind::CacheFill, kNoSeq, 0, line, "L1I");
    }

    // 3. Hit completions.
    for (std::size_t i = 0; i < hitCompletions_.size();) {
        if (hitCompletions_[i].at > now) {
            ++i;
            continue;
        }
        MemReq req = std::move(hitCompletions_[i].req);
        hitCompletions_.erase(hitCompletions_.begin() +
                              static_cast<long>(i));
        complete(std::move(req));
    }

    // 4. Queue heads (one dequeue per cycle, in order).
    processL1dHead(now);
    processIfetch(now);
}

Cycle
MemSystem::nextEventCycle(Cycle now) const
{
    // A non-empty controller queue is processed head-of-line every
    // cycle: the head can dequeue, coalesce, allocate an MSHR as one
    // frees up, advance a Cleanup countdown, or log a per-cycle
    // MshrStall/ExposeStall. None of that is skippable.
    if (!l1dQueue_.empty() || !ifetchQueue_.empty())
        return now + 1;

    Cycle next = kNoEventCycle;
    for (const Mshr &m : l1dMshrs_)
        next = std::min(next, m.fillAt);
    for (const Mshr &m : l1iMshrs_)
        next = std::min(next, m.fillAt);
    for (const PendingCompletion &c : hitCompletions_)
        next = std::min(next, c.at);
    // A fill scheduled in the past (tick not yet run this cycle) still
    // needs the very next tick.
    return next == kNoEventCycle ? kNoEventCycle : std::max(next, now + 1);
}

bool
MemSystem::idle() const
{
    return l1dQueue_.empty() && l1dMshrs_.empty() &&
           hitCompletions_.empty() && ifetchQueue_.empty() &&
           l1iMshrs_.empty();
}

void
MemSystem::resetInFlight()
{
    l1dQueue_.clear();
    l1dMshrs_.clear();
    hitCompletions_.clear();
    ifetchQueue_.clear();
    l1iMshrs_.clear();
    cleanupInProgress_ = false;
    cleanupBusyUntil_ = 0;
    l2NextFree_ = 0;
}

void
MemSystem::flushCleanups()
{
    for (std::size_t i = 0; i < l1dQueue_.size();) {
        if (l1dQueue_[i].kind != ReqKind::Cleanup) {
            ++i;
            continue;
        }
        MemReq req = l1dQueue_[i];
        l1dQueue_.erase(i);
        complete(std::move(req));
    }
    cleanupInProgress_ = false;
}

void
MemSystem::invalidateAll()
{
    l1d_.invalidateAll();
    l1i_.invalidateAll();
    l2_.invalidateAll();
    dtlb_.flush();
}

MemSnapshot
MemSystem::save() const
{
    MemSnapshot snap;
    snap.l1d = l1d_.save();
    snap.l1i = l1i_.save();
    snap.l2 = l2_.save();
    snap.dtlb = dtlb_.save();
    if (sideBuffer_) {
        snap.hasSideBuffer = true;
        snap.sideBuffer = sideBuffer_->save();
    }
    return snap;
}

void
MemSystem::restore(const MemSnapshot &snapshot)
{
    l1d_.restore(snapshot.l1d);
    l1i_.restore(snapshot.l1i);
    l2_.restore(snapshot.l2);
    dtlb_.restore(snapshot.dtlb);
    if (sideBuffer_) {
        // A snapshot taken before any side buffer was attached restores
        // as empty — leaving current contents in place would violate
        // save()/restore() round-trip equality.
        sideBuffer_->restore(snapshot.sideBuffer);
    }
}

} // namespace amulet::uarch

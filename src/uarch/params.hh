/**
 * @file
 * Micro-architectural configuration.
 *
 * Defaults approximate the gem5 O3 configuration used by the paper:
 * a 4-wide out-of-order core, 32 KiB 8-way L1 caches, a 256 KiB L2,
 * 256 L1D MSHRs, and a 64-entry D-TLB. The leakage-amplification knobs of
 * §3.4 are exactly these fields (fewer ways, fewer MSHRs).
 */

#ifndef AMULET_UARCH_PARAMS_HH
#define AMULET_UARCH_PARAMS_HH

#include "common/bitutil.hh"
#include "common/types.hh"

namespace amulet::uarch
{

/** Geometry of one cache. */
struct CacheParams
{
    unsigned sizeBytes = 32 * 1024;
    unsigned ways = 8;
    unsigned lineBytes = 64;

    unsigned numSets() const { return sizeBytes / (ways * lineBytes); }
    unsigned numLines() const { return sizeBytes / lineBytes; }
};

/** Safety model used by the speculation tracker (§4.1: Futuristic). */
enum class SpecMode
{
    /** Unsafe only under unresolved control speculation. */
    Spectre,
    /** Unsafe under unresolved control speculation or unresolved older
     *  store addresses (memory speculation). */
    Futuristic,
};

/** Full core + memory-system configuration. */
struct CoreParams
{
    /** @name Pipeline widths and window sizes */
    /// @{
    unsigned fetchWidth = 4;
    unsigned issueWidth = 4;
    unsigned commitWidth = 4;
    unsigned robSize = 192;
    unsigned lqSize = 32;
    unsigned sqSize = 32;
    /// @}

    /** @name Memory hierarchy */
    /// @{
    CacheParams l1d{32 * 1024, 8, 64};
    CacheParams l1i{32 * 1024, 8, 64};
    CacheParams l2{256 * 1024, 8, 64};
    unsigned l1dMshrs = 256; ///< paper default; reduce to amplify (§3.4)
    unsigned l1iMshrs = 4;
    unsigned l1HitLatency = 2;
    unsigned l2HitLatency = 12;
    unsigned memLatency = 80;
    /** Minimum spacing between fills serviced by the shared L2/memory
     *  side (bandwidth). Couples D-side misses to I-fetch timing — the
     *  substrate of the KV1/KV2 timing channels. */
    unsigned l2ServiceInterval = 4;
    unsigned tlbEntries = 64;
    unsigned tlbWalkLatency = 20;
    /// @}

    /** @name Execution latencies */
    /// @{
    unsigned aluLatency = 1;
    unsigned mulLatency = 3;
    unsigned branchLatency = 1;
    /// @}

    /** @name Branch prediction */
    /// @{
    unsigned ghrBits = 12;
    unsigned phtBits = 12;  ///< log2(PHT entries)
    unsigned btbEntries = 512;
    unsigned mdpEntries = 512; ///< memory-dependence predictor table
    /// @}

    /** @name Defense-related structure sizes */
    /// @{
    unsigned specBufferEntries = 32; ///< InvisiSpec speculative buffer
    unsigned lfbEntries = 8;         ///< SpecLFB line-fill buffer
    unsigned cleanupLatency = 6;     ///< CleanupSpec per-line rollback cost
    /// @}

    /** Hard per-run cycle cap (safety net against livelock bugs). */
    Cycle maxCyclesPerRun = 1'000'000;
};

} // namespace amulet::uarch

#endif // AMULET_UARCH_PARAMS_HH

#include "uarch/tlb.hh"

#include <algorithm>

namespace amulet::uarch
{

bool
Tlb::present(Addr vpn) const
{
    for (const Slot &s : slots_) {
        if (s.vpn == vpn)
            return true;
    }
    return false;
}

void
Tlb::touch(Addr vpn)
{
    for (Slot &s : slots_) {
        if (s.vpn == vpn) {
            s.lruStamp = ++stamp_;
            return;
        }
    }
}

Addr
Tlb::fill(Addr vpn)
{
    for (Slot &s : slots_) {
        if (s.vpn == vpn) {
            s.lruStamp = ++stamp_;
            return kNoAddr;
        }
    }
    if (slots_.size() < entries_) {
        slots_.push_back({vpn, ++stamp_});
        return kNoAddr;
    }
    auto victim = std::min_element(
        slots_.begin(), slots_.end(),
        [](const Slot &a, const Slot &b) { return a.lruStamp < b.lruStamp; });
    const Addr evicted = victim->vpn;
    victim->vpn = vpn;
    victim->lruStamp = ++stamp_;
    return evicted;
}

void
Tlb::flush()
{
    slots_.clear();
    stamp_ = 0;
}

std::vector<Addr>
Tlb::snapshot() const
{
    std::vector<Addr> out;
    out.reserve(slots_.size());
    for (const Slot &s : slots_)
        out.push_back(s.vpn);
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace amulet::uarch

#include "uarch/predictors.hh"

#include "common/bitutil.hh"

namespace amulet::uarch
{

BranchPredictor::BranchPredictor(const CoreParams &params)
    : ghrMask_(static_cast<std::uint32_t>(lowMask(params.ghrBits))),
      pht_(std::size_t{1} << params.phtBits, 1),
      btb_(params.btbEntries)
{
}

std::size_t
BranchPredictor::phtIndex(Addr pc, std::uint32_t ghr) const
{
    return ((pc >> 2) ^ ghr) & (pht_.size() - 1);
}

std::size_t
BranchPredictor::btbIndex(Addr pc) const
{
    return (pc >> 2) % btb_.size();
}

BranchPredictor::Prediction
BranchPredictor::predict(Addr pc, bool is_conditional)
{
    Prediction p;
    p.ghrBefore = ghr_;
    const BtbEntry &entry = btb_[btbIndex(pc)];
    p.btbHit = entry.valid && entry.tag == pc;
    if (p.btbHit)
        p.targetIdx = entry.targetIdx;
    if (is_conditional) {
        const bool dir = pht_[phtIndex(pc, ghr_)] >= 2;
        // Predicting taken is only actionable with a known target.
        p.taken = dir && p.btbHit;
    } else {
        p.taken = p.btbHit;
    }
    return p;
}

void
BranchPredictor::updateGhrSpeculative(bool taken)
{
    ghr_ = ((ghr_ << 1) | (taken ? 1u : 0u)) & ghrMask_;
}

void
BranchPredictor::train(Addr pc, bool taken, std::size_t target_idx,
                       std::uint32_t ghr_at_fetch)
{
    std::uint8_t &ctr = pht_[phtIndex(pc, ghr_at_fetch)];
    if (taken && ctr < 3)
        ++ctr;
    else if (!taken && ctr > 0)
        --ctr;
    if (taken) {
        BtbEntry &entry = btb_[btbIndex(pc)];
        entry.valid = true;
        entry.tag = pc;
        entry.targetIdx = target_idx;
    }
}

void
BranchPredictor::reset()
{
    ghr_ = 0;
    std::fill(pht_.begin(), pht_.end(), 1);
    std::fill(btb_.begin(), btb_.end(), BtbEntry{});
}

BranchPredictor::State
BranchPredictor::save() const
{
    State s;
    s.ghr = ghr_;
    s.pht = pht_;
    s.btbTags.reserve(btb_.size());
    s.btbTargets.reserve(btb_.size());
    for (const BtbEntry &e : btb_) {
        s.btbTags.push_back(e.valid ? e.tag : 0);
        s.btbTargets.push_back(e.valid ? e.targetIdx + 1 : 0);
    }
    return s;
}

void
BranchPredictor::restore(const State &state)
{
    ghr_ = state.ghr & ghrMask_;
    pht_ = state.pht;
    for (std::size_t i = 0; i < btb_.size(); ++i) {
        const bool valid = state.btbTargets[i] != 0;
        btb_[i].valid = valid;
        btb_[i].tag = state.btbTags[i];
        btb_[i].targetIdx = valid ? state.btbTargets[i] - 1 : 0;
    }
}

std::vector<std::uint64_t>
BranchPredictor::traceWords() const
{
    std::vector<std::uint64_t> words;
    words.push_back(ghr_);
    for (std::uint8_t c : pht_)
        words.push_back(c);
    for (const BtbEntry &e : btb_) {
        words.push_back(e.valid ? e.tag : 0);
        words.push_back(e.valid ? e.targetIdx + 1 : 0);
    }
    return words;
}

MemDepPredictor::MemDepPredictor(const CoreParams &params)
    : table_(params.mdpEntries, 0)
{
}

std::size_t
MemDepPredictor::indexOf(Addr pc) const
{
    return (pc >> 2) % table_.size();
}

bool
MemDepPredictor::predictDependence(Addr load_pc) const
{
    return table_[indexOf(load_pc)] >= 2;
}

void
MemDepPredictor::trainViolation(Addr load_pc)
{
    std::uint8_t &ctr = table_[indexOf(load_pc)];
    ctr = static_cast<std::uint8_t>(std::min<unsigned>(ctr + 2, 3));
}

void
MemDepPredictor::reset()
{
    std::fill(table_.begin(), table_.end(), 0);
}

} // namespace amulet::uarch

/**
 * @file
 * Set-associative tag cache with LRU replacement.
 *
 * Caches track only presence/recency metadata; architectural data lives in
 * the MemoryImage (the simulator is execute-at-issue). The final tag state
 * is exactly what the default μarch trace snapshots (§3.2 C1).
 */

#ifndef AMULET_UARCH_CACHE_HH
#define AMULET_UARCH_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "uarch/params.hh"

namespace amulet::uarch
{

/** Tag-only set-associative cache. */
class Cache
{
  public:
    explicit Cache(const CacheParams &params);

    /** One tag-array entry (public so snapshots can hold them). */
    struct Line
    {
        bool valid = false;
        Addr lineAddr = 0;
        std::uint64_t lruStamp = 0;
        bool nonSpec = false;

        bool operator==(const Line &) const = default;
    };

    /**
     * Full warm-state snapshot: every tag-array entry plus the LRU
     * clock. Restoring reproduces not just which lines are present but
     * the exact replacement order and noClean marks, so simulation
     * after a restore() is cycle-identical to simulation after the
     * sequence of accesses that produced the saved state.
     */
    struct State
    {
        std::uint64_t stamp = 0;
        std::vector<Line> lines;

        bool operator==(const State &) const = default;
    };

    /** Capture the complete tag/LRU state. */
    State save() const;

    /** Restore a snapshot taken from a same-geometry cache. Reuses the
     *  existing tag array; no allocation in steady state. */
    void restore(const State &state);

    /** Line-aligned address containing @p addr. */
    Addr lineAddrOf(Addr addr) const { return addr & ~lineMask_; }

    /** Is the line present? */
    bool present(Addr line_addr) const;

    /** Refresh LRU recency of a present line. */
    void touch(Addr line_addr);

    /**
     * Install a line; evicts the LRU victim if the set is full.
     * @param mark_non_spec  marks the line as touched non-speculatively
     *                       (CleanupSpec noClean metadata)
     * @param evicted_non_spec  out: was the evicted victim marked
     *                          non-speculative? (false if no eviction)
     * @return evicted line address, or kNoAddr if a free way was used or
     *         the line was already present.
     */
    Addr install(Addr line_addr, bool mark_non_spec = false,
                 bool *evicted_non_spec = nullptr);

    /** Is the set that @p line_addr maps to completely valid? */
    bool setFull(Addr line_addr) const;

    /** LRU victim line address of the set (kNoAddr if the set has a free
     *  way). */
    Addr victimOf(Addr line_addr) const;

    /** Evict the LRU victim of the set (no fill).
     *  @return the evicted line address, or kNoAddr if none was valid. */
    Addr evictVictim(Addr line_addr);

    /** Invalidate one line (no-op if absent). */
    void invalidate(Addr line_addr);

    /** Invalidate everything. */
    void invalidateAll();

    /** Mark a present line as non-speculatively touched. */
    void markNonSpecTouched(Addr line_addr);

    /** Was the line touched non-speculatively since install? */
    bool nonSpecTouched(Addr line_addr) const;

    /** Sorted list of valid line addresses (the μarch trace snapshot). */
    std::vector<Addr> snapshot() const;

    unsigned numSets() const { return sets_; }
    unsigned numWays() const { return ways_; }
    unsigned lineBytes() const { return lineBytes_; }

  private:
    unsigned setIndexOf(Addr line_addr) const
    {
        return static_cast<unsigned>((line_addr >> lineShift_) &
                                     (sets_ - 1));
    }

    Line *findLine(Addr line_addr);
    const Line *findLine(Addr line_addr) const;

    unsigned sets_;
    unsigned ways_;
    unsigned lineBytes_;
    unsigned lineShift_;
    Addr lineMask_;
    std::uint64_t stamp_ = 0;
    std::vector<Line> lines_; ///< sets_ * ways_, set-major
};

} // namespace amulet::uarch

#endif // AMULET_UARCH_CACHE_HH

#include "corpus/serde.hh"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "isa/assembler.hh"

namespace amulet::corpus
{

// === Json value ============================================================

Json
Json::boolean(bool value)
{
    Json j;
    j.kind_ = Kind::Bool;
    j.bool_ = value;
    return j;
}

Json
Json::number(std::uint64_t value)
{
    Json j;
    j.kind_ = Kind::Num;
    j.scalar_ = std::to_string(value);
    return j;
}

Json
Json::number(double value)
{
    // JSON has no inf/nan literal; emitting one would poison the next
    // reader of the file.
    if (!std::isfinite(value))
        throw CorpusError("JSON: non-finite number");
    Json j;
    j.kind_ = Kind::Num;
    // Shortest round-tripping representation — canonical, so equal
    // doubles always dump to equal text.
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof(buf), value);
    j.scalar_.assign(buf, res.ptr);
    return j;
}

Json
Json::str(std::string value)
{
    Json j;
    j.kind_ = Kind::Str;
    j.scalar_ = std::move(value);
    return j;
}

Json
Json::array()
{
    Json j;
    j.kind_ = Kind::Arr;
    return j;
}

Json
Json::object()
{
    Json j;
    j.kind_ = Kind::Obj;
    return j;
}

bool
Json::asBool() const
{
    if (kind_ != Kind::Bool)
        throw CorpusError("JSON: expected bool");
    return bool_;
}

std::uint64_t
Json::asU64() const
{
    if (kind_ != Kind::Num)
        throw CorpusError("JSON: expected number");
    std::uint64_t value = 0;
    const auto res =
        std::from_chars(scalar_.data(), scalar_.data() + scalar_.size(),
                        value);
    if (res.ec != std::errc{} || res.ptr != scalar_.data() + scalar_.size())
        throw CorpusError("JSON: not an unsigned integer: " + scalar_);
    return value;
}

unsigned
Json::asUnsigned() const
{
    const std::uint64_t v = asU64();
    if (v > ~0u)
        throw CorpusError("JSON: value does not fit unsigned: " + scalar_);
    return static_cast<unsigned>(v);
}

double
Json::asDouble() const
{
    if (kind_ != Kind::Num)
        throw CorpusError("JSON: expected number");
    char *end = nullptr;
    errno = 0;
    const double value = std::strtod(scalar_.c_str(), &end);
    if (end != scalar_.c_str() + scalar_.size() || errno == ERANGE ||
        !std::isfinite(value)) {
        throw CorpusError("JSON: not a finite number: " + scalar_);
    }
    return value;
}

const std::string &
Json::asStr() const
{
    if (kind_ != Kind::Str)
        throw CorpusError("JSON: expected string");
    return scalar_;
}

const std::vector<Json> &
Json::items() const
{
    if (kind_ != Kind::Arr)
        throw CorpusError("JSON: expected array");
    return items_;
}

const std::vector<std::pair<std::string, Json>> &
Json::members() const
{
    if (kind_ != Kind::Obj)
        throw CorpusError("JSON: expected object");
    return members_;
}

void
Json::push(Json value)
{
    if (kind_ != Kind::Arr)
        throw CorpusError("JSON: push on non-array");
    items_.push_back(std::move(value));
}

void
Json::set(const std::string &key, Json value)
{
    if (kind_ != Kind::Obj)
        throw CorpusError("JSON: set on non-object");
    for (auto &[k, v] : members_) {
        if (k == key) {
            v = std::move(value);
            return;
        }
    }
    members_.emplace_back(key, std::move(value));
}

const Json &
Json::at(const std::string &key) const
{
    if (const Json *found = find(key))
        return *found;
    throw CorpusError("JSON: missing member '" + key + "'");
}

const Json *
Json::find(const std::string &key) const
{
    if (kind_ != Kind::Obj)
        throw CorpusError("JSON: member lookup on non-object");
    for (const auto &[k, v] : members_) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

namespace
{

void
dumpString(const std::string &s, std::string &out)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c) & 0xff);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

} // namespace

std::string
Json::dump() const
{
    std::string out;
    switch (kind_) {
      case Kind::Null:
        out = "null";
        break;
      case Kind::Bool:
        out = bool_ ? "true" : "false";
        break;
      case Kind::Num:
        out = scalar_;
        break;
      case Kind::Str:
        dumpString(scalar_, out);
        break;
      case Kind::Arr:
        out += '[';
        for (std::size_t i = 0; i < items_.size(); ++i) {
            if (i)
                out += ',';
            out += items_[i].dump();
        }
        out += ']';
        break;
      case Kind::Obj:
        out += '{';
        for (std::size_t i = 0; i < members_.size(); ++i) {
            if (i)
                out += ',';
            dumpString(members_[i].first, out);
            out += ':';
            out += members_[i].second.dump();
        }
        out += '}';
        break;
    }
    return out;
}

// --- Parser ----------------------------------------------------------------

namespace
{

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Json
    parseDocument()
    {
        Json value = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters");
        return value;
    }

  private:
    [[noreturn]] void
    fail(const std::string &msg) const
    {
        throw CorpusError("JSON parse error at offset " +
                          std::to_string(pos_) + ": " + msg);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consumeLiteral(const char *lit)
    {
        const std::size_t n = std::strlen(lit);
        if (text_.compare(pos_, n, lit) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    Json
    parseValue()
    {
        // Bounded recursion: corrupt (or hostile, via `merge`) input
        // like a megabyte of '[' must fail as CorpusError, not as a
        // stack overflow. Legitimate corpus documents nest ~4 deep.
        if (depth_ >= kMaxDepth)
            fail("nesting too deep");
        ++depth_;
        Json value = parseValueInner();
        --depth_;
        return value;
    }

    Json
    parseValueInner()
    {
        skipWs();
        switch (peek()) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return Json::str(parseString());
          case 't':
            if (consumeLiteral("true"))
                return Json::boolean(true);
            fail("bad literal");
          case 'f':
            if (consumeLiteral("false"))
                return Json::boolean(false);
            fail("bad literal");
          case 'n':
            if (consumeLiteral("null"))
                return Json{};
            fail("bad literal");
          default:
            return parseNumber();
        }
    }

    Json
    parseObject()
    {
        expect('{');
        Json obj = Json::object();
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return obj;
        }
        for (;;) {
            skipWs();
            std::string key = parseString();
            skipWs();
            expect(':');
            obj.set(key, parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return obj;
        }
    }

    Json
    parseArray()
    {
        expect('[');
        Json arr = Json::array();
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return arr;
        }
        for (;;) {
            arr.push(parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return arr;
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            c = text_[pos_++];
            switch (c) {
              case '"':  out += '"'; break;
              case '\\': out += '\\'; break;
              case '/':  out += '/'; break;
              case 'n':  out += '\n'; break;
              case 't':  out += '\t'; break;
              case 'r':  out += '\r'; break;
              case 'b':  out += '\b'; break;
              case 'f':  out += '\f'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("bad \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape");
                }
                // The writer only emits \u for control characters, but
                // accept any BMP codepoint as UTF-8.
                if (cp < 0x80) {
                    out += static_cast<char>(cp);
                } else if (cp < 0x800) {
                    out += static_cast<char>(0xc0 | (cp >> 6));
                    out += static_cast<char>(0x80 | (cp & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (cp >> 12));
                    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (cp & 0x3f));
                }
                break;
              }
              default:
                fail("bad escape");
            }
        }
    }

    Json
    parseNumber()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start)
            fail("expected a value");
        const std::string text = text_.substr(start, pos_ - start);
        // Integers round-trip exactly via u64; everything else (negative
        // or fractional) is carried as a double. Either way the token
        // must parse completely — a truncated "1e" or lone "-" loading
        // as garbage would break the fail-at-load-time contract.
        std::uint64_t u = 0;
        const auto res =
            std::from_chars(text.data(), text.data() + text.size(), u);
        if (res.ec == std::errc{} && res.ptr == text.data() + text.size())
            return Json::number(u);
        char *end = nullptr;
        errno = 0;
        const double d = std::strtod(text.c_str(), &end);
        if (end != text.c_str() + text.size() || errno == ERANGE ||
            !std::isfinite(d)) {
            fail("malformed number '" + text + "'");
        }
        return Json::number(d);
    }

    static constexpr int kMaxDepth = 64;

    const std::string &text_;
    std::size_t pos_ = 0;
    int depth_ = 0;
};

} // namespace

Json
Json::parse(const std::string &text)
{
    return Parser(text).parseDocument();
}

// === Field helpers =========================================================

namespace
{

std::string
hexEncode(const std::uint8_t *data, std::size_t size)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(size * 2);
    for (std::size_t i = 0; i < size; ++i) {
        out += digits[data[i] >> 4];
        out += digits[data[i] & 0xf];
    }
    return out;
}

std::vector<std::uint8_t>
hexDecode(const std::string &hex)
{
    if (hex.size() % 2)
        throw CorpusError("odd-length hex string");
    auto nibble = [](char c) -> unsigned {
        if (c >= '0' && c <= '9')
            return static_cast<unsigned>(c - '0');
        if (c >= 'a' && c <= 'f')
            return static_cast<unsigned>(c - 'a' + 10);
        if (c >= 'A' && c <= 'F')
            return static_cast<unsigned>(c - 'A' + 10);
        throw CorpusError("bad hex digit");
    };
    std::vector<std::uint8_t> out(hex.size() / 2);
    for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = static_cast<std::uint8_t>((nibble(hex[2 * i]) << 4) |
                                           nibble(hex[2 * i + 1]));
    }
    return out;
}

Json
u64Array(const std::vector<std::uint64_t> &values)
{
    Json arr = Json::array();
    for (std::uint64_t v : values)
        arr.push(Json::number(v));
    return arr;
}

std::vector<std::uint64_t>
u64ArrayFromJson(const Json &json)
{
    std::vector<std::uint64_t> out;
    out.reserve(json.items().size());
    for (const Json &item : json.items())
        out.push_back(item.asU64());
    return out;
}

executor::TraceFormat
traceFormatFromToken(const std::string &token)
{
    const auto parsed = executor::parseTraceFormat(token);
    if (!parsed)
        throw CorpusError("unknown trace format: " + token);
    return *parsed;
}

} // namespace

// === Building blocks =======================================================

const char *
traceFormatToken(executor::TraceFormat format)
{
    switch (format) {
      case executor::TraceFormat::L1dTlb:          return "l1dtlb";
      case executor::TraceFormat::L1dTlbL1i:       return "l1dtlbl1i";
      case executor::TraceFormat::BpState:         return "bpstate";
      case executor::TraceFormat::MemAccessOrder:  return "memorder";
      case executor::TraceFormat::BranchPredOrder: return "branchorder";
    }
    return "?";
}

Json
toJson(const arch::Input &input)
{
    Json j = Json::object();
    j.set("id", Json::number(input.id));
    Json regs = Json::array();
    for (RegVal r : input.regs)
        regs.push(Json::number(r));
    j.set("regs", std::move(regs));
    j.set("flags", Json::number(std::uint64_t{input.flagsByte}));
    j.set("sandbox",
          Json::str(hexEncode(input.sandbox.data(), input.sandbox.size())));
    return j;
}

arch::Input
inputFromJson(const Json &json)
{
    arch::Input input;
    input.id = json.at("id").asU64();
    const auto &regs = json.at("regs").items();
    if (regs.size() != input.regs.size())
        throw CorpusError("input: wrong register count");
    for (std::size_t i = 0; i < regs.size(); ++i)
        input.regs[i] = regs[i].asU64();
    input.flagsByte = static_cast<std::uint8_t>(json.at("flags").asU64());
    input.sandbox = hexDecode(json.at("sandbox").asStr());
    return input;
}

Json
toJson(const executor::UTrace &trace)
{
    Json j = Json::object();
    j.set("format", Json::str(traceFormatToken(trace.format)));
    j.set("words", u64Array(trace.words));
    return j;
}

executor::UTrace
traceFromJson(const Json &json)
{
    executor::UTrace trace;
    trace.format = traceFormatFromToken(json.at("format").asStr());
    trace.words = u64ArrayFromJson(json.at("words"));
    // The hash cache is never serialized; rebuild it so traces that
    // crossed the wire (subprocess backend) or the journal take the
    // same fast-inequality path as freshly extracted ones.
    trace.finalizeHash();
    return trace;
}

Json
toJson(const executor::UarchContext &ctx)
{
    Json bp = Json::object();
    bp.set("ghr", Json::number(std::uint64_t{ctx.bp.ghr}));
    bp.set("pht", Json::str(hexEncode(ctx.bp.pht.data(),
                                      ctx.bp.pht.size())));
    bp.set("btbTags", u64Array(ctx.bp.btbTags));
    bp.set("btbTargets", u64Array(ctx.bp.btbTargets));
    Json j = Json::object();
    j.set("bp", std::move(bp));
    j.set("mdp", Json::str(hexEncode(ctx.mdp.data(), ctx.mdp.size())));
    return j;
}

executor::UarchContext
contextFromJson(const Json &json)
{
    executor::UarchContext ctx;
    const Json &bp = json.at("bp");
    ctx.bp.ghr = static_cast<std::uint32_t>(bp.at("ghr").asU64());
    ctx.bp.pht = hexDecode(bp.at("pht").asStr());
    ctx.bp.btbTags = u64ArrayFromJson(bp.at("btbTags"));
    ctx.bp.btbTargets = u64ArrayFromJson(bp.at("btbTargets"));
    ctx.mdp = hexDecode(json.at("mdp").asStr());
    return ctx;
}

Json
toJson(const Rng::State &state)
{
    Json arr = Json::array();
    for (std::uint64_t word : state)
        arr.push(Json::number(word));
    return arr;
}

Rng::State
rngStateFromJson(const Json &json)
{
    Rng::State state{};
    const auto &items = json.items();
    if (items.size() != state.size())
        throw CorpusError("rng state: wrong word count");
    for (std::size_t i = 0; i < state.size(); ++i)
        state[i] = items[i].asU64();
    return state;
}

// === Violation records =====================================================

Json
toJson(const core::ViolationRecord &record)
{
    Json j = Json::object();
    j.set("version", Json::number(std::uint64_t{kFormatVersion}));
    j.set("defense", Json::str(record.defenseName));
    j.set("contract", Json::str(record.contractName));
    j.set("programIndex",
          Json::number(std::uint64_t{record.programIndex}));
    j.set("program", Json::str(record.programText));
    j.set("inputA", toJson(record.inputA));
    j.set("inputB", toJson(record.inputB));
    j.set("traceA", toJson(record.traceA));
    j.set("traceB", toJson(record.traceB));
    j.set("ctxA", toJson(record.ctxA));
    j.set("ctxB", toJson(record.ctxB));
    j.set("ctraceHash", Json::number(record.ctraceHash));
    j.set("signature", Json::str(record.signature));
    j.set("rngState", toJson(record.rngState));
    j.set("detectSeconds", Json::number(record.detectSeconds));
    return j;
}

core::ViolationRecord
recordFromJson(const Json &json)
{
    const unsigned version = json.at("version").asUnsigned();
    if (version != kFormatVersion) {
        throw CorpusError("corpus record version " +
                          std::to_string(version) + " unsupported (have " +
                          std::to_string(kFormatVersion) + ")");
    }
    core::ViolationRecord record;
    record.defenseName = json.at("defense").asStr();
    record.contractName = json.at("contract").asStr();
    record.programIndex = json.at("programIndex").asUnsigned();
    record.programText = json.at("program").asStr();
    // The program travels as disassembly; reparse it now so a corrupt
    // listing fails at load time, not mid-replay.
    try {
        isa::assemble(record.programText);
    } catch (const isa::AsmError &e) {
        throw CorpusError(std::string("corpus program does not "
                                      "assemble: ") +
                          e.what());
    }
    record.inputA = inputFromJson(json.at("inputA"));
    record.inputB = inputFromJson(json.at("inputB"));
    record.traceA = traceFromJson(json.at("traceA"));
    record.traceB = traceFromJson(json.at("traceB"));
    record.ctxA = contextFromJson(json.at("ctxA"));
    record.ctxB = contextFromJson(json.at("ctxB"));
    record.ctraceHash = json.at("ctraceHash").asU64();
    record.signature = json.at("signature").asStr();
    record.rngState = rngStateFromJson(json.at("rngState"));
    record.detectSeconds = json.at("detectSeconds").asDouble();
    return record;
}

// === Campaign configuration ================================================

namespace
{

const char *
primeModeToken(executor::PrimeMode mode)
{
    return mode == executor::PrimeMode::ConflictFill ? "conflictfill"
                                                     : "invalidate";
}

executor::PrimeMode
primeModeFromToken(const std::string &token)
{
    if (token == "conflictfill")
        return executor::PrimeMode::ConflictFill;
    if (token == "invalidate")
        return executor::PrimeMode::Invalidate;
    throw CorpusError("unknown prime mode: " + token);
}

const char *
tlbPrefillToken(executor::TlbPrefill prefill)
{
    switch (prefill) {
      case executor::TlbPrefill::Auto:      return "auto";
      case executor::TlbPrefill::GuardOnly: return "guardonly";
      case executor::TlbPrefill::None:      return "none";
    }
    return "?";
}

executor::TlbPrefill
tlbPrefillFromToken(const std::string &token)
{
    if (token == "auto")
        return executor::TlbPrefill::Auto;
    if (token == "guardonly")
        return executor::TlbPrefill::GuardOnly;
    if (token == "none")
        return executor::TlbPrefill::None;
    throw CorpusError("unknown tlb prefill: " + token);
}

Json
cacheToJson(const uarch::CacheParams &cache)
{
    Json j = Json::object();
    j.set("sizeBytes", Json::number(std::uint64_t{cache.sizeBytes}));
    j.set("ways", Json::number(std::uint64_t{cache.ways}));
    j.set("lineBytes", Json::number(std::uint64_t{cache.lineBytes}));
    return j;
}

uarch::CacheParams
cacheFromJson(const Json &json)
{
    uarch::CacheParams cache;
    cache.sizeBytes = json.at("sizeBytes").asUnsigned();
    cache.ways = json.at("ways").asUnsigned();
    cache.lineBytes = json.at("lineBytes").asUnsigned();
    return cache;
}

Json
coreToJson(const uarch::CoreParams &core)
{
    Json j = Json::object();
    j.set("fetchWidth", Json::number(std::uint64_t{core.fetchWidth}));
    j.set("issueWidth", Json::number(std::uint64_t{core.issueWidth}));
    j.set("commitWidth", Json::number(std::uint64_t{core.commitWidth}));
    j.set("robSize", Json::number(std::uint64_t{core.robSize}));
    j.set("lqSize", Json::number(std::uint64_t{core.lqSize}));
    j.set("sqSize", Json::number(std::uint64_t{core.sqSize}));
    j.set("l1d", cacheToJson(core.l1d));
    j.set("l1i", cacheToJson(core.l1i));
    j.set("l2", cacheToJson(core.l2));
    j.set("l1dMshrs", Json::number(std::uint64_t{core.l1dMshrs}));
    j.set("l1iMshrs", Json::number(std::uint64_t{core.l1iMshrs}));
    j.set("l1HitLatency", Json::number(std::uint64_t{core.l1HitLatency}));
    j.set("l2HitLatency", Json::number(std::uint64_t{core.l2HitLatency}));
    j.set("memLatency", Json::number(std::uint64_t{core.memLatency}));
    j.set("l2ServiceInterval",
          Json::number(std::uint64_t{core.l2ServiceInterval}));
    j.set("tlbEntries", Json::number(std::uint64_t{core.tlbEntries}));
    j.set("tlbWalkLatency",
          Json::number(std::uint64_t{core.tlbWalkLatency}));
    j.set("aluLatency", Json::number(std::uint64_t{core.aluLatency}));
    j.set("mulLatency", Json::number(std::uint64_t{core.mulLatency}));
    j.set("branchLatency",
          Json::number(std::uint64_t{core.branchLatency}));
    j.set("ghrBits", Json::number(std::uint64_t{core.ghrBits}));
    j.set("phtBits", Json::number(std::uint64_t{core.phtBits}));
    j.set("btbEntries", Json::number(std::uint64_t{core.btbEntries}));
    j.set("mdpEntries", Json::number(std::uint64_t{core.mdpEntries}));
    j.set("specBufferEntries",
          Json::number(std::uint64_t{core.specBufferEntries}));
    j.set("lfbEntries", Json::number(std::uint64_t{core.lfbEntries}));
    j.set("cleanupLatency",
          Json::number(std::uint64_t{core.cleanupLatency}));
    j.set("maxCyclesPerRun", Json::number(core.maxCyclesPerRun));
    return j;
}

uarch::CoreParams
coreFromJson(const Json &json)
{
    uarch::CoreParams core;
    core.fetchWidth = json.at("fetchWidth").asUnsigned();
    core.issueWidth = json.at("issueWidth").asUnsigned();
    core.commitWidth = json.at("commitWidth").asUnsigned();
    core.robSize = json.at("robSize").asUnsigned();
    core.lqSize = json.at("lqSize").asUnsigned();
    core.sqSize = json.at("sqSize").asUnsigned();
    core.l1d = cacheFromJson(json.at("l1d"));
    core.l1i = cacheFromJson(json.at("l1i"));
    core.l2 = cacheFromJson(json.at("l2"));
    core.l1dMshrs = json.at("l1dMshrs").asUnsigned();
    core.l1iMshrs = json.at("l1iMshrs").asUnsigned();
    core.l1HitLatency = json.at("l1HitLatency").asUnsigned();
    core.l2HitLatency = json.at("l2HitLatency").asUnsigned();
    core.memLatency = json.at("memLatency").asUnsigned();
    core.l2ServiceInterval = json.at("l2ServiceInterval").asUnsigned();
    core.tlbEntries = json.at("tlbEntries").asUnsigned();
    core.tlbWalkLatency = json.at("tlbWalkLatency").asUnsigned();
    core.aluLatency = json.at("aluLatency").asUnsigned();
    core.mulLatency = json.at("mulLatency").asUnsigned();
    core.branchLatency = json.at("branchLatency").asUnsigned();
    core.ghrBits = json.at("ghrBits").asUnsigned();
    core.phtBits = json.at("phtBits").asUnsigned();
    core.btbEntries = json.at("btbEntries").asUnsigned();
    core.mdpEntries = json.at("mdpEntries").asUnsigned();
    core.specBufferEntries = json.at("specBufferEntries").asUnsigned();
    core.lfbEntries = json.at("lfbEntries").asUnsigned();
    core.cleanupLatency = json.at("cleanupLatency").asUnsigned();
    core.maxCyclesPerRun = json.at("maxCyclesPerRun").asU64();
    return core;
}

Json
mapToJson(const mem::AddressMap &map)
{
    Json j = Json::object();
    j.set("codeBase", Json::number(map.codeBase));
    j.set("sandboxBase", Json::number(map.sandboxBase));
    j.set("sandboxPages", Json::number(std::uint64_t{map.sandboxPages}));
    j.set("primeBase", Json::number(map.primeBase));
    return j;
}

mem::AddressMap
mapFromJson(const Json &json)
{
    mem::AddressMap map;
    map.codeBase = json.at("codeBase").asU64();
    map.sandboxBase = json.at("sandboxBase").asU64();
    map.sandboxPages = json.at("sandboxPages").asUnsigned();
    map.primeBase = json.at("primeBase").asU64();
    return map;
}

Json
defenseToJson(const defense::DefenseConfig &defense)
{
    Json j = Json::object();
    j.set("kind", Json::str(defense::defenseKindName(defense.kind)));
    j.set("invisispecBugSpecEviction",
          Json::boolean(defense.invisispecBugSpecEviction));
    j.set("cleanupBugStoreNotCleaned",
          Json::boolean(defense.cleanupBugStoreNotCleaned));
    j.set("cleanupBugSplitNotCleaned",
          Json::boolean(defense.cleanupBugSplitNotCleaned));
    j.set("cleanupNoCleanPatch", Json::boolean(defense.cleanupNoCleanPatch));
    j.set("sttBugTaintedStoreTlb",
          Json::boolean(defense.sttBugTaintedStoreTlb));
    j.set("speclfbBugFirstLoad",
          Json::boolean(defense.speclfbBugFirstLoad));
    return j;
}

defense::DefenseConfig
defenseFromJson(const Json &json)
{
    defense::DefenseConfig defense;
    const auto kind = defense::parseDefenseKind(json.at("kind").asStr());
    if (!kind)
        throw CorpusError("unknown defense: " + json.at("kind").asStr());
    defense.kind = *kind;
    defense.invisispecBugSpecEviction =
        json.at("invisispecBugSpecEviction").asBool();
    defense.cleanupBugStoreNotCleaned =
        json.at("cleanupBugStoreNotCleaned").asBool();
    defense.cleanupBugSplitNotCleaned =
        json.at("cleanupBugSplitNotCleaned").asBool();
    defense.cleanupNoCleanPatch = json.at("cleanupNoCleanPatch").asBool();
    defense.sttBugTaintedStoreTlb =
        json.at("sttBugTaintedStoreTlb").asBool();
    defense.speclfbBugFirstLoad =
        json.at("speclfbBugFirstLoad").asBool();
    return defense;
}

Json
contractToJson(const contracts::ContractSpec &contract)
{
    Json j = Json::object();
    j.set("name", Json::str(contract.name));
    j.set("observePc", Json::boolean(contract.observePc));
    j.set("observeMemAddr", Json::boolean(contract.observeMemAddr));
    j.set("observeLoadValues", Json::boolean(contract.observeLoadValues));
    j.set("exposeInitialRegs", Json::boolean(contract.exposeInitialRegs));
    j.set("exploreMispredictedBranches",
          Json::boolean(contract.exploreMispredictedBranches));
    j.set("speculationWindow",
          Json::number(std::uint64_t{contract.speculationWindow}));
    j.set("maxNesting", Json::number(std::uint64_t{contract.maxNesting}));
    return j;
}

contracts::ContractSpec
contractFromJson(const Json &json)
{
    contracts::ContractSpec contract;
    contract.name = json.at("name").asStr();
    contract.observePc = json.at("observePc").asBool();
    contract.observeMemAddr = json.at("observeMemAddr").asBool();
    contract.observeLoadValues = json.at("observeLoadValues").asBool();
    contract.exposeInitialRegs = json.at("exposeInitialRegs").asBool();
    contract.exploreMispredictedBranches =
        json.at("exploreMispredictedBranches").asBool();
    contract.speculationWindow =
        json.at("speculationWindow").asUnsigned();
    contract.maxNesting = json.at("maxNesting").asUnsigned();
    return contract;
}

Json
generatorToJson(const core::GeneratorConfig &gen)
{
    Json j = Json::object();
    j.set("minBlocks", Json::number(std::uint64_t{gen.minBlocks}));
    j.set("maxBlocks", Json::number(std::uint64_t{gen.maxBlocks}));
    j.set("minInstsPerBlock",
          Json::number(std::uint64_t{gen.minInstsPerBlock}));
    j.set("maxInstsPerBlock",
          Json::number(std::uint64_t{gen.maxInstsPerBlock}));
    j.set("memAccessPct", Json::number(std::uint64_t{gen.memAccessPct}));
    j.set("storePct", Json::number(std::uint64_t{gen.storePct}));
    j.set("rmwPct", Json::number(std::uint64_t{gen.rmwPct}));
    j.set("cmovLoadPct", Json::number(std::uint64_t{gen.cmovLoadPct}));
    j.set("fencePct", Json::number(std::uint64_t{gen.fencePct}));
    j.set("setccPct", Json::number(std::uint64_t{gen.setccPct}));
    j.set("condBranchPct", Json::number(std::uint64_t{gen.condBranchPct}));
    j.set("loopnePct", Json::number(std::uint64_t{gen.loopnePct}));
    j.set("branchOnLoadPct",
          Json::number(std::uint64_t{gen.branchOnLoadPct}));
    j.set("unalignedPct", Json::number(std::uint64_t{gen.unalignedPct}));
    Json weights = Json::array();
    for (std::uint32_t w : gen.widthWeights)
        weights.push(Json::number(std::uint64_t{w}));
    j.set("widthWeights", std::move(weights));
    return j;
}

core::GeneratorConfig
generatorFromJson(const Json &json, const mem::AddressMap &map)
{
    core::GeneratorConfig gen;
    gen.minBlocks = json.at("minBlocks").asUnsigned();
    gen.maxBlocks = json.at("maxBlocks").asUnsigned();
    gen.minInstsPerBlock = json.at("minInstsPerBlock").asUnsigned();
    gen.maxInstsPerBlock = json.at("maxInstsPerBlock").asUnsigned();
    gen.memAccessPct = json.at("memAccessPct").asUnsigned();
    gen.storePct = json.at("storePct").asUnsigned();
    gen.rmwPct = json.at("rmwPct").asUnsigned();
    gen.cmovLoadPct = json.at("cmovLoadPct").asUnsigned();
    gen.fencePct = json.at("fencePct").asUnsigned();
    gen.setccPct = json.at("setccPct").asUnsigned();
    gen.condBranchPct = json.at("condBranchPct").asUnsigned();
    gen.loopnePct = json.at("loopnePct").asUnsigned();
    gen.branchOnLoadPct = json.at("branchOnLoadPct").asUnsigned();
    gen.unalignedPct = json.at("unalignedPct").asUnsigned();
    gen.widthWeights.clear();
    for (const Json &w : json.at("widthWeights").items())
        gen.widthWeights.push_back(
            static_cast<std::uint32_t>(w.asU64()));
    gen.map = map;
    return gen;
}

} // namespace

Json
harnessToJson(const executor::HarnessConfig &config)
{
    Json harness = Json::object();
    harness.set("core", coreToJson(config.core));
    harness.set("defense", defenseToJson(config.defense));
    harness.set("map", mapToJson(config.map));
    harness.set("prime", Json::str(primeModeToken(config.prime)));
    harness.set("traceFormat",
                Json::str(traceFormatToken(config.traceFormat)));
    harness.set("naiveMode", Json::boolean(config.naiveMode));
    harness.set("tlbPrefill",
                Json::str(tlbPrefillToken(config.tlbPrefill)));
    harness.set("bootInsts", Json::number(std::uint64_t{config.bootInsts}));
    // HarnessConfig::primeCache and ::cycleSkip are deliberately NOT
    // serialized: they are runtime knobs like jobs/backend — results
    // are byte-identical with either setting — so they must not move
    // the corpus config fingerprint, and corpora written with different
    // settings may mix. The subprocess wire hello carries them out of
    // band.
    return harness;
}

executor::HarnessConfig
harnessFromJson(const Json &json)
{
    executor::HarnessConfig config;
    config.core = coreFromJson(json.at("core"));
    config.defense = defenseFromJson(json.at("defense"));
    config.map = mapFromJson(json.at("map"));
    config.prime = primeModeFromToken(json.at("prime").asStr());
    config.traceFormat =
        traceFormatFromToken(json.at("traceFormat").asStr());
    config.naiveMode = json.at("naiveMode").asBool();
    config.tlbPrefill = tlbPrefillFromToken(json.at("tlbPrefill").asStr());
    config.bootInsts = json.at("bootInsts").asUnsigned();
    return config;
}

Json
configToJson(const core::CampaignConfig &config)
{
    Json j = Json::object();
    j.set("version", Json::number(std::uint64_t{kFormatVersion}));
    j.set("harness", harnessToJson(config.harness));
    j.set("contract", contractToJson(config.contract));
    j.set("gen", generatorToJson(config.gen));
    j.set("inputSmallRegPct",
          Json::number(std::uint64_t{config.inputs.smallRegPct}));
    j.set("numPrograms", Json::number(std::uint64_t{config.numPrograms}));
    j.set("baseInputsPerProgram",
          Json::number(std::uint64_t{config.baseInputsPerProgram}));
    j.set("siblingsPerBase",
          Json::number(std::uint64_t{config.siblingsPerBase}));
    j.set("regMutationPct",
          Json::number(std::uint64_t{config.regMutationPct}));
    // Part of the campaign definition: filtering changes which inputs
    // the simulator executes (and how μarch state evolves across them),
    // so corpora written with it on and off must not mix.
    j.set("filterIneffective", Json::boolean(config.filterIneffective));
    j.set("stopAtFirstViolation",
          Json::boolean(config.stopAtFirstViolation));
    j.set("collectSignatures", Json::boolean(config.collectSignatures));
    j.set("collectAllFormats", Json::boolean(config.collectAllFormats));
    j.set("maxViolationsRecorded",
          Json::number(std::uint64_t{config.maxViolationsRecorded}));
    j.set("seed", Json::number(config.seed));
    // CampaignConfig::ctraceMemo is deliberately NOT serialized: a
    // runtime knob like jobs/backend/primeCache — contract traces are
    // byte-identical with the memo on or off (tests/test_ctrace_memo.cc)
    // — so it must not move the corpus config fingerprint, and corpora
    // written with different settings may mix.
    // CampaignConfig::faultPlan is likewise runtime-only: fault
    // injection may quarantine programs (which the journal records per
    // program), but every surviving program's results are
    // byte-identical to a clean run (tests/test_fault.cc), so the plan
    // must not move the fingerprint — a chaos run and its clean
    // reference share one corpus identity.
    return j;
}

core::CampaignConfig
configFromJson(const Json &json)
{
    const unsigned version = json.at("version").asUnsigned();
    if (version != kFormatVersion) {
        throw CorpusError("corpus config version " +
                          std::to_string(version) + " unsupported");
    }
    core::CampaignConfig config;
    config.harness = harnessFromJson(json.at("harness"));
    config.contract = contractFromJson(json.at("contract"));
    config.gen = generatorFromJson(json.at("gen"), config.harness.map);
    config.inputs.map = config.harness.map;
    config.inputs.smallRegPct = json.at("inputSmallRegPct").asUnsigned();
    config.numPrograms = json.at("numPrograms").asUnsigned();
    config.baseInputsPerProgram =
        json.at("baseInputsPerProgram").asUnsigned();
    config.siblingsPerBase = json.at("siblingsPerBase").asUnsigned();
    config.regMutationPct = json.at("regMutationPct").asUnsigned();
    config.filterIneffective = json.at("filterIneffective").asBool();
    config.stopAtFirstViolation =
        json.at("stopAtFirstViolation").asBool();
    config.collectSignatures = json.at("collectSignatures").asBool();
    config.collectAllFormats = json.at("collectAllFormats").asBool();
    config.maxViolationsRecorded =
        json.at("maxViolationsRecorded").asUnsigned();
    config.seed = json.at("seed").asU64();
    return config;
}

std::string
configFingerprint(const core::CampaignConfig &config)
{
    // FNV-1a over the canonical dump; the dump excludes runtime knobs
    // (jobs, corpus fields), so a resumed run at a different parallelism
    // still matches its corpus.
    const std::string dump = configToJson(config).dump();
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : dump) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

// === Per-program outcomes ==================================================

Json
outcomeToJson(const runtime::ProgramOutcome &outcome)
{
    Json j = Json::object();
    j.set("ran", Json::boolean(outcome.ran));
    j.set("skippedProgram", Json::boolean(outcome.skippedProgram));
    j.set("quarantined", Json::boolean(outcome.quarantined));
    j.set("quarantineReason", Json::str(outcome.quarantineReason));
    j.set("testCases", Json::number(outcome.testCases));
    j.set("filteredTestCases",
          Json::number(outcome.filteredTestCases));
    j.set("effectiveClasses", Json::number(outcome.effectiveClasses));
    j.set("candidateViolations",
          Json::number(outcome.candidateViolations));
    j.set("validationRuns", Json::number(outcome.validationRuns));
    j.set("violatingTestCases",
          Json::number(outcome.violatingTestCases));
    j.set("confirmedViolations",
          Json::number(outcome.confirmedViolations));
    j.set("firstDetectSeconds", Json::number(outcome.firstDetectSeconds));
    j.set("testGenSec", Json::number(outcome.testGenSec));
    j.set("ctraceSec", Json::number(outcome.ctraceSec));
    j.set("filterSec", Json::number(outcome.filterSec));
    Json sigs = Json::object();
    for (const auto &[sig, count] : outcome.signatureCounts)
        sigs.set(sig, Json::number(count));
    j.set("signatureCounts", std::move(sigs));
    Json tallies = Json::array();
    for (const auto &[format, tally] : outcome.formatTallies) {
        Json t = Json::object();
        t.set("format", Json::str(traceFormatToken(format)));
        t.set("violatingTestCases",
              Json::number(tally.violatingTestCases));
        t.set("coveredByBaseline",
              Json::number(tally.coveredByBaseline));
        tallies.push(std::move(t));
    }
    j.set("formatTallies", std::move(tallies));
    // Deliberately no records: they are journaled (and byte-identical)
    // already; the checkpoint stays O(counters) per program and resume
    // rehydrates records from the journal by program index.
    return j;
}

runtime::ProgramOutcome
outcomeFromJson(const Json &json)
{
    runtime::ProgramOutcome outcome;
    outcome.ran = json.at("ran").asBool();
    outcome.skippedProgram = json.at("skippedProgram").asBool();
    outcome.quarantined = json.at("quarantined").asBool();
    outcome.quarantineReason = json.at("quarantineReason").asStr();
    outcome.testCases = json.at("testCases").asU64();
    outcome.filteredTestCases = json.at("filteredTestCases").asU64();
    outcome.effectiveClasses = json.at("effectiveClasses").asU64();
    outcome.candidateViolations =
        json.at("candidateViolations").asU64();
    outcome.validationRuns = json.at("validationRuns").asU64();
    outcome.violatingTestCases = json.at("violatingTestCases").asU64();
    outcome.confirmedViolations =
        json.at("confirmedViolations").asU64();
    outcome.firstDetectSeconds =
        json.at("firstDetectSeconds").asDouble();
    outcome.testGenSec = json.at("testGenSec").asDouble();
    outcome.ctraceSec = json.at("ctraceSec").asDouble();
    outcome.filterSec = json.at("filterSec").asDouble();
    for (const auto &[sig, count] : json.at("signatureCounts").members())
        outcome.signatureCounts[sig] = count.asU64();
    for (const Json &t : json.at("formatTallies").items()) {
        core::FormatTally tally;
        tally.violatingTestCases = t.at("violatingTestCases").asU64();
        tally.coveredByBaseline = t.at("coveredByBaseline").asU64();
        outcome.formatTallies[traceFormatFromToken(
            t.at("format").asStr())] = tally;
    }
    return outcome; // records rehydrate from the journal, not from here
}

} // namespace amulet::corpus
